package repro

// Benchmark harness: one testing.B target per experiment in DESIGN.md's
// per-experiment index (run `go test -bench=Exp` to regenerate every
// validation table in quick mode), plus microbenchmarks for the
// operations Lemma 4 and Theorem 1.3 bound.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/haft"
	"repro/internal/harness"
)

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := harness.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := exp.Run(harness.Options{Quick: true, Seed: int64(i)})
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkExpHaft(b *testing.B)     { benchExperiment(b, "EXP-HAFT") }
func BenchmarkExpDegree(b *testing.B)   { benchExperiment(b, "EXP-DEGREE") }
func BenchmarkExpStretch(b *testing.B)  { benchExperiment(b, "EXP-STRETCH") }
func BenchmarkExpCost(b *testing.B)     { benchExperiment(b, "EXP-COST") }
func BenchmarkExpLower(b *testing.B)    { benchExperiment(b, "EXP-LOWER") }
func BenchmarkExpCompare(b *testing.B)  { benchExperiment(b, "EXP-COMPARE") }
func BenchmarkExpChurn(b *testing.B)    { benchExperiment(b, "EXP-CHURN") }
func BenchmarkExpLocality(b *testing.B) { benchExperiment(b, "EXP-LOCALITY") }
func BenchmarkExpBatch(b *testing.B)    { benchExperiment(b, "EXP-BATCH") }
func BenchmarkExpBW(b *testing.B)       { benchExperiment(b, "EXP-BW") }
func BenchmarkExpRTDepth(b *testing.B)  { benchExperiment(b, "EXP-RTDEPTH") }
func BenchmarkExpAblate(b *testing.B)   { benchExperiment(b, "EXP-ABLATE") }
func BenchmarkExpSpan(b *testing.B)     { benchExperiment(b, "EXP-SPAN") }

// BenchmarkDeleteRepair measures the reference engine's repair after a
// hub deletion of degree d = n-1 (the paper's worst single repair).
func BenchmarkDeleteRepair(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("star-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := core.NewEngine(graph.Star(n))
				b.StartTimer()
				if err := e.Delete(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeleteSequence measures sustained random deletions on a
// sparse random graph (repairs hitting existing RTs).
func BenchmarkDeleteSequence(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("gnp-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rng := rand.New(rand.NewSource(int64(i)))
				e := core.NewEngine(graph.GNP(n, 4.0/float64(n), rng))
				order := rng.Perm(n)
				b.StartTimer()
				for _, v := range order[:n/2] {
					if err := e.Delete(graph.NodeID(v)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkDistributedRepair measures the full message-level protocol
// for one hub deletion, the scenario of Lemma 4.
func BenchmarkDistributedRepair(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("star-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := dist.NewSimulation(graph.Star(n))
				b.StartTimer()
				if err := s.Delete(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHaftBuild measures canonical haft construction (Lemma 1).
func BenchmarkHaftBuild(b *testing.B) {
	for _, l := range []int{15, 255, 4095, 65535} {
		b.Run(fmt.Sprintf("l-%d", l), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if haft.Build(l, nil) == nil {
					b.Fatal("nil haft")
				}
			}
		})
	}
}

// BenchmarkHaftMerge measures strip+merge of two hafts, the core repair
// primitive.
func BenchmarkHaftMerge(b *testing.B) {
	for _, l := range []int{15, 255, 4095} {
		b.Run(fmt.Sprintf("l-%d", l), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				a := haft.Build(l, nil)
				c := haft.Build(l+1, nil)
				b.StartTimer()
				root, _ := haft.MergeAll([]*haft.Node{a, c}, nil)
				if root == nil {
					b.Fatal("nil merge")
				}
			}
		})
	}
}

// BenchmarkPublicAPIChurn measures end-to-end churn through the facade.
func BenchmarkPublicAPIChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var edges []Edge
		rng := rand.New(rand.NewSource(int64(i)))
		for j := 1; j < 64; j++ {
			edges = append(edges, Edge{U: NodeID(rng.Intn(j)), V: NodeID(j)})
		}
		net, err := New(edges)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		next := NodeID(1000)
		for step := 0; step < 32; step++ {
			nodes := net.Nodes()
			if rng.Float64() < 0.3 {
				if err := net.Insert(next, []NodeID{nodes[rng.Intn(len(nodes))]}); err != nil {
					b.Fatal(err)
				}
				next++
			} else {
				if err := net.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkStretchAudit measures the exact stretch audit (the expensive
// measurement, not the data structure itself).
func BenchmarkStretchAudit(b *testing.B) {
	e := core.NewEngine(graph.Star(256))
	if err := e.Delete(0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := e.CheckStretch()
		if !r.Satisfied() {
			b.Fatal("bound violated")
		}
	}
}
