// Command benchcheck compares `go test -bench` output against the
// recorded baseline in BENCH_dist.json and fails on regressions. It is
// the CI gate for the perf numbers the repo publishes: wall-time
// (ns/op) may drift with runner noise, so it gets a loose tolerance;
// protocol message counts are deterministic under a pinned -benchtime,
// so they get a tight one.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchtime=50x ./internal/dist | \
//	    benchcheck -baseline BENCH_dist.json [-ns-tol 0.30] [-msgs-tol 0.05]
//
// Baseline benchmarks absent from the input are skipped (the CI job
// runs a subset); input benchmarks absent from the baseline are
// reported so a missing re-record is visible. At least one comparison
// must happen or the check fails.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_dist.json", "baseline JSON file")
		inputPath    = flag.String("input", "-", "bench output to check (- = stdin)")
		nsTol        = flag.Float64("ns-tol", 0.30, "allowed fractional ns/op regression")
		msgsTol      = flag.Float64("msgs-tol", 0.05, "allowed fractional message-count regression")
		allocsTol    = flag.Float64("allocs-tol", 0.10, "allowed fractional allocs/op and B/op deviation")
	)
	flag.Parse()

	baseline, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var input io.Reader = os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		input = f
	}
	if err := check(baseline, input, *nsTol, *msgsTol, *allocsTol, os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
	os.Exit(1)
}

// baselineFile mirrors BENCH_dist.json: metadata plus one metrics
// object per benchmark. Metric fields beyond "name" are numeric and
// compared by key.
type baselineFile struct {
	Benchmarks []map[string]any `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench` output:
// name, iteration count, then (value, unit) pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.+)$`)

// parseBench extracts name -> metric key -> value from bench output.
// The trailing -N GOMAXPROCS suffix is stripped from names; units map
// to the baseline's snake_case keys (ns/op -> ns_per_op, msgs/batch ->
// msgs_per_batch, B/op -> bytes_per_op, ...).
func parseBench(r io.Reader) (map[string]map[string]float64, []string, error) {
	out := make(map[string]map[string]float64)
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		fields := strings.Fields(m[2])
		if len(fields)%2 != 0 {
			return nil, nil, fmt.Errorf("odd metric fields in %q", sc.Text())
		}
		metrics := make(map[string]float64, len(fields)/2)
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad value %q in %q", fields[i], sc.Text())
			}
			metrics[metricKey(fields[i+1])] = v
		}
		if _, dup := out[name]; !dup {
			order = append(order, name)
		}
		out[name] = metrics
	}
	return out, order, sc.Err()
}

func metricKey(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	default:
		return strings.ReplaceAll(unit, "/", "_per_")
	}
}

// tolerance returns the allowed fractional deviation for a metric key
// and whether the check is two-sided. ns/op is one-sided (faster is
// fine, runners are noisy); message counts, round counts, and the
// in-band coordination counters (sync/election rounds) are
// deterministic protocol properties at a pinned -benchtime, so moving
// in *either* direction beyond tolerance means the protocol changed
// and the baseline is stale. The coalescing decision counters
// (coalcancelled/coalmerged/coalsaved) are deterministic the same way
// — the admission queue reads only driver-side state — and share the
// message tolerance. Allocation counts (allocs/op, B/op) are
// gated the same two-sided way — an allocation regression is a perf
// bug, and a silent improvement means the recorded diet is stale —
// but at their own tolerance: map-growth timing adds a little honest
// run-to-run jitter that exact message counts do not have.
// Informational metrics return -1.
func tolerance(key string, nsTol, msgsTol, allocsTol float64) (tol float64, twoSided bool) {
	switch {
	case key == "ns_per_op":
		return nsTol, false
	case key == "allocs_per_op", key == "bytes_per_op":
		return allocsTol, true
	case strings.HasPrefix(key, "msgs_"),
		strings.HasPrefix(key, "rounds_"),
		strings.HasPrefix(key, "syncrounds_"),
		strings.HasPrefix(key, "electionrounds_"),
		strings.HasPrefix(key, "auditmsgs_"),
		strings.HasPrefix(key, "auditrounds_"),
		strings.HasPrefix(key, "coal"):
		return msgsTol, true
	default:
		return -1, false
	}
}

func check(baseline []byte, input io.Reader, nsTol, msgsTol, allocsTol float64, out io.Writer) error {
	var base baselineFile
	if err := json.Unmarshal(baseline, &base); err != nil {
		return fmt.Errorf("parsing baseline: %w", err)
	}
	got, _, err := parseBench(input)
	if err != nil {
		return fmt.Errorf("parsing bench output: %w", err)
	}

	compared := 0
	var failures []string
	covered := make(map[string]bool)
	for _, entry := range base.Benchmarks {
		name, _ := entry["name"].(string)
		if name == "" {
			return fmt.Errorf("baseline entry without name: %v", entry)
		}
		cur, ran := got[name]
		if !ran {
			fmt.Fprintf(out, "skip  %-40s not in this run\n", name)
			continue
		}
		covered[name] = true
		keys := make([]string, 0, len(entry))
		for k := range entry {
			if k != "name" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, key := range keys {
			want, ok := entry[key].(float64)
			if !ok {
				continue // non-numeric metadata
			}
			tol, twoSided := tolerance(key, nsTol, msgsTol, allocsTol)
			if tol < 0 {
				continue
			}
			have, ok := cur[key]
			if !ok {
				failures = append(failures,
					fmt.Sprintf("%s: metric %s in baseline but missing from run", name, key))
				continue
			}
			compared++
			upper := want * (1 + tol)
			lower := want * (1 - tol)
			status := "ok  "
			switch {
			case have > upper:
				status = "FAIL"
				failures = append(failures,
					fmt.Sprintf("%s: %s regressed: %.4g > baseline %.4g (+%.0f%% allowed)",
						name, key, have, want, 100*tol))
			case twoSided && have < lower:
				status = "FAIL"
				failures = append(failures,
					fmt.Sprintf("%s: %s deviates below baseline: %.4g < %.4g (±%.0f%%; deterministic counts moving either way mean the protocol changed — re-record the baseline)",
						name, key, have, want, 100*tol))
			}
			fmt.Fprintf(out, "%s  %-40s %-18s %12.4g  baseline %12.4g  limit %12.4g\n",
				status, name, key, have, want, upper)
		}
	}
	for name := range got {
		if !covered[name] {
			fmt.Fprintf(out, "note  %-40s has no baseline (add it to the JSON on the next re-record)\n", name)
		}
	}
	if compared == 0 {
		return fmt.Errorf("no benchmark overlapped the baseline — wrong -bench filter or stale names")
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(out, "benchcheck: %d comparisons passed\n", compared)
	return nil
}
