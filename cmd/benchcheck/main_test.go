package main

import (
	"strings"
	"testing"
)

const baseline = `{
  "benchmarks": [
    {"name": "BenchmarkBatchedDelete/k=1", "ns_per_op": 40000, "msgs_per_batch": 20.0, "rounds_per_batch": 6.0},
    {"name": "BenchmarkBandwidthRepair/B=1", "ns_per_op": 300000, "msgs_per_repair": 400.0},
    {"name": "BenchmarkPhysicalSnapshot/incremental", "ns_per_op": 1000000}
  ]
}`

func run(t *testing.T, input string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := check([]byte(baseline), strings.NewReader(input), 0.30, 0.05, &out)
	return out.String(), err
}

func TestPassesWithinTolerance(t *testing.T) {
	out, err := run(t, `
goos: linux
BenchmarkBatchedDelete/k=1-8    50    45000 ns/op    20.5 msgs/batch    6.000 rounds/batch    12000 B/op    150 allocs/op
BenchmarkBandwidthRepair/B=1-8  50    310000 ns/op   400.0 msgs/repair
PASS
`)
	if err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, out)
	}
	if !strings.Contains(out, "skip") || !strings.Contains(out, "BenchmarkPhysicalSnapshot/incremental") {
		t.Fatalf("baseline not in run was not reported as skipped:\n%s", out)
	}
}

func TestFailsOnNsRegression(t *testing.T) {
	// 40000 * 1.30 = 52000; 60000 is a regression.
	out, err := run(t, `
BenchmarkBatchedDelete/k=1-8    50    60000 ns/op    20.0 msgs/batch
`)
	if err == nil {
		t.Fatalf("synthetic ns/op regression passed:\n%s", out)
	}
	if !strings.Contains(err.Error(), "ns_per_op regressed") {
		t.Fatalf("wrong failure: %v", err)
	}
}

func TestFailsOnMessageRegression(t *testing.T) {
	// 20 * 1.05 = 21; 22 messages is a protocol regression even though
	// the wall time improved.
	out, err := run(t, `
BenchmarkBatchedDelete/k=1-8    50    30000 ns/op    22.0 msgs/batch
`)
	if err == nil {
		t.Fatalf("synthetic message-count regression passed:\n%s", out)
	}
	if !strings.Contains(err.Error(), "msgs_per_batch regressed") {
		t.Fatalf("wrong failure: %v", err)
	}
}

func TestFailsOnMissingMetric(t *testing.T) {
	out, err := run(t, `
BenchmarkBatchedDelete/k=1-8    50    30000 ns/op    6.000 rounds/batch
`)
	if err == nil {
		t.Fatalf("run missing a gated baseline metric passed:\n%s", out)
	}
	if !strings.Contains(err.Error(), "missing from run") {
		t.Fatalf("wrong failure: %v", err)
	}
}

func TestFailsOnNoOverlap(t *testing.T) {
	if _, err := run(t, "BenchmarkSomethingElse-8  10  5 ns/op\n"); err == nil {
		t.Fatal("zero-overlap run passed: the gate would be vacuous")
	}
}

func TestImprovementsPass(t *testing.T) {
	// Faster wall time passes outright; message counts may drift only
	// within the two-sided tolerance.
	out, err := run(t, `
BenchmarkBatchedDelete/k=1-8    50    20000 ns/op    19.5 msgs/batch    6.000 rounds/batch
BenchmarkBandwidthRepair/B=1-8  50    200000 ns/op   399.0 msgs/repair
`)
	if err != nil {
		t.Fatalf("improvement flagged as regression: %v\n%s", err, out)
	}
}

func TestFailsOnMessageDeviationBelow(t *testing.T) {
	// 20 * 0.95 = 19; a drop to 15 means the protocol silently stopped
	// doing work the baseline records — stale baseline, not a win.
	out, err := run(t, `
BenchmarkBatchedDelete/k=1-8    50    30000 ns/op    15.0 msgs/batch
`)
	if err == nil {
		t.Fatalf("deterministic message count fell 25%% and passed:\n%s", out)
	}
	if !strings.Contains(err.Error(), "deviates below baseline") {
		t.Fatalf("wrong failure: %v", err)
	}
}
