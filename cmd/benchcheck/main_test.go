package main

import (
	"strings"
	"testing"
)

const baseline = `{
  "benchmarks": [
    {"name": "BenchmarkBatchedDelete/k=1", "ns_per_op": 40000, "msgs_per_batch": 20.0, "rounds_per_batch": 6.0},
    {"name": "BenchmarkBandwidthRepair/B=1", "ns_per_op": 300000, "msgs_per_repair": 400.0},
    {"name": "BenchmarkPhysicalSnapshot/incremental", "ns_per_op": 1000000},
    {"name": "BenchmarkTickSteadyState", "ns_per_op": 20000, "msgs_per_tick": 3.0, "allocs_per_op": 15, "bytes_per_op": 2200},
    {"name": "BenchmarkCoalescedChurn/on", "ns_per_op": 20000000, "msgs_per_drain": 5500.0, "coalcancelled_per_drain": 30.0}
  ]
}`

func run(t *testing.T, input string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := check([]byte(baseline), strings.NewReader(input), 0.30, 0.05, 0.10, &out)
	return out.String(), err
}

func TestPassesWithinTolerance(t *testing.T) {
	out, err := run(t, `
goos: linux
BenchmarkBatchedDelete/k=1-8    50    45000 ns/op    20.5 msgs/batch    6.000 rounds/batch    12000 B/op    150 allocs/op
BenchmarkBandwidthRepair/B=1-8  50    310000 ns/op   400.0 msgs/repair
PASS
`)
	if err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, out)
	}
	if !strings.Contains(out, "skip") || !strings.Contains(out, "BenchmarkPhysicalSnapshot/incremental") {
		t.Fatalf("baseline not in run was not reported as skipped:\n%s", out)
	}
}

func TestFailsOnNsRegression(t *testing.T) {
	// 40000 * 1.30 = 52000; 60000 is a regression.
	out, err := run(t, `
BenchmarkBatchedDelete/k=1-8    50    60000 ns/op    20.0 msgs/batch
`)
	if err == nil {
		t.Fatalf("synthetic ns/op regression passed:\n%s", out)
	}
	if !strings.Contains(err.Error(), "ns_per_op regressed") {
		t.Fatalf("wrong failure: %v", err)
	}
}

func TestFailsOnMessageRegression(t *testing.T) {
	// 20 * 1.05 = 21; 22 messages is a protocol regression even though
	// the wall time improved.
	out, err := run(t, `
BenchmarkBatchedDelete/k=1-8    50    30000 ns/op    22.0 msgs/batch
`)
	if err == nil {
		t.Fatalf("synthetic message-count regression passed:\n%s", out)
	}
	if !strings.Contains(err.Error(), "msgs_per_batch regressed") {
		t.Fatalf("wrong failure: %v", err)
	}
}

func TestFailsOnMissingMetric(t *testing.T) {
	out, err := run(t, `
BenchmarkBatchedDelete/k=1-8    50    30000 ns/op    6.000 rounds/batch
`)
	if err == nil {
		t.Fatalf("run missing a gated baseline metric passed:\n%s", out)
	}
	if !strings.Contains(err.Error(), "missing from run") {
		t.Fatalf("wrong failure: %v", err)
	}
}

func TestFailsOnNoOverlap(t *testing.T) {
	if _, err := run(t, "BenchmarkSomethingElse-8  10  5 ns/op\n"); err == nil {
		t.Fatal("zero-overlap run passed: the gate would be vacuous")
	}
}

func TestImprovementsPass(t *testing.T) {
	// Faster wall time passes outright; message counts may drift only
	// within the two-sided tolerance.
	out, err := run(t, `
BenchmarkBatchedDelete/k=1-8    50    20000 ns/op    19.5 msgs/batch    6.000 rounds/batch
BenchmarkBandwidthRepair/B=1-8  50    200000 ns/op   399.0 msgs/repair
`)
	if err != nil {
		t.Fatalf("improvement flagged as regression: %v\n%s", err, out)
	}
}

func TestFailsOnAllocRegression(t *testing.T) {
	// 15 * 1.15 = 17.25 allocs allowed; 25 is an allocation regression
	// even with wall time and messages unchanged.
	out, err := run(t, `
BenchmarkTickSteadyState-8    50    20000 ns/op    3.000 msgs/tick    2200 B/op    25 allocs/op
`)
	if err == nil {
		t.Fatalf("synthetic allocs/op regression passed:\n%s", out)
	}
	if !strings.Contains(err.Error(), "allocs_per_op regressed") {
		t.Fatalf("wrong failure: %v", err)
	}
}

func TestFailsOnBytesRegression(t *testing.T) {
	// 2200 * 1.15 = 2530 B/op allowed; 4000 fails.
	out, err := run(t, `
BenchmarkTickSteadyState-8    50    20000 ns/op    3.000 msgs/tick    4000 B/op    15 allocs/op
`)
	if err == nil {
		t.Fatalf("synthetic B/op regression passed:\n%s", out)
	}
	if !strings.Contains(err.Error(), "bytes_per_op regressed") {
		t.Fatalf("wrong failure: %v", err)
	}
}

func TestFailsOnAllocDeviationBelow(t *testing.T) {
	// A drop to 2 allocs/op means the recorded diet is stale: the gate
	// demands a re-record, like the deterministic message counts.
	out, err := run(t, `
BenchmarkTickSteadyState-8    50    20000 ns/op    3.000 msgs/tick    2200 B/op    2 allocs/op
`)
	if err == nil {
		t.Fatalf("alloc count fell far below baseline and passed:\n%s", out)
	}
	if !strings.Contains(err.Error(), "allocs_per_op deviates below baseline") {
		t.Fatalf("wrong failure: %v", err)
	}
}

func TestAllocsWithinTolerancePass(t *testing.T) {
	out, err := run(t, `
BenchmarkTickSteadyState-8    50    21000 ns/op    3.050 msgs/tick    2300 B/op    16 allocs/op
`)
	if err != nil {
		t.Fatalf("in-tolerance alloc metrics flagged: %v\n%s", err, out)
	}
}

func TestGatesCoalesceCounters(t *testing.T) {
	// The coalescer's decision counters are deterministic like message
	// counts: 30 * 0.95 = 28.5 cancellations, so 20 means the admission
	// queue stopped eliding work the baseline records.
	out, err := run(t, `
BenchmarkCoalescedChurn/on-8    50    20000000 ns/op    5500.0 msgs/drain    20.0 coalcancelled/drain
`)
	if err == nil {
		t.Fatalf("coalesce counter fell 33%% and passed:\n%s", out)
	}
	if !strings.Contains(err.Error(), "coalcancelled_per_drain deviates below baseline") {
		t.Fatalf("wrong failure: %v", err)
	}
}

func TestFailsOnMessageDeviationBelow(t *testing.T) {
	// 20 * 0.95 = 19; a drop to 15 means the protocol silently stopped
	// doing work the baseline records — stale baseline, not a win.
	out, err := run(t, `
BenchmarkBatchedDelete/k=1-8    50    30000 ns/op    15.0 msgs/batch
`)
	if err == nil {
		t.Fatalf("deterministic message count fell 25%% and passed:\n%s", out)
	}
	if !strings.Contains(err.Error(), "deviates below baseline") {
		t.Fatalf("wrong failure: %v", err)
	}
}
