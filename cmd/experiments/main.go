// Command experiments regenerates every experiment in DESIGN.md's
// per-experiment index — the tables validating Theorems 1 and 2 and
// Lemmas 1 and 4 of the Forgiving Graph paper.
//
// Usage:
//
//	experiments [-run ID[,ID...]] [-quick] [-seed N] [-csv DIR] [-list]
//
// With no -run flag every experiment runs in order. -csv writes one CSV
// per table next to the rendered output.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runIDs    = flag.String("run", "", "comma-separated experiment ids (default: all)")
		quick     = flag.Bool("quick", false, "smaller sweeps (seconds instead of minutes)")
		seed      = flag.Int64("seed", 42, "random seed for every sweep")
		csvDir    = flag.String("csv", "", "directory to write per-table CSV files")
		bandwidth = flag.Int("bandwidth", 0, "extra per-edge cap (words/round) for the EXP-BW sweep")
		list      = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-13s %s\n              claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	var selected []harness.Experiment
	if *runIDs == "" {
		selected = harness.Experiments()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := harness.ExperimentByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("creating csv dir: %w", err)
		}
	}

	opts := harness.Options{Quick: *quick, Seed: *seed, Bandwidth: *bandwidth}
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		fmt.Printf("    claim: %s\n\n", e.Claim)
		tables := e.Run(opts)
		for i, tb := range tables {
			fmt.Println(tb.Render())
			if *csvDir != "" {
				name := fmt.Sprintf("%s-%d.csv", strings.ToLower(e.ID), i)
				path := filepath.Join(*csvDir, name)
				if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
					return fmt.Errorf("writing %s: %w", path, err)
				}
				fmt.Printf("(csv: %s)\n\n", path)
			}
		}
		fmt.Printf("[%s done in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
