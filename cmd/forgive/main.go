// Command forgive runs a single self-healing simulation: one topology,
// one adversary, one healer, with periodic measurements of the paper's
// success metrics (stretch, degree amplification, connectivity).
//
// Usage:
//
//	forgive [-topology NAME] [-n N] [-healer NAME] [-adversary NAME]
//	        [-steps K] [-insert-p P] [-seed S] [-measure-every M]
//	        [-sample S] [-trace-out FILE] [-trace-in FILE]
//
// With -trace-in the topology/adversary flags are ignored and the given
// attack trace is replayed against the chosen healer.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/ftree"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/heal"
	"repro/internal/metrics"
	"repro/internal/trace"

	"math/rand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "forgive: %v\n", err)
		os.Exit(1)
	}
}

func healerFactories() map[string]heal.Factory {
	m := map[string]heal.Factory{
		"forgiving-graph": harness.ForgivingFactory(),
		"forgiving-tree": {
			Name: "forgiving-tree",
			New:  func(g *graph.Graph) heal.Healer { return ftree.New(g) },
		},
	}
	for _, f := range baseline.Factories() {
		m[f.Name] = f
	}
	return m
}

func run() error {
	var (
		topology = flag.String("topology", "gnp", "initial topology: "+strings.Join(graph.GeneratorNames(), ", "))
		n        = flag.Int("n", 64, "initial node count")
		healerNm = flag.String("healer", "forgiving-graph", "healer: forgiving-graph, forgiving-tree, no-heal, cycle-heal, adopt-heal")
		advName  = flag.String("adversary", "maxdeg", "deletion strategy: "+strings.Join(adversary.Names(), ", "))
		steps    = flag.Int("steps", 32, "adversarial steps")
		insertP  = flag.Float64("insert-p", 0, "probability each step is an insertion (churn)")
		seed     = flag.Int64("seed", 1, "random seed")
		every    = flag.Int("measure-every", 8, "measure after every this many steps")
		sample   = flag.Int("sample", 0, "BFS sources sampled for stretch (0 = exact)")
		traceOut = flag.String("trace-out", "", "write the attack trace as JSON")
		traceIn  = flag.String("trace-in", "", "replay an attack trace instead of generating one")
	)
	flag.Parse()

	factories := healerFactories()
	factory, ok := factories[*healerNm]
	if !ok {
		return fmt.Errorf("unknown healer %q", *healerNm)
	}

	if *traceIn != "" {
		return replay(*traceIn, factory, *sample)
	}

	gen, err := graph.Generator(*topology)
	if err != nil {
		return err
	}
	del, err := adversary.ByName(*advName)
	if err != nil {
		return err
	}
	var adv adversary.Adversary = del
	if *insertP > 0 {
		adv = adversary.Churn{Delete: del, InsertP: *insertP, AttachK: 2, Preferential: true}
	}

	g0 := gen(*n, rand.New(rand.NewSource(*seed)))
	fmt.Printf("topology=%s n=%d healer=%s adversary=%s steps=%d seed=%d\n\n",
		*topology, g0.NumNodes(), factory.Name, adv.Name(), *steps, *seed)

	r := harness.NewRunner(g0, factory, adv, *seed)
	tb := metrics.Table{
		Title: "time series",
		Columns: []string{"step", "alive", "n ever", "max stretch", "bound",
			"within", "max deg ratio", "largest comp"},
	}
	for done := 0; done < *steps; done += *every {
		k := *every
		if done+k > *steps {
			k = *steps - done
		}
		if err := r.RunSteps(k); err != nil {
			return err
		}
		addPoint(&tb, r.Measure(*sample))
		if len(r.H.LiveNodes()) == 0 {
			break
		}
	}
	fmt.Println(tb.Render())

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.T.Write(f); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%d ops)\n", *traceOut, len(r.T.Ops))
	}
	return nil
}

func addPoint(tb *metrics.Table, p harness.Point) {
	maxStretch := metrics.F(p.Stretch.Max)
	if p.Stretch.Disconnected > 0 {
		maxStretch = "inf"
	}
	bound := metrics.Bound(p.NEver)
	tb.AddRow(
		metrics.D(p.Steps), metrics.D(p.Alive), metrics.D(p.NEver),
		maxStretch, metrics.F(bound),
		fmt.Sprintf("%v", p.Stretch.Max <= bound+1e-9),
		metrics.F(p.Degree.Max), metrics.F(p.LCC),
	)
}

func replay(path string, factory heal.Factory, sample int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	h, err := tr.Apply(factory)
	if err != nil {
		return err
	}
	net, gp, live := h.Network(), h.GPrime(), h.LiveNodes()
	st := metrics.Stretch(net, gp, live, sample, rand.New(rand.NewSource(1)))
	deg := metrics.Degrees(net, gp, live)
	fmt.Printf("replayed %q (%d ops) against %s\n", tr.Label, len(tr.Ops), factory.Name)
	fmt.Printf("alive=%d nEver=%d maxStretch=%v bound=%v maxDegRatio=%v largestComp=%v\n",
		len(live), gp.NumNodes(), st.Max, metrics.Bound(gp.NumNodes()), deg.Max,
		metrics.LargestComponentFrac(net))
	return nil
}
