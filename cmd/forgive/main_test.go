package main

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/metrics"
)

func TestHealerFactoriesComplete(t *testing.T) {
	m := healerFactories()
	for _, want := range []string{
		"forgiving-graph", "forgiving-tree", "no-heal", "cycle-heal", "adopt-heal",
	} {
		f, ok := m[want]
		if !ok {
			t.Fatalf("missing healer %q", want)
		}
		h := f.New(graph.Path(3))
		if h.Name() != want {
			t.Fatalf("factory %q builds %q", want, h.Name())
		}
	}
}

func TestAddPoint(t *testing.T) {
	tb := metrics.Table{Columns: []string{"step", "alive", "n ever", "max stretch",
		"bound", "within", "max deg ratio", "largest comp"}}
	addPoint(&tb, harness.Point{
		Steps: 3, Alive: 5, NEver: 8,
		Stretch: metrics.StretchResult{Max: 2},
		Degree:  metrics.DegreeResult{Max: 1.5},
		LCC:     1,
	})
	if len(tb.Rows) != 1 {
		t.Fatal("no row added")
	}
	row := tb.Rows[0]
	if row[0] != "3" || row[3] != "2" || row[5] != "true" {
		t.Fatalf("row = %v", row)
	}
	// Disconnection renders as inf.
	addPoint(&tb, harness.Point{
		NEver:   8,
		Stretch: metrics.StretchResult{Max: 99, Disconnected: 2},
	})
	if tb.Rows[1][3] != "inf" {
		t.Fatalf("disconnected row = %v", tb.Rows[1])
	}
}
