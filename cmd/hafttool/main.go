// Command hafttool inspects half-full trees and replays the paper's
// worked figures as ASCII art.
//
// Usage:
//
//	hafttool -build L          render haft(L) with its primary roots
//	hafttool -merge 5,2,1      merge hafts of the given sizes (Figure 5)
//	hafttool -demo fig2        deletion of a hub → Reconstruction Tree
//	hafttool -demo fig3        haft(7) and its complete-tree decomposition
//	hafttool -demo fig5        binary-addition merge 5+2+1 = 8
//	hafttool -demo fig8        RT shatter and bottom-up re-merge
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/haft"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "hafttool: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		build = flag.Int("build", 0, "render the canonical haft over L leaves")
		merge = flag.String("merge", "", "merge hafts of comma-separated sizes")
		demo  = flag.String("demo", "", "replay a paper figure: fig2, fig3, fig5, fig8")
	)
	flag.Parse()

	switch {
	case *build > 0:
		return renderBuild(*build)
	case *merge != "":
		return renderMerge(*merge)
	case *demo != "":
		return renderDemo(*demo)
	default:
		flag.Usage()
		return fmt.Errorf("choose one of -build, -merge, -demo")
	}
}

func leafLabel(n *haft.Node) string {
	if n.IsLeaf {
		return fmt.Sprintf("%v", n.Payload)
	}
	return fmt.Sprintf("•(%d leaves, h=%d)", n.LeafCount, n.Height)
}

func renderBuild(l int) error {
	h := haft.Build(l, func(i int) any { return fmt.Sprintf("v%d", i) })
	fmt.Printf("haft(%d): depth=%d = ceil(log2 %d)=%d, %d internal nodes\n\n",
		l, haft.Depth(h), l, haft.CeilLog2(l), len(haft.Internal(h)))
	fmt.Println(haft.Render(h, leafLabel))
	roots := haft.PrimaryRoots(h)
	fmt.Printf("primary roots (%d = popcount(%d)):\n", len(roots), l)
	for _, r := range roots {
		fmt.Printf("  complete tree with %d leaves: %s\n", haft.CountLeaves(r), haft.LeafString(r))
	}
	return nil
}

func renderMerge(spec string) error {
	var sizes []int
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return fmt.Errorf("bad size %q", part)
		}
		sizes = append(sizes, v)
	}
	var pieces []*haft.Node
	next := 0
	total := 0
	for _, l := range sizes {
		h := haft.Build(l, func(i int) any { return fmt.Sprintf("v%d", next+i) })
		next += l
		total += l
		fmt.Printf("input haft(%d):\n%s\n", l, haft.Render(h, leafLabel))
		roots, discarded := haft.Strip(h)
		fmt.Printf("strip: %d complete trees, %d joiners discarded\n\n", len(roots), len(discarded))
		pieces = append(pieces, roots...)
	}
	merged := haft.Merge(pieces, nil)
	fmt.Printf("merged haft(%d) — binary addition of the sizes:\n%s",
		total, haft.Render(merged, leafLabel))
	return nil
}

func renderDemo(name string) error {
	switch name {
	case "fig2":
		return demoFig2()
	case "fig3":
		return renderBuild(7)
	case "fig5":
		return renderMerge("5,2,1")
	case "fig6":
		return demoFig6()
	case "fig8":
		return demoFig8()
	default:
		return fmt.Errorf("unknown demo %q", name)
	}
}

// demoFig6 reproduces Figure 6's view: the virtual nodes (real leaf
// avatars and helper nodes) with the processors simulating them.
func demoFig6() error {
	fmt.Println("Figure 6: virtual nodes and the processors simulating them")
	fmt.Println("(9-node star with hub 0; the hub dies, then a survivor dies)")
	g0 := graph.Star(9)
	e := core.NewEngine(g0)
	if err := e.Delete(0); err != nil {
		return err
	}
	fmt.Println("\nafter deleting the hub:")
	fmt.Print(e.RenderRTs())
	if err := e.Delete(3); err != nil {
		return err
	}
	fmt.Println("\nafter also deleting node 3 (its leaf avatar and helper vanish):")
	fmt.Print(e.RenderRTs())
	fmt.Println("\nL(v,x)@p = leaf avatar of G' edge (v,x) simulated by processor p;")
	fmt.Println("H(v,x)@p = helper node in the same slot; rep = the representative leaf.")
	return e.CheckInvariants()
}

// demoFig2 reproduces Figure 2: a deleted hub v with neighbors a..h is
// replaced by its Reconstruction Tree.
func demoFig2() error {
	fmt.Println("Figure 2: node v (hub of a..h) is deleted and replaced by RT(v)")
	edges := make([]repro.Edge, 8)
	for i := range edges {
		edges[i] = repro.Edge{U: 100, V: repro.NodeID(i)}
	}
	net, err := repro.New(edges)
	if err != nil {
		return err
	}
	if err := net.Delete(100); err != nil {
		return err
	}
	fmt.Println("\nactual network after the repair (homomorphic image of RT(v)):")
	for _, e := range net.Edges() {
		fmt.Printf("  %c -- %c\n", 'a'+rune(e.U), 'a'+rune(e.V))
	}
	rs := net.LastRepair()
	fmt.Printf("\nRT(v): %d leaves, depth %d (= ceil(log2 8)), %d helper nodes\n",
		rs.RTLeaves, rs.RTDepth, rs.NewHelpers)
	sr := net.StretchReport()
	fmt.Printf("max stretch %.2f (bound log2(9) = %.2f)\n", sr.Max, sr.Bound)
	return nil
}

// demoFig8 reproduces the Figure 7/8 story: a node simulating helpers
// dies, its RT shatters into fragments, and the fragments strip and
// re-merge bottom-up.
func demoFig8() error {
	fmt.Println("Figures 7-8: deletion inside an existing RT — shatter, strip, re-merge")
	g0 := graph.Star(8)
	net, err := repro.New(toEdges(g0))
	if err != nil {
		return err
	}
	if err := net.Delete(0); err != nil {
		return err
	}
	first := net.LastRepair()
	fmt.Printf("\nstep 1: delete the hub → RT over %d leaves, %d helpers created\n",
		first.RTLeaves, first.NewHelpers)
	if err := net.Delete(2); err != nil {
		return err
	}
	rs := net.LastRepair()
	fmt.Printf("step 2: delete node 2 (a leaf that also simulates a helper)\n")
	fmt.Printf("  virtual nodes removed:   %d (its leaf avatar + its helper)\n", rs.RemovedNodes)
	fmt.Printf("  fragments merged:        %d\n", rs.Components)
	fmt.Printf("  helpers discarded (red): %d\n", rs.DiscardedHelpers)
	fmt.Printf("  helpers created:         %d\n", rs.NewHelpers)
	fmt.Printf("  new RT: %d leaves, depth %d\n", rs.RTLeaves, rs.RTDepth)
	fmt.Println("\nactual network now:")
	for _, e := range net.Edges() {
		fmt.Printf("  %d -- %d\n", e.U, e.V)
	}
	if err := net.CheckInvariants(); err != nil {
		return err
	}
	fmt.Println("\nall invariants hold.")
	return nil
}

func toEdges(g *graph.Graph) []repro.Edge {
	var out []repro.Edge
	for _, e := range g.Edges() {
		out = append(out, repro.Edge{U: repro.NodeID(e.U), V: repro.NodeID(e.V)})
	}
	return out
}
