package main

import (
	"testing"

	"repro/internal/haft"
)

func TestLeafLabel(t *testing.T) {
	leaf := haft.NewLeaf("x")
	if got := leafLabel(leaf); got != "x" {
		t.Fatalf("leaf label = %q", got)
	}
	h := haft.Build(4, nil)
	if got := leafLabel(h); got != "•(4 leaves, h=2)" {
		t.Fatalf("internal label = %q", got)
	}
}

func TestRenderBuildAndMerge(t *testing.T) {
	if err := renderBuild(7); err != nil {
		t.Fatal(err)
	}
	if err := renderMerge("5,2,1"); err != nil {
		t.Fatal(err)
	}
	if err := renderMerge("5,,x"); err == nil {
		t.Fatal("bad merge spec accepted")
	}
	if err := renderMerge("0"); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestDemos(t *testing.T) {
	for _, demo := range []string{"fig2", "fig3", "fig5", "fig6", "fig8"} {
		if err := renderDemo(demo); err != nil {
			t.Fatalf("demo %s: %v", demo, err)
		}
	}
	if err := renderDemo("fig99"); err == nil {
		t.Fatal("unknown demo accepted")
	}
}
