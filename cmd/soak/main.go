// Command soak runs a long randomized churn campaign against the
// Forgiving Graph — both the reference engine and the distributed
// protocol — revalidating every structural invariant continuously and
// reporting distributions of the paper's quantities at the end. It is
// the tool for shaking out rare interleavings beyond what unit tests
// sample.
//
// With -batch k > 1, deletions fire in bursts of up to k through the
// batched-repair pipeline (dist.Simulation.DeleteBatch overlapping
// independent repairs; core.Engine.DeleteBatch as the sequential
// reference), with the burst shape picked by -batch-strategy.
//
// With -dist -bandwidth B, every network edge carries at most B
// message-words per round (the congestion model): repairs heal to the
// same graph, only rounds and the congestion counters change, which
// the soak reports at the end. -no-spread disables the repair leader's
// paced instruction bursts for comparison. -slow-frac F additionally
// clamps the lowest-degree fraction F of nodes to 1 word/round on all
// their links (the EXP-HET heterogeneous capacity map), and
// -delete slow-link aims the deletions at the narrowest links.
//
// Checkpoints run the incremental verification (VerifyDelta: only the
// state repairs touched since the last check), so soaking at n ≥ 10⁵
// no longer pays an O(n) revalidation every interval; the final check
// is always the full one, and -full-check restores it everywhere.
//
// With -dist -transport=chan, the processors run as goroutines over Go
// channels with per-processor logical clocks instead of the
// round-synchronous simulator — the Go scheduler picks the delivery
// interleaving, so long campaigns shake out schedules the deterministic
// simulator never produces. The chan substrate has no bandwidth model:
// it rejects -bandwidth, -slow-frac and -parallel.
//
// With -dist -transport=wire, the processors are sharded across worker
// OS processes and every message crosses loopback TCP (length-prefixed
// frames, per-edge FIFO, reconnect-with-resend) — the most hostile
// delivery substrate the repro has, with real kernel scheduling and
// socket buffering picking the interleaving. Like chan, wire has no
// bandwidth model and rejects -bandwidth, -slow-frac and -parallel.
//
// With -dist -async, the campaign drives the OPEN-LOOP engine instead
// of the blocking calls: operations are submitted on the adversary's
// clock (up to -async-gap rounds between submissions, including zero)
// while earlier repairs are still in flight, exercising mid-repair
// admission, leader-to-leader handoff and deferred inserts. The soak
// drains the engine at every checkpoint before validating, and reports
// the pipeline's throughput, completion-latency distribution, and peak
// concurrent-repair depth at the end.
//
// With -async -coalesce, submissions pass through the coalescing
// admission queue (insert/delete flap pairs annihilate before reaching
// the wire; overlapping pending deletions merge into chained repair
// waves with pre-appointed leaders), the churn is biased toward flap
// pairs so the cancel path is exercised, and the campaign reports the
// queue's decision counters at the end. -coalesce-window sets the hold
// window in driver ticks.
//
// Usage:
//
//	soak [-n N] [-topology NAME] [-steps K] [-seed S] [-insert-p P]
//	     [-check-every C] [-dist] [-parallel] [-full-check]
//	     [-batch K] [-batch-strategy random|disjoint|colliding]
//	     [-delete STRATEGY] [-bandwidth B] [-no-spread] [-slow-frac F]
//	     [-async] [-async-gap G] [-transport sim|chan|wire]
//	     [-coalesce] [-coalesce-window W]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/adversary"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/wirenet"
)

func main() {
	// With -transport=wire the hub re-executes this binary to spawn its
	// shard workers; in a worker, MaybeWorker never returns.
	wirenet.MaybeWorker()
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int("n", 128, "initial node count")
		topology  = flag.String("topology", "powerlaw", "initial topology")
		steps     = flag.Int("steps", 2000, "churn steps")
		seed      = flag.Int64("seed", time.Now().UnixNano(), "random seed (default: time)")
		insertP   = flag.Float64("insert-p", 0.45, "insertion probability per step")
		checkEvy  = flag.Int("check-every", 25, "full invariant re-validation interval")
		useDist   = flag.Bool("dist", false, "soak the distributed protocol instead of the engine")
		parallel  = flag.Bool("parallel", false, "with -dist: goroutine-per-processor delivery")
		batchK    = flag.Int("batch", 1, "deletions per burst (1 = single-deletion path)")
		batchName = flag.String("batch-strategy", "random", "burst shape: random, disjoint, or colliding")
		bandwidth = flag.Int("bandwidth", 0, "with -dist: per-edge cap in words/round (0 = unlimited)")
		noSpread  = flag.Bool("no-spread", false, "with -bandwidth: disable the leader's paced instruction bursts")
		slowFrac  = flag.Float64("slow-frac", 0, "with -dist: mark this fraction of lowest-degree nodes as slow (node cap 1 word/round); inserted nodes join the slow class with the same probability")
		deleteStr = flag.String("delete", "random", "single-deletion strategy (see adversary.Names; slow-link targets minimum-capacity links)")
		fullCheck = flag.Bool("full-check", false, "run the full O(n) verification at every checkpoint instead of the incremental one (the final check is always full)")
		async     = flag.Bool("async", false, "with -dist: drive the open-loop engine (Submit/Tick) instead of the blocking calls")
		asyncGap  = flag.Int("async-gap", 2, "with -async: max rounds the adversary waits between submissions (0 = fully open loop)")
		transp    = flag.String("transport", "sim", "with -dist: message substrate: sim (round simulator, congestion model), chan (goroutine-per-processor channels, logical clocks), or wire (processor shards in worker OS processes over loopback TCP)")
		corruptP  = flag.Float64("corrupt-rate", 0, "with -dist: probability per step of silently corrupting one processor's state (random mode); enables the self-stabilizing audit layer, and checkpoints assert the corruption healed via the full Verify")
		auditPrd  = flag.Int("audit-period", 128, "with -corrupt-rate: audit pulse interval in rounds")
		coalesce  = flag.Bool("coalesce", false, "with -async: enable the coalescing admission queue (cancel insert/delete pairs, merge overlapping deletions) and bias the churn toward flap pairs")
		coalWin   = flag.Int("coalesce-window", 4, "with -coalesce: hold window in driver ticks before a held op launches (0 = admit immediately)")
	)
	flag.Parse()

	gen, err := graph.Generator(*topology)
	if err != nil {
		return err
	}
	if *batchK < 1 {
		return fmt.Errorf("-batch must be >= 1, got %d", *batchK)
	}
	batchStrat, err := adversary.BatchByName(*batchName)
	if err != nil {
		return err
	}
	if *bandwidth < 0 {
		return fmt.Errorf("-bandwidth must be >= 0, got %d", *bandwidth)
	}
	if *bandwidth > 0 && !*useDist {
		return fmt.Errorf("-bandwidth applies to the distributed protocol only; add -dist")
	}
	if *noSpread && *bandwidth == 0 {
		return fmt.Errorf("-no-spread only matters under a finite bandwidth; add -bandwidth")
	}
	if *slowFrac < 0 || *slowFrac >= 1 {
		return fmt.Errorf("-slow-frac must be in [0, 1), got %v", *slowFrac)
	}
	if *slowFrac > 0 && !*useDist {
		return fmt.Errorf("-slow-frac applies to the distributed protocol only; add -dist")
	}
	deleter, err := adversary.ByName(*deleteStr)
	if err != nil {
		return err
	}
	if *transp != "sim" && *transp != "chan" && *transp != "wire" {
		return fmt.Errorf("-transport must be sim, chan or wire, got %q", *transp)
	}
	// chan and wire share the guard set: both substrates deliver on
	// their own (scheduler- or kernel-picked) interleaving and neither
	// carries the simnet congestion model.
	concurrent := *transp == "chan" || *transp == "wire"
	if concurrent && !*useDist {
		return fmt.Errorf("-transport applies to the distributed protocol only; add -dist")
	}
	if concurrent && *bandwidth > 0 {
		return fmt.Errorf("-transport=%s has no bandwidth model (congestion experiments are simnet-only)", *transp)
	}
	if concurrent && *slowFrac > 0 {
		return fmt.Errorf("-slow-frac needs the simnet bandwidth model; drop -transport=%s", *transp)
	}
	if concurrent && *parallel {
		return fmt.Errorf("-parallel selects simnet's shadow-network delivery; -transport=%s is already concurrent", *transp)
	}
	if *async && !*useDist {
		return fmt.Errorf("-async drives the distributed protocol's open-loop engine; add -dist")
	}
	if *async && *batchK > 1 {
		return fmt.Errorf("-async submits operations continuously; it does not combine with -batch")
	}
	if *asyncGap < 0 {
		return fmt.Errorf("-async-gap must be >= 0, got %d", *asyncGap)
	}
	if *corruptP < 0 || *corruptP >= 1 {
		return fmt.Errorf("-corrupt-rate must be in [0, 1), got %v", *corruptP)
	}
	if *corruptP > 0 && !*useDist {
		return fmt.Errorf("-corrupt-rate perturbs distributed processor state; add -dist")
	}
	if *auditPrd < 1 {
		return fmt.Errorf("-audit-period must be >= 1, got %d", *auditPrd)
	}
	// The coalescer sits on the open-loop Submit path; its decisions
	// read only driver-side state, so any transport backend is fine
	// (the differential tests pin sim/chan identity), but the blocking
	// and batch paths never hold ops and have nothing to coalesce.
	if *coalesce && !*async {
		return fmt.Errorf("-coalesce gates the open-loop admission queue; add -dist -async")
	}
	if *coalWin < 0 {
		return fmt.Errorf("-coalesce-window must be >= 0, got %d", *coalWin)
	}
	rng := rand.New(rand.NewSource(*seed))
	g0 := gen(*n, rng)
	fmt.Printf("soak: topology=%s n=%d steps=%d seed=%d dist=%v transport=%s parallel=%v batch=%d strategy=%s delete=%s bandwidth=%d spread=%v slow-frac=%v async=%v coalesce=%v\n",
		*topology, g0.NumNodes(), *steps, *seed, *useDist, *transp, *parallel, *batchK, batchStrat.Name(),
		deleter.Name(), *bandwidth, !*noSpread, *slowFrac, *async, *coalesce)

	var (
		target soakTarget
		sim    *dist.Simulation
	)
	if *useDist {
		s, err := harness.NewSimulationFor(g0, *transp)
		if err != nil {
			return err
		}
		// On wire, Close is what terminates the worker processes.
		defer s.Close()
		s.SetParallel(*parallel)
		s.SetBandwidth(*bandwidth)
		s.SetSpread(!*noSpread)
		if *slowFrac > 0 {
			slow := harness.MarkSlowNodes(s, *slowFrac)
			fmt.Printf("soak: %d slow nodes (node cap 1 word/round)\n", slow)
		}
		if *corruptP > 0 {
			// A large batch makes every audit pass examine all of a
			// processor's records, so convergence latency is a small
			// constant number of periods.
			if err := s.EnableAudit(audit.Config{Period: *auditPrd, Batch: 1 << 12}); err != nil {
				return err
			}
		}
		if *coalesce {
			s.SetCoalescing(dist.CoalesceConfig{Window: *coalWin})
		}
		sim = s
		target = distTarget{s}
	} else {
		target = engineTarget{core.NewEngine(g0)}
	}

	churn := adversary.Churn{
		InsertP:      *insertP,
		AttachK:      2,
		Preferential: true,
		Delete:       deleter,
	}
	if *async {
		dt := target.(distTarget)
		return soakAsync(dt.s, churn, rng, *steps, *asyncGap, *checkEvy, *fullCheck, *slowFrac, *corruptP, *auditPrd, *coalesce)
	}
	// In batch mode the insert-vs-burst decision is drawn by the soak
	// loop itself, so the insert branch must always insert: InsertP 1
	// keeps churn from drawing a second coin and deleting anyway.
	inserter := adversary.Churn{InsertP: 1, AttachK: 2, Preferential: true}
	nextID := graph.NodeID(1 << 20)
	alloc := func() graph.NodeID { nextID++; return nextID }

	repairMsgs := metrics.NewHistogram(0, 400, 20)
	batchWaves := metrics.NewHistogram(0, float64(*batchK)+0.25, *batchK+1)
	degRatios := metrics.NewHistogram(0, 4.25, 17)
	var cong metrics.Congestion
	var coord metrics.Coordination
	var cost checkCost
	start := time.Now()
	deletions, batches, corruptions := 0, 0, 0
	for step := 1; step <= *steps; step++ {
		if *batchK > 1 {
			if rng.Float64() < *insertP {
				op, ok := inserter.Next(target, rng, alloc)
				if !ok {
					fmt.Printf("network empty after %d steps\n", step)
					break
				}
				if err := target.Insert(op.V, op.Nbrs); err != nil {
					return fmt.Errorf("step %d: %v: %w", step, op, err)
				}
				if *slowFrac > 0 && rng.Float64() < *slowFrac {
					target.MarkSlow(op.V)
				}
			} else {
				// Burst: delete up to k nodes as one batch.
				batch := batchStrat.NextBatch(target, rng, *batchK)
				if len(batch) == 0 {
					fmt.Printf("network empty after %d steps\n", step)
					break
				}
				if err := target.DeleteBatch(batch); err != nil {
					return fmt.Errorf("step %d: delete batch %v: %w", step, batch, err)
				}
				deletions += len(batch)
				batches++
				msgs, waves := target.LastBatchCost()
				repairMsgs.Observe(float64(msgs))
				batchWaves.Observe(float64(waves))
				cong = cong.Merge(target.LastCongestion(true))
				coord = coord.Merge(target.LastCoordination(true))
			}
		} else {
			op, ok := churn.Next(target, rng, alloc)
			if !ok {
				fmt.Printf("network empty after %d steps\n", step)
				break
			}
			if op.Insert {
				if err := target.Insert(op.V, op.Nbrs); err != nil {
					return fmt.Errorf("step %d: %v: %w", step, op, err)
				}
				if *slowFrac > 0 && rng.Float64() < *slowFrac {
					target.MarkSlow(op.V)
				}
			} else {
				if err := target.Delete(op.V); err != nil {
					return fmt.Errorf("step %d: %v: %w", step, op, err)
				}
				deletions++
				repairMsgs.Observe(float64(target.LastRepairMessages()))
				cong = cong.Merge(target.LastCongestion(false))
				coord = coord.Merge(target.LastCoordination(false))
			}
		}
		if *corruptP > 0 && rng.Float64() < *corruptP {
			// The footprint mode plants a phantom in-flight repair that
			// keeps the engine busy until the audit sweep retires it —
			// the blocking calls require an idle engine, so that mode is
			// exercised by the -async campaign only.
			mode := dist.CorruptModes[rng.Intn(len(dist.CorruptModes))]
			if mode != dist.CorruptFootprint {
				if _, ok := sim.Corrupt(mode, rng); ok {
					corruptions++
					// Heal window: a later repair reading the corrupted
					// records mid-heal can do anything (the repair
					// protocol is not self-stabilizing against arbitrary
					// state — the audit layer is), so the adversary
					// yields the convergence window before moving again.
					for i := 0; i < 6*(*auditPrd); i++ {
						sim.Tick()
					}
				}
			}
		}
		if step%*checkEvy == 0 {
			check := target.ValidateDelta
			if *fullCheck {
				check = target.Validate
			}
			if *corruptP > 0 {
				// Silent corruption is invisible to the incremental check
				// and is healed in-band: pump empty rounds so the audit
				// layer converges, then assert with the full Verify.
				for i := 0; i < 6*(*auditPrd); i++ {
					sim.Tick()
				}
				check = target.Validate
			}
			ckStart := time.Now()
			if err := check(); err != nil {
				return fmt.Errorf("step %d: INVARIANT VIOLATION: %w", step, err)
			}
			cost.observe(time.Since(ckStart))
			maxRatio := checkpointDegreeRatio(target)
			degRatios.Observe(maxRatio)
			if maxRatio > 4 {
				return fmt.Errorf("step %d: degree ratio %v > 4", step, maxRatio)
			}
		}
	}
	if *corruptP > 0 {
		for i := 0; i < 6*(*auditPrd); i++ {
			sim.Tick()
		}
	}
	if err := target.Validate(); err != nil {
		return fmt.Errorf("final validation: %w", err)
	}

	fmt.Printf("\n%d steps (%d deletions", *steps, deletions)
	if *batchK > 1 {
		fmt.Printf(" in %d batches", batches)
	}
	fmt.Printf(") in %v — all invariants held\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("checkpoint validation: %s; peak RSS %.0f MB\n\n", cost.String(), peakRSSMB())
	if *useDist {
		fmt.Println("repair messages per deletion/batch:")
		fmt.Println(repairMsgs.Render(40))
	}
	if *batchK > 1 {
		fmt.Println("serialization waves per batch:")
		fmt.Println(batchWaves.Render(40))
	}
	fmt.Println("max degree ratio at checkpoints:")
	fmt.Println(degRatios.Render(40))
	if *bandwidth > 0 {
		fmt.Printf("congestion at B=%d: %d congested of %d repair rounds (%.1f%%), max edge backlog %d words, %d queued word-rounds\n",
			*bandwidth, cong.CongestionRounds, cong.Rounds, 100*cong.CongestedFrac(),
			cong.MaxEdgeBacklog, cong.QueuedWords)
	}
	if *useDist {
		fmt.Printf("in-band coordination: %d election + %d sync messages; %d election / %d sync of %d repair rounds (%.1f%% carried coordination)\n",
			coord.ElectionMessages, coord.SyncMessages, coord.ElectionRounds, coord.SyncRounds,
			coord.Rounds, 100*coord.SyncFrac())
	}
	if *corruptP > 0 {
		printAuditSummary(sim, corruptions)
	}
	return nil
}

// checkCost accumulates the wall-clock cost of checkpoint validations.
// At scale this is the number the incremental mode is about: with
// VerifyDelta plus the connectivity certificate a checkpoint costs
// O(region touched since the last check), so avg/max must stay flat as
// n grows (the EXP-SCALE table in EXPERIMENTS.md records the sweep).
type checkCost struct {
	n     int
	total time.Duration
	max   time.Duration
}

func (c *checkCost) observe(d time.Duration) {
	c.n++
	c.total += d
	if d > c.max {
		c.max = d
	}
}

func (c *checkCost) String() string {
	if c.n == 0 {
		return "no checkpoints"
	}
	avg := c.total / time.Duration(c.n)
	return fmt.Sprintf("%d checkpoints: avg %v, max %v", c.n, avg.Round(10*time.Microsecond), c.max.Round(10*time.Microsecond))
}

// peakRSSMB reads the process's high-water resident set from
// /proc/self/status (Linux), falling back to the Go heap's Sys figure
// where /proc is unavailable.
func peakRSSMB() float64 {
	if b, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
				f := strings.Fields(rest)
				if len(f) >= 1 {
					if kb, err := strconv.ParseFloat(f[0], 64); err == nil {
						return kb / 1024
					}
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.Sys) / (1 << 20)
}

// printAuditSummary reports the audit layer's cumulative counters and
// transport-level traffic at the end of a corruption campaign.
func printAuditSummary(s *dist.Simulation, corruptions int) {
	st := s.AuditStats()
	msgs, rounds := s.AuditTraffic()
	fmt.Printf("audit: %d corruptions injected; %d passes, %d probes, %d mismatches, %d repairs, %d deferred; %d audit messages over %d audit rounds\n",
		corruptions, st.Passes, st.Probes, st.Mismatches, st.Repairs, st.Deferred, msgs, rounds)
}

// soakAsync drives the open-loop engine: one submission per step, up
// to maxGap rounds of ticking in between, repairs pipelining freely.
// The adversary decodes its moves against the engine's live view and
// skips victims it has already submitted (their deletion is pending or
// in flight), so every submission is valid — any rejection is an
// engine bug and fails the soak. Checkpoints drain the engine first,
// then run the usual (incremental) validation.
func soakAsync(s *dist.Simulation, churn adversary.Churn, rng *rand.Rand,
	steps, maxGap, checkEvery int, fullCheck bool, slowFrac, corruptP float64, auditPeriod int, coalesce bool) error {

	nextID := graph.NodeID(1 << 20)
	alloc := func() graph.NodeID { nextID++; return nextID }
	view := distTarget{s}
	adv := adversary.OpenLoop{Churn: churn, MaxGap: maxGap}

	var pipe metrics.Pipeline
	latencies := metrics.NewHistogram(0, 400, 20)
	degRatios := metrics.NewHistogram(0, 4.25, 17)
	outstanding := make(map[graph.NodeID]struct{}) // submitted, not yet completed
	var cost checkCost
	start := time.Now()
	deletions, corruptions := 0, 0

	// runCounted advances up to max rounds, counting each and sampling
	// the in-flight depth per round — admissions triggered by mid-drain
	// completions can raise the depth between submissions.
	runCounted := func(max int) {
		for r := 0; r < max && !s.Idle(); r++ {
			s.Tick()
			pipe.Rounds++
			pipe.ObserveInFlight(s.InFlight())
		}
	}

	drainEvents := func() error {
		for _, ev := range s.Poll() {
			switch ev.Kind {
			case dist.EventRepairDone, dist.EventInsertApplied:
				delete(outstanding, ev.V)
				pipe.ObserveLatency(ev.Latency)
				latencies.Observe(float64(ev.Latency))
			case dist.EventOpCancelled:
				// A coalesced insert/delete pair: both ops name the same
				// node and neither will complete. No latency sample — the
				// work never went to the wire, which is the point.
				delete(outstanding, ev.V)
			case dist.EventOpRejected:
				return fmt.Errorf("engine rejected %v: %w", ev.Op, ev.Err)
			}
		}
		return nil
	}

	for step := 1; step <= steps; step++ {
		// Decode a timed move whose participants are not already pending.
		var op adversary.Op
		gap := 0
		ok := false
		for attempt := 0; attempt < 8; attempt++ {
			cand, more := adv.Next(view, rng, alloc)
			if !more {
				break
			}
			clean := true
			if _, dup := outstanding[cand.Op.V]; dup {
				clean = false
			}
			for _, x := range cand.Op.Nbrs {
				if _, dup := outstanding[x]; dup {
					clean = false
				}
			}
			if clean {
				op, gap, ok = cand.Op, cand.Gap, true
				break
			}
		}
		if !ok {
			// Nothing submittable right now: let the network advance.
			runCounted(1)
			if err := drainEvents(); err != nil {
				return fmt.Errorf("step %d: %w", step, err)
			}
			continue
		}
		var dop dist.Op
		if op.Insert {
			dop = dist.Op{Kind: dist.OpInsert, V: op.V, Nbrs: op.Nbrs}
		} else {
			dop = dist.Op{Kind: dist.OpDelete, V: op.V}
			deletions++
		}
		if err := s.Submit(dop); err != nil {
			return fmt.Errorf("step %d: submit %v: %w", step, op, err)
		}
		outstanding[op.V] = struct{}{}
		pipe.Submitted++
		pipe.ObserveInFlight(s.InFlight())
		if coalesce && op.Insert && rng.Float64() < 0.35 {
			// Flap bait: the node leaves right after joining — classic
			// membership churn, and exactly the pair the admission queue
			// exists to annihilate. (The adversary's own moves never
			// target an outstanding node, so without this bias the
			// cancel path would go unexercised.)
			if err := s.Submit(dist.Op{Kind: dist.OpDelete, V: op.V}); err != nil {
				return fmt.Errorf("step %d: flap delete %d: %w", step, op.V, err)
			}
			deletions++
			pipe.Submitted++
		}
		if op.Insert && slowFrac > 0 && rng.Float64() < slowFrac {
			// The node cap is registered up front; it bites as soon as
			// the (possibly deferred) insert applies.
			s.SetNodeBandwidth(op.V, 1)
		}
		runCounted(gap)
		if err := drainEvents(); err != nil {
			return fmt.Errorf("step %d: %w", step, err)
		}
		if corruptP > 0 && rng.Float64() < corruptP {
			// Mid-churn injection: repairs may be in flight; Corrupt
			// itself steers clear of their footprints (pending regions
			// are RT-closed, so nothing already submitted can read the
			// perturbed records). The heal pump gives the audit its
			// convergence window before the next submission — in-flight
			// repairs keep draining underneath it.
			mode := dist.CorruptModes[rng.Intn(len(dist.CorruptModes))]
			if _, ok := s.Corrupt(mode, rng); ok {
				corruptions++
				for i := 0; i < 6*auditPeriod; i++ {
					s.Tick()
				}
				if err := drainEvents(); err != nil {
					return fmt.Errorf("step %d: %w", step, err)
				}
			}
		}

		if step%checkEvery == 0 {
			runCounted(1 << 22)
			if !s.Idle() {
				return fmt.Errorf("step %d: engine failed to drain for checkpoint (pending %d, inflight %d)", step, s.PendingOps(), s.InFlight())
			}
			if err := drainEvents(); err != nil {
				return fmt.Errorf("step %d: %w", step, err)
			}
			check := s.VerifyDelta
			if fullCheck {
				check = func(int) error { return s.Verify() }
			}
			if corruptP > 0 {
				// Pump empty rounds so the audit layer converges on any
				// outstanding corruption, then assert with the full check.
				for i := 0; i < 6*auditPeriod; i++ {
					s.Tick()
				}
				check = func(int) error { return s.Verify() }
			}
			ckStart := time.Now()
			if err := check(8); err != nil {
				return fmt.Errorf("step %d: INVARIANT VIOLATION: %w", step, err)
			}
			cost.observe(time.Since(ckStart))
			// Incrementally maintained max ratio: the last O(n) sweep
			// (plus two graph clones) is gone from the checkpoint loop.
			maxRatio, _ := s.MaxDegreeRatio()
			degRatios.Observe(maxRatio)
			if maxRatio > 4 {
				return fmt.Errorf("step %d: degree ratio %v > 4", step, maxRatio)
			}
		}
	}
	// The tail drain counts its rounds too — throughput is ops over
	// EVERY round the campaign consumed, backlog drain included.
	runCounted(1 << 22)
	if !s.Idle() {
		return fmt.Errorf("final drain: engine failed to drain")
	}
	if err := drainEvents(); err != nil {
		return fmt.Errorf("final: %w", err)
	}
	if corruptP > 0 {
		for i := 0; i < 6*auditPeriod; i++ {
			s.Tick()
		}
	}
	if err := s.Verify(); err != nil {
		return fmt.Errorf("final validation: %w", err)
	}

	fmt.Printf("\n%d steps (%d deletions) open-loop in %v — all invariants held\n",
		steps, deletions, time.Since(start).Round(time.Millisecond))
	fmt.Printf("checkpoint validation: %s; peak RSS %.0f MB\n\n", cost.String(), peakRSSMB())
	lat := pipe.Latency()
	fmt.Printf("pipeline: %d ops over %d rounds (%.3f ops/round), peak %d repairs in flight\n",
		pipe.Completed, pipe.Rounds, pipe.Throughput(), pipe.PeakInFlight)
	fmt.Printf("completion latency: mean %.1f p50 %.0f p95 %.0f max %.0f rounds\n",
		lat.Mean, lat.P50, lat.P95, lat.Max)
	fmt.Println("completion latency distribution (rounds):")
	fmt.Println(latencies.Render(40))
	fmt.Println("max degree ratio at checkpoints:")
	fmt.Println(degRatios.Render(40))
	if coalesce {
		st := s.CoalesceStats()
		co := metrics.Coalesce{}.Add(st.Submitted, st.Cancelled, st.Merged, st.Admitted, st.MessagesSaved)
		fmt.Printf("coalescing: %d submitted, %d cancelled (%.1f%%), %d merged, %d admitted; >= %d protocol messages never sent\n",
			co.Submitted, co.Cancelled, 100*co.CancelledFrac(), co.Merged, co.Admitted, co.MessagesSaved)
	}
	if corruptP > 0 {
		printAuditSummary(s, corruptions)
	}
	return nil
}

// soakTarget abstracts the two implementations for the soak loop; it
// also satisfies adversary.View.
type soakTarget interface {
	adversary.View
	Insert(v graph.NodeID, nbrs []graph.NodeID) error
	Delete(v graph.NodeID) error
	DeleteBatch(vs []graph.NodeID) error
	Validate() error
	// ValidateDelta is the incremental checkpoint validation: only the
	// state touched since the last validation (full falls back where no
	// incremental mode exists).
	ValidateDelta() error
	// MarkSlow clamps one node's links to 1 word/round (no-op for the
	// engine, which has no network).
	MarkSlow(v graph.NodeID)
	LastRepairMessages() int
	// LastBatchCost returns the messages and serialization waves of the
	// most recent batch.
	LastBatchCost() (msgs, waves int)
	// LastCongestion returns the congestion counters of the most recent
	// batch (batch true) or single deletion (batch false); zero for the
	// engine and under unlimited bandwidth.
	LastCongestion(batch bool) metrics.Congestion
	// LastCoordination returns the in-band coordination counters
	// (election/sync rounds and messages) the same way; zero for the
	// engine, which has no protocol.
	LastCoordination(batch bool) metrics.Coordination
}

// checkpointDegreeRatio reads the maximum physical/G′ degree ratio:
// O(1) amortized from the incremental tracker when the target exposes
// one (dist), falling back to the O(n) metrics.Degrees sweep (engine).
func checkpointDegreeRatio(target soakTarget) float64 {
	if tr, ok := target.(interface {
		MaxDegreeRatio() (float64, graph.NodeID)
	}); ok {
		r, _ := tr.MaxDegreeRatio()
		return r
	}
	return metrics.Degrees(target.Network(), target.GPrime(), target.LiveNodes()).Max
}

type engineTarget struct{ e *core.Engine }

func (t engineTarget) LiveNodes() []graph.NodeID { return t.e.LiveNodes() }
func (t engineTarget) Network() *graph.Graph     { return t.e.Physical() }
func (t engineTarget) GPrime() *graph.Graph      { return t.e.GPrime() }
func (t engineTarget) Insert(v graph.NodeID, nbrs []graph.NodeID) error {
	return t.e.Insert(v, nbrs)
}
func (t engineTarget) Delete(v graph.NodeID) error         { return t.e.Delete(v) }
func (t engineTarget) DeleteBatch(vs []graph.NodeID) error { return t.e.DeleteBatch(vs) }
func (t engineTarget) Validate() error                     { return t.e.CheckInvariants() }
func (t engineTarget) ValidateDelta() error                { return t.e.CheckInvariants() }
func (t engineTarget) MarkSlow(graph.NodeID)               {}
func (t engineTarget) LastRepairMessages() int             { return 0 }
func (t engineTarget) LastBatchCost() (int, int)           { return 0, t.e.LastBatchRepair().Batch }
func (t engineTarget) LastCongestion(bool) metrics.Congestion {
	return metrics.Congestion{}
}

func (t engineTarget) LastCoordination(bool) metrics.Coordination {
	return metrics.Coordination{}
}

type distTarget struct{ s *dist.Simulation }

func (t distTarget) LiveNodes() []graph.NodeID { return t.s.LiveNodes() }
func (t distTarget) Network() *graph.Graph     { return t.s.Physical() }
func (t distTarget) GPrime() *graph.Graph      { return t.s.GPrime() }
func (t distTarget) Insert(v graph.NodeID, nbrs []graph.NodeID) error {
	return t.s.Insert(v, nbrs)
}
func (t distTarget) Delete(v graph.NodeID) error         { return t.s.Delete(v) }
func (t distTarget) DeleteBatch(vs []graph.NodeID) error { return t.s.DeleteBatch(vs) }
func (t distTarget) Validate() error                     { return t.s.Verify() }
func (t distTarget) ValidateDelta() error                { return t.s.VerifyDelta(8) }
func (t distTarget) MarkSlow(v graph.NodeID)             { t.s.SetNodeBandwidth(v, 1) }

// EdgeCapacity makes distTarget an adversary.CapacityView, so the
// slow-link deletion strategy can aim at the narrowest links.
func (t distTarget) EdgeCapacity(from, to graph.NodeID) int {
	return t.s.EdgeCapacity(from, to)
}

// StubCount / StubAt make distTarget an adversary.StubView, so
// preferential-attachment churn samples the simulation's incremental
// stub index in O(log n) instead of materializing the O(n+m) stub
// slice per insert.
func (t distTarget) StubCount() int            { return t.s.StubCount() }
func (t distTarget) StubAt(i int) graph.NodeID { return t.s.StubAt(i) }

// MaxDegreeRatio forwards the incremental degree tracker, sparing the
// checkpoint loop the O(n) metrics.Degrees sweep.
func (t distTarget) MaxDegreeRatio() (float64, graph.NodeID) { return t.s.MaxDegreeRatio() }
func (t distTarget) LastRepairMessages() int                 { return t.s.LastRecovery().Messages }
func (t distTarget) LastBatchCost() (int, int) {
	bs := t.s.LastBatch()
	return bs.Messages, bs.Waves
}
func (t distTarget) LastCongestion(batch bool) metrics.Congestion {
	var c metrics.Congestion
	if batch {
		bs := t.s.LastBatch()
		return c.Add(bs.QueuedWords, bs.MaxEdgeBacklog, bs.CongestionRounds, bs.Rounds)
	}
	rs := t.s.LastRecovery()
	return c.Add(rs.QueuedWords, rs.MaxEdgeBacklog, rs.CongestionRounds, rs.Rounds)
}

func (t distTarget) LastCoordination(batch bool) metrics.Coordination {
	var c metrics.Coordination
	if batch {
		bs := t.s.LastBatch()
		return c.Add(bs.ElectionRounds, bs.SyncRounds, bs.ElectionMessages, bs.SyncMessages, bs.Rounds)
	}
	rs := t.s.LastRecovery()
	return c.Add(rs.ElectionRounds, rs.SyncRounds, rs.ElectionMessages, rs.SyncMessages, rs.Rounds)
}
