package repro_test

import (
	"fmt"

	"repro"
)

// The basic lifecycle: build a network, survive a deletion, audit the
// guarantees.
func ExampleNetwork() {
	net, err := repro.New([]repro.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4},
	})
	if err != nil {
		panic(err)
	}
	// The adversary deletes the hub; the Forgiving Graph replaces it
	// with a Reconstruction Tree over the survivors.
	if err := net.Delete(0); err != nil {
		panic(err)
	}
	fmt.Println("alive:", net.NumAlive())
	fmt.Println("connected 1-3:", net.Distance(1, 3) > 0)
	fmt.Println("invariants:", net.CheckInvariants() == nil)
	// Output:
	// alive: 4
	// connected 1-3: true
	// invariants: true
}

// Repair statistics expose the Reconstruction Tree the paper describes.
func ExampleNetwork_LastRepair() {
	net, err := repro.New([]repro.Edge{
		{U: 9, V: 1}, {U: 9, V: 2}, {U: 9, V: 3}, {U: 9, V: 4},
		{U: 9, V: 5}, {U: 9, V: 6}, {U: 9, V: 7}, {U: 9, V: 8},
	})
	if err != nil {
		panic(err)
	}
	if err := net.Delete(9); err != nil {
		panic(err)
	}
	rs := net.LastRepair()
	fmt.Printf("RT over %d leaves, depth %d, %d helpers\n",
		rs.RTLeaves, rs.RTDepth, rs.NewHelpers)
	// Output:
	// RT over 8 leaves, depth 3, 7 helpers
}

// StretchReport audits Theorem 1.2 on demand.
func ExampleNetwork_StretchReport() {
	net, err := repro.New([]repro.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
	})
	if err != nil {
		panic(err)
	}
	if err := net.Delete(2); err != nil {
		panic(err)
	}
	r := net.StretchReport()
	fmt.Println("within bound:", r.Satisfied)
	fmt.Println("pairs measured:", r.Pairs)
	// Output:
	// within bound: true
	// pairs measured: 6
}
