// Adversarial star: the Theorem 2 scenario. The star K_{1,n-1} is the
// worst case for self-healing — when the hub dies, any repair must pay
// either in degree or in stretch: beta >= 1/2 * log_{alpha-1}(n-1).
//
// This example deletes the hub for growing n and shows the Forgiving
// Graph realizing the asymptotically optimal corner of that tradeoff:
// constant degree amplification with logarithmic stretch.
//
// Run with: go run ./examples/adversarialstar
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	fmt.Println("deleting the hub of K_{1,n-1}: realized (alpha, beta) vs the Theorem 2 bound")
	fmt.Println()
	fmt.Println("    n  alpha(deg)  beta(stretch)  bound log2(n)  lower bound (1/2 log_{a-1}(n-1))")
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		edges := make([]repro.Edge, n-1)
		for i := 1; i < n; i++ {
			edges[i-1] = repro.Edge{U: 0, V: repro.NodeID(i)}
		}
		net, err := repro.New(edges)
		if err != nil {
			log.Fatal(err)
		}
		if err := net.Delete(0); err != nil {
			log.Fatal(err)
		}

		// alpha: worst degree amplification across survivors.
		dr := net.DegreeReport()
		// beta: worst stretch. Survivors were at distance 2 through
		// the hub; now they route through the Reconstruction Tree.
		sr := net.StretchReport()

		lb := math.NaN()
		if dr.MaxRatio > 2 {
			lb = 0.5 * math.Log(float64(n-1)) / math.Log(dr.MaxRatio-1)
		}
		fmt.Printf("%5d  %10.2f  %13.2f  %13.2f  %25.2f\n",
			n, dr.MaxRatio, sr.Max, sr.Bound, lb)
		if !sr.Satisfied {
			log.Fatalf("n=%d: stretch bound violated", n)
		}
		if err := net.CheckInvariants(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	fmt.Println("beta grows like log n while alpha stays <= 4: within a small constant of optimal.")
	fmt.Println("compare: adopt-style repair gets beta = 1 but alpha = n-1; a ring repair gets")
	fmt.Println("alpha ~ 2 but beta ~ n/4 — exactly the tradeoff Theorem 2 proves unavoidable.")
}
