// Grid maintenance: an infrastructure-flavored scenario. A datacenter
// fabric laid out as a torus-free grid loses racks to rolling
// maintenance (deterministic sweeps, the worst kind of "adversary" for
// a fixed topology), and the Forgiving Graph patches routing around the
// holes without inflating any switch's port count.
//
// Run with: go run ./examples/gridmaintenance
package main

import (
	"fmt"
	"log"

	"repro"
)

const side = 8

func id(r, c int) repro.NodeID { return repro.NodeID(r*side + c) }

func main() {
	var edges []repro.Edge
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if r > 0 {
				edges = append(edges, repro.Edge{U: id(r-1, c), V: id(r, c)})
			}
			if c > 0 {
				edges = append(edges, repro.Edge{U: id(r, c-1), V: id(r, c)})
			}
		}
	}
	net, err := repro.New(edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%dx%d grid fabric: %d switches, %d links\n\n", side, side, net.NumAlive(), len(edges))

	// Maintenance sweep 1: take down every switch on the main diagonal
	// (cuts the grid's cheapest paths).
	for i := 0; i < side; i++ {
		if err := net.Delete(id(i, i)); err != nil {
			log.Fatal(err)
		}
	}
	report(net, "after diagonal sweep (8 switches down)")

	// Maintenance sweep 2: an entire row.
	for c := 0; c < side; c++ {
		if c == 3 {
			continue // row 3 col 3 already gone
		}
		if err := net.Delete(id(3, c)); err != nil {
			log.Fatal(err)
		}
	}
	report(net, "after row-3 sweep (15 switches down)")

	// Replacement hardware arrives: new switches join next to the
	// survivors with two uplinks each.
	next := repro.NodeID(1000)
	live := net.Nodes()
	for i := 0; i < 6; i++ {
		nbrs := []repro.NodeID{live[i*3%len(live)], live[(i*5+7)%len(live)]}
		if nbrs[0] == nbrs[1] {
			nbrs = nbrs[:1]
		}
		if err := net.Insert(next, nbrs); err != nil {
			log.Fatal(err)
		}
		next++
	}
	report(net, "after installing 6 replacement switches")

	if err := net.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("fabric healthy: all invariants hold.")
}

func report(net *repro.Network, label string) {
	sr := net.StretchReport()
	dr := net.DegreeReport()
	// Sample a long route: opposite corners.
	d := net.Distance(id(0, side-1), id(side-1, 0))
	fmt.Printf("%s:\n", label)
	fmt.Printf("  switches alive:      %d\n", net.NumAlive())
	fmt.Printf("  corner-to-corner:    %d hops (no-deletion fabric: %d)\n",
		d, net.DistancePrime(id(0, side-1), id(side-1, 0)))
	fmt.Printf("  worst stretch:       %.2f (guarantee: %.2f)\n", sr.Max, sr.Bound)
	fmt.Printf("  worst port overhead: %.2fx original\n\n", dr.MaxRatio)
	if !sr.Satisfied {
		log.Fatalf("stretch guarantee violated %s", label)
	}
}
