// Message cost: run the actual distributed repair protocol and watch
// Lemma 4 hold — O(d log n) messages of size O(log n) per deletion,
// with sublinear per-processor traffic — on a live sweep.
//
// Run with: go run ./examples/messagecost
package main

import (
	"fmt"
	"log"
	"math"

	"repro/protocol"
)

func main() {
	fmt.Println("deleting the hub of K_{1,n-1} with the message-level protocol (Appendix A):")
	fmt.Println()
	fmt.Println("    n      d   messages  msgs/(d·log2 n)  rounds  maxMsgWords  maxWords/log2 n")
	for _, n := range []int{16, 32, 64, 128, 256, 512, 1024} {
		edges := make([]protocol.Edge, n-1)
		for i := 1; i < n; i++ {
			edges[i-1] = protocol.Edge{U: 0, V: protocol.NodeID(i)}
		}
		net, err := protocol.New(edges)
		if err != nil {
			log.Fatal(err)
		}
		// Goroutine-per-processor delivery: the repair truly runs
		// concurrently; results are identical to sequential mode.
		net.SetParallel(true)
		if err := net.Delete(0); err != nil {
			log.Fatal(err)
		}
		if err := net.Verify(); err != nil {
			log.Fatal(err)
		}
		rc := net.LastRepair()
		d := float64(rc.DegreePrime)
		logn := math.Log2(float64(n))
		fmt.Printf("%5d  %5d  %8d  %15.3f  %6d  %11d  %15.3f\n",
			n, rc.DegreePrime, rc.Messages,
			float64(rc.Messages)/(d*logn), rc.Rounds, rc.MaxWords,
			float64(rc.MaxWords)/logn)
	}
	fmt.Println()
	fmt.Println("the normalized columns stay bounded as n grows: Lemma 4 reproduced.")
	fmt.Println("(after the repair the survivors form one Reconstruction Tree; every")
	fmt.Println("structural invariant was revalidated from the processors' local records.)")
}
