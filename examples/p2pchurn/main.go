// P2P churn: the paper's motivating scenario. A peer-to-peer overlay
// suffers continuous adversarial churn — peers join with arbitrary
// connections and an omniscient attacker keeps deleting the
// highest-degree peer — while the Forgiving Graph keeps the overlay
// connected with provably low stretch.
//
// Run with: go run ./examples/p2pchurn
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(2009)) // PODC 2009

	// Bootstrap: 50 peers joining one by one, each knowing 1-3 peers.
	var edges []repro.Edge
	for i := 1; i < 50; i++ {
		k := rng.Intn(3) + 1
		seen := map[int]bool{}
		for j := 0; j < k; j++ {
			t := rng.Intn(i)
			if !seen[t] {
				seen[t] = true
				edges = append(edges, repro.Edge{U: repro.NodeID(i), V: repro.NodeID(t)})
			}
		}
	}
	net, err := repro.New(edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped overlay: %d peers\n\n", net.NumAlive())

	nextID := repro.NodeID(1000)
	fmt.Println("step  alive  everSeen  maxStretch  bound  maxDegRatio")
	for step := 1; step <= 120; step++ {
		peers := net.Nodes()
		if rng.Float64() < 0.45 {
			// A new peer joins, attaching to up to 2 random peers.
			k := rng.Intn(2) + 1
			if k > len(peers) {
				k = len(peers)
			}
			nbrs := make([]repro.NodeID, 0, k)
			for _, idx := range rng.Perm(len(peers))[:k] {
				nbrs = append(nbrs, peers[idx])
			}
			if err := net.Insert(nextID, nbrs); err != nil {
				log.Fatal(err)
			}
			nextID++
		} else {
			// The omniscient adversary kills the busiest peer.
			victim, best := peers[0], -1
			for _, p := range peers {
				if d := net.Degree(p); d > best {
					victim, best = p, d
				}
			}
			if err := net.Delete(victim); err != nil {
				log.Fatal(err)
			}
		}
		if step%20 == 0 {
			sr := net.StretchReport()
			dr := net.DegreeReport()
			fmt.Printf("%4d  %5d  %8d  %10.2f  %5.2f  %11.2f\n",
				step, net.NumAlive(), net.NumEver(), sr.Max, sr.Bound, dr.MaxRatio)
			if !sr.Satisfied {
				log.Fatalf("stretch bound violated at step %d", step)
			}
		}
	}

	// Final connectivity check: any two live peers can still reach
	// each other if they could in the insertions-only graph.
	peers := net.Nodes()
	unreachable := 0
	for i := 0; i < 200; i++ {
		u := peers[rng.Intn(len(peers))]
		v := peers[rng.Intn(len(peers))]
		if net.DistancePrime(u, v) >= 0 && net.Distance(u, v) < 0 {
			unreachable++
		}
	}
	fmt.Printf("\nafter 120 churn events: %d peers alive, %d unreachable pairs (want 0)\n",
		net.NumAlive(), unreachable)
	if err := net.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("overlay healthy: all invariants hold.")
}
