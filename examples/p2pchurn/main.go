// P2P churn: the paper's motivating scenario, driven OPEN-LOOP. A
// peer-to-peer overlay suffers continuous adversarial churn — peers
// join with arbitrary connections while an omniscient attacker keeps
// killing the busiest peers — and the adversary does not wait for
// repairs to finish: operations are submitted on its own clock through
// the streaming protocol API (Submit/Tick/Poll), repairs of disjoint
// regions pipeline, and typed completion events report every repair's
// cost as it lands. The Forgiving Graph keeps the overlay connected
// with provably low degree amplification throughout.
//
// Run with: go run ./examples/p2pchurn
//
// With -transport=chan the peers run as goroutines over Go channels
// (per-processor logical clocks, the Go scheduler picking the delivery
// interleaving) instead of the round-synchronous simulator. With
// -transport=wire the overlay becomes a real multi-process system:
// the peers are sharded across -shards worker OS processes and every
// protocol message crosses loopback TCP. The healed overlay is
// identical in all three modes — that invariance is exactly what the
// transport-equivalence tests assert.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/wirenet"
	"repro/protocol"
)

func main() {
	// When this binary re-executes itself as a wire-transport shard
	// worker, MaybeWorker takes over and never returns.
	wirenet.MaybeWorker()
	transp := flag.String("transport", "sim", "message substrate: sim, chan or wire")
	shards := flag.Int("shards", 4, "with -transport=wire: worker process count")
	flag.Parse()
	kind, err := protocol.ParseTransport(*transp)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2009)) // PODC 2009

	// Bootstrap: 300 peers joining one by one, each knowing 1-3 peers.
	var edges []protocol.Edge
	for i := 1; i < 300; i++ {
		k := rng.Intn(3) + 1
		seen := map[int]bool{}
		for j := 0; j < k; j++ {
			t := rng.Intn(i)
			if !seen[t] {
				seen[t] = true
				edges = append(edges, protocol.Edge{U: protocol.NodeID(i), V: protocol.NodeID(t)})
			}
		}
	}
	opts := []protocol.Option{protocol.WithTransport(kind)}
	if kind == protocol.TransportWire {
		opts = append(opts, protocol.WithWireShards(*shards))
	}
	net, err := protocol.New(edges, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()
	fmt.Printf("bootstrapped overlay: %d peers (%s transport)\n", net.NumAlive(), kind)
	if pids := net.WorkerPIDs(); len(pids) > 0 {
		fmt.Printf("fabric: hub pid %d + %d shard worker processes %v\n", os.Getpid(), len(pids), pids)
	}
	fmt.Println()

	// The churn stream: 120 events submitted open-loop, at most two
	// rounds apart, repairs pipelining underneath. Peers pending
	// deletion are skipped as targets (the adversary submitted their
	// death already; the overlay just hasn't finished absorbing it).
	nextID := protocol.NodeID(1000)
	pending := map[protocol.NodeID]bool{}
	repairs, peak := 0, 0
	lastMsgs := -1 // most recent completed repair's window messages
	fmt.Println("step  submitted  inflight  repaired  msgs(last window)")
	for step := 1; step <= 120; step++ {
		peers := net.Nodes()
		if len(peers) == 0 {
			break
		}
		if rng.Float64() < 0.45 {
			// A new peer joins, attaching to up to 2 random peers. If it
			// lands in a damaged region the engine defers it until the
			// region heals — the join just takes a few rounds longer.
			k := rng.Intn(2) + 1
			nbrs := make([]protocol.NodeID, 0, k)
			for _, idx := range rng.Perm(len(peers)) {
				p := peers[idx]
				if !pending[p] {
					nbrs = append(nbrs, p)
				}
				if len(nbrs) == k {
					break
				}
			}
			if len(nbrs) == 0 {
				continue
			}
			if err := net.Submit(protocol.InsertOp(nextID, nbrs...)); err != nil {
				log.Fatal(err)
			}
			pending[nextID] = true
			nextID++
		} else {
			// The attacker kills the busiest of a random sample of
			// peers (it cannot stall the overlay by hammering one
			// region: sampled victims spread across the graph, so their
			// repairs pipeline).
			victim, best := protocol.NodeID(-1), -1
			for _, idx := range rng.Perm(len(peers))[:min(3, len(peers))] {
				p := peers[idx]
				if pending[p] {
					continue
				}
				if d := net.Degree(p); d > best {
					victim, best = p, d
				}
			}
			if best < 0 {
				continue
			}
			if err := net.Submit(protocol.DeleteOp(victim)); err != nil {
				log.Fatal(err)
			}
			pending[victim] = true
		}
		// The adversary's clock: 4-8 rounds per event, sampling the
		// pipeline depth each round (handoffs can raise it mid-gap).
		for r := 4 + rng.Intn(5); r > 0 && !net.Idle(); r-- {
			net.Tick()
			if f := net.InFlight(); f > peak {
				peak = f
			}
		}

		for _, ev := range net.Poll() {
			switch ev.Kind {
			case protocol.EventRepairDone:
				repairs++
				// Messages is the repair's stats-window delta; while
				// several repairs overlap the windows share traffic, so
				// it is a per-repair observation, not a summable total.
				lastMsgs = ev.Repair.Messages
				delete(pending, ev.V)
			case protocol.EventInsertApplied:
				delete(pending, ev.V)
			case protocol.EventOpRejected:
				log.Fatalf("step %d: op rejected: %v", step, ev.Err)
			}
		}
		if step%20 == 0 {
			last := "-"
			if lastMsgs >= 0 {
				last = fmt.Sprint(lastMsgs)
			}
			fmt.Printf("%4d  %9d  %8d  %8d  %17s\n",
				step, len(pending), net.InFlight(), repairs, last)
		}
	}

	// Drain the tail of the pipeline and validate everything.
	if err := net.Drain(); err != nil {
		log.Fatal(err)
	}
	for _, ev := range net.Poll() {
		if ev.Kind == protocol.EventRepairDone {
			repairs++
		}
	}

	// Final connectivity check: any two live peers can still reach each
	// other.
	peers := net.Nodes()
	unreachable := 0
	for i := 0; i < 200; i++ {
		u := peers[rng.Intn(len(peers))]
		v := peers[rng.Intn(len(peers))]
		if net.Distance(u, v) < 0 {
			unreachable++
		}
	}
	fmt.Printf("\nafter 120 open-loop churn events: %d peers alive, %d repairs, peak %d in flight, %d unreachable pairs (want 0)\n",
		net.NumAlive(), repairs, peak, unreachable)
	if unreachable > 0 {
		log.Fatal("overlay lost connectivity")
	}
	if err := net.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("overlay healthy: all invariants hold.")
}
