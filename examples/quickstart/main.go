// Quickstart: build a small network, let an adversary delete a node,
// and watch the Forgiving Graph keep distances and degrees in check.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A tiny overlay: a hub (0) with a ring around it.
	edges := []repro.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}, {U: 0, V: 5},
		{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 1},
	}
	net, err := repro.New(edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial network: %d nodes, %d edges\n", net.NumAlive(), len(net.Edges()))

	// The adversary kills the hub.
	if err := net.Delete(0); err != nil {
		log.Fatal(err)
	}
	rs := net.LastRepair()
	fmt.Printf("deleted the hub: repair merged %d pieces into a Reconstruction Tree "+
		"over %d leaves (depth %d), creating %d helper nodes\n",
		rs.Components, rs.RTLeaves, rs.RTDepth, rs.NewHelpers)

	// Distances stay close to what they'd be with no deletion at all.
	fmt.Printf("dist(1,3): now %d, insertions-only graph %d\n",
		net.Distance(1, 3), net.DistancePrime(1, 3))

	// A newcomer joins, connected to two survivors.
	if err := net.Insert(10, []repro.NodeID{1, 4}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 10 joined; network now has %d nodes\n", net.NumAlive())

	// Audit the paper's two guarantees.
	sr := net.StretchReport()
	fmt.Printf("stretch:  max %.2f over %d pairs (bound log2(%d) = %.2f) — satisfied: %v\n",
		sr.Max, sr.Pairs, net.NumEver(), sr.Bound, sr.Satisfied)
	dr := net.DegreeReport()
	fmt.Printf("degree:   max amplification %.2fx over the insertions-only graph\n", dr.MaxRatio)

	if err := net.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all structural invariants hold.")
}
