// Package adversary implements the omniscient adversary of the paper's
// model: at each step it deletes an arbitrary node or inserts a node
// with arbitrary connections, knowing the full topology and the
// algorithm. The strategies here range from oblivious (random) to the
// targeted attacks the lower bound and the related-work discussion are
// about (hub killing, helper hunting, center attacks).
package adversary

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// NodeID identifies a processor.
type NodeID = graph.NodeID

// Op is one adversarial action.
type Op struct {
	Insert bool     `json:"insert,omitempty"`
	V      NodeID   `json:"v"`
	Nbrs   []NodeID `json:"nbrs,omitempty"`
}

func (o Op) String() string {
	if o.Insert {
		return fmt.Sprintf("insert %d -> %v", o.V, o.Nbrs)
	}
	return fmt.Sprintf("delete %d", o.V)
}

// View is the adversary's omniscient read access to the network under
// attack.
type View interface {
	// LiveNodes lists live nodes ascending.
	LiveNodes() []NodeID
	// Network returns the current actual network.
	Network() *graph.Graph
	// GPrime returns the insertions-only graph.
	GPrime() *graph.Graph
}

// Adversary produces the next attack given the current state. ok=false
// means the adversary has no move (e.g. the network is empty).
type Adversary interface {
	Name() string
	Next(v View, rng *rand.Rand, nextID func() NodeID) (op Op, ok bool)
}

// RandomDelete deletes a uniformly random live node.
type RandomDelete struct{}

// Name implements Adversary.
func (RandomDelete) Name() string { return "random-delete" }

// Next implements Adversary.
func (RandomDelete) Next(v View, rng *rand.Rand, _ func() NodeID) (Op, bool) {
	live := v.LiveNodes()
	if len(live) == 0 {
		return Op{}, false
	}
	return Op{V: live[rng.Intn(len(live))]}, true
}

// MaxDegreeDelete always kills the highest-degree node of the *actual*
// network — it hunts both hubs and busy helper simulators.
type MaxDegreeDelete struct{}

// Name implements Adversary.
func (MaxDegreeDelete) Name() string { return "max-degree-delete" }

// Next implements Adversary.
func (MaxDegreeDelete) Next(v View, _ *rand.Rand, _ func() NodeID) (Op, bool) {
	live := v.LiveNodes()
	if len(live) == 0 {
		return Op{}, false
	}
	net := v.Network()
	best, bestDeg := live[0], -1
	for _, u := range live {
		if d := net.Degree(u); d > bestDeg {
			best, bestDeg = u, d
		}
	}
	return Op{V: best}, true
}

// MinDegreeDelete kills the lowest-degree live node, eroding the
// network's fringe.
type MinDegreeDelete struct{}

// Name implements Adversary.
func (MinDegreeDelete) Name() string { return "min-degree-delete" }

// Next implements Adversary.
func (MinDegreeDelete) Next(v View, _ *rand.Rand, _ func() NodeID) (Op, bool) {
	live := v.LiveNodes()
	if len(live) == 0 {
		return Op{}, false
	}
	net := v.Network()
	best, bestDeg := live[0], int(^uint(0)>>1)
	for _, u := range live {
		if d := net.Degree(u); d < bestDeg {
			best, bestDeg = u, d
		}
	}
	return Op{V: best}, true
}

// RTTargetDelete kills the live node with the most deleted G′ neighbors
// — the node simulating the most helper roles, maximizing RT shatter.
type RTTargetDelete struct{}

// Name implements Adversary.
func (RTTargetDelete) Name() string { return "rt-target-delete" }

// Next implements Adversary.
func (RTTargetDelete) Next(v View, _ *rand.Rand, _ func() NodeID) (Op, bool) {
	live := v.LiveNodes()
	if len(live) == 0 {
		return Op{}, false
	}
	liveSet := make(map[NodeID]struct{}, len(live))
	for _, u := range live {
		liveSet[u] = struct{}{}
	}
	gp := v.GPrime()
	best, bestDead := live[0], -1
	for _, u := range live {
		dead := 0
		gp.EachNeighbor(u, func(w NodeID) {
			if _, ok := liveSet[w]; !ok {
				dead++
			}
		})
		if dead > bestDead {
			best, bestDead = u, dead
		}
	}
	return Op{V: best}, true
}

// HubBacklogDelete targets the live node whose repair maximizes
// per-edge backlog under finite bandwidth. Every physical neighbor of
// the victim answers the death notification with record traffic —
// fresh-leaf and fragment-root announcements — that funnels into the
// repair leader's incident edges within the same rounds, and a
// neighbor holding several records that reference the victim (its leaf
// avatar plus helpers, accumulated by earlier deletions) stacks
// multiple messages on one edge. The score is therefore the victim's
// physical degree plus its count of already-dead G′ neighbors (each
// one a slot whose records amplify the fan-in); ties break toward the
// smallest ID so runs are deterministic.
type HubBacklogDelete struct{}

// Name implements Adversary.
func (HubBacklogDelete) Name() string { return "hub-backlog-delete" }

// Next implements Adversary.
func (HubBacklogDelete) Next(v View, _ *rand.Rand, _ func() NodeID) (Op, bool) {
	live := v.LiveNodes()
	if len(live) == 0 {
		return Op{}, false
	}
	liveSet := make(map[NodeID]struct{}, len(live))
	for _, u := range live {
		liveSet[u] = struct{}{}
	}
	net, gp := v.Network(), v.GPrime()
	best, bestScore := live[0], -1
	for _, u := range live { // ascending, so strict > keeps the smallest ID
		dead := 0
		gp.EachNeighbor(u, func(w NodeID) {
			if _, ok := liveSet[w]; !ok {
				dead++
			}
		})
		if score := net.Degree(u) + dead; score > bestScore {
			best, bestScore = u, score
		}
	}
	return Op{V: best}, true
}

// StubView extends View with O(log n) access to the preferential-
// attachment stub multiset: live nodes in ascending order, each
// repeated (degree in the actual network)+1 times. A target exposing
// it lets Churn's preferential branch sample without materializing the
// O(n+m) stub slice per insert (the cost that dominated million-node
// soak wall time). The indexing contract is exact — StubAt(i) names
// the same node the materialized slice's element i would — so the
// fast path consumes the identical rng stream and picks the identical
// neighbors, which TestChurnStubViewEquivalence asserts pointwise
// under a fixed seed.
type StubView interface {
	View
	// StubCount is the multiset's size: sum over live nodes of
	// (actual-network degree + 1).
	StubCount() int
	// StubAt returns the node owning stub index i, 0 <= i < StubCount.
	StubAt(i int) NodeID
}

// CapacityView extends View with link-capacity knowledge: the
// effective words-per-round cap of a directed edge (0 = unlimited).
// The bandwidth-aware adversaries use it to aim at the network's
// weakest links; against a target that does not expose capacities they
// degrade gracefully.
type CapacityView interface {
	View
	EdgeCapacity(from, to NodeID) int
}

// SlowLinkDelete targets minimum-capacity links: it kills the live
// endpoint of the slowest physical edge whose repair traffic must
// squeeze through that edge — the death answers, probes, and merge
// instructions of the victim's neighbors all funnel over their
// incident links, so deleting next to the narrowest link maximizes the
// rounds congestion can add. Among the endpoints of minimum-capacity
// edges it prefers the one with the most incident slow links, then
// higher degree (more funneled traffic), then the smallest ID for
// determinism. Falls back to MaxDegreeDelete when the view exposes no
// finite capacities.
type SlowLinkDelete struct{}

// Name implements Adversary.
func (SlowLinkDelete) Name() string { return "slow-link-delete" }

// Next implements Adversary.
func (SlowLinkDelete) Next(v View, rng *rand.Rand, next func() NodeID) (Op, bool) {
	live := v.LiveNodes()
	if len(live) == 0 {
		return Op{}, false
	}
	cv, ok := v.(CapacityView)
	if !ok {
		return MaxDegreeDelete{}.Next(v, rng, next)
	}
	net := v.Network()
	// The minimum finite capacity over live physical edges (either
	// direction: repair traffic flows both ways).
	minCap := 0
	for _, u := range live {
		net.EachNeighbor(u, func(w NodeID) {
			if c := cv.EdgeCapacity(u, w); c > 0 && (minCap == 0 || c < minCap) {
				minCap = c
			}
		})
	}
	if minCap == 0 {
		return MaxDegreeDelete{}.Next(v, rng, next)
	}
	best, bestSlow, bestDeg := NodeID(0), -1, -1
	for _, u := range live { // ascending, so strict > keeps the smallest ID
		slow := 0
		net.EachNeighbor(u, func(w NodeID) {
			if cv.EdgeCapacity(u, w) == minCap || cv.EdgeCapacity(w, u) == minCap {
				slow++
			}
		})
		if slow == 0 {
			continue
		}
		if d := net.Degree(u); slow > bestSlow || (slow == bestSlow && d > bestDeg) {
			best, bestSlow, bestDeg = u, slow, d
		}
	}
	if bestSlow < 0 {
		return MaxDegreeDelete{}.Next(v, rng, next)
	}
	return Op{V: best}, true
}

// CenterDelete kills the node of minimum eccentricity in the largest
// component — the center attack that maximizes path damage.
type CenterDelete struct{}

// Name implements Adversary.
func (CenterDelete) Name() string { return "center-delete" }

// Next implements Adversary.
func (CenterDelete) Next(v View, _ *rand.Rand, _ func() NodeID) (Op, bool) {
	live := v.LiveNodes()
	if len(live) == 0 {
		return Op{}, false
	}
	net := v.Network()
	best := live[0]
	bestEcc, bestReach := int(^uint(0)>>1), -1
	for _, u := range live {
		ecc, reached := net.Eccentricity(u)
		// Prefer nodes that reach more (in the big component), then
		// smaller eccentricity.
		if reached > bestReach || (reached == bestReach && ecc < bestEcc) {
			best, bestEcc, bestReach = u, ecc, reached
		}
	}
	return Op{V: best}, true
}

// CutVertexDelete kills an articulation point of the current network
// when one exists (preferring the one of highest degree), falling back
// to max-degree deletion otherwise. Against a non-healing network this
// disconnects at every opportunity; against the Forgiving Graph it
// forces maximal Reconstruction-Tree work.
type CutVertexDelete struct{}

// Name implements Adversary.
func (CutVertexDelete) Name() string { return "cut-vertex-delete" }

// Next implements Adversary.
func (CutVertexDelete) Next(v View, rng *rand.Rand, next func() NodeID) (Op, bool) {
	live := v.LiveNodes()
	if len(live) == 0 {
		return Op{}, false
	}
	net := v.Network()
	cuts := net.ArticulationPoints()
	if len(cuts) == 0 {
		return MaxDegreeDelete{}.Next(v, rng, next)
	}
	best, bestDeg := cuts[0], -1
	for _, u := range cuts {
		if d := net.Degree(u); d > bestDeg {
			best, bestDeg = u, d
		}
	}
	return Op{V: best}, true
}

// Churn interleaves insertions with an inner deletion strategy.
type Churn struct {
	// Delete supplies the deletion moves (defaults to RandomDelete).
	Delete Adversary
	// InsertP is the probability of inserting instead of deleting.
	InsertP float64
	// AttachK is how many neighbors a new node connects to (clamped to
	// the live population; at least 1).
	AttachK int
	// Preferential attaches proportionally to current degree instead
	// of uniformly.
	Preferential bool
}

// Name implements Adversary.
func (c Churn) Name() string {
	inner := "random-delete"
	if c.Delete != nil {
		inner = c.Delete.Name()
	}
	kind := "uniform"
	if c.Preferential {
		kind = "preferential"
	}
	return fmt.Sprintf("churn(p=%.2f,k=%d,%s,%s)", c.InsertP, c.AttachK, kind, inner)
}

// Next implements Adversary.
func (c Churn) Next(v View, rng *rand.Rand, nextID func() NodeID) (Op, bool) {
	live := v.LiveNodes()
	if len(live) == 0 {
		return Op{}, false
	}
	if rng.Float64() >= c.InsertP {
		del := c.Delete
		if del == nil {
			del = RandomDelete{}
		}
		return del.Next(v, rng, nextID)
	}
	k := c.AttachK
	if k < 1 {
		k = 1
	}
	if k > len(live) {
		k = len(live)
	}
	var nbrs []NodeID
	if c.Preferential {
		chosen := make(map[NodeID]struct{}, k)
		if sv, ok := v.(StubView); ok {
			// O(k log n): the target maintains the stub multiset
			// incrementally. Same indexing, same rng stream, same picks
			// as the materialized slice below.
			n := sv.StubCount()
			for len(chosen) < k {
				chosen[sv.StubAt(rng.Intn(n))] = struct{}{}
			}
		} else {
			net := v.Network()
			var stubs []NodeID
			for _, u := range live {
				for i := 0; i <= net.Degree(u); i++ { // +1 smooths zero degrees
					stubs = append(stubs, u)
				}
			}
			for len(chosen) < k {
				chosen[stubs[rng.Intn(len(stubs))]] = struct{}{}
			}
		}
		for u := range chosen {
			nbrs = append(nbrs, u)
		}
		sortNodeIDs(nbrs)
	} else {
		for _, idx := range rng.Perm(len(live))[:k] {
			nbrs = append(nbrs, live[idx])
		}
		sortNodeIDs(nbrs)
	}
	return Op{Insert: true, V: nextID(), Nbrs: nbrs}, true
}

// Scripted replays a fixed operation sequence.
type Scripted struct {
	Ops []Op
	pos int
}

// Name implements Adversary.
func (s *Scripted) Name() string { return "scripted" }

// Next implements Adversary.
func (s *Scripted) Next(View, *rand.Rand, func() NodeID) (Op, bool) {
	if s.pos >= len(s.Ops) {
		return Op{}, false
	}
	op := s.Ops[s.pos]
	s.pos++
	return op, true
}

// ByName resolves the deletion adversaries used by the CLI tools.
func ByName(name string) (Adversary, error) {
	switch name {
	case "random":
		return RandomDelete{}, nil
	case "maxdeg":
		return MaxDegreeDelete{}, nil
	case "mindeg":
		return MinDegreeDelete{}, nil
	case "rt-target":
		return RTTargetDelete{}, nil
	case "center":
		return CenterDelete{}, nil
	case "cutvertex":
		return CutVertexDelete{}, nil
	case "hub-backlog":
		return HubBacklogDelete{}, nil
	case "slow-link":
		return SlowLinkDelete{}, nil
	default:
		return nil, fmt.Errorf("adversary: unknown strategy %q (want random, maxdeg, mindeg, rt-target, center, cutvertex, hub-backlog, or slow-link)", name)
	}
}

// Names lists the strategies ByName accepts.
func Names() []string {
	return []string{"random", "maxdeg", "mindeg", "rt-target", "center", "cutvertex", "hub-backlog", "slow-link"}
}

func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
