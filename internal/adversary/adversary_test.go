package adversary

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// fakeView is a static View for adversary unit tests.
type fakeView struct {
	net *graph.Graph
	gp  *graph.Graph
}

func (f fakeView) LiveNodes() []NodeID   { return f.net.Nodes() }
func (f fakeView) Network() *graph.Graph { return f.net.Clone() }
func (f fakeView) GPrime() *graph.Graph  { return f.gp.Clone() }

func viewOf(net *graph.Graph) fakeView { return fakeView{net: net, gp: net.Clone()} }

func TestRandomDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := viewOf(graph.Path(5))
	op, ok := RandomDelete{}.Next(v, rng, nil)
	if !ok || op.Insert {
		t.Fatalf("op = %v ok = %v", op, ok)
	}
	if !v.net.HasNode(op.V) {
		t.Fatalf("picked dead node %d", op.V)
	}
	// Empty network: no move.
	if _, ok := (RandomDelete{}).Next(viewOf(graph.New()), rng, nil); ok {
		t.Fatal("move on empty network")
	}
}

func TestMaxDegreeDelete(t *testing.T) {
	op, ok := MaxDegreeDelete{}.Next(viewOf(graph.Star(7)), nil, nil)
	if !ok || op.V != 0 {
		t.Fatalf("expected hub 0, got %v", op)
	}
}

func TestMinDegreeDelete(t *testing.T) {
	op, ok := MinDegreeDelete{}.Next(viewOf(graph.Star(7)), nil, nil)
	if !ok || op.V == 0 {
		t.Fatalf("expected a leaf, got %v", op)
	}
}

func TestRTTargetDelete(t *testing.T) {
	// G' is a path 0-1-2-3; only 1 and 3 are live. Node 1 has two dead
	// G' neighbors (0 and 2); node 3 has one (2).
	gp := graph.Path(4)
	net := graph.New()
	net.AddEdge(1, 3)
	op, ok := RTTargetDelete{}.Next(fakeView{net: net, gp: gp}, nil, nil)
	if !ok || op.V != 1 {
		t.Fatalf("expected 1 (most dead neighbors), got %v", op)
	}
}

func TestCutVertexDelete(t *testing.T) {
	// Two triangles joined by a bridge: 2 and 3 are the cut vertices;
	// both have degree 3, ties resolve to the first (smallest).
	g := graph.New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	g.AddEdge(2, 3)
	op, ok := CutVertexDelete{}.Next(viewOf(g), nil, nil)
	if !ok || op.V != 2 {
		t.Fatalf("expected cut vertex 2, got %v", op)
	}
	// Biconnected network: falls back to max degree.
	op, ok = CutVertexDelete{}.Next(viewOf(graph.Complete(4)), nil, nil)
	if !ok || op.Insert {
		t.Fatalf("fallback failed: %v", op)
	}
	if _, ok := (CutVertexDelete{}).Next(viewOf(graph.New()), nil, nil); ok {
		t.Fatal("move on empty network")
	}
}

func TestCenterDelete(t *testing.T) {
	op, ok := CenterDelete{}.Next(viewOf(graph.Path(7)), nil, nil)
	if !ok || op.V != 3 {
		t.Fatalf("expected path center 3, got %v", op)
	}
}

func TestChurnMix(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := Churn{InsertP: 0.5, AttachK: 2}
	next := NodeID(100)
	alloc := func() NodeID { next++; return next }
	inserts, deletes := 0, 0
	v := viewOf(graph.Cycle(8))
	for i := 0; i < 200; i++ {
		op, ok := c.Next(v, rng, alloc)
		if !ok {
			t.Fatal("no move")
		}
		if op.Insert {
			inserts++
			if len(op.Nbrs) != 2 {
				t.Fatalf("attach count = %d, want 2", len(op.Nbrs))
			}
			seen := map[NodeID]bool{}
			for _, x := range op.Nbrs {
				if seen[x] {
					t.Fatal("duplicate attach target")
				}
				seen[x] = true
				if !v.net.HasNode(x) {
					t.Fatalf("attach to dead node %d", x)
				}
			}
		} else {
			deletes++
		}
	}
	if inserts < 60 || deletes < 60 {
		t.Fatalf("mix skewed: %d inserts, %d deletes", inserts, deletes)
	}
}

func TestChurnPreferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := Churn{InsertP: 1.0, AttachK: 1, Preferential: true}
	v := viewOf(graph.Star(20))
	next := NodeID(100)
	alloc := func() NodeID { next++; return next }
	hub := 0
	for i := 0; i < 300; i++ {
		op, _ := c.Next(v, rng, alloc)
		if op.Nbrs[0] == 0 {
			hub++
		}
	}
	// The hub holds half the degree mass; uniform would pick it ~5%.
	if hub < 60 {
		t.Fatalf("hub picked %d/300 times; preferential attachment looks uniform", hub)
	}
}

func TestChurnInnerDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := Churn{InsertP: 0, Delete: MaxDegreeDelete{}}
	op, ok := c.Next(viewOf(graph.Star(5)), rng, func() NodeID { return 99 })
	if !ok || op.Insert || op.V != 0 {
		t.Fatalf("inner delete not used: %v", op)
	}
}

func TestScripted(t *testing.T) {
	s := &Scripted{Ops: []Op{{V: 3}, {Insert: true, V: 9, Nbrs: []NodeID{1}}}}
	a, ok := s.Next(nil, nil, nil)
	if !ok || a.V != 3 {
		t.Fatalf("first op = %v", a)
	}
	b, ok := s.Next(nil, nil, nil)
	if !ok || !b.Insert {
		t.Fatalf("second op = %v", b)
	}
	if _, ok := s.Next(nil, nil, nil); ok {
		t.Fatal("script did not end")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		adv, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if adv.Name() == "" {
			t.Fatalf("adversary %q has empty name", name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestOpString(t *testing.T) {
	if got := (Op{V: 5}).String(); got != "delete 5" {
		t.Fatalf("String = %q", got)
	}
	if got := (Op{Insert: true, V: 5, Nbrs: []NodeID{1}}).String(); got != "insert 5 -> [1]" {
		t.Fatalf("String = %q", got)
	}
}

func TestHubBacklogDelete(t *testing.T) {
	// On a fresh star the hub is the unique backlog maximizer.
	op, ok := HubBacklogDelete{}.Next(viewOf(graph.Star(8)), nil, nil)
	if !ok || op.Insert || op.V != 0 {
		t.Fatalf("star pick = %v, want delete 0", op)
	}
	// Dead G' neighbors outrank raw degree: node 1 keeps degree 2 but
	// its G' neighbors 3 and 4 are gone (their records pile onto its
	// edges during the next repair), while node 2 has degree 2 and no
	// dead neighbors. The view's actual network lost nodes 3 and 4.
	gp := graph.New()
	gp.AddEdge(1, 2)
	gp.AddEdge(1, 3)
	gp.AddEdge(1, 4)
	gp.AddEdge(2, 5)
	net := graph.New()
	net.AddEdge(1, 2)
	net.AddEdge(2, 5)
	net.AddEdge(1, 5)
	op, ok = HubBacklogDelete{}.Next(fakeView{net: net, gp: gp}, nil, nil)
	if !ok || op.V != 1 {
		t.Fatalf("pick = %v, want delete 1 (2 dead G' neighbors)", op)
	}
}
