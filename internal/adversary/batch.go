package adversary

import (
	"fmt"
	"math/rand"
)

// Batch schedule generation: the omniscient adversary can also fire
// deletions in bursts. A BatchStrategy picks the burst's victims; the
// shapes below span the spectrum the batched-repair pipeline has to
// handle — fully independent regions (the throughput best case),
// uniformly random ones, and deliberately colliding clusters (the
// conflict detector's worst case).

// BatchStrategy selects up to k live nodes to delete as one batch. It
// returns fewer (possibly zero) when the network cannot supply k.
type BatchStrategy interface {
	Name() string
	NextBatch(v View, rng *rand.Rand, k int) []NodeID
}

// RandomBatch deletes k distinct uniformly random live nodes.
type RandomBatch struct{}

// Name implements BatchStrategy.
func (RandomBatch) Name() string { return "random-batch" }

// NextBatch implements BatchStrategy.
func (RandomBatch) NextBatch(v View, rng *rand.Rand, k int) []NodeID {
	live := v.LiveNodes()
	if k > len(live) {
		k = len(live)
	}
	if k <= 0 {
		return nil
	}
	out := make([]NodeID, 0, k)
	for _, idx := range rng.Perm(len(live))[:k] {
		out = append(out, live[idx])
	}
	return out
}

// DisjointBatch greedily picks victims whose closed neighborhoods in
// the *actual* network are pairwise at distance ≥ 3 (no shared
// neighbors, no adjacency), so on a freshly healed network their
// damaged regions are vertex-disjoint and the repairs overlap fully.
// It stops early when no further node is far enough from every pick.
type DisjointBatch struct{}

// Name implements BatchStrategy.
func (DisjointBatch) Name() string { return "disjoint-batch" }

// NextBatch implements BatchStrategy.
func (DisjointBatch) NextBatch(v View, rng *rand.Rand, k int) []NodeID {
	live := v.LiveNodes()
	if len(live) == 0 || k <= 0 {
		return nil
	}
	net := v.Network()
	blocked := make(map[NodeID]struct{}) // picks, their nbrs, and nbrs-of-nbrs
	var out []NodeID
	for _, idx := range rng.Perm(len(live)) {
		if len(out) >= k {
			break
		}
		u := live[idx]
		if _, b := blocked[u]; b {
			continue
		}
		conflict := false
		net.EachNeighbor(u, func(w NodeID) {
			if _, b := blocked[w]; b {
				conflict = true
			}
		})
		if conflict {
			continue
		}
		out = append(out, u)
		blocked[u] = struct{}{}
		net.EachNeighbor(u, func(w NodeID) {
			blocked[w] = struct{}{}
			net.EachNeighbor(w, func(x NodeID) {
				blocked[x] = struct{}{}
			})
		})
	}
	return out
}

// CollidingBatch grows the batch as a breadth-first cluster around a
// random anchor in the actual network: adjacent victims whose damage
// walks are guaranteed to collide, forcing maximal serialization.
type CollidingBatch struct{}

// Name implements BatchStrategy.
func (CollidingBatch) Name() string { return "colliding-batch" }

// NextBatch implements BatchStrategy.
func (CollidingBatch) NextBatch(v View, rng *rand.Rand, k int) []NodeID {
	live := v.LiveNodes()
	if len(live) == 0 || k <= 0 {
		return nil
	}
	if k > len(live) {
		k = len(live)
	}
	net := v.Network()
	anchor := live[rng.Intn(len(live))]
	order := net.BFSOrder(anchor)
	out := make([]NodeID, 0, k)
	seen := make(map[NodeID]struct{}, k)
	for _, u := range order {
		if len(out) >= k {
			break
		}
		out = append(out, u)
		seen[u] = struct{}{}
	}
	// Disconnected remainder: pad with random live nodes.
	for _, idx := range rng.Perm(len(live)) {
		if len(out) >= k {
			break
		}
		u := live[idx]
		if _, dup := seen[u]; !dup {
			out = append(out, u)
			seen[u] = struct{}{}
		}
	}
	return out
}

// BatchByName resolves the batch strategies used by the CLI tools.
func BatchByName(name string) (BatchStrategy, error) {
	switch name {
	case "random":
		return RandomBatch{}, nil
	case "disjoint":
		return DisjointBatch{}, nil
	case "colliding":
		return CollidingBatch{}, nil
	default:
		return nil, fmt.Errorf("adversary: unknown batch strategy %q (want random, disjoint, or colliding)", name)
	}
}

// BatchNames lists the strategies BatchByName accepts.
func BatchNames() []string { return []string{"random", "disjoint", "colliding"} }
