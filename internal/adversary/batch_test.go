package adversary

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// staticView wraps a bare graph as an adversary View.
type staticView struct{ g *graph.Graph }

func (v staticView) LiveNodes() []NodeID   { return v.g.Nodes() }
func (v staticView) Network() *graph.Graph { return v.g }
func (v staticView) GPrime() *graph.Graph  { return v.g }

func TestRandomBatchDistinct(t *testing.T) {
	v := staticView{graph.GNP(40, 0.1, rand.New(rand.NewSource(1)))}
	rng := rand.New(rand.NewSource(2))
	for k := 0; k <= 45; k += 9 {
		b := RandomBatch{}.NextBatch(v, rng, k)
		want := k
		if want > 40 {
			want = 40
		}
		if len(b) != want {
			t.Fatalf("k=%d: got %d victims, want %d", k, len(b), want)
		}
		seen := make(map[NodeID]struct{})
		for _, u := range b {
			if _, dup := seen[u]; dup {
				t.Fatalf("k=%d: duplicate victim %d", k, u)
			}
			seen[u] = struct{}{}
		}
	}
}

// TestDisjointBatchSeparation: every pair of victims must sit at
// distance >= 3 in the network, so their closed neighborhoods are
// vertex-disjoint.
func TestDisjointBatchSeparation(t *testing.T) {
	g := graph.Grid(8, 8)
	v := staticView{g}
	rng := rand.New(rand.NewSource(3))
	b := DisjointBatch{}.NextBatch(v, rng, 6)
	if len(b) < 2 {
		t.Fatalf("grid 8x8 should admit several disjoint victims, got %v", b)
	}
	for i := 0; i < len(b); i++ {
		for j := i + 1; j < len(b); j++ {
			if d := g.Distance(b[i], b[j]); d >= 0 && d < 3 {
				t.Fatalf("victims %d and %d at distance %d < 3 (batch %v)", b[i], b[j], d, b)
			}
		}
	}
}

// TestCollidingBatchClustered: on a connected network the victims must
// form one connected cluster, the worst case for walk collisions.
func TestCollidingBatchClustered(t *testing.T) {
	g := graph.Grid(6, 6)
	v := staticView{g}
	rng := rand.New(rand.NewSource(4))
	b := CollidingBatch{}.NextBatch(v, rng, 5)
	if len(b) != 5 {
		t.Fatalf("got %d victims, want 5", len(b))
	}
	sub := graph.New()
	inBatch := make(map[NodeID]struct{})
	for _, u := range b {
		sub.AddNode(u)
		inBatch[u] = struct{}{}
	}
	for _, u := range b {
		g.EachNeighbor(u, func(w NodeID) {
			if _, ok := inBatch[w]; ok {
				sub.AddEdge(u, w)
			}
		})
	}
	if !sub.Connected() {
		t.Fatalf("colliding batch %v is not a connected cluster", b)
	}
}

func TestBatchByName(t *testing.T) {
	for _, name := range BatchNames() {
		s, err := BatchByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() == "" {
			t.Fatalf("%s: empty name", name)
		}
	}
	if _, err := BatchByName("nope"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
