package adversary

import (
	"fmt"
	"math/rand"
)

// Open-loop churn: the adversary of the asynchronous engine does not
// wait for repairs to finish — it submits operations on its own clock
// and lets the network absorb them. A TimedOp is one such move: the
// operation plus the number of rounds the adversary lets the network
// run before its next submission (0 = submit again in the same round,
// the fully open-loop extreme).

// TimedOp is one open-loop adversarial action with its submission gap.
type TimedOp struct {
	Op  Op
	Gap int
}

// OpenLoop wraps a churn strategy with submission timing. Gaps are
// drawn uniformly from [0, MaxGap]; MaxGap 0 means the adversary
// never waits — every operation lands while the previous repairs are
// still in flight.
type OpenLoop struct {
	Churn  Churn
	MaxGap int
}

// Name implements a Name() in the Adversary style.
func (o OpenLoop) Name() string {
	return fmt.Sprintf("open-loop(%s, gap<=%d)", o.Churn.Name(), o.MaxGap)
}

// Next produces the next timed operation, ok=false when the underlying
// churn has no move left.
func (o OpenLoop) Next(v View, rng *rand.Rand, nextID func() NodeID) (TimedOp, bool) {
	op, ok := o.Churn.Next(v, rng, nextID)
	if !ok {
		return TimedOp{}, false
	}
	gap := 0
	if o.MaxGap > 0 {
		gap = rng.Intn(o.MaxGap + 1)
	}
	return TimedOp{Op: op, Gap: gap}, true
}
