package adversary

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestOpenLoopTiming(t *testing.T) {
	v := staticView{graph.Star(16)}
	rng := rand.New(rand.NewSource(1))
	adv := OpenLoop{
		Churn:  Churn{InsertP: 0.4, AttachK: 2, Delete: RandomDelete{}},
		MaxGap: 3,
	}
	nextID := NodeID(100)
	alloc := func() NodeID { nextID++; return nextID }
	sawGap := map[int]bool{}
	for i := 0; i < 200; i++ {
		to, ok := adv.Next(v, rng, alloc)
		if !ok {
			t.Fatal("open-loop adversary ran out of moves on a static view")
		}
		if to.Gap < 0 || to.Gap > 3 {
			t.Fatalf("gap %d outside [0, 3]", to.Gap)
		}
		sawGap[to.Gap] = true
		if !to.Op.Insert && !v.g.HasNode(to.Op.V) {
			t.Fatalf("delete of unknown node %d", to.Op.V)
		}
	}
	for g := 0; g <= 3; g++ {
		if !sawGap[g] {
			t.Errorf("gap %d never drawn over 200 moves", g)
		}
	}

	// MaxGap 0 is the fully open loop: gaps are always zero.
	adv.MaxGap = 0
	for i := 0; i < 20; i++ {
		to, _ := adv.Next(v, rng, alloc)
		if to.Gap != 0 {
			t.Fatalf("MaxGap 0 produced gap %d", to.Gap)
		}
	}
	if adv.Name() == "" {
		t.Fatal("empty name")
	}
}
