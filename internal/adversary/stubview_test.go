package adversary

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// fakeStubView wraps fakeView with an index-faithful stub multiset,
// materialized once: live nodes ascending, each repeated degree+1
// times — the exact contract StubView demands. Churn's fast path must
// produce identical ops through it as through the legacy slice.
type fakeStubView struct {
	fakeView
	stubs []NodeID
}

func stubViewOf(net *graph.Graph) fakeStubView {
	v := fakeStubView{fakeView: viewOf(net)}
	for _, u := range net.Nodes() {
		for i := 0; i <= net.Degree(u); i++ {
			v.stubs = append(v.stubs, u)
		}
	}
	return v
}

func (f fakeStubView) StubCount() int      { return len(f.stubs) }
func (f fakeStubView) StubAt(i int) NodeID { return f.stubs[i] }

// TestChurnStubViewEquivalence drives the preferential churn adversary
// through a plain View (legacy materialized stub slice) and a StubView
// (incremental index fast path) with identically seeded rngs and
// asserts the op streams are pointwise identical: same inserts, same
// neighbors, same deletes, in the same order. This is the contract
// that lets dist.Simulation expose its Fenwick stub index without
// changing any seeded run's history.
func TestChurnStubViewEquivalence(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"star":    graph.Star(40),
		"cycle":   graph.Cycle(25),
		"ba":      graph.PreferentialAttachment(64, 3, rand.New(rand.NewSource(9))),
		"lonely":  graph.New(),
		"isolate": func() *graph.Graph { g := graph.New(); g.AddNode(7); return g }(),
	}
	for name, g := range graphs {
		for _, k := range []int{1, 2, 5} {
			c := Churn{InsertP: 0.7, AttachK: k, Preferential: true}
			slowRng := rand.New(rand.NewSource(42))
			fastRng := rand.New(rand.NewSource(42))
			slowV := viewOf(g)
			fastV := stubViewOf(g)
			nextSlow, nextFast := NodeID(1000), NodeID(1000)
			for step := 0; step < 200; step++ {
				a, okA := c.Next(slowV, slowRng, func() NodeID { nextSlow++; return nextSlow })
				b, okB := c.Next(fastV, fastRng, func() NodeID { nextFast++; return nextFast })
				if okA != okB {
					t.Fatalf("%s k=%d step %d: ok %v vs %v", name, k, step, okA, okB)
				}
				if !okA {
					break
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s k=%d step %d: legacy %v, stubview %v", name, k, step, a, b)
				}
			}
		}
	}
}

// BenchmarkChurnPreferential pins the cost of one preferential-
// attachment sample: the legacy path materializes the O(n+m) stub
// slice per insert, the StubView path samples the maintained index.
func BenchmarkChurnPreferential(b *testing.B) {
	g := graph.PreferentialAttachment(4096, 3, rand.New(rand.NewSource(1)))
	c := Churn{InsertP: 1.0, AttachK: 3, Preferential: true}
	alloc := func() NodeID { return 1 << 30 } // static view: ID unused
	b.Run("materialized", func(b *testing.B) {
		v := viewOf(g)
		rng := rand.New(rand.NewSource(2))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := c.Next(v, rng, alloc); !ok {
				b.Fatal("no move")
			}
		}
	})
	b.Run("stubview", func(b *testing.B) {
		v := stubViewOf(g)
		rng := rand.New(rand.NewSource(2))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := c.Next(v, rng, alloc); !ok {
				b.Fatal("no move")
			}
		}
	})
}
