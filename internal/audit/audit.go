// Package audit holds the transport- and protocol-independent pieces
// of the Forgiving Graph's self-stabilizing audit layer: the pacing
// configuration, the O(1)-word record checksum the probe exchange
// compares, and the counters that make the layer's silence property
// testable.
//
// The layer itself lives in internal/dist (audit.go): processors
// periodically re-derive their own records' aggregates from O(1)-word
// neighbor probes and repair any disagreement in place. This package
// exists so the facade (package protocol), the harness, and the tests
// can speak about audit configuration and statistics without importing
// the protocol internals — mirroring how package transport factors the
// wire vocabulary out of the backends.
package audit

import "fmt"

// DefaultPeriod is the default number of local-clock ticks between two
// audit passes of one processor. It is deliberately long: the audit is
// a background immune system, and at the default cadence its clean-run
// traffic stays under half the 5% overhead budget relative to repair
// traffic on churn-heavy workloads (BenchmarkAuditOverhead gates
// exactly that). Convergence tests shorten it to heal injected
// corruption in few pulses.
const DefaultPeriod = 4096

// DefaultBatch is the default number of records one audit pass
// examines. One record per pass keeps each pass O(1) words of traffic;
// the round-robin cursor still covers every record within
// ceil(records/Batch) passes.
const DefaultBatch = 1

// Config paces the audit layer.
type Config struct {
	// Period is the tick interval between one processor's audit passes
	// (>= 1). Smaller heals faster and costs more background traffic.
	Period int
	// Batch is how many records one pass audits (>= 1).
	Batch int
}

// Default returns the production pacing.
func Default() Config {
	return Config{Period: DefaultPeriod, Batch: DefaultBatch}
}

// Normalize fills zero fields with the defaults and rejects negatives.
func (c Config) Normalize() (Config, error) {
	if c.Period == 0 {
		c.Period = DefaultPeriod
	}
	if c.Batch == 0 {
		c.Batch = DefaultBatch
	}
	if c.Period < 1 {
		return c, fmt.Errorf("audit: period %d < 1", c.Period)
	}
	if c.Batch < 1 {
		return c, fmt.Errorf("audit: batch %d < 1", c.Batch)
	}
	return c, nil
}

// Stats counts what the audit layer did. The silence property of a
// self-stabilizing silent protocol — once the configuration is legal,
// the audit keeps probing but stops writing — is exactly "Probes grows,
// Repairs does not".
type Stats struct {
	// Passes counts completed per-processor audit passes (timer
	// firings that examined at least one record).
	Passes int
	// Probes counts checksum probes, claims, and pings sent.
	Probes int
	// Mismatches counts detected invariant violations: a recomputed
	// aggregate disagreeing with the stored one, a parent that disowned
	// a child, a stale transient-state fingerprint confirmed twice.
	Mismatches int
	// Repairs counts state writes the audit performed to heal a
	// mismatch. Zero on a clean run — the layer is silent.
	Repairs int
	// Deferred counts audits skipped because the record's region had a
	// live repair epoch: the audit defers to the repair machinery
	// rather than racing it.
	Deferred int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Passes += other.Passes
	s.Probes += other.Probes
	s.Mismatches += other.Mismatches
	s.Repairs += other.Repairs
	s.Deferred += other.Deferred
}

// Sum is the O(1)-word checksum over one record's audited fields. The
// probe exchange compares checksums, not field lists: a parent
// recomputes its aggregate from its children's replies, folds it with
// Sum, and a single word decides agreement. The fold is an FNV-style
// word hash — not cryptographic, which is fine: the adversary here is
// memory corruption, not an attacker choosing collisions.
func Sum(words ...int64) uint64 {
	const (
		offset = 1469598103934665603
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range words {
		h ^= uint64(w)
		h *= prime
	}
	return h
}
