package audit

import "testing"

func TestNormalizeDefaults(t *testing.T) {
	c, err := Config{}.Normalize()
	if err != nil {
		t.Fatalf("Normalize zero config: %v", err)
	}
	if c.Period != DefaultPeriod || c.Batch != DefaultBatch {
		t.Fatalf("Normalize zero config = %+v, want defaults", c)
	}
	if _, err := (Config{Period: -1}).Normalize(); err == nil {
		t.Fatalf("Normalize accepted negative period")
	}
	if _, err := (Config{Batch: -3}).Normalize(); err == nil {
		t.Fatalf("Normalize accepted negative batch")
	}
	kept, err := Config{Period: 16, Batch: 4}.Normalize()
	if err != nil || kept.Period != 16 || kept.Batch != 4 {
		t.Fatalf("Normalize changed explicit config: %+v, %v", kept, err)
	}
}

func TestStatsAdd(t *testing.T) {
	s := Stats{Passes: 1, Probes: 2, Mismatches: 3, Repairs: 4, Deferred: 5}
	s.Add(Stats{Passes: 10, Probes: 20, Mismatches: 30, Repairs: 40, Deferred: 50})
	want := Stats{Passes: 11, Probes: 22, Mismatches: 33, Repairs: 44, Deferred: 55}
	if s != want {
		t.Fatalf("Add = %+v, want %+v", s, want)
	}
}

func TestSum(t *testing.T) {
	if Sum(1, 2, 3) == Sum(3, 2, 1) {
		t.Fatalf("Sum is order-insensitive; permuted fields must differ")
	}
	if Sum(1, 2, 3) != Sum(1, 2, 3) {
		t.Fatalf("Sum not deterministic")
	}
	if Sum() == Sum(0) {
		t.Fatalf("Sum of nothing collides with Sum of a zero word")
	}
}
