// Package baseline provides the naive self-healing strategies the paper
// argues against. They bracket the degree/stretch tradeoff of Theorem 2:
//
//   - NoHeal performs no repair: degree never grows (α = 1) but the
//     network disconnects, i.e. stretch is unbounded (β = ∞).
//   - CycleHeal strings the deleted node's neighbors into a cycle:
//     cheap, constant degree increase per incident deletion, but
//     distances through a repair grow linearly in the degree of the
//     deleted node, so β = Θ(d) rather than O(log n).
//   - AdoptHeal (the "surrogate" strategy of Saia–Trehan 2008) lets the
//     smallest surviving neighbor adopt all of the deleted node's
//     edges: β ≤ 2 per level, but α = Θ(n) on a star — the degree
//     blow-up Theorem 2 says is unavoidable if stretch must stay this
//     low.
package baseline

import (
	"repro/internal/graph"
	"repro/internal/heal"
)

// NodeID identifies a processor.
type NodeID = heal.NodeID

// NoHeal removes nodes without repairing anything.
type NoHeal struct {
	heal.Tracker
}

// NewNoHeal returns the do-nothing strategy.
func NewNoHeal(g0 *graph.Graph) *NoHeal { return &NoHeal{Tracker: heal.NewTracker(g0)} }

// Name implements heal.Healer.
func (h *NoHeal) Name() string { return "no-heal" }

// Insert implements heal.Healer.
func (h *NoHeal) Insert(v NodeID, nbrs []NodeID) error { return h.ValidateInsert(v, nbrs) }

// Delete implements heal.Healer.
func (h *NoHeal) Delete(v NodeID) error {
	_, err := h.ValidateDelete(v)
	return err
}

// CycleHeal reconnects the deleted node's former neighbors in a cycle
// (ascending by id). Each incident deletion adds at most 2 to a
// neighbor's degree.
type CycleHeal struct {
	heal.Tracker
}

// NewCycleHeal returns the ring-repair strategy.
func NewCycleHeal(g0 *graph.Graph) *CycleHeal { return &CycleHeal{Tracker: heal.NewTracker(g0)} }

// Name implements heal.Healer.
func (h *CycleHeal) Name() string { return "cycle-heal" }

// Insert implements heal.Healer.
func (h *CycleHeal) Insert(v NodeID, nbrs []NodeID) error { return h.ValidateInsert(v, nbrs) }

// Delete implements heal.Healer.
func (h *CycleHeal) Delete(v NodeID) error {
	nbrs, err := h.ValidateDelete(v)
	if err != nil {
		return err
	}
	if len(nbrs) < 2 {
		return nil
	}
	for i := range nbrs {
		h.Cur.AddEdge(nbrs[i], nbrs[(i+1)%len(nbrs)])
		if len(nbrs) == 2 {
			break // a 2-cycle is a single edge
		}
	}
	return nil
}

// AdoptHeal promotes the smallest former neighbor to surrogate: it
// inherits an edge to every other former neighbor.
type AdoptHeal struct {
	heal.Tracker
}

// NewAdoptHeal returns the surrogate-repair strategy.
func NewAdoptHeal(g0 *graph.Graph) *AdoptHeal { return &AdoptHeal{Tracker: heal.NewTracker(g0)} }

// Name implements heal.Healer.
func (h *AdoptHeal) Name() string { return "adopt-heal" }

// Insert implements heal.Healer.
func (h *AdoptHeal) Insert(v NodeID, nbrs []NodeID) error { return h.ValidateInsert(v, nbrs) }

// Delete implements heal.Healer.
func (h *AdoptHeal) Delete(v NodeID) error {
	nbrs, err := h.ValidateDelete(v)
	if err != nil {
		return err
	}
	if len(nbrs) < 2 {
		return nil
	}
	surrogate := nbrs[0] // neighbors are ascending
	for _, x := range nbrs[1:] {
		h.Cur.AddEdge(surrogate, x)
	}
	return nil
}

// Factories lists the baseline strategies for the experiment harness.
func Factories() []heal.Factory {
	return []heal.Factory{
		{Name: "no-heal", New: func(g *graph.Graph) heal.Healer { return NewNoHeal(g) }},
		{Name: "cycle-heal", New: func(g *graph.Graph) heal.Healer { return NewCycleHeal(g) }},
		{Name: "adopt-heal", New: func(g *graph.Graph) heal.Healer { return NewAdoptHeal(g) }},
	}
}

var (
	_ heal.Healer = (*NoHeal)(nil)
	_ heal.Healer = (*CycleHeal)(nil)
	_ heal.Healer = (*AdoptHeal)(nil)
)
