package baseline

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/heal"
)

func TestNoHealDisconnects(t *testing.T) {
	h := NewNoHeal(graph.Star(5))
	if err := h.Delete(0); err != nil {
		t.Fatal(err)
	}
	net := h.Network()
	if net.Connected() {
		t.Fatal("no-heal should disconnect the star")
	}
	if net.NumEdges() != 0 {
		t.Fatalf("edges = %d, want 0", net.NumEdges())
	}
}

func TestCycleHealRing(t *testing.T) {
	h := NewCycleHeal(graph.Star(6))
	if err := h.Delete(0); err != nil {
		t.Fatal(err)
	}
	net := h.Network()
	if !net.Connected() {
		t.Fatal("cycle-heal left the network disconnected")
	}
	// Five former leaves strung into a 5-cycle: everyone has degree 2.
	for _, v := range h.LiveNodes() {
		if net.Degree(v) != 2 {
			t.Fatalf("degree(%d) = %d, want 2", v, net.Degree(v))
		}
	}
	// Stretch is linear in the deleted degree: opposite nodes sit at
	// distance 2 in G' but ⌊5/2⌋ in the ring.
	if d := net.Distance(1, 3); d != 2 {
		t.Fatalf("ring distance(1,3) = %d, want 2", d)
	}
}

func TestCycleHealSmallCases(t *testing.T) {
	// Degree-1 deletion: nothing to reconnect.
	h := NewCycleHeal(graph.Path(2))
	if err := h.Delete(0); err != nil {
		t.Fatal(err)
	}
	if h.Network().NumEdges() != 0 {
		t.Fatal("unexpected repair edges")
	}
	// Degree-2 deletion: a single splice edge, not a double edge.
	h2 := NewCycleHeal(graph.Path(3))
	if err := h2.Delete(1); err != nil {
		t.Fatal(err)
	}
	if n := h2.Network(); !n.HasEdge(0, 2) || n.NumEdges() != 1 {
		t.Fatalf("splice wrong: %v", n)
	}
}

func TestAdoptHealStar(t *testing.T) {
	h := NewAdoptHeal(graph.Star(6))
	if err := h.Delete(0); err != nil {
		t.Fatal(err)
	}
	net := h.Network()
	if !net.Connected() {
		t.Fatal("adopt-heal left the network disconnected")
	}
	// Node 1 (smallest survivor) adopts all: its degree is 4 while its
	// G' degree is 1 — the α = Θ(n) blow-up of Theorem 2.
	if net.Degree(1) != 4 {
		t.Fatalf("surrogate degree = %d, want 4", net.Degree(1))
	}
	// But stretch stays tiny: everything is within 2 hops.
	if net.Diameter() > 2 {
		t.Fatalf("diameter = %d, want <= 2", net.Diameter())
	}
}

func TestBaselineInsertDelete(t *testing.T) {
	for _, f := range Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			h := f.New(graph.Cycle(4))
			if err := h.Insert(9, []NodeID{0, 2}); err != nil {
				t.Fatal(err)
			}
			if err := h.Delete(2); err != nil {
				t.Fatal(err)
			}
			if err := h.Delete(2); err == nil {
				t.Fatal("double delete accepted")
			}
			if h.Alive(2) {
				t.Fatal("2 still alive")
			}
			gp := h.GPrime()
			if gp.NumNodes() != 5 || !gp.HasEdge(9, 0) {
				t.Fatalf("gprime = %v", gp)
			}
			if got := len(h.LiveNodes()); got != 4 {
				t.Fatalf("live count = %d", got)
			}
		})
	}
}

func TestFactoriesNames(t *testing.T) {
	names := map[string]bool{}
	for _, f := range Factories() {
		h := f.New(graph.Path(2))
		if h.Name() != f.Name {
			t.Fatalf("factory %q builds healer %q", f.Name, h.Name())
		}
		names[f.Name] = true
	}
	for _, want := range []string{"no-heal", "cycle-heal", "adopt-heal"} {
		if !names[want] {
			t.Fatalf("missing factory %q", want)
		}
	}
}

var _ heal.Healer = (*NoHeal)(nil)
