// Package channet implements transport.Transport with one goroutine
// per processor communicating over in-process queues — the
// real-concurrency backend of the distributed Forgiving Graph.
//
// Where simnet delivers in deterministic lock-step rounds, channet
// hands each processor's inbox to its own goroutine and lets the Go
// scheduler interleave deliveries arbitrarily. The protocol must not
// care: repairs prove their own termination in-band by message
// counting, so any fair scheduler heals the same graph. The
// differential tests in internal/dist assert exactly that, using
// simnet as the oracle. Under `go test -race` the backend doubles as a
// data-race detector for the protocol's handler state.
//
// # Pulses
//
// Step runs one macro-pulse: it thaws the network, delivers queued
// messages (concurrently, cascades included) until no message is in
// flight anywhere, then freezes again. Between Steps nothing runs, so
// the driver may inspect processor state, add and remove nodes, and
// inject traffic — the same contract simnet's round boundary gives.
//
// # Logical clocks and timers
//
// There is no global round counter, so the watchdogs' "wake me in k
// rounds" becomes "wake me after k ticks of my own clock": every
// processor keeps a Lamport clock that advances on each delivery
// (clock = max(clock, sender's clock at send) + 1), and SendTimer
// arms at due = clock + delay. A pending timer fires only when a Step
// begins with no deliverable messages: the earliest-due batch fires
// (ties across processors fire together, ordered by (due, owner,
// seq)), and the resulting message cascade drains before the pulse
// ends. Firing timers only at message-idle cannot livelock — a
// re-armed watchdog's due strictly increases, so any fixed-due timer
// (a repair kickoff, say) eventually becomes the minimum — and it is
// always safe, because the protocol uses timers to initiate progress
// checks, never to conclude absence of traffic.
//
// # Determinism and replay
//
// In the default concurrent mode the interleaving is whatever the Go
// scheduler produces — an adversarial schedule, intentionally not
// reproducible. NewSeeded selects a single-threaded deterministic mode
// instead: a PRNG picks which processor's inbox head to deliver next,
// so a (seed, op schedule) pair identifies one exact interleaving.
// The fuzz harness explores interleavings this way and replays any
// failure bit-for-bit; internal/sched records (seed, schedule) pairs
// and re-runs them on simnet for differential comparison.
//
// # No bandwidth model
//
// Congestion is a property of the synchronous simulator, not of this
// backend: EdgeBudget is always 0 (sender-side pacing degenerates to
// plain sends) and the SetBandwidth family panics on a positive cap.
// Bandwidth and congestion experiments are simnet-only; see
// EXPERIMENTS.md.
package channet

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/transport"
)

// NodeID identifies a processor, shared with package transport.
type NodeID = transport.NodeID

// maxPulseDeliveries bounds one Step's work: a pulse that delivers
// this many messages is a protocol livelock, and panicking with a
// diagnostic beats hanging the test binary.
const maxPulseDeliveries = 1 << 22

var _ transport.Transport = (*Network)(nil)

// entry is one queued delivery: the message plus the logical send
// time stamping the receiver's clock (for timers, the due tick).
type entry struct {
	msg transport.Message
	at  int64
}

// node is one processor: its handler, inbox, and logical clock.
type node struct {
	id NodeID
	h  transport.Handler

	mu    sync.Mutex
	inbox []entry
	clock int64

	// wake nudges the node's runner goroutine during a concurrent
	// pulse; buffered so a send never blocks and a nudge is never lost.
	wake chan struct{}
}

// take pops the inbox head, advancing the clock Lamport-style.
func (nd *node) take() (entry, bool) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if len(nd.inbox) == 0 {
		return entry{}, false
	}
	e := nd.inbox[0]
	nd.inbox = nd.inbox[1:]
	if e.at > nd.clock {
		nd.clock = e.at
	}
	nd.clock++
	return e, true
}

// timerRec is an armed logical-clock timer.
type timerRec struct {
	owner NodeID
	due   int64
	seq   int
	msg   transport.Message
}

// Network is a set of processors exchanging messages over in-process
// queues. The zero value is not usable; construct with New or
// NewSeeded. Driver-facing methods (Step, AddNode, Pending, ...) must
// only be called between Steps; handler-facing methods (Send,
// SendTimer, ...) are safe from any handler goroutine mid-pulse.
type Network struct {
	// nodes is written only while frozen; handlers read it
	// concurrently during a pulse (lookups for sends), which is safe
	// because no writer can run then.
	nodes map[NodeID]*node

	// order caches the sorted node IDs for the seeded scheduler's
	// deterministic inbox scan; rebuilt lazily after AddNode/RemoveNode.
	order      []NodeID
	orderDirty bool

	// inflight counts queued-but-undelivered messages plus handlers
	// still running; zero means the pulse is message-idle (a handler
	// is decremented only after it returns, so zero proves no further
	// send can occur).
	inflight atomic.Int64

	// pulse is the macro-pulse counter Round() exposes; atomic because
	// handlers may read it mid-pulse.
	pulse atomic.Int64

	// seq tickets every send for deterministic tie-breaking.
	seq atomic.Int64

	// timersMu guards the armed-timer list (handlers arm concurrently).
	timersMu sync.Mutex
	timers   []timerRec

	// statsMu guards the traffic counters below.
	statsMu     sync.Mutex
	stats       transport.Stats
	sentBy      map[NodeID]int
	dropped     int
	sawElection bool // classes seen this pulse, folded into
	sawSync     bool // ElectionRounds/SyncRounds at pulse end
	sawAudit    bool // ... and AuditRounds

	// rng, when non-nil, selects the single-threaded deterministic
	// scheduler: it picks which nonempty inbox delivers next.
	rng *rand.Rand
}

// New returns an empty network in concurrent mode: during each Step
// every processor's inbox is drained by its own goroutine and the Go
// scheduler chooses the interleaving.
func New() *Network {
	return &Network{
		nodes:  make(map[NodeID]*node),
		sentBy: make(map[NodeID]int),
	}
}

// NewSeeded returns an empty network in deterministic mode: a single
// goroutine delivers one message at a time, a PRNG seeded with seed
// picking the next processor. The same seed and send sequence replay
// the exact same interleaving — the property the fuzz harness and the
// recorded-schedule replay layer build on.
func NewSeeded(seed int64) *Network {
	n := New()
	n.rng = rand.New(rand.NewSource(seed))
	return n
}

// Seeded reports whether the network uses the deterministic
// single-threaded scheduler.
func (n *Network) Seeded() bool { return n.rng != nil }

// AddNode registers a processor. Re-registering replaces the handler.
func (n *Network) AddNode(id NodeID, h transport.Handler) {
	if h == nil {
		panic("channet: nil handler")
	}
	if nd, ok := n.nodes[id]; ok {
		nd.h = h
		return
	}
	n.nodes[id] = &node{id: id, h: h, wake: make(chan struct{}, 1)}
	n.orderDirty = true
}

// RemoveNode unregisters a processor. Its queued messages are dropped
// eagerly and count toward Dropped — the single counting point the
// Plane contract defines (earliest moment the backend knows the target
// is dead; simnet and wirenet do the same); its armed timers are
// discarded but NOT counted — timers are local wake-ups, not network
// traffic. Later sends to the dead node drop and count at send.
func (n *Network) RemoveNode(id NodeID) {
	nd, ok := n.nodes[id]
	if !ok {
		return
	}
	delete(n.nodes, id)
	n.orderDirty = true
	if k := len(nd.inbox); k > 0 {
		n.inflight.Add(int64(-k))
		n.statsMu.Lock()
		n.dropped += k
		n.statsMu.Unlock()
		nd.inbox = nil
	}
	n.timersMu.Lock()
	kept := n.timers[:0]
	for _, t := range n.timers {
		if t.owner != id {
			kept = append(kept, t)
		}
	}
	n.timers = kept
	n.timersMu.Unlock()
}

// HasNode reports whether a processor is registered.
func (n *Network) HasNode(id NodeID) bool {
	_, ok := n.nodes[id]
	return ok
}

// CancelTimers discards every armed timer owned by one processor,
// returning how many were cancelled. RemoveNode already purges the
// dead node's timers; this is the standalone form drivers with
// standing per-node timers (the audit layer) use when they need the
// same effect without unregistering. Must only be called between
// Steps.
func (n *Network) CancelTimers(id NodeID) int {
	n.timersMu.Lock()
	defer n.timersMu.Unlock()
	cancelled := 0
	kept := n.timers[:0]
	for _, t := range n.timers {
		if t.owner == id {
			cancelled++
			continue
		}
		kept = append(kept, t)
	}
	n.timers = kept
	return cancelled
}

// SkewClock perturbs one processor's logical clock by delta — a fault-
// injection hook for the self-stabilization tests (a corrupted clock
// models a processor rebooting with garbage local time). The Lamport
// max-merge on every delivery means a skewed-back clock heals from any
// incoming message and a negative stamp never spreads: receivers only
// ever take the max. Must only be called between Steps.
func (n *Network) SkewClock(id NodeID, delta int64) {
	nd, ok := n.nodes[id]
	if !ok {
		return
	}
	nd.mu.Lock()
	nd.clock += delta
	nd.mu.Unlock()
}

// Validate checks the backend's own state invariants: every logical
// clock non-negative and every armed timer owned by a registered
// processor. The dist verifier type-asserts for it, so transport-level
// corruption (SkewClock) is caught by the same Verify that audits
// protocol state. Must only be called between Steps.
func (n *Network) Validate() error {
	for _, id := range n.sortedIDs() {
		nd := n.nodes[id]
		nd.mu.Lock()
		c := nd.clock
		nd.mu.Unlock()
		if c < 0 {
			return fmt.Errorf("channet: processor %d has negative logical clock %d", id, c)
		}
	}
	n.timersMu.Lock()
	defer n.timersMu.Unlock()
	for _, t := range n.timers {
		if _, ok := n.nodes[t.owner]; !ok {
			return fmt.Errorf("channet: armed timer owned by unregistered processor %d", t.owner)
		}
	}
	return nil
}

// Round returns the macro-pulse counter: how many Steps have run.
func (n *Network) Round() int { return int(n.pulse.Load()) }

// Send enqueues a message for asynchronous delivery during the next
// (or current) pulse. Words must be at least 1.
func (n *Network) Send(from, to NodeID, payload any, words int) {
	n.SendClass(from, to, payload, words, transport.ClassData)
}

// SendClass is Send with an explicit accounting class.
func (n *Network) SendClass(from, to NodeID, payload any, words int, class transport.Class) {
	if words < 1 {
		panic(fmt.Sprintf("channet: message with %d words", words))
	}
	m := transport.Message{
		From: from, To: to, Payload: payload, Words: words, Class: class,
		Seq: int(n.seq.Add(1)),
	}
	n.deliverTo(to, entry{msg: m, at: n.clockOf(from)})
}

// SendTimer arms a local wake-up for the sending processor after
// delay ticks of its logical clock (delay >= 1).
func (n *Network) SendTimer(owner NodeID, payload any, delay int) {
	if delay < 1 {
		panic(fmt.Sprintf("channet: timer with delay %d", delay))
	}
	m := transport.Message{
		From: owner, To: owner, Payload: payload, Timer: true,
		Seq: int(n.seq.Add(1)),
	}
	t := timerRec{owner: owner, due: n.clockOf(owner) + int64(delay), seq: m.Seq, msg: m}
	n.timersMu.Lock()
	n.timers = append(n.timers, t)
	n.timersMu.Unlock()
}

// clockOf reads a processor's logical clock; unknown (dead) senders
// stamp 0, which is always safe — receivers only take the max.
func (n *Network) clockOf(id NodeID) int64 {
	nd, ok := n.nodes[id]
	if !ok {
		return 0
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.clock
}

// deliverTo queues one entry, or drops it if the target is dead.
func (n *Network) deliverTo(to NodeID, e entry) {
	nd, ok := n.nodes[to]
	if !ok {
		n.statsMu.Lock()
		n.dropped++
		n.statsMu.Unlock()
		return
	}
	// Count the message in flight BEFORE it becomes visible in the
	// inbox. The other order is a pulse-termination race: a receiver
	// could pop, handle, and decrement the entry before this increment
	// runs, transiently driving inflight to 0 while the sending handler
	// is still live — drainConcurrent would close `done` and end the
	// pulse with deliverable messages stranded. Incrementing first
	// keeps inflight >= the true count at all times (the sender's own
	// +1 is held until its handler returns), so zero really does prove
	// no further send can occur.
	n.inflight.Add(1)
	nd.mu.Lock()
	nd.inbox = append(nd.inbox, e)
	nd.mu.Unlock()
	// Nudge the node's runner if a concurrent pulse is underway; the
	// buffered channel makes this a no-op when a nudge is already
	// pending or nobody is listening.
	select {
	case nd.wake <- struct{}{}:
	default:
	}
}

// EdgeBudget is always 0: channet has no bandwidth model, so
// sender-side pacing degenerates to plain sends.
func (n *Network) EdgeBudget(from, to NodeID) int { return 0 }

// Bandwidth returns 0: unlimited, always.
func (n *Network) Bandwidth() int { return 0 }

// SetBandwidth accepts only 0. Congestion modeling is simnet-only;
// asking this backend to cap an edge is a configuration error, not
// something to silently ignore.
func (n *Network) SetBandwidth(words int) {
	if words != 0 {
		panic("channet: no bandwidth model (congestion experiments are simnet-only)")
	}
}

// SetEdgeBandwidth accepts only non-positive words (cap removal).
func (n *Network) SetEdgeBandwidth(from, to NodeID, words int) {
	if words > 0 {
		panic("channet: no bandwidth model (congestion experiments are simnet-only)")
	}
}

// SetNodeBandwidth accepts only non-positive words (cap removal).
func (n *Network) SetNodeBandwidth(id NodeID, words int) {
	if words > 0 {
		panic("channet: no bandwidth model (congestion experiments are simnet-only)")
	}
}

// Step runs one macro-pulse: deliver every queued message (cascades
// included) until nothing is in flight; if that found no messages at
// all and timers are armed, fire the earliest-due timer batch and
// drain its cascade the same way. Returns the number of deliveries.
func (n *Network) Step() int {
	n.pulse.Add(1)
	delivered := n.drain()
	if delivered == 0 {
		if fired := n.fireEarliest(); fired > 0 {
			delivered = fired + n.drain()
		}
	}
	n.statsMu.Lock()
	if delivered > 0 {
		n.stats.Rounds++
		if n.sawElection {
			n.stats.ElectionRounds++
		}
		if n.sawSync {
			n.stats.SyncRounds++
		}
		if n.sawAudit {
			n.stats.AuditRounds++
		}
	}
	n.sawElection, n.sawSync, n.sawAudit = false, false, false
	n.statsMu.Unlock()
	return delivered
}

// drain delivers queued messages until none are in flight, using the
// scheduler the network was built with.
func (n *Network) drain() int {
	if n.rng != nil {
		return n.drainSeeded()
	}
	return n.drainConcurrent()
}

// drainConcurrent thaws the network: one runner goroutine per
// processor races over the inboxes until the in-flight count hits
// zero, then everything refreezes before returning.
func (n *Network) drainConcurrent() int {
	if n.inflight.Load() == 0 {
		return 0
	}
	done := make(chan struct{})
	var once sync.Once
	var delivered atomic.Int64
	var wg sync.WaitGroup
	for _, nd := range n.nodes {
		wg.Add(1)
		go func(nd *node) {
			defer wg.Done()
			for {
				e, ok := nd.take()
				if !ok {
					select {
					case <-nd.wake:
						continue
					case <-done:
						return
					}
				}
				if d := delivered.Add(1); d > maxPulseDeliveries {
					panic("channet: runaway pulse (protocol livelock?)")
				}
				n.book(e.msg)
				nd.h(n, e.msg)
				if n.inflight.Add(-1) == 0 {
					once.Do(func() { close(done) })
				}
			}
		}(nd)
	}
	wg.Wait()
	// Drain any stale nudges so the next pulse starts clean.
	for _, nd := range n.nodes {
		select {
		case <-nd.wake:
		default:
		}
	}
	return int(delivered.Load())
}

// drainSeeded delivers one message at a time on the calling
// goroutine, the PRNG choosing uniformly among processors with
// nonempty inboxes. Identical seeds and send sequences replay
// identical interleavings.
func (n *Network) drainSeeded() int {
	delivered := 0
	var ready []*node
	for n.inflight.Load() > 0 {
		ready = ready[:0]
		for _, id := range n.sortedIDs() {
			nd := n.nodes[id]
			if len(nd.inbox) > 0 {
				ready = append(ready, nd)
			}
		}
		nd := ready[n.rng.Intn(len(ready))]
		e, _ := nd.take()
		delivered++
		if delivered > maxPulseDeliveries {
			panic("channet: runaway pulse (protocol livelock?)")
		}
		n.book(e.msg)
		nd.h(n, e.msg)
		n.inflight.Add(-1)
	}
	return delivered
}

// sortedIDs returns the registered processors in ascending ID order.
func (n *Network) sortedIDs() []NodeID {
	if n.orderDirty {
		n.order = n.order[:0]
		for id := range n.nodes {
			n.order = append(n.order, id)
		}
		sort.Slice(n.order, func(i, j int) bool { return n.order[i] < n.order[j] })
		n.orderDirty = false
	}
	return n.order
}

// fireEarliest moves the earliest-due timer batch (all timers tied at
// the minimum due) into their owners' inboxes, ordered by (due,
// owner, seq), and returns how many fired. Delivery stamps the
// owner's clock to at least the due tick, so re-armed timers march
// strictly forward.
func (n *Network) fireEarliest() int {
	n.timersMu.Lock()
	defer n.timersMu.Unlock()
	if len(n.timers) == 0 {
		return 0
	}
	min := n.timers[0].due
	for _, t := range n.timers[1:] {
		if t.due < min {
			min = t.due
		}
	}
	var batch []timerRec
	kept := n.timers[:0]
	for _, t := range n.timers {
		if t.due == min {
			batch = append(batch, t)
		} else {
			kept = append(kept, t)
		}
	}
	n.timers = kept
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].owner != batch[j].owner {
			return batch[i].owner < batch[j].owner
		}
		return batch[i].seq < batch[j].seq
	})
	fired := 0
	for _, t := range batch {
		// due-1: take() adds the +1 tick on delivery.
		n.deliverTo(t.owner, entry{msg: t.msg, at: t.due - 1})
		fired++
	}
	return fired
}

// book folds one delivered network message into the stats; timers are
// local wake-ups and aren't traffic.
func (n *Network) book(m transport.Message) {
	if m.Timer {
		return
	}
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	n.stats.Messages++
	n.stats.TotalWords += m.Words
	if m.Words > n.stats.MaxWords {
		n.stats.MaxWords = m.Words
	}
	n.sentBy[m.From]++
	if n.sentBy[m.From] > n.stats.MaxSentByNode {
		n.stats.MaxSentByNode = n.sentBy[m.From]
	}
	switch m.Class {
	case transport.ClassElection:
		n.stats.ElectionMessages++
		n.sawElection = true
	case transport.ClassSync:
		n.stats.SyncMessages++
		n.sawSync = true
	case transport.ClassAudit:
		n.stats.AuditMessages++
		n.sawAudit = true
	}
}

// Pending reports how many messages and timers await delivery.
func (n *Network) Pending() int {
	n.timersMu.Lock()
	t := len(n.timers)
	n.timersMu.Unlock()
	return int(n.inflight.Load()) + t
}

// PendingWords sums the sizes of all waiting network messages.
func (n *Network) PendingWords() int {
	words := 0
	for _, nd := range n.nodes {
		for _, e := range nd.inbox {
			words += e.msg.Words
		}
	}
	return words
}

// DropPending discards every queued message and armed timer without
// delivering them, returning how many were dropped.
func (n *Network) DropPending() int {
	k := 0
	for _, nd := range n.nodes {
		k += len(nd.inbox)
		nd.inbox = nil
	}
	n.inflight.Store(0)
	n.timersMu.Lock()
	k += len(n.timers)
	n.timers = nil
	n.timersMu.Unlock()
	return k
}

// Dropped returns the number of network messages addressed to dead
// processors (messages queued at removal plus later sends to the dead
// node). Purged timers are not counted — they are not network traffic.
func (n *Network) Dropped() int {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.dropped
}

// Stats returns a copy of the traffic statistics accumulated since
// the last ResetStats.
func (n *Network) Stats() transport.Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.stats
}

// ResetStats zeroes the traffic statistics.
func (n *Network) ResetStats() {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	n.stats = transport.Stats{}
	n.sentBy = make(map[NodeID]int)
}
