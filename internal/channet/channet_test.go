package channet

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/transport"
)

func TestSendAndDeliver(t *testing.T) {
	n := New()
	var mu sync.Mutex
	var got []string
	n.AddNode(1, func(net transport.Endpoint, m transport.Message) {
		mu.Lock()
		got = append(got, m.Payload.(string))
		mu.Unlock()
	})
	n.Send(2, 1, "hello", 1)
	if d := n.Step(); d != 1 {
		t.Fatalf("delivered %d, want 1", d)
	}
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got %v", got)
	}
	if n.Pending() != 0 {
		t.Fatalf("pending %d after drain", n.Pending())
	}
}

func TestPerEdgeFIFO(t *testing.T) {
	for _, seeded := range []bool{false, true} {
		n := New()
		if seeded {
			n = NewSeeded(42)
		}
		var mu sync.Mutex
		got := make(map[NodeID][]int)
		record := func(net transport.Endpoint, m transport.Message) {
			mu.Lock()
			got[m.To] = append(got[m.To], m.Payload.(int))
			mu.Unlock()
		}
		n.AddNode(1, record)
		n.AddNode(2, record)
		for i := 0; i < 50; i++ {
			n.Send(9, 1, i, 1)
			n.Send(9, 2, i, 1)
		}
		n.Step()
		for _, to := range []NodeID{1, 2} {
			if len(got[to]) != 50 {
				t.Fatalf("seeded=%v: node %d got %d msgs", seeded, to, len(got[to]))
			}
			if !sort.IntsAreSorted(got[to]) {
				t.Fatalf("seeded=%v: node %d FIFO violated: %v", seeded, to, got[to])
			}
		}
	}
}

// TestCascadeWithinPulse: a chain of forwards all resolves inside one
// Step — the pulse drains cascades, not just the initial queue.
func TestCascadeWithinPulse(t *testing.T) {
	n := New()
	const hops = 64
	var mu sync.Mutex
	reached := 0
	for i := 0; i < hops; i++ {
		i := i
		n.AddNode(NodeID(i), func(net transport.Endpoint, m transport.Message) {
			mu.Lock()
			reached++
			mu.Unlock()
			if i+1 < hops {
				net.Send(NodeID(i), NodeID(i+1), "fwd", 1)
			}
		})
	}
	n.Send(99, 0, "start", 1)
	if d := n.Step(); d != hops {
		t.Fatalf("delivered %d, want %d", d, hops)
	}
	if reached != hops {
		t.Fatalf("reached %d, want %d", reached, hops)
	}
}

// TestTimerFiresAtIdle: timers fire only in a pulse that begins
// message-idle, earliest due batch first.
func TestTimerFiresAtIdle(t *testing.T) {
	n := New()
	var mu sync.Mutex
	var log []string
	n.AddNode(1, func(net transport.Endpoint, m transport.Message) {
		mu.Lock()
		log = append(log, m.Payload.(string))
		mu.Unlock()
	})
	n.AddNode(2, func(net transport.Endpoint, m transport.Message) {})
	n.SendTimer(1, "late", 9)
	n.SendTimer(1, "early", 3)
	n.Send(2, 1, "msg", 1)
	n.Step() // messages only
	mu.Lock()
	if len(log) != 1 || log[0] != "msg" {
		t.Fatalf("after message pulse: %v", log)
	}
	mu.Unlock()
	n.Step() // idle: earliest timer fires
	n.Step() // idle: second timer fires
	if len(log) != 3 || log[1] != "early" || log[2] != "late" {
		t.Fatalf("timer order: %v", log)
	}
	if n.Pending() != 0 {
		t.Fatalf("pending %d", n.Pending())
	}
}

// TestRearmedTimerAdvances: a timer that re-arms on every firing must
// fire once per idle pulse, never livelock a single Step.
func TestRearmedTimerAdvances(t *testing.T) {
	n := New()
	fires := 0
	n.AddNode(1, func(net transport.Endpoint, m transport.Message) {
		fires++
		if fires < 5 {
			net.SendTimer(1, "again", 2)
		}
	})
	n.SendTimer(1, "again", 2)
	steps := 0
	for n.Pending() > 0 {
		n.Step()
		steps++
		if steps > 20 {
			t.Fatal("watchdog chain did not drain")
		}
	}
	if fires != 5 {
		t.Fatalf("fired %d times, want 5", fires)
	}
}

// TestPulseDrainsCompletely: regression for an inflight-ordering race
// in deliverTo. The entry used to be published (append + unlock)
// before inflight.Add(1); a fast receiver could pop, handle, and
// decrement it first, transiently driving inflight to 0 while the
// sending handler was still running — the pulse would end with
// deliverable messages stranded in inboxes. The fix increments before
// publishing; this test hammers the window with tight relay cascades
// and asserts the pulse contract: every Step delivers the whole
// cascade and ends with Pending() == 0.
func TestPulseDrainsCompletely(t *testing.T) {
	const nodes, ttl, rounds, seeds = 8, 200, 30, 4
	n := New()
	for i := 0; i < nodes; i++ {
		i := i
		n.AddNode(NodeID(i), func(net transport.Endpoint, m transport.Message) {
			if k := m.Payload.(int); k > 0 {
				net.Send(NodeID(i), NodeID((i+1)%nodes), k-1, 1)
			}
		})
	}
	for r := 0; r < rounds; r++ {
		for i := 0; i < seeds; i++ {
			n.Send(99, NodeID(i*2), ttl, 1)
		}
		want := seeds * (ttl + 1)
		if d := n.Step(); d != want {
			t.Fatalf("round %d: Step delivered %d, want %d (pulse ended early)", r, d, want)
		}
		if p := n.Pending(); p != 0 {
			t.Fatalf("round %d: %d messages stranded after Step", r, p)
		}
	}
}

func TestDeadNodeDrops(t *testing.T) {
	n := New()
	n.AddNode(1, func(net transport.Endpoint, m transport.Message) {})
	n.Send(1, 7, "to-nobody", 1)
	n.SendTimer(1, "wd", 2)
	n.RemoveNode(1)
	n.Send(2, 1, "late", 1)
	n.Step()
	if d := n.Dropped(); d != 2 {
		t.Fatalf("dropped %d, want 2 (unknown target, post-removal send; purged timers are not traffic)", d)
	}
	if n.Pending() != 0 {
		t.Fatalf("pending %d", n.Pending())
	}
}

func TestSeededReplayIsDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		n := NewSeeded(seed)
		var log []int
		for i := 0; i < 8; i++ {
			i := i
			n.AddNode(NodeID(i), func(net transport.Endpoint, m transport.Message) {
				log = append(log, i)
				if k := m.Payload.(int); k > 0 {
					net.Send(NodeID(i), NodeID((i+3)%8), k-1, 1)
				}
			})
		}
		for i := 0; i < 8; i++ {
			n.Send(99, NodeID(i), 4, 1)
		}
		for n.Pending() > 0 {
			n.Step()
		}
		return log
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("note: seeds 7 and 8 produced identical interleavings (possible but unlikely)")
	}
}

// TestStatsAccounting: counts are scheduler-independent sums.
func TestStatsAccounting(t *testing.T) {
	n := New()
	n.AddNode(1, func(net transport.Endpoint, m transport.Message) {})
	n.AddNode(2, func(net transport.Endpoint, m transport.Message) {})
	n.SendClass(1, 2, "e", 2, transport.ClassElection)
	n.SendClass(2, 1, "s", 3, transport.ClassSync)
	n.Send(1, 2, "d", 5)
	n.Step()
	st := n.Stats()
	if st.Messages != 3 || st.TotalWords != 10 || st.MaxWords != 5 {
		t.Fatalf("stats %+v", st)
	}
	if st.ElectionMessages != 1 || st.SyncMessages != 1 {
		t.Fatalf("class split %+v", st)
	}
	if st.Rounds != 1 || st.ElectionRounds != 1 || st.SyncRounds != 1 {
		t.Fatalf("round split %+v", st)
	}
	if st.QueuedWords != 0 || st.CongestionRounds != 0 {
		t.Fatalf("congestion counters must stay zero: %+v", st)
	}
	n.ResetStats()
	if n.Stats().Messages != 0 {
		t.Fatal("reset failed")
	}
}

func TestNoBandwidthModel(t *testing.T) {
	n := New()
	if n.EdgeBudget(1, 2) != 0 || n.Bandwidth() != 0 {
		t.Fatal("channet must report unlimited bandwidth")
	}
	n.SetBandwidth(0) // cap removal is fine
	defer func() {
		if recover() == nil {
			t.Fatal("positive bandwidth cap must panic")
		}
	}()
	n.SetBandwidth(8)
}

func TestDropPending(t *testing.T) {
	n := New()
	n.AddNode(1, func(net transport.Endpoint, m transport.Message) {})
	n.Send(2, 1, "a", 1)
	n.Send(2, 1, "b", 1)
	n.SendTimer(1, "t", 4)
	if k := n.DropPending(); k != 3 {
		t.Fatalf("dropped %d, want 3", k)
	}
	if n.Pending() != 0 || n.Step() != 0 {
		t.Fatal("traffic survived DropPending")
	}
}
