package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/haft"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// healthyEngine returns an engine with one non-trivial RT.
func healthyEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(graph.Star(9))
	if err := e.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("healthy engine rejected: %v", err)
	}
	return e
}

func anyHelper(t *testing.T, e *Engine) (Slot, *haft.Node) {
	t.Helper()
	for s, h := range e.helpers {
		return s, h
	}
	t.Fatal("no helpers")
	return Slot{}, nil
}

func wantInvariantError(t *testing.T, e *Engine, fragment string) {
	t.Helper()
	err := e.CheckInvariants()
	if err == nil {
		t.Fatalf("corruption not detected (want error containing %q)", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not mention %q", err, fragment)
	}
}

func TestCheckerDetectsMissingLeafAvatar(t *testing.T) {
	e := healthyEngine(t)
	s := Slot{Owner: 3, Other: 0}
	leaf := e.leaves[s]
	haft.Detach(leaf)
	delete(e.leaves, s)
	wantInvariantError(t, e, "missing leaf avatar")
}

func TestCheckerDetectsOrphanLeaf(t *testing.T) {
	e := healthyEngine(t)
	// Register a leaf for an edge whose endpoints are both alive.
	e.leaves[Slot{Owner: 1, Other: 2}] = haft.NewLeaf(&vnode{slot: Slot{Owner: 1, Other: 2}})
	wantInvariantError(t, e, "not deleted")
}

func TestCheckerDetectsStolenHelperSlot(t *testing.T) {
	e := healthyEngine(t)
	s, h := anyHelper(t, e)
	delete(e.helpers, s)
	// Re-register the helper under a slot with no leaf avatar.
	e.helpers[Slot{Owner: s.Owner, Other: 999}] = h
	wantInvariantError(t, e, "")
}

func TestCheckerDetectsCorruptStoredFields(t *testing.T) {
	e := healthyEngine(t)
	_, h := anyHelper(t, e)
	h.LeafCount += 3
	wantInvariantError(t, e, "haft")
}

func TestCheckerDetectsBrokenHaftShape(t *testing.T) {
	e := healthyEngine(t)
	_, h := anyHelper(t, e)
	// Swap children so the left child is no longer the big perfect
	// subtree (when heights differ) or corrupt the parent pointer.
	h.Left.Parent = h.Right
	wantInvariantError(t, e, "")
}

func TestCheckerDetectsWrongRepresentative(t *testing.T) {
	e := healthyEngine(t)
	s, h := anyHelper(t, e)
	// Point the helper's representative at its own slot leaf, which
	// simulates this very helper inside the subtree.
	payload(h).rep = e.leaves[s]
	if err := e.CheckInvariants(); err == nil {
		t.Fatal("wrong representative not detected")
	}
}

func TestCheckerDetectsDeadOwner(t *testing.T) {
	e := healthyEngine(t)
	// Forge liveness: mark a leaf's owner dead without repair.
	delete(e.alive, 5)
	e.dead[5] = struct{}{}
	wantInvariantError(t, e, "")
}

// The stretch argument, microscopically: every pair of leaves of every
// live RT is within 2·⌈log₂ leaves⌉ tree hops (Lemma 1 + haft depth),
// which is what caps the end-to-end stretch at log₂(n).
func TestRTLeafDistancesWithinLemma1Bound(t *testing.T) {
	e := NewEngine(graph.PreferentialAttachment(40, 3, newRand(7)))
	order := newRand(8).Perm(40)
	for _, vi := range order[:30] {
		if err := e.Delete(NodeID(vi)); err != nil {
			t.Fatal(err)
		}
		for _, root := range e.RTRoots() {
			leaves := haft.Leaves(root)
			bound := 2 * ceilLog2Test(len(leaves))
			for i := 0; i < len(leaves); i++ {
				for j := i + 1; j < len(leaves); j++ {
					if d := haft.LeafDistance(leaves[i], leaves[j]); d > bound {
						t.Fatalf("RT with %d leaves: leaf distance %d > %d",
							len(leaves), d, bound)
					}
				}
			}
		}
	}
}

func ceilLog2Test(x int) int {
	n, p := 0, 1
	for p < x {
		p <<= 1
		n++
	}
	return n
}
