package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/haft"
)

// Engine is the reference implementation of the Forgiving Graph. It is
// not safe for concurrent use; the model (Figure 1 of the paper) is a
// strictly alternating adversary/repair loop.
type Engine struct {
	gprime *graph.Graph // G′: every node and edge ever inserted, deletions ignored
	alive  map[NodeID]struct{}
	dead   map[NodeID]struct{}

	leaves  map[Slot]*haft.Node // live leaf avatars L(v,x)
	helpers map[Slot]*haft.Node // live helper nodes H(v,x)

	policy RepPolicy
	// structuralStrip switches the repair to the O(fragment)-time
	// structural strip of package haft instead of the damage-guided
	// fast strip; tests cross-check the two (see strip.go).
	structuralStrip bool

	stats     Stats
	last      RepairStats
	lastBatch BatchRepairStats
}

// SetStructuralStrip toggles the reference (structural) strip
// implementation; the default is the efficient damage-guided strip.
// Both produce identical repairs.
func (e *Engine) SetStructuralStrip(on bool) { e.structuralStrip = on }

// NewEngine returns an engine whose initial network is a copy of g0,
// running the paper's representative policy. Per the model there is no
// pre-processing: processors start knowing only their neighbor lists.
func NewEngine(g0 *graph.Graph) *Engine {
	return NewEngineWithPolicy(g0, RepPaper)
}

// NewEngineWithPolicy returns an engine using the given representative
// policy (see RepPolicy; the ablation experiment compares them).
func NewEngineWithPolicy(g0 *graph.Graph, policy RepPolicy) *Engine {
	e := &Engine{
		gprime:  g0.Clone(),
		alive:   make(map[NodeID]struct{}, g0.NumNodes()),
		dead:    make(map[NodeID]struct{}),
		leaves:  make(map[Slot]*haft.Node),
		helpers: make(map[Slot]*haft.Node),
		policy:  policy,
	}
	for _, v := range g0.Nodes() {
		e.alive[v] = struct{}{}
	}
	return e
}

// Alive reports whether processor v is currently in the network.
func (e *Engine) Alive(v NodeID) bool {
	_, ok := e.alive[v]
	return ok
}

// NumAlive returns the number of live processors.
func (e *Engine) NumAlive() int { return len(e.alive) }

// NumEver returns n, the total number of processors ever seen (|G′|),
// the quantity the stretch bound is stated against.
func (e *Engine) NumEver() int { return e.gprime.NumNodes() }

// GPrime returns a snapshot of G′ (original nodes plus insertions, no
// deletions applied). The caller owns the copy.
func (e *Engine) GPrime() *graph.Graph { return e.gprime.Clone() }

// LiveNodes returns the live processors in ascending order.
func (e *Engine) LiveNodes() []NodeID {
	out := make([]NodeID, 0, len(e.alive))
	for v := range e.alive {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Insert adds processor v connected to the given live neighbors, per the
// model's adversarial insertion: the adversary may connect the new node
// to any subset of current nodes (including none). Insertion triggers no
// repair; the new edges join both G′ and the actual network.
func (e *Engine) Insert(v NodeID, nbrs []NodeID) error {
	if e.gprime.HasNode(v) {
		return fmt.Errorf("core: insert %d: id already used (ids are never reused)", v)
	}
	seen := make(map[NodeID]struct{}, len(nbrs))
	for _, x := range nbrs {
		if x == v {
			return fmt.Errorf("core: insert %d: self edge", v)
		}
		if !e.Alive(x) {
			return fmt.Errorf("core: insert %d: neighbor %d is not a live node", v, x)
		}
		if _, dup := seen[x]; dup {
			return fmt.Errorf("core: insert %d: duplicate neighbor %d", v, x)
		}
		seen[x] = struct{}{}
	}
	e.gprime.AddNode(v)
	for _, x := range nbrs {
		e.gprime.AddEdge(v, x)
	}
	e.alive[v] = struct{}{}
	e.stats.Insertions++
	return nil
}

// Delete removes processor v and runs the Forgiving Graph repair: v's
// leaf avatars and simulated helpers vanish, the affected Reconstruction
// Trees shatter into fragments, each fragment is stripped to its maximal
// complete subtrees, and everything — together with fresh leaf avatars
// for v's surviving direct neighbors — merges into a single new RT
// (Section 3 and Algorithm A.3 of the paper).
func (e *Engine) Delete(v NodeID) error {
	if !e.Alive(v) {
		return fmt.Errorf("core: delete %d: not a live node", v)
	}
	delete(e.alive, v)
	e.dead[v] = struct{}{}

	// Gather v's virtual nodes: one leaf and at most one helper per
	// G′-edge of v.
	var removed []*haft.Node
	removedSet := make(map[*haft.Node]struct{})
	for _, x := range e.gprime.Neighbors(v) {
		s := Slot{Owner: v, Other: x}
		if leaf, ok := e.leaves[s]; ok {
			removed = append(removed, leaf)
			removedSet[leaf] = struct{}{}
			delete(e.leaves, s)
		}
		if h, ok := e.helpers[s]; ok {
			removed = append(removed, h)
			removedSet[h] = struct{}{}
			delete(e.helpers, s)
		}
	}

	// Unlink every edge incident to a removed node, remembering the
	// surviving nodes that were cut loose. Survivors that lost a child
	// seed the damaged set for the efficient strip (losing a parent
	// leaves a subtree intact; losing a child does not).
	survivors := make(map[*haft.Node]struct{})
	var damagedSeeds []*haft.Node
	for _, r := range removed {
		if p := r.Parent; p != nil {
			haft.Detach(r)
			if _, gone := removedSet[p]; !gone {
				survivors[p] = struct{}{}
				damagedSeeds = append(damagedSeeds, p)
			}
		}
		for _, c := range []*haft.Node{r.Left, r.Right} {
			if c == nil {
				continue
			}
			haft.Detach(c)
			if _, gone := removedSet[c]; !gone {
				survivors[c] = struct{}{}
			}
		}
	}

	// Fragment roots: walk up from each cut survivor. Distinct
	// survivors in the same fragment converge to one root.
	fragSet := make(map[*haft.Node]struct{})
	var components []*haft.Node
	for s := range survivors {
		root := haft.Root(s)
		if _, ok := fragSet[root]; !ok {
			fragSet[root] = struct{}{}
			components = append(components, root)
		}
	}

	// Fresh leaf avatars for v's surviving direct neighbors: the edge
	// (x,v) of G′ is now half-dead, so x's side becomes a leaf of the
	// new RT.
	for _, x := range e.gprime.Neighbors(v) {
		if !e.Alive(x) {
			continue
		}
		s := Slot{Owner: x, Other: v}
		if _, dup := e.leaves[s]; dup {
			panic(fmt.Sprintf("core: leaf avatar %v already exists", s))
		}
		leaf := haft.NewLeaf(&vnode{slot: s})
		e.leaves[s] = leaf
		components = append(components, leaf)
	}

	e.repair(components, markDamaged(damagedSeeds), len(removed))
	e.stats.Deletions++
	return nil
}

// DeleteBatch removes every listed processor, repairing after each
// deletion in canonical (ascending-ID) order. This is the *reference
// semantics* for batched deletions: the distributed protocol
// (dist.Simulation.DeleteBatch) overlaps repairs of independent
// regions and must produce exactly this engine's healed graph — the
// differential tests assert it. Validation is atomic: either every
// node is live and distinct and the whole batch applies, or nothing
// does. A batch of one is exactly Delete. Per-batch aggregates land in
// LastBatchRepair.
func (e *Engine) DeleteBatch(vs []NodeID) error {
	batch := append([]NodeID(nil), vs...)
	sort.Slice(batch, func(i, j int) bool { return batch[i] < batch[j] })
	for i, v := range batch {
		if i > 0 && batch[i-1] == v {
			return fmt.Errorf("core: delete batch: duplicate node %d", v)
		}
		if !e.Alive(v) {
			return fmt.Errorf("core: delete batch: node %d is not a live node", v)
		}
	}
	agg := BatchRepairStats{Batch: len(batch)}
	for _, v := range batch {
		if err := e.Delete(v); err != nil {
			return fmt.Errorf("core: delete batch: %w", err)
		}
		agg.RemovedNodes += e.last.RemovedNodes
		agg.Components += e.last.Components
		agg.NewHelpers += e.last.NewHelpers
		agg.DiscardedHelpers += e.last.DiscardedHelpers
	}
	e.lastBatch = agg
	return nil
}

// LastBatchRepair returns aggregate statistics for the most recent
// DeleteBatch call.
func (e *Engine) LastBatchRepair() BatchRepairStats { return e.lastBatch }

// repair strips the damaged components and merges them into one RT,
// recording per-repair statistics.
func (e *Engine) repair(components []*haft.Node, damaged map[*haft.Node]struct{}, removedCount int) {
	e.last = RepairStats{RemovedNodes: removedCount, Components: len(components)}
	if len(components) == 0 {
		e.stats.Repairs++
		return
	}
	// Deterministic component order, keyed by each fragment's leftmost
	// leaf (O(height) to find — fragments must not be walked wholesale
	// or the fast strip's locality is lost). Fragments with no leaves
	// (lone red helpers) sort last; they contribute nothing anyway.
	type keyed struct {
		node *haft.Node
		key  Slot
		ok   bool
	}
	keys := make([]keyed, len(components))
	for i, c := range components {
		k, ok := leftmostLeafSlot(c)
		keys[i] = keyed{node: c, key: k, ok: ok}
	}
	sort.SliceStable(keys, func(i, j int) bool {
		if keys[i].ok != keys[j].ok {
			return keys[i].ok
		}
		if !keys[i].ok {
			return false
		}
		return keys[i].key.less(keys[j].key)
	})
	for i := range keys {
		components[i] = keys[i].node
	}

	// Strip first and retire the discarded helpers before any join: per
	// Lemma 3.2 a processor may be asked to simulate a new helper on a
	// slot whose old helper is being discarded in this very repair.
	var complete []*haft.Node
	for _, f := range components {
		var roots, junk []*haft.Node
		if e.structuralStrip {
			roots, junk = haft.Strip(f)
		} else {
			roots, junk = stripFast(f, damaged)
		}
		complete = append(complete, roots...)
		for _, d := range junk {
			if d.IsLeaf {
				panic("core: strip discarded a leaf avatar")
			}
			s := slotOf(d)
			if e.helpers[s] != d {
				panic(fmt.Sprintf("core: discarded helper not registered in slot %v", s))
			}
			delete(e.helpers, s)
			e.last.DiscardedHelpers++
		}
	}

	join := func(bigger, smaller *haft.Node) *haft.Node {
		charged, passed := bigger, smaller
		switch e.policy {
		case RepSmaller:
			charged, passed = smaller, bigger
		case RepGreedy:
			if e.amplification(procOf(repOf(smaller))) < e.amplification(procOf(repOf(bigger))) {
				charged, passed = smaller, bigger
			}
		}
		rep := repOf(charged)
		s := slotOf(rep)
		if _, exists := e.helpers[s]; exists {
			panic(fmt.Sprintf("core: representative mechanism chose occupied slot %v", s))
		}
		h := &haft.Node{Payload: &vnode{slot: s, rep: repOf(passed)}}
		e.helpers[s] = h
		e.last.NewHelpers++
		return h
	}

	root := haft.Merge(complete, join)
	if root != nil {
		e.last.RTLeaves = root.LeafCount
		e.last.RTDepth = root.Height
	}
	e.stats.Repairs++
	e.stats.TotalNewHelpers += e.last.NewHelpers
	e.stats.TotalDiscarded += e.last.DiscardedHelpers
}

// leftmostLeafSlot descends to the leftmost genuine leaf of n's
// fragment in O(height), reporting whether one exists. Preferring the
// left child at every step matches the left-to-right orientation the
// strip and merge preserve.
func leftmostLeafSlot(n *haft.Node) (Slot, bool) {
	for n != nil {
		if n.IsLeaf {
			return slotOf(n), true
		}
		if n.Left != nil {
			n = n.Left
			continue
		}
		n = n.Right
	}
	return Slot{}, false
}

// LastRepair returns statistics for the most recent deletion repair.
func (e *Engine) LastRepair() RepairStats { return e.last }

// TotalStats returns cumulative operation statistics.
func (e *Engine) TotalStats() Stats { return e.stats }
