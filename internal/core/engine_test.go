package core

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func mustDelete(t *testing.T, e *Engine, v NodeID) {
	t.Helper()
	if err := e.Delete(v); err != nil {
		t.Fatalf("Delete(%d): %v", v, err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("after Delete(%d): %v", v, err)
	}
}

func mustInsert(t *testing.T, e *Engine, v NodeID, nbrs []NodeID) {
	t.Helper()
	if err := e.Insert(v, nbrs); err != nil {
		t.Fatalf("Insert(%d): %v", v, err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("after Insert(%d): %v", v, err)
	}
}

func TestNewEngineInitialState(t *testing.T) {
	e := NewEngine(graph.Cycle(5))
	if e.NumAlive() != 5 || e.NumEver() != 5 {
		t.Fatalf("alive=%d ever=%d", e.NumAlive(), e.NumEver())
	}
	if e.NumHelpers() != 0 || e.NumLeafAvatars() != 0 {
		t.Fatal("fresh engine has virtual nodes")
	}
	if !e.Physical().Equal(graph.Cycle(5)) {
		t.Fatal("initial physical network differs from G0")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertErrors(t *testing.T) {
	e := NewEngine(graph.Path(3))
	tests := []struct {
		name string
		id   NodeID
		nbrs []NodeID
	}{
		{"existing id", 1, nil},
		{"self edge", 9, []NodeID{9}},
		{"unknown neighbor", 9, []NodeID{77}},
		{"duplicate neighbor", 9, []NodeID{0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := e.Insert(tt.id, tt.nbrs); err == nil {
				t.Fatalf("Insert(%d,%v) accepted", tt.id, tt.nbrs)
			}
		})
	}
	// Dead ids are never reused.
	mustDelete(t, e, 2)
	if err := e.Insert(2, nil); err == nil {
		t.Fatal("reused a dead id")
	}
	// Inserting with an edge to a dead node is rejected.
	if err := e.Insert(9, []NodeID{2}); err == nil {
		t.Fatal("edge to dead node accepted")
	}
}

func TestDeleteErrors(t *testing.T) {
	e := NewEngine(graph.Path(3))
	if err := e.Delete(42); err == nil {
		t.Fatal("deleted an unknown node")
	}
	mustDelete(t, e, 1)
	if err := e.Delete(1); err == nil {
		t.Fatal("double delete accepted")
	}
}

// Figure 2 of the paper: deleting the hub of a star replaces it with a
// Reconstruction Tree over its 8 neighbors.
func TestStarHubDeletion(t *testing.T) {
	e := NewEngine(graph.Star(9))
	mustDelete(t, e, 0)

	if got := e.NumLeafAvatars(); got != 8 {
		t.Fatalf("leaf avatars = %d, want 8", got)
	}
	// A haft over 8 leaves has exactly 7 helpers, all fresh.
	if got := e.NumHelpers(); got != 7 {
		t.Fatalf("helpers = %d, want 7", got)
	}
	rs := e.LastRepair()
	if rs.NewHelpers != 7 || rs.DiscardedHelpers != 0 || rs.Components != 8 {
		t.Fatalf("repair stats = %+v", rs)
	}
	if rs.RTLeaves != 8 || rs.RTDepth != 3 {
		t.Fatalf("RT leaves=%d depth=%d, want 8/3", rs.RTLeaves, rs.RTDepth)
	}

	phys := e.Physical()
	if phys.NumNodes() != 8 || !phys.Connected() {
		t.Fatalf("physical: n=%d connected=%v", phys.NumNodes(), phys.Connected())
	}
	// Degree bound: every survivor had G' degree 1, so physical degree
	// must stay ≤ 3 (the paper's factor; 4 is the hard invariant).
	deg := e.CheckDegrees()
	if deg.MaxRatio > 3 {
		t.Fatalf("max degree ratio = %v > 3 on the star", deg.MaxRatio)
	}
	// Stretch bound: leaves were at pairwise G'-distance 2; through the
	// depth-3 RT they are at distance ≤ 6; bound is log2(9) ≈ 3.17.
	st := e.CheckStretch()
	if !st.Satisfied() {
		t.Fatalf("stretch %v exceeds bound %v (pair %d,%d)",
			st.MaxStretch, st.Bound, st.WorstU, st.WorstV)
	}
	if st.MaxStretch > 3 {
		t.Fatalf("stretch on star after one deletion = %v, want ≤ 3", st.MaxStretch)
	}
}

// Deleting a degree-2 node splices its two neighbors together through a
// 2-leaf RT, which collapses to a single physical edge.
func TestPathMiddleDeletion(t *testing.T) {
	e := NewEngine(graph.Path(3))
	mustDelete(t, e, 1)
	phys := e.Physical()
	if !phys.HasEdge(0, 2) {
		t.Fatal("neighbors not reconnected")
	}
	if phys.NumEdges() != 1 {
		t.Fatalf("physical edges = %d, want 1", phys.NumEdges())
	}
	if e.NumHelpers() != 1 {
		t.Fatalf("helpers = %d, want 1", e.NumHelpers())
	}
}

// Cascade: delete the star hub, then delete a survivor that simulates a
// helper. The RT must shatter, strip, and re-merge into a 3-leaf haft.
func TestCascadeIntoRT(t *testing.T) {
	e := NewEngine(graph.Star(5))
	mustDelete(t, e, 0) // RT over {1,2,3,4}, 3 helpers
	if e.NumHelpers() != 3 {
		t.Fatalf("helpers after hub deletion = %d, want 3", e.NumHelpers())
	}
	mustDelete(t, e, 2)
	if got := e.NumLeafAvatars(); got != 3 {
		t.Fatalf("leaf avatars = %d, want 3", got)
	}
	if got := e.NumHelpers(); got != 2 {
		t.Fatalf("helpers = %d, want 2 (haft(3) has 2 internal nodes)", got)
	}
	phys := e.Physical()
	if phys.NumNodes() != 3 || !phys.Connected() {
		t.Fatalf("physical: %v connected=%v", phys, phys.Connected())
	}
	st := e.CheckStretch()
	if !st.Satisfied() {
		t.Fatalf("stretch %v > bound %v", st.MaxStretch, st.Bound)
	}
}

// Delete every node one by one; the engine must stay consistent down to
// the empty network.
func TestDeleteEverything(t *testing.T) {
	e := NewEngine(graph.Grid(3, 3))
	for _, v := range e.LiveNodes() {
		mustDelete(t, e, v)
	}
	if e.NumAlive() != 0 || e.NumHelpers() != 0 || e.NumLeafAvatars() != 0 {
		t.Fatalf("residue after total deletion: alive=%d helpers=%d leaves=%d",
			e.NumAlive(), e.NumHelpers(), e.NumLeafAvatars())
	}
}

// Deleting an isolated node is a legal no-op repair.
func TestDeleteIsolatedNode(t *testing.T) {
	g := graph.New()
	g.AddNode(1)
	g.AddNode(2)
	e := NewEngine(g)
	mustDelete(t, e, 1)
	if e.NumAlive() != 1 {
		t.Fatalf("alive = %d, want 1", e.NumAlive())
	}
	if rs := e.LastRepair(); rs.Components != 0 || rs.RTLeaves != 0 {
		t.Fatalf("repair stats for isolated deletion = %+v", rs)
	}
}

// A node whose last neighbor dies becomes the lone leaf of a trivial RT:
// no helpers, no physical edges.
func TestLoneLeafTrivialRT(t *testing.T) {
	e := NewEngine(graph.Path(2))
	mustDelete(t, e, 0)
	if e.NumLeafAvatars() != 1 || e.NumHelpers() != 0 {
		t.Fatalf("avatars=%d helpers=%d, want 1/0", e.NumLeafAvatars(), e.NumHelpers())
	}
	if got := e.Physical().NumEdges(); got != 0 {
		t.Fatalf("physical edges = %d, want 0", got)
	}
}

// Insertions after deletions: new nodes connect to survivors, and later
// deletions of those survivors pull the newcomers into RTs.
func TestInsertThenDeleteMix(t *testing.T) {
	e := NewEngine(graph.Cycle(4))
	mustInsert(t, e, 10, []NodeID{0, 2})
	mustDelete(t, e, 0)
	mustInsert(t, e, 11, []NodeID{10})
	mustDelete(t, e, 2)
	mustInsert(t, e, 12, []NodeID{11, 1})
	mustDelete(t, e, 10)

	phys := e.Physical()
	if !phys.Connected() {
		t.Fatal("network disconnected after churn")
	}
	st := e.CheckStretch()
	if !st.Satisfied() {
		t.Fatalf("stretch %v > bound %v", st.MaxStretch, st.Bound)
	}
	if e.NumEver() != 7 {
		t.Fatalf("NumEver = %d, want 7", e.NumEver())
	}
}

// An isolated insertion starts its own component; the connectivity
// invariant must treat components independently.
func TestIsolatedInsertion(t *testing.T) {
	e := NewEngine(graph.Path(3))
	mustInsert(t, e, 50, nil)
	mustInsert(t, e, 51, []NodeID{50})
	mustDelete(t, e, 50)
	phys := e.Physical()
	if phys.Distance(0, 51) != graph.Unreachable {
		t.Fatal("separate components merged")
	}
}

// The direct edge between two live nodes must never disappear,
// regardless of surrounding churn.
func TestDirectEdgesPersist(t *testing.T) {
	e := NewEngine(graph.Complete(5))
	mustDelete(t, e, 0)
	mustDelete(t, e, 1)
	phys := e.Physical()
	for _, u := range e.LiveNodes() {
		for _, v := range e.LiveNodes() {
			if u < v && !phys.HasEdge(u, v) {
				t.Fatalf("direct edge {%d,%d} lost", u, v)
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	e := NewEngine(graph.Star(4))
	mustDelete(t, e, 0)
	mustInsert(t, e, 9, []NodeID{1})
	s := e.TotalStats()
	if s.Deletions != 1 || s.Insertions != 1 || s.Repairs != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TotalNewHelpers != 2 {
		t.Fatalf("TotalNewHelpers = %d, want 2 (haft over 3 leaves)", s.TotalNewHelpers)
	}
}

func TestVirtualDegreeBoundsPhysical(t *testing.T) {
	e := NewEngine(graph.Star(8))
	mustDelete(t, e, 0)
	phys := e.Physical()
	for _, v := range e.LiveNodes() {
		pd := phys.Degree(v)
		vd := e.VirtualDegree(v)
		if pd > vd {
			t.Fatalf("node %d: physical degree %d > virtual degree %d", v, pd, vd)
		}
		if vd > 4*e.DegreePrime(v) {
			t.Fatalf("node %d: virtual degree %d > 4×%d", v, vd, e.DegreePrime(v))
		}
	}
	if e.VirtualDegree(0) != 0 {
		t.Fatal("dead node should have virtual degree 0")
	}
}

func TestStretchReportFields(t *testing.T) {
	e := NewEngine(graph.Star(9))
	mustDelete(t, e, 0)
	st := e.CheckStretch()
	if st.Pairs != 28 { // C(8,2)
		t.Fatalf("pairs = %d, want 28", st.Pairs)
	}
	if st.MaxStretch < 1 {
		t.Fatalf("max stretch = %v, expected ≥ 1 after hub deletion", st.MaxStretch)
	}
	if math.IsInf(st.MaxStretch, 1) {
		t.Fatal("infinite stretch reported on a connected repair")
	}
}
