package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// allGraphsOn enumerates every labeled simple graph on n vertices (all
// 2^(n(n-1)/2) edge subsets).
func allGraphsOn(n int) []*graph.Graph {
	type pair struct{ u, v NodeID }
	var pairs []pair
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, pair{NodeID(u), NodeID(v)})
		}
	}
	var out []*graph.Graph
	for mask := 0; mask < 1<<len(pairs); mask++ {
		g := graph.New()
		for i := 0; i < n; i++ {
			g.AddNode(NodeID(i))
		}
		for i, p := range pairs {
			if mask&(1<<i) != 0 {
				g.AddEdge(p.u, p.v)
			}
		}
		out = append(out, g)
	}
	return out
}

// permutations returns all orderings of 0..n-1.
func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	sub := permutations(n - 1)
	for _, p := range sub {
		for pos := 0; pos <= len(p); pos++ {
			q := make([]int, 0, n)
			q = append(q, p[:pos]...)
			q = append(q, n-1)
			q = append(q, p[pos:]...)
			out = append(out, q)
		}
	}
	return out
}

// TestExhaustiveFourNodeGraphs runs every labeled graph on 4 vertices
// through every deletion order, checking all invariants and the stretch
// bound after every single step. 64 graphs × 24 orders × 4 deletions:
// the complete corner-case space at this size.
func TestExhaustiveFourNodeGraphs(t *testing.T) {
	graphs := allGraphsOn(4)
	orders := permutations(4)
	for gi, g0 := range graphs {
		for oi, order := range orders {
			e := NewEngine(g0)
			for step, vi := range order {
				if err := e.Delete(NodeID(vi)); err != nil {
					t.Fatalf("graph %d order %v step %d: %v", gi, order, step, err)
				}
				if err := e.CheckInvariants(); err != nil {
					t.Fatalf("graph %d order %v step %d: %v", gi, order, step, err)
				}
				if st := e.CheckStretch(); !st.Satisfied() {
					t.Fatalf("graph %d order %v step %d: stretch %v > %v",
						gi, order, step, st.MaxStretch, st.Bound)
				}
			}
			_ = oi
		}
	}
}

// TestExhaustiveFiveNodeGraphsSampled covers the 1024 five-vertex
// graphs with four random deletion orders each (and interleaved
// insertions on a third of them).
func TestExhaustiveFiveNodeGraphsSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	rng := rand.New(rand.NewSource(1))
	for gi, g0 := range allGraphsOn(5) {
		for trial := 0; trial < 4; trial++ {
			e := NewEngine(g0)
			order := rng.Perm(5)
			insertAt := -1
			if gi%3 == 0 {
				insertAt = rng.Intn(5)
			}
			for step, vi := range order {
				if step == insertAt && e.NumAlive() > 0 {
					live := e.LiveNodes()
					if err := e.Insert(NodeID(100+step), []NodeID{live[rng.Intn(len(live))]}); err != nil {
						t.Fatalf("graph %d trial %d: insert: %v", gi, trial, err)
					}
				}
				if err := e.Delete(NodeID(vi)); err != nil {
					t.Fatalf("graph %d trial %d step %d: %v", gi, trial, step, err)
				}
				if err := e.CheckInvariants(); err != nil {
					t.Fatalf("graph %d trial %d order %v step %d: %v", gi, trial, order, step, err)
				}
			}
			if st := e.CheckStretch(); !st.Satisfied() {
				t.Fatalf("graph %d trial %d: stretch %v > %v", gi, trial, st.MaxStretch, st.Bound)
			}
		}
	}
}
