package core

import (
	"testing"

	"repro/internal/graph"
)

// FuzzEngineTrace interprets a byte string as an operation program over
// a small initial clique — each byte either deletes a live node (by
// index) or inserts a node attached to one or two live nodes — and
// checks the full invariant suite plus the stretch bound after every
// step. Run with `go test -fuzz FuzzEngineTrace ./internal/core`; the
// seed corpus doubles as a unit test.
func FuzzEngineTrace(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{0x80, 0, 0x81, 1, 0x80, 2})
	f.Add([]byte{5, 4, 3, 2, 1, 0})
	f.Add([]byte{0x90, 0x91, 0x92, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 40 {
			t.Skip()
		}
		e := NewEngine(graph.Complete(6))
		nextID := NodeID(1000)
		for pc, op := range program {
			live := e.LiveNodes()
			if len(live) == 0 {
				break
			}
			if op&0x80 != 0 {
				// Insert attached to one or two live nodes.
				nbrs := []NodeID{live[int(op&0x3F)%len(live)]}
				if op&0x40 != 0 {
					other := live[(int(op&0x3F)+1)%len(live)]
					if other != nbrs[0] {
						nbrs = append(nbrs, other)
					}
				}
				if err := e.Insert(nextID, nbrs); err != nil {
					t.Fatalf("pc %d: insert: %v", pc, err)
				}
				nextID++
			} else {
				v := live[int(op)%len(live)]
				if err := e.Delete(v); err != nil {
					t.Fatalf("pc %d: delete %d: %v", pc, v, err)
				}
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("pc %d (op %#x): %v", pc, op, err)
			}
		}
		if st := e.CheckStretch(); !st.Satisfied() {
			t.Fatalf("stretch %v > bound %v", st.MaxStretch, st.Bound)
		}
	})
}
