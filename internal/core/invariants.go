package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/haft"
)

// CheckInvariants revalidates the engine's entire structural state from
// scratch. It is deliberately independent of the incremental bookkeeping
// in Delete/repair so that tests catch drift between the two. The checks
// mirror the paper's lemmas:
//
//  1. leaf-avatar characterization: L(v,x) exists iff (v,x) ∈ G′, v is
//     alive and x is deleted;
//  2. helper-per-slot (Lemma 3.1): at most one helper per slot, owner
//     alive, its leaf in the same RT and inside the helper's subtree;
//  3. every RT is a valid haft, and an RT with L leaves has exactly L-1
//     helpers;
//  4. representative correctness: each helper's stored representative is
//     the unique leaf of its subtree simulating no helper within that
//     subtree;
//  5. hard degree bound: physical degree ≤ 4·(G′ degree) for every live
//     processor (the paper's Theorem 1.1 claims 3; see DESIGN.md — we
//     verify the provable 4 and report the realized maximum separately);
//  6. connectivity: two live processors are connected in the actual
//     network iff they are connected in G′.
func (e *Engine) CheckInvariants() error {
	// (1) leaf characterization.
	for s, leaf := range e.leaves {
		if !e.Alive(s.Owner) {
			return fmt.Errorf("leaf %v: owner not alive", s)
		}
		if _, dead := e.dead[s.Other]; !dead {
			return fmt.Errorf("leaf %v: other endpoint not deleted", s)
		}
		if !e.gprime.HasEdge(s.Owner, s.Other) {
			return fmt.Errorf("leaf %v: no such G' edge", s)
		}
		if !leaf.IsLeaf {
			return fmt.Errorf("leaf %v: tree node not marked leaf", s)
		}
		if slotOf(leaf) != s {
			return fmt.Errorf("leaf %v: payload slot %v mismatch", s, slotOf(leaf))
		}
	}
	for v := range e.alive {
		for _, x := range e.gprime.Neighbors(v) {
			if _, dead := e.dead[x]; dead {
				if _, ok := e.leaves[Slot{Owner: v, Other: x}]; !ok {
					return fmt.Errorf("missing leaf avatar (%d,%d)", v, x)
				}
			}
		}
	}

	// (2) helper slots.
	for s, h := range e.helpers {
		if !e.Alive(s.Owner) {
			return fmt.Errorf("helper %v: owner not alive", s)
		}
		if h.IsLeaf {
			return fmt.Errorf("helper %v: marked as leaf", s)
		}
		if slotOf(h) != s {
			return fmt.Errorf("helper %v: payload slot %v mismatch", s, slotOf(h))
		}
		leaf, ok := e.leaves[s]
		if !ok {
			return fmt.Errorf("helper %v: no leaf avatar in the same slot", s)
		}
		if !inSubtree(leaf, h) {
			return fmt.Errorf("helper %v: its leaf avatar is not inside its subtree", s)
		}
	}

	// (3) RTs are hafts with the right helper census.
	for _, root := range e.RTRoots() {
		if err := haft.Validate(root); err != nil {
			return fmt.Errorf("RT invalid: %w", err)
		}
		leaves := haft.Leaves(root)
		internal := haft.Internal(root)
		if len(internal) != len(leaves)-1 {
			return fmt.Errorf("RT with %d leaves has %d helpers, want %d",
				len(leaves), len(internal), len(leaves)-1)
		}
		for _, l := range leaves {
			if e.leaves[slotOf(l)] != l {
				return fmt.Errorf("RT leaf %v not registered", slotOf(l))
			}
		}
		for _, h := range internal {
			if e.helpers[slotOf(h)] != h {
				return fmt.Errorf("RT helper %v not registered", slotOf(h))
			}
		}
	}

	// (4) representatives.
	for s, h := range e.helpers {
		rep := repOf(h)
		if rep == nil {
			return fmt.Errorf("helper %v: nil representative", s)
		}
		free := e.freeLeaves(h)
		if len(free) != 1 {
			return fmt.Errorf("helper %v: %d free leaves in subtree, want exactly 1", s, len(free))
		}
		if free[0] != rep {
			return fmt.Errorf("helper %v: stored representative %v, recomputed %v",
				s, slotOf(rep), slotOf(free[0]))
		}
	}

	// (5) hard degree bound.
	phys := e.Physical()
	for v := range e.alive {
		dp := e.gprime.Degree(v)
		if got := phys.Degree(v); got > 4*dp {
			return fmt.Errorf("degree bound: node %d has physical degree %d > 4×%d", v, got, dp)
		}
	}

	// (6) connectivity equivalence with G′.
	if err := e.checkConnectivity(phys); err != nil {
		return err
	}
	return nil
}

// freeLeaves recomputes, from scratch, the leaves of h's subtree that
// simulate no helper located within that subtree.
func (e *Engine) freeLeaves(h *haft.Node) []*haft.Node {
	inside := make(map[*haft.Node]struct{})
	for _, x := range haft.Internal(h) {
		inside[x] = struct{}{}
	}
	var free []*haft.Node
	for _, l := range haft.Leaves(h) {
		if other, ok := e.helpers[slotOf(l)]; ok {
			if _, in := inside[other]; in {
				continue
			}
		}
		free = append(free, l)
	}
	return free
}

func inSubtree(n, root *haft.Node) bool {
	for x := n; x != nil; x = x.Parent {
		if x == root {
			return true
		}
	}
	return false
}

// checkConnectivity verifies that live processors are connected in the
// physical network exactly when they are connected in G′ (deleted nodes
// count as usable intermediates in G′, matching the distance metric).
func (e *Engine) checkConnectivity(phys *graph.Graph) error {
	live := e.LiveNodes()
	if len(live) == 0 {
		return nil
	}
	seen := make(map[NodeID]struct{})
	for _, src := range live {
		if _, done := seen[src]; done {
			continue
		}
		gp := e.gprime.BFS(src)
		ph := phys.BFS(src)
		for _, v := range live {
			_, inPrime := gp[v]
			_, inPhys := ph[v]
			if inPrime != inPhys {
				return fmt.Errorf("connectivity: %d~%d is %v in G' but %v in actual network",
					src, v, inPrime, inPhys)
			}
			if inPhys {
				seen[v] = struct{}{}
			}
		}
	}
	return nil
}

// StretchReport holds the result of a stretch audit.
type StretchReport struct {
	// MaxStretch is max over measured live pairs of
	// dist(x,y,G_T)/dist(x,y,G′_T).
	MaxStretch float64
	// Bound is log₂(n) with n = |G′_T|, the paper's guarantee.
	Bound float64
	// WorstU, WorstV attain MaxStretch.
	WorstU, WorstV NodeID
	// Pairs is how many live pairs were measured.
	Pairs int
}

// Satisfied reports whether the measured stretch is within the bound.
// Pairs at G′-distance 1 trivially satisfy any bound ≥ 1; the bound is
// vacuous for n < 2 so we clamp it to 1.
func (r StretchReport) Satisfied() bool {
	bound := r.Bound
	if bound < 1 {
		bound = 1
	}
	return r.MaxStretch <= bound+1e-9
}

// CheckStretch measures the exact maximum stretch over all live pairs by
// running a BFS per live node in both the physical network and G′. Cost
// is O(n·(n+m)); intended for tests and experiment-scale graphs.
func (e *Engine) CheckStretch() StretchReport {
	phys := e.Physical()
	live := e.LiveNodes()
	rep := StretchReport{Bound: log2(float64(e.NumEver()))}
	for i, u := range live {
		du := phys.BFS(u)
		dp := e.gprime.BFS(u)
		for _, v := range live[i+1:] {
			dPrime, okP := dp[v]
			if !okP || dPrime == 0 {
				continue // unreachable in G′ (or self): bound does not apply
			}
			dPhys, okG := du[v]
			if !okG {
				// Connectivity invariant says this cannot happen;
				// surface it as infinite stretch.
				rep.MaxStretch = math.Inf(1)
				rep.WorstU, rep.WorstV = u, v
				rep.Pairs++
				continue
			}
			rep.Pairs++
			if s := float64(dPhys) / float64(dPrime); s > rep.MaxStretch {
				rep.MaxStretch = s
				rep.WorstU, rep.WorstV = u, v
			}
		}
	}
	return rep
}

// DegreeReport holds the result of a degree audit.
type DegreeReport struct {
	// MaxRatio is max over live v with DegreePrime(v) > 0 of
	// physicalDegree(v)/degreePrime(v).
	MaxRatio float64
	// Worst attains MaxRatio.
	Worst NodeID
	// Over3 counts live processors whose ratio exceeds the paper's
	// stated factor 3.
	Over3 int
}

// CheckDegrees measures the realized degree amplification of every live
// processor against its G′ degree.
func (e *Engine) CheckDegrees() DegreeReport {
	phys := e.Physical()
	var rep DegreeReport
	for v := range e.alive {
		dp := e.gprime.Degree(v)
		if dp == 0 {
			continue
		}
		ratio := float64(phys.Degree(v)) / float64(dp)
		if ratio > rep.MaxRatio {
			rep.MaxRatio = ratio
			rep.Worst = v
		}
		if ratio > 3+1e-9 {
			rep.Over3++
		}
	}
	return rep
}

func log2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}
