package core

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/haft"
)

// Physical returns the current actual network G_T: the simple graph over
// live processors that is the homomorphic image of the virtual graph.
// Edges come from two sources: G′ edges whose endpoints are both alive
// (direct edges are never rewired while both ends live), and tree edges
// of the Reconstruction Trees, mapped to the simulating processors.
// Self-loops (a processor adjacent to a node it simulates itself) and
// parallel edges collapse, exactly as in the paper's homomorphism.
// The caller owns the returned graph.
func (e *Engine) Physical() *graph.Graph {
	g := graph.New()
	for v := range e.alive {
		g.AddNode(v)
	}
	for v := range e.alive {
		e.gprime.EachNeighbor(v, func(x NodeID) {
			if _, ok := e.alive[x]; ok {
				g.AddEdge(v, x)
			}
		})
	}
	addParentEdge := func(n *haft.Node) {
		if n.Parent == nil {
			return
		}
		a, b := procOf(n), procOf(n.Parent)
		if a != b {
			g.AddEdge(a, b)
		}
	}
	for _, n := range e.leaves {
		addParentEdge(n)
	}
	for _, n := range e.helpers {
		addParentEdge(n)
	}
	return g
}

// DegreePrime returns the degree of v in G′ (edges to both live and
// deleted neighbors count, per the paper's success metric).
func (e *Engine) DegreePrime(v NodeID) int { return e.gprime.Degree(v) }

// VirtualDegree returns the number of virtual-graph edge incidences of
// processor v before homomorphic collapse: its live direct edges plus
// the tree edges of its avatars and helpers. This upper-bounds the
// physical degree and is itself bounded by 4·DegreePrime(v); the
// physical (collapsed) degree is what Theorem 1.1 speaks about.
func (e *Engine) VirtualDegree(v NodeID) int {
	if !e.Alive(v) {
		return 0
	}
	deg := 0
	e.gprime.EachNeighbor(v, func(x NodeID) {
		if e.Alive(x) {
			deg++ // direct edge
			return
		}
		s := Slot{Owner: v, Other: x}
		if leaf, ok := e.leaves[s]; ok && leaf.Parent != nil {
			deg++
		}
		if h, ok := e.helpers[s]; ok {
			if h.Parent != nil {
				deg++
			}
			if h.Left != nil {
				deg++
			}
			if h.Right != nil {
				deg++
			}
		}
	})
	return deg
}

// RTRoots returns the roots of all current Reconstruction Trees,
// deduplicated, in no particular order.
func (e *Engine) RTRoots() []*haft.Node {
	seen := make(map[*haft.Node]struct{})
	var roots []*haft.Node
	collect := func(n *haft.Node) {
		r := haft.Root(n)
		if _, ok := seen[r]; !ok {
			seen[r] = struct{}{}
			roots = append(roots, r)
		}
	}
	for _, n := range e.leaves {
		collect(n)
	}
	for _, n := range e.helpers {
		collect(n)
	}
	return roots
}

// LeafPartition returns, for every Reconstruction Tree, the sorted slots
// of its leaf avatars, with the trees ordered by smallest slot. Two
// implementations of the repair that agree on semantics produce the same
// partition even when their tree shapes differ; the distributed protocol
// is cross-checked against this.
func (e *Engine) LeafPartition() [][]Slot {
	var part [][]Slot
	for _, root := range e.RTRoots() {
		var slots []Slot
		for _, l := range haft.Leaves(root) {
			slots = append(slots, slotOf(l))
		}
		sort.Slice(slots, func(i, j int) bool { return slots[i].less(slots[j]) })
		part = append(part, slots)
	}
	sort.Slice(part, func(i, j int) bool { return part[i][0].less(part[j][0]) })
	return part
}

// NumLeafAvatars and NumHelpers expose the virtual-graph population for
// tests and metrics.
func (e *Engine) NumLeafAvatars() int { return len(e.leaves) }

// NumHelpers returns the number of live helper nodes.
func (e *Engine) NumHelpers() int { return len(e.helpers) }
