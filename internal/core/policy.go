package core

// RepPolicy selects which representative instantiates the new helper
// when two trees join. The paper's Algorithm A.9 always charges the
// bigger tree's representative; since either representative yields a
// correct merged tree (both are free leaves of the result, and the
// other one remains free), the choice is a pure degree-placement
// decision — exactly the kind of constant-factor knob the DESIGN.md
// degree discussion is about. EXP-ABLATE measures the difference.
type RepPolicy int

const (
	// RepPaper charges the bigger tree's representative and passes the
	// smaller tree's representative on (Algorithm A.9). This is the
	// default and the published algorithm.
	RepPaper RepPolicy = iota
	// RepSmaller charges the smaller tree's representative instead.
	// When the smaller tree is a lone leaf the new helper's child edge
	// to it collapses into a self-loop, saving a physical edge at
	// exactly the spine joins where the paper's policy pays its ×4
	// worst case.
	RepSmaller
	// RepGreedy charges whichever candidate processor currently has
	// the smaller degree amplification, breaking ties toward the
	// paper's choice.
	RepGreedy
)

// String returns the policy name used in experiment tables.
func (p RepPolicy) String() string {
	switch p {
	case RepPaper:
		return "paper"
	case RepSmaller:
		return "smaller-rep"
	case RepGreedy:
		return "greedy"
	default:
		return "unknown"
	}
}

// amplification estimates a processor's current degree amplification,
// used by RepGreedy. Mid-repair links are transient, which is fine for
// a placement heuristic.
func (e *Engine) amplification(v NodeID) float64 {
	dp := e.gprime.Degree(v)
	if dp == 0 {
		return 0
	}
	return float64(e.VirtualDegree(v)) / float64(dp)
}
