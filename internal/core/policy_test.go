package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestPolicyString(t *testing.T) {
	tests := []struct {
		p    RepPolicy
		want string
	}{
		{RepPaper, "paper"},
		{RepSmaller, "smaller-rep"},
		{RepGreedy, "greedy"},
		{RepPolicy(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", tt.p, got, tt.want)
		}
	}
}

// All policies must preserve every structural invariant and the stretch
// bound on random traces — they only move helper placements around.
func TestPoliciesPreserveInvariants(t *testing.T) {
	for _, policy := range []RepPolicy{RepPaper, RepSmaller, RepGreedy} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			e := NewEngineWithPolicy(graph.GNP(24, 0.15, rng), policy)
			for i := 0; i < 16; i++ {
				live := e.LiveNodes()
				if len(live) == 0 {
					break
				}
				if err := e.Delete(live[rng.Intn(len(live))]); err != nil {
					t.Fatal(err)
				}
				if err := e.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
			if st := e.CheckStretch(); !st.Satisfied() {
				t.Fatalf("stretch %v > %v", st.MaxStretch, st.Bound)
			}
		})
	}
}

// The ablation's finding: the ×4 worst case is *intrinsic* to the
// representative mechanism, not a placement artifact — any equal-size
// join of height ≥ 2 whose root later gains a parent hands its
// simulator a leaf edge plus three helper edges to distinct processors,
// regardless of which representative is charged. All policies must
// therefore realize exactly 4 on large stars and none may be worse than
// the paper's.
func TestPolicyDegreeOnStar(t *testing.T) {
	measure := func(policy RepPolicy, n int) float64 {
		e := NewEngineWithPolicy(graph.Star(n), policy)
		if err := e.Delete(0); err != nil {
			t.Fatal(err)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return e.CheckDegrees().MaxRatio
	}
	for _, n := range []int{16, 32, 64, 128} {
		paper := measure(RepPaper, n)
		if paper != 4 {
			t.Fatalf("n=%d: paper policy ratio = %v, want 4 (equal-join worst case)", n, paper)
		}
		for _, alt := range []RepPolicy{RepSmaller, RepGreedy} {
			if got := measure(alt, n); got > paper {
				t.Fatalf("n=%d: %v policy ratio %v worse than paper %v", n, alt, got, paper)
			}
		}
	}
}

// Identical traces under different policies still produce the same RT
// leaf partitions — the policy only affects simulator placement.
func TestPoliciesAgreeOnPartition(t *testing.T) {
	trace := []NodeID{0, 3, 7, 5}
	run := func(policy RepPolicy) [][]Slot {
		e := NewEngineWithPolicy(graph.Star(10), policy)
		for _, v := range trace {
			if err := e.Delete(v); err != nil {
				t.Fatal(err)
			}
		}
		return e.LeafPartition()
	}
	base := run(RepPaper)
	for _, alt := range []RepPolicy{RepSmaller, RepGreedy} {
		got := run(alt)
		if len(got) != len(base) {
			t.Fatalf("%v: partition count %d vs %d", alt, len(got), len(base))
		}
		for i := range base {
			if len(got[i]) != len(base[i]) {
				t.Fatalf("%v: partition %d size differs", alt, i)
			}
			for j := range base[i] {
				if got[i][j] != base[i][j] {
					t.Fatalf("%v: partition %d differs at %d", alt, i, j)
				}
			}
		}
	}
}
