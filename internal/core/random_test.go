package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// runAdversarialTrace drives an engine through steps random operations
// (biased toward deletions), validating every paper invariant after each
// step. It returns the engine for final inspection.
func runAdversarialTrace(t *testing.T, g0 *graph.Graph, steps int, seed int64, insertP float64) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	e := NewEngine(g0)
	nextID := NodeID(1 << 20)
	for i := 0; i < steps; i++ {
		live := e.LiveNodes()
		if len(live) == 0 {
			break
		}
		if rng.Float64() < insertP {
			k := rng.Intn(3) + 1
			if k > len(live) {
				k = len(live)
			}
			nbrs := make([]NodeID, 0, k)
			for _, idx := range rng.Perm(len(live))[:k] {
				nbrs = append(nbrs, live[idx])
			}
			if err := e.Insert(nextID, nbrs); err != nil {
				t.Fatalf("step %d: insert: %v", i, err)
			}
			nextID++
		} else {
			v := live[rng.Intn(len(live))]
			if err := e.Delete(v); err != nil {
				t.Fatalf("step %d: delete %d: %v", i, v, err)
			}
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("step %d: invariants: %v", i, err)
		}
	}
	return e
}

func TestRandomDeletionsOnTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tests := []struct {
		name string
		g0   *graph.Graph
	}{
		{"star", graph.Star(24)},
		{"path", graph.Path(24)},
		{"cycle", graph.Cycle(24)},
		{"grid", graph.Grid(5, 5)},
		{"complete", graph.Complete(12)},
		{"gnp", graph.GNP(24, 0.15, rng)},
		{"powerlaw", graph.PreferentialAttachment(24, 2, rng)},
		{"tree", graph.CompleteBinaryTree(24)},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			e := runAdversarialTrace(t, tt.g0, 18, 7, 0)
			st := e.CheckStretch()
			if !st.Satisfied() {
				t.Fatalf("stretch %v > bound %v (pair %d,%d)",
					st.MaxStretch, st.Bound, st.WorstU, st.WorstV)
			}
		})
	}
}

func TestRandomChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		e := runAdversarialTrace(t, graph.GNP(16, 0.2, rng), 40, seed, 0.4)
		st := e.CheckStretch()
		if !st.Satisfied() {
			t.Fatalf("seed %d: stretch %v > bound %v", seed, st.MaxStretch, st.Bound)
		}
		deg := e.CheckDegrees()
		if deg.MaxRatio > 4 {
			t.Fatalf("seed %d: degree ratio %v > hard bound 4", seed, deg.MaxRatio)
		}
	}
}

// Max-degree-first deletion is the adversary most likely to stress the
// representative mechanism: it repeatedly kills the busiest simulators.
func TestMaxDegreeAdversary(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	e := NewEngine(graph.PreferentialAttachment(40, 3, rng))
	for i := 0; i < 30; i++ {
		phys := e.Physical()
		var victim NodeID
		best := -1
		for _, v := range e.LiveNodes() {
			if d := phys.Degree(v); d > best {
				best, victim = d, v
			}
		}
		if best < 0 {
			break
		}
		if err := e.Delete(victim); err != nil {
			t.Fatalf("delete %d: %v", victim, err)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	st := e.CheckStretch()
	if !st.Satisfied() {
		t.Fatalf("stretch %v > bound %v", st.MaxStretch, st.Bound)
	}
}

// Determinism: identical traces produce identical physical networks.
func TestDeterministicReplay(t *testing.T) {
	build := func() *graph.Graph {
		rng := rand.New(rand.NewSource(77))
		return graph.GNP(20, 0.2, rng)
	}
	trace := []NodeID{3, 11, 0, 7, 15, 4}
	run := func() *graph.Graph {
		e := NewEngine(build())
		for _, v := range trace {
			if err := e.Delete(v); err != nil {
				t.Fatalf("delete %d: %v", v, err)
			}
		}
		return e.Physical()
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Fatal("identical traces produced different physical networks")
	}
}

// Property: for random connected graphs and random deletion orders, all
// invariants hold and the stretch bound is respected at every prefix.
func TestQuickEngineInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 4
		e := NewEngine(graph.GNP(n, 0.3, rng))
		kills := rng.Intn(n-1) + 1
		for i := 0; i < kills; i++ {
			live := e.LiveNodes()
			if len(live) == 0 {
				break
			}
			if err := e.Delete(live[rng.Intn(len(live))]); err != nil {
				return false
			}
			if err := e.CheckInvariants(); err != nil {
				return false
			}
		}
		return e.CheckStretch().Satisfied()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The star lower-bound scenario of Theorem 2: after the hub dies, the
// Forgiving Graph realizes a constant degree factor α with β ≤ log2 n,
// the claimed optimal tradeoff region.
//
// Note on α: Theorem 1.1 states α ≤ 3, but the literal Algorithm A.9
// realizes 4 on spine helpers (the leaf's parent edge plus the helper's
// three edges can reach four distinct processors — first seen at n=16,
// where haft(15) has three spine joiners). We assert the provable hard
// bound 4 and separately record how rarely 3 is exceeded; see DESIGN.md.
func TestLowerBoundTradeoffRealized(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64, 129} {
		e := NewEngine(graph.Star(n))
		if err := e.Delete(0); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		deg := e.CheckDegrees()
		if deg.MaxRatio > 4 {
			t.Fatalf("n=%d: alpha=%v > 4", n, deg.MaxRatio)
		}
		if n <= 10 && deg.MaxRatio > 3 {
			t.Fatalf("n=%d: alpha=%v > 3 (small stars have no spine helpers)", n, deg.MaxRatio)
		}
		st := e.CheckStretch()
		if !st.Satisfied() {
			t.Fatalf("n=%d: beta=%v > %v", n, st.MaxStretch, st.Bound)
		}
	}
}

// Quantify the 3-vs-4 nuance: across a heavy random trace, the fraction
// of live processors ever exceeding ratio 3 must stay small (the paper's
// stated constant is the common case; 4 is the worst case).
func TestDegreeRatioMostlyWithin3(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	e := NewEngine(graph.GNP(40, 0.12, rng))
	over3, checks := 0, 0
	for i := 0; i < 25; i++ {
		live := e.LiveNodes()
		if len(live) < 2 {
			break
		}
		if err := e.Delete(live[rng.Intn(len(live))]); err != nil {
			t.Fatal(err)
		}
		rep := e.CheckDegrees()
		over3 += rep.Over3
		checks += len(e.LiveNodes())
		if rep.MaxRatio > 4 {
			t.Fatalf("step %d: ratio %v > 4", i, rep.MaxRatio)
		}
	}
	if checks == 0 {
		t.Fatal("no checks performed")
	}
	if frac := float64(over3) / float64(checks); frac > 0.05 {
		t.Fatalf("%.1f%% of node-steps exceeded ratio 3; expected rare", 100*frac)
	}
}
