package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/haft"
)

// RenderRTs draws every live Reconstruction Tree as ASCII art, one per
// paragraph, showing each virtual node's kind, slot, simulating
// processor, and (for helpers) stored shape fields and representative —
// the Figure 6 view of the engine's state. Intended for the hafttool
// demos and debugging.
func (e *Engine) RenderRTs() string {
	roots := e.RTRoots()
	sort.Slice(roots, func(i, j int) bool {
		a, _ := leftmostLeafSlot(roots[i])
		b, _ := leftmostLeafSlot(roots[j])
		return a.less(b)
	})
	label := func(n *haft.Node) string {
		s := slotOf(n)
		if n.IsLeaf {
			return fmt.Sprintf("L%v@%d", s, s.Owner)
		}
		return fmt.Sprintf("H%v@%d  [h=%d leaves=%d rep=L%v]",
			s, s.Owner, n.Height, n.LeafCount, slotOf(repOf(n)))
	}
	var b strings.Builder
	for i, r := range roots {
		fmt.Fprintf(&b, "RT %d: %d leaves, depth %d\n", i+1, haft.CountLeaves(r), haft.Depth(r))
		b.WriteString(haft.Render(r, label))
		if i < len(roots)-1 {
			b.WriteByte('\n')
		}
	}
	if len(roots) == 0 {
		b.WriteString("(no reconstruction trees: no deletions yet)\n")
	}
	return b.String()
}
