package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestRenderRTsEmpty(t *testing.T) {
	e := NewEngine(graph.Path(3))
	if out := e.RenderRTs(); !strings.Contains(out, "no reconstruction trees") {
		t.Fatalf("empty render = %q", out)
	}
}

func TestRenderRTsShowsStructure(t *testing.T) {
	e := healthyEngine(t) // star(9) with hub deleted
	out := e.RenderRTs()
	for _, want := range []string{
		"RT 1: 8 leaves, depth 3",
		"L(1,0)@1", // a leaf avatar with its simulator
		"rep=L",    // helper representatives
		"leaves=8", // the root's stored count
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Two separate RTs render as two paragraphs.
	e2 := NewEngine(graph.New())
	_ = e2
	g := graph.New()
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(10, 11)
	g.AddEdge(10, 12)
	e3 := NewEngine(g)
	if err := e3.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := e3.Delete(10); err != nil {
		t.Fatal(err)
	}
	out3 := e3.RenderRTs()
	if !strings.Contains(out3, "RT 1:") || !strings.Contains(out3, "RT 2:") {
		t.Fatalf("expected two RTs:\n%s", out3)
	}
}

// BenchmarkLargeScale exercises production-scale repairs: a 65k-leaf
// Reconstruction Tree followed by incremental deletions inside it.
func BenchmarkLargeScale(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine(graph.Star(1 << 16))
		if err := e.Delete(0); err != nil {
			b.Fatal(err)
		}
		for v := NodeID(1); v <= 64; v++ {
			if err := e.Delete(v); err != nil {
				b.Fatal(err)
			}
		}
	}
}
