package core

// RepairStats describes the work done by a single deletion repair.
type RepairStats struct {
	// RemovedNodes is how many virtual nodes vanished with the deleted
	// processor (its leaf avatars plus the helpers it simulated).
	RemovedNodes int
	// Components is the number of pieces handed to the merge: RT
	// fragments plus fresh leaf avatars of surviving direct neighbors.
	Components int
	// NewHelpers counts helper nodes created by the representative
	// mechanism during this repair.
	NewHelpers int
	// DiscardedHelpers counts helper nodes retired by Strip ("marked
	// red" in the paper).
	DiscardedHelpers int
	// RTLeaves is the leaf count of the Reconstruction Tree produced by
	// the repair (0 if the deletion left nothing to merge).
	RTLeaves int
	// RTDepth is the height of that RT; by Lemma 1 it is ⌈log₂
	// RTLeaves⌉.
	RTDepth int
}

// BatchRepairStats aggregates the repairs of one DeleteBatch call.
type BatchRepairStats struct {
	// Batch is the number of deletions applied.
	Batch int
	// RemovedNodes, Components, NewHelpers and DiscardedHelpers sum the
	// corresponding RepairStats fields over the batch's repairs.
	RemovedNodes     int
	Components       int
	NewHelpers       int
	DiscardedHelpers int
}

// Stats accumulates operation counts over an engine's lifetime.
type Stats struct {
	Insertions      int
	Deletions       int
	Repairs         int
	TotalNewHelpers int
	TotalDiscarded  int
}
