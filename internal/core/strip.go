package core

import (
	"repro/internal/haft"
)

// Efficient strip (the paper's Algorithm A.5 strategy).
//
// haft.Strip decides perfection structurally, visiting every node of a
// fragment — O(fragment) work per repair. The paper instead patches
// children counts along the paths from each cut to the fragment root
// (the Breakflag logic) so the strip only descends into *damaged* nodes
// (ancestors of cuts, whose subtrees lost something) and the original
// spine joiners (never perfect to begin with). Everything else is
// decided from stored fields in O(1).
//
// stripFast implements that: given the set of damaged nodes, a node is
// a primary root iff it is undamaged and its stored fields say perfect
// (undamaged ⇒ subtree intact ⇒ stored fields truthful). Visited
// non-primary nodes are exactly the red set. Work per repair is
// O(cuts · height + primary roots) instead of O(fragment size); the
// engine uses it by default and tests cross-check it against the
// structural reference on identical traces.

// storedPerfect reports perfection from stored fields, valid only for
// undamaged nodes.
func storedPerfect(n *haft.Node) bool {
	if n.IsLeaf {
		return true
	}
	return n.LeafCount == 1<<uint(n.Height)
}

// stripFast detaches the maximal intact perfect subtrees of the
// fragment rooted at root, returning them in left-to-right order along
// with the discarded (red) internal nodes — the same contract and the
// same results as haft.Strip, in sublinear time.
func stripFast(root *haft.Node, damaged map[*haft.Node]struct{}) (roots, discarded []*haft.Node) {
	var walk func(n *haft.Node)
	walk = func(n *haft.Node) {
		if n == nil {
			return
		}
		if _, isDamaged := damaged[n]; !isDamaged && storedPerfect(n) {
			roots = append(roots, n)
			return
		}
		discarded = append(discarded, n)
		walk(n.Left)
		walk(n.Right)
	}
	walk(root)
	for _, r := range roots {
		haft.Detach(r)
	}
	for _, d := range discarded {
		d.Parent = nil
		d.Left = nil
		d.Right = nil
	}
	return roots, discarded
}

// markDamaged walks from each seed (a survivor that lost a child) to
// its fragment root, adding every node on the way to the damaged set.
// Walks stop early at nodes already marked, so total work is bounded by
// the union of the paths.
func markDamaged(seeds []*haft.Node) map[*haft.Node]struct{} {
	damaged := make(map[*haft.Node]struct{})
	for _, s := range seeds {
		for n := s; n != nil; n = n.Parent {
			if _, done := damaged[n]; done {
				break
			}
			damaged[n] = struct{}{}
		}
	}
	return damaged
}
