package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// The efficient strip must be observationally identical to the
// structural reference: same physical networks, same partitions, same
// repair statistics, on identical traces.
func TestStripFastMatchesStructural(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g0 := graph.PreferentialAttachment(28, 3, rng)
		fast := NewEngine(g0)
		slow := NewEngine(g0)
		slow.SetStructuralStrip(true)
		order := rng.Perm(28)
		for step, vi := range order[:24] {
			v := NodeID(vi)
			if err := fast.Delete(v); err != nil {
				t.Fatalf("seed %d step %d: fast: %v", seed, step, err)
			}
			if err := slow.Delete(v); err != nil {
				t.Fatalf("seed %d step %d: slow: %v", seed, step, err)
			}
			if fast.LastRepair() != slow.LastRepair() {
				t.Fatalf("seed %d step %d: repair stats diverge\nfast %+v\nslow %+v",
					seed, step, fast.LastRepair(), slow.LastRepair())
			}
			if !fast.Physical().Equal(slow.Physical()) {
				t.Fatalf("seed %d step %d: physical networks diverge", seed, step)
			}
			if err := fast.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d: fast invariants: %v", seed, step, err)
			}
		}
	}
}

// Deleting a single low-degree node out of a huge RT must not touch the
// whole tree: the fast strip discards only the cut path, keeping the
// repair's component and helper churn logarithmic.
func TestStripFastLocality(t *testing.T) {
	n := 1 << 12
	e := NewEngine(graph.Star(n))
	if err := e.Delete(0); err != nil {
		t.Fatal(err)
	}
	// The hub repair built one RT over n-1 leaves. Now delete one leaf
	// processor: it owns one leaf avatar and at most one helper, so the
	// RT shatters into a handful of fragments.
	if err := e.Delete(1); err != nil {
		t.Fatal(err)
	}
	rs := e.LastRepair()
	if rs.Components > 6 {
		t.Fatalf("components = %d, want a handful", rs.Components)
	}
	// Red discards are bounded by the cut paths: O(log n), not O(n).
	if rs.DiscardedHelpers > 3*12 {
		t.Fatalf("discarded %d helpers, want O(log n)", rs.DiscardedHelpers)
	}
	if rs.NewHelpers > 3*12+2 {
		t.Fatalf("created %d helpers, want O(log n)", rs.NewHelpers)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStripFastVsStructural(b *testing.B) {
	// One big Reconstruction Tree is built per batch and consumed by
	// incremental deletions, so the timed loop measures only repairs.
	const n = 1 << 12
	run := func(b *testing.B, structural bool) {
		b.ReportAllocs()
		var e *Engine
		next := NodeID(n) // exhausted marker
		for i := 0; i < b.N; i++ {
			if next > n/2 {
				b.StopTimer()
				e = NewEngine(graph.Star(n))
				e.SetStructuralStrip(structural)
				if err := e.Delete(0); err != nil {
					b.Fatal(err)
				}
				next = 1
				b.StartTimer()
			}
			if err := e.Delete(next); err != nil {
				b.Fatal(err)
			}
			next++
		}
	}
	b.Run("fast", func(b *testing.B) { run(b, false) })
	b.Run("structural", func(b *testing.B) { run(b, true) })
}
