// Package core implements the Forgiving Graph of Hayes, Saia and Trehan
// (PODC 2009): a self-healing distributed data structure that withstands
// adversarial node insertions and deletions while guaranteeing that
//
//   - no node's degree grows by more than a small multiplicative factor
//     over its degree in G′, the insertions-only graph (Theorem 1.1);
//   - no pairwise distance grows by more than a log₂(n) multiplicative
//     factor over its distance in G′ (Theorem 1.2).
//
// The Engine in this package is the reference implementation: it applies
// the paper's virtual-graph semantics atomically per deletion. The
// message-level protocol of the paper's Appendix A lives in
// internal/dist and is cross-checked against this engine.
//
// # Virtual graph model
//
// Alongside the insertions-only graph G′ the engine maintains a virtual
// graph whose vertices are (a) the live processors, (b) one leaf avatar
// L(v,x) for every G′-edge (v,x) with v alive and x deleted, and (c)
// helper nodes H(v,x), each simulated by processor v and keyed by the
// same edge slots (at most one per slot, Lemma 3.1). Every deleted
// region of the network is spanned by a Reconstruction Tree (RT): a
// half-full tree (package haft) whose leaves are avatars and whose
// internal nodes are helpers. The physical network returned by Physical
// is the homomorphic image of the virtual graph: each avatar and helper
// maps to the processor that simulates it; self-loops and parallel edges
// collapse.
package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/haft"
)

// NodeID identifies a processor. It is shared with package graph.
type NodeID = graph.NodeID

// Slot identifies a per-edge avatar: the G′-edge (Owner, Other) as seen
// from Owner's side. Leaf avatar L(v,x) and helper H(v,x) both live in
// slot {v, x}; at most one of each exists at any time.
type Slot struct {
	Owner NodeID // the processor simulating this avatar
	Other NodeID // the other endpoint of the G′ edge
}

func (s Slot) String() string { return fmt.Sprintf("(%d,%d)", s.Owner, s.Other) }

// less orders slots lexicographically, for deterministic tie-breaking.
func (s Slot) less(t Slot) bool {
	if s.Owner != t.Owner {
		return s.Owner < t.Owner
	}
	return s.Other < t.Other
}

// vnode is the payload attached to every tree node owned by the engine.
type vnode struct {
	slot Slot
	// rep is the representative: the unique leaf in this node's subtree
	// that simulates no helper located within that subtree. It is
	// meaningful for helper (internal) nodes; for leaves the node is
	// its own representative. Set at creation and valid for the
	// helper's lifetime (a helper only survives while its entire
	// subtree is intact).
	rep *haft.Node
}

// payload extracts the engine payload of a tree node.
func payload(n *haft.Node) *vnode {
	vn, ok := n.Payload.(*vnode)
	if !ok {
		panic(fmt.Sprintf("core: tree node with foreign payload %T", n.Payload))
	}
	return vn
}

// procOf returns the processor simulating tree node n.
func procOf(n *haft.Node) NodeID { return payload(n).slot.Owner }

// slotOf returns the edge slot of tree node n.
func slotOf(n *haft.Node) Slot { return payload(n).slot }

// repOf returns the representative leaf of the subtree rooted at n.
func repOf(n *haft.Node) *haft.Node {
	if n.IsLeaf {
		return n
	}
	return payload(n).rep
}
