package dist

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// Allocation pins for the open-loop engine's hot path. The soak and
// benchmark campaigns spend most wall-clock ticking a quiescent or
// near-quiescent network; a single stray allocation per tick turns
// into GC pressure at n = 10⁶. TestZeroAllocTick pins the steady
// state at exactly zero; BenchmarkTickSteadyState measures the loaded
// path (one churn operation in flight at a time) and is gated in CI
// on ns, messages, and allocations like the other benchmarks.

// steadyChurnedSim builds a powerlaw network, runs real churn through
// the async engine so the steady state carries Reconstruction Trees
// and recycled scratch, and drains it to quiescence.
func steadyChurnedSim(tb testing.TB, n, churn int) *Simulation {
	tb.Helper()
	rng := rand.New(rand.NewSource(4))
	s := NewSimulation(graph.PreferentialAttachment(n, 3, rng))
	var ops []Op
	for _, v := range pickBatch(s.LiveNodes(), rng, churn) {
		ops = append(ops, Op{Kind: OpDelete, V: v})
	}
	if err := s.Submit(ops...); err != nil {
		tb.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		tb.Fatal(err)
	}
	for _, ev := range s.Poll() {
		if ev.Kind == EventOpRejected {
			tb.Fatalf("churn op rejected: %v", ev.Err)
		}
	}
	return s
}

// TestZeroAllocTick pins the quiescent steady state: once the engine
// has drained, a Tick (transport pulse, completion drain, admission
// sweep, audit hooks, certificate sweep guard) plus an empty event
// drain must not allocate at all.
func TestZeroAllocTick(t *testing.T) {
	s := steadyChurnedSim(t, 256, 24)
	if !s.Idle() {
		t.Fatal("engine not idle after drain")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if s.Tick() {
			t.Fatal("engine reported work while quiescent")
		}
		if evs := s.Poll(); len(evs) != 0 {
			t.Fatalf("events on a quiescent tick: %v", evs)
		}
	})
	if allocs != 0 {
		t.Fatalf("quiescent Tick allocates %.1f times per op, want 0", allocs)
	}
}

// BenchmarkTickSteadyState is the loaded per-tick cost on a
// powerlaw-1024 network: an open-loop trickle keeps exactly one churn
// operation (alternating delete and size-restoring insert) in the
// engine at all times, so every iteration is one Tick of live repair
// traffic plus its event drain. Messages and allocations per tick are
// the gated regression metrics; rounds are the iterations themselves.
func BenchmarkTickSteadyState(b *testing.B) {
	s := steadyChurnedSim(b, 1024, 32)
	rng := rand.New(rand.NewSource(11))
	nextID := NodeID(1 << 20)
	deleteNext := true
	var msgs float64
	submit := func() {
		live := s.LiveNodes()
		if deleteNext {
			v := live[rng.Intn(len(live))]
			if err := s.Submit(Op{Kind: OpDelete, V: v}); err != nil {
				b.Fatal(err)
			}
		} else {
			v := nextID
			nextID++
			nbr := live[rng.Intn(len(live))]
			if err := s.Submit(Op{Kind: OpInsert, V: v, Nbrs: []NodeID{nbr}}); err != nil {
				b.Fatal(err)
			}
		}
		deleteNext = !deleteNext
	}
	before := s.net.Stats().Messages
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Idle() {
			submit()
		}
		s.Tick()
		for _, ev := range s.Poll() {
			if ev.Kind == EventOpRejected {
				b.Fatalf("rejected: %v", ev.Err)
			}
		}
	}
	b.StopTimer()
	msgs = float64(s.net.Stats().Messages - before)
	b.ReportMetric(msgs/float64(b.N), "msgs/tick")
	if err := s.Drain(); err != nil {
		b.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		b.Fatal(err)
	}
}
