package dist

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// FuzzAsyncChurn drives the open-loop engine with an arbitrary
// byte-encoded submit/tick interleaving — deletions, insertions, and
// variable tick gaps, submitted while repairs are in flight — and
// cross-checks the drained result against the serialized blocking twin
// (ops applied one at a time in submission order) and the core
// reference. Invalid operations are allowed in the schedule: the
// engine must reject exactly the ops the blocking twin errors on, and
// the healed graphs must stay bit-identical. The first seed byte picks
// a per-edge bandwidth cap, so congested interleavings — where far
// more traffic is mid-flight per submission — are fuzzed too.
func FuzzAsyncChurn(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x02, 0x81, 0x05, 0x00})
	f.Add([]byte{0x01, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05})
	f.Add([]byte{0x03, 0x90, 0x91, 0x92, 0x00, 0x93, 0x01})
	f.Add([]byte{0x00, 0x05, 0x05, 0x45, 0xc5})       // double deletes + inserts
	f.Add([]byte{0x02, 0x81, 0x82, 0x83, 0x00, 0x01}) // inserts then deletes under B=2
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		if len(data) > 64 {
			data = data[:64]
		}
		bandwidth := int(data[0] & 0x03) // 0 = unlimited, else 1..3 words/round
		data = data[1:]

		g0 := graph.Grid(3, 4) // 12 nodes, ids 0..11
		async := NewSimulation(g0)
		async.SetBandwidth(bandwidth)
		blocking := NewSimulation(g0)
		blocking.SetBandwidth(bandwidth)
		ref := core.NewEngine(g0)

		// The schedule is decoded against the BLOCKING twin's state (the
		// serialized replay defines each op's meaning), so both replicas
		// see the same operation sequence regardless of what the async
		// engine has or hasn't finished yet.
		nextID := NodeID(100)
		submitted := 0
		wantRejected := make(map[NodeID]bool)
		for _, b := range data {
			live := blocking.LiveNodes()
			if len(live) == 0 {
				break
			}
			var op Op
			if b&0x80 != 0 {
				v := nextID
				nextID++
				nbrs := []NodeID{live[int(b&0x3f)%len(live)]}
				if b&0x40 != 0 {
					other := live[int(b>>3&0x0f)%len(live)]
					if other != nbrs[0] {
						nbrs = append(nbrs, other)
					}
				}
				op = Op{Kind: OpInsert, V: v, Nbrs: nbrs}
				if err := blocking.Insert(v, nbrs); err != nil {
					t.Fatalf("blocking insert: %v", err)
				}
				if err := ref.Insert(v, nbrs); err != nil {
					t.Fatalf("core insert: %v", err)
				}
			} else if b&0x40 != 0 && len(blocking.LiveNodes()) < 12 {
				// An INVALID op: delete an id that is already dead (or
				// never existed). The twin rejects it; the engine must
				// reject it at the same serialization point.
				victim := NodeID(int(b&0x3f) % 12)
				if blocking.Alive(victim) {
					victim = NodeID(99) // never existed
				}
				op = Op{Kind: OpDelete, V: victim}
				if err := blocking.Delete(victim); err == nil {
					t.Fatalf("twin accepted invalid delete %d", victim)
				}
				wantRejected[victim] = true
			} else {
				v := live[int(b&0x3f)%len(live)]
				op = Op{Kind: OpDelete, V: v}
				if err := blocking.Delete(v); err != nil {
					t.Fatalf("blocking delete %d: %v", v, err)
				}
				if err := ref.Delete(v); err != nil {
					t.Fatalf("core delete %d: %v", v, err)
				}
			}
			if err := async.Submit(op); err != nil {
				t.Fatalf("submit %v: %v", op, err)
			}
			submitted++
			for r := 0; r < int(b>>4&0x03); r++ {
				async.Tick()
			}
		}
		if err := async.Drain(); err != nil {
			t.Fatalf("drain: %v", err)
		}

		events := async.Poll()
		completed, rejections, rejected := 0, 0, make(map[NodeID]bool)
		for _, ev := range events {
			switch ev.Kind {
			case EventRepairDone, EventInsertApplied:
				completed++
			case EventOpRejected:
				rejections++
				rejected[ev.V] = true
			}
		}
		if completed+rejections != submitted {
			t.Fatalf("%d submitted, %d completed + %d rejected", submitted, completed, rejections)
		}
		for v := range wantRejected {
			if !rejected[v] {
				t.Fatalf("invalid op on %d not rejected (rejected: %v)", v, rejected)
			}
		}
		for v := range rejected {
			if !wantRejected[v] {
				t.Fatalf("valid op on %d rejected", v)
			}
		}

		if !async.Physical().Equal(blocking.Physical()) {
			t.Fatal("async healed graph diverges from the serialized blocking replay")
		}
		if !async.Physical().Equal(ref.Physical()) {
			t.Fatal("async healed graph diverges from core")
		}
		if !async.GPrime().Equal(blocking.GPrime()) {
			t.Fatal("G' diverged")
		}
		if err := async.Verify(); err != nil {
			t.Fatal(err)
		}
	})
}
