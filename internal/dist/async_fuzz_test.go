package dist

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// FuzzAsyncChurn drives the open-loop engine with an arbitrary
// byte-encoded submit/tick interleaving — deletions, insertions, and
// variable tick gaps, submitted while repairs are in flight — and
// cross-checks the drained result against the serialized blocking twin
// (ops applied one at a time in submission order) and the core
// reference. Invalid operations are allowed in the schedule: the
// engine must reject exactly the ops the blocking twin errors on, and
// the healed graphs must stay bit-identical. The first seed byte picks
// a per-edge bandwidth cap, so congested interleavings — where far
// more traffic is mid-flight per submission — are fuzzed too, and a
// hold window for a fourth engine with the coalescing admission queue
// on: its drained graph must match the blocking replay of its
// EFFECTIVE sequence (submission order minus the insert/delete pairs
// it reports cancelled).
func FuzzAsyncChurn(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x02, 0x81, 0x05, 0x00})
	f.Add([]byte{0x01, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05})
	f.Add([]byte{0x03, 0x90, 0x91, 0x92, 0x00, 0x93, 0x01})
	f.Add([]byte{0x00, 0x05, 0x05, 0x45, 0xc5})       // double deletes + inserts
	f.Add([]byte{0x02, 0x81, 0x82, 0x83, 0x00, 0x01}) // inserts then deletes under B=2
	// Coalescing-targeted seeds (window bits set in byte 0):
	f.Add([]byte{0x1c, 0x02, 0x81, 0x0b})             // cancel pair racing the first repair
	f.Add([]byte{0x10, 0x00, 0x01, 0x02, 0x03})       // adjacent deletes: merge chains
	f.Add([]byte{0x08, 0x81, 0x05, 0x06, 0x85, 0x0c}) // merged region conflicting with a pending insert
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		if len(data) > 64 {
			data = data[:64]
		}
		bandwidth := int(data[0] & 0x03)   // 0 = unlimited, else 1..3 words/round
		window := int(data[0] >> 2 & 0x07) // coalescing twin's hold window in ticks
		data = data[1:]

		g0 := graph.Grid(3, 4) // 12 nodes, ids 0..11
		async := NewSimulation(g0)
		async.SetBandwidth(bandwidth)
		blocking := NewSimulation(g0)
		blocking.SetBandwidth(bandwidth)
		ref := core.NewEngine(g0)
		coal := NewSimulation(g0)
		coal.SetBandwidth(bandwidth)
		coal.SetCoalescing(CoalesceConfig{Window: window})

		// The schedule is decoded against the BLOCKING twin's state (the
		// serialized replay defines each op's meaning), so both replicas
		// see the same operation sequence regardless of what the async
		// engine has or hasn't finished yet.
		nextID := NodeID(100)
		submitted := 0
		wantRejected := make(map[NodeID]bool)
		var ops []Op
		var opInvalid []bool
		for _, b := range data {
			live := blocking.LiveNodes()
			if len(live) == 0 {
				break
			}
			var op Op
			if b&0x80 != 0 {
				v := nextID
				nextID++
				nbrs := []NodeID{live[int(b&0x3f)%len(live)]}
				if b&0x40 != 0 {
					other := live[int(b>>3&0x0f)%len(live)]
					if other != nbrs[0] {
						nbrs = append(nbrs, other)
					}
				}
				op = Op{Kind: OpInsert, V: v, Nbrs: nbrs}
				if err := blocking.Insert(v, nbrs); err != nil {
					t.Fatalf("blocking insert: %v", err)
				}
				if err := ref.Insert(v, nbrs); err != nil {
					t.Fatalf("core insert: %v", err)
				}
			} else if b&0x40 != 0 && len(blocking.LiveNodes()) < 12 {
				// An INVALID op: delete an id that is already dead (or
				// never existed). The twin rejects it; the engine must
				// reject it at the same serialization point.
				victim := NodeID(int(b&0x3f) % 12)
				if blocking.Alive(victim) {
					victim = NodeID(99) // never existed
				}
				op = Op{Kind: OpDelete, V: victim}
				if err := blocking.Delete(victim); err == nil {
					t.Fatalf("twin accepted invalid delete %d", victim)
				}
				wantRejected[victim] = true
			} else {
				v := live[int(b&0x3f)%len(live)]
				op = Op{Kind: OpDelete, V: v}
				if err := blocking.Delete(v); err != nil {
					t.Fatalf("blocking delete %d: %v", v, err)
				}
				if err := ref.Delete(v); err != nil {
					t.Fatalf("core delete %d: %v", v, err)
				}
			}
			if err := async.Submit(op); err != nil {
				t.Fatalf("submit %v: %v", op, err)
			}
			if err := coal.Submit(op); err != nil {
				t.Fatalf("coalesced submit %v: %v", op, err)
			}
			ops = append(ops, op)
			opInvalid = append(opInvalid, wantRejected[op.V] && op.Kind == OpDelete)
			submitted++
			for r := 0; r < int(b>>4&0x03); r++ {
				async.Tick()
				coal.Tick()
			}
		}
		if err := async.Drain(); err != nil {
			t.Fatalf("drain: %v", err)
		}

		events := async.Poll()
		completed, rejections, rejected := 0, 0, make(map[NodeID]bool)
		for _, ev := range events {
			switch ev.Kind {
			case EventRepairDone, EventInsertApplied:
				completed++
			case EventOpRejected:
				rejections++
				rejected[ev.V] = true
			}
		}
		if completed+rejections != submitted {
			t.Fatalf("%d submitted, %d completed + %d rejected", submitted, completed, rejections)
		}
		for v := range wantRejected {
			if !rejected[v] {
				t.Fatalf("invalid op on %d not rejected (rejected: %v)", v, rejected)
			}
		}
		for v := range rejected {
			if !wantRejected[v] {
				t.Fatalf("valid op on %d rejected", v)
			}
		}

		if !async.Physical().Equal(blocking.Physical()) {
			t.Fatal("async healed graph diverges from the serialized blocking replay")
		}
		if !async.Physical().Equal(ref.Physical()) {
			t.Fatal("async healed graph diverges from core")
		}
		if !async.GPrime().Equal(blocking.GPrime()) {
			t.Fatal("G' diverged")
		}
		if err := async.Verify(); err != nil {
			t.Fatal(err)
		}

		// Coalescing twin: exact event accounting, then bit-identity with
		// the blocking replay of the effective sequence (the cancelled
		// pairs removed; every other op keeps its serialized verdict).
		if err := coal.Drain(); err != nil {
			t.Fatalf("coalesced drain: %v", err)
		}
		cancelled := make(map[int]bool)
		coalCompleted, coalRejections := 0, 0
		coalRejected := make(map[NodeID]bool)
		for _, ev := range coal.Poll() {
			switch ev.Kind {
			case EventRepairDone, EventInsertApplied:
				coalCompleted++
			case EventOpCancelled:
				if cancelled[ev.Seq] {
					t.Fatalf("duplicate cancel event for seq %d", ev.Seq)
				}
				cancelled[ev.Seq] = true
			case EventOpRejected:
				coalRejections++
				coalRejected[ev.V] = true
			}
		}
		if coalCompleted+coalRejections+len(cancelled) != submitted {
			t.Fatalf("coalesced: %d submitted != %d completed + %d rejected + %d cancelled",
				submitted, coalCompleted, coalRejections, len(cancelled))
		}
		for v := range coalRejected {
			if !wantRejected[v] {
				t.Fatalf("coalescing changed a verdict: valid op on %d rejected", v)
			}
		}
		eff := NewSimulation(g0)
		for i, op := range ops {
			if cancelled[i+1] { // Seq counts from 1
				if opInvalid[i] {
					t.Fatalf("invalid op %v reported cancelled", op)
				}
				continue
			}
			var err error
			switch op.Kind {
			case OpInsert:
				err = eff.Insert(op.V, op.Nbrs)
			case OpDelete:
				err = eff.Delete(op.V)
			}
			if (err != nil) != opInvalid[i] {
				t.Fatalf("effective replay op %d (%v): err=%v, want invalid=%v", i+1, op, err, opInvalid[i])
			}
		}
		if !coal.Physical().Equal(eff.Physical()) {
			t.Fatal("coalesced healed graph diverges from the effective-sequence replay")
		}
		if !coal.GPrime().Equal(eff.GPrime()) {
			t.Fatal("coalesced G' diverged")
		}
		if err := coal.Verify(); err != nil {
			t.Fatalf("coalesced verify: %v", err)
		}
	})
}
