package dist

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// Differential equivalence for the open-loop engine: any interleaved
// Submit/Tick schedule must heal bit-identically to the serialized
// blocking replay (each operation applied one at a time, in submission
// order) and to the reference core engine — across the five topology
// families and under finite bandwidth caps.

// asyncOp is one scheduled operation: the op plus how many rounds the
// submitter waits before the next submission (0 = same round).
type asyncOp struct {
	op    Op
	delay int
}

// genSchedule derives a valid random schedule by running the ops on a
// scratch blocking twin (so deletes target live nodes and inserts
// attach to live neighbors), returning the schedule for the async
// replay.
func genSchedule(g0 *graph.Graph, ops int, seed int64) []asyncOp {
	twin := NewSimulation(g0)
	rng := rand.New(rand.NewSource(seed))
	nextID := NodeID(40_000)
	var schedule []asyncOp
	for i := 0; i < ops; i++ {
		live := twin.LiveNodes()
		if len(live) == 0 {
			break
		}
		var op Op
		if rng.Float64() < 0.3 {
			v := nextID
			nextID++
			k := 1 + rng.Intn(3)
			if k > len(live) {
				k = len(live)
			}
			var nbrs []NodeID
			for _, idx := range rng.Perm(len(live))[:k] {
				nbrs = append(nbrs, live[idx])
			}
			op = Op{Kind: OpInsert, V: v, Nbrs: nbrs}
			if err := twin.Insert(v, nbrs); err != nil {
				panic(err)
			}
		} else {
			v := live[rng.Intn(len(live))]
			op = Op{Kind: OpDelete, V: v}
			if err := twin.Delete(v); err != nil {
				panic(err)
			}
		}
		schedule = append(schedule, asyncOp{op: op, delay: rng.Intn(4)})
	}
	return schedule
}

// replayAsync drives one schedule through the open-loop engine
// (submitting mid-flight, ticking between submissions) and through the
// serialized blocking replay plus the core reference, asserting
// bit-identical healed graphs.
func replayAsync(t *testing.T, g0 *graph.Graph, schedule []asyncOp, bandwidth int, parallel bool) {
	t.Helper()
	async := NewSimulation(g0)
	async.SetParallel(parallel)
	async.SetBandwidth(bandwidth)
	blocking := NewSimulation(g0)
	blocking.SetBandwidth(bandwidth)
	ref := core.NewEngine(g0)

	for _, so := range schedule {
		if err := async.Submit(so.op); err != nil {
			t.Fatalf("submit %v: %v", so.op, err)
		}
		for r := 0; r < so.delay; r++ {
			async.Tick()
		}
		switch so.op.Kind {
		case OpInsert:
			if err := blocking.Insert(so.op.V, so.op.Nbrs); err != nil {
				t.Fatalf("blocking insert %v: %v", so.op, err)
			}
			if err := ref.Insert(so.op.V, so.op.Nbrs); err != nil {
				t.Fatalf("core insert %v: %v", so.op, err)
			}
		case OpDelete:
			if err := blocking.Delete(so.op.V); err != nil {
				t.Fatalf("blocking delete %v: %v", so.op, err)
			}
			if err := ref.Delete(so.op.V); err != nil {
				t.Fatalf("core delete %v: %v", so.op, err)
			}
		}
	}
	if err := async.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Every submitted op must have completed — none rejected (the
	// schedule is valid by construction) — with one event each.
	events := async.Poll()
	repairs, inserts := 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case EventRepairDone:
			repairs++
		case EventInsertApplied:
			inserts++
		case EventOpRejected:
			t.Fatalf("valid op rejected: %v: %v", ev.Op, ev.Err)
		}
	}
	wantRepairs, wantInserts := 0, 0
	for _, so := range schedule {
		if so.op.Kind == OpDelete {
			wantRepairs++
		} else {
			wantInserts++
		}
	}
	if repairs != wantRepairs || inserts != wantInserts {
		t.Fatalf("events: %d repairs / %d inserts, want %d / %d", repairs, inserts, wantRepairs, wantInserts)
	}

	if !async.Physical().Equal(blocking.Physical()) {
		t.Fatal("async healed graph diverges from serialized blocking replay")
	}
	if !async.Physical().Equal(ref.Physical()) {
		t.Fatal("async healed graph diverges from core reference")
	}
	if !async.GPrime().Equal(blocking.GPrime()) {
		t.Fatal("G' diverged")
	}
	if err := async.Verify(); err != nil {
		t.Fatalf("async verify: %v", err)
	}
	if err := blocking.Verify(); err != nil {
		t.Fatalf("blocking verify: %v", err)
	}
}

func TestAsyncEquivalenceWithBlocking(t *testing.T) {
	topologies := []struct {
		name string
		gen  func(rng *rand.Rand) *graph.Graph
		ops  int
	}{
		{"star", func(*rand.Rand) *graph.Graph { return graph.Star(24) }, 26},
		{"path", func(*rand.Rand) *graph.Graph { return graph.Path(20) }, 22},
		{"grid", func(*rand.Rand) *graph.Graph { return graph.Grid(5, 5) }, 28},
		{"gnp", func(rng *rand.Rand) *graph.Graph { return graph.GNP(32, 0.15, rng) }, 32},
		{"powerlaw", func(rng *rand.Rand) *graph.Graph { return graph.PreferentialAttachment(28, 2, rng) }, 30},
	}
	for _, topo := range topologies {
		topo := topo
		t.Run(topo.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				g0 := topo.gen(rand.New(rand.NewSource(700 + seed)))
				schedule := genSchedule(g0, topo.ops, 31*seed+5)
				replayAsync(t, g0, schedule, 0, seed == 2)
			}
		})
	}
}

// TestAsyncEquivalenceUnderBandwidth repeats the differential check
// under finite per-edge caps: congestion stretches repairs across more
// rounds — so more operations land mid-flight — and the healed graph
// must still match the replay exactly.
func TestAsyncEquivalenceUnderBandwidth(t *testing.T) {
	for _, B := range []int{1, 3, 16} {
		B := B
		t.Run(fmt.Sprintf("B=%d", B), func(t *testing.T) {
			g0 := graph.PreferentialAttachment(28, 2, rand.New(rand.NewSource(910)))
			schedule := genSchedule(g0, 26, 17)
			replayAsync(t, g0, schedule, B, false)
		})
	}
}

// TestAsyncPipelinesDisjointRepairs is the point of the open-loop
// engine: two deletions with disjoint regions submitted back to back
// overlap, so draining both costs well under the sum of their
// individual repairs.
func TestAsyncPipelinesDisjointRepairs(t *testing.T) {
	const d = 8
	single := func() int {
		g, hubs := disjointStars(1, d)
		s := NewSimulation(g)
		if err := s.Delete(hubs[0]); err != nil {
			t.Fatal(err)
		}
		return s.LastRecovery().Rounds
	}()
	if single == 0 {
		t.Fatal("single hub repair reported zero rounds")
	}

	g, hubs := disjointStars(8, d)
	s := NewSimulation(g)
	var ops []Op
	for _, h := range hubs {
		ops = append(ops, Op{Kind: OpDelete, V: h})
	}
	if err := s.Submit(ops...); err != nil {
		t.Fatal(err)
	}
	if got := s.InFlight(); got != len(hubs) {
		t.Fatalf("submitted %d disjoint deletions, %d in flight: admission failed to overlap them", len(hubs), got)
	}
	rounds := 0
	for s.Tick() {
		rounds++
		if rounds > 100*single {
			t.Fatal("engine failed to drain")
		}
	}
	if rounds > 2*single {
		t.Errorf("8 disjoint async deletions took %d rounds, want <= 2x single (%d)", rounds, single)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncConflictingSerializesInOrder: two deletions whose regions
// collide must serialize in submission order — the second launches
// only after the first completes (leader handoff), and the healed
// graph matches applying them blocking in that same order, which here
// is DESCENDING id order (the opposite of DeleteBatch's canonical
// ascending order, proving the engine follows submission order, not
// id order).
func TestAsyncConflictingSerializesInOrder(t *testing.T) {
	build := func() *graph.Graph { return graph.Star(16) }
	s := NewSimulation(build())
	// Delete ray 5 first, then the hub 0: they share a region.
	if err := s.Submit(Op{Kind: OpDelete, V: 5}, Op{Kind: OpDelete, V: 0}); err != nil {
		t.Fatal(err)
	}
	if got := s.InFlight(); got != 1 {
		t.Fatalf("conflicting deletions launched together: %d in flight, want 1", got)
	}
	if got := s.PendingOps(); got != 1 {
		t.Fatalf("%d pending ops, want 1", got)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	evs := s.Poll()
	if len(evs) != 2 || evs[0].Kind != EventRepairDone || evs[1].Kind != EventRepairDone {
		t.Fatalf("events: %+v", evs)
	}
	if evs[0].V != 5 || evs[1].V != 0 {
		t.Fatalf("completion order %d, %d; want 5 then 0 (submission order)", evs[0].V, evs[1].V)
	}

	blocking := NewSimulation(build())
	if err := blocking.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := blocking.Delete(0); err != nil {
		t.Fatal(err)
	}
	if !s.Physical().Equal(blocking.Physical()) {
		t.Fatal("async healed graph diverges from submission-order blocking replay")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncRejections: state-dependent validation happens at each
// operation's serialization point and surfaces as OpRejected events
// carrying the blocking API's error.
func TestAsyncRejections(t *testing.T) {
	s := NewSimulation(graph.Star(8))
	ops := []Op{
		{Kind: OpDelete, V: 3},
		{Kind: OpDelete, V: 3},                        // double delete: rejected
		{Kind: OpInsert, V: 100, Nbrs: []NodeID{3}},   // neighbor 3 is dead by then
		{Kind: OpInsert, V: 101, Nbrs: []NodeID{1}},   // fine
		{Kind: OpDelete, V: 101},                      // deletes the new node
		{Kind: OpInsert, V: 1, Nbrs: []NodeID{2}},     // id reuse: rejected
		{Kind: OpDelete, V: 999},                      // never existed: rejected
		{Kind: OpInsert, V: 102, Nbrs: []NodeID{101}}, // neighbor dead by then
	}
	if err := s.Submit(ops...); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	rejected := make(map[NodeID]bool)
	for _, ev := range s.Poll() {
		if ev.Kind == EventOpRejected {
			if ev.Err == nil {
				t.Fatalf("rejection without error: %+v", ev)
			}
			rejected[ev.V] = true
		}
	}
	for _, v := range []NodeID{3, 100, 1, 999, 102} {
		if !rejected[v] {
			t.Errorf("op on %d not rejected; rejected set: %v", v, rejected)
		}
	}
	if len(rejected) != 5 {
		t.Errorf("%d rejections, want 5: %v", len(rejected), rejected)
	}

	// The mirror blocking replay agrees op by op.
	b := NewSimulation(graph.Star(8))
	if err := b.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(3); err == nil {
		t.Fatal("blocking replay accepted double delete")
	}
	if err := b.Insert(100, []NodeID{3}); err == nil {
		t.Fatal("blocking replay accepted insert on dead neighbor")
	}
	if err := b.Insert(101, []NodeID{1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(101); err != nil {
		t.Fatal(err)
	}
	if !s.Physical().Equal(b.Physical()) {
		t.Fatal("async diverges from blocking replay under rejections")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncInsertDeferredInDamagedRegion: an insert whose attachment
// point lies inside an in-flight repair's region waits for the region
// to heal; one attaching elsewhere applies immediately.
func TestAsyncInsertDeferredInDamagedRegion(t *testing.T) {
	g, hubs := disjointStars(2, 8)
	s := NewSimulation(g)
	other := hubs[1] + 1 // a ray of the second star: outside region(hubs[0])
	if err := s.Submit(Op{Kind: OpDelete, V: hubs[0]}); err != nil {
		t.Fatal(err)
	}
	if s.InFlight() != 1 {
		t.Fatal("repair not launched")
	}
	// Attach one insert inside the damaged region, one far away.
	ray := hubs[0] + 1
	if err := s.Submit(
		Op{Kind: OpInsert, V: 900, Nbrs: []NodeID{ray}},
		Op{Kind: OpInsert, V: 901, Nbrs: []NodeID{other}},
	); err != nil {
		t.Fatal(err)
	}
	if s.PendingOps() != 1 {
		t.Fatalf("%d pending ops, want 1 (the insert into the damaged region deferred, the other applied)", s.PendingOps())
	}
	if s.Alive(900) {
		t.Fatal("insert into damaged region applied mid-repair")
	}
	if !s.Alive(901) {
		t.Fatal("insert outside every region was deferred")
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if !s.Alive(900) {
		t.Fatal("deferred insert never applied")
	}
	// The deferred insert's event reports positive latency; events
	// arrive as repair-done, insert(901), insert(900).
	var sawDeferred bool
	for _, ev := range s.Poll() {
		if ev.Kind == EventInsertApplied && ev.V == 900 {
			sawDeferred = true
			if ev.Latency == 0 {
				t.Error("deferred insert reports zero latency")
			}
		}
	}
	if !sawDeferred {
		t.Fatal("no InsertApplied event for the deferred insert")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestBlockingCallsRequireIdleEngine: mixing undrained async work with
// the blocking API is a caller error, reported not deadlocked.
func TestBlockingCallsRequireIdleEngine(t *testing.T) {
	s := NewSimulation(graph.Star(16))
	if err := s.Submit(Op{Kind: OpDelete, V: 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(1); err == nil {
		t.Fatal("blocking Delete accepted while engine busy")
	}
	if err := s.Insert(50, []NodeID{1}); err == nil {
		t.Fatal("blocking Insert accepted while engine busy")
	}
	if err := s.DeleteBatch([]NodeID{1, 2}); err == nil {
		t.Fatal("blocking DeleteBatch accepted while engine busy")
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(1); err != nil {
		t.Fatalf("blocking Delete after drain: %v", err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncObserverStreams: an installed observer is the consumption
// path — it sees every event in order, the Poll buffer stays empty
// (stream-only consumers must not leak memory), and an observer may
// reenter Submit from a callback.
func TestAsyncObserverStreams(t *testing.T) {
	s := NewSimulation(graph.Star(12))
	var streamed []Event
	resubmitted := false
	s.SetObserver(func(ev Event) {
		streamed = append(streamed, ev)
		if ev.Kind == EventRepairDone && !resubmitted {
			resubmitted = true
			if err := s.Submit(Op{Kind: OpInsert, V: 201, Nbrs: []NodeID{6}}); err != nil {
				t.Errorf("reentrant submit: %v", err)
			}
		}
	})
	if err := s.Submit(Op{Kind: OpDelete, V: 4}, Op{Kind: OpInsert, V: 200, Nbrs: []NodeID{5}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if polled := s.Poll(); len(polled) != 0 {
		t.Fatalf("Poll delivered %d events despite an installed observer", len(polled))
	}
	// The insert's region is free of the repair's, so it applies during
	// Submit itself and its event streams first; the reentrant insert
	// follows its triggering RepairDone.
	want := []struct {
		kind EventKind
		v    NodeID
	}{{EventInsertApplied, 200}, {EventRepairDone, 4}, {EventInsertApplied, 201}}
	if len(streamed) != len(want) {
		t.Fatalf("observer saw %d events, want %d: %+v", len(streamed), len(want), streamed)
	}
	for i, w := range want {
		if streamed[i].Kind != w.kind || streamed[i].V != w.v {
			t.Fatalf("event %d: got kind=%d v=%d, want kind=%d v=%d", i, streamed[i].Kind, streamed[i].V, w.kind, w.v)
		}
	}
	if !s.Alive(201) {
		t.Fatal("reentrantly submitted insert never applied")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRoundBoundCached pins the satellite fix: the quiescence bound is
// cached and only recomputed when the node count or the narrowest
// capacity changes.
func TestRoundBoundCached(t *testing.T) {
	s := NewSimulation(graph.Star(16))
	b0 := s.roundBound()
	if s.boundDirty {
		t.Fatal("bound still dirty after computation")
	}
	if got := s.roundBound(); got != b0 {
		t.Fatalf("cached bound changed: %d -> %d", b0, got)
	}
	if err := s.Insert(100, []NodeID{1}); err != nil {
		t.Fatal(err)
	}
	if !s.boundDirty {
		t.Fatal("insert did not invalidate the cached bound")
	}
	s.roundBound()
	s.SetBandwidth(1)
	if !s.boundDirty {
		t.Fatal("a narrower capacity did not invalidate the cached bound")
	}
	if b1 := s.roundBound(); b1 <= b0 {
		t.Fatalf("bound under congestion slack %d <= uncapped bound %d", b1, b0)
	}
}
