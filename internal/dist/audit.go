// Self-stabilizing state audit. The repair protocol of this package is
// correct under the classical assumption that processor state is only
// ever what the protocol wrote; this file drops that assumption. Every
// audited processor runs a standing background pass (msgAuditTick, one
// armed timer per processor, re-armed first thing by its own handler)
// that re-derives its records' invariants from O(1)-word neighbor
// exchanges and repairs in place whatever disagrees — the same
// invariants the central Verify checks, verified in-band instead:
//
//   - Down-probes: a helper asks each child it lists to report its
//     audited fields (kind, height, leaf count, representative) and the
//     parent it records. Matching replies let the helper recompute its
//     own aggregates exactly as verify.go's checkRepresentatives does;
//     a child that answers "gone" twice marks that side suspect.
//   - Up-claims: a record asks the parent it stores to confirm the
//     link. A parent that denies (or is missing) twice proves the
//     stored parent dangling; the record clears it, and the true
//     parent's next down-probe re-adopts the orphan.
//   - Stale-state fingerprint: transient repair scratch (reps, parts,
//     strip waiters, claim marks, Breakflags) that survives several
//     passes bit-identically with zero protocol traffic in between
//     belongs to no live repair and is cleared wholesale.
//
// Every structural write is guarded by a confirm-twice rule: the same
// disagreement must be observed on two consecutive passes with the
// processor's non-audit message counter (aProtoSeen) unchanged in
// between. A live repair always moves messages, so anything it is
// about to fix invalidates the first observation; only genuinely
// corrupt — i.e. permanently silent — state survives to the second.
// This is what makes the layer safe to run mid-churn: it defers to the
// repair machinery (auditBusy, damaged records, busy replies) instead
// of racing it.
//
// The layer is silent in the Devismes sense: once the configuration is
// legal the audit keeps exchanging checksum probes but performs no
// writes — Stats.Probes grows, Stats.Repairs does not. All audit
// traffic is transport.ClassAudit and is paced through the ordinary
// outbox, so its clean-run overhead is measurable (AuditMessages) and
// CI-gated (BenchmarkAuditOverhead).
//
// Audit repairs deliberately do NOT go through logPhys: corruption is
// injected silently (a bit flip does not update the driver's
// incrementally maintained physical graph either), so a repair that
// restores the pre-corruption value restores agreement with the
// maintained graph as a side effect. Repairs do markTouched, so the
// incremental VerifyDelta revisits exactly the healed processors.
package dist

import (
	"fmt"
	"sort"

	"repro/internal/audit"
	"repro/internal/transport"
)

const (
	// auditStaleConfirm is how many consecutive passes a transient-state
	// fingerprint must survive unchanged — with no protocol traffic in
	// between — before it is declared stale and cleared.
	auditStaleConfirm = 3
	// auditSuspectConfirm is how many consecutive dangling verdicts a
	// probe target (or a claimed parent) must produce before the stored
	// pointer is treated as corrupt.
	auditSuspectConfirm = 2
)

// auditSideKey names one child side of one of this processor's helpers.
type auditSideKey struct {
	other NodeID
	side  int
}

// auditConfirm is one prior observation under a confirm-twice rule:
// what was observed, how many consecutive times, and the processor's
// non-audit message count at the last observation — the next
// observation only counts if that mark is unchanged.
type auditConfirm struct {
	what addr
	runs int
	mark int
}

// auditAgg stashes one helper's in-flight down-probe conversation: the
// per-side replies, folded into a recompute when both are in.
type auditAgg struct {
	have   [2]bool
	bad    bool
	height [2]int
	count  [2]int
	rep    [2]slot
}

// auditBusy reports whether this processor holds live repair state: the
// structural audit defers entirely while it does (probing records that
// a repair is about to rewrite would produce noise, not detection), and
// only the stale-state fingerprint machinery runs.
func (p *processor) auditBusy() bool {
	return len(p.reps) != 0 || len(p.parts) != 0 || len(p.stripWait) != 0 ||
		p.dying || p.claims != nil || p.claimEl != nil || p.batch != nil
}

func (p *processor) anyDamaged() bool {
	for _, h := range p.helpers {
		if h.damaged {
			return true
		}
	}
	return false
}

// onAuditTick runs one audit pass. The re-arm comes first — a live
// audited processor always holds exactly one armed tick, the invariant
// the driver's netQuiet counts against — and is aligned to the period
// grid of the transport's pulse counter, so on simnet all processors
// audit in the same round and the rounds in between are genuinely
// quiet.
func (p *processor) onAuditTick(n transport.Endpoint) {
	if !p.auditOn {
		return
	}
	d := p.auditCfg.Period - n.Round()%p.auditCfg.Period
	if d <= 0 {
		d = p.auditCfg.Period
	}
	n.SendTimer(p.id, msgAuditTick{}, d)
	p.aStats.Passes++
	if p.auditBusy() || p.anyDamaged() {
		p.auditStalePass()
		return
	}
	p.aStaleRuns, p.aStaleFP = 0, 0
	p.auditExamine(n)
}

// auditStalePass watches held transient state for staleness. A live
// repair's scratch changes (or at least its owner receives messages)
// between passes; scratch that sits bit-identical through
// auditStaleConfirm passes with the non-audit message counter frozen
// belongs to no live repair — injected epochs, phantom claim marks,
// orphaned Breakflags — and is cleared wholesale.
func (p *processor) auditStalePass() {
	if p.dying {
		// A batch member awaiting its wave legitimately sits silent for
		// many periods; its state dies with it.
		return
	}
	fp := p.transientFingerprint()
	if fp == p.aStaleFP && p.aProtoSeen == p.aStaleMark {
		p.aStaleRuns++
	} else {
		p.aStaleFP, p.aStaleMark, p.aStaleRuns = fp, p.aProtoSeen, 1
	}
	if p.aStaleRuns < auditStaleConfirm {
		return
	}
	p.aStaleRuns = 0
	cleared := 0
	for e := range p.reps {
		delete(p.reps, e)
		cleared++
	}
	for e := range p.parts {
		delete(p.parts, e)
		cleared++
	}
	for a := range p.stripWait {
		delete(p.stripWait, a)
		cleared++
	}
	if p.claims != nil {
		p.claims = nil
		cleared++
	}
	if p.claimEl != nil {
		p.claimEl = nil
		cleared++
	}
	if p.batch != nil {
		p.batch = nil
		cleared++
	}
	for _, h := range p.helpers {
		if h.damaged {
			h.damaged, h.depoch = false, 0
			cleared++
		}
	}
	if cleared == 0 {
		return
	}
	p.aStats.Mismatches++
	p.aStats.Repairs += cleared
	p.markTouched()
}

// transientFingerprint folds every piece of transient repair state into
// one word (audit.Sum), canonically ordered so identical state always
// folds identically.
func (p *processor) transientFingerprint() uint64 {
	var w []int64
	addAddr := func(a addr) {
		w = append(w, int64(a.Owner), int64(a.Other), int64(a.Kind))
	}
	w = append(w, int64(len(p.reps)))
	for _, e := range sortedRecordKeys(p.reps) {
		rs := p.reps[e]
		w = append(w, int64(e), int64(rs.phase), int64(rs.outstanding),
			int64(rs.annRecvd), int64(rs.descRecvd))
	}
	w = append(w, int64(len(p.parts)))
	for _, e := range sortedRecordKeys(p.parts) {
		ps := p.parts[e]
		w = append(w, int64(e), int64(ps.walksOut), int64(ps.waitDone),
			int64(ps.waitChamps), int64(ps.annSent))
	}
	w = append(w, int64(len(p.stripWait)))
	for _, a := range sortedAddrKeys(p.stripWait) {
		addAddr(a)
		w = append(w, int64(p.stripWait[a].waiting))
	}
	if p.claims == nil {
		w = append(w, -1)
	} else {
		w = append(w, int64(len(p.claims)))
		for _, a := range sortedAddrKeys(p.claims) {
			addAddr(a)
			w = append(w, int64(p.claims[a]))
		}
	}
	flags := int64(0)
	if p.claimEl != nil {
		flags |= 1
	}
	if p.batch != nil {
		flags |= 2
	}
	w = append(w, flags)
	for _, o := range sortedRecordKeys(p.helpers) {
		if h := p.helpers[o]; h.damaged {
			w = append(w, int64(o), int64(h.depoch))
		}
	}
	return audit.Sum(w...)
}

// sortedAddrKeys is sortedRecordKeys for addr-keyed maps.
func sortedAddrKeys[T any](m map[addr]T) []addr {
	keys := make([]addr, 0, len(m))
	for a := range m {
		keys = append(keys, a)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

// auditExamine runs the structural pass: Batch records in canonical
// order (leaves then helpers, each ascending), resuming at the
// round-robin cursor, so every record is audited within
// ceil(records/Batch) passes.
func (p *processor) auditExamine(n transport.Endpoint) {
	leafKeys := sortedRecordKeys(p.leaves)
	helpKeys := sortedRecordKeys(p.helpers)
	total := len(leafKeys) + len(helpKeys)
	if total == 0 {
		return
	}
	steps := p.auditCfg.Batch
	if steps > total {
		steps = total
	}
	for i := 0; i < steps; i++ {
		idx := (p.aCursor + i) % total
		if idx < len(leafKeys) {
			p.auditLeafPass(n, leafKeys[idx])
		} else {
			p.auditHelperPass(n, helpKeys[idx-len(leafKeys)])
		}
	}
	p.aCursor = (p.aCursor + steps) % total
}

func (p *processor) auditClaimParent(n transport.Endpoint, child, parent addr) {
	p.aStats.Probes++
	p.sendPacedClass(n, parent.Owner,
		msgAuditClaim{Child: child, Target: parent}, wordsAuditClaim, transport.ClassAudit)
}

// auditLeafPass audits one leaf avatar: up-claim its recorded parent.
// A parentless leaf may be a legal sole root — only its true parent,
// whose down-probe proposes adoption, can tell otherwise.
func (p *processor) auditLeafPass(n transport.Endpoint, o NodeID) {
	if l := p.leaves[o]; l.parent.ok() {
		p.auditClaimParent(n, leafAddr(p.id, o), l.parent)
	}
}

// auditHelperPass audits one helper: up-claim its recorded parent and
// down-probe both children, stashing the conversation for the
// aggregate recompute when both replies are in.
func (p *processor) auditHelperPass(n transport.Endpoint, o NodeID) {
	h := p.helpers[o]
	if h.damaged {
		p.aStats.Deferred++
		return
	}
	self := helperAddr(p.id, o)
	if h.parent.ok() {
		p.auditClaimParent(n, self, h.parent)
	}
	if !h.left.ok() || !h.right.ok() {
		// A cleared child pointer on an undamaged helper: detectable,
		// but no in-band exchange can regrow it (no corruption mode
		// produces it either).
		p.aStats.Mismatches++
		return
	}
	if p.aWait == nil {
		p.aWait = make(map[addr]*auditAgg)
	}
	p.aWait[self] = &auditAgg{}
	for side, c := range [2]addr{h.left, h.right} {
		p.aStats.Probes++
		p.sendPacedClass(n, c.Owner,
			msgAuditProbe{Target: c, Parent: self, Side: side}, wordsAuditProbe, transport.ClassAudit)
	}
}

// onAuditProbe answers a down-probe about one of this processor's
// records, running the adopt-zero rule on a record whose parent is
// cleared.
func (p *processor) onAuditProbe(n transport.Endpoint, m msgAuditProbe) {
	r := msgAuditReply{Target: m.Target, Parent: m.Parent, Side: m.Side}
	switch {
	case p.auditBusy():
		r.Status = auditBusy
	case m.Target.Owner != p.id:
		r.Status = auditGone
	case m.Target.Kind == kindLeaf:
		l, ok := p.leaves[m.Target.Other]
		if !ok {
			r.Status = auditGone
			break
		}
		r.Kind, r.Height, r.Count, r.Rep = kindLeaf, 0, 1, m.Target.slot()
		r.Status = p.auditCheckParent(&l.parent, m.Target, m.Parent)
	default:
		h, ok := p.helpers[m.Target.Other]
		switch {
		case !ok:
			r.Status = auditGone
		case h.damaged:
			r.Status = auditBusy
		default:
			r.Kind, r.Height, r.Count, r.Rep = kindHelper, h.height, h.leafCount, h.rep
			r.Status = p.auditCheckParent(&h.parent, m.Target, m.Parent)
		}
	}
	p.sendPacedClass(n, m.Parent.Owner, r, wordsAuditReply, transport.ClassAudit)
}

// auditCheckParent compares a probed record's parent with the prober.
// A cleared parent adopts a prober that proposed itself on two
// consecutive passes with no protocol traffic in between: a repair that
// legitimately cleared the link would have moved messages here before
// the second proposal, and a prober that died after sending a stale
// probe never proposes twice. A set parent is never overridden — the
// up-claim path owns clearing bad ones.
func (p *processor) auditCheckParent(parent *addr, self, prober addr) auditStatus {
	switch {
	case *parent == prober:
		delete(p.aAdopt, self)
		return auditOK
	case parent.ok():
		return auditForeign
	}
	if e := p.aAdopt[self]; e != nil && e.what == prober && e.mark == p.aProtoSeen {
		*parent = prober
		delete(p.aAdopt, self)
		p.aStats.Mismatches++
		p.aStats.Repairs++
		p.markTouched()
		return auditOK
	}
	if p.aAdopt == nil {
		p.aAdopt = make(map[addr]*auditConfirm)
	}
	p.aAdopt[self] = &auditConfirm{what: prober, mark: p.aProtoSeen}
	return auditForeign
}

// onAuditReply folds one down-probe reply: suspect bookkeeping per
// child side, then the aggregate recompute once both sides answered.
func (p *processor) onAuditReply(n transport.Endpoint, m msgAuditReply) {
	key := auditSideKey{other: m.Parent.Other, side: m.Side}
	switch m.Status {
	case auditOK:
		delete(p.aSuspect, key)
	case auditGone, auditForeign:
		if e := p.aSuspect[key]; e != nil && e.what == m.Target && e.mark == p.aProtoSeen {
			e.runs++
		} else {
			if p.aSuspect == nil {
				p.aSuspect = make(map[auditSideKey]*auditConfirm)
			}
			p.aSuspect[key] = &auditConfirm{what: m.Target, runs: 1, mark: p.aProtoSeen}
		}
	case auditBusy:
		p.aStats.Deferred++
	}
	st := p.aWait[m.Parent]
	if st == nil || m.Side < 0 || m.Side > 1 || st.have[m.Side] {
		return
	}
	st.have[m.Side] = true
	if m.Status != auditOK {
		st.bad = true
	} else {
		st.height[m.Side], st.count[m.Side], st.rep[m.Side] = m.Height, m.Count, m.Rep
	}
	if !st.have[0] || !st.have[1] {
		return
	}
	delete(p.aWait, m.Parent)
	if !st.bad {
		p.auditRecompute(m.Parent, st)
	}
}

// auditRecompute re-derives a helper's stored aggregates from its
// children's replies, exactly as the central verifier would: height is
// max+1, leaf count the sum, and the representative is whichever child
// representative is not this helper's own slot (the free-leaf rule of
// verify.go — the consumed candidate is the leaf whose helper this is).
func (p *processor) auditRecompute(self addr, st *auditAgg) {
	h, ok := p.helpers[self.Other]
	if !ok || h.damaged || p.auditBusy() {
		return
	}
	wantH := st.height[0]
	if st.height[1] > wantH {
		wantH = st.height[1]
	}
	wantH++
	wantLC := st.count[0] + st.count[1]
	own := self.slot()
	wantRep, haveRep := h.rep, false
	switch {
	case st.rep[0] == own && st.rep[1] != own:
		wantRep, haveRep = st.rep[1], true
	case st.rep[1] == own && st.rep[0] != own:
		wantRep, haveRep = st.rep[0], true
	}
	if h.height == wantH && h.leafCount == wantLC && (!haveRep || h.rep == wantRep) {
		return
	}
	p.aStats.Mismatches++
	p.aStats.Repairs++
	h.height, h.leafCount = wantH, wantLC
	if haveRep {
		h.rep = wantRep
	}
	p.markTouched()
}

// onAuditClaim answers an up-claim about one of this processor's
// helpers, adopting the claimant into a confirmed-suspect child side.
func (p *processor) onAuditClaim(n transport.Endpoint, m msgAuditClaim) {
	v := msgAuditVerdict{Child: m.Child, Target: m.Target, Verdict: p.auditClaimVerdict(m)}
	p.sendPacedClass(n, m.Child.Owner, v, wordsAuditVerdict, transport.ClassAudit)
}

func (p *processor) auditClaimVerdict(m msgAuditClaim) auditVerdict {
	if p.auditBusy() {
		return auditVBusy
	}
	if m.Target.Owner != p.id || m.Target.Kind != kindHelper {
		return auditVMissing // parents are always helpers
	}
	h, ok := p.helpers[m.Target.Other]
	if !ok {
		return auditVMissing
	}
	if h.damaged {
		return auditVBusy
	}
	if h.left == m.Child || h.right == m.Child {
		return auditVMine
	}
	// The claimant is not listed. If one of this helper's child sides
	// has repeatedly probed as dangling, the stored pointer there is
	// corrupt and the claimant — which records this helper as its
	// parent — is its rightful occupant: adopt it.
	for side, c := range [2]addr{h.left, h.right} {
		key := auditSideKey{other: m.Target.Other, side: side}
		e := p.aSuspect[key]
		if e == nil || e.what != c {
			continue
		}
		if e.runs < auditSuspectConfirm || e.mark != p.aProtoSeen {
			// A suspicion is building on this side but is not confirmed
			// yet. Denying now could race the probe replies of the same
			// pass: two denials make the claimant — possibly this side's
			// rightful occupant — clear its correct parent pointer, and
			// the orphan would never be probed again. Defer instead; the
			// suspicion either confirms (the claimant is adopted) or the
			// stored child answers OK (the suspicion dissolves).
			return auditVBusy
		}
		if side == 0 {
			h.left = m.Child
		} else {
			h.right = m.Child
		}
		delete(p.aSuspect, key)
		p.aStats.Mismatches++
		p.aStats.Repairs++
		p.markTouched()
		return auditVMine
	}
	return auditVDeny
}

// onAuditVerdict folds a claim verdict: a parent that denied (or was
// missing) on two consecutive passes with no protocol traffic in
// between proves the stored parent pointer corrupt, and the record
// clears it — the true parent's down-probe then re-adopts the orphan.
func (p *processor) onAuditVerdict(n transport.Endpoint, m msgAuditVerdict) {
	switch m.Verdict {
	case auditVMine:
		delete(p.aClaimBad, m.Child)
		return
	case auditVBusy:
		p.aStats.Deferred++
		return
	}
	if p.auditBusy() || m.Child.Owner != p.id {
		return
	}
	var parent *addr
	switch m.Child.Kind {
	case kindLeaf:
		if l, ok := p.leaves[m.Child.Other]; ok {
			parent = &l.parent
		}
	default:
		if h, ok := p.helpers[m.Child.Other]; ok && !h.damaged {
			parent = &h.parent
		}
	}
	if parent == nil || *parent != m.Target {
		// The record moved since the claim went out; the verdict is
		// stale.
		delete(p.aClaimBad, m.Child)
		return
	}
	if e := p.aClaimBad[m.Child]; e != nil && e.what == m.Target && e.mark == p.aProtoSeen {
		*parent = addr{}
		delete(p.aClaimBad, m.Child)
		p.aStats.Mismatches++
		p.aStats.Repairs++
		p.markTouched()
		return
	}
	if p.aClaimBad == nil {
		p.aClaimBad = make(map[addr]*auditConfirm)
	}
	p.aClaimBad[m.Child] = &auditConfirm{what: m.Target, mark: p.aProtoSeen}
}

// ---- Driver side ----

// EnableAudit turns the self-stabilizing audit layer on for every
// current and future processor, at the given pacing (zero fields take
// the defaults). The layer is strictly additive: with it off — the
// default — no audit code path runs and no behavior changes.
func (s *Simulation) EnableAudit(cfg audit.Config) error {
	c, err := cfg.Normalize()
	if err != nil {
		return err
	}
	if s.auditOn {
		return fmt.Errorf("dist: audit already enabled")
	}
	s.auditOn, s.auditCfg = true, c
	s.boundDirty = true
	for _, v := range s.LiveNodes() {
		p := s.procs[v]
		p.auditOn, p.auditCfg = true, c
		s.armAuditTick(v)
	}
	return nil
}

// AuditEnabled reports whether the audit layer is on.
func (s *Simulation) AuditEnabled() bool { return s.auditOn }

// AuditStats aggregates the audit counters over all live processors
// plus the driver-side sweeps and the folded counters of processors
// churn has since deleted, so the totals are campaign-cumulative.
func (s *Simulation) AuditStats() audit.Stats {
	agg := s.audStats
	for _, p := range s.procs {
		agg.Add(p.aStats)
	}
	return agg
}

// AuditTraffic reports the transport-level cost of the audit layer
// since the last stats reset: delivered ClassAudit messages and the
// pulses that carried at least one of them.
func (s *Simulation) AuditTraffic() (messages, rounds int) {
	st := s.net.Stats()
	return st.AuditMessages, st.AuditRounds
}

// armAuditTick arms one processor's standing audit tick, aligned to the
// period grid of the transport's pulse counter so all simnet ticks fire
// in the same round (harmless on channet, whose clocks are per-node).
func (s *Simulation) armAuditTick(v NodeID) {
	d := s.auditCfg.Period - s.net.Round()%s.auditCfg.Period
	if d <= 0 {
		d = s.auditCfg.Period
	}
	s.net.SendTimer(v, msgAuditTick{}, d)
}

// reArmAuditTicks restores every live processor's standing tick after a
// path that dropped pending timers wholesale (the batch claim phase's
// early abort).
func (s *Simulation) reArmAuditTicks() {
	if !s.auditOn {
		return
	}
	for _, v := range s.LiveNodes() {
		s.armAuditTick(v)
	}
}

// netQuiet is the audited network's notion of quiescence. With the
// audit on every live processor holds exactly one armed tick (handlers
// re-arm before doing anything else), so "pending <= live processors"
// means only the standing ticks remain. With the audit off it is
// exactly Pending() == 0.
func (s *Simulation) netQuiet() bool {
	if !s.auditOn {
		return s.net.Pending() == 0
	}
	return s.net.Pending() <= len(s.alive)
}

// auditEngineSweep is the driver-side analogue of the processors'
// stale-state detector, run once per engine tick: an in-flight repair
// footprint whose epoch no processor holds scratch for (no reps, no
// parts) — with the network quiet, so nothing carrying that epoch is
// even in transit — can never complete in-band. After two full audit
// periods of that, the footprint is declared phantom and swept.
func (s *Simulation) auditEngineSweep() {
	if !s.auditOn || len(s.inflight) == 0 {
		s.auditStall = 0
		return
	}
	// The stall counts every tick some repair stays in flight — including
	// the audit layer's own periodic probe bursts, which would otherwise
	// reset it forever. Quiescence is required only at the moment of
	// sweeping: quiet means just the standing ticks are pending, and no
	// audit message ever creates repair scratch, so an epoch with no
	// scratch anywhere then is provably phantom.
	s.auditStall++
	if s.auditStall <= 2*s.auditCfg.Period+8 || !s.netQuiet() {
		return
	}
	s.auditStall = 0
	for _, e := range s.phantomEpochs() {
		delete(s.inflight, e)
		s.audStats.Mismatches++
		s.audStats.Repairs++
	}
}

func (s *Simulation) phantomEpochs() []NodeID {
	var out []NodeID
	for e := range s.inflight {
		seen := false
		for _, p := range s.procs {
			if _, ok := p.reps[e]; ok {
				seen = true
				break
			}
			if _, ok := p.parts[e]; ok {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, e)
		}
	}
	if len(out) > 1 {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out
}
