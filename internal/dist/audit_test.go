package dist

import (
	"math/rand"
	"testing"

	"repro/internal/audit"
	"repro/internal/graph"
)

// Liveness and quiescence properties of the audit layer on HEALTHY
// networks: the probing never stops, the writing never starts
// (silence, in the Devismes sense), live repairs are deferred to
// rather than raced, and the background traffic stays a small
// fraction of repair traffic (BenchmarkAuditOverhead, gated in
// BENCH_dist.json via cmd/benchcheck).

// TestAuditSilence: on a corruption-free campaign the audit layer
// keeps examining — passes and probes grow, its traffic class is
// accounted — but never writes: zero mismatches, zero repairs, and
// the network stays Verify-clean with the audit running throughout.
func TestAuditSilence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := NewSimulation(graph.PreferentialAttachment(96, 3, rng))
	const period = 32
	if err := s.EnableAudit(audit.Config{Period: period, Batch: 1 << 12}); err != nil {
		t.Fatal(err)
	}
	nextID := NodeID(1 << 18)
	for i := 0; i < 24; i++ {
		live := s.LiveNodes()
		if rng.Float64() < 0.3 {
			v := nextID
			nextID++
			if err := s.Insert(v, []NodeID{live[rng.Intn(len(live))]}); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
				t.Fatal(err)
			}
		}
		// A few audit pulses between ops: most fire on a quiet network,
		// some land mid-repair via the open-loop waves below.
		for j := 0; j < 2*period; j++ {
			s.Tick()
		}
	}
	// One pipelined wave, audit pulsing underneath the live repairs.
	live := s.LiveNodes()
	var ops []Op
	for _, idx := range rng.Perm(len(live))[:4] {
		ops = append(ops, Op{Kind: OpDelete, V: live[idx]})
	}
	if err := s.Submit(ops...); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 1<<14 && !s.Idle(); r++ {
		s.Tick()
	}
	if !s.Idle() {
		t.Fatal("failed to drain")
	}
	for i := 0; i < 6*period; i++ {
		s.Tick()
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	st := s.AuditStats()
	if st.Passes == 0 || st.Probes == 0 {
		t.Fatalf("audit not live: %+v", st)
	}
	if st.Mismatches != 0 || st.Repairs != 0 {
		t.Fatalf("audit wrote on a clean run (not silent): %+v", st)
	}
	msgs, rounds := s.AuditTraffic()
	if msgs == 0 || rounds == 0 {
		t.Fatalf("audit traffic not accounted under its class: %d msgs, %d rounds", msgs, rounds)
	}
	if total := s.net.Stats().Messages; total < msgs {
		t.Fatalf("class accounting inconsistent: %d audit msgs > %d total", msgs, total)
	}
}

// TestAuditDefersToLiveRepair: audit pulses landing in the middle of a
// live repair epoch must defer (busy replies, skipped damaged
// helpers), not inject duplicate repairs. The aggressive period makes
// every repair window host several pulses.
func TestAuditDefersToLiveRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := NewSimulation(graph.PreferentialAttachment(256, 3, rng))
	const period = 4
	if err := s.EnableAudit(audit.Config{Period: period, Batch: 1 << 12}); err != nil {
		t.Fatal(err)
	}
	// Grow some standing records first, so the audit has something to
	// probe while the next wave's repairs run.
	for i := 0; i < 6; i++ {
		live := s.LiveNodes()
		if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
			t.Fatal(err)
		}
	}
	live := s.LiveNodes()
	var ops []Op
	for _, idx := range rng.Perm(len(live))[:12] {
		ops = append(ops, Op{Kind: OpDelete, V: live[idx]})
	}
	if err := s.Submit(ops...); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 1<<14 && !s.Idle(); r++ {
		s.Tick()
	}
	if !s.Idle() {
		t.Fatal("failed to drain")
	}
	for i := 0; i < 6*period; i++ {
		s.Tick()
	}
	st := s.AuditStats()
	if st.Deferred == 0 {
		t.Fatalf("no audit pulse deferred to the live repairs: %+v", st)
	}
	if st.Repairs != 0 {
		t.Fatalf("audit duplicated live repair work: %+v", st)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestEnableAuditErrors pins the driver API contract: bad pacing is
// rejected, double-enable is rejected, and the enabled flag reports
// truthfully.
func TestEnableAuditErrors(t *testing.T) {
	s := NewSimulation(graph.Path(8))
	if s.AuditEnabled() {
		t.Fatal("audit on before EnableAudit")
	}
	if err := s.EnableAudit(audit.Config{Period: -1}); err == nil {
		t.Fatal("negative period accepted")
	}
	if err := s.EnableAudit(audit.Config{Batch: -3}); err == nil {
		t.Fatal("negative batch accepted")
	}
	if s.AuditEnabled() {
		t.Fatal("failed enable left the audit on")
	}
	if err := s.EnableAudit(audit.Config{}); err != nil {
		t.Fatalf("defaulted config rejected: %v", err)
	}
	if !s.AuditEnabled() {
		t.Fatal("audit off after EnableAudit")
	}
	if err := s.EnableAudit(audit.Config{Period: 64}); err == nil {
		t.Fatal("double enable accepted")
	}
}

// BenchmarkAuditOverhead measures the audit layer's background tax on
// a corruption-free churn-heavy campaign: mixed insert/delete waves
// pipelined back-to-back on powerlaw-512 for one full default audit
// period, audit running at production pacing throughout. The headline
// metric is auditpct/period — delivered ClassAudit messages as a
// percentage of all other traffic — which must stay ≤ 5%; the
// absolute counts are gated against BENCH_dist.json like the other
// benchmarks.
func BenchmarkAuditOverhead(b *testing.B) {
	base := graph.PreferentialAttachment(512, 3, rand.New(rand.NewSource(42)))
	cfg := audit.Default()
	b.ReportAllocs()
	var auditMsgs, otherMsgs, pulses float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := rand.New(rand.NewSource(int64(i)))
		s := NewSimulation(base)
		if err := s.EnableAudit(cfg); err != nil {
			b.Fatal(err)
		}
		s.net.ResetStats()
		nextID := NodeID(1 << 18)
		b.StartTimer()
		for s.net.Round() <= cfg.Period {
			live := s.LiveNodes()
			perm := rng.Perm(len(live))
			var ops []Op
			for _, idx := range perm[:6] {
				ops = append(ops, Op{Kind: OpDelete, V: live[idx]})
			}
			// Anchors come from the survivors' side of the permutation, so
			// an insert never races its own wave's deletions.
			for j := 0; j < 6; j++ {
				v := nextID
				nextID++
				ops = append(ops, Op{Kind: OpInsert, V: v, Nbrs: []NodeID{live[perm[6+j]]}})
			}
			if err := s.Submit(ops...); err != nil {
				b.Fatal(err)
			}
			for !s.Idle() {
				s.Tick()
			}
			for _, ev := range s.Poll() {
				if ev.Kind == EventOpRejected {
					b.Fatalf("rejected: %v", ev.Err)
				}
			}
		}
		b.StopTimer()
		st := s.net.Stats()
		auditMsgs += float64(st.AuditMessages)
		otherMsgs += float64(st.Messages - st.AuditMessages)
		pulses += float64(st.AuditRounds)
		if as := s.AuditStats(); as.Repairs != 0 {
			b.Fatalf("audit wrote on a clean run: %+v", as)
		}
		b.StartTimer()
	}
	n := float64(b.N)
	pct := 100 * auditMsgs / otherMsgs
	b.ReportMetric(auditMsgs/n, "auditmsgs/period")
	b.ReportMetric(otherMsgs/n, "msgs/period")
	b.ReportMetric(pulses/n, "auditrounds/period")
	b.ReportMetric(pct, "auditpct")
	if pct > 5 {
		b.Errorf("clean-run audit overhead %.2f%% > 5%% of non-audit traffic", pct)
	}
}
