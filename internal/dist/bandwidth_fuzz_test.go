package dist

import (
	"testing"

	"repro/internal/graph"
)

// FuzzBandwidthSchedule aims byte-driven bandwidth configurations and
// op schedules at the congestion model: a global per-edge cap, a
// handful of per-edge overrides (heterogeneous links), the leader
// pacing toggled on or off, and a mixed insert/delete/batch schedule.
// Whatever the configuration, the bandwidth-limited run must converge
// to exactly the same healed graph as an unlimited twin fed the same
// schedule — bandwidth may delay traffic, never change its meaning —
// and the limited simulation must pass full revalidation.
func FuzzBandwidthSchedule(f *testing.F) {
	f.Add([]byte{0x01, 0x00, 0x23, 0x11})
	f.Add([]byte{0x13, 0x47, 0x81, 0x03, 0x62})
	f.Add([]byte{0x28, 0x90, 0x91, 0x30, 0x92, 0x15, 0x00})
	f.Add([]byte{0x3f, 0xff, 0x7f, 0x3f, 0x1f})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		if len(data) > 40 {
			data = data[:40]
		}
		cfg, ops := data[0], data[1:]

		g0 := graph.Grid(4, 4) // 16 nodes, ids 0..15
		limited := NewSimulation(g0)
		limited.SetParallel(true)
		unlimited := NewSimulation(g0)
		unlimited.SetParallel(true)

		// Low bits: global cap 1..4; bit 4: leader pacing off; bits
		// 5..6: how many grid edges get a tighter override.
		B := 1 + int(cfg&0x03)
		limited.SetBandwidth(B)
		limited.SetSpread(cfg&0x10 == 0)
		overrides := int(cfg >> 5 & 0x03)
		for i := 0; i < overrides; i++ {
			// Deterministic spread of directed overrides across the grid.
			from := NodeID((int(cfg) + 3*i) % 16)
			to := NodeID((int(cfg) + 3*i + 4) % 16)
			limited.SetEdgeBandwidth(from, to, 1)
		}

		nextID := NodeID(400)
		for _, b := range ops {
			live := limited.LiveNodes()
			if len(live) == 0 {
				break
			}
			if b&0x80 != 0 {
				v := nextID
				nextID++
				nbrs := []NodeID{live[int(b&0x3f)%len(live)]}
				if b&0x40 != 0 {
					other := live[int(b>>3&0x0f)%len(live)]
					if other != nbrs[0] {
						nbrs = append(nbrs, other)
					}
				}
				if err := limited.Insert(v, nbrs); err != nil {
					t.Fatalf("limited insert: %v", err)
				}
				if err := unlimited.Insert(v, nbrs); err != nil {
					t.Fatalf("unlimited insert: %v", err)
				}
				continue
			}
			anchor := live[int(b&0x0f)%len(live)]
			k := 1 + int(b>>4&0x07)
			batch := collidingBatch(limited, anchor, live, k)
			if err := limited.DeleteBatch(batch); err != nil {
				t.Fatalf("limited delete batch %v: %v", batch, err)
			}
			if err := unlimited.DeleteBatch(batch); err != nil {
				t.Fatalf("unlimited delete batch %v: %v", batch, err)
			}
			if !limited.Physical().Equal(unlimited.Physical()) {
				t.Fatalf("B=%d batch %v: healed graphs diverge from B=inf", B, batch)
			}
			lb, ub := limited.LastBatch(), unlimited.LastBatch()
			if lb.Rounds < ub.Rounds {
				t.Fatalf("B=%d batch %v: limited run took fewer rounds (%d) than unlimited (%d)",
					B, batch, lb.Rounds, ub.Rounds)
			}
		}
		if err := limited.Verify(); err != nil {
			t.Fatal(err)
		}
		if err := unlimited.Verify(); err != nil {
			t.Fatal(err)
		}
	})
}
