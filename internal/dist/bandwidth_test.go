package dist

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// Tests for the protocol under per-edge bandwidth limits: the healed
// graph must be identical for every finite cap (only rounds change),
// the star hub repair must expose congestion, and the leader's send
// pacing must shrink the per-edge backlog it causes.

// replayAtBandwidth drives a deterministic insert/delete schedule
// through a simulation with the given cap and returns the final
// simulation plus total messages and rounds.
func replayAtBandwidth(t *testing.T, g0 *graph.Graph, ops int, seed int64, bandwidth int, spread bool) (*Simulation, int, int) {
	t.Helper()
	s := NewSimulation(g0)
	s.SetBandwidth(bandwidth)
	s.SetSpread(spread)
	rng := rand.New(rand.NewSource(seed))
	nextID := NodeID(30_000)
	msgs, rounds := 0, 0
	for i := 0; i < ops; i++ {
		live := s.LiveNodes()
		if len(live) == 0 {
			break
		}
		if rng.Float64() < 0.3 {
			v := nextID
			nextID++
			k := 1 + rng.Intn(3)
			if k > len(live) {
				k = len(live)
			}
			var nbrs []NodeID
			for _, idx := range rng.Perm(len(live))[:k] {
				nbrs = append(nbrs, live[idx])
			}
			if err := s.Insert(v, nbrs); err != nil {
				t.Fatalf("op %d: insert: %v", i, err)
			}
		} else {
			v := live[rng.Intn(len(live))]
			if err := s.Delete(v); err != nil {
				t.Fatalf("op %d: delete %d (B=%d): %v", i, v, bandwidth, err)
			}
			rs := s.LastRecovery()
			msgs += rs.Messages
			rounds += rs.Rounds
		}
	}
	return s, msgs, rounds
}

// TestBandwidthEquivalenceAcrossB is the core honesty claim: for every
// differential-equivalence topology family, every finite per-edge
// bandwidth converges to the same healed graph as B=∞ with the same
// message count — only the round count may grow.
func TestBandwidthEquivalenceAcrossB(t *testing.T) {
	topologies := []struct {
		name string
		gen  func(rng *rand.Rand) *graph.Graph
		ops  int
	}{
		{"star", func(*rand.Rand) *graph.Graph { return graph.Star(24) }, 24},
		{"path", func(*rand.Rand) *graph.Graph { return graph.Path(20) }, 20},
		{"grid", func(*rand.Rand) *graph.Graph { return graph.Grid(5, 5) }, 24},
		{"gnp", func(rng *rand.Rand) *graph.Graph { return graph.GNP(32, 0.15, rng) }, 28},
		{"powerlaw", func(rng *rand.Rand) *graph.Graph { return graph.PreferentialAttachment(28, 2, rng) }, 28},
	}
	for _, topo := range topologies {
		topo := topo
		t.Run(topo.name, func(t *testing.T) {
			for seed := int64(0); seed < 2; seed++ {
				g0 := topo.gen(rand.New(rand.NewSource(500 + seed)))
				ref, refMsgs, refRounds := replayAtBandwidth(t, g0, topo.ops, 11*seed+1, 0, true)
				for _, B := range []int{1, 3, 16} {
					s, msgs, rounds := replayAtBandwidth(t, g0, topo.ops, 11*seed+1, B, true)
					if !s.Physical().Equal(ref.Physical()) {
						t.Fatalf("seed %d B=%d: healed graph diverges from B=inf", seed, B)
					}
					if msgs != refMsgs {
						t.Errorf("seed %d B=%d: %d messages, want %d (bandwidth must delay, not change, traffic)",
							seed, B, msgs, refMsgs)
					}
					if rounds < refRounds {
						t.Errorf("seed %d B=%d: %d rounds < unlimited %d", seed, B, rounds, refRounds)
					}
					if err := s.Verify(); err != nil {
						t.Fatalf("seed %d B=%d: %v", seed, B, err)
					}
				}
			}
		})
	}
}

// TestStarHubCongestionAndSpread is the headline scenario: deleting
// the star-16 hub at B=1 must register congestion — the simulator is
// finally honest about the repair's per-edge hotspot — and pacing the
// leader's instruction bursts must shrink the deepest edge backlog
// without changing the healed graph.
func TestStarHubCongestionAndSpread(t *testing.T) {
	repair := func(bandwidth int, spread bool) (*Simulation, RecoveryStats) {
		s := NewSimulation(graph.Star(16))
		s.SetBandwidth(bandwidth)
		s.SetSpread(spread)
		if err := s.Delete(0); err != nil {
			t.Fatal(err)
		}
		return s, s.LastRecovery()
	}

	ref, inf := repair(0, true)
	sBurst, burst := repair(1, false)
	sPaced, paced := repair(1, true)

	if burst.CongestionRounds == 0 {
		t.Error("star-16 hub repair at B=1 shows no congestion: the hotspot is invisible")
	}
	if burst.MaxEdgeBacklog == 0 {
		t.Error("star-16 hub repair at B=1 shows no edge backlog")
	}
	if paced.MaxEdgeBacklog >= burst.MaxEdgeBacklog {
		t.Errorf("leader pacing did not shrink the backlog: paced %d >= burst %d",
			paced.MaxEdgeBacklog, burst.MaxEdgeBacklog)
	}
	if burst.Messages != inf.Messages || paced.Messages != inf.Messages {
		t.Errorf("message counts diverge: inf %d, burst %d, paced %d",
			inf.Messages, burst.Messages, paced.Messages)
	}
	if burst.Rounds < inf.Rounds || paced.Rounds < inf.Rounds {
		t.Errorf("finite bandwidth took fewer rounds than unlimited: inf %d, burst %d, paced %d",
			inf.Rounds, burst.Rounds, paced.Rounds)
	}
	for name, s := range map[string]*Simulation{"burst": sBurst, "paced": sPaced} {
		if !s.Physical().Equal(ref.Physical()) {
			t.Errorf("%s: healed graph diverges from B=inf", name)
		}
		if err := s.Verify(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if inf.CongestionRounds != 0 || inf.QueuedWords != 0 || inf.MaxEdgeBacklog != 0 {
		t.Errorf("unlimited bandwidth reported congestion: %+v", inf)
	}
}

// TestBandwidthBatchEquivalence: batches under a finite cap heal to
// the same graph as the sequential core reference, in both delivery
// modes.
func TestBandwidthBatchEquivalence(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		g0 := graph.PreferentialAttachment(28, 3, rand.New(rand.NewSource(91)))
		s := NewSimulation(g0)
		s.SetParallel(parallel)
		s.SetBandwidth(2)
		e := core.NewEngine(g0)
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 6; i++ {
			live := s.LiveNodes()
			if len(live) == 0 {
				break
			}
			batch := pickBatch(live, rng, 1+rng.Intn(4))
			if err := s.DeleteBatch(batch); err != nil {
				t.Fatalf("parallel=%v batch %v: %v", parallel, batch, err)
			}
			if err := e.DeleteBatch(batch); err != nil {
				t.Fatalf("core batch %v: %v", batch, err)
			}
			if !s.Physical().Equal(e.Physical()) {
				t.Fatalf("parallel=%v batch %v: healed graphs diverge", parallel, batch)
			}
		}
		if err := s.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBandwidthSequentialVsParallelDelivery: with a finite cap both
// delivery modes must still produce identical graphs and stats —
// congestion counters included.
func TestBandwidthSequentialVsParallelDelivery(t *testing.T) {
	g0 := graph.PreferentialAttachment(32, 3, rand.New(rand.NewSource(33)))
	seq := NewSimulation(g0)
	seq.SetBandwidth(1)
	par := NewSimulation(g0)
	par.SetBandwidth(1)
	par.SetParallel(true)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5; i++ {
		live := seq.LiveNodes()
		if len(live) == 0 {
			break
		}
		batch := pickBatch(live, rng, 1+rng.Intn(4))
		if err := seq.DeleteBatch(batch); err != nil {
			t.Fatalf("sequential: %v", err)
		}
		if err := par.DeleteBatch(batch); err != nil {
			t.Fatalf("parallel: %v", err)
		}
		if seq.LastBatch() != par.LastBatch() {
			t.Fatalf("batch %v: stats diverge between delivery modes:\n%+v\n%+v",
				batch, seq.LastBatch(), par.LastBatch())
		}
		if !seq.Physical().Equal(par.Physical()) {
			t.Fatalf("batch %v: graphs diverge between delivery modes", batch)
		}
	}
}

// TestClaimAbortSavesMessages: a batch that is one conflict group by
// adjacency alone (the star hub plus two of its rays) must skip its
// claim traffic entirely when the early abort is on, and still heal to
// exactly the sequential reference.
func TestClaimAbortSavesMessages(t *testing.T) {
	run := func(abort bool) (*Simulation, BatchStats) {
		s := NewSimulation(graph.Star(16))
		s.SetParallel(true)
		s.SetClaimAbort(abort)
		if err := s.DeleteBatch([]NodeID{0, 1, 2}); err != nil {
			t.Fatal(err)
		}
		return s, s.LastBatch()
	}
	sOn, on := run(true)
	sOff, off := run(false)

	if !on.ClaimAborted {
		t.Error("hub+rays batch did not abort its claim phase")
	}
	if off.ClaimAborted {
		t.Error("abort reported with the early abort disabled")
	}
	if on.ClaimMessages != 0 {
		t.Errorf("aborted claim phase still delivered %d messages, want 0 (direct conflicts decide before any traffic)",
			on.ClaimMessages)
	}
	if off.ClaimMessages == 0 {
		t.Error("full claim phase delivered no messages: the savings baseline is vacuous")
	}
	if on.Messages >= off.Messages {
		t.Errorf("early abort saved nothing: %d messages with abort vs %d without", on.Messages, off.Messages)
	}
	if on.Groups != 1 || on.Waves != 3 {
		t.Errorf("aborted batch ran %d groups / %d waves, want 1 / 3 (fully sequential)", on.Groups, on.Waves)
	}
	e := core.NewEngine(graph.Star(16))
	if err := e.DeleteBatch([]NodeID{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*Simulation{"abort-on": sOn, "abort-off": sOff} {
		if !s.Physical().Equal(e.Physical()) {
			t.Errorf("%s: healed graph diverges from the sequential reference", name)
		}
		if err := s.Verify(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestClaimAbortMidFlight exercises the in-flight abort: a colliding
// cluster whose members are connected only through shared records (not
// direct adjacency) needs the claim walks to discover the single
// group, and the abort must then drop the still-undelivered remainder.
func TestClaimAbortMidFlight(t *testing.T) {
	// Churn a powerlaw network so deep Reconstruction Trees exist, then
	// delete a BFS cluster around a hub.
	build := func(abort bool) (*Simulation, BatchStats) {
		g0 := graph.PreferentialAttachment(48, 3, rand.New(rand.NewSource(5)))
		s := NewSimulation(g0)
		s.SetParallel(true)
		s.SetClaimAbort(abort)
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < 12; i++ {
			live := s.LiveNodes()
			if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
				t.Fatal(err)
			}
		}
		live := s.LiveNodes()
		phys := s.Physical()
		hub, hubDeg := live[0], -1
		for _, u := range live {
			if d := phys.Degree(u); d > hubDeg {
				hub, hubDeg = u, d
			}
		}
		batch := collidingBatch(s, hub, live, 5)
		if err := s.DeleteBatch(batch); err != nil {
			t.Fatalf("batch %v: %v", batch, err)
		}
		return s, s.LastBatch()
	}
	sOn, on := build(true)
	sOff, off := build(false)
	if on.Messages > off.Messages {
		t.Errorf("abort-on spent more messages than abort-off: %d vs %d", on.Messages, off.Messages)
	}
	if !sOn.Physical().Equal(sOff.Physical()) {
		t.Fatal("healed graphs diverge between abort modes")
	}
	if err := sOn.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestPerEdgePacingSlowLink is the per-edge outbox budget claim: with
// a generous global cap but one narrow link out of the leader, the
// pacing must trickle that link at ITS budget — the slow edge collects
// (almost) no backlog — while the bursty mode piles the whole burst
// onto it. Before per-edge budgets the pacer consulted the global cap
// only, so the slow link backlogged even with spread on.
func TestPerEdgePacingSlowLink(t *testing.T) {
	// Star-16 hub deletion: the leader (ray 1) fans the merge plan out
	// to every ray. Ray 9's inbound link is 1 word/round; everything
	// else is capped at 16 (wide enough to never congest).
	run := func(spread bool) (*Simulation, RecoveryStats) {
		s := NewSimulation(graph.Star(16))
		s.SetBandwidth(16)
		s.SetEdgeBandwidth(1, 9, 1)
		s.SetSpread(spread)
		if err := s.Delete(0); err != nil {
			t.Fatal(err)
		}
		return s, s.LastRecovery()
	}
	sPaced, paced := run(true)
	sBurst, burst := run(false)

	if burst.MaxEdgeBacklog == 0 {
		t.Fatal("bursty run shows no backlog on the slow link: the scenario is vacuous")
	}
	if paced.MaxEdgeBacklog >= burst.MaxEdgeBacklog {
		t.Errorf("per-edge pacing did not shrink the slow link's backlog: paced %d >= burst %d",
			paced.MaxEdgeBacklog, burst.MaxEdgeBacklog)
	}
	// The paced leader holds every send beyond the slow edge's own
	// budget in its outbox, so at most one in-flight message can ever
	// be deferred on that edge.
	if paced.MaxEdgeBacklog > wordsCreateHelper {
		t.Errorf("paced slow-link backlog %d words exceeds a single instruction (%d): pacing is not consulting the per-edge cap",
			paced.MaxEdgeBacklog, wordsCreateHelper)
	}
	if paced.Messages != burst.Messages {
		t.Errorf("messages diverge: paced %d vs burst %d", paced.Messages, burst.Messages)
	}
	if !sPaced.Physical().Equal(sBurst.Physical()) {
		t.Error("healed graphs diverge between pacing modes")
	}
	for name, s := range map[string]*Simulation{"paced": sPaced, "burst": sBurst} {
		if err := s.Verify(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestNodeCapEquivalence: node-level capacity clamps (the EXP-HET slow
// access links) must — like every bandwidth configuration — delay
// traffic, never change it: same healed graph, same messages, at least
// as many rounds as the unlimited twin.
func TestNodeCapEquivalence(t *testing.T) {
	g0 := graph.PreferentialAttachment(32, 3, rand.New(rand.NewSource(77)))
	ref := NewSimulation(g0)
	slow := NewSimulation(g0)
	for i, v := range slow.LiveNodes() {
		if i%3 == 0 {
			slow.SetNodeBandwidth(v, 1)
		}
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 10; i++ {
		live := ref.LiveNodes()
		v := live[rng.Intn(len(live))]
		if err := ref.Delete(v); err != nil {
			t.Fatal(err)
		}
		if err := slow.Delete(v); err != nil {
			t.Fatal(err)
		}
		rr, sr := ref.LastRecovery(), slow.LastRecovery()
		if sr.Messages != rr.Messages {
			t.Fatalf("delete %d: %d messages under node caps, want %d", v, sr.Messages, rr.Messages)
		}
		if sr.Rounds < rr.Rounds {
			t.Fatalf("delete %d: %d rounds under node caps < unlimited %d", v, sr.Rounds, rr.Rounds)
		}
		if !slow.Physical().Equal(ref.Physical()) {
			t.Fatalf("delete %d: healed graphs diverge under node caps", v)
		}
	}
	if err := slow.Verify(); err != nil {
		t.Fatal(err)
	}
}
