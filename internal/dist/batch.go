package dist

import (
	"fmt"
	"sort"
)

// Batched concurrent deletions.
//
// The paper repairs one deletion at a time; under churn they arrive in
// bursts. DeleteBatch overlaps the repairs of *independent* damaged
// regions — vertex-disjoint sets of records — so that k disjoint
// deletions heal in roughly the rounds of one, while repairs whose
// regions collide serialize exactly as the sequential semantics
// demand. The reference semantics is core.Engine.DeleteBatch: apply
// the deletions one at a time in canonical (ascending-ID) order. The
// differential tests assert the two produce identical healed graphs.
//
// The batch runs in two stages:
//
//  1. Claim phase (read-only). Every member's would-be damage walk runs
//     in claim mode: the records the repair would cut, damage, or walk
//     through are claimed for the member's epoch, mutating nothing.
//     Two walks colliding on a shared record, or a walk ascending into
//     another member's dying avatar, report a conflict pair to the
//     batch coordinator in-band. Links *between* two members (a shared
//     G′ edge or a tree link between their avatars) are conflicts
//     detected at notification time, since each member's neighbors
//     know both ends died.
//  2. Wave execution. Conflict pairs partition the batch into groups
//     (connected components); members of distinct groups have disjoint
//     regions, and a group's own repairs keep its region closed — a
//     merge only rewires the group's fragments — so groups stay
//     disjoint for the batch's whole lifetime. Each group's members
//     execute in ascending order — the younger repair of every
//     conflicting pair serialized behind the older exactly as the
//     canonical order requires — but the groups PIPELINE through the
//     open-loop engine: the moment a group's current repair proves
//     itself complete in-band (the last merge-instruction ack), its
//     leader hands off to the group's next member by sending that
//     deletion's death notifications itself, one per notified member,
//     while other groups' repairs are still running. There is no
//     driver barrier between waves anymore; the serialization depth
//     (the largest group) is still reported as Waves.

// BatchStats reports the measured cost of one DeleteBatch call.
type BatchStats struct {
	// Batch is the number of deletions; Groups the number of
	// independent conflict groups they formed; Waves the serialization
	// depth (the largest group); Conflicts the conflict pairs found.
	Batch     int
	Groups    int
	Waves     int
	Conflicts int
	// ClaimMessages and ClaimRounds are the share of the totals spent
	// on the claim phase. ClaimAborted reports that conflict discovery
	// stopped early: the batch was proven to be one conflict group, so
	// the remaining claim traffic was dropped undelivered and the batch
	// fell back to fully sequential waves.
	ClaimMessages int
	ClaimRounds   int
	ClaimAborted  bool
	// Messages, Rounds, TotalWords, MaxWords and MaxSentByNode cover
	// the whole batch, claim phase included.
	Messages      int
	Rounds        int
	TotalWords    int
	MaxWords      int
	MaxSentByNode int
	// QueuedWords, MaxEdgeBacklog and CongestionRounds mirror the
	// simulator's congestion counters over the whole batch (zero under
	// unlimited bandwidth).
	QueuedWords      int
	MaxEdgeBacklog   int
	CongestionRounds int
	// ElectionRounds / SyncRounds and the corresponding message counts
	// expose the batch's in-band coordination cost: leader-election
	// tournaments and termination-detection traffic across every wave.
	ElectionRounds   int
	SyncRounds       int
	ElectionMessages int
	SyncMessages     int
}

// LastBatch returns the cost of the most recent DeleteBatch call.
func (s *Simulation) LastBatch() BatchStats { return s.lastBatch }

// DeleteBatch removes every listed processor and repairs the damage,
// overlapping the repairs of independent regions. It is behaviorally
// equivalent to deleting the nodes one at a time in ascending order; a
// batch of one is exactly Delete. Validation is atomic: either the
// whole batch is applied or no node is touched.
func (s *Simulation) DeleteBatch(vs []NodeID) error {
	if err := s.requireIdle("delete batch"); err != nil {
		return err
	}
	batch, err := s.validateBatch(vs)
	if err != nil {
		return err
	}
	defer s.beginBlocking()()
	switch len(batch) {
	case 0:
		s.lastBatch = BatchStats{}
		return nil
	case 1:
		if err := s.Delete(batch[0]); err != nil {
			return err
		}
		rs := s.last
		s.lastBatch = BatchStats{
			Batch: 1, Groups: 1, Waves: 1,
			Messages: rs.Messages, Rounds: rs.Rounds,
			TotalWords: rs.TotalWords, MaxWords: rs.MaxWords,
			MaxSentByNode:    rs.MaxSentByNode,
			QueuedWords:      rs.QueuedWords,
			MaxEdgeBacklog:   rs.MaxEdgeBacklog,
			CongestionRounds: rs.CongestionRounds,
			ElectionRounds:   rs.ElectionRounds,
			SyncRounds:       rs.SyncRounds,
			ElectionMessages: rs.ElectionMessages,
			SyncMessages:     rs.SyncMessages,
		}
		s.emit(Event{Kind: EventBatchDone, Batch: s.lastBatch})
		return nil
	}

	s.net.ResetStats()
	conflicts, claimAborted, err := s.claimPhase(batch)
	if err != nil {
		return fmt.Errorf("dist: delete batch: claim phase: %w", err)
	}
	claimStats := s.net.Stats()

	groups := groupBatch(batch, conflicts)
	waves := 0
	for _, g := range groups {
		if len(g) > waves {
			waves = len(g)
		}
	}
	// Execute through the open-loop engine: each group becomes a chain
	// of deletions, every member waiting on the in-band completion of
	// its predecessor and launched by that repair's finishing leader
	// (leader-to-leader handoff). Chains of different groups pipeline
	// independently — no driver barrier between waves.
	submitRound := s.net.Round()
	for _, g := range groups {
		for i, v := range g {
			po := &pendingOp{
				op: Op{Kind: OpDelete, V: v}, submitRound: submitRound,
				chain: true, after: noNode,
			}
			if i > 0 {
				po.after = g[i-1]
			}
			s.pending = append(s.pending, po)
		}
	}
	s.admit()
	if err := s.Drain(); err != nil {
		return fmt.Errorf("dist: delete batch: %w", err)
	}

	st := s.net.Stats()
	s.lastBatch = BatchStats{
		Batch:            len(batch),
		Groups:           len(groups),
		Waves:            waves,
		Conflicts:        len(conflicts),
		ClaimMessages:    claimStats.Messages,
		ClaimRounds:      claimStats.Rounds,
		ClaimAborted:     claimAborted,
		Messages:         st.Messages,
		Rounds:           st.Rounds,
		TotalWords:       st.TotalWords,
		MaxWords:         st.MaxWords,
		MaxSentByNode:    st.MaxSentByNode,
		QueuedWords:      st.QueuedWords,
		MaxEdgeBacklog:   st.MaxEdgeBacklog,
		CongestionRounds: st.CongestionRounds,
		ElectionRounds:   st.ElectionRounds,
		SyncRounds:       st.SyncRounds,
		ElectionMessages: st.ElectionMessages,
		SyncMessages:     st.SyncMessages,
	}
	s.emit(Event{Kind: EventBatchDone, Batch: s.lastBatch})
	return nil
}

// validateBatch checks the batch atomically — every node live, no
// duplicates — and returns it in canonical ascending order.
func (s *Simulation) validateBatch(vs []NodeID) ([]NodeID, error) {
	batch := append([]NodeID(nil), vs...)
	sort.Slice(batch, func(i, j int) bool { return batch[i] < batch[j] })
	for i, v := range batch {
		if i > 0 && batch[i-1] == v {
			return nil, fmt.Errorf("dist: delete batch: duplicate node %d", v)
		}
		if !s.Alive(v) {
			return nil, fmt.Errorf("dist: delete batch: node %d is not a live node", v)
		}
	}
	return batch, nil
}

// claimPhase runs the read-only conflict discovery: mark every member
// dying, notify every affected processor, let the notified set elect
// the batch coordinator by knockout tournament, launch every member's
// claim walks, and collect the conflict pairs the collisions report.
// The claim marks and election state are transient; the batch
// synchronizer clears them (and the coordinator scratch) before
// execution begins — the paper's zero-word timer convention.
//
// The coordinator is NOT announced by the driver: the affected
// processors — dying members included — elect the smallest ID among
// themselves over a will-laid BT (msgClaimElect/Champ/Coord), and
// claim processing is buffered until the winner is known. Dying
// members answer their notifications with direct conflict reports, so
// every conflict pair reaches the coordinator in-band; its union-find
// over the K members computes the early-abort decision — the batch has
// become one conflict group, every remaining claim message is moot —
// which the synchronizer only enacts (dropping the undelivered
// traffic) when the coordinator flags it. On a pathological burst
// whose members are pairwise adjacent the driver-visible adjacency
// alone decides this before a single claim message is sent.
func (s *Simulation) claimPhase(batch []NodeID) (conflicts map[[2]NodeID]struct{}, aborted bool, err error) {
	inBatch := make(map[NodeID]struct{}, len(batch))
	for _, v := range batch {
		inBatch[v] = struct{}{}
		s.procs[v].dying = true
	}

	// The union of every member's physical neighborhood — the claim
	// phase's notified set — with, per target, the members it must
	// probe for (ascending, since batch is sorted).
	affected := make(map[NodeID][]NodeID)
	for _, v := range batch {
		for x := range s.affectedBy(v) {
			affected[x] = append(affected[x], v)
		}
	}
	union := make([]NodeID, 0, len(affected))
	for x := range affected {
		union = append(union, x)
	}
	sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })

	defer func() {
		for _, v := range batch {
			if p, ok := s.procs[v]; ok {
				p.dying = false
			}
		}
		for _, p := range s.claimers.take() {
			p.claims = nil
		}
		for _, x := range union {
			if p, ok := s.procs[x]; ok {
				p.claimEl = nil
			}
		}
	}()

	conflicts = make(map[[2]NodeID]struct{})
	addConflict := func(a, b NodeID) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		conflicts[[2]NodeID{a, b}] = struct{}{}
	}
	// Direct member-member conflicts are adjacency, known the moment
	// the notifications are drawn up (each member's neighbors know both
	// ends died); the driver uses them for the no-traffic fast path,
	// and the dying members re-derive them in-band for the coordinator.
	for x, vs := range affected {
		if _, member := inBatch[x]; member {
			for _, v := range vs {
				addConflict(x, v)
			}
		}
	}
	oneGroup := func() bool { return len(groupBatch(batch, conflicts)) == 1 }
	if s.claimAbort && oneGroup() {
		// Adjacency alone already chains the whole batch together; skip
		// the claim traffic entirely.
		return conflicts, true, nil
	}
	if len(union) == 0 {
		// Every member is isolated: nothing to probe, no conflicts
		// beyond the direct ones (of which there are none).
		return conflicts, false, nil
	}

	// Lay the election BT over the notified set in descending ID order
	// (the same will convention as BT_v) and deliver, per target, its
	// tree slot plus one claim notification per probing member. The
	// tournament winner — the smallest notified ID — becomes the
	// coordinator; the driver knows who that will be (it laid the
	// tree), which is where it later reads the conflicts back.
	coord := union[0]
	s.layBT(union, func(x, parent, left, right NodeID) {
		s.net.Send(x, x, msgClaimElect{
			BTParent: parent, BTLeft: left, BTRight: right, K: len(batch),
		}, wordsClaimElect)
		for _, v := range affected[x] {
			s.net.Send(x, x, msgClaimDeath{V: v}, wordsClaimDeath)
		}
	})
	if !s.claimAbort {
		if err := s.run(); err != nil {
			return nil, false, err
		}
		s.foldCoordConflicts(coord, addConflict)
		return conflicts, false, nil
	}

	// Step manually so the synchronizer can enact the coordinator's
	// abort between rounds. The decision itself is computed in-band:
	// the coordinator's union-find flags `decided` the moment the
	// reported pairs union all K members. Parallel delivery is
	// round-identical to sequential, so the abort round — and with it
	// the batch's stats — is the same in both modes.
	bound := s.roundBound()
	for rounds := 0; !s.netQuiet(); rounds++ {
		if rounds >= bound {
			return nil, false, fmt.Errorf("claim discovery not quiescent after %d rounds", bound)
		}
		s.step()
		if cp := s.procs[coord]; cp.batch != nil && cp.batch.decided {
			// The abort drops the audit layer's standing ticks along with
			// the moot claim traffic; re-arm them or netQuiet drifts.
			s.net.DropPending()
			s.reArmAuditTicks()
			aborted = true
			break
		}
	}
	s.foldCoordConflicts(coord, addConflict)
	s.drainPhys() // claim walks log no edits; drained for symmetry with run
	return conflicts, aborted, nil
}

// foldCoordConflicts merges the batch coordinator's accumulated
// conflict reports into the synchronizer's set and clears the scratch
// so nothing leaks into a later batch's discovery.
func (s *Simulation) foldCoordConflicts(coord NodeID, addConflict func(a, b NodeID)) {
	if cp := s.procs[coord]; cp.batch != nil {
		for pair := range cp.batch.conflicts {
			addConflict(pair[0], pair[1])
		}
		cp.batch = nil
	}
}

// groupBatch partitions the batch into conflict groups (connected
// components of the conflict pairs), each group sorted ascending —
// the canonical serialization order — and the groups ordered by their
// smallest member.
func groupBatch(batch []NodeID, conflicts map[[2]NodeID]struct{}) [][]NodeID {
	parent := make(map[NodeID]NodeID, len(batch))
	for _, v := range batch {
		parent[v] = v
	}
	var find func(v NodeID) NodeID
	find = func(v NodeID) NodeID {
		if parent[v] != v {
			parent[v] = find(parent[v])
		}
		return parent[v]
	}
	for pair := range conflicts {
		a, b := find(pair[0]), find(pair[1])
		if a != b {
			if a > b {
				a, b = b, a
			}
			parent[b] = a
		}
	}
	members := make(map[NodeID][]NodeID)
	for _, v := range batch { // batch is sorted, so groups come out sorted
		r := find(v)
		members[r] = append(members[r], v)
	}
	roots := make([]NodeID, 0, len(members))
	for r := range members {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	groups := make([][]NodeID, 0, len(roots))
	for _, r := range roots {
		groups = append(groups, members[r])
	}
	return groups
}
