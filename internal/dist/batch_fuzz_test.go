package dist

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// FuzzBatchSchedule aims adversarial deletion batches at the region-
// conflict detector: byte-driven batches that deliberately pick
// clusters of adjacent nodes (and nodes simulating each other's
// helpers) so their damage walks collide on shared records. Whatever
// the collision pattern, the batch must neither deadlock (the
// quiescence bound errors out), double-strip (the epoch guard on the
// Breakflag panics), nor diverge from the sequential reference.
//
// Byte encoding: each op byte either inserts (high bit set, neighbors
// from the low bits) or seeds a deletion batch; a batch consumes the
// seed byte (anchor node + batch size) and grows around the anchor by
// taking physically-nearby live nodes — the worst case for walk
// collisions — plus every third member drawn far away to mix in
// independent regions.
func FuzzBatchSchedule(f *testing.F) {
	f.Add([]byte{0x00, 0x23, 0x11})
	f.Add([]byte{0x47, 0x81, 0x03, 0x62})
	f.Add([]byte{0x90, 0x91, 0x30, 0x92, 0x15, 0x00})
	f.Add([]byte{0xff, 0x7f, 0x3f, 0x1f})
	// Termination-detection edge cases: a max-size lopsided batch whose
	// small epochs finish while the big one is still electing...
	f.Add([]byte{0x7f, 0x70, 0x10})
	// ...repairs completing during an in-flight election after churn
	// thinned the grid (singleton regions next to deep RT damage)...
	f.Add([]byte{0x05, 0x0a, 0x03, 0x75, 0x20})
	// ...and batch epochs finishing out of order across waves (inserts
	// grow fresh leaves whose repairs are trivial one-participant runs).
	f.Add([]byte{0x81, 0x82, 0x7c, 0x00, 0x3d})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 48 {
			data = data[:48]
		}
		g0 := graph.Grid(4, 4) // 16 nodes, ids 0..15
		s := NewSimulation(g0)
		s.SetParallel(true)
		e := core.NewEngine(g0)
		nextID := NodeID(200)
		for _, b := range data {
			live := s.LiveNodes()
			if len(live) == 0 {
				break
			}
			if b&0x80 != 0 {
				v := nextID
				nextID++
				nbrs := []NodeID{live[int(b&0x3f)%len(live)]}
				if b&0x40 != 0 {
					other := live[int(b>>3&0x0f)%len(live)]
					if other != nbrs[0] {
						nbrs = append(nbrs, other)
					}
				}
				if err := s.Insert(v, nbrs); err != nil {
					t.Fatalf("dist insert: %v", err)
				}
				if err := e.Insert(v, nbrs); err != nil {
					t.Fatalf("core insert: %v", err)
				}
				continue
			}
			anchor := live[int(b&0x0f)%len(live)]
			k := 1 + int(b>>4&0x07)
			batch := collidingBatch(s, anchor, live, k)
			if err := s.DeleteBatch(batch); err != nil {
				t.Fatalf("dist delete batch %v: %v", batch, err)
			}
			if err := e.DeleteBatch(batch); err != nil {
				t.Fatalf("core delete batch %v: %v", batch, err)
			}
			if !s.Physical().Equal(e.Physical()) {
				t.Fatalf("batch %v: healed graphs diverge", batch)
			}
		}
		if err := s.Verify(); err != nil {
			t.Fatal(err)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// collidingBatch grows a batch around anchor by BFS over the current
// physical network — maximizing shared helpers between the members'
// repairs — mixing in a far-away node every third member.
func collidingBatch(s *Simulation, anchor NodeID, live []NodeID, k int) []NodeID {
	phys := s.Physical()
	order := phys.BFSOrder(anchor)
	batch := []NodeID{anchor}
	seen := map[NodeID]struct{}{anchor: {}}
	far := len(live) - 1
	for _, v := range order {
		if len(batch) >= k {
			break
		}
		if _, dup := seen[v]; dup {
			continue
		}
		if len(batch)%3 == 2 {
			// Every third member: the live node farthest by ID still
			// unused, pulling in an (often) independent region.
			for far >= 0 {
				w := live[far]
				far--
				if _, dup := seen[w]; !dup {
					batch = append(batch, w)
					seen[w] = struct{}{}
					break
				}
			}
			continue
		}
		batch = append(batch, v)
		seen[v] = struct{}{}
	}
	return batch
}
