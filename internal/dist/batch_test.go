package dist

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// Differential equivalence for batched deletions: dist.DeleteBatch
// overlaps repairs of independent regions, core.DeleteBatch applies
// the same deletions sequentially in canonical order, and the healed
// graphs must be identical. Batch tests run in the parallel delivery
// mode by default — concurrent repairs are the execution model the
// batch pipeline exists for.

// pickBatch draws k distinct live nodes.
func pickBatch(live []NodeID, rng *rand.Rand, k int) []NodeID {
	if k > len(live) {
		k = len(live)
	}
	out := make([]NodeID, 0, k)
	for _, idx := range rng.Perm(len(live))[:k] {
		out = append(out, live[idx])
	}
	return out
}

// replayBatches drives random insert/batch-delete schedules through a
// fresh dist.Simulation (parallel delivery) and core.Engine over g0,
// asserting equal healed graphs after every operation and full
// revalidation at the end.
func replayBatches(t *testing.T, g0 *graph.Graph, ops, maxK int, seed int64) {
	t.Helper()
	s := NewSimulation(g0)
	s.SetParallel(true)
	e := core.NewEngine(g0)
	rng := rand.New(rand.NewSource(seed))
	nextID := NodeID(20_000)

	for i := 0; i < ops; i++ {
		live := s.LiveNodes()
		if len(live) == 0 {
			break
		}
		if rng.Float64() < 0.25 {
			v := nextID
			nextID++
			k := 1 + rng.Intn(3)
			if k > len(live) {
				k = len(live)
			}
			var nbrs []NodeID
			for _, idx := range rng.Perm(len(live))[:k] {
				nbrs = append(nbrs, live[idx])
			}
			if err := s.Insert(v, nbrs); err != nil {
				t.Fatalf("op %d: dist insert: %v", i, err)
			}
			if err := e.Insert(v, nbrs); err != nil {
				t.Fatalf("op %d: core insert: %v", i, err)
			}
		} else {
			batch := pickBatch(live, rng, 1+rng.Intn(maxK))
			if err := s.DeleteBatch(batch); err != nil {
				t.Fatalf("op %d: dist delete batch %v: %v", i, batch, err)
			}
			if err := e.DeleteBatch(batch); err != nil {
				t.Fatalf("op %d: core delete batch %v: %v", i, batch, err)
			}
			bs := s.LastBatch()
			if bs.Batch != len(batch) {
				t.Fatalf("op %d: batch stats report %d deletions, want %d", i, bs.Batch, len(batch))
			}
		}
		if !s.Physical().Equal(e.Physical()) {
			t.Fatalf("op %d: healed graphs diverge (dist %v vs core %v)",
				i, s.Physical(), e.Physical())
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("dist verify: %v", err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("core invariants: %v", err)
	}
	if !s.GPrime().Equal(e.GPrime()) {
		t.Fatal("G' diverged")
	}
}

func TestBatchEquivalenceWithCore(t *testing.T) {
	topologies := []struct {
		name string
		gen  func(rng *rand.Rand) *graph.Graph
		ops  int
	}{
		{"star", func(*rand.Rand) *graph.Graph { return graph.Star(24) }, 12},
		{"path", func(*rand.Rand) *graph.Graph { return graph.Path(24) }, 12},
		{"grid", func(*rand.Rand) *graph.Graph { return graph.Grid(5, 5) }, 12},
		{"gnp", func(rng *rand.Rand) *graph.Graph { return graph.GNP(32, 0.15, rng) }, 14},
		{"powerlaw", func(rng *rand.Rand) *graph.Graph { return graph.PreferentialAttachment(28, 2, rng) }, 14},
	}
	for _, topo := range topologies {
		topo := topo
		t.Run(topo.name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				g0 := topo.gen(rand.New(rand.NewSource(300 + seed)))
				replayBatches(t, g0, topo.ops, 4, 13*seed+3)
			}
		})
	}
}

// TestBatchGrindsDown deletes the whole network in batches, hitting
// the late game where most of the graph is Reconstruction Trees and
// almost every batch conflicts internally.
func TestBatchGrindsDown(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g0 := graph.GNP(28, 0.2, rng)
	s := NewSimulation(g0)
	s.SetParallel(true)
	e := core.NewEngine(g0)
	for {
		live := s.LiveNodes()
		if len(live) == 0 {
			break
		}
		batch := pickBatch(live, rng, 1+rng.Intn(5))
		if err := s.DeleteBatch(batch); err != nil {
			t.Fatalf("dist delete batch %v: %v", batch, err)
		}
		if err := e.DeleteBatch(batch); err != nil {
			t.Fatalf("core delete batch %v: %v", batch, err)
		}
		if !s.Physical().Equal(e.Physical()) {
			t.Fatalf("after batch %v: healed graphs diverge", batch)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("after batch %v: %v", batch, err)
		}
	}
}

// TestBatchOfOneBitIdentical runs the same deletion through Delete on
// one simulation and DeleteBatch on an identical twin: the recovery
// stats — message counts, rounds, words, everything — and the healed
// graphs must match exactly, because a batch of one IS the Delete
// path.
func TestBatchOfOneBitIdentical(t *testing.T) {
	g0 := graph.PreferentialAttachment(32, 2, rand.New(rand.NewSource(21)))
	a := NewSimulation(g0)
	b := NewSimulation(g0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 12; i++ {
		live := a.LiveNodes()
		if len(live) == 0 {
			break
		}
		v := live[rng.Intn(len(live))]
		if err := a.Delete(v); err != nil {
			t.Fatalf("delete %d: %v", v, err)
		}
		if err := b.DeleteBatch([]NodeID{v}); err != nil {
			t.Fatalf("delete batch [%d]: %v", v, err)
		}
		if a.LastRecovery() != b.LastRecovery() {
			t.Fatalf("delete %d: recovery stats diverge: %+v vs %+v",
				v, a.LastRecovery(), b.LastRecovery())
		}
		bs := b.LastBatch()
		rs := a.LastRecovery()
		if bs.Messages != rs.Messages || bs.Rounds != rs.Rounds || bs.TotalWords != rs.TotalWords {
			t.Fatalf("delete %d: batch stats %+v disagree with recovery stats %+v", v, bs, rs)
		}
		if !a.Physical().Equal(b.Physical()) {
			t.Fatalf("delete %d: healed graphs diverge", v)
		}
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchValidationAtomic: a batch containing a dead node or a
// duplicate must reject without touching anything.
func TestBatchValidationAtomic(t *testing.T) {
	g0 := graph.Grid(4, 4)
	s := NewSimulation(g0)
	if err := s.Delete(5); err != nil {
		t.Fatal(err)
	}
	before := s.Physical()
	if err := s.DeleteBatch([]NodeID{1, 5, 2}); err == nil {
		t.Fatal("batch containing a dead node accepted")
	}
	if err := s.DeleteBatch([]NodeID{1, 2, 1}); err == nil {
		t.Fatal("batch containing a duplicate accepted")
	}
	if !s.Physical().Equal(before) {
		t.Fatal("rejected batch mutated the network")
	}
	if err := s.DeleteBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// disjointStars builds k stars of degree d joined in a cycle by their
// outermost ray tips, so the graph is connected but the k hubs have
// vertex-disjoint neighborhoods at distance ≥ 4 from each other:
// deleting all hubs in one batch damages k fully independent regions.
func disjointStars(k, d int) (*graph.Graph, []NodeID) {
	g := graph.New()
	hubs := make([]NodeID, k)
	var bridges []NodeID
	id := NodeID(0)
	for i := 0; i < k; i++ {
		hub := id
		id++
		g.AddNode(hub)
		hubs[i] = hub
		var firstRay NodeID
		for j := 0; j < d; j++ {
			ray := id
			id++
			g.AddEdge(hub, ray)
			if j == 0 {
				firstRay = ray
			}
		}
		// A two-hop chain off the first ray keeps the inter-star
		// bridges far away from every hub's neighborhood.
		a, b := id, id+1
		id += 2
		g.AddEdge(firstRay, a)
		g.AddEdge(a, b)
		bridges = append(bridges, b)
	}
	for i := range bridges {
		g.AddEdge(bridges[i], bridges[(i+1)%len(bridges)])
	}
	return g, hubs
}

// TestDisjointBatchRoundScaling is the throughput claim: deleting k
// hubs with vertex-disjoint damaged regions in one batch must cost at
// most twice the rounds of the most expensive single hub deletion —
// the repairs overlap instead of running back to back — and the batch
// must resolve them as k independent groups in one wave.
func TestDisjointBatchRoundScaling(t *testing.T) {
	const d = 8
	single := 0
	{
		g, hubs := disjointStars(1, d)
		s := NewSimulation(g)
		s.SetParallel(true)
		if err := s.Delete(hubs[0]); err != nil {
			t.Fatal(err)
		}
		single = s.LastRecovery().Rounds
		if single == 0 {
			t.Fatal("single hub deletion reported zero rounds")
		}
	}
	for _, k := range []int{2, 4, 8, 16} {
		g, hubs := disjointStars(k, d)
		s := NewSimulation(g)
		s.SetParallel(true)
		e := core.NewEngine(g)
		if err := s.DeleteBatch(hubs); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := e.DeleteBatch(hubs); err != nil {
			t.Fatalf("k=%d: core: %v", k, err)
		}
		bs := s.LastBatch()
		if bs.Groups != k {
			t.Errorf("k=%d: %d conflict groups, want %d independent ones (conflicts: %d)",
				k, bs.Groups, k, bs.Conflicts)
		}
		if bs.Waves != 1 {
			t.Errorf("k=%d: %d waves, want 1", k, bs.Waves)
		}
		// The claim phase now pays for its coordinator election in-band
		// (2·floor(log2 u) rounds over the union of the notified sets,
		// which grows with k), so the throughput claim is about the
		// execution rounds: repairs of disjoint regions must overlap.
		if exec := bs.Rounds - bs.ClaimRounds; exec > 2*single {
			t.Errorf("k=%d: batch execution took %d rounds (of %d total, %d claim), want <= 2x single deletion (%d): disjoint repairs must overlap",
				k, exec, bs.Rounds, bs.ClaimRounds, single)
		}
		if !s.Physical().Equal(e.Physical()) {
			t.Fatalf("k=%d: healed graphs diverge", k)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

// TestCollidingBatchSerializes deletes a hub together with two of its
// direct neighbors: all three repairs share a region, so the conflict
// detector must fold them into one group and serialize three waves —
// and the result must still match the sequential reference.
func TestCollidingBatchSerializes(t *testing.T) {
	g0 := graph.Star(16)
	s := NewSimulation(g0)
	s.SetParallel(true)
	e := core.NewEngine(g0)
	batch := []NodeID{0, 1, 2}
	if err := s.DeleteBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := e.DeleteBatch(batch); err != nil {
		t.Fatal(err)
	}
	bs := s.LastBatch()
	if bs.Groups != 1 {
		t.Errorf("hub plus two rays formed %d groups, want 1", bs.Groups)
	}
	if bs.Waves != 3 {
		t.Errorf("hub plus two rays ran %d waves, want 3", bs.Waves)
	}
	if !s.Physical().Equal(e.Physical()) {
		t.Fatal("healed graphs diverge")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchSequentialVsParallelDelivery: both delivery modes must
// produce identical graphs and stats for the same batch schedule.
func TestBatchSequentialVsParallelDelivery(t *testing.T) {
	g0 := graph.PreferentialAttachment(32, 3, rand.New(rand.NewSource(31)))
	seq := NewSimulation(g0)
	par := NewSimulation(g0)
	par.SetParallel(true)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 6; i++ {
		live := seq.LiveNodes()
		if len(live) == 0 {
			break
		}
		batch := pickBatch(live, rng, 1+rng.Intn(4))
		if err := seq.DeleteBatch(batch); err != nil {
			t.Fatalf("sequential: %v", err)
		}
		if err := par.DeleteBatch(batch); err != nil {
			t.Fatalf("parallel: %v", err)
		}
		if seq.LastBatch() != par.LastBatch() {
			t.Fatalf("batch %v: stats diverge between delivery modes: %+v vs %+v",
				batch, seq.LastBatch(), par.LastBatch())
		}
		if !seq.Physical().Equal(par.Physical()) {
			t.Fatalf("batch %v: graphs diverge between delivery modes", batch)
		}
	}
}

// TestCoreBatchMatchesSequentialDeletes pins the reference semantics
// itself: DeleteBatch on the engine equals sorted one-at-a-time
// Deletes.
func TestCoreBatchMatchesSequentialDeletes(t *testing.T) {
	g0 := graph.GNP(24, 0.2, rand.New(rand.NewSource(6)))
	a := core.NewEngine(g0)
	b := core.NewEngine(g0)
	batch := []NodeID{7, 3, 19, 11}
	if err := a.DeleteBatch(batch); err != nil {
		t.Fatal(err)
	}
	for _, v := range []NodeID{3, 7, 11, 19} {
		if err := b.Delete(v); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Physical().Equal(b.Physical()) {
		t.Fatal("core batch diverges from canonical-order sequential deletes")
	}
	if a.LastBatchRepair().Batch != 4 {
		t.Fatalf("batch stats: %+v", a.LastBatchRepair())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
