package dist

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// BenchmarkBatchedDelete measures the batched-deletion pipeline on a
// powerlaw-1024 network: one batch of k random live nodes per
// iteration, fresh network each time (repair cost depends on
// accumulated Reconstruction Trees, so iterations must be
// comparable). The custom metrics expose what the throughput claim is
// about: rounds per batch must grow with conflicts, not with k.
// Baselines live in BENCH_dist.json at the repo root.
func BenchmarkBatchedDelete(b *testing.B) {
	base := graph.PreferentialAttachment(1024, 3, rand.New(rand.NewSource(42)))
	for _, k := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var rounds, msgs, waves float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := NewSimulation(base)
				rng := rand.New(rand.NewSource(int64(i)))
				batch := pickBatch(s.LiveNodes(), rng, k)
				b.StartTimer()
				if err := s.DeleteBatch(batch); err != nil {
					b.Fatal(err)
				}
				bs := s.LastBatch()
				rounds += float64(bs.Rounds)
				msgs += float64(bs.Messages)
				waves += float64(bs.Waves)
			}
			n := float64(b.N)
			b.ReportMetric(rounds/n, "rounds/batch")
			b.ReportMetric(msgs/n, "msgs/batch")
			b.ReportMetric(waves/n, "waves/batch")
		})
	}
}

// BenchmarkPhysicalSnapshot pins the win of the incrementally
// maintained physical graph: snapshotting it versus reconstructing it
// from every record of every processor, on a churned network.
func BenchmarkPhysicalSnapshot(b *testing.B) {
	build := func() *Simulation {
		s := NewSimulation(graph.PreferentialAttachment(2048, 3, rand.New(rand.NewSource(7))))
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < 64; i++ {
			live := s.LiveNodes()
			if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
				b.Fatal(err)
			}
		}
		return s
	}
	b.Run("incremental", func(b *testing.B) {
		s := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s.Physical().NumNodes() == 0 {
				b.Fatal("empty snapshot")
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		s := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s.rebuildPhysical().NumNodes() == 0 {
				b.Fatal("empty snapshot")
			}
		}
	})
}
