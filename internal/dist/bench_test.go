package dist

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// BenchmarkBatchedDelete measures the batched-deletion pipeline on a
// powerlaw-1024 network: one batch of k random live nodes per
// iteration, fresh network each time (repair cost depends on
// accumulated Reconstruction Trees, so iterations must be
// comparable). The custom metrics expose what the throughput claim is
// about: rounds per batch must grow with conflicts, not with k.
// Baselines live in BENCH_dist.json at the repo root.
func BenchmarkBatchedDelete(b *testing.B) {
	base := graph.PreferentialAttachment(1024, 3, rand.New(rand.NewSource(42)))
	for _, k := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var rounds, msgs, waves, sync, election float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := NewSimulation(base)
				rng := rand.New(rand.NewSource(int64(i)))
				batch := pickBatch(s.LiveNodes(), rng, k)
				b.StartTimer()
				if err := s.DeleteBatch(batch); err != nil {
					b.Fatal(err)
				}
				bs := s.LastBatch()
				rounds += float64(bs.Rounds)
				msgs += float64(bs.Messages)
				waves += float64(bs.Waves)
				sync += float64(bs.SyncRounds)
				election += float64(bs.ElectionRounds)
			}
			n := float64(b.N)
			b.ReportMetric(rounds/n, "rounds/batch")
			b.ReportMetric(msgs/n, "msgs/batch")
			b.ReportMetric(waves/n, "waves/batch")
			b.ReportMetric(sync/n, "syncrounds/batch")
			b.ReportMetric(election/n, "electionrounds/batch")
		})
	}
}

// BenchmarkBandwidthRepair measures one hub repair on a powerlaw-1024
// network under per-edge bandwidth caps: B=0 is the unlimited paper
// model, the finite caps exercise the congestion model and the
// leader's paced instruction fan-out. The deleted hub is the same
// deterministic node every iteration (fresh network each time), so the
// message count is exact and the regression gate in CI can hold it to
// a tight tolerance; rounds grow as B shrinks while messages must not
// move at all.
func BenchmarkBandwidthRepair(b *testing.B) {
	base := graph.PreferentialAttachment(1024, 3, rand.New(rand.NewSource(42)))
	// Churn a template once to find the post-churn physical hub; every
	// iteration replays the same churn, so the state under measurement
	// is identical each time. Deleting a hub of the *churned* network
	// hits existing Reconstruction Trees: neighbors answer the death
	// notification with several records' worth of traffic on the same
	// leader-bound edges, which is exactly the congestion under test.
	churn := func() *Simulation {
		s := NewSimulation(base)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 32; i++ {
			live := s.LiveNodes()
			if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
				b.Fatal(err)
			}
		}
		return s
	}
	hub, hubDeg := graph.NodeID(0), -1
	{
		s := churn()
		phys := s.Physical()
		for _, v := range s.LiveNodes() {
			if d := phys.Degree(v); d > hubDeg {
				hub, hubDeg = v, d
			}
		}
	}
	for _, bw := range []struct {
		name  string
		words int
	}{
		{"B=inf", 0},
		{"B=4", 4},
		{"B=1", 1},
	} {
		b.Run(bw.name, func(b *testing.B) {
			b.ReportAllocs()
			var rounds, msgs, congested, sync, election float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := churn()
				s.SetBandwidth(bw.words)
				b.StartTimer()
				if err := s.Delete(hub); err != nil {
					b.Fatal(err)
				}
				rs := s.LastRecovery()
				rounds += float64(rs.Rounds)
				msgs += float64(rs.Messages)
				congested += float64(rs.CongestionRounds)
				sync += float64(rs.SyncRounds)
				election += float64(rs.ElectionRounds)
			}
			n := float64(b.N)
			b.ReportMetric(rounds/n, "rounds/repair")
			b.ReportMetric(msgs/n, "msgs/repair")
			b.ReportMetric(congested/n, "congested/repair")
			b.ReportMetric(sync/n, "syncrounds/repair")
			b.ReportMetric(election/n, "electionrounds/repair")
		})
	}
}

// BenchmarkAsyncChurn measures the open-loop engine's pipelined
// deletions on a powerlaw-1024 network: 16 random deletions submitted
// up front, drained once — repairs of disjoint regions overlap and
// colliding ones hand off leader-to-leader, so rounds/drain must track
// the deepest serialization chain, not the deletion count. The
// closed-loop twin (the same 16 deletions applied blocking, one at a
// time) is reported alongside as rounds/closed for the pipelining
// headline; message counts are deterministic at a pinned -benchtime
// and gated like the other two benchmarks.
func BenchmarkAsyncChurn(b *testing.B) {
	base := graph.PreferentialAttachment(1024, 3, rand.New(rand.NewSource(42)))
	const k = 16
	b.ReportAllocs()
	var rounds, msgs, closed, inflight float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := rand.New(rand.NewSource(int64(i)))
		s := NewSimulation(base)
		batch := pickBatch(s.LiveNodes(), rng, k)
		twin := NewSimulation(base)
		closedRounds := 0
		for _, v := range batch {
			if err := twin.Delete(v); err != nil {
				b.Fatal(err)
			}
			closedRounds += twin.LastRecovery().Rounds
		}
		closed += float64(closedRounds)
		s.net.ResetStats()
		b.StartTimer()
		var ops []Op
		for _, v := range batch {
			ops = append(ops, Op{Kind: OpDelete, V: v})
		}
		if err := s.Submit(ops...); err != nil {
			b.Fatal(err)
		}
		peak := s.InFlight()
		r := 0
		for !s.Idle() {
			s.Tick()
			r++
			if f := s.InFlight(); f > peak {
				peak = f
			}
		}
		b.StopTimer()
		rounds += float64(r)
		inflight += float64(peak)
		// The drain's true message total comes from the network, not
		// from summing per-repair windows (overlapping repairs share
		// windows, so event sums would double-count).
		msgs += float64(s.net.Stats().Messages)
		for _, ev := range s.Poll() {
			if ev.Kind == EventOpRejected {
				b.Fatalf("rejected: %v", ev.Err)
			}
		}
		if !s.Physical().Equal(twin.Physical()) {
			b.Fatal("async healed graph diverges from closed-loop twin")
		}
		b.StartTimer()
	}
	n := float64(b.N)
	b.ReportMetric(rounds/n, "rounds/drain")
	b.ReportMetric(closed/n, "rounds/closed")
	b.ReportMetric(msgs/n, "msgs/drain")
	b.ReportMetric(inflight/n, "peakinflight/drain")
}

// BenchmarkCoalescedChurn is the coalescing admission queue's headline:
// the same churn-heavy schedule (cancel and merge bait mixed with plain
// ops, from genCoalesceSchedule) drained with the coalescer off and on.
// Logical throughput is ops/drain over ns/op; the wire cost is
// msgs/drain from the network's own counter. The schedule is seeded by
// the iteration index, so at a pinned -benchtime every count is
// deterministic and the CI gate holds msgs/drain and the coal* decision
// counters to the tight message tolerance — the on/off msgs gap is the
// recorded saving, and EXP-COALESCE asserts the ≥30% reduction on the
// same workload shape.
func BenchmarkCoalescedChurn(b *testing.B) {
	base := graph.PreferentialAttachment(1024, 3, rand.New(rand.NewSource(42)))
	const ops = 48
	for _, mode := range []struct {
		name string
		cfg  *CoalesceConfig
	}{
		{"off", nil},
		{"on", &CoalesceConfig{Window: 4}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var msgs, logical, cancelled, merged, saved float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				schedule := genCoalesceSchedule(base, ops, int64(i))
				s := NewSimulation(base)
				if mode.cfg != nil {
					s.SetCoalescing(*mode.cfg)
				}
				s.net.ResetStats()
				b.StartTimer()
				for _, so := range schedule {
					if err := s.Submit(so.op); err != nil {
						b.Fatal(err)
					}
					for r := 0; r < so.delay; r++ {
						s.Tick()
					}
				}
				if err := s.Drain(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				msgs += float64(s.net.Stats().Messages)
				logical += float64(len(schedule))
				for _, ev := range s.Poll() {
					if ev.Kind == EventOpRejected {
						b.Fatalf("rejected: %v", ev.Err)
					}
				}
				if mode.cfg != nil {
					st := s.CoalesceStats()
					cancelled += float64(st.Cancelled)
					merged += float64(st.Merged)
					saved += float64(st.MessagesSaved)
				}
				b.StartTimer()
			}
			n := float64(b.N)
			b.ReportMetric(msgs/n, "msgs/drain")
			b.ReportMetric(logical/n, "ops/drain")
			if mode.cfg != nil {
				b.ReportMetric(cancelled/n, "coalcancelled/drain")
				b.ReportMetric(merged/n, "coalmerged/drain")
				b.ReportMetric(saved/n, "coalsaved/drain")
			}
		})
	}
}

// BenchmarkPhysicalSnapshot pins the win of the incrementally
// maintained physical graph: snapshotting it versus reconstructing it
// from every record of every processor, on a churned network.
func BenchmarkPhysicalSnapshot(b *testing.B) {
	build := func() *Simulation {
		s := NewSimulation(graph.PreferentialAttachment(2048, 3, rand.New(rand.NewSource(7))))
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < 64; i++ {
			live := s.LiveNodes()
			if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
				b.Fatal(err)
			}
		}
		return s
	}
	b.Run("incremental", func(b *testing.B) {
		s := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s.Physical().NumNodes() == 0 {
				b.Fatal("empty snapshot")
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		s := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s.rebuildPhysical().NumNodes() == 0 {
				b.Fatal("empty snapshot")
			}
		}
	})
}
