package dist

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// Theorem 1.3 scaling: a deletion of a node with G′-degree d costs
// O(d log n) messages of size O(log n) bits and O(log d · log n) time.
// These tests pin the constants observed across scales so regressions
// in the protocol's asymptotics fail loudly.

// The message constant absorbs the per-fragment overhead (death
// notification, key probe, and strip each walk one O(log n) path even
// when d = 1), which dominates small-degree repairs.
const (
	msgConstant   = 24 // Messages <= msgConstant * d * log2(n)
	roundConstant = 10 // Rounds <= roundConstant * log2(d) * log2(n)
	wordConstant  = 16 // MaxWords <= wordConstant (words of O(log n) bits)
)

func log2AtLeast1(x int) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(float64(x))
}

func checkBounds(t *testing.T, rs RecoveryStats, nEver int) {
	t.Helper()
	if rs.DegreePrime == 0 {
		return
	}
	d := rs.DegreePrime
	logn := log2AtLeast1(nEver)
	if lim := msgConstant * float64(d) * logn; float64(rs.Messages) > lim {
		t.Fatalf("n=%d d=%d: %d messages > %.1f = %d·d·log2(n)", nEver, d, rs.Messages, lim, msgConstant)
	}
	if lim := roundConstant * log2AtLeast1(d) * logn; float64(rs.Rounds) > lim {
		t.Fatalf("n=%d d=%d: %d rounds > %.1f = %d·log2(d)·log2(n)", nEver, d, rs.Rounds, lim, roundConstant)
	}
	if rs.MaxWords > wordConstant {
		t.Fatalf("n=%d d=%d: message of %d words (want O(1) words of O(log n) bits, <= %d)",
			nEver, d, rs.MaxWords, wordConstant)
	}
}

// TestTheorem13Star deletes the hub of stars of growing size: the
// paper's worst single repair, d = n-1.
func TestTheorem13Star(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64, 128, 256, 512} {
		s := NewSimulation(graph.Star(n))
		if err := s.Delete(0); err != nil {
			t.Fatal(err)
		}
		checkBounds(t, s.LastRecovery(), n)
		// And keep attacking the repaired structure: delete whatever now
		// has the highest degree, twice.
		for i := 0; i < 2; i++ {
			phys := s.Physical()
			live := s.LiveNodes()
			best, bestDeg := live[0], -1
			for _, u := range live {
				if d := phys.Degree(u); d > bestDeg {
					best, bestDeg = u, d
				}
			}
			if err := s.Delete(best); err != nil {
				t.Fatal(err)
			}
			checkBounds(t, s.LastRecovery(), n)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestTheorem13GNP checks every repair of a long random-deletion
// campaign on sparse G(n,p) graphs.
func TestTheorem13GNP(t *testing.T) {
	for _, n := range []int{32, 64, 128, 256} {
		rng := rand.New(rand.NewSource(int64(n)))
		s := NewSimulation(graph.GNP(n, 4.0/float64(n), rng))
		for i := 0; i < n/2; i++ {
			live := s.LiveNodes()
			if len(live) == 0 {
				break
			}
			if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
				t.Fatal(err)
			}
			checkBounds(t, s.LastRecovery(), s.NumEver())
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestMaxWordsScaling pins the word bound across two orders of
// magnitude: the largest message must not grow with n at all (it is a
// constant number of O(log n)-bit scalars).
func TestMaxWordsScaling(t *testing.T) {
	worst := 0
	for _, n := range []int{8, 64, 512} {
		s := NewSimulation(graph.Star(n))
		if err := s.Delete(0); err != nil {
			t.Fatal(err)
		}
		if w := s.LastRecovery().MaxWords; w > worst {
			worst = w
		}
	}
	if worst > wordConstant {
		t.Fatalf("max message size %d words grows beyond the constant %d", worst, wordConstant)
	}
}
