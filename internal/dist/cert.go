package dist

import "fmt"

// The incremental connectivity certificate.
//
// Verify's last and most expensive obligation — live processors are
// connected in the actual network exactly when they are connected in G′
// — used to be checkable only by O(n) BFS sweeps, which made soak
// checkpoints at n ≥ 10⁵ cost more than the repairs between them. The
// certificate makes the delta pass prove the same property in O(1) from
// two incrementally maintained component trackers (graph.Components):
//
//	physCC — components of the maintained physical graph,
//	gpCC   — components of G′, with the live processors marked.
//
// Both trackers shadow every graph mutation at the mutation site
// (physAdd/physDel, insertNow, removeProcessor), riding the same edit-
// log drains the incremental physical graph uses, so keeping them
// current is O(region) per repair, not O(n) per checkpoint.
//
// The O(1) equivalence proof combines two facts:
//
//  1. Refinement: every physical edge materializes between processors
//     already connected in G′ (asserted at physAdd time, sticky in
//     certErr). Physical components therefore refine the G′ components
//     restricted to live nodes: each physical component lies inside one
//     live-restricted G′ component.
//  2. Count equality: physCC.Count() == gpCC.MarkedCount(). A
//     refinement with equally many parts IS the partition it refines,
//     so live processors are G′-connected exactly when they are
//     physically connected.
//
// The full Verify stays authoritative: it cross-checks each tracker
// against a from-scratch BFS partition (Components.Check) and still
// runs the independent checkConnectivity sweep, so a certificate bug
// can never vouch for itself. The audit layer treats the certificate as
// driver state it owns: a background sweep (auditCertSweep) re-checks
// the O(1) count equality plus a small round-robin batch of per-node
// label consistency each idle tick, and heals any detected corruption
// by rebuilding both trackers from the graphs.

// checkCertCounts is the O(1) connectivity-equivalence check: no sticky
// refinement violation, no tracker damage, and component counts equal.
func (s *Simulation) checkCertCounts() error {
	if s.certErr != nil {
		return s.certErr
	}
	if s.physCC.Damaged() {
		return fmt.Errorf("dist: certificate: physical component tracker damaged")
	}
	if s.gpCC.Damaged() {
		return fmt.Errorf("dist: certificate: G' component tracker damaged")
	}
	if pc, gc := s.physCC.Count(), s.gpCC.MarkedCount(); pc != gc {
		return fmt.Errorf("dist: certificate: %d physical components, %d live G' components", pc, gc)
	}
	return nil
}

// checkCertIncident verifies the certificate's labels are locally
// consistent around one processor: every incident physical edge joins
// same-labeled endpoints in physCC, and every incident G′ edge joins
// same-labeled endpoints in gpCC. A forged label (the CorruptCertificate
// mode) on any node with a neighbor fails here.
func (s *Simulation) checkCertIncident(p *processor) error {
	var err error
	s.phys.EachNeighbor(p.id, func(x NodeID) {
		if err == nil && !s.physCC.Same(p.id, x) {
			err = fmt.Errorf("dist: certificate: physical edge %d-%d crosses component labels", p.id, x)
		}
	})
	if err != nil {
		return err
	}
	s.gprime.EachNeighbor(p.id, func(x NodeID) {
		if err == nil && !s.gpCC.Same(p.id, x) {
			err = fmt.Errorf("dist: certificate: G' edge %d-%d crosses component labels", p.id, x)
		}
	})
	return err
}

// checkCertFull is the authoritative cross-check the full Verify runs:
// both trackers audited against from-scratch BFS partitions, plus the
// O(1) checks. O(n + m), like the rest of Verify.
func (s *Simulation) checkCertFull() error {
	if err := s.checkCertCounts(); err != nil {
		return err
	}
	if err := s.physCC.Check(); err != nil {
		return fmt.Errorf("dist: certificate (physical): %w", err)
	}
	if err := s.gpCC.Check(); err != nil {
		return fmt.Errorf("dist: certificate (G'): %w", err)
	}
	return nil
}

// certSweepBatch is how many processors the audit layer's certificate
// sweep label-checks per idle tick. Small and constant: the sweep is a
// background detector, not a checkpoint.
const certSweepBatch = 8

// auditCertSweep is the audit layer's guard over the certificate —
// driver-owned state the in-band record audit cannot see. Each idle
// tick it re-runs the O(1) count check and label-checks a round-robin
// batch of live processors; any detection heals by rebuilding both
// trackers from the graphs (the graphs themselves are covered by the
// record audit), counted like the phantom-footprint sweep's repairs.
func (s *Simulation) auditCertSweep() {
	if !s.auditOn || len(s.alive) == 0 {
		return
	}
	bad := s.checkCertCounts() != nil
	if !bad {
		n := len(s.sweepSeq)
		for scanned, checked := 0, 0; scanned < n && checked < certSweepBatch; scanned++ {
			if s.certCur >= n {
				s.certCur = 0
			}
			id := s.sweepSeq[s.certCur]
			s.certCur++
			p, ok := s.procs[id]
			if !ok {
				continue
			}
			if s.checkCertIncident(p) != nil {
				bad = true
				break
			}
			checked++
		}
	}
	if bad {
		s.physCC.Relabel()
		s.gpCC.Relabel()
		s.certErr = nil
		s.audStats.Mismatches++
		s.audStats.Repairs++
	}
}

// appendSample extends a verification worklist with up to sample extra
// live processors picked by a deterministic round-robin cursor over the
// insertion-order sequence (IDs are never reused, so the order is a
// pure function of the op history — satellite of the reproducibility
// fix: map-order picks made sampled-sweep failures non-replayable).
// The picked IDs are recorded in s.lastSample (reused buffer). The
// sequence is compacted in place once more than half its entries are
// dead, keeping the scan amortized O(sample).
func (s *Simulation) appendSample(procs []*processor, sample int) []*processor {
	s.lastSample = s.lastSample[:0]
	if sample <= 0 || len(s.alive) == 0 {
		return procs
	}
	if len(s.sweepSeq) > 2*len(s.alive)+16 {
		keep := s.sweepSeq[:0]
		for _, id := range s.sweepSeq {
			if _, ok := s.alive[id]; ok {
				keep = append(keep, id)
			}
		}
		s.sweepSeq = keep
		s.sweepCur, s.certCur = 0, 0
	}
	if sample > len(s.alive) {
		sample = len(s.alive)
	}
	n := len(s.sweepSeq)
	for scanned, taken := 0, 0; scanned < n && taken < sample; scanned++ {
		if s.sweepCur >= n {
			s.sweepCur = 0
		}
		id := s.sweepSeq[s.sweepCur]
		s.sweepCur++
		p, ok := s.procs[id]
		if !ok {
			continue
		}
		dup := false
		for _, q := range procs {
			if q == p {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		procs = append(procs, p)
		s.lastSample = append(s.lastSample, id)
		taken++
	}
	return procs
}

// LastSample returns the live processors the most recent VerifyDelta
// call opportunistically sampled, in pick order. The slice is reused by
// the next call; tests pinning cursor determinism copy it.
func (s *Simulation) LastSample() []NodeID { return s.lastSample }
