package dist

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// Differential harness for the incremental connectivity certificate:
// after EVERY operation of a mixed campaign, both component trackers
// are audited against from-scratch BFS partitions (checkCertFull wraps
// Components.Check) and the O(1) count-equality proof must agree with
// the independent O(n) connectivity sweep. Any drift between the
// incrementally maintained labels and the true partition fails here at
// the first operation that introduced it.

func certCampaign(t *testing.T, seed int64, n, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := NewSimulation(graph.PreferentialAttachment(n, 3, rng))
	nextID := NodeID(70_000)
	for i := 0; i < ops; i++ {
		live := s.LiveNodes()
		if len(live) == 0 {
			break
		}
		switch {
		case rng.Float64() < 0.35:
			v := nextID
			nextID++
			k := 1 + rng.Intn(3)
			if k > len(live) {
				k = len(live)
			}
			var nbrs []NodeID
			for _, idx := range rng.Perm(len(live))[:k] {
				nbrs = append(nbrs, live[idx])
			}
			if err := s.Insert(v, nbrs); err != nil {
				t.Fatalf("op %d insert: %v", i, err)
			}
		case rng.Float64() < 0.25:
			batch := pickBatch(live, rng, 1+rng.Intn(4))
			if err := s.DeleteBatch(batch); err != nil {
				t.Fatalf("op %d batch: %v", i, err)
			}
		default:
			if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
				t.Fatalf("op %d delete: %v", i, err)
			}
		}
		if err := s.checkCertFull(); err != nil {
			t.Fatalf("op %d: certificate diverged from rebuilt partition: %v", i, err)
		}
		if err := s.checkConnectivity(s.phys); err != nil {
			t.Fatalf("op %d: certificate passed but BFS sweep disagrees: %v", i, err)
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCertificateMatchesRebuildEveryOp(t *testing.T) {
	for _, c := range []struct {
		seed   int64
		n, ops int
	}{
		{1, 32, 60},
		{2, 48, 60},
		{3, 64, 40},
	} {
		certCampaign(t, c.seed, c.n, c.ops)
	}
}

// TestCertificateRefinementSticky pins the refinement invariant's
// plumbing: a physical edge materializing between G′-disconnected
// processors must poison the certificate until the audit heals it.
func TestCertificateRefinementSticky(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewSimulation(graph.PreferentialAttachment(16, 2, rng))
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// Simulate the violation directly: forge a G′ label so some pair
	// looks disconnected, then report a NEW physical edge between them
	// (an existing edge would only gain multiplicity and skip the
	// materialization check).
	live := s.LiveNodes()
	var a, b NodeID
	found := false
	for _, u := range live {
		for _, v := range live {
			if u != v && !s.phys.HasEdge(u, v) {
				a, b, found = u, v, true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("physical graph is complete; no fresh edge to forge")
	}
	s.gpCC.ForgeLabel(a)
	s.physAdd(a, b)
	if s.certErr == nil {
		t.Fatal("refinement violation not recorded")
	}
	if err := s.checkCertCounts(); err == nil {
		t.Fatal("poisoned certificate passed the O(1) check")
	}
	s.physDel(a, b) // undo the extra image
	// Heal: rebuild both trackers the way the audit sweep does.
	s.physCC.Relabel()
	s.gpCC.Relabel()
	s.certErr = nil
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}
