package dist

// Coalescing admission queue.
//
// Under real churn a large fraction of submitted operations self-cancel
// before the protocol ever needs to act on them: an insert(v) followed
// by delete(v) while the insert is still pending, or several deletions
// landing in one damaged region that could run as the waves of a single
// batch. The baseline engine admits every operation individually and
// pays full message cost for each. With coalescing enabled
// (SetCoalescing / protocol.WithCoalescing), Submit filters the stream
// before it reaches the admission queue:
//
//   - Cancellation. A submitted delete(v) that finds a still-pending
//     insert(v) annihilates with it: both ops leave the queue and
//     report EventOpCancelled instead of ever touching the network.
//     Cancellation happens only when it is invisible to every other
//     operation — see tryCancel for the exact rule — so every
//     non-cancelled op keeps the verdict and effect it would have had
//     in the full serialized replay. Note that an APPLIED insert
//     followed by a delete is NOT a no-op (the repair leaves
//     reconstruction-tree residue among the neighbors), which is why
//     only pending inserts cancel: the pair is elided entirely, and
//     the engine's behavior is bit-identical to the serialized
//     blocking replay of the EFFECTIVE sequence (the submission order
//     with cancelled pairs removed) — the contract the coalescing
//     twins of TestAsyncEquivalence* and FuzzAsyncChurn assert.
//
//   - Merging. A submitted delete whose footprint overlaps a pending
//     delete's footprint is chained behind it (the same driver-side
//     region machinery that serializes conflicting batch waves), and
//     when the predecessor's repair completes, the finishing leader
//     hands off directly AND the death notification pre-appoints the
//     repair leader — the tournament winner is always the smallest
//     notified ID, which the driver already knows — so the merged
//     repair skips its election entirely: exactly 2(k-1) election
//     messages saved for k notified processors, with the identical
//     healed graph (the election never influences the repair's
//     outcome, only who coordinates it, and the appointed leader IS
//     the ID the tournament would elect).
//
//   - Hold window. Cancellation and merging only see ops that are
//     still pending, so each submitted op is held for Window engine
//     ticks before it may launch (merged ops wait on their
//     predecessor instead). Holds are counted in driver Ticks, never
//     in transport rounds — channet's pulse counter need not advance
//     while the network idles, and a round-based window could
//     livelock there. MaxHeld bounds the latency cost: when that many
//     ops are held, every hold flushes at once.
//
// All decisions read only driver-side state (the pending queue, the
// maintained graphs, and Tick counts), so they are identical on every
// transport backend — the healed graph stays bit-identical across
// simnet, seeded channet, and the wire fabric.

// CoalesceConfig configures the coalescing admission queue.
type CoalesceConfig struct {
	// Window is the number of engine Ticks a submitted operation is
	// held in the pending queue before it becomes admissible, giving
	// later submissions the chance to cancel or merge with it. 0 holds
	// nothing (ops coalesce only against operations still pending for
	// other reasons).
	Window int
	// MaxHeld caps the number of simultaneously held operations: when
	// reached, every hold is flushed. <= 0 means the default (64).
	MaxHeld int
}

// defaultMaxHeld bounds held ops when the config leaves MaxHeld zero.
const defaultMaxHeld = 64

// CoalesceStats counts the coalescing queue's decisions.
type CoalesceStats struct {
	// Submitted counts every operation submitted while coalescing was
	// enabled.
	Submitted int
	// Cancelled counts operations elided by insert/delete pair
	// annihilation (two per pair).
	Cancelled int
	// Merged counts deletions chained behind an overlapping pending
	// deletion (launched with a pre-appointed leader).
	Merged int
	// Admitted counts submitted operations that reached execution: an
	// insert applied or a delete launched. Rejected and cancelled
	// operations are in neither count.
	Admitted int
	// MessagesSaved is the number of protocol messages provably
	// avoided: exactly 2(k-1) skipped election messages per merged
	// launch with k notified processors, plus a static floor for each
	// cancelled pair (the notifications and election of the repair the
	// delete would have run, sized by the cancelled insert's degree —
	// the walks, probes, strip, and merge plan it also avoids are not
	// statically knowable and are NOT counted; EXP-COALESCE measures
	// the true reduction).
	MessagesSaved int
}

// SetCoalescing enables the coalescing admission queue for subsequent
// Submit calls. Blocking calls (Insert, Delete, DeleteBatch) are never
// coalesced — they require an idle engine, so there is nothing pending
// to coalesce against.
func (s *Simulation) SetCoalescing(cfg CoalesceConfig) {
	if cfg.Window < 0 {
		cfg.Window = 0
	}
	if cfg.MaxHeld <= 0 {
		cfg.MaxHeld = defaultMaxHeld
	}
	s.coalesceOn = true
	s.coalCfg = cfg
}

// CoalesceStats returns the coalescing queue's counters.
func (s *Simulation) CoalesceStats() CoalesceStats { return s.coalStats }

// submitCoalesced routes one submitted operation through the
// coalescing filter: annihilate with a pending insert, chain behind an
// overlapping pending delete, or enqueue held.
func (s *Simulation) submitCoalesced(op Op, seq int) {
	s.coalStats.Submitted++
	if op.Kind == OpDelete {
		if s.tryCancel(op, seq) {
			return
		}
		if s.tryMerge(op, seq) {
			return
		}
	}
	s.pending = append(s.pending, &pendingOp{
		op: op, seq: seq, submitRound: s.net.Round(), after: noNode,
		hold: s.coalCfg.Window,
	})
}

// tryCancel annihilates delete(v) with a still-pending insert(v), when
// doing so is invisible to every other operation. The pair may be
// elided exactly when no other pending op's verdict or effect depends
// on v's brief existence:
//
//   - v appears in exactly one pending op, the insert I (a second op
//     naming v — another delete, or a duplicate insert — pins the
//     serialization order and aborts the cancel);
//   - no op submitted after I inserts a node with v as a neighbor
//     (serialized it would attach to v and succeed; with the pair
//     elided it would be rejected);
//   - no op submitted after I deletes one of I's neighbors (v would be
//     in that repair's notified set, so the healed graph would depend
//     on v's existence).
//
// Ops submitted BEFORE I need no check: at their serialization points
// v does not exist in either world, so their verdicts agree. Deletes
// of non-neighbors never reach v: a freshly inserted node owns no
// records until a repair touches it, so it sits in no reconstruction
// tree and only its physical neighbors' deaths involve it.
func (s *Simulation) tryCancel(op Op, seq int) bool {
	v := op.V
	var ins *pendingOp
	insAt := -1
	for i, po := range s.pending {
		if po.chain {
			return false
		}
		if po.op.V == v {
			if po.op.Kind != OpInsert || ins != nil {
				return false
			}
			ins, insAt = po, i
			continue
		}
		if ins == nil {
			continue // submitted before the insert: order-independent
		}
		switch po.op.Kind {
		case OpInsert:
			for _, x := range po.op.Nbrs {
				if x == v {
					return false
				}
			}
		case OpDelete:
			for _, x := range ins.op.Nbrs {
				if x == po.op.V {
					return false
				}
			}
		}
	}
	if ins == nil {
		return false
	}
	s.pending = append(s.pending[:insAt], s.pending[insAt+1:]...)
	s.coalStats.Cancelled += 2
	if d := len(ins.op.Nbrs); d > 0 {
		// Static floor: the elided repair's d death notifications plus
		// its 2(k-1) election messages with k >= d participants.
		s.coalStats.MessagesSaved += d + 2*(d-1)
	}
	round := s.net.Round()
	s.emit(Event{
		Kind: EventOpCancelled, Seq: ins.seq, V: v, Op: ins.op,
		Latency: round - ins.submitRound,
	})
	s.emit(Event{Kind: EventOpCancelled, Seq: seq, V: v, Op: op})
	return true
}

// tryMerge chains delete(v) behind the last pending deletion whose
// footprint overlaps v's, so the two run as consecutive waves of one
// conflict group: the predecessor's finishing leader hands off the
// launch, and the death notifications pre-appoint the leader, skipping
// the merged repair's election. The chained op re-enters the NORMAL
// admission path when its predecessor completes — revalidated against
// a fresh footprint — so intervening submissions keep their serialized
// order.
func (s *Simulation) tryMerge(op Op, seq int) bool {
	v := op.V
	if !s.Alive(v) {
		return false // rejection or a pending create: the normal path decides
	}
	for _, po := range s.pending {
		if po.chain || po.op.V == v {
			return false
		}
	}
	region := s.deleteRegion(v)
	var last *pendingOp
	for _, po := range s.pending {
		if po.op.Kind != OpDelete || !s.Alive(po.op.V) {
			continue
		}
		if po.region == nil {
			po.region = s.deleteRegion(po.op.V)
		}
		if overlap(region, po.region) {
			last = po
		}
	}
	if last == nil {
		return false
	}
	s.pending = append(s.pending, &pendingOp{
		op: op, seq: seq, submitRound: s.net.Round(),
		after: last.op.V, merged: true, region: region,
	})
	s.coalStats.Merged++
	return true
}

// flushHeldIfFull zeroes every hold once MaxHeld ops are held at once,
// bounding the latency a hold window can add under sustained pressure.
func (s *Simulation) flushHeldIfFull() {
	held := 0
	for _, po := range s.pending {
		if po.hold > 0 {
			held++
		}
	}
	if held < s.coalCfg.MaxHeld {
		return
	}
	for _, po := range s.pending {
		po.hold = 0
	}
}

// tickHolds counts one engine Tick against every held op, re-running
// admission when any window expires.
func (s *Simulation) tickHolds() {
	expired := false
	for _, po := range s.pending {
		if po.hold > 0 {
			po.hold--
			if po.hold == 0 {
				expired = true
			}
		}
	}
	if expired {
		s.admit()
	}
}
