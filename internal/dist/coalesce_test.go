package dist

import (
	"math/rand"
	"testing"

	"repro/internal/channet"
	"repro/internal/graph"
	"repro/internal/transport"
)

// Differential equivalence for the coalescing admission queue: a
// coalescing-on schedule must heal bit-identically to the serialized
// blocking replay of the EFFECTIVE sequence — the submission order with
// the cancelled insert/delete pairs removed — with exact per-op event
// accounting, on every transport backend.

// genCoalesceSchedule derives a valid schedule biased toward the
// coalescer's opportunities: insert/delete pairs on the same fresh node
// submitted back to back (cancellation bait) and deletions of physical
// neighbors submitted back to back (merge bait), mixed with plain
// churn. Validity comes from running every op on a scratch blocking
// twin, exactly like genSchedule.
func genCoalesceSchedule(g0 *graph.Graph, ops int, seed int64) []asyncOp {
	twin := NewSimulation(g0)
	rng := rand.New(rand.NewSource(seed))
	nextID := NodeID(50_000)
	var schedule []asyncOp
	emit := func(op Op, delay int) { schedule = append(schedule, asyncOp{op: op, delay: delay}) }
	insert := func(delay int) {
		live := twin.LiveNodes()
		v := nextID
		nextID++
		k := 1 + rng.Intn(2)
		if k > len(live) {
			k = len(live)
		}
		var nbrs []NodeID
		for _, idx := range rng.Perm(len(live))[:k] {
			nbrs = append(nbrs, live[idx])
		}
		if err := twin.Insert(v, nbrs); err != nil {
			panic(err)
		}
		emit(Op{Kind: OpInsert, V: v, Nbrs: nbrs}, delay)
	}
	for i := 0; i < ops; i++ {
		live := twin.LiveNodes()
		if len(live) == 0 {
			break
		}
		switch r := rng.Float64(); {
		case r < 0.3: // cancellation bait: insert then delete the same node
			insert(rng.Intn(2))
			v := schedule[len(schedule)-1].op.V
			if err := twin.Delete(v); err != nil {
				panic(err)
			}
			emit(Op{Kind: OpDelete, V: v}, rng.Intn(3))
		case r < 0.55: // merge bait: delete a node, then a former neighbor
			v := live[rng.Intn(len(live))]
			nb := twin.Physical().Neighbors(v)
			if err := twin.Delete(v); err != nil {
				panic(err)
			}
			emit(Op{Kind: OpDelete, V: v}, rng.Intn(2))
			for _, w := range nb {
				if twin.Alive(w) {
					if err := twin.Delete(w); err != nil {
						panic(err)
					}
					emit(Op{Kind: OpDelete, V: w}, rng.Intn(3))
					break
				}
			}
		case r < 0.75:
			insert(rng.Intn(4))
		default:
			v := live[rng.Intn(len(live))]
			if err := twin.Delete(v); err != nil {
				panic(err)
			}
			emit(Op{Kind: OpDelete, V: v}, rng.Intn(4))
		}
	}
	return schedule
}

// replayCoalesced drives one valid schedule through a coalescing-on
// engine, checks the event accounting exactly (every submitted op
// completes, cancels, and never rejects; the CoalesceStats counters
// reconcile), and asserts the healed graph is bit-identical to the
// serialized blocking replay of the effective sequence. Returns the
// drained engine for further cross-checks.
func replayCoalesced(t *testing.T, g0 *graph.Graph, schedule []asyncOp, cfg CoalesceConfig, net transport.Transport) *Simulation {
	t.Helper()
	var coal *Simulation
	if net != nil {
		coal = NewSimulationOn(g0, net)
	} else {
		coal = NewSimulation(g0)
	}
	coal.SetCoalescing(cfg)
	for _, so := range schedule {
		if err := coal.Submit(so.op); err != nil {
			t.Fatalf("submit %v: %v", so.op, err)
		}
		for r := 0; r < so.delay; r++ {
			coal.Tick()
		}
	}
	if err := coal.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	cancelled := make(map[int]bool) // seq -> elided
	completed := 0
	for _, ev := range coal.Poll() {
		switch ev.Kind {
		case EventRepairDone, EventInsertApplied:
			completed++
		case EventOpCancelled:
			if cancelled[ev.Seq] {
				t.Fatalf("duplicate cancel event for seq %d", ev.Seq)
			}
			cancelled[ev.Seq] = true
		case EventOpRejected:
			t.Fatalf("valid op rejected: %v: %v", ev.Op, ev.Err)
		}
	}
	if len(cancelled)%2 != 0 {
		t.Fatalf("cancellations come in pairs; got %d", len(cancelled))
	}
	if completed+len(cancelled) != len(schedule) {
		t.Fatalf("%d submitted, %d completed + %d cancelled", len(schedule), completed, len(cancelled))
	}
	st := coal.CoalesceStats()
	if st.Submitted != len(schedule) || st.Cancelled != len(cancelled) || st.Admitted != completed {
		t.Fatalf("stats %+v disagree with %d submitted / %d cancelled / %d completed",
			st, len(schedule), len(cancelled), completed)
	}

	// Serialized blocking replay of the effective sequence.
	eff := NewSimulation(g0)
	for i, so := range schedule {
		if cancelled[i+1] { // Seq counts from 1 in submission order
			continue
		}
		var err error
		switch so.op.Kind {
		case OpInsert:
			err = eff.Insert(so.op.V, so.op.Nbrs)
		case OpDelete:
			err = eff.Delete(so.op.V)
		}
		if err != nil {
			t.Fatalf("effective replay op %d (%v): %v", i+1, so.op, err)
		}
	}
	if !coal.Physical().Equal(eff.Physical()) {
		t.Fatal("coalesced healed graph diverges from the effective-sequence blocking replay")
	}
	if !coal.GPrime().Equal(eff.GPrime()) {
		t.Fatal("G' diverged")
	}
	if err := coal.Verify(); err != nil {
		t.Fatalf("coalesced verify: %v", err)
	}
	if err := eff.Verify(); err != nil {
		t.Fatalf("effective replay verify: %v", err)
	}
	return coal
}

// TestAsyncEquivalenceCoalescing is the coalescing-on twin of
// TestAsyncEquivalenceWithBlocking: across the five topology families,
// schedules biased toward cancel and merge opportunities, and both a
// zero and a positive hold window, the healed graph must match the
// blocking replay of the effective sequence exactly. The aggregate
// counters prove the machinery actually fired.
func TestAsyncEquivalenceCoalescing(t *testing.T) {
	topologies := []struct {
		name string
		gen  func(rng *rand.Rand) *graph.Graph
		ops  int
	}{
		{"star", func(*rand.Rand) *graph.Graph { return graph.Star(24) }, 22},
		{"path", func(*rand.Rand) *graph.Graph { return graph.Path(20) }, 20},
		{"grid", func(*rand.Rand) *graph.Graph { return graph.Grid(5, 5) }, 24},
		{"gnp", func(rng *rand.Rand) *graph.Graph { return graph.GNP(32, 0.15, rng) }, 26},
		{"powerlaw", func(rng *rand.Rand) *graph.Graph { return graph.PreferentialAttachment(28, 2, rng) }, 26},
	}
	var total CoalesceStats
	for _, topo := range topologies {
		topo := topo
		t.Run(topo.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				g0 := topo.gen(rand.New(rand.NewSource(800 + seed)))
				schedule := genCoalesceSchedule(g0, topo.ops, 41*seed+7)
				for _, window := range []int{0, 4} {
					s := replayCoalesced(t, g0, schedule, CoalesceConfig{Window: window}, nil)
					st := s.CoalesceStats()
					total.Submitted += st.Submitted
					total.Cancelled += st.Cancelled
					total.Merged += st.Merged
					total.MessagesSaved += st.MessagesSaved
				}
			}
		})
	}
	if total.Cancelled == 0 {
		t.Error("no cancellations across the whole sweep: the bait never fired")
	}
	if total.Merged == 0 {
		t.Error("no merges across the whole sweep: the bait never fired")
	}
	if total.MessagesSaved == 0 {
		t.Error("nothing saved across the whole sweep")
	}
}

// TestCoalescingTransportIdentity: coalescing decisions read only
// driver-side state, so the same schedule on simnet and on a seeded
// channet must elide the same pairs and heal to the bit-identical
// graph. Merge counts are NOT asserted equal: whether a delete is
// still pending when the next one arrives depends on how many driver
// ticks its repair spans, which the transports may pace differently —
// merging is a pure optimization, invisible in the healed graph, while
// a cancellation changes the effective sequence and so must agree.
func TestCoalescingTransportIdentity(t *testing.T) {
	g0 := graph.PreferentialAttachment(24, 2, rand.New(rand.NewSource(123)))
	schedule := genCoalesceSchedule(g0, 28, 99)
	cfg := CoalesceConfig{Window: 3}
	sim := replayCoalesced(t, g0, schedule, cfg, nil)
	ch := replayCoalesced(t, g0, schedule, cfg, channet.NewSeeded(5))
	defer ch.Close()
	if !sim.Physical().Equal(ch.Physical()) {
		t.Fatal("healed graphs diverge between simnet and seeded channet")
	}
	simSt, chSt := sim.CoalesceStats(), ch.CoalesceStats()
	if simSt.Submitted != chSt.Submitted || simSt.Cancelled != chSt.Cancelled {
		t.Fatalf("cancellation decisions diverge across transports: sim %+v, chan %+v", simSt, chSt)
	}
}

// TestCoalesceMergeSavesElection pins the merge mechanism's exact
// saving: the merged repair launches with a pre-appointed leader
// (reporting zero election messages), and the run's total election
// traffic drops versus the uncoalesced twin by exactly the
// MessagesSaved counter — with the identical healed graph.
func TestCoalesceMergeSavesElection(t *testing.T) {
	run := func(coalesce bool) (*Simulation, int) {
		s := NewSimulation(graph.Star(16))
		if coalesce {
			s.SetCoalescing(CoalesceConfig{})
		}
		// Delete a ray, then the hub: the regions overlap, so with
		// coalescing on the hub's deletion merges behind the ray's.
		if err := s.Submit(Op{Kind: OpDelete, V: 5}, Op{Kind: OpDelete, V: 0}); err != nil {
			t.Fatal(err)
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		election := 0
		for _, ev := range s.Poll() {
			if ev.Kind == EventRepairDone {
				election += ev.Repair.ElectionMessages
				if coalesce && ev.V == 0 && ev.Repair.ElectionMessages != 0 {
					t.Errorf("merged repair of %d reports %d election messages, want 0",
						ev.V, ev.Repair.ElectionMessages)
				}
			}
		}
		return s, election
	}
	off, offElection := run(false)
	on, onElection := run(true)
	st := on.CoalesceStats()
	if st.Merged != 1 {
		t.Fatalf("Merged = %d, want 1", st.Merged)
	}
	if st.MessagesSaved <= 0 {
		t.Fatalf("MessagesSaved = %d, want > 0", st.MessagesSaved)
	}
	if offElection-onElection != st.MessagesSaved {
		t.Fatalf("election traffic dropped by %d, MessagesSaved counts %d",
			offElection-onElection, st.MessagesSaved)
	}
	if !on.Physical().Equal(off.Physical()) {
		t.Fatal("merged launch healed differently from the elected launch")
	}
	if err := on.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestCoalesceCancelRacingRepair: an insert deferred inside an
// in-flight repair's region annihilates with a delete submitted while
// that repair is still running — the cancellation must not disturb the
// repair, and the healed graph equals the replay without the pair.
func TestCoalesceCancelRacingRepair(t *testing.T) {
	s := NewSimulation(graph.Star(16))
	s.SetCoalescing(CoalesceConfig{})
	if err := s.Submit(Op{Kind: OpDelete, V: 0}); err != nil { // hub: big repair
		t.Fatal(err)
	}
	if s.InFlight() != 1 {
		t.Fatal("repair not launched")
	}
	// The insert attaches inside the damaged region, so it defers; the
	// delete lands while the repair is mid-flight and cancels it.
	if err := s.Submit(Op{Kind: OpInsert, V: 900, Nbrs: []NodeID{5, 9}}); err != nil {
		t.Fatal(err)
	}
	s.Tick()
	if err := s.Submit(Op{Kind: OpDelete, V: 900}); err != nil {
		t.Fatal(err)
	}
	st := s.CoalesceStats()
	if st.Cancelled != 2 {
		t.Fatalf("Cancelled = %d, want 2 (the pair annihilated mid-repair)", st.Cancelled)
	}
	if s.PendingOps() != 0 {
		t.Fatalf("%d ops still pending after the pair annihilated", s.PendingOps())
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	blocking := NewSimulation(graph.Star(16))
	if err := blocking.Delete(0); err != nil {
		t.Fatal(err)
	}
	if !s.Physical().Equal(blocking.Physical()) {
		t.Fatal("cancellation mid-repair changed the healed graph")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestCoalesceHoldExpiresMidRepair: a hold window that runs out while
// an overlapping repair is still in flight must leave the op blocked on
// the region, not force a launch; an op in a disjoint region launches
// the moment its window expires, overlapping the ongoing repair.
func TestCoalesceHoldExpiresMidRepair(t *testing.T) {
	g, hubs := disjointStars(2, 8)
	s := NewSimulation(g)
	s.SetBandwidth(1) // stretch the repair across many driver ticks
	s.SetCoalescing(CoalesceConfig{Window: 2})
	if err := s.Submit(Op{Kind: OpDelete, V: hubs[0]}); err != nil {
		t.Fatal(err)
	}
	if got := s.InFlight(); got != 0 {
		t.Fatalf("%d in flight, want 0 (the first delete is held too)", got)
	}
	s.Tick()
	s.Tick() // window expires -> the hub repair launches
	if got := s.InFlight(); got != 1 {
		t.Fatalf("%d in flight after the first window expired, want 1", got)
	}
	// A ray of the same star (region conflicts with the running repair)
	// and the other star's hub (disjoint), both held for 2 ticks.
	ray := hubs[0] + 1
	if err := s.Submit(Op{Kind: OpDelete, V: ray}, Op{Kind: OpDelete, V: hubs[1]}); err != nil {
		t.Fatal(err)
	}
	if got := s.InFlight(); got != 1 {
		t.Fatalf("%d in flight, want 1 (both new deletes held)", got)
	}
	s.Tick()
	s.Tick() // windows expire here, mid-repair
	if got := s.InFlight(); got != 2 {
		t.Fatalf("%d in flight after expiry, want 2 (disjoint launched, conflicting blocked)", got)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	blocking := NewSimulation(g)
	for _, v := range []NodeID{hubs[0], ray, hubs[1]} {
		if err := blocking.Delete(v); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Physical().Equal(blocking.Physical()) {
		t.Fatal("held launches healed differently from the serialized replay")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestCoalesceMergeBehindPendingInsert: a merged chain whose region
// conflicts with an earlier pending (deferred) insert must still
// serialize in submission order — the insert applies when the first
// repair completes, before the merged deletes run. On a 4x4 grid
// (row-major ids), deleting 5 damages its neighbors {1,4,6,9}; the
// insert attaches inside that region (node 6) and defers; deletes of
// 10 and 9 — physical neighbors of each other and of 6 — conflict with
// the running repair, stay pending, and merge with each other.
func TestCoalesceMergeBehindPendingInsert(t *testing.T) {
	g0 := graph.Grid(4, 4)
	s := NewSimulation(g0)
	s.SetCoalescing(CoalesceConfig{})
	if err := s.Submit(Op{Kind: OpDelete, V: 5}); err != nil { // repair in flight
		t.Fatal(err)
	}
	if s.InFlight() != 1 {
		t.Fatal("repair not launched")
	}
	if err := s.Submit(Op{Kind: OpInsert, V: 900, Nbrs: []NodeID{6}}); err != nil {
		t.Fatal(err)
	}
	if s.Alive(900) {
		t.Fatal("insert into damaged region applied mid-repair")
	}
	if err := s.Submit(Op{Kind: OpDelete, V: 10}, Op{Kind: OpDelete, V: 9}); err != nil {
		t.Fatal(err)
	}
	if st := s.CoalesceStats(); st.Merged != 1 {
		t.Fatalf("Merged = %d, want 1 (delete 9 chained behind delete 10)", st.Merged)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if !s.Alive(900) {
		t.Fatal("deferred insert never applied")
	}
	blocking := NewSimulation(g0)
	if err := blocking.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := blocking.Insert(900, []NodeID{6}); err != nil {
		t.Fatal(err)
	}
	if err := blocking.Delete(10); err != nil {
		t.Fatal(err)
	}
	if err := blocking.Delete(9); err != nil {
		t.Fatal(err)
	}
	if !s.Physical().Equal(blocking.Physical()) {
		t.Fatal("merged chain jumped the pending insert's serialization point")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}
