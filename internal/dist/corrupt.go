// Corruption fault injection for the self-stabilizing audit layer.
// Corrupt perturbs live processor state the way a transient fault
// would: silently. No markTouched, no physical-graph log — a bit flip
// updates no bookkeeping — which is exactly why the incremental
// VerifyDelta cannot see these faults (it revisits only touched
// processors) and the full Verify, the neighbor exchanges of the audit
// layer, or nothing at all will.
//
// Injection is driver-side and deterministic for a given rng stream:
// candidates are enumerated in canonical order (live processors
// ascending, records ascending) and the rng picks one. Mid-churn
// injection avoids records inside any in-flight or pending repair
// footprint and processors holding live repair scratch — corrupting a
// region a repair is rewriting this very round would test the race,
// not the healing.
package dist

import (
	"fmt"
	"math/rand"
	"sort"
)

// CorruptMode selects what kind of state a Corrupt call perturbs.
type CorruptMode int

const (
	// CorruptLeafCount inflates a helper's stored leaf count.
	CorruptLeafCount CorruptMode = iota
	// CorruptHeight inflates a helper's stored height.
	CorruptHeight
	// CorruptRep points a helper's representative at its own slot —
	// well-formed (the owner is alive) but always wrong (the free-leaf
	// rule forbids it).
	CorruptRep
	// CorruptDroppedParent clears a record's parent pointer, orphaning
	// it from a parent that still lists it.
	CorruptDroppedParent
	// CorruptDanglingParent points a record's parent at a helper that
	// does not exist (the owner is kept alive so audit claims are
	// answerable).
	CorruptDanglingParent
	// CorruptChildPtr points one child side of a helper at a
	// nonexistent record, displacing the true child (which still
	// records the helper as its parent).
	CorruptChildPtr
	// CorruptDamageFlag raises a helper's Breakflag for an epoch whose
	// repair is long finished (a dead node's ID — IDs are never reused,
	// so no live repair can collide with it).
	CorruptDamageFlag
	// CorruptStaleEpoch plants leader or participant scratch for a
	// long-finished epoch, as if a repair's teardown had been lost.
	CorruptStaleEpoch
	// CorruptClaimMark plants a phantom batch-claim mark on one of a
	// processor's records, outside any live claim phase.
	CorruptClaimMark
	// CorruptFootprint plants a phantom in-flight repair footprint in
	// the open-loop engine: an epoch no processor has ever heard of,
	// which can therefore never complete in-band.
	CorruptFootprint
	// CorruptClock skews one processor's logical clock far negative.
	// Only transports with per-processor clocks (channet) support it;
	// on simnet the mode reports unsupported.
	CorruptClock
	// CorruptCertificate silently perturbs the incremental connectivity
	// certificate (cert.go): either forges one live processor's
	// component label or skews the component counters — driver state
	// the in-band record audit cannot see, healed by the driver-side
	// certificate sweep instead.
	CorruptCertificate
)

// CorruptModes lists every mode, for table-driven tests.
var CorruptModes = []CorruptMode{
	CorruptLeafCount, CorruptHeight, CorruptRep,
	CorruptDroppedParent, CorruptDanglingParent, CorruptChildPtr,
	CorruptDamageFlag, CorruptStaleEpoch, CorruptClaimMark,
	CorruptFootprint, CorruptClock, CorruptCertificate,
}

func (m CorruptMode) String() string {
	switch m {
	case CorruptLeafCount:
		return "leafcount"
	case CorruptHeight:
		return "height"
	case CorruptRep:
		return "rep"
	case CorruptDroppedParent:
		return "dropped-parent"
	case CorruptDanglingParent:
		return "dangling-parent"
	case CorruptChildPtr:
		return "child-ptr"
	case CorruptDamageFlag:
		return "damage-flag"
	case CorruptStaleEpoch:
		return "stale-epoch"
	case CorruptClaimMark:
		return "claim-mark"
	case CorruptFootprint:
		return "footprint"
	case CorruptClock:
		return "clock"
	case CorruptCertificate:
		return "certificate"
	}
	return fmt.Sprintf("corrupt(%d)", int(m))
}

// CorruptReport describes one injected fault.
type CorruptReport struct {
	Mode   CorruptMode
	Victim NodeID // the processor whose state was perturbed
	Record addr   // the perturbed record, when one record was targeted
	Detail string
}

// Corrupt injects one fault of the given mode, driven by rng. It
// reports false when the mode found no viable target in the current
// state (no helpers yet, no dead epochs to impersonate, a transport
// without logical clocks) — a no-op, not an error. Injection never
// touches the driver's bookkeeping: the fault is invisible until a
// full Verify or the audit layer looks.
func (s *Simulation) Corrupt(mode CorruptMode, rng *rand.Rand) (CorruptReport, bool) {
	rep := CorruptReport{Mode: mode}
	switch mode {
	case CorruptLeafCount, CorruptHeight, CorruptRep, CorruptDamageFlag, CorruptChildPtr:
		p, o, ok := s.corruptPickHelper(rng, mode)
		if !ok {
			return rep, false
		}
		h := p.helpers[o]
		rep.Victim, rep.Record = p.id, helperAddr(p.id, o)
		switch mode {
		case CorruptLeafCount:
			d := 1 + rng.Intn(7)
			h.leafCount += d
			rep.Detail = fmt.Sprintf("leafCount +%d", d)
		case CorruptHeight:
			d := 1 + rng.Intn(3)
			h.height += d
			rep.Detail = fmt.Sprintf("height +%d", d)
		case CorruptRep:
			h.rep = slot{Owner: p.id, Other: o}
			rep.Detail = "rep -> own slot"
		case CorruptDamageFlag:
			e, ok := s.corruptDeadEpoch(rng)
			if !ok {
				return rep, false
			}
			h.damaged, h.depoch = true, e
			rep.Detail = fmt.Sprintf("breakflag epoch %d", e)
		case CorruptChildPtr:
			side := rng.Intn(2)
			c := h.left
			if side == 1 {
				c = h.right
			}
			bogus := addr{Owner: c.Owner, Other: s.corruptBogusID(rng), Kind: c.Kind}
			if side == 0 {
				h.left = bogus
			} else {
				h.right = bogus
			}
			rep.Detail = fmt.Sprintf("child %d: %v -> %v", side, c, bogus)
		}
		return rep, true

	case CorruptDroppedParent, CorruptDanglingParent:
		p, a, parent, ok := s.corruptPickParented(rng)
		if !ok {
			return rep, false
		}
		rep.Victim, rep.Record = p.id, a
		old := *parent
		if mode == CorruptDroppedParent {
			*parent = addr{}
			rep.Detail = fmt.Sprintf("parent %v -> cleared", old)
		} else {
			*parent = addr{Owner: old.Owner, Other: s.corruptBogusID(rng), Kind: kindHelper}
			rep.Detail = fmt.Sprintf("parent %v -> %v", old, *parent)
		}
		return rep, true

	case CorruptStaleEpoch:
		p, ok := s.corruptPickProc(rng, func(p *processor) bool {
			return len(p.leaves)+len(p.helpers) > 0
		})
		if !ok {
			return rep, false
		}
		e, ok := s.corruptDeadEpoch(rng)
		if !ok {
			return rep, false
		}
		rep.Victim = p.id
		if rng.Intn(2) == 0 {
			if p.reps == nil {
				p.reps = make(map[NodeID]*repairState)
			}
			p.reps[e] = &repairState{
				roots: make(map[addr]struct{}),
				comps: make(map[addr]*component),
			}
			rep.Detail = fmt.Sprintf("stale leader scratch, epoch %d", e)
		} else {
			if p.parts == nil {
				p.parts = make(map[NodeID]*partState)
			}
			p.parts[e] = &partState{
				v: e, btParent: noNode, btLeft: noNode, btRight: noNode,
				haveDeath: true, champ: p.id, leader: noNode, walksOut: 1,
			}
			rep.Detail = fmt.Sprintf("stale participant scratch, epoch %d", e)
		}
		return rep, true

	case CorruptClaimMark:
		p, ok := s.corruptPickProc(rng, func(p *processor) bool {
			return len(p.leaves)+len(p.helpers) > 0
		})
		if !ok {
			return rep, false
		}
		a := s.corruptAnyRecord(p, rng)
		e, ok := s.corruptDeadEpoch(rng)
		if !ok {
			e = noNode
		}
		p.claims = map[addr]NodeID{a: e}
		rep.Victim, rep.Record = p.id, a
		rep.Detail = fmt.Sprintf("phantom claim mark, epoch %d", e)
		return rep, true

	case CorruptFootprint:
		e := s.corruptBogusID(rng)
		if _, dup := s.inflight[e]; dup {
			return rep, false
		}
		s.inflight[e] = &flight{
			v:           e,
			region:      map[NodeID]struct{}{e: {}},
			submitRound: s.net.Round(),
		}
		rep.Victim = e
		rep.Detail = fmt.Sprintf("phantom in-flight epoch %d", e)
		return rep, true

	case CorruptClock:
		sk, canSkew := netAs[interface{ SkewClock(NodeID, int64) }](s.net)
		if !canSkew {
			return rep, false
		}
		p, ok := s.corruptPickProc(rng, s.hasRemoteLink)
		if !ok {
			return rep, false
		}
		delta := -(int64(1) << 22)
		sk.SkewClock(p.id, delta)
		rep.Victim = p.id
		rep.Detail = fmt.Sprintf("clock %+d", delta)
		return rep, true

	case CorruptCertificate:
		// Two faces of certificate rot: a forged component label on one
		// live processor (caught by the per-node label-consistency
		// check; the victim needs a physical neighbor for the forgery
		// to be observable — on an isolated node a fresh unique label
		// is just a legal relabeling), or a silently skewed component
		// counter (caught by the O(1) count-equality check). Both heal
		// by the audit layer's certificate sweep rebuilding the
		// trackers from the graphs.
		if rng.Intn(2) == 0 {
			p, ok := s.corruptPickProc(rng, func(p *processor) bool {
				return s.phys.Degree(p.id) >= 1
			})
			if !ok {
				return rep, false
			}
			f := s.physCC.ForgeLabel(p.id)
			rep.Victim = p.id
			rep.Detail = fmt.Sprintf("physical component label forged -> %d", f)
		} else {
			rep.Victim = noNode
			if rng.Intn(2) == 0 {
				s.physCC.SkewCount(1)
				rep.Detail = "physical component count +1"
			} else {
				s.gpCC.SkewCount(1)
				rep.Detail = "G' marked-component count +1"
			}
		}
		return rep, true
	}
	return rep, false
}

// hasRemoteLink reports whether some record of p links to another
// processor — the condition under which p's own audit probes draw
// replies that heal a skewed logical clock.
func (s *Simulation) hasRemoteLink(p *processor) bool {
	for _, l := range p.leaves {
		if l.parent.ok() && l.parent.Owner != p.id {
			return true
		}
	}
	for _, h := range p.helpers {
		for _, a := range [3]addr{h.parent, h.left, h.right} {
			if a.ok() && a.Owner != p.id {
				return true
			}
		}
	}
	return false
}

// corruptEligible reports whether a processor's records are safe to
// perturb mid-churn: outside every in-flight and pending repair
// footprint and not holding live repair scratch.
func (s *Simulation) corruptEligible() map[NodeID]bool {
	excluded := make(map[NodeID]struct{})
	for _, f := range s.inflight {
		for v := range f.region {
			excluded[v] = struct{}{}
		}
	}
	for _, po := range s.pending {
		for v := range po.region {
			excluded[v] = struct{}{}
		}
	}
	ok := make(map[NodeID]bool, len(s.alive))
	for v, p := range s.procs {
		_, ex := excluded[v]
		ok[v] = !ex && !p.auditBusy() && !p.anyDamaged()
	}
	return ok
}

// corruptPickProc picks one eligible processor satisfying pred,
// uniformly from the canonical ordering.
func (s *Simulation) corruptPickProc(rng *rand.Rand, pred func(*processor) bool) (*processor, bool) {
	eligible := s.corruptEligible()
	var cands []*processor
	for _, v := range s.LiveNodes() {
		p := s.procs[v]
		if eligible[v] && (pred == nil || pred(p)) {
			cands = append(cands, p)
		}
	}
	if len(cands) == 0 {
		return nil, false
	}
	return cands[rng.Intn(len(cands))], true
}

// corruptPickHelper picks one eligible helper record. Structural child
// modes need both child pointers set (always true on legal records;
// checked anyway).
func (s *Simulation) corruptPickHelper(rng *rand.Rand, mode CorruptMode) (*processor, NodeID, bool) {
	eligible := s.corruptEligible()
	type cand struct {
		p *processor
		o NodeID
	}
	var cands []cand
	for _, v := range s.LiveNodes() {
		if !eligible[v] {
			continue
		}
		p := s.procs[v]
		for _, o := range sortedRecordKeys(p.helpers) {
			h := p.helpers[o]
			if mode == CorruptChildPtr && (!h.left.ok() || !h.right.ok()) {
				continue
			}
			cands = append(cands, cand{p: p, o: o})
		}
	}
	if len(cands) == 0 {
		return nil, 0, false
	}
	c := cands[rng.Intn(len(cands))]
	return c.p, c.o, true
}

// corruptPickParented picks one eligible record (leaf or helper) whose
// parent pointer is set, returning the pointer for in-place mutation.
func (s *Simulation) corruptPickParented(rng *rand.Rand) (*processor, addr, *addr, bool) {
	eligible := s.corruptEligible()
	type cand struct {
		p      *processor
		a      addr
		parent *addr
	}
	var cands []cand
	for _, v := range s.LiveNodes() {
		if !eligible[v] {
			continue
		}
		p := s.procs[v]
		for _, o := range sortedRecordKeys(p.leaves) {
			if l := p.leaves[o]; l.parent.ok() {
				cands = append(cands, cand{p: p, a: leafAddr(v, o), parent: &l.parent})
			}
		}
		for _, o := range sortedRecordKeys(p.helpers) {
			if h := p.helpers[o]; h.parent.ok() {
				cands = append(cands, cand{p: p, a: helperAddr(v, o), parent: &h.parent})
			}
		}
	}
	if len(cands) == 0 {
		return nil, addr{}, nil, false
	}
	c := cands[rng.Intn(len(cands))]
	return c.p, c.a, c.parent, true
}

// corruptAnyRecord returns one of p's record addresses, canonical
// order, rng-chosen. Caller guarantees p has records.
func (s *Simulation) corruptAnyRecord(p *processor, rng *rand.Rand) addr {
	var all []addr
	for _, o := range sortedRecordKeys(p.leaves) {
		all = append(all, leafAddr(p.id, o))
	}
	for _, o := range sortedRecordKeys(p.helpers) {
		all = append(all, helperAddr(p.id, o))
	}
	return all[rng.Intn(len(all))]
}

// corruptDeadEpoch picks the ID of a long-deleted processor: an epoch
// whose repair is finished and — IDs are never reused — that no future
// repair can collide with.
func (s *Simulation) corruptDeadEpoch(rng *rand.Rand) (NodeID, bool) {
	if len(s.dead) == 0 {
		return 0, false
	}
	ids := make([]NodeID, 0, len(s.dead))
	for v := range s.dead {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[rng.Intn(len(ids))], true
}

// corruptBogusID fabricates a node ID that names no record anywhere:
// negative, which no processor or slot ever uses (IDs are
// non-negative; noNode is reserved).
func (s *Simulation) corruptBogusID(rng *rand.Rand) NodeID {
	return NodeID(-2 - rng.Intn(1<<16))
}
