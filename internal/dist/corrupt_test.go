package dist

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/audit"
	"repro/internal/channet"
	"repro/internal/graph"
)

// Convergence and detection tests for the corruption injector and the
// self-stabilizing audit layer. The differential oracle throughout is
// an uncorrupted twin simulation driven through the identical op
// schedule: after the audit heals an injection, the corrupted run must
// end Verify-clean AND bit-identical (physical network and G′) to the
// twin — the audit restored the exact configuration, not merely a
// legal one.

// auditTopologies mirrors the 5 topology families every differential
// suite in this repo covers (transport_equiv_test keeps its own copy
// in package dist_test).
var auditTopologies = []struct {
	name string
	gen  func(rng *rand.Rand) *graph.Graph
}{
	{"star", func(*rand.Rand) *graph.Graph { return graph.Star(24) }},
	{"path", func(*rand.Rand) *graph.Graph { return graph.Path(20) }},
	{"grid", func(*rand.Rand) *graph.Graph { return graph.Grid(5, 5) }},
	{"gnp", func(rng *rand.Rand) *graph.Graph { return graph.GNP(32, 0.15, rng) }},
	{"powerlaw", func(rng *rand.Rand) *graph.Graph { return graph.PreferentialAttachment(28, 2, rng) }},
}

// auditPair couples a corruptible simulation (audit on; simnet or
// seeded channet) with its uncorrupted simnet twin, driving both
// through the same deterministic op schedule.
type auditPair struct {
	t    *testing.T
	s    *Simulation // audited, corrupted
	twin *Simulation // never corrupted, audit off
	rng  *rand.Rand
	next NodeID
}

func newAuditPair(t *testing.T, gen func(*rand.Rand) *graph.Graph, topoSeed int64, backend string, cfg audit.Config) *auditPair {
	t.Helper()
	var s *Simulation
	g0 := gen(rand.New(rand.NewSource(topoSeed)))
	switch backend {
	case "sim":
		s = NewSimulation(g0)
	case "chan":
		s = NewSimulationOn(g0, channet.NewSeeded(topoSeed+1))
	default:
		t.Fatalf("unknown backend %q", backend)
	}
	if err := s.EnableAudit(cfg); err != nil {
		t.Fatal(err)
	}
	twin := NewSimulation(gen(rand.New(rand.NewSource(topoSeed))))
	return &auditPair{t: t, s: s, twin: twin, rng: rand.New(rand.NewSource(topoSeed * 7)), next: 1 << 19}
}

// deleteOne picks one live node — the highest-physical-degree of a few
// random candidates, so hubs (the only helper factories on a star) die
// early and Reconstruction Trees with internal nodes appear fast — and
// deletes it from both simulations.
func (a *auditPair) deleteOne() {
	a.t.Helper()
	live := a.s.LiveNodes()
	if len(live) <= 4 {
		return
	}
	v := live[a.rng.Intn(len(live))]
	for i := 0; i < 2; i++ {
		c := live[a.rng.Intn(len(live))]
		if a.s.PhysicalDegree(c) > a.s.PhysicalDegree(v) {
			v = c
		}
	}
	if err := a.s.Delete(v); err != nil {
		a.t.Fatalf("delete %d: %v", v, err)
	}
	if err := a.twin.Delete(v); err != nil {
		a.t.Fatalf("twin delete %d: %v", v, err)
	}
}

// deleteHub deletes the globally highest-degree live node from both —
// the one deletion guaranteed to build a Reconstruction Tree with
// internal helpers on every topology family (on a star, nothing else
// ever does).
func (a *auditPair) deleteHub() {
	a.t.Helper()
	live := a.s.LiveNodes()
	if len(live) <= 4 {
		return
	}
	v := live[0]
	for _, c := range live[1:] {
		if a.s.PhysicalDegree(c) > a.s.PhysicalDegree(v) {
			v = c
		}
	}
	if err := a.s.Delete(v); err != nil {
		a.t.Fatalf("delete hub %d: %v", v, err)
	}
	if err := a.twin.Delete(v); err != nil {
		a.t.Fatalf("twin delete hub %d: %v", v, err)
	}
}

// insertOne inserts a fresh node with 1–2 live neighbors into both.
func (a *auditPair) insertOne() {
	a.t.Helper()
	live := a.s.LiveNodes()
	if len(live) == 0 {
		return
	}
	k := 1 + a.rng.Intn(2)
	if k > len(live) {
		k = len(live)
	}
	var nbrs []NodeID
	for _, idx := range a.rng.Perm(len(live))[:k] {
		nbrs = append(nbrs, live[idx])
	}
	v := a.next
	a.next++
	if err := a.s.Insert(v, nbrs); err != nil {
		a.t.Fatalf("insert %d: %v", v, err)
	}
	if err := a.twin.Insert(v, nbrs); err != nil {
		a.t.Fatalf("twin insert %d: %v", v, err)
	}
}

// pump advances both simulations n transport pulses, repairs and audit
// passes progressing together.
func (a *auditPair) pump(n int) {
	for i := 0; i < n; i++ {
		a.s.Tick()
		a.twin.Tick()
	}
}

// drain runs both simulations to an idle engine, failing the test if
// either still has work after bound pulses.
func (a *auditPair) drain(bound int) {
	a.t.Helper()
	for i := 0; i < bound && !(a.s.Idle() && a.twin.Idle()); i++ {
		a.s.Tick()
		a.twin.Tick()
	}
	if !a.s.Idle() {
		a.t.Fatalf("corrupted sim failed to drain (pending %d, inflight %d)", a.s.PendingOps(), a.s.InFlight())
	}
	if !a.twin.Idle() {
		a.t.Fatal("twin failed to drain")
	}
	for _, sim := range [2]*Simulation{a.s, a.twin} {
		for _, ev := range sim.Poll() {
			if ev.Kind == EventOpRejected {
				a.t.Fatalf("op %v rejected: %v", ev.Op, ev.Err)
			}
		}
	}
}

// TestAuditConvergence: every corruption mode × the 5 topology
// families × {simnet, seeded channet}. Corruption is injected while an
// asynchronously-submitted deletion is still in flight; the audit must
// heal it within a bounded number of passes (the fixed 8-period pump
// IS the bound), churn continues afterwards, and the final state must
// be Verify-clean and equal to the uncorrupted twin.
func TestAuditConvergence(t *testing.T) {
	const period = 32
	for _, topo := range auditTopologies {
		for _, mode := range CorruptModes {
			for _, backend := range []string{"sim", "chan"} {
				topo, mode, backend := topo, mode, backend
				t.Run(fmt.Sprintf("%s/%s/%s", topo.name, mode, backend), func(t *testing.T) {
					t.Parallel()
					if mode == CorruptClock && backend == "sim" {
						t.Skip("simnet has no per-node clock to skew")
					}
					a := newAuditPair(t, topo.gen, 1000, backend, audit.Config{Period: period, Batch: 1 << 12})
					a.deleteHub()
					for i := 0; i < 4; i++ {
						a.deleteOne()
					}
					a.insertOne()

					// Mid-churn injection: submit a deletion asynchronously,
					// let it get airborne, then corrupt. The heal-window pump
					// keeps the adversary quiet for a few audit periods —
					// pending regions are RT-closed, so the in-flight repair
					// cannot read the perturbed records while the audit fixes
					// them underneath.
					crng := rand.New(rand.NewSource(99))
					injected := false
					var rep CorruptReport
					for attempt := 0; attempt < 6 && !injected; attempt++ {
						live := a.s.LiveNodes()
						if len(live) <= 4 {
							break
						}
						// A deletion's RT-closed region can cover every record
						// holder when one big Reconstruction Tree dominates
						// (injection excludes in-region processors), so odd
						// attempts fly an insert instead — its region is tiny.
						var op Op
						if attempt%2 == 0 {
							op = Op{Kind: OpDelete, V: live[a.rng.Intn(len(live))]}
						} else {
							op = Op{Kind: OpInsert, V: a.next, Nbrs: []NodeID{live[a.rng.Intn(len(live))]}}
							a.next++
						}
						if err := a.s.Submit(op); err != nil {
							t.Fatal(err)
						}
						if err := a.twin.Submit(op); err != nil {
							t.Fatal(err)
						}
						a.pump(2)
						rep, injected = a.s.Corrupt(mode, crng)
						a.pump(8 * period)
						a.drain(1 << 15)
					}
					if !injected {
						t.Skipf("mode %v found no eligible state in this campaign", mode)
					}

					// Churn continues on the healed configuration.
					a.deleteOne()
					a.insertOne()
					a.deleteOne()
					a.pump(6 * period)
					a.drain(1 << 15)

					if err := a.s.Verify(); err != nil {
						t.Fatalf("after healing %v on %d (%s): %v", rep.Mode, rep.Victim, rep.Detail, err)
					}
					if err := a.twin.Verify(); err != nil {
						t.Fatalf("twin unhealthy (test harness bug): %v", err)
					}
					if !a.s.Physical().Equal(a.twin.Physical()) {
						t.Fatalf("healed physical network diverged from uncorrupted twin after %v on %d", rep.Mode, rep.Victim)
					}
					if !a.s.GPrime().Equal(a.twin.GPrime()) {
						t.Fatal("G' diverged from uncorrupted twin")
					}
					if st := a.s.AuditStats(); st.Passes == 0 {
						t.Fatal("audit never ran a pass")
					}
				})
			}
		}
	}
}

// corruptWithChurn tries to inject mode, churning a little more
// between attempts so the eligible state (helpers, dead epochs,
// parented records) the mode needs actually exists.
func corruptWithChurn(t *testing.T, s *Simulation, mode CorruptMode, crng, rng *rand.Rand) (CorruptReport, bool) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		if rep, ok := s.Corrupt(mode, crng); ok {
			return rep, true
		}
		if attempt == 4 {
			return CorruptReport{}, false
		}
		live := s.LiveNodes()
		if len(live) <= 4 {
			return CorruptReport{}, false
		}
		v := live[rng.Intn(len(live))]
		for i := 0; i < 2; i++ {
			if c := live[rng.Intn(len(live))]; s.PhysicalDegree(c) > s.PhysicalDegree(v) {
				v = c
			}
		}
		if err := s.Delete(v); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptionCaughtWithoutAudit: with the audit layer off, every
// injection mode must be detected by the central checkers — the full
// Verify, and VerifyDelta once the victim is in the touched set. This
// is the ground truth the audit's distributed detection mirrors, and
// it covers the engine-state modes (claim marks, pending-op
// footprints, Lamport clocks) the older record-corruption table in
// verify_delta_test does not reach.
func TestCorruptionCaughtWithoutAudit(t *testing.T) {
	for _, mode := range CorruptModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(31))
			g0 := graph.PreferentialAttachment(28, 2, rng)
			var s *Simulation
			if mode == CorruptClock {
				// Only channet has per-node Lamport clocks to skew;
				// its Validate hook is what Verify consults.
				s = NewSimulationOn(g0, channet.NewSeeded(9))
			} else {
				s = NewSimulation(g0)
			}
			for i := 0; i < 6; i++ {
				live := s.LiveNodes()
				v := live[rng.Intn(len(live))]
				for j := 0; j < 2; j++ {
					if c := live[rng.Intn(len(live))]; s.PhysicalDegree(c) > s.PhysicalDegree(v) {
						v = c
					}
				}
				if err := s.Delete(v); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Verify(); err != nil {
				t.Fatalf("pre-injection: %v", err)
			}
			crng := rand.New(rand.NewSource(7))
			rep, ok := corruptWithChurn(t, s, mode, crng, rng)
			if !ok {
				t.Skipf("mode %v found no eligible state", mode)
			}
			// The injector is silent — nothing is logged or touched — so
			// hand the delta pass the victim, the way a real incremental
			// sweep would eventually sample it.
			if p, alive := s.procs[rep.Victim]; alive {
				p.markTouched()
			}
			if err := s.VerifyDelta(4); err == nil {
				t.Errorf("VerifyDelta missed %v on %d (%s)", rep.Mode, rep.Victim, rep.Detail)
			}
			if err := s.Verify(); err == nil {
				t.Fatalf("Verify missed %v on %d (%s)", rep.Mode, rep.Victim, rep.Detail)
			}
		})
	}
}

// FuzzStateCorruption decodes a byte string into an interleaved
// op-and-corruption schedule and replays it differentially: the
// audited run absorbs every injection the schedule lands, and must end
// Verify-clean and bit-identical to the uncorrupted twin. Byte pairs
// decode to (action, operand): action%4 ∈ {0: insert, 1,2: delete,
// 3: corrupt with mode operand%|modes|}.
func FuzzStateCorruption(f *testing.F) {
	// One corpus seed per corruption mode: churn, inject, churn.
	for i := range CorruptModes {
		f.Add([]byte{1, 7, 1, 11, 2, 3, 3, byte(i), 1, 5, 0, 9})
	}
	f.Add([]byte{3, 0, 3, 1, 3, 2, 3, 3, 3, 4, 3, 5, 3, 6, 3, 7, 3, 8, 3, 9, 3, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			t.Skip("schedule too long")
		}
		const period = 16
		a := newAuditPair(t, func(rng *rand.Rand) *graph.Graph {
			return graph.PreferentialAttachment(24, 2, rng)
		}, 500, "sim", audit.Config{Period: period, Batch: 1 << 12})
		crng := rand.New(rand.NewSource(13))
		for i := 0; i+1 < len(data); i += 2 {
			action, operand := data[i], data[i+1]
			live := a.s.LiveNodes()
			switch action % 4 {
			case 0:
				if len(live) == 0 {
					continue
				}
				v := a.next
				a.next++
				nbrs := []NodeID{live[int(operand)%len(live)]}
				if err := a.s.Insert(v, nbrs); err != nil {
					t.Fatal(err)
				}
				if err := a.twin.Insert(v, nbrs); err != nil {
					t.Fatal(err)
				}
			case 1, 2:
				if len(live) <= 4 {
					continue
				}
				v := live[int(operand)%len(live)]
				if err := a.s.Delete(v); err != nil {
					t.Fatal(err)
				}
				if err := a.twin.Delete(v); err != nil {
					t.Fatal(err)
				}
			case 3:
				mode := CorruptModes[int(operand)%len(CorruptModes)]
				if _, ok := a.s.Corrupt(mode, crng); ok {
					// Heal window: long enough for confirm-twice repairs
					// and the engine-footprint sweep (2·period+8).
					a.pump(6 * period)
				}
			}
		}
		a.pump(6 * period)
		a.drain(1 << 15)
		if err := a.s.Verify(); err != nil {
			t.Fatalf("audited run not healed: %v", err)
		}
		if !a.s.Physical().Equal(a.twin.Physical()) {
			t.Fatal("healed physical network diverged from uncorrupted twin")
		}
		if !a.s.GPrime().Equal(a.twin.GPrime()) {
			t.Fatal("G' diverged from uncorrupted twin")
		}
	})
}
