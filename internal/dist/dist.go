// Package dist implements the Forgiving Graph as a message-level
// distributed protocol (the paper's Appendix A) running on the
// deterministic round-synchronous simulator of internal/simnet.
//
// Unlike the reference engine of internal/core — which applies the
// virtual-graph semantics atomically with global pointers — every
// processor here keeps only O(1) words per incident G′ edge: its leaf
// avatar and helper records (internal/haft shapes, Lemma 1) with tree
// links stored as (owner, edge) addresses. All repair coordination is
// simnet messages of O(1)–O(log n)-bit words:
//
//  1. Death notification and leader election. The deleted node's
//     physical neighbors (G′ neighbors plus tree neighbors of its
//     avatars) are informed, per the model; the notification carries
//     each neighbor's slot in BT_v, the coordination tree over the
//     notified set. The participants elect the repair leader by a
//     pairwise knockout tournament up BT_v — O(log d) rounds of
//     O(1)-word champion messages — then all begin together: detach
//     the dangling links, seed the damage walks, and grow fresh leaf
//     avatars for the half-dead edges.
//  2. Damage walks. Every helper that lost a child propagates a
//     Breakflag up its parent chain (Algorithm A.5): those nodes no
//     longer head intact subtrees. Walks stop at already-marked nodes
//     and announce the fragment roots they reach; every walk's
//     terminator acks its origin, and a convergecast up BT_v proves
//     the whole phase done to the leader.
//  3. Key probes. Each fragment root runs the prefer-left descent that
//     yields its component's deterministic ordering key; the leader
//     counts one reply per probe to completion.
//  4. Distributed strip. Fragment roots cascade strip visits downward;
//     undamaged stored-perfect nodes detach as primary roots and report
//     O(1)-word descriptors to the leader; damaged or imperfect helpers
//     retire (Lemma 2). Resolution acks convergecast back up each
//     fragment, proving the strip complete.
//  5. Merge. The leader replays the engine's exact haft.Merge over the
//     descriptors (Algorithm A.9, binary addition of trees) and
//     broadcasts the join plan as link instructions.
//
// There is NO out-of-band synchronization anywhere in a repair: each
// one is a message-driven state machine whose leader proves every
// phase's termination in-band — height-bounded convergecast acks
// guarded by height-bounded watchdog timers — chains into the next
// phase itself, and proves its own COMPLETION by counting the merge
// plan's instruction acks. Election and termination-detection traffic
// is charged like all other traffic and reported separately
// (ElectionRounds/SyncRounds), so the round and message counts are
// honest about what coordination costs. The result is behaviorally
// equivalent to internal/core — the same healed graph on the same
// operation sequence, which the differential tests assert — while
// per-repair traffic obeys Theorem 1.3: O(d log n) messages of
// O(log n) bits and O(log d · log n) rounds for a deleted node of
// G′-degree d.
//
// The simulation is driven open-loop (see engine.go): Submit enqueues
// inserts and deletes at any time, Tick/Run advance the network under
// caller control, and typed completion events are drained via Poll.
// Repairs of disjoint regions pipeline; colliding ones serialize in
// submission order, handed off leader-to-leader. The blocking calls —
// Insert, Delete, DeleteBatch — are thin wrappers over the engine
// (Delete = Submit + Drain) preserving the original semantics and
// stats.
//
// Deletions arriving in bursts run through DeleteBatch, which overlaps
// the repairs of independent damaged regions: every message carries its
// repair's epoch, a read-only claim phase — its coordinator elected
// in-band by the same knockout tournament — detects colliding regions,
// and only conflicting repairs serialize (see batch.go). A batch of
// one is exactly Delete.
package dist

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/audit"
	"repro/internal/graph"
	"repro/internal/haft"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// RecoveryStats reports the measured cost of one deletion's repair, the
// quantities Theorem 1.3 / Lemma 4 bound.
type RecoveryStats struct {
	// Deleted is the removed processor; DegreePrime its G′ degree (the
	// d in the bounds).
	Deleted     NodeID
	DegreePrime int
	// Messages and Rounds count protocol traffic and synchronous rounds
	// until quiescence.
	Messages int
	Rounds   int
	// TotalWords and MaxWords measure message sizes in O(log n)-bit
	// words.
	TotalWords int
	MaxWords   int
	// MaxSentByNode is the largest number of messages any single
	// processor sent during the repair.
	MaxSentByNode int
	// NsetSize is the number of processors notified of the deletion —
	// the paper's BT_v coordination set.
	NsetSize int
	// QueuedWords, MaxEdgeBacklog and CongestionRounds mirror the
	// simulator's congestion counters for this repair: words deferred
	// by the per-edge bandwidth limit (round-weighted), the deepest
	// single-edge backlog, and the number of congested rounds. All zero
	// under the default unlimited bandwidth.
	QueuedWords      int
	MaxEdgeBacklog   int
	CongestionRounds int
	// ElectionRounds / SyncRounds expose the synchronization cost the
	// old barrier-driven protocol hid: rounds that carried leader-
	// election tournament traffic and rounds that carried termination-
	// detection traffic (walk acks, convergecast dones). Both kinds of
	// messages are also included in Messages/TotalWords — coordination
	// is charged like any other traffic. ElectionMessages/SyncMessages
	// are the corresponding message counts.
	ElectionRounds   int
	SyncRounds       int
	ElectionMessages int
	SyncMessages     int
}

// Simulation is a distributed Forgiving Graph: processors exchanging
// messages over a synchronous network, with per-repair cost accounting.
// It is not safe for concurrent use; the model is a strictly
// alternating adversary/repair loop.
type Simulation struct {
	net    transport.Driver
	gprime *graph.Graph
	alive  map[NodeID]struct{}
	dead   map[NodeID]struct{}
	procs  map[NodeID]*processor

	// Incrementally maintained physical network (see physical.go).
	phys     *graph.Graph
	physMult map[graph.Edge]int
	dirty    *dirtyList

	// claimers tracks processors holding transient claim marks during a
	// batch's conflict-discovery phase (see batch.go).
	claimers *dirtyList

	// touchers tracks processors whose records changed since the last
	// verification, feeding the incremental VerifyDelta.
	touchers *dirtyList

	// bandwidth is the per-edge words-per-round cap (0 = unlimited);
	// minCap is the smallest positive cap ever configured on any layer
	// (global, per-edge, per-node), sizing the quiescence bound's
	// congestion slack; spread paces the leader's instruction bursts
	// under a finite cap; claimAbort lets a batch's claim phase stop
	// early once the whole batch is known to be one conflict group.
	bandwidth  int
	minCap     int
	spread     bool
	claimAbort bool

	parallel  bool
	last      RecoveryStats
	lastBatch BatchStats

	// Open-loop engine state (see engine.go): the submission queue, the
	// repairs in flight keyed by epoch, the completion list leaders
	// register on in-band, the event buffer and optional streaming
	// observer, and the most recent completed flight's stats. async
	// turns on event buffering once the engine is used asynchronously.
	pending    []*pendingOp
	opSeq      int // submission sequence ticket (Event.Seq)
	inflight   map[NodeID]*flight
	done       *doneList
	events     []Event
	observer   func(Event)
	observerQ  []Event
	async      bool
	inBlocking bool
	lastFlight RecoveryStats

	// bound caches the quiescence bound, recomputed lazily when the
	// node count or the narrowest capacity changes — open-loop ticking
	// must not recompute it per round.
	bound      int
	boundDirty bool

	// Self-stabilizing audit layer (see audit.go): the pacing config,
	// the driver-side counters (phantom-footprint sweeps), and the
	// sweep's stall counter.
	auditOn    bool
	auditCfg   audit.Config
	audStats   audit.Stats
	auditStall int

	// Incremental connectivity certificate (see cert.go): component
	// trackers over the maintained physical graph and over G′ (live
	// nodes marked), the sticky refinement-violation error, and scratch
	// for the removal path.
	physCC     *graph.Components
	gpCC       *graph.Components
	certErr    error
	nbrScratch []NodeID

	// Deterministic sample cursor (see verify_delta.go): live processors
	// in insertion order (IDs are never reused), the round-robin cursors
	// of VerifyDelta's opportunistic sweep and the audit layer's
	// certificate sweep, and the last sample taken (reused buffer).
	sweepSeq   []NodeID
	sweepCur   int
	certCur    int
	lastSample []NodeID

	// btOrder is layBT's reusable scratch (driver-side only).
	btOrder []NodeID

	// Incremental degree indexes (see stubs.go): the Fenwick-weighted
	// preferential-attachment stub multiset the adversary samples in
	// O(log n), and the lazy max-heap over physical/G′ degree ratios
	// that replaced the soak checkpoints' O(n) metrics.Degrees sweep.
	stubs *stubIndex
	degs  *degTracker

	// Coalescing admission queue (see coalesce.go): policy and counters.
	coalesceOn bool
	coalCfg    CoalesceConfig
	coalStats  CoalesceStats
}

// NewSimulation builds the distributed network over an initial
// topology, running on the deterministic round-synchronous simulator
// (internal/simnet) — the measurement backend. Per the model there is
// no pre-processing: processors start knowing only their neighbor
// lists.
func NewSimulation(g0 *graph.Graph) *Simulation {
	return NewSimulationOn(g0, simnet.New())
}

// NewSimulationOn builds the distributed network over an initial
// topology on an explicit transport backend (internal/simnet for
// deterministic rounds, internal/channet for goroutine-per-processor
// real concurrency, internal/wirenet for TCP between OS processes).
// The transport must be empty: the simulation owns node registration.
//
// The simulation drives the backend through the asynchronous control
// plane (transport.Driver): synchronous transports are adapted by
// transport.NewDriver, backends that already implement Driver (the
// wire hub) are used natively.
func NewSimulationOn(g0 *graph.Graph, net transport.Transport) *Simulation {
	s := &Simulation{
		net:    transport.NewDriver(net),
		gprime: g0.Clone(),
		alive:  make(map[NodeID]struct{}, g0.NumNodes()),
		dead:   make(map[NodeID]struct{}),
		procs:  make(map[NodeID]*processor, g0.NumNodes()),
	}
	s.initPhys(g0)
	s.claimers = &dirtyList{}
	s.touchers = &dirtyList{}
	s.done = &doneList{}
	s.inflight = make(map[NodeID]*flight)
	s.spread = true
	s.claimAbort = true
	s.boundDirty = true
	for _, v := range g0.Nodes() {
		s.addProcessor(v)
	}
	for _, v := range g0.Nodes() {
		p := s.procs[v]
		s.gprime.EachNeighbor(v, func(x NodeID) {
			p.nbrs[x] = struct{}{}
		})
	}
	_ = s.net.Drive(context.Background())
	return s
}

// Close releases the transport's machinery (worker processes and
// sockets on the wire backend; a no-op for the in-process backends).
// The simulation must not be used afterwards.
func (s *Simulation) Close() error { return s.net.Close() }

// WorkerPIDs returns the OS process IDs of the transport's worker
// processes, or nil for in-process backends — introspection for demos
// and operational checks that the fabric really spans processes.
func (s *Simulation) WorkerPIDs() []int {
	if w, ok := netAs[interface{ WorkerPIDs() []int }](s.net); ok {
		return w.WorkerPIDs()
	}
	return nil
}

// netAs probes the backend for an optional capability T. The probe
// must reach the backend itself, not the Driver adapter a synchronous
// transport is wrapped in, so it type-asserts on the driver first and
// then behind Unwrap.
func netAs[T any](d transport.Driver) (T, bool) {
	if v, ok := any(d).(T); ok {
		return v, true
	}
	if u, ok := any(d).(transport.Unwrapper); ok {
		v, ok := any(u.Unwrap()).(T)
		return v, ok
	}
	var zero T
	return zero, false
}

func (s *Simulation) addProcessor(v NodeID) {
	p := newProcessor(v)
	p.dirty = s.dirty
	p.claimers = s.claimers
	p.touchers = s.touchers
	p.done = s.done
	p.spread = s.spread
	s.procs[v] = p
	s.alive[v] = struct{}{}
	s.sweepSeq = append(s.sweepSeq, v)
	s.stubs.addNode(v)
	if d := s.phys.Degree(v); d > 0 {
		// Initial topology: the physical graph already carries v's edges.
		s.stubs.adjust(v, d)
	}
	s.degChanged(v)
	s.gpCC.OnAddNode(v) // no-op for initial nodes, labeled at construction
	s.gpCC.Mark(v)
	s.net.AddNode(v, p.handle)
	if s.auditOn {
		p.auditOn, p.auditCfg = true, s.auditCfg
		s.armAuditTick(v)
	}
}

// SetParallel switches between sequential message delivery (default,
// the measurement mode) and a goroutine per processor per round. Both
// modes produce identical results; handlers only touch their own
// processor's state.
func (s *Simulation) SetParallel(on bool) { s.parallel = on }

// SetBandwidth caps every network edge at the given number of
// message-words per round (0, the default, is unlimited — the paper's
// model). Under a finite cap excess traffic queues FIFO per edge and
// spills into later rounds: the healed graph is identical for every
// cap, only rounds (and the congestion counters in the stats) change.
func (s *Simulation) SetBandwidth(words int) {
	s.bandwidth = words
	s.noteCap(words)
	s.net.SetBandwidth(words)
}

// noteCap remembers the narrowest positive cap ever configured, so the
// quiescence bound's congestion slack covers the slowest link.
func (s *Simulation) noteCap(words int) {
	if words > 0 && (s.minCap == 0 || words < s.minCap) {
		s.minCap = words
		s.boundDirty = true
	}
}

// SetEdgeBandwidth overrides the capacity of one directed edge,
// modeling heterogeneous links; words <= 0 clears the override. The
// leader's send pacing consults the per-edge budgets, so a narrower
// cap on one link trickles that link at its own rate instead of
// piling avoidable backlog onto it.
func (s *Simulation) SetEdgeBandwidth(from, to NodeID, words int) {
	s.noteCap(words)
	s.net.SetEdgeBandwidth(from, to, words)
}

// SetNodeBandwidth caps every link incident to one processor at the
// given words per round (0 clears) — a slow access link in a
// heterogeneous topology. Compounds with the global and per-edge caps
// by minimum; the send pacing sees the clamped budgets too.
func (s *Simulation) SetNodeBandwidth(v NodeID, words int) {
	s.noteCap(words)
	s.net.SetNodeBandwidth(v, words)
}

// EdgeCapacity returns the effective words-per-round capacity of one
// directed edge (0 = unlimited), every cap layer applied. Adversaries
// targeting the slowest links read it.
func (s *Simulation) EdgeCapacity(from, to NodeID) int {
	return s.net.EdgeBudget(from, to)
}

// SetSpread toggles sender-side pacing of the repair leader's
// instruction bursts (key probes, strip visits, and the merge plan's
// link instructions). Default on: under a finite bandwidth the leader
// trickles at most the edge budget per destination per round from a
// local outbox instead of dumping the whole burst into the network,
// which shrinks MaxEdgeBacklog without changing the healed graph. Off
// reproduces the bursty behavior, useful for measuring the hotspot the
// pacing removes. No effect under unlimited bandwidth.
func (s *Simulation) SetSpread(on bool) {
	s.spread = on
	for _, p := range s.procs {
		p.spread = on
	}
}

// SetClaimAbort toggles the batched-deletion claim phase's early
// abort (default on): once conflict discovery proves the whole batch
// is one conflict group, the remaining claim traffic is moot — the
// batch falls back to fully sequential waves either way — so the
// synchronizer drops it instead of delivering it.
func (s *Simulation) SetClaimAbort(on bool) { s.claimAbort = on }

// Alive reports whether processor v is currently in the network.
func (s *Simulation) Alive(v NodeID) bool {
	_, ok := s.alive[v]
	return ok
}

// NumAlive returns the number of live processors.
func (s *Simulation) NumAlive() int { return len(s.alive) }

// NumEver returns |G′|: every processor ever inserted, deleted or not.
func (s *Simulation) NumEver() int { return s.gprime.NumNodes() }

// LiveNodes returns the live processors in ascending order.
func (s *Simulation) LiveNodes() []NodeID {
	out := make([]NodeID, 0, len(s.alive))
	for v := range s.alive {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GPrime returns a snapshot of G′ (insertions only, no deletions
// applied). The caller owns the copy.
func (s *Simulation) GPrime() *graph.Graph { return s.gprime.Clone() }

// LastRecovery returns the cost of the most recent blocking deletion's
// repair. Repairs completing through the open-loop engine report their
// cost in the RepairDone event instead.
func (s *Simulation) LastRecovery() RecoveryStats { return s.last }

// Round returns the transport's pulse counter: rounds on simnet,
// delivered pulses on channet.
func (s *Simulation) Round() int { return s.net.Round() }

// NetMessages returns the delivered network message total since the
// transport's stats were last reset, all classes included.
func (s *Simulation) NetMessages() int { return s.net.Stats().Messages }

// Insert adds processor v connected to the given live neighbors, per
// the model's adversarial insertion, applied synchronously. It is the
// blocking form of submitting an OpInsert and requires an idle engine;
// under asynchronous churn use Submit, which defers inserts landing in
// a damaged region until the region's repair completes.
func (s *Simulation) Insert(v NodeID, nbrs []NodeID) error {
	if err := s.requireIdle("insert"); err != nil {
		return err
	}
	defer s.beginBlocking()()
	return s.insertNow(v, nbrs)
}

// insertNow applies one insertion. Insertion triggers no repair and
// costs no protocol traffic; the new edges join both G′ and the actual
// network.
func (s *Simulation) insertNow(v NodeID, nbrs []NodeID) error {
	if s.gprime.HasNode(v) {
		return fmt.Errorf("dist: insert %d: id already used (ids are never reused)", v)
	}
	seen := make(map[NodeID]struct{}, len(nbrs))
	for _, x := range nbrs {
		if x == v {
			return fmt.Errorf("dist: insert %d: self edge", v)
		}
		if !s.Alive(x) {
			return fmt.Errorf("dist: insert %d: neighbor %d is not a live node", v, x)
		}
		if _, dup := seen[x]; dup {
			return fmt.Errorf("dist: insert %d: duplicate neighbor %d", v, x)
		}
		seen[x] = struct{}{}
	}
	s.gprime.AddNode(v)
	s.boundDirty = true
	s.addProcessor(v)
	s.phys.AddNode(v)
	s.physCC.OnAddNode(v)
	p := s.procs[v]
	p.markTouched()
	for _, x := range nbrs {
		if s.gprime.AddEdge(v, x) {
			s.gpCC.OnAddEdge(v, x)
		}
		p.nbrs[x] = struct{}{}
		s.procs[x].nbrs[v] = struct{}{}
		s.procs[x].markTouched()
		s.physAdd(v, x)
		// physAdd refreshed the physical side; the G′ degrees moved too.
		s.degChanged(v)
		s.degChanged(x)
	}
	return nil
}

// pendingRepair is one deletion whose repair is about to run: the
// processors to notify (the paper's BT_v set). The deleted node's ID
// doubles as the repair's epoch. The repair leader is NOT chosen here
// — the participants elect it in-band by the knockout tournament over
// BT_v.
type pendingRepair struct {
	v      NodeID
	notify []NodeID
}

// affectedBy returns the processors holding a link to v — its G′
// neighbors plus owners of tree nodes adjacent to its avatars. These
// are exactly v's physical neighbors, who detect the deletion per the
// model.
func (s *Simulation) affectedBy(v NodeID) map[NodeID]struct{} {
	p := s.procs[v]
	affected := make(map[NodeID]struct{})
	addOwner := func(a addr) {
		if a.ok() && a.Owner != v {
			affected[a.Owner] = struct{}{}
		}
	}
	for x := range p.nbrs {
		if _, live := s.alive[x]; live {
			affected[x] = struct{}{}
		}
	}
	for _, l := range p.leaves {
		addOwner(l.parent)
	}
	for _, h := range p.helpers {
		addOwner(h.parent)
		addOwner(h.left)
		addOwner(h.right)
	}
	return affected
}

// removeProcessor takes v out of the network: its live G′ edges and the
// physical images of its records' parent links disappear with it (the
// dangling links on surviving neighbors are cleared — and logged — by
// their death handlers).
func (s *Simulation) removeProcessor(v NodeID) {
	p := s.procs[v]
	// Audit counters survive their processor: fold them into the
	// simulation-level accumulator, or churn silently erases most of
	// the pass/probe/repair history AuditStats reports.
	s.audStats.Add(p.aStats)
	s.gprime.EachNeighbor(v, func(x NodeID) {
		if _, live := s.alive[x]; live && x != v {
			s.physDel(v, x)
		}
	})
	for _, l := range p.leaves {
		if l.parent.ok() {
			s.physDel(v, l.parent.Owner)
		}
	}
	for _, h := range p.helpers {
		if h.parent.ok() {
			s.physDel(v, h.parent.Owner)
		}
	}
	delete(s.alive, v)
	s.dead[v] = struct{}{}
	delete(s.procs, v)
	if s.auditOn {
		// The dead processor's standing audit tick must go with it, or
		// netQuiet's "one armed tick per live processor" count drifts
		// (simnet discards a removed node's timers only at fire time).
		if tc, ok := netAs[interface{ CancelTimers(NodeID) int }](s.net); ok {
			tc.CancelTimers(v)
		}
	}
	s.net.RemoveNode(v)
	// Physical edges into v from OTHER processors' records (parent-link
	// images owned by survivors) may still carry positive multiplicity;
	// their delete edits arrive through the survivors' edit logs and
	// drain later. The node leaves the graph now, so remove the
	// remaining incident edges explicitly — keeping the connectivity
	// certificate in lockstep with every graph mutation — and let the
	// late drains find multiplicity hitting zero with the edge already
	// gone (physDel tolerates that). Neighbors are collected first: the
	// adjacency set must not be mutated mid-iteration.
	s.nbrScratch = s.nbrScratch[:0]
	s.phys.EachNeighbor(v, func(x NodeID) { s.nbrScratch = append(s.nbrScratch, x) })
	for _, x := range s.nbrScratch {
		if s.phys.RemoveEdge(v, x) {
			s.physCC.OnRemoveEdge(v, x)
			s.stubs.adjust(x, -1)
			s.degChanged(x)
		}
	}
	s.phys.RemoveNode(v)
	s.physCC.OnRemoveNode(v)
	s.gpCC.Unmark(v)
	s.stubs.removeNode(v)
	s.degs.remove(v)
}

// prepareRepair removes v from the network, returning nil when v was
// isolated in the virtual graph (nothing to repair).
func (s *Simulation) prepareRepair(v NodeID) *pendingRepair {
	affected := s.affectedBy(v)
	s.removeProcessor(v)
	if len(affected) == 0 {
		return nil
	}
	notify := make([]NodeID, 0, len(affected))
	for x := range affected {
		notify = append(notify, x)
	}
	sort.Slice(notify, func(i, j int) bool { return notify[i] < notify[j] })
	return &pendingRepair{v: v, notify: notify}
}

// Delete removes processor v and runs the distributed repair to
// quiescence, recording its cost in LastRecovery. It is the blocking
// form of submitting an OpDelete and draining the engine (which is
// exactly how it is implemented), and requires an idle engine.
func (s *Simulation) Delete(v NodeID) error {
	if err := s.requireIdle("delete"); err != nil {
		return err
	}
	if !s.Alive(v) {
		return fmt.Errorf("dist: delete %d: not a live node", v)
	}
	defer s.beginBlocking()()
	s.last = RecoveryStats{Deleted: v, DegreePrime: s.gprime.Degree(v)}
	s.net.ResetStats()
	s.pending = append(s.pending, &pendingOp{
		op: Op{Kind: OpDelete, V: v}, submitRound: s.net.Round(), after: noNode,
	})
	s.admit()
	if err := s.Drain(); err != nil {
		return fmt.Errorf("dist: delete %d: %w", v, err)
	}
	st := s.net.Stats()
	s.last.Messages = st.Messages
	s.last.Rounds = st.Rounds
	s.last.TotalWords = st.TotalWords
	s.last.MaxWords = st.MaxWords
	s.last.MaxSentByNode = st.MaxSentByNode
	s.last.NsetSize = s.lastFlight.NsetSize
	s.last.QueuedWords = st.QueuedWords
	s.last.MaxEdgeBacklog = st.MaxEdgeBacklog
	s.last.CongestionRounds = st.CongestionRounds
	s.last.ElectionRounds = st.ElectionRounds
	s.last.SyncRounds = st.SyncRounds
	s.last.ElectionMessages = st.ElectionMessages
	s.last.SyncMessages = st.SyncMessages
	return nil
}

// roundBound is the quiescence bound for one phase: a generous
// multiple of the O(log n) depth any single phase can need, plus —
// under a finite per-edge bandwidth — slack for the rounds a congested
// edge takes to drain. A phase's total traffic is O(d log n) words
// with d < n, an edge carries at least B words (or one message) per
// round, so the slack below is far beyond any honest run; hitting the
// bound still means the protocol is broken, never that it is slow.
// The bound is cached — it changes only when a node is inserted or a
// narrower capacity appears — so the open-loop engine's per-tick
// bookkeeping stays O(1).
func (s *Simulation) roundBound() int {
	if s.boundDirty {
		logn := haft.CeilLog2(s.gprime.NumNodes()) + 2
		bound := 32*logn + 64
		if B := s.minCap; B > 0 {
			bound += 64 * (s.gprime.NumNodes() + 2) * logn / B
		}
		if s.auditOn {
			// Audit passes fire mid-drain and their conversations need a
			// couple of rounds each; two full periods of slack covers any
			// pass the bound window can contain.
			bound += 2*s.auditCfg.Period + 64
		}
		s.bound, s.boundDirty = bound, false
	}
	return s.bound
}

// step advances the transport one pulse in the current delivery mode.
// Parallel mode is a capability: transports that cannot offer an
// observationally-identical concurrent round (only simnet can) just
// run their ordinary pulse — channet is concurrent by construction,
// and the wire backend's Pulse is one full fabric drain.
func (s *Simulation) step() int {
	if s.parallel {
		if ps, ok := netAs[transport.ParallelStepper](s.net); ok {
			return ps.ParallelStep()
		}
	}
	return s.net.Pulse().Delivered
}

// run steps the network to quiescence in the current delivery mode,
// then folds the processors' pending physical-graph edits into the
// maintained network. The pulse bound mirrors simnet's historical
// RunUntilQuiescent contract: on simnet one pulse is one round, and on
// any transport a pulse delivers at least one pending message or
// timer, so hitting the bound still means the protocol is broken,
// never that it is slow.
func (s *Simulation) run() error {
	bound := s.roundBound()
	var err error
	pulses := 0
	for !s.netQuiet() {
		if pulses >= bound {
			err = fmt.Errorf("dist: not quiescent after %d pulses (%d pending)",
				pulses, s.net.Pending())
			break
		}
		s.step()
		pulses++
	}
	s.drainPhys()
	return err
}
