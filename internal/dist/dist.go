// Package dist implements the Forgiving Graph as a message-level
// distributed protocol (the paper's Appendix A) running on the
// deterministic round-synchronous simulator of internal/simnet.
//
// Unlike the reference engine of internal/core — which applies the
// virtual-graph semantics atomically with global pointers — every
// processor here keeps only O(1) words per incident G′ edge: its leaf
// avatar and helper records (internal/haft shapes, Lemma 1) with tree
// links stored as (owner, edge) addresses. All repair coordination is
// simnet messages of O(1)–O(log n)-bit words:
//
//  1. Death notification. The deleted node's physical neighbors (G′
//     neighbors plus tree neighbors of its avatars) are informed, per
//     the model. They detach the dangling links, seed the damage walks,
//     and grow fresh leaf avatars for the half-dead edges. The
//     smallest-ID notified processor coordinates (the root of BT_v).
//  2. Damage walks. Every helper that lost a child propagates a
//     Breakflag up its parent chain (Algorithm A.5): those nodes no
//     longer head intact subtrees. Walks stop at already-marked nodes
//     and announce the fragment roots they reach.
//  3. Key probes. Each fragment root runs the prefer-left descent that
//     yields its component's deterministic ordering key.
//  4. Distributed strip. Fragment roots cascade strip visits downward;
//     undamaged stored-perfect nodes detach as primary roots and report
//     O(1)-word descriptors to the leader; damaged or imperfect helpers
//     retire (Lemma 2).
//  5. Merge. The leader replays the engine's exact haft.Merge over the
//     descriptors (Algorithm A.9, binary addition of trees) and
//     broadcasts the join plan as link instructions.
//
// Phases are separated by quiescence of the synchronous network (the
// synchronizer's timers carry no words and count no messages). The
// result is behaviorally equivalent to internal/core — the same healed
// graph on the same operation sequence, which the differential tests
// assert — while per-repair traffic obeys Theorem 1.3: O(d log n)
// messages of O(log n) bits and O(log d · log n) rounds for a deleted
// node of G′-degree d.
package dist

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/haft"
	"repro/internal/simnet"
)

// RecoveryStats reports the measured cost of one deletion's repair, the
// quantities Theorem 1.3 / Lemma 4 bound.
type RecoveryStats struct {
	// Deleted is the removed processor; DegreePrime its G′ degree (the
	// d in the bounds).
	Deleted     NodeID
	DegreePrime int
	// Messages and Rounds count protocol traffic and synchronous rounds
	// until quiescence.
	Messages int
	Rounds   int
	// TotalWords and MaxWords measure message sizes in O(log n)-bit
	// words.
	TotalWords int
	MaxWords   int
	// MaxSentByNode is the largest number of messages any single
	// processor sent during the repair.
	MaxSentByNode int
	// NsetSize is the number of processors notified of the deletion —
	// the paper's BT_v coordination set.
	NsetSize int
}

// Simulation is a distributed Forgiving Graph: processors exchanging
// messages over a synchronous network, with per-repair cost accounting.
// It is not safe for concurrent use; the model is a strictly
// alternating adversary/repair loop.
type Simulation struct {
	net    *simnet.Network
	gprime *graph.Graph
	alive  map[NodeID]struct{}
	dead   map[NodeID]struct{}
	procs  map[NodeID]*processor

	parallel bool
	last     RecoveryStats
}

// NewSimulation builds the distributed network over an initial
// topology. Per the model there is no pre-processing: processors start
// knowing only their neighbor lists.
func NewSimulation(g0 *graph.Graph) *Simulation {
	s := &Simulation{
		net:    simnet.New(),
		gprime: g0.Clone(),
		alive:  make(map[NodeID]struct{}, g0.NumNodes()),
		dead:   make(map[NodeID]struct{}),
		procs:  make(map[NodeID]*processor, g0.NumNodes()),
	}
	for _, v := range g0.Nodes() {
		s.addProcessor(v)
	}
	for _, v := range g0.Nodes() {
		p := s.procs[v]
		s.gprime.EachNeighbor(v, func(x NodeID) {
			p.nbrs[x] = struct{}{}
		})
	}
	return s
}

func (s *Simulation) addProcessor(v NodeID) {
	p := newProcessor(v)
	s.procs[v] = p
	s.alive[v] = struct{}{}
	s.net.AddNode(v, p.handle)
}

// SetParallel switches between sequential message delivery (default,
// the measurement mode) and a goroutine per processor per round. Both
// modes produce identical results; handlers only touch their own
// processor's state.
func (s *Simulation) SetParallel(on bool) { s.parallel = on }

// Alive reports whether processor v is currently in the network.
func (s *Simulation) Alive(v NodeID) bool {
	_, ok := s.alive[v]
	return ok
}

// NumAlive returns the number of live processors.
func (s *Simulation) NumAlive() int { return len(s.alive) }

// NumEver returns |G′|: every processor ever inserted, deleted or not.
func (s *Simulation) NumEver() int { return s.gprime.NumNodes() }

// LiveNodes returns the live processors in ascending order.
func (s *Simulation) LiveNodes() []NodeID {
	out := make([]NodeID, 0, len(s.alive))
	for v := range s.alive {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GPrime returns a snapshot of G′ (insertions only, no deletions
// applied). The caller owns the copy.
func (s *Simulation) GPrime() *graph.Graph { return s.gprime.Clone() }

// LastRecovery returns the cost of the most recent deletion's repair.
func (s *Simulation) LastRecovery() RecoveryStats { return s.last }

// Insert adds processor v connected to the given live neighbors, per
// the model's adversarial insertion. Insertion triggers no repair and
// costs no protocol traffic; the new edges join both G′ and the actual
// network.
func (s *Simulation) Insert(v NodeID, nbrs []NodeID) error {
	if s.gprime.HasNode(v) {
		return fmt.Errorf("dist: insert %d: id already used (ids are never reused)", v)
	}
	seen := make(map[NodeID]struct{}, len(nbrs))
	for _, x := range nbrs {
		if x == v {
			return fmt.Errorf("dist: insert %d: self edge", v)
		}
		if !s.Alive(x) {
			return fmt.Errorf("dist: insert %d: neighbor %d is not a live node", v, x)
		}
		if _, dup := seen[x]; dup {
			return fmt.Errorf("dist: insert %d: duplicate neighbor %d", v, x)
		}
		seen[x] = struct{}{}
	}
	s.gprime.AddNode(v)
	s.addProcessor(v)
	p := s.procs[v]
	for _, x := range nbrs {
		s.gprime.AddEdge(v, x)
		p.nbrs[x] = struct{}{}
		s.procs[x].nbrs[v] = struct{}{}
	}
	return nil
}

// Delete removes processor v and runs the distributed repair to
// quiescence, recording its cost in LastRecovery.
func (s *Simulation) Delete(v NodeID) error {
	if !s.Alive(v) {
		return fmt.Errorf("dist: delete %d: not a live node", v)
	}
	p := s.procs[v]

	// The notification set: everyone holding a link to v — G′ neighbors
	// (their shared edge just went half-dead) and owners of tree nodes
	// adjacent to v's avatars (their records now dangle). These are
	// exactly v's physical neighbors, who detect the deletion per the
	// model.
	affected := make(map[NodeID]struct{})
	addOwner := func(a addr) {
		if a.ok() && a.Owner != v {
			affected[a.Owner] = struct{}{}
		}
	}
	for x := range p.nbrs {
		if _, live := s.alive[x]; live {
			affected[x] = struct{}{}
		}
	}
	for _, l := range p.leaves {
		addOwner(l.parent)
	}
	for _, h := range p.helpers {
		addOwner(h.parent)
		addOwner(h.left)
		addOwner(h.right)
	}

	delete(s.alive, v)
	s.dead[v] = struct{}{}
	delete(s.procs, v)
	s.net.RemoveNode(v)
	s.last = RecoveryStats{Deleted: v, DegreePrime: s.gprime.Degree(v)}
	if len(affected) == 0 {
		return nil // isolated in the virtual graph: nothing to repair
	}

	notify := make([]NodeID, 0, len(affected))
	for x := range affected {
		notify = append(notify, x)
	}
	sort.Slice(notify, func(i, j int) bool { return notify[i] < notify[j] })
	leader := notify[0]

	// Each neighbor detects the deletion itself (the model's detection
	// assumption), so the notification is a self-addressed message:
	// the word cost is charged, but to the live detector, never to the
	// vanished processor.
	s.net.ResetStats()
	for _, x := range notify {
		s.net.Send(x, x, msgDeath{V: v, Leader: leader}, wordsDeath)
	}
	if err := s.run(); err != nil {
		return fmt.Errorf("dist: delete %d: notify phase: %w", v, err)
	}
	for _, phase := range []struct {
		name    string
		trigger any
	}{
		{"key", msgStartKeys{}},
		{"strip", msgStartStrip{}},
		{"merge", msgStartMerge{}},
	} {
		s.net.SendTimer(leader, phase.trigger, 1)
		if err := s.run(); err != nil {
			return fmt.Errorf("dist: delete %d: %s phase: %w", v, phase.name, err)
		}
	}

	st := s.net.Stats()
	s.last.Messages = st.Messages
	s.last.Rounds = st.Rounds
	s.last.TotalWords = st.TotalWords
	s.last.MaxWords = st.MaxWords
	s.last.MaxSentByNode = st.MaxSentByNode
	s.last.NsetSize = len(affected)
	return nil
}

// run steps the network to quiescence in the current delivery mode. The
// round bound is a generous multiple of the O(log n) depth any single
// phase can need; hitting it means the protocol is broken.
func (s *Simulation) run() error {
	bound := 32*(haft.CeilLog2(s.gprime.NumNodes())+2) + 64
	var err error
	if s.parallel {
		_, err = s.net.RunUntilQuiescentParallel(bound)
	} else {
		_, err = s.net.RunUntilQuiescent(bound)
	}
	return err
}
