package dist

import (
	"testing"

	"repro/internal/graph"
)

func TestStarHubDeletion(t *testing.T) {
	n := 16
	s := NewSimulation(graph.Star(n))
	if s.NumAlive() != n {
		t.Fatalf("alive = %d, want %d", s.NumAlive(), n)
	}
	if err := s.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	rs := s.LastRecovery()
	if rs.Deleted != 0 || rs.DegreePrime != n-1 || rs.NsetSize != n-1 {
		t.Fatalf("recovery stats = %+v", rs)
	}
	if rs.Messages == 0 || rs.Rounds == 0 || rs.MaxWords == 0 || rs.TotalWords < rs.Messages {
		t.Fatalf("missing accounting: %+v", rs)
	}
	phys := s.Physical()
	if got := phys.NumNodes(); got != n-1 {
		t.Fatalf("physical nodes = %d, want %d", got, n-1)
	}
	// The repair must reconnect the shattered star.
	reach := phys.BFS(1)
	if len(reach) != n-1 {
		t.Fatalf("network not whole after repair: reached %d of %d", len(reach), n-1)
	}
}

func TestRepeatedDeletionsOnPath(t *testing.T) {
	s := NewSimulation(graph.Path(8))
	for _, v := range []NodeID{3, 4, 2, 5} {
		if err := s.Delete(v); err != nil {
			t.Fatalf("delete %d: %v", v, err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("after delete %d: %v", v, err)
		}
	}
	if got := s.NumAlive(); got != 4 {
		t.Fatalf("alive = %d, want 4", got)
	}
	phys := s.Physical()
	if d := phys.Distance(0, 7); d < 1 {
		t.Fatalf("0 and 7 disconnected (distance %d)", d)
	}
}

func TestInsertValidation(t *testing.T) {
	s := NewSimulation(graph.Path(3))
	if err := s.Insert(1, nil); err == nil {
		t.Fatal("reused id accepted")
	}
	if err := s.Insert(9, []NodeID{9}); err == nil {
		t.Fatal("self edge accepted")
	}
	if err := s.Insert(9, []NodeID{77}); err == nil {
		t.Fatal("dead neighbor accepted")
	}
	if err := s.Insert(9, []NodeID{1, 1}); err == nil {
		t.Fatal("duplicate neighbor accepted")
	}
	if err := s.Insert(9, []NodeID{0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	// Deleted ids are never reused.
	if err := s.Insert(1, nil); err == nil {
		t.Fatal("deleted id reused")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteValidation(t *testing.T) {
	s := NewSimulation(graph.Star(4))
	if err := s.Delete(99); err == nil {
		t.Fatal("unknown node deleted")
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(1); err == nil {
		t.Fatal("double deletion accepted")
	}
}

func TestIsolatedNodeDeletion(t *testing.T) {
	g := graph.New()
	g.AddNode(0)
	g.AddEdge(1, 2)
	s := NewSimulation(g)
	if err := s.Delete(0); err != nil {
		t.Fatal(err)
	}
	rs := s.LastRecovery()
	if rs.Messages != 0 || rs.NsetSize != 0 {
		t.Fatalf("isolated deletion should cost nothing: %+v", rs)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	run := func(parallel bool) (RecoveryStats, *graph.Graph) {
		s := NewSimulation(graph.Star(12))
		s.SetParallel(parallel)
		if err := s.Delete(0); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(5); err != nil {
			t.Fatal(err)
		}
		if err := s.Verify(); err != nil {
			t.Fatal(err)
		}
		return s.LastRecovery(), s.Physical()
	}
	seqStats, seqPhys := run(false)
	parStats, parPhys := run(true)
	if seqStats != parStats {
		t.Fatalf("modes diverge: %+v vs %+v", seqStats, parStats)
	}
	if !seqPhys.Equal(parPhys) {
		t.Fatal("parallel and sequential healed graphs differ")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() *graph.Graph {
		s := NewSimulation(graph.Grid(4, 4))
		for _, v := range []NodeID{5, 6, 9, 10, 0} {
			if err := s.Delete(v); err != nil {
				t.Fatal(err)
			}
		}
		return s.Physical()
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Fatal("two identical runs produced different healed graphs")
	}
}
