package dist

import (
	"fmt"
	"sort"

	"repro/internal/transport"
)

// The open-loop churn engine.
//
// The paper's model is an adversary issuing an arbitrary interleaved
// sequence of insertions and deletions; the blocking API serialized
// that world — every Delete ran the simulator to quiescence before the
// caller could move. The engine below inverts the control flow:
// Submit enqueues operations at any time (including while repairs are
// in flight), Tick/Run advance the network round by round under caller
// control, and typed completion events are drained via Poll or pushed
// through an observer. The blocking calls survive as thin wrappers
// (Delete = Submit + Drain), so every differential guarantee carries
// over unchanged.
//
// Scheduling semantics: operations are applied as if executed one at a
// time in submission order (the serialized blocking replay — the twin
// the differential tests and FuzzAsyncChurn check against), but
// operations whose footprints are disjoint run concurrently. The
// footprint ("region") of a deletion is the processor set its repair
// can possibly touch: the deleted node's physical neighborhood (the
// notified set and the fresh-leaf owners) plus every owner of a record
// in any Reconstruction Tree holding one of its records — repairs
// walk, strip, and merge strictly within those trees, and the merged
// tree's new helpers live on representative slots drawn from them, so
// the region is closed under everything the repair does. An insert's
// footprint is the new node and its attachment points. The engine
// admits a pending operation the moment its region is disjoint from
// every in-flight repair AND from every earlier-submitted operation
// still waiting — the incremental claim admission: region disjointness
// is exactly what the batch claim phase discovers by message, checked
// here against live epochs by the scheduler (an admission decision,
// i.e. the adversary's move order; the repair protocol itself remains
// fully in-band). Inserts landing in a damaged region are therefore
// deferred until the region's repair completes and are released by its
// leader's completion signal.
//
// Repair completion is detected in-band: every merge-plan instruction
// is acked back to the leader (msgMergeAck), whose count reaching zero
// retires the repair and registers it on the done list the engine
// drains after each round. A completing repair hands its serialized
// region off leader-to-leader: the finishing leader itself sends the
// next deletion's death notifications — one per notified member — so
// no driver barrier remains between the waves of a conflict group.

// OpKind distinguishes the two operation flavors.
type OpKind uint8

const (
	// OpInsert adds a node attached to existing live neighbors.
	OpInsert OpKind = iota + 1
	// OpDelete removes a node, triggering the distributed repair.
	OpDelete
)

// Op is one churn operation submitted to the open-loop engine.
type Op struct {
	Kind OpKind
	V    NodeID
	Nbrs []NodeID // OpInsert only
}

func (o Op) String() string {
	if o.Kind == OpInsert {
		return fmt.Sprintf("insert %d %v", o.V, o.Nbrs)
	}
	return fmt.Sprintf("delete %d", o.V)
}

// EventKind tags a completion event.
type EventKind uint8

const (
	// EventRepairDone: one deletion's repair finished; Repair carries
	// its measured cost. Under overlapping repairs the additive fields
	// are the deltas between launch and completion (concurrent epochs
	// share rounds), and the Max* fields are high-water marks since the
	// last stats reset.
	EventRepairDone EventKind = iota + 1
	// EventInsertApplied: a submitted insertion was admitted and
	// applied.
	EventInsertApplied
	// EventBatchDone: a blocking DeleteBatch finished; Batch carries
	// the full batch statistics.
	EventBatchDone
	// EventOpRejected: a submitted operation failed validation at its
	// serialization point (deleting a dead node, inserting onto a
	// neighbor that a previously submitted deletion removed, a reused
	// ID). Err holds the same error the blocking call would return.
	EventOpRejected
	// EventOpCancelled: the coalescing queue annihilated this operation
	// with its pending partner — a delete(v) arriving while insert(v)
	// was still pending elides both (see coalesce.go). Fired for each
	// half of the pair, insert first; neither op touches the network.
	EventOpCancelled
)

// Event is one typed completion notification from the engine.
type Event struct {
	Kind EventKind
	// Seq is the submission sequence number of the operation this
	// event concludes: the i-th op ever passed to Submit has Seq i
	// (counting from 1). It ties an event to its submission even when
	// arrival order differs — an op rejected at submission (target
	// already dead) reports immediately, jumping ahead of an
	// earlier-submitted repair still in flight. Events not tied to a
	// submitted op (EventBatchDone from a blocking batch) carry 0.
	Seq int
	// V is the node the event is about (the deleted or inserted node).
	V NodeID
	// Op is the rejected or cancelled operation (EventOpRejected,
	// EventOpCancelled).
	Op Op
	// Repair is the completed repair's cost (EventRepairDone).
	Repair RecoveryStats
	// Batch is the completed batch's cost (EventBatchDone).
	Batch BatchStats
	// Latency is the number of network rounds between the operation's
	// submission and this event.
	Latency int
	// Err is why the operation was rejected (EventOpRejected).
	Err error
}

// pendingOp is one submitted operation waiting for admission.
type pendingOp struct {
	op          Op
	seq         int // submission sequence number (Event.Seq)
	submitRound int
	// chain marks a DeleteBatch wave member whose serialization was
	// already decided by the in-band claim phase: it waits for the
	// specific epoch in after (noNode once released) instead of the
	// region checks.
	chain bool
	after NodeID
	// region is the footprint computed at the last admission attempt;
	// blockers the in-flight epochs that overlapped it (for handoff
	// attribution).
	region   map[NodeID]struct{}
	blockers []NodeID
	// from is the finishing leader that released this op, when one did:
	// the launch sends the death notifications leader-to-leader.
	from     NodeID
	haveFrom bool
	// hold is the coalescing window: the number of engine Ticks this op
	// must stay pending (and coalescible) before it may launch. merged
	// marks a delete chained behind an overlapping pending delete by the
	// coalescing queue; it waits on after like a chain op but re-enters
	// the normal admission path on release, and its launch pre-appoints
	// the repair leader (see coalesce.go).
	hold   int
	merged bool
}

// flight is one repair in progress.
type flight struct {
	v           NodeID
	seq         int // submission sequence number (Event.Seq)
	degree      int
	notify      int
	region      map[NodeID]struct{}
	statsAt     transport.Stats
	submitRound int
}

// Submit enqueues operations for asynchronous execution, admitting
// immediately whatever the in-flight repairs allow. Structural
// validity (self edges, duplicate neighbors) is checked synchronously;
// state-dependent validity is checked at each operation's
// serialization point and reported as EventOpRejected, exactly
// mirroring the error the blocking call would have returned.
func (s *Simulation) Submit(ops ...Op) error {
	for _, op := range ops {
		switch op.Kind {
		case OpDelete:
		case OpInsert:
			seen := make(map[NodeID]struct{}, len(op.Nbrs))
			for _, x := range op.Nbrs {
				if x == op.V {
					return fmt.Errorf("dist: submit insert %d: self edge", op.V)
				}
				if _, dup := seen[x]; dup {
					return fmt.Errorf("dist: submit insert %d: duplicate neighbor %d", op.V, x)
				}
				seen[x] = struct{}{}
			}
		default:
			return fmt.Errorf("dist: submit: unknown op kind %d", op.Kind)
		}
	}
	s.async = true
	for _, op := range ops {
		op.Nbrs = append([]NodeID(nil), op.Nbrs...)
		s.opSeq++
		if s.coalesceOn {
			s.submitCoalesced(op, s.opSeq)
			continue
		}
		s.pending = append(s.pending, &pendingOp{
			op: op, seq: s.opSeq, submitRound: s.net.Round(), after: noNode,
		})
	}
	if s.coalesceOn {
		s.flushHeldIfFull()
	}
	s.admit()
	s.flushObserver()
	return nil
}

// Tick advances the network one round and processes whatever completed
// or became admissible: repairs that proved themselves done hand off
// to their successors, newly unblocked operations launch, events fire.
// It reports whether the engine still has work (pending operations,
// in-flight repairs, or queued traffic).
func (s *Simulation) Tick() bool {
	s.step()
	s.afterRound()
	if s.coalesceOn && len(s.pending) > 0 {
		s.tickHolds()
	}
	s.auditEngineSweep()
	s.flushObserver()
	if s.Idle() {
		// Quiescent: fold the handlers' pending physical-graph edits so
		// snapshots and verification see a settled state, exactly like
		// the blocking path's post-quiescence drain. The settled state
		// is also when the audit layer can vouch for the connectivity
		// certificate (count equality only holds between repairs).
		s.drainPhys()
		s.auditCertSweep()
		return false
	}
	return true
}

// Run ticks until the engine is idle or maxRounds have elapsed,
// returning the number of rounds advanced.
func (s *Simulation) Run(maxRounds int) int {
	rounds := 0
	for rounds < maxRounds && !s.Idle() {
		s.Tick()
		rounds++
	}
	return rounds
}

// Drain runs the engine to idleness. It fails only if the protocol
// stalls — no operation completes for longer than the quiescence
// bound — which, like the bound in the blocking path, means the
// protocol is broken, never that it is slow.
func (s *Simulation) Drain() error {
	bound := s.roundBound()
	stall := 0
	for !s.Idle() {
		before := len(s.pending) + len(s.inflight)
		s.Tick()
		if len(s.pending)+len(s.inflight) < before {
			stall = 0
		} else {
			stall++
		}
		if stall > bound {
			return fmt.Errorf("dist: drain: no repair progress after %d rounds (%d pending ops, %d repairs in flight, %d messages queued)",
				bound, len(s.pending), len(s.inflight), s.net.Pending())
		}
	}
	s.drainPhys()
	return nil
}

// Idle reports whether the engine has nothing left to do: no pending
// operations, no repairs in flight, no traffic or timers queued beyond
// the audit layer's standing ticks.
func (s *Simulation) Idle() bool {
	return len(s.pending) == 0 && len(s.inflight) == 0 && s.netQuiet()
}

// InFlight returns the number of repairs currently in progress.
func (s *Simulation) InFlight() int { return len(s.inflight) }

// PendingOps returns the number of submitted operations not yet
// admitted.
func (s *Simulation) PendingOps() int { return len(s.pending) }

// Poll returns the events accumulated since the last Poll and clears
// the buffer. Events buffer only once Submit has been called AND no
// observer is installed — the observer replaces buffering, stream-only
// consumers never grow the buffer, and purely blocking callers never
// populate it at all (Poll itself never changes the mode).
func (s *Simulation) Poll() []Event {
	evs := s.events
	s.events = nil
	return evs
}

// SetObserver streams every event to fn as it fires, replacing the
// Poll buffer as the consumption path (events emitted while an
// observer is installed are not buffered). Pass nil to return to
// Poll-based consumption.
func (s *Simulation) SetObserver(fn func(Event)) {
	s.observer = fn
}

// emit delivers one event: queued for the observer when one is
// installed (dispatched at the next safe point — never from inside an
// admission sweep or a blocking wrapper, so an observer may reenter
// Submit), else into the Poll buffer when the engine is in async use.
// Events emitted by a blocking wrapper go only to an observer — its
// caller gets the result synchronously (LastRecovery/LastBatch), so
// buffering them for a Poll that blocking-style code never makes
// would leak.
func (s *Simulation) emit(ev Event) {
	if s.observer != nil {
		s.observerQ = append(s.observerQ, ev)
		return
	}
	if s.async && !s.inBlocking {
		s.events = append(s.events, ev)
	}
}

// flushObserver dispatches queued events to the observer. Called only
// at safe points (end of Submit, end of a Tick, end of the blocking
// wrappers) and deferred entirely while a blocking wrapper runs, so
// when a callback fires the pending queue is settled and holds no
// batch chain operations: an observer may therefore call Submit — or
// even another blocking call — reentrantly. Events appended during a
// callback are drained by the same loop, preserving FIFO order.
func (s *Simulation) flushObserver() {
	if s.inBlocking {
		return
	}
	if s.observer == nil {
		s.observerQ = nil
		return
	}
	for len(s.observerQ) > 0 {
		ev := s.observerQ[0]
		s.observerQ = s.observerQ[1:]
		s.observer(ev)
	}
}

// afterRound processes the round's in-band repair completions and
// re-attempts admissions. Completions are drained in sorted epoch
// order, so both delivery modes produce identical schedules.
func (s *Simulation) afterRound() {
	dones := s.done.take()
	if len(dones) == 0 {
		return
	}
	freed := make(map[NodeID]NodeID, len(dones))
	for _, d := range dones {
		fl := s.inflight[d.epoch]
		if fl == nil {
			panic(fmt.Sprintf("dist: completion for unknown epoch %d", d.epoch))
		}
		delete(s.inflight, d.epoch)
		freed[d.epoch] = d.leader
		rs := s.flightStats(fl)
		s.lastFlight = rs
		s.emit(Event{
			Kind: EventRepairDone, Seq: fl.seq, V: fl.v, Repair: rs,
			Latency: s.net.Round() - fl.submitRound,
		})
	}
	s.releaseChains(freed)
	s.admit()
}

// releaseChains unblocks pending operations waiting on the freed
// epochs, recording the finishing leader as the launch source: the
// handoff notifications travel leader-to-member, one per member of the
// successor's notified set.
func (s *Simulation) releaseChains(freed map[NodeID]NodeID) {
	for _, po := range s.pending {
		if po.chain || (po.merged && po.after != noNode) {
			if l, ok := freed[po.after]; ok {
				po.after = noNode
				if l != noNode {
					po.from, po.haveFrom = l, true
				}
			}
			continue
		}
		if po.haveFrom {
			continue
		}
		for _, b := range po.blockers {
			if l, ok := freed[b]; ok && l != noNode {
				po.from, po.haveFrom = l, true
				break
			}
		}
	}
}

// admit sweeps the pending queue in submission order, launching every
// operation whose serialization point has arrived. Repairs that
// complete instantly (an isolated node) release their chain successors
// within the same sweep.
func (s *Simulation) admit() {
	for {
		instant := s.admitPass()
		if len(instant) == 0 {
			return
		}
		freed := make(map[NodeID]NodeID, len(instant))
		for _, v := range instant {
			freed[v] = noNode
		}
		s.releaseChains(freed)
	}
}

// admitPass is one in-order sweep. An operation is admissible when no
// earlier-submitted operation still pends on an overlapping footprint
// and no in-flight repair's region intersects its own; chain members
// (batch waves) are admissible exactly when their predecessor epoch
// completed. It returns the epochs of repairs that completed
// instantly.
func (s *Simulation) admitPass() (instant []NodeID) {
	if len(s.pending) == 0 {
		return nil
	}
	keep := s.pending[:0]
	var tentative []map[NodeID]struct{}
	pendingCreates := make(map[NodeID]struct{})
	// doomed tracks targets of earlier-queued deletes that have not
	// launched yet. Ids are never reused, so such a node is dead at
	// every later operation's serialization point even though it is
	// still alive right now; validation must treat it as dead or the
	// verdict (and the neighbor named in the error) would depend on
	// how far the earlier repair happened to have progressed — a
	// transport-pacing artifact, not serialized state.
	doomed := make(map[NodeID]struct{})
	block := func(po *pendingOp) {
		keep = append(keep, po)
		if po.region != nil {
			tentative = append(tentative, po.region)
		}
		if po.op.Kind == OpInsert {
			pendingCreates[po.op.V] = struct{}{}
		}
		if po.op.Kind == OpDelete {
			doomed[po.op.V] = struct{}{}
		}
	}
	reject := func(po *pendingOp, err error) {
		s.emit(Event{
			Kind: EventOpRejected, Seq: po.seq, V: po.op.V, Op: po.op, Err: err,
			Latency: s.net.Round() - po.submitRound,
		})
	}
	for _, po := range s.pending {
		if po.chain {
			if po.after != noNode {
				keep = append(keep, po)
				doomed[po.op.V] = struct{}{}
				continue
			}
			if done := s.launchDelete(po); done {
				instant = append(instant, po.op.V)
			}
			continue
		}
		if po.merged && po.after != noNode {
			// Coalesced merge waiting on its predecessor epoch. Refresh
			// the tentative footprint (in-flight repairs may have moved
			// the trees) so later ops in this sweep serialize against it
			// exactly as they would against an unheld pending delete.
			if s.Alive(po.op.V) {
				po.region = s.deleteRegion(po.op.V)
			}
			block(po)
			continue
		}
		switch po.op.Kind {
		case OpDelete:
			v := po.op.V
			if !s.Alive(v) {
				if _, willExist := pendingCreates[v]; willExist {
					block(po)
					continue
				}
				reject(po, fmt.Errorf("dist: delete %d: not a live node", v))
				continue
			}
			po.region = s.deleteRegion(v)
			if blockers, blocked := s.regionBlocked(po.region, tentative); blocked {
				// Still blocked: any handoff attribution from a previous
				// release is stale — the launch belongs to whichever
				// repair frees the op last.
				po.blockers = blockers
				po.from, po.haveFrom = noNode, false
				block(po)
				continue
			}
			if po.hold > 0 {
				// Coalescing window still open: admissible, but held so a
				// later submission can still cancel or merge with it.
				block(po)
				continue
			}
			if done := s.launchDelete(po); done {
				instant = append(instant, v)
			}
		case OpInsert:
			v, nbrs := po.op.V, po.op.Nbrs
			if _, willExist := pendingCreates[v]; willExist {
				block(po)
				continue
			}
			if s.gprime.HasNode(v) {
				reject(po, fmt.Errorf("dist: insert %d: id already used (ids are never reused)", v))
				continue
			}
			wait, err := false, error(nil)
			region := map[NodeID]struct{}{v: {}}
			for _, x := range nbrs {
				region[x] = struct{}{}
				if _, dying := doomed[x]; dying {
					err = fmt.Errorf("dist: insert %d: neighbor %d is not a live node", v, x)
					break
				}
				if s.Alive(x) {
					continue
				}
				if _, willExist := pendingCreates[x]; willExist {
					wait = true
					continue
				}
				err = fmt.Errorf("dist: insert %d: neighbor %d is not a live node", v, x)
				break
			}
			if err != nil {
				reject(po, err)
				continue
			}
			po.region = region
			if blockers, blocked := s.regionBlocked(region, tentative); wait || blocked {
				po.blockers = blockers
				block(po)
				continue
			}
			if po.hold > 0 {
				block(po)
				continue
			}
			if err := s.insertNow(v, nbrs); err != nil {
				reject(po, err)
				continue
			}
			if s.coalesceOn && po.seq != 0 {
				s.coalStats.Admitted++
			}
			s.emit(Event{
				Kind: EventInsertApplied, Seq: po.seq, V: v,
				Latency: s.net.Round() - po.submitRound,
			})
		}
	}
	s.pending = keep
	return instant
}

// regionBlocked reports whether a footprint intersects any in-flight
// repair's region (returning the overlapping epochs, sorted, for
// handoff attribution) or any earlier pending operation's tentative
// footprint.
// The in-flight set is re-read on every call: admitPass launches
// repairs mid-sweep, and later operations in the same sweep must see
// those new flights.
func (s *Simulation) regionBlocked(region map[NodeID]struct{}, tentative []map[NodeID]struct{}) ([]NodeID, bool) {
	var blockers []NodeID
	for _, e := range sortedEpochs(s.inflight) {
		if overlap(region, s.inflight[e].region) {
			blockers = append(blockers, e)
		}
	}
	if len(blockers) > 0 {
		return blockers, true
	}
	for _, t := range tentative {
		if overlap(region, t) {
			return nil, true
		}
	}
	return nil, false
}

func sortedEpochs(m map[NodeID]*flight) []NodeID {
	out := make([]NodeID, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func overlap(a, b map[NodeID]struct{}) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for v := range a {
		if _, ok := b[v]; ok {
			return true
		}
	}
	return false
}

// launchDelete removes the processor and starts its repair, reporting
// true when the repair completed on the spot (a node isolated in the
// virtual graph has nothing to repair).
func (s *Simulation) launchDelete(po *pendingOp) (instantlyDone bool) {
	v := po.op.V
	degree := s.gprime.Degree(v)
	if s.coalesceOn && po.seq != 0 {
		s.coalStats.Admitted++
	}
	// Fold the handlers' pending physical-edit logs in first:
	// removeProcessor updates the maintained physical graph directly
	// and needs the multiplicity index current.
	s.drainPhys()
	// Chain members (batch waves) launch with a nil region: the claim
	// phase decided their serialization, and they can never coexist
	// with asynchronous submissions — blocking wrappers require an
	// idle engine and defer observer callbacks until they return.
	rep := s.prepareRepair(v)
	if rep == nil {
		rs := RecoveryStats{Deleted: v, DegreePrime: degree}
		s.lastFlight = rs
		s.emit(Event{
			Kind: EventRepairDone, Seq: po.seq, V: v, Repair: rs,
			Latency: s.net.Round() - po.submitRound,
		})
		return true
	}
	s.inflight[v] = &flight{
		v: v, seq: po.seq, degree: degree, notify: len(rep.notify),
		region: po.region, statsAt: s.net.Stats(), submitRound: po.submitRound,
	}
	// Hand off from the releasing leader if it is still alive (a later
	// deletion may have removed it since); otherwise the members detect
	// the deletion themselves, as in a fresh launch.
	s.sendDeathNotifications(rep, po.from, po.haveFrom && s.Alive(po.from), po.merged)
	return false
}

// beginBlocking marks a blocking wrapper in progress: observer
// dispatch is deferred to the wrapper's end, so callbacks — which may
// reenter Submit — never run while batch chain operations (whose
// serialization the claim phase decided without region bookkeeping)
// are pending or in flight. The returned func restores the previous
// state and flushes; wrappers defer it.
func (s *Simulation) beginBlocking() func() {
	prev := s.inBlocking
	s.inBlocking = true
	return func() {
		s.inBlocking = prev
		s.flushObserver()
	}
}

// sendDeathNotifications lays BT_v over the notified set and delivers
// the death notifications. Each neighbor normally detects the deletion
// itself (the model's detection assumption — a self-addressed message
// charged to the live detector); a repair launched by a finishing
// leader's handoff is instead notified BY that leader, one message per
// member, which is the leader-to-leader wave handoff that replaced the
// driver barrier. The notification carries the receiver's slot in
// BT_v — a heap-shaped complete binary tree over the notified set in
// DESCENDING ID order, so the eventual winner (the smallest ID)
// genuinely has to win log d knockout matches on its way up.
//
// A coalesced merge launch (led) pre-appoints the leader instead: the
// tournament's winner is always the smallest notified ID, which the
// driver already knows, so the notification carries it (one extra
// word) and the participants skip the election — 2(k-1) messages
// saved, counted in CoalesceStats.
func (s *Simulation) sendDeathNotifications(r *pendingRepair, from NodeID, handoff, led bool) {
	leader, words := noNode, wordsDeath
	if led {
		leader, words = r.notify[0], wordsDeathLed
		s.coalStats.MessagesSaved += 2 * (len(r.notify) - 1)
	}
	s.layBT(r.notify, func(x, parent, left, right NodeID) {
		src := x
		if handoff {
			src = from
		}
		s.net.Send(src, x, msgDeath{
			V: r.v, BTParent: parent, BTLeft: left, BTRight: right, Leader: leader,
		}, words)
	})
}

// layBT lays the will convention's coordination tree over a notified
// set: a heap-shaped complete binary tree in DESCENDING ID order (the
// root holds the largest ID, so the knockout winner — the smallest —
// genuinely plays log k matches on its way up), calling place once per
// member with its tree links (noNode where absent). Shared by the
// repair's BT_v and the batch claim election tree. Driver-side only
// (launch and batch-claim paths), so one reusable scratch suffices.
func (s *Simulation) layBT(notify []NodeID, place func(x, parent, left, right NodeID)) {
	k := len(notify)
	if cap(s.btOrder) < k {
		s.btOrder = make([]NodeID, k)
	}
	order := s.btOrder[:k]
	for i, x := range notify {
		order[k-1-i] = x
	}
	at := func(i int) NodeID {
		if i < k {
			return order[i]
		}
		return noNode
	}
	for i, x := range order {
		parent := noNode
		if i > 0 {
			parent = order[(i-1)/2]
		}
		place(x, parent, at(2*i+1), at(2*i+2))
	}
}

// flightStats assembles one completed repair's RecoveryStats from the
// stats deltas since its launch. Additive fields subtract cleanly;
// the Max* fields are high-water marks since the last reset and are
// reported as such (exact whenever the repair ran alone, which is
// every blocking call).
func (s *Simulation) flightStats(fl *flight) RecoveryStats {
	cur := s.net.Stats()
	at := fl.statsAt
	return RecoveryStats{
		Deleted:          fl.v,
		DegreePrime:      fl.degree,
		NsetSize:         fl.notify,
		Messages:         cur.Messages - at.Messages,
		Rounds:           cur.Rounds - at.Rounds,
		TotalWords:       cur.TotalWords - at.TotalWords,
		MaxWords:         cur.MaxWords,
		MaxSentByNode:    cur.MaxSentByNode,
		QueuedWords:      cur.QueuedWords - at.QueuedWords,
		MaxEdgeBacklog:   cur.MaxEdgeBacklog,
		CongestionRounds: cur.CongestionRounds - at.CongestionRounds,
		ElectionRounds:   cur.ElectionRounds - at.ElectionRounds,
		SyncRounds:       cur.SyncRounds - at.SyncRounds,
		ElectionMessages: cur.ElectionMessages - at.ElectionMessages,
		SyncMessages:     cur.SyncMessages - at.SyncMessages,
	}
}

// deleteRegion computes the footprint of deleting v: v itself, its
// physical neighborhood (the notified set plus the live G′ neighbors
// that grow fresh leaves), and every owner of a record in any
// Reconstruction Tree containing one of v's records. The repair's
// walks ascend within those trees, the strip descends within them, and
// the merge rewires their primary roots onto helpers at representative
// slots drawn from them — so the repair never touches a processor
// outside this set, which is what makes region disjointness a sound
// admission criterion. Cost is O(size of the affected trees), the same
// order as the repair itself.
// The walk is defensive about dangling links: computed while other
// repairs are in flight, an ascent or descent can wander into a tree
// mid-mutation (a retired helper's children still pointing at it, a
// parent link into a just-removed processor) and simply stops there.
// Soundness is unaffected — reaching dangling state means the tree is
// mid-repair by some flight F, so the record reached sits in F's RT
// and its owner is in region(F); that owner IS collected before the
// stop, so the overlap check still blocks v behind F.
func (s *Simulation) deleteRegion(v NodeID) map[NodeID]struct{} {
	region := map[NodeID]struct{}{v: {}}
	for x := range s.affectedBy(v) {
		region[x] = struct{}{}
	}
	p := s.procs[v]
	seenRoots := make(map[addr]struct{})
	var down func(a addr)
	down = func(a addr) {
		if !a.ok() {
			return
		}
		region[a.Owner] = struct{}{}
		if a.Kind != kindHelper {
			return
		}
		_, h, ok := s.lookupRecord(a)
		if !ok || h == nil {
			return
		}
		down(h.left)
		down(h.right)
	}
	visit := func(a addr) {
		for {
			parent, _, ok := s.lookupRecord(a)
			if !ok || !parent.ok() {
				break
			}
			if _, _, upOK := s.lookupRecord(parent); !upOK {
				region[parent.Owner] = struct{}{}
				break
			}
			a = parent
		}
		if _, dup := seenRoots[a]; dup {
			return
		}
		seenRoots[a] = struct{}{}
		down(a)
	}
	for _, o := range sortedRecordKeys(p.leaves) {
		visit(leafAddr(v, o))
	}
	for _, o := range sortedRecordKeys(p.helpers) {
		visit(helperAddr(v, o))
	}
	return region
}

// lookupRecord reads one record driver-side: its parent link, the
// helper record when a names a helper, and whether the record exists
// at all (it may not, mid-repair).
func (s *Simulation) lookupRecord(a addr) (parent addr, h *helperRec, ok bool) {
	p, alive := s.procs[a.Owner]
	if !alive {
		return addr{}, nil, false
	}
	if a.Kind == kindLeaf {
		l, exists := p.leaves[a.Other]
		if !exists {
			return addr{}, nil, false
		}
		return l.parent, nil, true
	}
	rec, exists := p.helpers[a.Other]
	if !exists {
		return addr{}, nil, false
	}
	return rec.parent, rec, true
}

// requireIdle guards the blocking calls: they assume exclusive use of
// the network, so mixing them with undrained asynchronous work is a
// caller error.
func (s *Simulation) requireIdle(what string) error {
	if !s.Idle() {
		return fmt.Errorf("dist: %s: engine busy (%d pending ops, %d repairs in flight); blocking calls require an idle engine — Drain first",
			what, len(s.pending), len(s.inflight))
	}
	return nil
}
