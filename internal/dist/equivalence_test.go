package dist

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// The distributed protocol must be behaviorally equivalent to the
// reference engine: the same healed graph on the same adversarial
// operation sequence. These tests replay random insert/delete
// schedules through both implementations and compare after every
// operation.

// replayBoth drives a random schedule of ops through a fresh
// dist.Simulation and core.Engine built over g0, asserting equal
// physical networks throughout and full revalidation at the end.
func replayBoth(t *testing.T, g0 *graph.Graph, ops int, seed int64) {
	t.Helper()
	s := NewSimulation(g0)
	e := core.NewEngine(g0)
	rng := rand.New(rand.NewSource(seed))
	nextID := NodeID(10_000)

	for i := 0; i < ops; i++ {
		live := s.LiveNodes()
		if len(live) == 0 {
			break
		}
		if rng.Float64() < 0.3 {
			v := nextID
			nextID++
			k := 1 + rng.Intn(3)
			if k > len(live) {
				k = len(live)
			}
			var nbrs []NodeID
			for _, idx := range rng.Perm(len(live))[:k] {
				nbrs = append(nbrs, live[idx])
			}
			if err := s.Insert(v, nbrs); err != nil {
				t.Fatalf("op %d: dist insert: %v", i, err)
			}
			if err := e.Insert(v, nbrs); err != nil {
				t.Fatalf("op %d: core insert: %v", i, err)
			}
		} else {
			v := live[rng.Intn(len(live))]
			if err := s.Delete(v); err != nil {
				t.Fatalf("op %d: dist delete %d: %v", i, v, err)
			}
			if err := e.Delete(v); err != nil {
				t.Fatalf("op %d: core delete %d: %v", i, v, err)
			}
		}
		if !s.Physical().Equal(e.Physical()) {
			t.Fatalf("op %d: healed graphs diverge (dist %v vs core %v)",
				i, s.Physical(), e.Physical())
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("dist verify: %v", err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("core invariants: %v", err)
	}
	if !s.GPrime().Equal(e.GPrime()) {
		t.Fatal("G' diverged")
	}
}

func TestEquivalenceWithCore(t *testing.T) {
	topologies := []struct {
		name string
		gen  func(rng *rand.Rand) *graph.Graph
		ops  int
	}{
		{"star", func(*rand.Rand) *graph.Graph { return graph.Star(24) }, 30},
		{"path", func(*rand.Rand) *graph.Graph { return graph.Path(20) }, 26},
		{"grid", func(*rand.Rand) *graph.Graph { return graph.Grid(5, 5) }, 32},
		{"gnp", func(rng *rand.Rand) *graph.Graph { return graph.GNP(32, 0.15, rng) }, 40},
		{"powerlaw", func(rng *rand.Rand) *graph.Graph { return graph.PreferentialAttachment(28, 2, rng) }, 36},
	}
	for _, topo := range topologies {
		topo := topo
		t.Run(topo.name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				g0 := topo.gen(rand.New(rand.NewSource(100 + seed)))
				replayBoth(t, g0, topo.ops, 7*seed+1)
			}
		})
	}
}

// TestEquivalenceDeleteOnly grinds a network down to nothing, hitting
// the late-game repairs where most of the graph is Reconstruction
// Trees.
func TestEquivalenceDeleteOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g0 := graph.GNP(24, 0.2, rng)
	s := NewSimulation(g0)
	e := core.NewEngine(g0)
	for {
		live := s.LiveNodes()
		if len(live) == 0 {
			break
		}
		v := live[rng.Intn(len(live))]
		if err := s.Delete(v); err != nil {
			t.Fatalf("dist delete %d: %v", v, err)
		}
		if err := e.Delete(v); err != nil {
			t.Fatalf("core delete %d: %v", v, err)
		}
		if !s.Physical().Equal(e.Physical()) {
			t.Fatalf("after delete %d: healed graphs diverge", v)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("after delete %d: %v", v, err)
		}
	}
}

// TestEquivalenceAdversarialHubs kills highest-degree nodes — the
// attack that maximizes Reconstruction Tree churn — and cross-checks
// every step in both delivery modes.
func TestEquivalenceAdversarialHubs(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		g0 := graph.PreferentialAttachment(32, 3, rand.New(rand.NewSource(17)))
		s := NewSimulation(g0)
		s.SetParallel(parallel)
		e := core.NewEngine(g0)
		for i := 0; i < 16; i++ {
			phys := s.Physical()
			live := s.LiveNodes()
			best, bestDeg := live[0], -1
			for _, u := range live {
				if d := phys.Degree(u); d > bestDeg {
					best, bestDeg = u, d
				}
			}
			if err := s.Delete(best); err != nil {
				t.Fatalf("dist delete %d: %v", best, err)
			}
			if err := e.Delete(best); err != nil {
				t.Fatalf("core delete %d: %v", best, err)
			}
			if !s.Physical().Equal(e.Physical()) {
				t.Fatalf("parallel=%v: after hub delete %d: healed graphs diverge", parallel, best)
			}
		}
		if err := s.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}
