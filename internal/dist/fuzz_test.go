package dist

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// FuzzOpSchedule drives the distributed protocol with an arbitrary
// byte-encoded insert/delete schedule over a small seed topology and
// cross-checks the message-level repair against the reference engine
// after every operation. Any divergence, invariant violation, or
// handler panic is a bug in the protocol's message handling.
func FuzzOpSchedule(f *testing.F) {
	f.Add([]byte{0x10, 0x02, 0x81, 0x05, 0x00})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05})
	f.Add([]byte{0x90, 0x91, 0x92, 0x00, 0x93, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		g0 := graph.Grid(3, 4) // 12 nodes, ids 0..11
		s := NewSimulation(g0)
		e := core.NewEngine(g0)
		nextID := NodeID(100)
		for _, b := range data {
			live := s.LiveNodes()
			if len(live) == 0 {
				break
			}
			if b&0x80 != 0 {
				// Insert with 1-2 neighbors picked by the low bits.
				v := nextID
				nextID++
				nbrs := []NodeID{live[int(b&0x3f)%len(live)]}
				if b&0x40 != 0 {
					other := live[int(b>>3&0x0f)%len(live)]
					if other != nbrs[0] {
						nbrs = append(nbrs, other)
					}
				}
				if err := s.Insert(v, nbrs); err != nil {
					t.Fatalf("dist insert: %v", err)
				}
				if err := e.Insert(v, nbrs); err != nil {
					t.Fatalf("core insert: %v", err)
				}
			} else {
				v := live[int(b)%len(live)]
				if err := s.Delete(v); err != nil {
					t.Fatalf("dist delete %d: %v", v, err)
				}
				if err := e.Delete(v); err != nil {
					t.Fatalf("core delete %d: %v", v, err)
				}
			}
			if !s.Physical().Equal(e.Physical()) {
				t.Fatal("healed graphs diverge")
			}
		}
		if err := s.Verify(); err != nil {
			t.Fatal(err)
		}
	})
}
