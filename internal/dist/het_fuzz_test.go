package dist

import (
	"testing"

	"repro/internal/graph"
)

// FuzzHeterogeneousCaps aims byte-driven heterogeneous capacity maps
// at the congestion model and the per-edge send pacing: a global cap,
// node-level clamps (the EXP-HET slow access links), a few directed
// edge overrides, and pacing toggled — against a mixed insert/delete/
// batch schedule. Whatever the capacity landscape, the run must
// converge to exactly the healed graph of an unlimited twin fed the
// same schedule, in at least as many rounds, with full revalidation
// (incremental AND full) passing. This is the fuzz backstop for the
// slow-link scenarios: capacity maps may starve links arbitrarily but
// can never change what the protocol computes.
func FuzzHeterogeneousCaps(f *testing.F) {
	f.Add([]byte{0x01, 0x00, 0x23, 0x11})
	f.Add([]byte{0x2a, 0x47, 0x81, 0x03, 0x62})
	f.Add([]byte{0x97, 0x90, 0x91, 0x30, 0x92, 0x15, 0x00})
	f.Add([]byte{0xff, 0xff, 0x7f, 0x3f, 0x1f})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		if len(data) > 40 {
			data = data[:40]
		}
		cfg, ops := data[0], data[1:]

		g0 := graph.Grid(4, 4) // 16 nodes, ids 0..15
		limited := NewSimulation(g0)
		limited.SetParallel(true)
		unlimited := NewSimulation(g0)
		unlimited.SetParallel(true)

		// Bits 0..1: global cap (0 = unlimited, else 1..3); bit 2:
		// pacing off; bits 3..5: every (1+k)-th node clamped to 1
		// word/round (k=7 disables); bits 6..7: directed edge overrides.
		if B := int(cfg & 0x03); B > 0 {
			limited.SetBandwidth(B)
		}
		limited.SetSpread(cfg&0x04 == 0)
		if stride := int(cfg >> 3 & 0x07); stride != 7 {
			for i := 0; i < 16; i += 1 + stride {
				limited.SetNodeBandwidth(NodeID(i), 1)
			}
		}
		for i := 0; i < int(cfg>>6&0x03); i++ {
			from := NodeID((int(cfg) + 5*i) % 16)
			to := NodeID((int(cfg) + 5*i + 7) % 16)
			limited.SetEdgeBandwidth(from, to, 1)
		}

		nextID := NodeID(600)
		for _, b := range ops {
			live := limited.LiveNodes()
			if len(live) == 0 {
				break
			}
			if b&0x80 != 0 {
				v := nextID
				nextID++
				nbrs := []NodeID{live[int(b&0x3f)%len(live)]}
				if b&0x40 != 0 {
					other := live[int(b>>3&0x0f)%len(live)]
					if other != nbrs[0] {
						nbrs = append(nbrs, other)
					}
				}
				if err := limited.Insert(v, nbrs); err != nil {
					t.Fatalf("limited insert: %v", err)
				}
				if err := unlimited.Insert(v, nbrs); err != nil {
					t.Fatalf("unlimited insert: %v", err)
				}
				continue
			}
			anchor := live[int(b&0x0f)%len(live)]
			k := 1 + int(b>>4&0x07)
			batch := collidingBatch(limited, anchor, live, k)
			if err := limited.DeleteBatch(batch); err != nil {
				t.Fatalf("limited delete batch %v: %v", batch, err)
			}
			if err := unlimited.DeleteBatch(batch); err != nil {
				t.Fatalf("unlimited delete batch %v: %v", batch, err)
			}
			if !limited.Physical().Equal(unlimited.Physical()) {
				t.Fatalf("cfg %#x batch %v: healed graphs diverge from the unlimited twin", cfg, batch)
			}
			lb, ub := limited.LastBatch(), unlimited.LastBatch()
			if lb.Rounds < ub.Rounds {
				t.Fatalf("cfg %#x batch %v: limited run took fewer rounds (%d) than unlimited (%d)",
					cfg, batch, lb.Rounds, ub.Rounds)
			}
			if err := limited.VerifyDelta(2); err != nil {
				t.Fatalf("cfg %#x batch %v: incremental verify: %v", cfg, batch, err)
			}
		}
		if err := limited.Verify(); err != nil {
			t.Fatal(err)
		}
		if err := unlimited.Verify(); err != nil {
			t.Fatal(err)
		}
	})
}
