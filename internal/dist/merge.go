package dist

import (
	"fmt"

	"repro/internal/haft"
	"repro/internal/transport"
)

// Leader-side merge planning.
//
// Once the strip convergecast proves every fragment resolved (one
// strip-done per launched visit), the leader holds every primary-root
// descriptor. It reassembles core's canonical component order (sort by
// prefer-left key, keyless components last; left-to-right within a
// fragment by strip path), replays the exact same haft.Merge over a
// skeleton of the descriptors, and broadcasts the resulting join tree
// as O(1)-word link instructions. Reusing haft.Merge — the very
// function the reference engine calls — is what makes the distributed
// repair bit-identical to core's on the same operation sequence.

// skel is the payload of a skeleton node: either an existing primary
// root (node set) or a helper the plan is creating (isNew set), plus
// the representative leaf this subtree passes on when joined.
type skel struct {
	node  addr // existing primary root
	isNew bool
	slot  slot // for new helpers: the slot charged by the join
	rep   slot
}

func skelOf(n *haft.Node) *skel {
	s, ok := n.Payload.(*skel)
	if !ok {
		panic(fmt.Sprintf("dist: skeleton node with foreign payload %T", n.Payload))
	}
	return s
}

// pathLess orders two strip positions left-to-right. No primary root is
// an ancestor of another, so two distinct positions always differ
// within the shorter depth.
func pathLess(a, b msgDescriptor) bool {
	n := a.Depth
	if b.Depth < n {
		n = b.Depth
	}
	for i := 0; i < n; i++ {
		ab := a.Path >> uint(a.Depth-1-i) & 1
		bb := b.Path >> uint(b.Depth-1-i) & 1
		if ab != bb {
			return ab < bb
		}
	}
	return a.Depth < b.Depth
}

// compLess orders components in core's canonical order: keyed ones
// first, ascending by key; keyless ones last, by root address.
func compLess(a, b *component) bool {
	if a.hasKey != b.hasKey {
		return a.hasKey
	}
	if !a.hasKey {
		return a.root.less(b.root)
	}
	return a.key.less(b.key)
}

// orderedDescriptors flattens the components into core's canonical
// complete-tree order: components sorted by key, descriptors within a
// component in left-to-right strip order. Both result slices are the
// repairState's own scratch (valid until the next call), and the sorts
// are insertion sorts — component and descriptor counts are small, and
// this runs once per repair on the hot path, where sort.Slice's
// reflection allocations add up.
func (r *repairState) orderedDescriptors() []msgDescriptor {
	comps := r.compScratch[:0]
	for _, c := range r.comps {
		if len(c.descs) == 0 {
			continue // leafless fragment: contributed nothing
		}
		descs := c.descs
		for i := 1; i < len(descs); i++ {
			for j := i; j > 0 && pathLess(descs[j], descs[j-1]); j-- {
				descs[j], descs[j-1] = descs[j-1], descs[j]
			}
		}
		comps = append(comps, c)
	}
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && compLess(comps[j], comps[j-1]); j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	r.compScratch = comps
	out := r.descScratch[:0]
	for _, c := range comps {
		out = append(out, c.descs...)
	}
	r.descScratch = out
	return out
}

// startMerge (leader): compute the merge plan for one repair and
// broadcast it. Concurrent repairs of a batch merge independently —
// each epoch's scratch holds only its own components, so two repairs
// sharing a leader still produce exactly the plans they would have
// produced with separate leaders. Runs only once the strip phase is
// proven terminated (counted descriptors all arrived), so the plan is
// complete and every slot it re-uses has been freed. Every emitted
// instruction is acked back (msgMergeAck); the scratch survives until
// the count reaches zero, which is the repair's in-band completion —
// an empty plan completes on the spot.
func (p *processor) startMerge(n transport.Endpoint, epoch NodeID, rs *repairState) {
	rs.phase = phaseMerge
	descs := rs.orderedDescriptors()
	if len(descs) == 0 {
		p.finishRepair(epoch)
		return
	}

	trees := make([]*haft.Node, len(descs))
	for i, d := range descs {
		trees[i] = &haft.Node{
			IsLeaf:    d.Node.Kind == kindLeaf,
			Height:    d.Height,
			LeafCount: d.LeafCount,
			Payload:   &skel{node: d.Node, rep: d.Rep},
		}
	}
	// The join mirrors core's RepPaper policy: the bigger tree's
	// representative is charged with simulating the new helper (which
	// therefore lives on that leaf's slot), and the smaller tree's
	// representative is passed upward.
	join := func(bigger, smaller *haft.Node) *haft.Node {
		return &haft.Node{Payload: &skel{
			isNew: true,
			slot:  skelOf(bigger).rep,
			rep:   skelOf(smaller).rep,
		}}
	}
	root := haft.Merge(trees, join)

	addrOf := func(x *haft.Node) addr {
		sk := skelOf(x)
		if sk.isNew {
			return helperAddr(sk.slot.Owner, sk.slot.Other)
		}
		return sk.node
	}
	// The join plan is the leader's biggest burst — O(d) instructions,
	// several per destination when one processor hosts multiple slots —
	// so it goes out paced: under finite bandwidth the leader trickles
	// at most the edge budget per destination per round from its outbox
	// instead of stacking the whole plan as network backlog.
	rs.outstanding = 0
	var emit func(x *haft.Node, parent addr)
	emit = func(x *haft.Node, parent addr) {
		sk := skelOf(x)
		if !sk.isNew {
			if parent.ok() {
				rs.outstanding++
				p.sendPaced(n, sk.node.Owner, msgSetParent{
					Target: sk.node, Parent: parent, Epoch: epoch,
				}, wordsSetParent)
			}
			return
		}
		self := addrOf(x)
		rs.outstanding++
		p.sendPaced(n, sk.slot.Owner, msgCreateHelper{
			Slot:   sk.slot,
			Parent: parent,
			Left:   addrOf(x.Left),
			Right:  addrOf(x.Right),
			Rep:    sk.rep,
			Height: x.Height, LeafCount: x.LeafCount,
			Epoch: epoch,
		}, wordsCreateHelper)
		emit(x.Left, self)
		emit(x.Right, self)
	}
	emit(root, addr{})
	if rs.outstanding == 0 {
		// A single pre-existing root adopted nothing: no instructions.
		p.finishRepair(epoch)
		return
	}
	// Instruction out, apply, ack back: one hop each way, plus pacing
	// slack under congestion (the watchdog re-arms while traffic lags).
	p.armWatchdog(n, epoch, rs, 3)
}
