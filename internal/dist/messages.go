package dist

import (
	"fmt"

	"repro/internal/graph"
)

// NodeID identifies a processor, shared with package graph.
type NodeID = graph.NodeID

// slot identifies a per-edge avatar exactly as in internal/core: the
// G′-edge (Owner, Other) seen from Owner's side. Leaf avatar L(v,x) and
// helper H(v,x) both live in slot {v, x}.
type slot struct {
	Owner, Other NodeID
}

func (s slot) String() string { return fmt.Sprintf("(%d,%d)", s.Owner, s.Other) }

// less orders slots lexicographically, matching core's tie-breaking.
func (s slot) less(t slot) bool {
	if s.Owner != t.Owner {
		return s.Owner < t.Owner
	}
	return s.Other < t.Other
}

// kind distinguishes the two virtual-node flavors sharing a slot.
type kind uint8

const (
	kindLeaf kind = iota + 1
	kindHelper
)

// addr names a virtual tree node globally: a slot plus the node kind.
// It is the distributed replacement for core's *haft.Node pointers —
// two node IDs and a tag, i.e. O(1) words of O(log n) bits. The zero
// addr means "no such node" (a cleared pointer).
type addr struct {
	Owner, Other NodeID
	Kind         kind
}

func (a addr) ok() bool   { return a.Kind != 0 }
func (a addr) slot() slot { return slot{Owner: a.Owner, Other: a.Other} }
func (a addr) String() string {
	if !a.ok() {
		return "-"
	}
	k := "L"
	if a.Kind == kindHelper {
		k = "H"
	}
	return fmt.Sprintf("%s(%d,%d)", k, a.Owner, a.Other)
}

// less orders addrs lexicographically for deterministic iteration.
func (a addr) less(b addr) bool {
	if a.Owner != b.Owner {
		return a.Owner < b.Owner
	}
	if a.Other != b.Other {
		return a.Other < b.Other
	}
	return a.Kind < b.Kind
}

func leafAddr(owner, other NodeID) addr   { return addr{Owner: owner, Other: other, Kind: kindLeaf} }
func helperAddr(owner, other NodeID) addr { return addr{Owner: owner, Other: other, Kind: kindHelper} }

// Message vocabulary. Every message is a constant number of O(log n)-bit
// words (IDs, counts, and one path word whose bit-length is the tree
// height <= ceil(log2 n)); the words constants below count the scalar
// fields Lemma 4 would charge for.

// Repair messages carry an Epoch: the identity of the deletion whose
// repair they belong to (the deleted processor's ID, unique for the
// batch's lifetime since IDs are never reused). Repairs of independent
// damaged regions run concurrently during a batched deletion, and the
// epoch is how a processor — which may be notified by several repairs
// at once — files each message under the right leader scratch. A single
// Delete is a batch of one; its epoch is the deleted node.

// noNode is the "no such processor" sentinel for the BT_v tree links
// carried by msgDeath (processor IDs are never negative).
const noNode NodeID = -1

// msgDeath is the deletion notification: the model's "neighbors of the
// deleted node are informed". It is addressed to every physical
// neighbor of the deleted processor (G′ neighbors plus tree neighbors
// of its avatars) and carries the receiver's position in BT_v, the
// coordination tree over the notified set (the deleted node's will
// assigns each neighbor its slot; O(1) words). The repair leader is NOT
// announced — the participants elect it themselves by a pairwise
// knockout tournament up BT_v (msgChampion / msgLeader).
type msgDeath struct {
	V NodeID // the deleted processor (also the repair's epoch)
	// BTParent, BTLeft, BTRight are the receiver's neighbors in BT_v
	// (noNode where absent; the root has no parent).
	BTParent, BTLeft, BTRight NodeID
	// Leader pre-appoints the repair leader (noNode normally). Set only
	// on a coalesced merge launch: the knockout tournament's winner is
	// always the smallest notified ID, which the driver knows, so the
	// participants skip the election entirely. BT_v is still carried —
	// the termination-detection convergecasts run over it.
	Leader NodeID
}

// Leader election. The notified processors run an O(log d)-round
// pairwise knockout over BT_v: every participant reports its champion
// (the smallest ID seen in its subtree) to its BT_v parent once both
// children have reported; the root's final champion is the leader,
// announced back down the tree. Each msgLeader carries a Wait count —
// the announced subtree height below the receiver — so every
// participant begins its repair work in the same round (root waits
// longest, leaves not at all), exactly the synchrony the protocol's
// damage walks assume. These are ClassElection traffic.

// msgChampion moves one subtree's champion up BT_v. Height is the
// reporting subtree's height, from which the root learns the tree
// depth it must announce downward.
type msgChampion struct {
	Epoch  NodeID
	ID     NodeID // smallest participant ID in the sender's subtree
	Height int
}

// msgLeader announces the tournament winner down BT_v. Wait is the
// number of rounds the receiver must hold its repair work so that all
// participants begin together (its subtree height).
type msgLeader struct {
	Epoch  NodeID
	Leader NodeID
	Wait   int
}

// msgBeginRepair is the local timer a participant schedules to hold
// its death-processing for msgLeader.Wait rounds (zero words, not
// network traffic). A Wait of zero processes inline instead.
type msgBeginRepair struct {
	Epoch  NodeID
	Leader NodeID
}

// msgMarkDamaged walks one hop up a parent pointer, marking the target
// helper damaged (the paper's Breakflag propagation, Algorithm A.5):
// a node that lost a child no longer heads an intact subtree, and
// neither does any of its ancestors. Origin names the participant that
// seeded the walk; whoever terminates it (announcing a root or hitting
// an already-marked node) acks the origin so it can prove its local
// phase complete.
type msgMarkDamaged struct {
	Target addr
	Epoch  NodeID
	Leader NodeID
	Origin NodeID
}

// msgWalkAck tells a damage walk's origin that the walk terminated
// (ClassSync): one ack per seeded walk, so the origin counts its
// outstanding walks to zero. Announced is 1 when the termination
// produced a root announcement to the leader, 0 when the walk stopped
// at an already-marked node — the origin folds it into its subtree's
// announcement count (see msgSubtreeDone).
type msgWalkAck struct {
	Epoch     NodeID
	Announced int
}

// msgSubtreeDone is the termination-detection convergecast up BT_v
// (ClassSync): the sender's whole BT_v subtree has finished its
// notification-phase work — death records processed, all seeded damage
// walks acked. Announced totals the leader-bound announcements (root
// announces and fresh leaves) the subtree produced, its own and its
// walks': phase completion is proven by MESSAGE COUNTING, because
// under a congested network "everyone finished sending" does not imply
// "everything arrived".
type msgSubtreeDone struct {
	Epoch     NodeID
	Announced int
}

// msgPhaseDone is the BT_v root reporting global notification-phase
// completion to the elected leader (ClassSync), carrying the total
// announcement count. The leader starts the key phase only once it
// holds this report AND has received exactly that many announcements —
// the last condition is what makes the detection sound under arbitrary
// bandwidth-induced delays.
type msgPhaseDone struct {
	Epoch     NodeID
	Announced int
}

// msgRootAnnounce tells the leader about a fragment root: either a
// survivor cut loose from its parent, or the top of a damage walk.
// Height is the announcing record's stored height — an upper bound on
// the fragment's remaining depth, from which the leader sizes its
// phase watchdog timers.
type msgRootAnnounce struct {
	Root   addr
	Epoch  NodeID
	Height int
}

// msgFreshLeaf tells the leader a surviving G′-neighbor created its new
// leaf avatar L(x,v) for the half-dead edge (x,v).
type msgFreshLeaf struct {
	Leaf  addr
	Epoch NodeID
}

// msgPhaseWatch is the leader's per-phase watchdog timer: armed when a
// phase launches, with a delay bounded by the strip height (the
// deepest fragment's stored height bounds both the probe descent and
// the strip cascade plus its ack convergecast). An honest phase always
// completes by the bound under unlimited bandwidth; under a finite cap
// traffic may lag, so a firing watchdog that finds its phase still
// open re-arms rather than declaring failure (the simulation's global
// round bound remains the hard failsafe). A firing that finds the
// phase already advanced is stale and ignored. Phase is the phase
// counter value being watched, so exactly-at-the-bound completions
// never double-advance.
type msgPhaseWatch struct {
	Epoch NodeID
	Phase int
	Delay int // the height-bounded delay, reused on re-arm
}

// msgFlushOutbox is the local timer a pacing processor schedules to
// continue draining its outbox on the next round (see sendPaced).
// Like the phase triggers it is a zero-word wake-up, not network
// traffic; the queued messages themselves are charged normally when
// they are actually sent.
type msgFlushOutbox struct{}

// msgKeyProbe descends the prefer-left path from a fragment root to
// find the component's ordering key (core's leftmostLeafSlot walk).
type msgKeyProbe struct {
	Comp   addr // fragment root = component identity
	Target addr
	Epoch  NodeID
	Leader NodeID
}

// msgKeyFound / msgKeyNone report the probe's outcome to the leader.
type msgKeyFound struct {
	Comp  addr
	Key   slot
	Epoch NodeID
}

type msgKeyNone struct {
	Comp  addr
	Epoch NodeID
}

// msgStripVisit performs one step of the distributed strip: the target
// either declares itself a maximal intact complete subtree (a primary
// root) or discards itself and forwards the visit to its children.
// Depth/Path encode the position under the fragment root so the leader
// can restore left-to-right order from out-of-order arrivals. AckTo is
// the visiting parent node, the destination of the resolution ack that
// convergecasts strip completion back up (zero addr at a fragment
// root, whose completion goes to the leader as msgStripDone).
type msgStripVisit struct {
	Comp   addr
	Target addr
	Depth  int
	Path   uint64 // bit per step from the root, 0=left 1=right, MSB first
	Epoch  NodeID
	Leader NodeID
	AckTo  addr
}

// msgStripAck tells a retired helper's owner that one child subtree of
// the strip cascade has fully resolved (ClassSync). Target names the
// retired node the ack is for; when its last child resolves, the
// resolution propagates up — a convergecast whose depth is bounded by
// the strip height. Descs counts the descriptors the resolved subtree
// reported to the leader, summed on the way up (message counting, as
// in the notification phase: descriptors and acks travel different
// edges, so completion must prove arrival, not just emission).
type msgStripAck struct {
	Epoch  NodeID
	Target addr
	Descs  int
}

// msgStripDone tells the leader one whole fragment finished stripping
// (ClassSync) and how many descriptors it produced; the strip phase is
// proven complete when every launched fragment reported done AND
// exactly the announced number of descriptors arrived.
type msgStripDone struct {
	Epoch NodeID
	Descs int
}

// msgMergeAck confirms one merge-plan instruction applied (ClassSync).
// The leader counts one ack per emitted instruction; the last one
// proves the repair complete IN-BAND — the signal the open-loop engine
// uses to hand a serialized region off to its next repair
// (leader-to-leader, no driver barrier) and to emit the RepairDone
// event. Before the async engine, "repair finished" was only knowable
// by running the network to quiescence driver-side.
type msgMergeAck struct {
	Epoch NodeID
}

// msgDescriptor reports one primary root to the leader: everything the
// merge needs — identity, size, stored height, and the representative
// leaf (the free leaf charged when this tree is joined as the bigger
// side, Algorithm A.9).
type msgDescriptor struct {
	Comp      addr
	Depth     int
	Path      uint64
	Node      addr
	LeafCount int
	Height    int
	Epoch     NodeID
	Rep       slot
}

// Batched-deletion claim phase. Before any repair of a batch mutates
// state, every repair walks the exact region its damage walks and strip
// would touch, read-only, claiming each record for its epoch. Two walks
// colliding on a shared record — or a walk running into another batch
// member's dying avatar — expose a dependence between the two repairs,
// which the batch coordinator resolves by serializing the younger
// (larger-epoch) repair into a later wave. Claims are transient; the
// batch synchronizer clears them before execution begins.
//
// The coordinator that collects the conflict reports is NOT announced
// by the driver: the notified processors elect it themselves by the
// same knockout tournament the repair leader election runs, over a
// BT laid across the union of every member's physical neighborhood
// (msgClaimElect / msgClaimChamp / msgClaimCoord). Claim processing is
// buffered until the winner is known; dying members — notified like
// everyone else — answer their buffered notifications with direct
// conflict reports, so the coordinator's early-abort decision (the
// batch has unioned into one conflict group, remaining claim traffic
// is moot) is computed entirely from in-band reports.

// msgClaimDeath is the claim-phase counterpart of msgDeath: the
// receiver claims every record of its own that the deletion of V would
// cut or damage, and launches claim walks up the parent chains its
// damage walks would follow — once the elected coordinator is known
// (claim notifications arriving earlier are buffered).
type msgClaimDeath struct {
	V NodeID // the batch member being probed (also the epoch)
}

// msgClaimElect hands one notified processor its slot in the claim
// election tree: the heap-shaped complete binary tree over the union
// of every member's physical neighborhood (dying members included), in
// descending ID order — the same will-laid shape as BT_v. K is the
// batch size, which the eventual winner needs for its union-find over
// the conflict pairs (the early-abort decision).
type msgClaimElect struct {
	BTParent, BTLeft, BTRight NodeID
	K                         int
}

// msgClaimChamp moves one subtree's champion up the claim election
// tree (ClassElection), exactly like msgChampion in the repair leader
// tournament.
type msgClaimChamp struct {
	ID     NodeID
	Height int
}

// msgClaimCoord announces the tournament winner — the batch
// coordinator — down the claim election tree (ClassElection). On
// learning the winner, a participant processes its buffered claim
// notifications; no Wait synchronization is needed, because claim
// walks are read-only and timing-insensitive (any arrival order
// reports the same conflict pairs).
type msgClaimCoord struct {
	Coord NodeID
}

// msgClaimWalk ascends one parent link in claim mode, mirroring
// msgMarkDamaged without mutating repair state.
type msgClaimWalk struct {
	Target addr
	Epoch  NodeID
	Coord  NodeID
}

// msgConflict reports to the batch coordinator that the repairs of
// epochs A and B touch a common record (or one walked into the other's
// dying processor) and therefore must not run concurrently.
type msgConflict struct {
	A, B NodeID
}

// msgCreateHelper instructs a processor to start simulating a fresh
// helper on the given slot, with fully specified tree links (the
// leader's merge plan names every neighbor). The epoch tag routes the
// completion ack: every instruction is confirmed back to its sender —
// instructions always come from the repair leader itself, so the ack
// destination is the message's sender field, costing no extra word —
// and the leader's count of outstanding acks is the in-band proof the
// repair has finished.
type msgCreateHelper struct {
	Slot        slot
	Parent      addr // zero addr for the new RT root
	Left, Right addr
	Rep         slot
	Height      int
	LeafCount   int
	Epoch       NodeID
}

// msgSetParent re-parents an existing node (a primary root adopted by a
// new helper), acked to its sender — the leader — like msgCreateHelper.
type msgSetParent struct {
	Target addr
	Parent addr
	Epoch  NodeID
}

// Self-stabilizing audit layer (see audit.go). All audit traffic is
// ClassAudit: O(1)-word background probes that detect and repair
// corrupted records without driver intervention. The exchange is two
// request/response pairs — a parent probing the children it lists
// (down) and a child asking the parent it records to confirm the link
// (up) — plus the standing zero-word tick that paces each processor's
// passes.

// msgAuditTick is the standing local timer driving one processor's
// audit passes (zero words, not network traffic). The handler re-arms
// it first thing, so a live audited processor always holds exactly one
// armed tick — the invariant the driver's netQuiet counts against.
type msgAuditTick struct{}

// auditStatus is a probe reply's verdict about the probed record.
type auditStatus uint8

const (
	// auditOK: the record exists and lists the prober as its parent;
	// the reply carries its audited fields.
	auditOK auditStatus = iota + 1
	// auditGone: the owner holds no such record — the prober's child
	// pointer dangles.
	auditGone
	// auditForeign: the record exists but its parent field disagrees
	// with the prober (it names someone else, or an adoption is still
	// unconfirmed).
	auditForeign
	// auditBusy: the owner (or the record) is inside a live repair
	// epoch; the audit defers rather than racing the repair machinery.
	auditBusy
)

// msgAuditProbe asks the owner of one tree node to report that node's
// audited fields. Parent is the probing helper — the prober believes
// Target is its Side child (0 left, 1 right).
type msgAuditProbe struct {
	Target addr
	Parent addr
	Side   int
}

// msgAuditReply answers a probe with the target record's O(1)-word
// summary: the fields the prober folds (audit.Sum) to recompute its
// own aggregates. Kind/Height/LeafCount/Rep are meaningful only when
// Status is auditOK.
type msgAuditReply struct {
	Target addr
	Parent addr
	Side   int
	Status auditStatus
	Kind   kind
	Height int
	Count  int
	Rep    slot
}

// auditVerdict is a claim reply's verdict about the claimed link.
type auditVerdict uint8

const (
	// auditVMine: the target record lists the claimant as a child (or
	// just adopted it into a confirmed-dangling side).
	auditVMine auditVerdict = iota + 1
	// auditVMissing: the owner holds no such record — the claimant's
	// parent pointer dangles.
	auditVMissing
	// auditVDeny: the record exists but does not list the claimant.
	auditVDeny
	// auditVBusy: the owner or record is inside a live repair epoch.
	auditVBusy
)

// msgAuditClaim asks the parent a child records to confirm the link:
// "is Child one of Target's children?"
type msgAuditClaim struct {
	Child  addr
	Target addr
}

// msgAuditVerdict answers a claim.
type msgAuditVerdict struct {
	Child   addr
	Target  addr
	Verdict auditVerdict
}

// words counts for the accounting (number of O(log n)-bit scalars).
// The epoch tag costs one word on every message that carries it; since
// the open-loop engine, that includes the merge-plan instructions
// (create-helper, set-parent), whose epoch-tagged acks are the in-band
// repair-completion proof. The election and sync messages are charged
// like everything else — in-band coordination is exactly the cost this
// accounting exists to expose.
const (
	wordsDeath        = 4 // V doubles as the epoch; 3 BT_v links
	wordsDeathLed     = 5 // + the pre-appointed leader (coalesced merge)
	wordsChampion     = 3
	wordsLeader       = 3
	wordsMarkDamaged  = 6
	wordsWalkAck      = 2
	wordsSubtreeDone  = 2
	wordsPhaseDone    = 2
	wordsRootAnnounce = 5
	wordsFreshLeaf    = 4
	wordsKeyProbe     = 8
	wordsKeyFound     = 6
	wordsKeyNone      = 4
	wordsStripVisit   = 13
	wordsStripAck     = 5
	wordsStripDone    = 2
	wordsMergeAck     = 1
	wordsDescriptor   = 13
	wordsCreateHelper = 16
	wordsSetParent    = 7
	wordsClaimDeath   = 1
	wordsClaimElect   = 4
	wordsClaimChamp   = 2
	wordsClaimCoord   = 1
	wordsClaimWalk    = 5
	wordsConflict     = 2

	// Audit traffic (ClassAudit). Every message is O(1) words — the
	// audit's overhead guarantee is per-message, not amortized.
	wordsAuditProbe   = 7  // target addr 3, parent addr 3, side 1
	wordsAuditReply   = 13 // probe echo 7, status 1, kind 1, height 1, count 1, rep 2
	wordsAuditClaim   = 6  // child addr 3, target addr 3
	wordsAuditVerdict = 7  // claim echo 6, verdict 1
)
