package dist

import (
	"fmt"

	"repro/internal/graph"
)

// NodeID identifies a processor, shared with package graph.
type NodeID = graph.NodeID

// slot identifies a per-edge avatar exactly as in internal/core: the
// G′-edge (Owner, Other) seen from Owner's side. Leaf avatar L(v,x) and
// helper H(v,x) both live in slot {v, x}.
type slot struct {
	Owner, Other NodeID
}

func (s slot) String() string { return fmt.Sprintf("(%d,%d)", s.Owner, s.Other) }

// less orders slots lexicographically, matching core's tie-breaking.
func (s slot) less(t slot) bool {
	if s.Owner != t.Owner {
		return s.Owner < t.Owner
	}
	return s.Other < t.Other
}

// kind distinguishes the two virtual-node flavors sharing a slot.
type kind uint8

const (
	kindLeaf kind = iota + 1
	kindHelper
)

// addr names a virtual tree node globally: a slot plus the node kind.
// It is the distributed replacement for core's *haft.Node pointers —
// two node IDs and a tag, i.e. O(1) words of O(log n) bits. The zero
// addr means "no such node" (a cleared pointer).
type addr struct {
	Owner, Other NodeID
	Kind         kind
}

func (a addr) ok() bool   { return a.Kind != 0 }
func (a addr) slot() slot { return slot{Owner: a.Owner, Other: a.Other} }
func (a addr) String() string {
	if !a.ok() {
		return "-"
	}
	k := "L"
	if a.Kind == kindHelper {
		k = "H"
	}
	return fmt.Sprintf("%s(%d,%d)", k, a.Owner, a.Other)
}

// less orders addrs lexicographically for deterministic iteration.
func (a addr) less(b addr) bool {
	if a.Owner != b.Owner {
		return a.Owner < b.Owner
	}
	if a.Other != b.Other {
		return a.Other < b.Other
	}
	return a.Kind < b.Kind
}

func leafAddr(owner, other NodeID) addr   { return addr{Owner: owner, Other: other, Kind: kindLeaf} }
func helperAddr(owner, other NodeID) addr { return addr{Owner: owner, Other: other, Kind: kindHelper} }

// Message vocabulary. Every message is a constant number of O(log n)-bit
// words (IDs, counts, and one path word whose bit-length is the tree
// height <= ceil(log2 n)); the words constants below count the scalar
// fields Lemma 4 would charge for.

// Repair messages carry an Epoch: the identity of the deletion whose
// repair they belong to (the deleted processor's ID, unique for the
// batch's lifetime since IDs are never reused). Repairs of independent
// damaged regions run concurrently during a batched deletion, and the
// epoch is how a processor — which may be notified by several repairs
// at once — files each message under the right leader scratch. A single
// Delete is a batch of one; its epoch is the deleted node.

// msgDeath is the deletion notification: the model's "neighbors of the
// deleted node are informed". It is addressed to every physical
// neighbor of the deleted processor (G′ neighbors plus tree neighbors
// of its avatars) and names the repair coordinator, the smallest-ID
// notified processor (the root of the paper's BT_v coordination tree).
type msgDeath struct {
	V      NodeID // the deleted processor (also the repair's epoch)
	Leader NodeID
}

// msgMarkDamaged walks one hop up a parent pointer, marking the target
// helper damaged (the paper's Breakflag propagation, Algorithm A.5):
// a node that lost a child no longer heads an intact subtree, and
// neither does any of its ancestors.
type msgMarkDamaged struct {
	Target addr
	Epoch  NodeID
	Leader NodeID
}

// msgRootAnnounce tells the leader about a fragment root: either a
// survivor cut loose from its parent, or the top of a damage walk.
type msgRootAnnounce struct {
	Root  addr
	Epoch NodeID
}

// msgFreshLeaf tells the leader a surviving G′-neighbor created its new
// leaf avatar L(x,v) for the half-dead edge (x,v).
type msgFreshLeaf struct {
	Leaf  addr
	Epoch NodeID
}

// Phase triggers are local timer payloads delivered to the leader by
// the synchronizer between quiescent phases; they are not network
// traffic (simnet timers carry zero words). Each names the repair it
// advances; concurrent repairs sharing a leader get one trigger each.
type (
	msgStartKeys  struct{ Epoch NodeID }
	msgStartStrip struct{ Epoch NodeID }
	msgStartMerge struct{ Epoch NodeID }
)

// msgFlushOutbox is the local timer a pacing processor schedules to
// continue draining its outbox on the next round (see sendPaced).
// Like the phase triggers it is a zero-word wake-up, not network
// traffic; the queued messages themselves are charged normally when
// they are actually sent.
type msgFlushOutbox struct{}

// msgKeyProbe descends the prefer-left path from a fragment root to
// find the component's ordering key (core's leftmostLeafSlot walk).
type msgKeyProbe struct {
	Comp   addr // fragment root = component identity
	Target addr
	Epoch  NodeID
	Leader NodeID
}

// msgKeyFound / msgKeyNone report the probe's outcome to the leader.
type msgKeyFound struct {
	Comp  addr
	Key   slot
	Epoch NodeID
}

type msgKeyNone struct {
	Comp  addr
	Epoch NodeID
}

// msgStripVisit performs one step of the distributed strip: the target
// either declares itself a maximal intact complete subtree (a primary
// root) or discards itself and forwards the visit to its children.
// Depth/Path encode the position under the fragment root so the leader
// can restore left-to-right order from out-of-order arrivals.
type msgStripVisit struct {
	Comp   addr
	Target addr
	Depth  int
	Path   uint64 // bit per step from the root, 0=left 1=right, MSB first
	Epoch  NodeID
	Leader NodeID
}

// msgDescriptor reports one primary root to the leader: everything the
// merge needs — identity, size, stored height, and the representative
// leaf (the free leaf charged when this tree is joined as the bigger
// side, Algorithm A.9).
type msgDescriptor struct {
	Comp      addr
	Depth     int
	Path      uint64
	Node      addr
	LeafCount int
	Height    int
	Epoch     NodeID
	Rep       slot
}

// Batched-deletion claim phase. Before any repair of a batch mutates
// state, every repair walks the exact region its damage walks and strip
// would touch, read-only, claiming each record for its epoch. Two walks
// colliding on a shared record — or a walk running into another batch
// member's dying avatar — expose a dependence between the two repairs,
// which the batch coordinator resolves by serializing the younger
// (larger-epoch) repair into a later wave. Claims are transient; the
// batch synchronizer clears them before execution begins.

// msgClaimDeath is the claim-phase counterpart of msgDeath: the
// receiver claims every record of its own that the deletion of V would
// cut or damage, and launches claim walks up the parent chains its
// damage walks would follow.
type msgClaimDeath struct {
	V     NodeID // the batch member being probed (also the epoch)
	Coord NodeID // the batch coordinator collecting conflicts
}

// msgClaimWalk ascends one parent link in claim mode, mirroring
// msgMarkDamaged without mutating repair state.
type msgClaimWalk struct {
	Target addr
	Epoch  NodeID
	Coord  NodeID
}

// msgConflict reports to the batch coordinator that the repairs of
// epochs A and B touch a common record (or one walked into the other's
// dying processor) and therefore must not run concurrently.
type msgConflict struct {
	A, B NodeID
}

// msgCreateHelper instructs a processor to start simulating a fresh
// helper on the given slot, with fully specified tree links (the
// leader's merge plan names every neighbor).
type msgCreateHelper struct {
	Slot        slot
	Parent      addr // zero addr for the new RT root
	Left, Right addr
	Rep         slot
	Height      int
	LeafCount   int
}

// msgSetParent re-parents an existing node (a primary root adopted by a
// new helper).
type msgSetParent struct {
	Target addr
	Parent addr
}

// words counts for the accounting (number of O(log n)-bit scalars).
// The epoch tag costs one word on every message that carries it; the
// merge-plan instructions (create-helper, set-parent) are final
// mutations that need no scratch lookup and stay untagged.
const (
	wordsDeath        = 2 // V doubles as the epoch
	wordsMarkDamaged  = 5
	wordsRootAnnounce = 4
	wordsFreshLeaf    = 4
	wordsKeyProbe     = 8
	wordsKeyFound     = 6
	wordsKeyNone      = 4
	wordsStripVisit   = 10
	wordsDescriptor   = 13
	wordsCreateHelper = 15
	wordsSetParent    = 6
	wordsClaimDeath   = 2
	wordsClaimWalk    = 5
	wordsConflict     = 2
)
