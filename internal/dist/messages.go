package dist

import (
	"fmt"

	"repro/internal/graph"
)

// NodeID identifies a processor, shared with package graph.
type NodeID = graph.NodeID

// slot identifies a per-edge avatar exactly as in internal/core: the
// G′-edge (Owner, Other) seen from Owner's side. Leaf avatar L(v,x) and
// helper H(v,x) both live in slot {v, x}.
type slot struct {
	Owner, Other NodeID
}

func (s slot) String() string { return fmt.Sprintf("(%d,%d)", s.Owner, s.Other) }

// less orders slots lexicographically, matching core's tie-breaking.
func (s slot) less(t slot) bool {
	if s.Owner != t.Owner {
		return s.Owner < t.Owner
	}
	return s.Other < t.Other
}

// kind distinguishes the two virtual-node flavors sharing a slot.
type kind uint8

const (
	kindLeaf kind = iota + 1
	kindHelper
)

// addr names a virtual tree node globally: a slot plus the node kind.
// It is the distributed replacement for core's *haft.Node pointers —
// two node IDs and a tag, i.e. O(1) words of O(log n) bits. The zero
// addr means "no such node" (a cleared pointer).
type addr struct {
	Owner, Other NodeID
	Kind         kind
}

func (a addr) ok() bool   { return a.Kind != 0 }
func (a addr) slot() slot { return slot{Owner: a.Owner, Other: a.Other} }
func (a addr) String() string {
	if !a.ok() {
		return "-"
	}
	k := "L"
	if a.Kind == kindHelper {
		k = "H"
	}
	return fmt.Sprintf("%s(%d,%d)", k, a.Owner, a.Other)
}

// less orders addrs lexicographically for deterministic iteration.
func (a addr) less(b addr) bool {
	if a.Owner != b.Owner {
		return a.Owner < b.Owner
	}
	if a.Other != b.Other {
		return a.Other < b.Other
	}
	return a.Kind < b.Kind
}

func leafAddr(owner, other NodeID) addr   { return addr{Owner: owner, Other: other, Kind: kindLeaf} }
func helperAddr(owner, other NodeID) addr { return addr{Owner: owner, Other: other, Kind: kindHelper} }

// Message vocabulary. Every message is a constant number of O(log n)-bit
// words (IDs, counts, and one path word whose bit-length is the tree
// height <= ceil(log2 n)); the words constants below count the scalar
// fields Lemma 4 would charge for.

// msgDeath is the deletion notification: the model's "neighbors of the
// deleted node are informed". It is addressed to every physical
// neighbor of the deleted processor (G′ neighbors plus tree neighbors
// of its avatars) and names the repair coordinator, the smallest-ID
// notified processor (the root of the paper's BT_v coordination tree).
type msgDeath struct {
	V      NodeID // the deleted processor
	Leader NodeID
}

// msgMarkDamaged walks one hop up a parent pointer, marking the target
// helper damaged (the paper's Breakflag propagation, Algorithm A.5):
// a node that lost a child no longer heads an intact subtree, and
// neither does any of its ancestors.
type msgMarkDamaged struct {
	Target addr
	Leader NodeID
}

// msgRootAnnounce tells the leader about a fragment root: either a
// survivor cut loose from its parent, or the top of a damage walk.
type msgRootAnnounce struct {
	Root addr
}

// msgFreshLeaf tells the leader a surviving G′-neighbor created its new
// leaf avatar L(x,v) for the half-dead edge (x,v).
type msgFreshLeaf struct {
	Leaf addr
}

// Phase triggers are local timer payloads delivered to the leader by
// the synchronizer between quiescent phases; they are not network
// traffic (simnet timers carry zero words).
type (
	msgStartKeys  struct{}
	msgStartStrip struct{}
	msgStartMerge struct{}
)

// msgKeyProbe descends the prefer-left path from a fragment root to
// find the component's ordering key (core's leftmostLeafSlot walk).
type msgKeyProbe struct {
	Comp   addr // fragment root = component identity
	Target addr
	Leader NodeID
}

// msgKeyFound / msgKeyNone report the probe's outcome to the leader.
type msgKeyFound struct {
	Comp addr
	Key  slot
}

type msgKeyNone struct {
	Comp addr
}

// msgStripVisit performs one step of the distributed strip: the target
// either declares itself a maximal intact complete subtree (a primary
// root) or discards itself and forwards the visit to its children.
// Depth/Path encode the position under the fragment root so the leader
// can restore left-to-right order from out-of-order arrivals.
type msgStripVisit struct {
	Comp   addr
	Target addr
	Depth  int
	Path   uint64 // bit per step from the root, 0=left 1=right, MSB first
	Leader NodeID
}

// msgDescriptor reports one primary root to the leader: everything the
// merge needs — identity, size, stored height, and the representative
// leaf (the free leaf charged when this tree is joined as the bigger
// side, Algorithm A.9).
type msgDescriptor struct {
	Comp      addr
	Depth     int
	Path      uint64
	Node      addr
	LeafCount int
	Height    int
	Rep       slot
}

// msgCreateHelper instructs a processor to start simulating a fresh
// helper on the given slot, with fully specified tree links (the
// leader's merge plan names every neighbor).
type msgCreateHelper struct {
	Slot        slot
	Parent      addr // zero addr for the new RT root
	Left, Right addr
	Rep         slot
	Height      int
	LeafCount   int
}

// msgSetParent re-parents an existing node (a primary root adopted by a
// new helper).
type msgSetParent struct {
	Target addr
	Parent addr
}

// words counts for the accounting (number of O(log n)-bit scalars).
const (
	wordsDeath        = 2
	wordsMarkDamaged  = 4
	wordsRootAnnounce = 3
	wordsFreshLeaf    = 3
	wordsKeyProbe     = 7
	wordsKeyFound     = 5
	wordsKeyNone      = 3
	wordsStripVisit   = 9
	wordsDescriptor   = 12
	wordsCreateHelper = 15
	wordsSetParent    = 6
)
