package dist

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// Incremental maintenance of the physical network G_T.
//
// The physical graph is the homomorphic image of the virtual graph:
// live G′ edges plus the tree-edge images (record owner, parent owner),
// with self-loops and parallel edges collapsed. It used to be rebuilt
// from every record of every processor on each call — O(n) work that is
// wrong for soak at n ≥ 10⁴ — and is now maintained under every
// mutation: a simple graph plus an edge-multiplicity index (a physical
// edge exists while at least one G′ edge or parent link maps onto it).
//
// Mutations reach the index through two channels. Driver-side changes
// (insertions, processor removal) apply directly. Handler-side changes
// (links cut by death notifications, strip detachments and retirements,
// merge-plan link instructions) append to the owning processor's
// private edit log — handlers never touch shared state, which is what
// keeps the goroutine-per-processor parallel delivery mode race-free —
// and the simulation drains the logs of the processors that actually
// logged something after each quiescent run. Verify cross-checks the
// maintained graph against a from-scratch reconstruction.

// dirtyList tracks which processors have pending physical-graph edits,
// so draining touches only them instead of sweeping every processor.
// The mutex serializes first-edit registrations from concurrent handler
// goroutines in parallel delivery mode.
type dirtyList struct {
	mu    sync.Mutex
	procs []*processor
}

func (d *dirtyList) add(p *processor) {
	d.mu.Lock()
	d.procs = append(d.procs, p)
	d.mu.Unlock()
}

func (d *dirtyList) take() []*processor {
	d.mu.Lock()
	procs := d.procs
	d.procs = nil
	d.mu.Unlock()
	return procs
}

// initPhys seeds the maintained physical graph from the initial
// topology: every node alive, no tree edges yet.
func (s *Simulation) initPhys(g0 *graph.Graph) {
	s.phys = g0.Clone()
	s.physMult = make(map[graph.Edge]int, g0.NumEdges())
	for _, e := range g0.Edges() {
		s.physMult[e] = 1
	}
	s.dirty = &dirtyList{}
	// The connectivity certificates (see cert.go) shadow every mutation
	// of the two graphs from here on. gprime was cloned before initPhys
	// runs; its initial nodes are marked live by addProcessor.
	s.physCC = graph.NewComponents(s.phys)
	s.gpCC = graph.NewComponents(s.gprime)
	// The degree indexes (see stubs.go) start empty; addProcessor seeds
	// the initial nodes, folding in the degrees the clone already has.
	s.stubs = newStubIndex()
	s.degs = newDegTracker()
}

// physAdd records one more virtual-edge image mapping onto {a, b}.
func (s *Simulation) physAdd(a, b NodeID) {
	if a == b {
		return
	}
	e := graph.NewEdge(a, b)
	s.physMult[e]++
	if s.physMult[e] == 1 {
		if s.phys.AddEdge(a, b) {
			s.physCC.OnAddEdge(a, b)
			s.stubs.adjust(a, 1)
			s.stubs.adjust(b, 1)
			s.degChanged(a)
			s.degChanged(b)
		}
		// Refinement invariant: a physical edge only ever materializes
		// between processors already connected in G′ (it is the image of
		// a live G′ edge, or of a tree link inside an RT whose members
		// are connected through dead nodes). Recording a violation here
		// — sticky, surfaced by VerifyDelta — is what lets the delta
		// pass prove connectivity equivalence from component counts
		// alone, with no O(n) sweep.
		if s.certErr == nil && !s.gpCC.Same(a, b) {
			s.certErr = fmt.Errorf("dist: certificate: physical edge %d-%d appeared between G'-disconnected processors", a, b)
		}
	}
}

// physDel records one fewer virtual-edge image mapping onto {a, b};
// the physical edge disappears when the last image does. The edge may
// already be gone from the graph when its owner died first
// (removeProcessor removes a dead node's incident edges eagerly, the
// multiplicity drains catch up here) — the certificate saw that
// removal then, so it is only told about removals the graph performs.
func (s *Simulation) physDel(a, b NodeID) {
	if a == b {
		return
	}
	e := graph.NewEdge(a, b)
	switch c := s.physMult[e] - 1; {
	case c > 0:
		s.physMult[e] = c
	case c == 0:
		delete(s.physMult, e)
		if s.phys.RemoveEdge(a, b) {
			s.physCC.OnRemoveEdge(a, b)
			s.stubs.adjust(a, -1)
			s.stubs.adjust(b, -1)
			s.degChanged(a)
			s.degChanged(b)
		}
	default:
		panic(fmt.Sprintf("dist: physical edge %v-%v multiplicity went negative", a, b))
	}
}

// drainPhys applies every pending handler-side edit. Application order
// does not matter: the edits are multiplicity increments and decrements,
// which commute.
func (s *Simulation) drainPhys() {
	for _, p := range s.dirty.take() {
		for _, ed := range p.physLog {
			if ed.add {
				s.physAdd(ed.a, ed.b)
			} else {
				s.physDel(ed.a, ed.b)
			}
		}
		p.physLog = p.physLog[:0]
	}
}

// Physical returns the current actual network G_T. The graph is
// maintained incrementally; this call only snapshots it. The caller
// owns the copy.
func (s *Simulation) Physical() *graph.Graph {
	s.drainPhys()
	return s.phys.Clone()
}

// PhysicalDegree returns v's degree in the current actual network
// without materializing a snapshot.
func (s *Simulation) PhysicalDegree(v NodeID) int {
	s.drainPhys()
	return s.phys.Degree(v)
}

// physImages recomputes the edge-multiplicity index from scratch by
// walking every record of every processor: one count per live G′ edge
// plus one per cross-processor parent link. This single traversal is
// the definition of which virtual edges have physical images; both the
// reconstruction oracle and the consistency check derive from it.
func (s *Simulation) physImages() map[graph.Edge]int {
	want := make(map[graph.Edge]int)
	for v := range s.alive {
		s.gprime.EachNeighbor(v, func(x NodeID) {
			if _, live := s.alive[x]; live && v < x {
				want[graph.NewEdge(v, x)]++
			}
		})
	}
	for id, p := range s.procs {
		for _, l := range p.leaves {
			if l.parent.ok() && l.parent.Owner != id {
				want[graph.NewEdge(id, l.parent.Owner)]++
			}
		}
		for _, h := range p.helpers {
			if h.parent.ok() && h.parent.Owner != id {
				want[graph.NewEdge(id, h.parent.Owner)]++
			}
		}
	}
	return want
}

// rebuildPhysical reconstructs G_T from scratch — the original O(n)
// implementation, kept as the oracle the incremental graph is
// verified (and benchmarked) against.
func (s *Simulation) rebuildPhysical() *graph.Graph {
	g := graph.New()
	for v := range s.alive {
		g.AddNode(v)
	}
	for e := range s.physImages() {
		g.AddEdge(e.U, e.V)
	}
	return g
}

// checkPhysIncremental verifies the maintained physical graph and its
// multiplicity index against the from-scratch traversal.
func (s *Simulation) checkPhysIncremental() error {
	s.drainPhys()
	want := s.physImages()
	if len(want) != len(s.physMult) {
		return fmt.Errorf("dist: physical multiplicity index has %d edges, reconstruction %d",
			len(s.physMult), len(want))
	}
	for e, m := range want {
		if s.physMult[e] != m {
			return fmt.Errorf("dist: physical edge %v-%v multiplicity %d, reconstruction %d",
				e.U, e.V, s.physMult[e], m)
		}
	}
	// The materialized graph must mirror the index exactly: live nodes
	// and one edge per positive multiplicity.
	if s.phys.NumNodes() != len(s.alive) {
		return fmt.Errorf("dist: physical graph has %d nodes, %d alive", s.phys.NumNodes(), len(s.alive))
	}
	for v := range s.alive {
		if !s.phys.HasNode(v) {
			return fmt.Errorf("dist: live node %d missing from physical graph", v)
		}
	}
	if s.phys.NumEdges() != len(s.physMult) {
		return fmt.Errorf("dist: physical graph has %d edges, index %d", s.phys.NumEdges(), len(s.physMult))
	}
	for e := range s.physMult {
		if !s.phys.HasEdge(e.U, e.V) {
			return fmt.Errorf("dist: physical edge %v-%v in index but not in graph", e.U, e.V)
		}
	}
	return nil
}
