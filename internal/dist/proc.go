package dist

import (
	"fmt"
	"sort"

	"repro/internal/simnet"
)

// leafRec is a processor's record for one of its leaf avatars L(v,x):
// the edge to a deleted neighbor plus the avatar's position in its
// Reconstruction Tree. O(1) words of state per half-dead edge.
type leafRec struct {
	parent addr
}

// helperRec is a processor's record for a helper H(v,x) it simulates:
// tree links by address, the stored shape fields (Height/LeafCount as
// in package haft — truthful while the subtree is intact), and the
// representative leaf this helper would pass on when merged. The
// damaged flag is transient repair state (the paper's Breakflag),
// tagged with the epoch of the repair that set it: two concurrent
// repairs marking the same helper would mean the batch conflict
// detector failed, which the handlers treat as a protocol bug.
type helperRec struct {
	parent      addr
	left, right addr
	height      int
	leafCount   int
	rep         slot
	damaged     bool
	depoch      NodeID // the epoch that set damaged
}

// physEdit is one pending update to the simulation's incrementally
// maintained physical graph: the tree-edge image (owner, peer) appeared
// or disappeared because this processor's record changed a parent link.
// Handlers append to their own processor's log — never to shared state,
// which is what keeps the parallel delivery mode race-free — and the
// simulation drains the logs after each quiescent run.
type physEdit struct {
	add  bool
	a, b NodeID
}

// processor is one node of the distributed simulation. Its handler may
// touch only its own fields (plus the messages it sends), which is what
// makes the goroutine-per-processor parallel delivery mode safe.
type processor struct {
	id   NodeID
	nbrs map[NodeID]struct{} // G′ neighbors, live or dead

	leaves  map[NodeID]*leafRec   // keyed by the slot's Other endpoint
	helpers map[NodeID]*helperRec // keyed by the slot's Other endpoint

	// reps is the leader-side scratch, one per repair this processor is
	// currently coordinating, keyed by epoch. Concurrent repairs of a
	// batch may elect the same leader; the epoch tag on every message
	// keeps their scratches separate.
	reps map[NodeID]*repairState

	// Batched-deletion transient state. dying marks a batch member
	// awaiting its wave (it answers claim walks with conflict reports
	// instead of participating); claims records which epoch claimed
	// each of this processor's records during the batch's claim phase
	// (the processor registers in claimers on first claim so the batch
	// synchronizer can clear exactly the touched processors); batch is
	// the coordinator-side conflict accumulator.
	dying    bool
	claims   map[addr]NodeID
	claimers *dirtyList
	batch    *batchScratch

	// physLog accumulates this processor's pending physical-graph edits
	// (see physEdit); dirty is where the processor registers itself on
	// its first pending edit so the simulation drains only loggers.
	physLog []physEdit
	dirty   *dirtyList

	// Send pacing under finite bandwidth (see sendPaced). budget is the
	// network's per-edge words-per-round cap (0 = unlimited), spread
	// whether this processor paces its bursts at all; outbox holds the
	// sends awaiting an open slot with outQueued counting them per
	// destination (per-destination FIFO in O(1) per send),
	// flushScheduled whether a flush timer is already pending, and
	// outRound/outUsed track the words already sent per destination in
	// the current round.
	budget         int
	spread         bool
	outbox         []outMsg
	outQueued      map[NodeID]int
	flushScheduled bool
	outRound       int
	outUsed        map[NodeID]int
}

// outMsg is one send waiting in a pacing processor's outbox.
type outMsg struct {
	to      NodeID
	payload any
	words   int
}

// batchScratch is what the batch coordinator accumulates during the
// claim phase: the set of conflicting epoch pairs.
type batchScratch struct {
	conflicts map[[2]NodeID]struct{}
}

// repairState is what the leader of a repair accumulates: announced
// fragment roots, per-component ordering keys, and primary-root
// descriptors, all re-sorted canonically before the merge so that
// arrival order never matters.
type repairState struct {
	roots map[addr]struct{}
	comps map[addr]*component
}

// component mirrors one entry of core's components list: a fragment
// root (or a fresh leaf) plus its ordering key and stripped trees.
type component struct {
	root   addr
	key    slot
	hasKey bool
	descs  []msgDescriptor
}

func newProcessor(id NodeID) *processor {
	return &processor{
		id:      id,
		nbrs:    make(map[NodeID]struct{}),
		leaves:  make(map[NodeID]*leafRec),
		helpers: make(map[NodeID]*helperRec),
	}
}

// handle dispatches one delivered message. It is the simnet.Handler of
// this processor.
func (p *processor) handle(n *simnet.Network, m simnet.Message) {
	switch msg := m.Payload.(type) {
	case msgDeath:
		p.onDeath(n, msg)
	case msgMarkDamaged:
		p.onMarkDamaged(n, msg)
	case msgRootAnnounce:
		p.repair(msg.Epoch).addRoot(msg.Root)
	case msgFreshLeaf:
		p.repair(msg.Epoch).addFreshLeaf(msg.Leaf)
	case msgKeyFound:
		p.repair(msg.Epoch).setKey(msg.Comp, msg.Key)
	case msgKeyNone:
		// The prefer-left descent dead-ended: the component stays
		// keyless and sorts after every keyed one, as in core.
	case msgDescriptor:
		p.repair(msg.Epoch).addDescriptor(msg)
	case msgStartKeys:
		p.onStartKeys(n, msg.Epoch)
	case msgStartStrip:
		p.onStartStrip(n, msg.Epoch)
	case msgStartMerge:
		p.onStartMerge(n, msg.Epoch)
	case msgKeyProbe:
		p.onKeyProbe(n, msg)
	case msgStripVisit:
		p.onStripVisit(n, msg)
	case msgCreateHelper:
		p.onCreateHelper(msg)
	case msgSetParent:
		p.onSetParent(msg)
	case msgClaimDeath:
		p.onClaimDeath(n, msg)
	case msgClaimWalk:
		p.onClaimWalk(n, msg)
	case msgConflict:
		p.batchState().addConflict(msg.A, msg.B)
	case msgFlushOutbox:
		p.onFlushOutbox(n)
	default:
		panic(fmt.Sprintf("dist: processor %d: unknown message %T", p.id, m.Payload))
	}
}

// repair returns the leader scratch for one epoch, allocating on first
// use (the leader's own Death processing runs in the same round, before
// any announcement can arrive).
func (p *processor) repair(epoch NodeID) *repairState {
	if p.reps == nil {
		p.reps = make(map[NodeID]*repairState)
	}
	r, ok := p.reps[epoch]
	if !ok {
		r = &repairState{
			roots: make(map[addr]struct{}),
			comps: make(map[addr]*component),
		}
		p.reps[epoch] = r
	}
	return r
}

// batchState returns the coordinator scratch, allocating on first use.
func (p *processor) batchState() *batchScratch {
	if p.batch == nil {
		p.batch = &batchScratch{conflicts: make(map[[2]NodeID]struct{})}
	}
	return p.batch
}

func (b *batchScratch) addConflict(a, c NodeID) {
	if a == c {
		return
	}
	if a > c {
		a, c = c, a
	}
	b.conflicts[[2]NodeID{a, c}] = struct{}{}
}

func (r *repairState) addRoot(a addr) { r.roots[a] = struct{}{} }

func (r *repairState) comp(root addr) *component {
	c, ok := r.comps[root]
	if !ok {
		c = &component{root: root}
		r.comps[root] = c
	}
	return c
}

func (r *repairState) addFreshLeaf(leaf addr) {
	c := r.comp(leaf)
	c.key, c.hasKey = leaf.slot(), true
	c.descs = append(c.descs, msgDescriptor{
		Comp: leaf, Node: leaf, LeafCount: 1, Height: 0, Rep: leaf.slot(),
	})
}

func (r *repairState) setKey(root addr, key slot) {
	c := r.comp(root)
	c.key, c.hasKey = key, true
}

func (r *repairState) addDescriptor(d msgDescriptor) {
	c := r.comp(d.Comp)
	c.descs = append(c.descs, d)
}

// sendPaced sends a protocol message, holding it in a local outbox
// when the network's per-edge bandwidth budget for this destination is
// already spent this round. The repair leader's bursts — key probes,
// strip visits, and above all the merge plan's instruction fan-out —
// route through here: instead of dumping O(d) messages into the
// network in one round (and letting them pile up as edge backlog), the
// leader trickles at most the edge budget per destination per round
// and wakes itself with a zero-word timer to continue. Per-destination
// FIFO order is preserved, so paced delivery reorders nothing the
// network's own spill-over would not. With unlimited bandwidth (or
// pacing off) this is exactly Send.
func (p *processor) sendPaced(n *simnet.Network, to NodeID, payload any, words int) {
	if p.budget <= 0 || !p.spread {
		n.Send(p.id, to, payload, words)
		return
	}
	p.rollOutRound(n)
	if used := p.outUsed[to]; p.outQueued[to] == 0 && (used == 0 || used+words <= p.budget) {
		p.outUsed[to] = used + words
		n.Send(p.id, to, payload, words)
		return
	}
	if p.outQueued == nil {
		p.outQueued = make(map[NodeID]int)
	}
	p.outQueued[to]++
	p.outbox = append(p.outbox, outMsg{to: to, payload: payload, words: words})
	if !p.flushScheduled {
		p.flushScheduled = true
		n.SendTimer(p.id, msgFlushOutbox{}, 1)
	}
}

// onFlushOutbox drains the outbox: oldest first, at most the edge
// budget per destination per round (but always at least one message
// per destination, matching the network's own progress rule),
// rescheduling itself while messages remain.
func (p *processor) onFlushOutbox(n *simnet.Network) {
	p.flushScheduled = false
	p.rollOutRound(n)
	var keep []outMsg
	blocked := make(map[NodeID]bool)
	for _, m := range p.outbox {
		used := p.outUsed[m.to]
		if blocked[m.to] || (used > 0 && used+m.words > p.budget) {
			blocked[m.to] = true // preserve per-destination FIFO
			keep = append(keep, m)
			continue
		}
		p.outUsed[m.to] = used + m.words
		p.outQueued[m.to]--
		n.Send(p.id, m.to, m.payload, m.words)
	}
	p.outbox = keep
	if len(keep) > 0 {
		p.flushScheduled = true
		n.SendTimer(p.id, msgFlushOutbox{}, 1)
	}
}

// rollOutRound resets the per-destination words-sent accounting when a
// new round begins.
func (p *processor) rollOutRound(n *simnet.Network) {
	if p.outRound != n.Round() || p.outUsed == nil {
		p.outRound = n.Round()
		p.outUsed = make(map[NodeID]int)
	}
}

// logPhys appends a pending physical-graph edit for the tree-edge image
// (p.id, peer). Self-images (a processor adjacent to a node it
// simulates itself) collapse in the homomorphism and are not logged.
func (p *processor) logPhys(add bool, peer NodeID) {
	if peer == p.id {
		return
	}
	if len(p.physLog) == 0 {
		p.dirty.add(p)
	}
	p.physLog = append(p.physLog, physEdit{add: add, a: p.id, b: peer})
}

// clearParent empties a record's parent field, logging the lost
// physical edge image if one was set.
func (p *processor) clearLeafParent(l *leafRec) {
	if l.parent.ok() {
		p.logPhys(false, l.parent.Owner)
		l.parent = addr{}
	}
}

func (p *processor) clearHelperParent(h *helperRec) {
	if h.parent.ok() {
		p.logPhys(false, h.parent.Owner)
		h.parent = addr{}
	}
}

// sortedRecordKeys returns a record map's keys ascending. Handlers
// that emit one message per record must walk their records in this
// canonical order: several of those messages often share a destination
// (and so an edge), and under a finite bandwidth the send order
// decides which of them spills into the next round — map iteration
// order would make rounds and congestion stats vary run to run.
func sortedRecordKeys[T any](m map[NodeID]T) []NodeID {
	keys := make([]NodeID, 0, len(m))
	for o := range m {
		keys = append(keys, o)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// onDeath runs at every physical neighbor of the deleted processor v:
// detach every record link into v's vanished avatars, seed the damage
// walks (a helper that lost a child no longer heads an intact subtree),
// announce fragment roots, and grow the fresh leaf avatar for the
// half-dead G′ edge (x,v) if there is one.
func (p *processor) onDeath(n *simnet.Network, m msgDeath) {
	v, leader := m.V, m.Leader
	for _, o := range sortedRecordKeys(p.leaves) {
		l := p.leaves[o]
		if l.parent.ok() && l.parent.Owner == v {
			p.clearLeafParent(l)
			n.Send(p.id, leader, msgRootAnnounce{Root: leafAddr(p.id, o), Epoch: v}, wordsRootAnnounce)
		}
	}
	for _, o := range sortedRecordKeys(p.helpers) {
		h := p.helpers[o]
		lostParent, lostChild := false, false
		if h.parent.ok() && h.parent.Owner == v {
			p.clearHelperParent(h)
			lostParent = true
		}
		if h.left.ok() && h.left.Owner == v {
			h.left, lostChild = addr{}, true
		}
		if h.right.ok() && h.right.Owner == v {
			h.right, lostChild = addr{}, true
		}
		if lostChild {
			p.markDamaged(h, helperAddr(p.id, o), v)
		}
		switch {
		case lostParent, lostChild && !h.parent.ok():
			// Cut loose (or a damaged seed that already is a root).
			n.Send(p.id, leader, msgRootAnnounce{Root: helperAddr(p.id, o), Epoch: v}, wordsRootAnnounce)
		case lostChild:
			n.Send(p.id, h.parent.Owner, msgMarkDamaged{Target: h.parent, Epoch: v, Leader: leader}, wordsMarkDamaged)
		}
	}
	if _, isNbr := p.nbrs[v]; isNbr {
		if _, dup := p.leaves[v]; dup {
			panic(fmt.Sprintf("dist: leaf avatar (%d,%d) already exists", p.id, v))
		}
		p.leaves[v] = &leafRec{}
		n.Send(p.id, leader, msgFreshLeaf{Leaf: leafAddr(p.id, v), Epoch: v}, wordsFreshLeaf)
	}
}

// markDamaged sets the Breakflag for one epoch, panicking if a
// different repair already holds it: concurrent repairs never share a
// record (the batch claim phase serializes any two that would), so a
// cross-epoch collision here is a conflict-detector bug, not a state to
// recover from.
func (p *processor) markDamaged(h *helperRec, self addr, epoch NodeID) {
	if h.damaged && h.depoch != epoch {
		panic(fmt.Sprintf("dist: helper %v double-stripped: damaged by concurrent epochs %d and %d",
			self, h.depoch, epoch))
	}
	h.damaged, h.depoch = true, epoch
}

// onMarkDamaged continues a damage walk through this processor's helper
// record, stopping at nodes already marked (another walk of the same
// repair passed by) and announcing the fragment root at the top.
func (p *processor) onMarkDamaged(n *simnet.Network, m msgMarkDamaged) {
	h := p.mustHelper(m.Target)
	if h.damaged {
		if h.depoch != m.Epoch {
			panic(fmt.Sprintf("dist: helper %v double-stripped: damaged by concurrent epochs %d and %d",
				m.Target, h.depoch, m.Epoch))
		}
		return
	}
	h.damaged, h.depoch = true, m.Epoch
	if h.parent.ok() {
		n.Send(p.id, h.parent.Owner, msgMarkDamaged{Target: h.parent, Epoch: m.Epoch, Leader: m.Leader}, wordsMarkDamaged)
		return
	}
	n.Send(p.id, m.Leader, msgRootAnnounce{Root: m.Target, Epoch: m.Epoch}, wordsRootAnnounce)
}

// sortedRoots returns the announced fragment roots in deterministic
// order.
func (r *repairState) sortedRoots() []addr {
	roots := make([]addr, 0, len(r.roots))
	for a := range r.roots {
		roots = append(roots, a)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].less(roots[j]) })
	return roots
}

// onStartKeys (leader): launch one prefer-left key probe per announced
// fragment root of the given repair. The probes are a leader burst and
// go out paced under finite bandwidth.
func (p *processor) onStartKeys(n *simnet.Network, epoch NodeID) {
	rs := p.reps[epoch]
	if rs == nil {
		return
	}
	for _, root := range rs.sortedRoots() {
		p.sendPaced(n, root.Owner, msgKeyProbe{Comp: root, Target: root, Epoch: epoch, Leader: p.id}, wordsKeyProbe)
	}
}

// onKeyProbe performs one step of the prefer-left descent (core's
// leftmostLeafSlot): a leaf is the key; a helper forwards to its left
// child if present, else its right, and reports a dead end when both
// children are gone.
func (p *processor) onKeyProbe(n *simnet.Network, m msgKeyProbe) {
	if m.Target.Kind == kindLeaf {
		p.mustLeaf(m.Target)
		n.Send(p.id, m.Leader, msgKeyFound{Comp: m.Comp, Key: m.Target.slot(), Epoch: m.Epoch}, wordsKeyFound)
		return
	}
	h := p.mustHelper(m.Target)
	next := h.left
	if !next.ok() {
		next = h.right
	}
	if !next.ok() {
		n.Send(p.id, m.Leader, msgKeyNone{Comp: m.Comp, Epoch: m.Epoch}, wordsKeyNone)
		return
	}
	n.Send(p.id, next.Owner, msgKeyProbe{Comp: m.Comp, Target: next, Epoch: m.Epoch, Leader: m.Leader}, wordsKeyProbe)
}

// onStartStrip (leader): start the distributed strip at every fragment
// root of the given repair, paced like every leader burst.
func (p *processor) onStartStrip(n *simnet.Network, epoch NodeID) {
	rs := p.reps[epoch]
	if rs == nil {
		return
	}
	for _, root := range rs.sortedRoots() {
		p.sendPaced(n, root.Owner, msgStripVisit{Comp: root, Target: root, Epoch: epoch, Leader: p.id}, wordsStripVisit)
	}
}

// onStripVisit decides this node's fate in the strip, exactly as core's
// stripFast: an undamaged node whose stored fields say perfect is a
// maximal intact complete subtree (a primary root, reported to the
// leader); anything else is discarded — the helper retires — and the
// visit cascades to its children.
func (p *processor) onStripVisit(n *simnet.Network, m msgStripVisit) {
	report := func(leafCount, height int, rep slot) {
		n.Send(p.id, m.Leader, msgDescriptor{
			Comp: m.Comp, Depth: m.Depth, Path: m.Path, Epoch: m.Epoch,
			Node: m.Target, LeafCount: leafCount, Height: height, Rep: rep,
		}, wordsDescriptor)
	}
	if m.Target.Kind == kindLeaf {
		l := p.mustLeaf(m.Target)
		p.clearLeafParent(l)
		report(1, 0, m.Target.slot())
		return
	}
	h := p.mustHelper(m.Target)
	if h.damaged && h.depoch != m.Epoch {
		panic(fmt.Sprintf("dist: helper %v stripped by epoch %d while damaged by epoch %d",
			m.Target, m.Epoch, h.depoch))
	}
	if !h.damaged && h.leafCount == 1<<uint(h.height) {
		p.clearHelperParent(h)
		report(h.leafCount, h.height, h.rep)
		return
	}
	// Discarded ("marked red"): the helper retires before any join, per
	// Lemma 3.2 — its slot may be re-chosen for a new helper this very
	// repair, and the quiescence barrier between the strip and merge
	// phases guarantees the retirement lands first.
	p.clearHelperParent(h)
	delete(p.helpers, m.Target.Other)
	for dir, c := range [2]addr{h.left, h.right} {
		if !c.ok() {
			continue
		}
		n.Send(p.id, c.Owner, msgStripVisit{
			Comp: m.Comp, Target: c,
			Depth: m.Depth + 1, Path: m.Path<<1 | uint64(dir),
			Epoch:  m.Epoch,
			Leader: m.Leader,
		}, wordsStripVisit)
	}
}

// onCreateHelper starts simulating a fresh helper with fully wired
// links from the leader's merge plan.
func (p *processor) onCreateHelper(m msgCreateHelper) {
	if _, exists := p.helpers[m.Slot.Other]; exists {
		panic(fmt.Sprintf("dist: representative mechanism chose occupied slot %v", m.Slot))
	}
	p.helpers[m.Slot.Other] = &helperRec{
		parent: m.Parent, left: m.Left, right: m.Right,
		height: m.Height, leafCount: m.LeafCount, rep: m.Rep,
	}
	if m.Parent.ok() {
		p.logPhys(true, m.Parent.Owner)
	}
}

// onSetParent re-parents one of this processor's existing nodes.
func (p *processor) onSetParent(m msgSetParent) {
	if m.Target.Kind == kindLeaf {
		l := p.mustLeaf(m.Target)
		p.clearLeafParent(l)
		l.parent = m.Parent
	} else {
		h := p.mustHelper(m.Target)
		p.clearHelperParent(h)
		h.parent = m.Parent
	}
	if m.Parent.ok() {
		p.logPhys(true, m.Parent.Owner)
	}
}

// claim records that epoch e's repair will touch record a, reporting a
// conflict to the batch coordinator when another epoch got there first.
// It returns false when the claim walk should stop here (the record was
// already claimed, by anyone).
func (p *processor) claim(n *simnet.Network, a addr, e, coord NodeID) bool {
	if p.claims == nil {
		p.claims = make(map[addr]NodeID)
		p.claimers.add(p)
	}
	if prev, ok := p.claims[a]; ok {
		if prev != e {
			n.Send(p.id, coord, msgConflict{A: prev, B: e}, wordsConflict)
		}
		return false
	}
	p.claims[a] = e
	return true
}

// onClaimDeath is the read-only mirror of onDeath: claim every record
// the deletion of V would cut loose or damage, and launch claim walks
// along the paths the damage walks would ascend. Nothing mutates; the
// only outputs are claim marks and conflict reports.
func (p *processor) onClaimDeath(n *simnet.Network, m msgClaimDeath) {
	v, coord := m.V, m.Coord
	for _, o := range sortedRecordKeys(p.leaves) {
		l := p.leaves[o]
		if l.parent.ok() && l.parent.Owner == v {
			p.claim(n, leafAddr(p.id, o), v, coord)
		}
	}
	for _, o := range sortedRecordKeys(p.helpers) {
		h := p.helpers[o]
		lostParent := h.parent.ok() && h.parent.Owner == v
		lostChild := (h.left.ok() && h.left.Owner == v) || (h.right.ok() && h.right.Owner == v)
		if !lostParent && !lostChild {
			continue
		}
		self := helperAddr(p.id, o)
		cont := p.claim(n, self, v, coord)
		// The damage walk ascends only from nodes that lost a child and
		// still have a parent; mirror exactly that.
		if cont && lostChild && !lostParent && h.parent.ok() {
			n.Send(p.id, h.parent.Owner, msgClaimWalk{Target: h.parent, Epoch: v, Coord: coord}, wordsClaimWalk)
		}
	}
}

// onClaimWalk ascends one parent link in claim mode. Walking into a
// dying processor (another batch member awaiting its own wave) exposes
// a dependence between the two repairs, exactly as the execution-time
// walk would have found its avatar missing.
func (p *processor) onClaimWalk(n *simnet.Network, m msgClaimWalk) {
	if p.dying {
		n.Send(p.id, m.Coord, msgConflict{A: p.id, B: m.Epoch}, wordsConflict)
		return
	}
	h := p.mustHelper(m.Target)
	if !p.claim(n, m.Target, m.Epoch, m.Coord) {
		return
	}
	if h.parent.ok() {
		n.Send(p.id, h.parent.Owner, msgClaimWalk{Target: h.parent, Epoch: m.Epoch, Coord: m.Coord}, wordsClaimWalk)
	}
}

func (p *processor) mustLeaf(a addr) *leafRec {
	l, ok := p.leaves[a.Other]
	if !ok || a.Owner != p.id || a.Kind != kindLeaf {
		panic(fmt.Sprintf("dist: processor %d: no leaf record for %v", p.id, a))
	}
	return l
}

func (p *processor) mustHelper(a addr) *helperRec {
	h, ok := p.helpers[a.Other]
	if !ok || a.Owner != p.id || a.Kind != kindHelper {
		panic(fmt.Sprintf("dist: processor %d: no helper record for %v", p.id, a))
	}
	return h
}
