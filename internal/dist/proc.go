package dist

import (
	"fmt"
	"sort"

	"repro/internal/simnet"
)

// leafRec is a processor's record for one of its leaf avatars L(v,x):
// the edge to a deleted neighbor plus the avatar's position in its
// Reconstruction Tree. O(1) words of state per half-dead edge.
type leafRec struct {
	parent addr
}

// helperRec is a processor's record for a helper H(v,x) it simulates:
// tree links by address, the stored shape fields (Height/LeafCount as
// in package haft — truthful while the subtree is intact), and the
// representative leaf this helper would pass on when merged. The
// damaged flag is transient repair state (the paper's Breakflag).
type helperRec struct {
	parent      addr
	left, right addr
	height      int
	leafCount   int
	rep         slot
	damaged     bool
}

// processor is one node of the distributed simulation. Its handler may
// touch only its own fields (plus the messages it sends), which is what
// makes the goroutine-per-processor parallel delivery mode safe.
type processor struct {
	id   NodeID
	nbrs map[NodeID]struct{} // G′ neighbors, live or dead

	leaves  map[NodeID]*leafRec   // keyed by the slot's Other endpoint
	helpers map[NodeID]*helperRec // keyed by the slot's Other endpoint

	// rep is the leader-side scratch for the repair this processor is
	// currently coordinating (nil otherwise).
	rep *repairState
}

// repairState is what the leader of a repair accumulates: announced
// fragment roots, per-component ordering keys, and primary-root
// descriptors, all re-sorted canonically before the merge so that
// arrival order never matters.
type repairState struct {
	roots map[addr]struct{}
	comps map[addr]*component
}

// component mirrors one entry of core's components list: a fragment
// root (or a fresh leaf) plus its ordering key and stripped trees.
type component struct {
	root   addr
	key    slot
	hasKey bool
	descs  []msgDescriptor
}

func newProcessor(id NodeID) *processor {
	return &processor{
		id:      id,
		nbrs:    make(map[NodeID]struct{}),
		leaves:  make(map[NodeID]*leafRec),
		helpers: make(map[NodeID]*helperRec),
	}
}

// handle dispatches one delivered message. It is the simnet.Handler of
// this processor.
func (p *processor) handle(n *simnet.Network, m simnet.Message) {
	switch msg := m.Payload.(type) {
	case msgDeath:
		p.onDeath(n, msg)
	case msgMarkDamaged:
		p.onMarkDamaged(n, msg)
	case msgRootAnnounce:
		p.repair().addRoot(msg.Root)
	case msgFreshLeaf:
		p.repair().addFreshLeaf(msg.Leaf)
	case msgKeyFound:
		p.repair().setKey(msg.Comp, msg.Key)
	case msgKeyNone:
		// The prefer-left descent dead-ended: the component stays
		// keyless and sorts after every keyed one, as in core.
	case msgDescriptor:
		p.repair().addDescriptor(msg)
	case msgStartKeys:
		p.onStartKeys(n)
	case msgStartStrip:
		p.onStartStrip(n)
	case msgStartMerge:
		p.onStartMerge(n)
	case msgKeyProbe:
		p.onKeyProbe(n, msg)
	case msgStripVisit:
		p.onStripVisit(n, msg)
	case msgCreateHelper:
		p.onCreateHelper(msg)
	case msgSetParent:
		p.onSetParent(msg)
	default:
		panic(fmt.Sprintf("dist: processor %d: unknown message %T", p.id, m.Payload))
	}
}

// repair returns the leader scratch, allocating on first use (the
// leader's own Death processing runs in the same round, before any
// announcement can arrive).
func (p *processor) repair() *repairState {
	if p.rep == nil {
		p.rep = &repairState{
			roots: make(map[addr]struct{}),
			comps: make(map[addr]*component),
		}
	}
	return p.rep
}

func (r *repairState) addRoot(a addr) { r.roots[a] = struct{}{} }

func (r *repairState) comp(root addr) *component {
	c, ok := r.comps[root]
	if !ok {
		c = &component{root: root}
		r.comps[root] = c
	}
	return c
}

func (r *repairState) addFreshLeaf(leaf addr) {
	c := r.comp(leaf)
	c.key, c.hasKey = leaf.slot(), true
	c.descs = append(c.descs, msgDescriptor{
		Comp: leaf, Node: leaf, LeafCount: 1, Height: 0, Rep: leaf.slot(),
	})
}

func (r *repairState) setKey(root addr, key slot) {
	c := r.comp(root)
	c.key, c.hasKey = key, true
}

func (r *repairState) addDescriptor(d msgDescriptor) {
	c := r.comp(d.Comp)
	c.descs = append(c.descs, d)
}

// onDeath runs at every physical neighbor of the deleted processor v:
// detach every record link into v's vanished avatars, seed the damage
// walks (a helper that lost a child no longer heads an intact subtree),
// announce fragment roots, and grow the fresh leaf avatar for the
// half-dead G′ edge (x,v) if there is one.
func (p *processor) onDeath(n *simnet.Network, m msgDeath) {
	v, leader := m.V, m.Leader
	for o, l := range p.leaves {
		if l.parent.ok() && l.parent.Owner == v {
			l.parent = addr{}
			n.Send(p.id, leader, msgRootAnnounce{Root: leafAddr(p.id, o)}, wordsRootAnnounce)
		}
	}
	for o, h := range p.helpers {
		lostParent, lostChild := false, false
		if h.parent.ok() && h.parent.Owner == v {
			h.parent, lostParent = addr{}, true
		}
		if h.left.ok() && h.left.Owner == v {
			h.left, lostChild = addr{}, true
		}
		if h.right.ok() && h.right.Owner == v {
			h.right, lostChild = addr{}, true
		}
		if lostChild {
			h.damaged = true
		}
		switch {
		case lostParent, lostChild && !h.parent.ok():
			// Cut loose (or a damaged seed that already is a root).
			n.Send(p.id, leader, msgRootAnnounce{Root: helperAddr(p.id, o)}, wordsRootAnnounce)
		case lostChild:
			n.Send(p.id, h.parent.Owner, msgMarkDamaged{Target: h.parent, Leader: leader}, wordsMarkDamaged)
		}
	}
	if _, isNbr := p.nbrs[v]; isNbr {
		if _, dup := p.leaves[v]; dup {
			panic(fmt.Sprintf("dist: leaf avatar (%d,%d) already exists", p.id, v))
		}
		p.leaves[v] = &leafRec{}
		n.Send(p.id, leader, msgFreshLeaf{Leaf: leafAddr(p.id, v)}, wordsFreshLeaf)
	}
}

// onMarkDamaged continues a damage walk through this processor's helper
// record, stopping at nodes already marked (another walk passed by) and
// announcing the fragment root at the top.
func (p *processor) onMarkDamaged(n *simnet.Network, m msgMarkDamaged) {
	h := p.mustHelper(m.Target)
	if h.damaged {
		return
	}
	h.damaged = true
	if h.parent.ok() {
		n.Send(p.id, h.parent.Owner, msgMarkDamaged{Target: h.parent, Leader: m.Leader}, wordsMarkDamaged)
		return
	}
	n.Send(p.id, m.Leader, msgRootAnnounce{Root: m.Target}, wordsRootAnnounce)
}

// sortedRoots returns the announced fragment roots in deterministic
// order.
func (r *repairState) sortedRoots() []addr {
	roots := make([]addr, 0, len(r.roots))
	for a := range r.roots {
		roots = append(roots, a)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].less(roots[j]) })
	return roots
}

// onStartKeys (leader): launch one prefer-left key probe per announced
// fragment root.
func (p *processor) onStartKeys(n *simnet.Network) {
	if p.rep == nil {
		return
	}
	for _, root := range p.rep.sortedRoots() {
		n.Send(p.id, root.Owner, msgKeyProbe{Comp: root, Target: root, Leader: p.id}, wordsKeyProbe)
	}
}

// onKeyProbe performs one step of the prefer-left descent (core's
// leftmostLeafSlot): a leaf is the key; a helper forwards to its left
// child if present, else its right, and reports a dead end when both
// children are gone.
func (p *processor) onKeyProbe(n *simnet.Network, m msgKeyProbe) {
	if m.Target.Kind == kindLeaf {
		p.mustLeaf(m.Target)
		n.Send(p.id, m.Leader, msgKeyFound{Comp: m.Comp, Key: m.Target.slot()}, wordsKeyFound)
		return
	}
	h := p.mustHelper(m.Target)
	next := h.left
	if !next.ok() {
		next = h.right
	}
	if !next.ok() {
		n.Send(p.id, m.Leader, msgKeyNone{Comp: m.Comp}, wordsKeyNone)
		return
	}
	n.Send(p.id, next.Owner, msgKeyProbe{Comp: m.Comp, Target: next, Leader: m.Leader}, wordsKeyProbe)
}

// onStartStrip (leader): start the distributed strip at every fragment
// root.
func (p *processor) onStartStrip(n *simnet.Network) {
	if p.rep == nil {
		return
	}
	for _, root := range p.rep.sortedRoots() {
		n.Send(p.id, root.Owner, msgStripVisit{Comp: root, Target: root, Leader: p.id}, wordsStripVisit)
	}
}

// onStripVisit decides this node's fate in the strip, exactly as core's
// stripFast: an undamaged node whose stored fields say perfect is a
// maximal intact complete subtree (a primary root, reported to the
// leader); anything else is discarded — the helper retires — and the
// visit cascades to its children.
func (p *processor) onStripVisit(n *simnet.Network, m msgStripVisit) {
	report := func(leafCount, height int, rep slot) {
		n.Send(p.id, m.Leader, msgDescriptor{
			Comp: m.Comp, Depth: m.Depth, Path: m.Path,
			Node: m.Target, LeafCount: leafCount, Height: height, Rep: rep,
		}, wordsDescriptor)
	}
	if m.Target.Kind == kindLeaf {
		l := p.mustLeaf(m.Target)
		l.parent = addr{}
		report(1, 0, m.Target.slot())
		return
	}
	h := p.mustHelper(m.Target)
	if !h.damaged && h.leafCount == 1<<uint(h.height) {
		h.parent = addr{}
		report(h.leafCount, h.height, h.rep)
		return
	}
	// Discarded ("marked red"): the helper retires before any join, per
	// Lemma 3.2 — its slot may be re-chosen for a new helper this very
	// repair, and the quiescence barrier between the strip and merge
	// phases guarantees the retirement lands first.
	delete(p.helpers, m.Target.Other)
	for dir, c := range [2]addr{h.left, h.right} {
		if !c.ok() {
			continue
		}
		n.Send(p.id, c.Owner, msgStripVisit{
			Comp: m.Comp, Target: c,
			Depth: m.Depth + 1, Path: m.Path<<1 | uint64(dir),
			Leader: m.Leader,
		}, wordsStripVisit)
	}
}

// onCreateHelper starts simulating a fresh helper with fully wired
// links from the leader's merge plan.
func (p *processor) onCreateHelper(m msgCreateHelper) {
	if _, exists := p.helpers[m.Slot.Other]; exists {
		panic(fmt.Sprintf("dist: representative mechanism chose occupied slot %v", m.Slot))
	}
	p.helpers[m.Slot.Other] = &helperRec{
		parent: m.Parent, left: m.Left, right: m.Right,
		height: m.Height, leafCount: m.LeafCount, rep: m.Rep,
	}
}

// onSetParent re-parents one of this processor's existing nodes.
func (p *processor) onSetParent(m msgSetParent) {
	if m.Target.Kind == kindLeaf {
		p.mustLeaf(m.Target).parent = m.Parent
		return
	}
	p.mustHelper(m.Target).parent = m.Parent
}

func (p *processor) mustLeaf(a addr) *leafRec {
	l, ok := p.leaves[a.Other]
	if !ok || a.Owner != p.id || a.Kind != kindLeaf {
		panic(fmt.Sprintf("dist: processor %d: no leaf record for %v", p.id, a))
	}
	return l
}

func (p *processor) mustHelper(a addr) *helperRec {
	h, ok := p.helpers[a.Other]
	if !ok || a.Owner != p.id || a.Kind != kindHelper {
		panic(fmt.Sprintf("dist: processor %d: no helper record for %v", p.id, a))
	}
	return h
}
