package dist

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/audit"
	"repro/internal/transport"
)

// leafRec is a processor's record for one of its leaf avatars L(v,x):
// the edge to a deleted neighbor plus the avatar's position in its
// Reconstruction Tree. O(1) words of state per half-dead edge.
type leafRec struct {
	parent addr
}

// helperRec is a processor's record for a helper H(v,x) it simulates:
// tree links by address, the stored shape fields (Height/LeafCount as
// in package haft — truthful while the subtree is intact), and the
// representative leaf this helper would pass on when merged. The
// damaged flag is transient repair state (the paper's Breakflag),
// tagged with the epoch of the repair that set it: two concurrent
// repairs marking the same helper would mean the batch conflict
// detector failed, which the handlers treat as a protocol bug.
type helperRec struct {
	parent      addr
	left, right addr
	height      int
	leafCount   int
	rep         slot
	damaged     bool
	depoch      NodeID // the epoch that set damaged
}

// physEdit is one pending update to the simulation's incrementally
// maintained physical graph: the tree-edge image (owner, peer) appeared
// or disappeared because this processor's record changed a parent link.
// Handlers append to their own processor's log — never to shared state,
// which is what keeps the parallel delivery mode race-free — and the
// simulation drains the logs after each quiescent run.
type physEdit struct {
	add  bool
	a, b NodeID
}

// processor is one node of the distributed simulation. Its handler may
// touch only its own fields (plus the messages it sends), which is what
// makes the goroutine-per-processor parallel delivery mode safe.
type processor struct {
	id   NodeID
	nbrs map[NodeID]struct{} // G′ neighbors, live or dead

	leaves  map[NodeID]*leafRec   // keyed by the slot's Other endpoint
	helpers map[NodeID]*helperRec // keyed by the slot's Other endpoint

	// reps is the leader-side scratch, one per repair this processor is
	// currently coordinating, keyed by epoch. Concurrent repairs of a
	// batch may elect the same leader; the epoch tag on every message
	// keeps their scratches separate.
	reps map[NodeID]*repairState

	// parts is the participant-side transient state, one per repair
	// this processor was notified of, keyed by epoch: its BT_v slot,
	// the election tournament's running champion, and the
	// notification-phase termination counters. Deleted as soon as the
	// participant proves its subtree done.
	parts map[NodeID]*partState

	// Free-lists for the per-epoch scratch above. A churning network
	// retires one partState per notified neighbor and one repairState
	// per repair every deletion; recycling them (reset at reuse, so a
	// frame that just retired its scratch may still read it) keeps the
	// steady-state tick path off the allocator.
	partFree []*partState
	repFree  []*repairState

	// stripWait tracks retired helpers whose strip cascades are still
	// resolving below them: the record itself is gone, but the
	// completion convergecast needs to know where to forward the last
	// child's ack. Keyed by the retired node's address (safe: a slot
	// freed by the strip is only reused by the same epoch's merge,
	// strictly after the cascade resolves).
	stripWait map[addr]*stripWaiter

	// wdRearmed / wdStale count phase-watchdog firings that found the
	// phase still open (re-armed) or already advanced (ignored) —
	// observability for the termination-detection tests.
	wdRearmed, wdStale int

	// Batched-deletion transient state. dying marks a batch member
	// awaiting its wave (it answers claim walks with conflict reports
	// instead of participating); claims records which epoch claimed
	// each of this processor's records during the batch's claim phase
	// (the processor registers in claimers on first claim so the batch
	// synchronizer can clear exactly the touched processors); claimEl
	// is the in-band coordinator-election state (tree slot, running
	// champion, buffered claim notifications); batch is the
	// coordinator-side conflict accumulator.
	dying    bool
	claims   map[addr]NodeID
	claimers *dirtyList
	claimEl  *claimElect
	batch    *batchScratch

	// done is where the leader registers a repair's in-band completion
	// (the last merge-instruction ack arrived); the open-loop engine
	// drains it after every round to emit RepairDone events and hand
	// serialized regions off leader-to-leader.
	done *doneList

	// physLog accumulates this processor's pending physical-graph edits
	// (see physEdit); dirty is where the processor registers itself on
	// its first pending edit so the simulation drains only loggers.
	physLog []physEdit
	dirty   *dirtyList

	// touched marks that some record of this processor changed since
	// the last verification; touchers is where it registers on the
	// first change so incremental verification revisits exactly the
	// processors repairs touched (see VerifyDelta).
	touched  bool
	touchers *dirtyList

	// Send pacing under finite bandwidth (see sendPaced). spread is
	// whether this processor paces its bursts at all; the budget is the
	// network's effective per-edge cap for each destination (per-edge
	// overrides included), looked up per send. outbox holds the sends
	// awaiting an open slot with outQueued counting them per
	// destination (per-destination FIFO in O(1) per send),
	// flushScheduled whether a flush timer is already pending, and
	// outRound/outUsed track the words already sent per destination in
	// the current round.
	spread         bool
	outbox         []outMsg
	outQueued      map[NodeID]int
	flushScheduled bool
	outRound       int
	outUsed        map[NodeID]int
	outBlocked     map[NodeID]bool // flush scratch, cleared per flush

	// Self-stabilizing audit layer (see audit.go). Zero value = off.
	// aProtoSeen counts every non-audit message this processor handled;
	// it is the activity witness the confirm-twice rules compare — two
	// matching observations with aProtoSeen unchanged between them mean
	// no repair machinery touched this processor in the interval, so
	// the disagreement is corruption, not a repair in flight. aCursor is
	// the round-robin position of the structural pass; aStaleFP /
	// aStaleMark / aStaleRuns drive the stale-transient-state detector;
	// aWait stashes in-flight probe conversations per audited helper;
	// aSuspect counts consecutive dangling-probe verdicts per child
	// side; aAdopt / aClaimBad hold the one-prior-observation entries of
	// the adopt-zero and clear-parent confirm rules.
	auditOn    bool
	auditCfg   audit.Config
	aStats     audit.Stats
	aProtoSeen int
	aCursor    int
	aStaleFP   uint64
	aStaleMark int
	aStaleRuns int
	aWait      map[addr]*auditAgg
	aSuspect   map[auditSideKey]*auditConfirm
	aAdopt     map[addr]*auditConfirm
	aClaimBad  map[addr]*auditConfirm
}

// partState is one participant's transient view of one repair it was
// notified of: its BT_v links, the knockout tournament's progress, and
// the termination-detection counters for the notification phase.
type partState struct {
	v                         NodeID // the deleted processor (= epoch)
	btParent, btLeft, btRight NodeID // noNode where absent

	// haveDeath records that the notification itself arrived. Under a
	// finite bandwidth a congested self-edge can delay it past a BT_v
	// child's champion (the child's own notification went through), so
	// early champions are folded into champ/height and counted in
	// earlyChamps until the notification catches up.
	haveDeath   bool
	earlyChamps int

	// Election: champ is the smallest ID seen (self plus reported
	// subtrees), waitChamps how many BT_v children have yet to report,
	// height the learned BT_v subtree height, leader the winner once
	// the announcement arrives (noNode until then).
	champ      NodeID
	waitChamps int
	height     int
	leader     NodeID

	// Termination detection: walksOut counts seeded damage walks not
	// yet acked, waitDone the BT_v children that have yet to report
	// their subtrees done, processed whether this participant ran its
	// own death-processing, annSent the leader-bound announcements this
	// subtree produced (own plus walk-terminator ones, folded in from
	// acks and children's dones) for the message-counting proof.
	walksOut  int
	waitDone  int
	processed bool
	annSent   int
}

// stripWaiter holds the completion state of a retired helper whose
// strip cascade is still resolving: how many child subtrees remain,
// the descriptors they reported so far, and where the resolution goes
// when the last one acks.
type stripWaiter struct {
	epoch   NodeID
	waiting int
	descs   int
	ackTo   addr // zero addr: fragment root, completion goes to leader
	leader  NodeID
}

// outMsg is one send waiting in a pacing processor's outbox.
type outMsg struct {
	to      NodeID
	payload any
	words   int
	class   transport.Class
}

// batchScratch is what the batch coordinator accumulates during the
// claim phase: the set of conflicting epoch pairs, plus the union-find
// over the batch members that powers the in-band early-abort decision
// — the moment the conflict pairs union all K members into one group,
// every remaining claim message is moot and the coordinator flags the
// phase decided.
type batchScratch struct {
	conflicts map[[2]NodeID]struct{}
	k         int               // batch size, from msgClaimElect
	parent    map[NodeID]NodeID // union-find over members seen in pairs
	merges    int               // effective unions; k-merges == live groups
	decided   bool              // merges == k-1: one conflict group
}

// claimElect is one notified processor's transient state in the claim
// coordinator election: its tree slot, the knockout tournament's
// progress, and the claim notifications buffered until the winner is
// known. The haveElect/earlyChamps pair mirrors the repair election's
// handling of champions that outrun a congested self-addressed
// notification.
type claimElect struct {
	btParent, btLeft, btRight NodeID
	haveElect                 bool
	earlyChamps               int
	champ                     NodeID
	waitChamps                int
	height                    int
	k                         int
	coord                     NodeID   // noNode until announced
	pend                      []NodeID // buffered msgClaimDeath epochs
}

// doneList collects (epoch, leader) pairs for repairs whose completion
// the leader just proved in-band. Like dirtyList, the mutex serializes
// registrations from concurrent handler goroutines in parallel
// delivery mode; the engine drains and sorts it after every round, so
// both delivery modes process completions in the same order.
type doneList struct {
	mu      sync.Mutex
	entries []doneEntry
}

type doneEntry struct {
	epoch, leader NodeID
}

func (d *doneList) add(epoch, leader NodeID) {
	d.mu.Lock()
	d.entries = append(d.entries, doneEntry{epoch: epoch, leader: leader})
	d.mu.Unlock()
}

func (d *doneList) take() []doneEntry {
	d.mu.Lock()
	entries := d.entries
	d.entries = nil
	d.mu.Unlock()
	// sort.Slice costs an allocation even on an empty slice, and the
	// engine drains this list every tick — almost always empty.
	if len(entries) > 1 {
		sort.Slice(entries, func(i, j int) bool { return entries[i].epoch < entries[j].epoch })
	}
	return entries
}

// Leader-side phase progression of one repair. The leader proves each
// phase complete in-band — the BT_v phase-done report for the
// notification phase, counted probe replies for the key phase, the
// strip convergecast for the strip phase, and counted instruction acks
// for the merge phase, whose last ack retires the repair entirely and
// registers it on the engine's done list.
const (
	phaseNotify = iota
	phaseKeys
	phaseStrip
	phaseMerge
)

// repairState is what the leader of a repair accumulates: announced
// fragment roots, per-component ordering keys, and primary-root
// descriptors, all re-sorted canonically before the merge so that
// arrival order never matters — plus the in-band phase machine that
// replaced the caller's quiescence barriers.
type repairState struct {
	roots map[addr]struct{}
	comps map[addr]*component

	// phase is the current leader-side phase; outstanding counts the
	// completion proofs the phase still waits for (key replies or
	// fragment strip-dones); maxRootHeight is the deepest announced
	// fragment's stored height, bounding the watchdog timers.
	phase         int
	outstanding   int
	maxRootHeight int

	// Message-counting termination detection. The notification phase:
	// annRecvd counts announcements (root announces + fresh leaves)
	// received, annExpected the total the BT_v convergecast reported,
	// haveNotifyDone whether that report arrived — keys start when the
	// report is in AND the counts match. The strip phase: descRecvd /
	// descExpected play the same game for descriptors vs the fragment
	// strip-done reports.
	annRecvd       int
	annExpected    int
	haveNotifyDone bool
	descRecvd      int
	descExpected   int

	// Scratch retained across pool recycling so the per-repair leader
	// work costs no steady-state allocations: rootScratch backs
	// sortedRoots, compScratch/descScratch back orderedDescriptors, and
	// compFree holds retired component objects for comp() to reuse.
	rootScratch []addr
	compScratch []*component
	descScratch []msgDescriptor
	compFree    []*component
}

// component mirrors one entry of core's components list: a fragment
// root (or a fresh leaf) plus its ordering key and stripped trees.
type component struct {
	root   addr
	key    slot
	hasKey bool
	descs  []msgDescriptor
}

func newProcessor(id NodeID) *processor {
	return &processor{
		id:      id,
		nbrs:    make(map[NodeID]struct{}),
		leaves:  make(map[NodeID]*leafRec),
		helpers: make(map[NodeID]*helperRec),
	}
}

// handle dispatches one delivered message. It is the transport.Handler of
// this processor.
func (p *processor) handle(n transport.Endpoint, m transport.Message) {
	// Count protocol activity for the audit layer's confirm rules.
	// Audit traffic itself is excluded: probes must not mask the quiet
	// intervals they are probing for.
	switch m.Payload.(type) {
	case msgAuditTick, msgAuditProbe, msgAuditReply, msgAuditClaim, msgAuditVerdict:
	default:
		p.aProtoSeen++
	}
	switch msg := m.Payload.(type) {
	case msgDeath:
		p.onDeath(n, msg)
	case msgChampion:
		p.onChampion(n, msg)
	case msgLeader:
		p.onLeader(n, msg)
	case msgBeginRepair:
		p.beginRepair(n, msg.Epoch, msg.Leader)
	case msgWalkAck:
		ps := p.mustPart(msg.Epoch)
		ps.walksOut--
		ps.annSent += msg.Announced
		p.maybeNotifyDone(n, msg.Epoch, ps)
	case msgSubtreeDone:
		ps := p.mustPart(msg.Epoch)
		ps.waitDone--
		ps.annSent += msg.Announced
		p.maybeNotifyDone(n, msg.Epoch, ps)
	case msgPhaseDone:
		// The BT_v root proved the notification phase globally done and
		// reported how many announcements are owed; the key phase
		// starts once they have all arrived.
		rs := p.repair(msg.Epoch)
		rs.haveNotifyDone = true
		rs.annExpected = msg.Announced
		p.maybeStartKeys(n, msg.Epoch, rs)
	case msgMarkDamaged:
		p.onMarkDamaged(n, msg)
	case msgRootAnnounce:
		rs := p.repair(msg.Epoch)
		rs.addRoot(msg.Root, msg.Height)
		rs.annRecvd++
		p.maybeStartKeys(n, msg.Epoch, rs)
	case msgFreshLeaf:
		rs := p.repair(msg.Epoch)
		rs.addFreshLeaf(msg.Leaf)
		rs.annRecvd++
		p.maybeStartKeys(n, msg.Epoch, rs)
	case msgKeyFound:
		p.repair(msg.Epoch).setKey(msg.Comp, msg.Key)
		p.keyReplied(n, msg.Epoch)
	case msgKeyNone:
		// The prefer-left descent dead-ended: the component stays
		// keyless and sorts after every keyed one, as in core. The
		// reply still counts toward the phase's completion.
		p.keyReplied(n, msg.Epoch)
	case msgDescriptor:
		rs := p.repair(msg.Epoch)
		rs.addDescriptor(msg)
		rs.descRecvd++
		p.maybeStartMerge(n, msg.Epoch, rs)
	case msgStripAck:
		p.onStripAck(n, msg)
	case msgStripDone:
		p.onStripDone(n, msg)
	case msgPhaseWatch:
		p.onPhaseWatch(n, msg)
	case msgKeyProbe:
		p.onKeyProbe(n, msg)
	case msgStripVisit:
		p.onStripVisit(n, msg)
	case msgCreateHelper:
		p.onCreateHelper(n, m.From, msg)
	case msgSetParent:
		p.onSetParent(n, m.From, msg)
	case msgMergeAck:
		p.onMergeAck(n, msg)
	case msgClaimDeath:
		p.onClaimDeath(n, msg)
	case msgClaimElect:
		p.onClaimElect(n, msg)
	case msgClaimChamp:
		p.onClaimChamp(n, msg)
	case msgClaimCoord:
		p.onClaimCoord(n, msg)
	case msgClaimWalk:
		p.onClaimWalk(n, msg)
	case msgConflict:
		p.batchState().addConflict(msg.A, msg.B)
	case msgFlushOutbox:
		p.onFlushOutbox(n)
	case msgAuditTick:
		p.onAuditTick(n)
	case msgAuditProbe:
		p.onAuditProbe(n, msg)
	case msgAuditReply:
		p.onAuditReply(n, msg)
	case msgAuditClaim:
		p.onAuditClaim(n, msg)
	case msgAuditVerdict:
		p.onAuditVerdict(n, msg)
	default:
		panic(fmt.Sprintf("dist: processor %d: unknown message %T", p.id, m.Payload))
	}
}

func (p *processor) mustPart(epoch NodeID) *partState {
	ps, ok := p.parts[epoch]
	if !ok {
		panic(fmt.Sprintf("dist: processor %d: no participant state for epoch %d", p.id, epoch))
	}
	return ps
}

// repair returns the leader scratch for one epoch, allocating on first
// use (the leader's own Death processing runs in the same round, before
// any announcement can arrive).
func (p *processor) repair(epoch NodeID) *repairState {
	if p.reps == nil {
		p.reps = make(map[NodeID]*repairState)
	}
	r, ok := p.reps[epoch]
	if !ok {
		if n := len(p.repFree); n > 0 {
			r = p.repFree[n-1]
			p.repFree = p.repFree[:n-1]
			r.reset()
		} else {
			r = &repairState{
				roots: make(map[addr]struct{}),
				comps: make(map[addr]*component),
			}
		}
		p.reps[epoch] = r
	}
	return r
}

// reset readies a recycled repairState for a new epoch, keeping its
// map storage and retiring its components to the freelist (their descs
// capacity survives with them).
func (r *repairState) reset() {
	for _, c := range r.comps {
		c.descs = c.descs[:0]
		c.key, c.hasKey = slot{}, false
		r.compFree = append(r.compFree, c)
	}
	clear(r.roots)
	clear(r.comps)
	r.phase, r.outstanding, r.maxRootHeight = 0, 0, 0
	r.annRecvd, r.annExpected, r.haveNotifyDone = 0, 0, false
	r.descRecvd, r.descExpected = 0, 0
}

// batchState returns the coordinator scratch, allocating on first use.
func (p *processor) batchState() *batchScratch {
	if p.batch == nil {
		p.batch = &batchScratch{
			conflicts: make(map[[2]NodeID]struct{}),
			parent:    make(map[NodeID]NodeID),
		}
	}
	return p.batch
}

func (b *batchScratch) find(v NodeID) NodeID {
	r, ok := b.parent[v]
	if !ok {
		b.parent[v] = v
		return v
	}
	if r != v {
		r = b.find(r)
		b.parent[v] = r
	}
	return r
}

func (b *batchScratch) addConflict(a, c NodeID) {
	if a == c {
		return
	}
	if a > c {
		a, c = c, a
	}
	pair := [2]NodeID{a, c}
	if _, dup := b.conflicts[pair]; dup {
		return
	}
	b.conflicts[pair] = struct{}{}
	// Fold the pair into the union-find: members not yet seen start as
	// their own components, so k - merges counts the live groups (the
	// unseen members are singletons either way).
	ra, rc := b.find(a), b.find(c)
	if ra != rc {
		if ra > rc {
			ra, rc = rc, ra
		}
		b.parent[rc] = ra
		b.merges++
		if b.k > 0 && b.merges >= b.k-1 {
			b.decided = true
		}
	}
}

func (r *repairState) addRoot(a addr, height int) {
	r.roots[a] = struct{}{}
	if height > r.maxRootHeight {
		r.maxRootHeight = height
	}
}

func (r *repairState) comp(root addr) *component {
	c, ok := r.comps[root]
	if !ok {
		if n := len(r.compFree); n > 0 {
			c = r.compFree[n-1]
			r.compFree = r.compFree[:n-1]
			c.root = root
		} else {
			c = &component{root: root}
		}
		r.comps[root] = c
	}
	return c
}

func (r *repairState) addFreshLeaf(leaf addr) {
	c := r.comp(leaf)
	c.key, c.hasKey = leaf.slot(), true
	c.descs = append(c.descs, msgDescriptor{
		Comp: leaf, Node: leaf, LeafCount: 1, Height: 0, Rep: leaf.slot(),
	})
}

func (r *repairState) setKey(root addr, key slot) {
	c := r.comp(root)
	c.key, c.hasKey = key, true
}

func (r *repairState) addDescriptor(d msgDescriptor) {
	c := r.comp(d.Comp)
	c.descs = append(c.descs, d)
}

// sendPaced sends a protocol message, holding it in a local outbox
// when the network's bandwidth budget for the edge to this destination
// is already spent this round. The repair leader's bursts — key
// probes, strip visits, and above all the merge plan's instruction
// fan-out — route through here: instead of dumping O(d) messages into
// the network in one round (and letting them pile up as edge backlog),
// the leader trickles at most the edge budget per destination per
// round and wakes itself with a zero-word timer to continue. The
// budget is the *effective* per-edge cap (per-edge overrides
// included), so one slow link is trickled at its own rate instead of
// the global one — the other destinations' sends are not held back,
// and the slow edge collects no avoidable backlog. Per-destination
// FIFO order is preserved, so paced delivery reorders nothing the
// network's own spill-over would not. With unlimited bandwidth on the
// edge (or pacing off) this is exactly Send.
func (p *processor) sendPaced(n transport.Endpoint, to NodeID, payload any, words int) {
	p.sendPacedClass(n, to, payload, words, transport.ClassData)
}

// sendPacedClass is sendPaced with an explicit accounting class (the
// merge-instruction acks are ClassSync and go out paced too, so a
// pacing processor's acks share the per-destination budget with its
// queued instructions instead of colliding with them on the edge).
func (p *processor) sendPacedClass(n transport.Endpoint, to NodeID, payload any, words int, class transport.Class) {
	budget := 0
	if p.spread {
		budget = n.EdgeBudget(p.id, to)
	}
	if budget <= 0 {
		n.SendClass(p.id, to, payload, words, class)
		return
	}
	p.rollOutRound(n)
	if used := p.outUsed[to]; p.outQueued[to] == 0 && (used == 0 || used+words <= budget) {
		p.outUsed[to] = used + words
		n.SendClass(p.id, to, payload, words, class)
		return
	}
	if p.outQueued == nil {
		p.outQueued = make(map[NodeID]int)
	}
	p.outQueued[to]++
	p.outbox = append(p.outbox, outMsg{to: to, payload: payload, words: words, class: class})
	if !p.flushScheduled {
		p.flushScheduled = true
		n.SendTimer(p.id, msgFlushOutbox{}, 1)
	}
}

// onFlushOutbox drains the outbox: oldest first, at most each edge's
// own budget per destination per round (but always at least one
// message per destination, matching the network's own progress rule),
// rescheduling itself while messages remain.
func (p *processor) onFlushOutbox(n transport.Endpoint) {
	p.flushScheduled = false
	p.rollOutRound(n)
	if p.outBlocked == nil {
		p.outBlocked = make(map[NodeID]bool)
	} else {
		clear(p.outBlocked)
	}
	// Compact in place: kept messages only ever move toward the front,
	// so the outbox keeps its storage instead of reallocating per flush.
	keep := p.outbox[:0]
	for _, m := range p.outbox {
		used := p.outUsed[m.to]
		budget := n.EdgeBudget(p.id, m.to)
		if p.outBlocked[m.to] || (budget > 0 && used > 0 && used+m.words > budget) {
			p.outBlocked[m.to] = true // preserve per-destination FIFO
			keep = append(keep, m)
			continue
		}
		p.outUsed[m.to] = used + m.words
		p.outQueued[m.to]--
		n.SendClass(p.id, m.to, m.payload, m.words, m.class)
	}
	// Drop payload references in the now-unused tail so sent messages
	// do not pin their payloads until the next burst overwrites them.
	for i := len(keep); i < len(p.outbox); i++ {
		p.outbox[i] = outMsg{}
	}
	p.outbox = keep
	if len(keep) > 0 {
		p.flushScheduled = true
		n.SendTimer(p.id, msgFlushOutbox{}, 1)
	}
}

// rollOutRound resets the per-destination words-sent accounting when a
// new round begins. The map is cleared, not reallocated: a pacing
// processor rolls it every round it sends.
func (p *processor) rollOutRound(n transport.Endpoint) {
	if p.outRound != n.Round() || p.outUsed == nil {
		p.outRound = n.Round()
		if p.outUsed == nil {
			p.outUsed = make(map[NodeID]int)
		} else {
			clear(p.outUsed)
		}
	}
}

// markTouched registers this processor for the next incremental
// verification pass; handlers call it whenever a record is created,
// deleted, or relinked. Registration goes through the same mutex-
// guarded list mechanism as the physical-edit log, so the parallel
// delivery mode stays race-free.
func (p *processor) markTouched() {
	if p.touched {
		return
	}
	p.touched = true
	p.touchers.add(p)
}

// logPhys appends a pending physical-graph edit for the tree-edge image
// (p.id, peer). Self-images (a processor adjacent to a node it
// simulates itself) collapse in the homomorphism and are not logged.
func (p *processor) logPhys(add bool, peer NodeID) {
	if peer == p.id {
		return
	}
	if len(p.physLog) == 0 {
		p.dirty.add(p)
	}
	p.physLog = append(p.physLog, physEdit{add: add, a: p.id, b: peer})
}

// clearParent empties a record's parent field, logging the lost
// physical edge image if one was set.
func (p *processor) clearLeafParent(l *leafRec) {
	if l.parent.ok() {
		p.logPhys(false, l.parent.Owner)
		l.parent = addr{}
	}
}

func (p *processor) clearHelperParent(h *helperRec) {
	if h.parent.ok() {
		p.logPhys(false, h.parent.Owner)
		h.parent = addr{}
	}
}

// sortedRecordKeys returns a record map's keys ascending. Handlers
// that emit one message per record must walk their records in this
// canonical order: several of those messages often share a destination
// (and so an edge), and under a finite bandwidth the send order
// decides which of them spills into the next round — map iteration
// order would make rounds and congestion stats vary run to run.
func sortedRecordKeys[T any](m map[NodeID]T) []NodeID {
	keys := make([]NodeID, 0, len(m))
	for o := range m {
		keys = append(keys, o)
	}
	if len(keys) > 1 {
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	return keys
}

// onDeath runs at every physical neighbor of the deleted processor v
// — a participant of the repair. Nothing is repaired yet: the
// participant records its BT_v slot and enters the leader-election
// tournament. A leaf of BT_v reports its champion (its own ID)
// immediately; internal nodes wait for their children. The sole
// participant of a trivial BT_v (k = 1) is its own leader and begins
// at once.
func (p *processor) onDeath(n transport.Endpoint, m msgDeath) {
	ps := p.partFor(m.V)
	if ps.haveDeath {
		panic(fmt.Sprintf("dist: processor %d notified twice of deletion %d", p.id, m.V))
	}
	ps.haveDeath = true
	ps.btParent, ps.btLeft, ps.btRight = m.BTParent, m.BTLeft, m.BTRight
	for _, c := range [2]NodeID{m.BTLeft, m.BTRight} {
		if c != noNode {
			ps.waitChamps++
			ps.waitDone++
		}
	}
	if m.Leader != noNode {
		// Pre-appointed leader (coalesced merge launch): no tournament.
		// Repair work begins on receipt; under unlimited bandwidth every
		// participant is notified in the same round, and congestion can
		// only stagger the starts the way it staggers an elected
		// launch's — which the damage walks tolerate.
		ps.leader = m.Leader
		p.beginRepair(n, m.V, m.Leader)
		return
	}
	// Champions that raced ahead of a congested notification were
	// already folded into champ/height; settle the count now.
	ps.waitChamps -= ps.earlyChamps
	if ps.waitChamps > 0 {
		return // champions from below decide when to report
	}
	p.championDecided(n, m.V, ps)
}

// partFor returns the participant state for one epoch, allocating on
// first use: normally at the death notification, but a BT_v child's
// champion can outrun a bandwidth-delayed notification and allocates
// the buffer early.
func (p *processor) partFor(epoch NodeID) *partState {
	if p.parts == nil {
		p.parts = make(map[NodeID]*partState)
	}
	ps := p.parts[epoch]
	if ps == nil {
		if n := len(p.partFree); n > 0 {
			ps = p.partFree[n-1]
			p.partFree = p.partFree[:n-1]
		} else {
			ps = &partState{}
		}
		*ps = partState{
			v: epoch, champ: p.id, leader: noNode,
			btParent: noNode, btLeft: noNode, btRight: noNode,
		}
		p.parts[epoch] = ps
	}
	return ps
}

// onChampion advances the knockout: fold the reported subtree's
// champion (and height) in; once both children have reported, pass the
// winner up — or, at the root, conclude the tournament and announce
// the leader downward.
func (p *processor) onChampion(n transport.Endpoint, m msgChampion) {
	ps := p.partFor(m.Epoch)
	if m.ID < ps.champ {
		ps.champ = m.ID
	}
	if m.Height+1 > ps.height {
		ps.height = m.Height + 1
	}
	if !ps.haveDeath {
		ps.earlyChamps++
		return
	}
	ps.waitChamps--
	if ps.waitChamps > 0 {
		return
	}
	p.championDecided(n, m.Epoch, ps)
}

// championDecided runs when every expected champion (and our own
// notification) is in: report the subtree's champion up BT_v — or, at
// the root, conclude the tournament and announce the leader downward.
// The announcement's Wait counts line every participant up to begin
// repair work in the same round (exactly so under unlimited bandwidth;
// congestion can stagger the starts, which the damage walks tolerate —
// see onMarkDamaged's dying-parent case).
func (p *processor) championDecided(n transport.Endpoint, epoch NodeID, ps *partState) {
	if ps.btParent != noNode {
		n.SendClass(p.id, ps.btParent, msgChampion{Epoch: epoch, ID: ps.champ, Height: ps.height}, wordsChampion, transport.ClassElection)
		return
	}
	if ps.height == 0 {
		// Alone in BT_v: trivially elected, begin immediately.
		ps.leader = p.id
		p.beginRepair(n, epoch, p.id)
		return
	}
	// Root: the tournament is decided. Announce down with Wait = the
	// remaining depth below each child, and hold our own repair work
	// the full tree height so everyone begins together.
	ps.leader = ps.champ
	for _, c := range [2]NodeID{ps.btLeft, ps.btRight} {
		if c != noNode {
			n.SendClass(p.id, c, msgLeader{Epoch: epoch, Leader: ps.leader, Wait: ps.height - 1}, wordsLeader, transport.ClassElection)
		}
	}
	n.SendTimer(p.id, msgBeginRepair{Epoch: epoch, Leader: ps.leader}, ps.height)
}

// onLeader learns the tournament winner, forwards the announcement
// down BT_v, and schedules its own repair work Wait rounds out so that
// every participant processes the death in the same round — the
// synchrony the damage walks rely on (every dangling link is cleared
// before any walk message can arrive).
func (p *processor) onLeader(n transport.Endpoint, m msgLeader) {
	ps := p.mustPart(m.Epoch)
	ps.leader = m.Leader
	for _, c := range [2]NodeID{ps.btLeft, ps.btRight} {
		if c != noNode {
			n.SendClass(p.id, c, msgLeader{Epoch: m.Epoch, Leader: m.Leader, Wait: m.Wait - 1}, wordsLeader, transport.ClassElection)
		}
	}
	if m.Wait == 0 {
		p.beginRepair(n, m.Epoch, m.Leader)
		return
	}
	n.SendTimer(p.id, msgBeginRepair{Epoch: m.Epoch, Leader: m.Leader}, m.Wait)
}

// beginRepair is the participant's death-processing, run in the same
// synchronized round at every participant: detach every record link
// into v's vanished avatars, seed the damage walks (a helper that lost
// a child no longer heads an intact subtree), announce fragment roots,
// and grow the fresh leaf avatar for the half-dead G′ edge (x,v) if
// there is one. Every seeded walk is counted and later acked by its
// terminator, so the participant can prove its local phase complete.
func (p *processor) beginRepair(n transport.Endpoint, v NodeID, leader NodeID) {
	ps := p.mustPart(v)
	p.markTouched()
	for _, o := range sortedRecordKeys(p.leaves) {
		l := p.leaves[o]
		if l.parent.ok() && l.parent.Owner == v {
			p.clearLeafParent(l)
			ps.annSent++
			n.Send(p.id, leader, msgRootAnnounce{Root: leafAddr(p.id, o), Epoch: v, Height: 0}, wordsRootAnnounce)
		}
	}
	for _, o := range sortedRecordKeys(p.helpers) {
		h := p.helpers[o]
		lostParent, lostChild := false, false
		if h.parent.ok() && h.parent.Owner == v {
			p.clearHelperParent(h)
			lostParent = true
		}
		if h.left.ok() && h.left.Owner == v {
			h.left, lostChild = addr{}, true
		}
		if h.right.ok() && h.right.Owner == v {
			h.right, lostChild = addr{}, true
		}
		if lostChild {
			p.markDamaged(h, helperAddr(p.id, o), v)
		}
		switch {
		case lostParent, lostChild && !h.parent.ok():
			// Cut loose (or a damaged seed that already is a root).
			ps.annSent++
			n.Send(p.id, leader, msgRootAnnounce{Root: helperAddr(p.id, o), Epoch: v, Height: h.height}, wordsRootAnnounce)
		case lostChild:
			ps.walksOut++
			n.Send(p.id, h.parent.Owner, msgMarkDamaged{Target: h.parent, Epoch: v, Leader: leader, Origin: p.id}, wordsMarkDamaged)
		}
	}
	if _, isNbr := p.nbrs[v]; isNbr {
		if _, dup := p.leaves[v]; dup {
			panic(fmt.Sprintf("dist: leaf avatar (%d,%d) already exists", p.id, v))
		}
		p.leaves[v] = &leafRec{}
		ps.annSent++
		n.Send(p.id, leader, msgFreshLeaf{Leaf: leafAddr(p.id, v), Epoch: v}, wordsFreshLeaf)
	}
	ps.processed = true
	p.maybeNotifyDone(n, v, ps)
}

// maybeNotifyDone checks whether this participant's BT_v subtree has
// finished the notification phase — own death-processing run, every
// seeded walk acked, every BT_v child subtree done — and if so reports
// the subtree's completion and announcement count upward: subtree-done
// to the BT_v parent, or, at the root, phase-done to the elected
// leader. The participant state is dropped with the report; nothing
// else arrives for it.
func (p *processor) maybeNotifyDone(n transport.Endpoint, epoch NodeID, ps *partState) {
	if !ps.processed || ps.walksOut > 0 || ps.waitDone > 0 {
		return
	}
	delete(p.parts, epoch)
	// Recycle the scratch before the report goes out: everything still
	// needed is in locals (reuse resets the struct, so late reads of a
	// freed-but-unreused ps stay harmless).
	btParent, leader, annSent := ps.btParent, ps.leader, ps.annSent
	p.partFree = append(p.partFree, ps)
	if btParent != noNode {
		n.SendClass(p.id, btParent, msgSubtreeDone{Epoch: epoch, Announced: annSent}, wordsSubtreeDone, transport.ClassSync)
		return
	}
	if leader == p.id {
		// Root and leader at once (k = 1): apply the completion report
		// locally — the phase still starts only once our self-addressed
		// announcements have all arrived.
		rs := p.repair(epoch)
		rs.haveNotifyDone = true
		rs.annExpected = annSent
		p.maybeStartKeys(n, epoch, rs)
		return
	}
	n.SendClass(p.id, leader, msgPhaseDone{Epoch: epoch, Announced: annSent}, wordsPhaseDone, transport.ClassSync)
}

// maybeStartKeys launches the key phase once the notification phase is
// proven terminated: the BT_v completion report is in AND every
// announcement it counted has arrived. Sound under any delivery
// delays: announcements cannot be in flight once the counts match.
func (p *processor) maybeStartKeys(n transport.Endpoint, epoch NodeID, rs *repairState) {
	if rs.phase != phaseNotify || !rs.haveNotifyDone || rs.annRecvd != rs.annExpected {
		return
	}
	p.startKeys(n, epoch, rs)
}

// markDamaged sets the Breakflag for one epoch, panicking if a
// different repair already holds it: concurrent repairs never share a
// record (the batch claim phase serializes any two that would), so a
// cross-epoch collision here is a conflict-detector bug, not a state to
// recover from.
func (p *processor) markDamaged(h *helperRec, self addr, epoch NodeID) {
	if h.damaged && h.depoch != epoch {
		if !p.staleBreakflag(h) {
			panic(fmt.Sprintf("dist: helper %v double-stripped: damaged by concurrent epochs %d and %d",
				self, h.depoch, epoch))
		}
	}
	h.damaged, h.depoch = true, epoch
}

// staleBreakflag decides what a cross-epoch Breakflag collision means.
// Without the audit layer, state is only ever what the protocol wrote,
// so a collision is a conflict-detector bug and the caller panics. With
// the audit on, the self-stabilization model admits transient faults:
// the foreign flag is presumed corrupt, cleared, and counted, and the
// live repair proceeds as if the helper were fresh.
func (p *processor) staleBreakflag(h *helperRec) bool {
	if !p.auditOn {
		return false
	}
	h.damaged, h.depoch = false, 0
	p.aStats.Mismatches++
	p.aStats.Repairs++
	return true
}

// onMarkDamaged continues a damage walk through this processor's helper
// record, stopping at nodes already marked (another walk of the same
// repair passed by) and announcing the fragment root at the top.
// Whichever way the walk terminates, its origin gets one ack — the
// proof of completion the termination detection counts. The root
// announcement is sent before the ack, so when leader and origin
// coincide the announcement's smaller sequence number delivers it
// first.
func (p *processor) onMarkDamaged(n transport.Endpoint, m msgMarkDamaged) {
	h := p.mustHelper(m.Target)
	if h.damaged {
		if h.depoch != m.Epoch && !p.staleBreakflag(h) {
			panic(fmt.Sprintf("dist: helper %v double-stripped: damaged by concurrent epochs %d and %d",
				m.Target, h.depoch, m.Epoch))
		}
	}
	if h.damaged {
		n.SendClass(p.id, m.Origin, msgWalkAck{Epoch: m.Epoch, Announced: 0}, wordsWalkAck, transport.ClassSync)
		return
	}
	h.damaged, h.depoch = true, m.Epoch
	p.markTouched()
	if h.parent.ok() && h.parent.Owner != m.Epoch {
		n.Send(p.id, h.parent.Owner, msgMarkDamaged{Target: h.parent, Epoch: m.Epoch, Leader: m.Leader, Origin: m.Origin}, wordsMarkDamaged)
		return
	}
	// No parent — or a parent still pointing at the epoch's own dead
	// node: under congestion a walk can overtake this participant's
	// delayed begin-repair, which will clear that link and announce the
	// same root (announcements dedupe at the leader). Either way the
	// walk tops out here.
	n.Send(p.id, m.Leader, msgRootAnnounce{Root: m.Target, Epoch: m.Epoch, Height: h.height}, wordsRootAnnounce)
	n.SendClass(p.id, m.Origin, msgWalkAck{Epoch: m.Epoch, Announced: 1}, wordsWalkAck, transport.ClassSync)
}

// sortedRoots returns the announced fragment roots in deterministic
// order. The slice is the repairState's own scratch (recycled with it
// across epochs) and stays valid only until the next call; insertion
// sort keeps the hot repair path clear of sort.Slice's reflection
// allocations — fragment counts are small.
func (r *repairState) sortedRoots() []addr {
	roots := r.rootScratch[:0]
	for a := range r.roots {
		roots = append(roots, a)
	}
	for i := 1; i < len(roots); i++ {
		for j := i; j > 0 && roots[j].less(roots[j-1]); j-- {
			roots[j], roots[j-1] = roots[j-1], roots[j]
		}
	}
	r.rootScratch = roots
	return roots
}

// startKeys (leader): launch one prefer-left key probe per announced
// fragment root of the given repair. The probes are a leader burst and
// go out paced under finite bandwidth. Each probe yields exactly one
// reply (found or none), so counting replies to zero proves the phase
// complete — reply and probe travel the same request/response pair, so
// no separate count is needed; a watchdog bounded by the deepest
// fragment's height guards the wait. With no fragments at all the
// phase is vacuous and chains straight on.
func (p *processor) startKeys(n transport.Endpoint, epoch NodeID, rs *repairState) {
	rs.phase = phaseKeys
	roots := rs.sortedRoots()
	rs.outstanding = len(roots)
	if len(roots) == 0 {
		p.startStrip(n, epoch, rs)
		return
	}
	for _, root := range roots {
		p.sendPaced(n, root.Owner, msgKeyProbe{Comp: root, Target: root, Epoch: epoch, Leader: p.id}, wordsKeyProbe)
	}
	p.armWatchdog(n, epoch, rs, rs.maxRootHeight+3)
}

// keyReplied counts one probe reply; the last one proves the key phase
// complete and chains into the strip.
func (p *processor) keyReplied(n transport.Endpoint, epoch NodeID) {
	rs := p.reps[epoch]
	if rs == nil || rs.phase != phaseKeys {
		panic(fmt.Sprintf("dist: processor %d: key reply for epoch %d outside the key phase", p.id, epoch))
	}
	rs.outstanding--
	if rs.outstanding == 0 {
		p.startStrip(n, epoch, rs)
	}
}

// armWatchdog schedules the height-bounded phase watchdog: delay
// rounds out, carrying the phase it watches so a stale firing (the
// phase advanced, possibly in the very round the timer fired) is
// recognized and ignored.
func (p *processor) armWatchdog(n transport.Endpoint, epoch NodeID, rs *repairState, delay int) {
	n.SendTimer(p.id, msgPhaseWatch{Epoch: epoch, Phase: rs.phase, Delay: delay}, delay)
}

// onPhaseWatch is the watchdog firing: if the watched phase is still
// open the completion proofs are lagging (only possible under a finite
// bandwidth, where traffic legitimately queues), so the watchdog
// re-arms and keeps watching; the simulation's global round bound
// remains the hard failsafe. If the phase has advanced the firing is
// stale and ignored.
func (p *processor) onPhaseWatch(n transport.Endpoint, m msgPhaseWatch) {
	rs := p.reps[m.Epoch] // no allocation: the repair may be long gone
	if rs == nil || rs.phase != m.Phase {
		p.wdStale++
		return
	}
	p.wdRearmed++
	n.SendTimer(p.id, m, m.Delay)
}

// onKeyProbe performs one step of the prefer-left descent (core's
// leftmostLeafSlot): a leaf is the key; a helper forwards to its left
// child if present, else its right, and reports a dead end when both
// children are gone.
func (p *processor) onKeyProbe(n transport.Endpoint, m msgKeyProbe) {
	if m.Target.Kind == kindLeaf {
		p.mustLeaf(m.Target)
		n.Send(p.id, m.Leader, msgKeyFound{Comp: m.Comp, Key: m.Target.slot(), Epoch: m.Epoch}, wordsKeyFound)
		return
	}
	h := p.mustHelper(m.Target)
	next := h.left
	if !next.ok() {
		next = h.right
	}
	if !next.ok() {
		n.Send(p.id, m.Leader, msgKeyNone{Comp: m.Comp, Epoch: m.Epoch}, wordsKeyNone)
		return
	}
	n.Send(p.id, next.Owner, msgKeyProbe{Comp: m.Comp, Target: next, Epoch: m.Epoch, Leader: m.Leader}, wordsKeyProbe)
}

// startStrip (leader): start the distributed strip at every fragment
// root of the given repair, paced like every leader burst. Each
// fragment resolves bottom-up — every visited node acks its visitor
// once its whole subtree has resolved — and the fragment root's
// resolution reaches the leader as one strip-done carrying the
// fragment's descriptor count: the merge starts only when every
// fragment reported done AND exactly that many descriptors arrived
// (descriptors and acks travel different edges, so the count is what
// proves arrival). The watchdog bound is twice the deepest fragment's
// height (cascade down, convergecast back up).
func (p *processor) startStrip(n transport.Endpoint, epoch NodeID, rs *repairState) {
	rs.phase = phaseStrip
	roots := rs.sortedRoots()
	rs.outstanding = len(roots)
	if len(roots) == 0 {
		p.startMerge(n, epoch, rs)
		return
	}
	for _, root := range roots {
		p.sendPaced(n, root.Owner, msgStripVisit{Comp: root, Target: root, Epoch: epoch, Leader: p.id}, wordsStripVisit)
	}
	p.armWatchdog(n, epoch, rs, 2*rs.maxRootHeight+3)
}

// onStripDone books one fragment's strip completion and its descriptor
// count; maybeStartMerge decides whether the phase is proven over.
func (p *processor) onStripDone(n transport.Endpoint, m msgStripDone) {
	rs := p.reps[m.Epoch]
	if rs == nil || rs.phase != phaseStrip {
		panic(fmt.Sprintf("dist: processor %d: strip-done for epoch %d outside the strip phase", p.id, m.Epoch))
	}
	rs.outstanding--
	rs.descExpected += m.Descs
	p.maybeStartMerge(n, m.Epoch, rs)
}

// maybeStartMerge launches the merge once the strip phase is proven
// terminated: every fragment reported done and every counted
// descriptor has arrived.
func (p *processor) maybeStartMerge(n transport.Endpoint, epoch NodeID, rs *repairState) {
	if rs.phase != phaseStrip || rs.outstanding > 0 || rs.descRecvd != rs.descExpected {
		return
	}
	p.startMerge(n, epoch, rs)
}

// stripResolved reports one strip subtree fully resolved, carrying the
// subtree's descriptor count: an ack to the visiting parent node, or —
// at a fragment root — a strip-done to the leader.
func (p *processor) stripResolved(n transport.Endpoint, epoch NodeID, ackTo addr, leader NodeID, descs int) {
	if ackTo.ok() {
		n.SendClass(p.id, ackTo.Owner, msgStripAck{Epoch: epoch, Target: ackTo, Descs: descs}, wordsStripAck, transport.ClassSync)
		return
	}
	n.SendClass(p.id, leader, msgStripDone{Epoch: epoch, Descs: descs}, wordsStripDone, transport.ClassSync)
}

// onStripVisit decides this node's fate in the strip, exactly as core's
// stripFast: an undamaged node whose stored fields say perfect is a
// maximal intact complete subtree (a primary root, reported to the
// leader); anything else is discarded — the helper retires — and the
// visit cascades to its children, with a stripWaiter left behind to
// forward the resolution once every child subtree has acked.
func (p *processor) onStripVisit(n transport.Endpoint, m msgStripVisit) {
	report := func(leafCount, height int, rep slot) {
		n.Send(p.id, m.Leader, msgDescriptor{
			Comp: m.Comp, Depth: m.Depth, Path: m.Path, Epoch: m.Epoch,
			Node: m.Target, LeafCount: leafCount, Height: height, Rep: rep,
		}, wordsDescriptor)
	}
	p.markTouched()
	if m.Target.Kind == kindLeaf {
		l := p.mustLeaf(m.Target)
		p.clearLeafParent(l)
		report(1, 0, m.Target.slot())
		p.stripResolved(n, m.Epoch, m.AckTo, m.Leader, 1)
		return
	}
	h := p.mustHelper(m.Target)
	if h.damaged && h.depoch != m.Epoch && !p.staleBreakflag(h) {
		panic(fmt.Sprintf("dist: helper %v stripped by epoch %d while damaged by epoch %d",
			m.Target, m.Epoch, h.depoch))
	}
	if !h.damaged && h.leafCount == 1<<uint(h.height) {
		p.clearHelperParent(h)
		report(h.leafCount, h.height, h.rep)
		p.stripResolved(n, m.Epoch, m.AckTo, m.Leader, 1)
		return
	}
	// Discarded ("marked red"): the helper retires before any join, per
	// Lemma 3.2 — its slot may be re-chosen for a new helper this very
	// repair, and the strip convergecast guarantees the retirement lands
	// before the merge phase can issue instructions for the slot.
	p.clearHelperParent(h)
	delete(p.helpers, m.Target.Other)
	children := 0
	for _, c := range [2]addr{h.left, h.right} {
		if c.ok() {
			children++
		}
	}
	if children == 0 {
		p.stripResolved(n, m.Epoch, m.AckTo, m.Leader, 0)
		return
	}
	if p.stripWait == nil {
		p.stripWait = make(map[addr]*stripWaiter)
	}
	p.stripWait[m.Target] = &stripWaiter{
		epoch: m.Epoch, waiting: children, ackTo: m.AckTo, leader: m.Leader,
	}
	for dir, c := range [2]addr{h.left, h.right} {
		if !c.ok() {
			continue
		}
		n.Send(p.id, c.Owner, msgStripVisit{
			Comp: m.Comp, Target: c,
			Depth: m.Depth + 1, Path: m.Path<<1 | uint64(dir),
			Epoch:  m.Epoch,
			Leader: m.Leader,
			AckTo:  m.Target,
		}, wordsStripVisit)
	}
}

// onStripAck resolves one child subtree of a retired helper's cascade;
// the last one forwards the resolution — and the accumulated
// descriptor count — upward and drops the waiter.
func (p *processor) onStripAck(n transport.Endpoint, m msgStripAck) {
	w, ok := p.stripWait[m.Target]
	if !ok || w.epoch != m.Epoch {
		panic(fmt.Sprintf("dist: processor %d: strip ack for unknown cascade %v (epoch %d)", p.id, m.Target, m.Epoch))
	}
	w.waiting--
	w.descs += m.Descs
	if w.waiting > 0 {
		return
	}
	delete(p.stripWait, m.Target)
	p.stripResolved(n, m.Epoch, w.ackTo, w.leader, w.descs)
}

// onCreateHelper starts simulating a fresh helper with fully wired
// links from the leader's merge plan, confirming the instruction back
// to its sender — the leader — with the completion proof the merge
// phase counts.
func (p *processor) onCreateHelper(n transport.Endpoint, leader NodeID, m msgCreateHelper) {
	p.markTouched()
	if _, exists := p.helpers[m.Slot.Other]; exists {
		panic(fmt.Sprintf("dist: representative mechanism chose occupied slot %v", m.Slot))
	}
	p.helpers[m.Slot.Other] = &helperRec{
		parent: m.Parent, left: m.Left, right: m.Right,
		height: m.Height, leafCount: m.LeafCount, rep: m.Rep,
	}
	if m.Parent.ok() {
		p.logPhys(true, m.Parent.Owner)
	}
	p.sendPacedClass(n, leader, msgMergeAck{Epoch: m.Epoch}, wordsMergeAck, transport.ClassSync)
}

// onSetParent re-parents one of this processor's existing nodes,
// acking the instruction like onCreateHelper.
func (p *processor) onSetParent(n transport.Endpoint, leader NodeID, m msgSetParent) {
	p.markTouched()
	if m.Target.Kind == kindLeaf {
		l := p.mustLeaf(m.Target)
		p.clearLeafParent(l)
		l.parent = m.Parent
	} else {
		h := p.mustHelper(m.Target)
		p.clearHelperParent(h)
		h.parent = m.Parent
	}
	if m.Parent.ok() {
		p.logPhys(true, m.Parent.Owner)
	}
	p.sendPacedClass(n, leader, msgMergeAck{Epoch: m.Epoch}, wordsMergeAck, transport.ClassSync)
}

// onMergeAck counts one applied merge instruction; the last ack proves
// the repair complete. Completion retires the leader scratch and
// registers the repair on the engine's done list — the in-band signal
// that drives RepairDone events and leader-to-leader handoff of
// serialized regions.
func (p *processor) onMergeAck(n transport.Endpoint, m msgMergeAck) {
	rs := p.reps[m.Epoch]
	if rs == nil || rs.phase != phaseMerge {
		panic(fmt.Sprintf("dist: processor %d: merge ack for epoch %d outside the merge phase", p.id, m.Epoch))
	}
	rs.outstanding--
	if rs.outstanding == 0 {
		p.finishRepair(m.Epoch)
	}
}

// finishRepair retires one repair the leader has proven complete,
// recycling its scratch (reset happens at reuse, so callers that just
// passed the scratch in may still read it after returning here).
func (p *processor) finishRepair(epoch NodeID) {
	if r, ok := p.reps[epoch]; ok {
		delete(p.reps, epoch)
		p.repFree = append(p.repFree, r)
	}
	p.done.add(epoch, p.id)
}

// claim records that epoch e's repair will touch record a, reporting a
// conflict to the batch coordinator when another epoch got there first.
// It returns false when the claim walk should stop here (the record was
// already claimed, by anyone).
func (p *processor) claim(n transport.Endpoint, a addr, e, coord NodeID) bool {
	if p.claims == nil {
		p.claims = make(map[addr]NodeID)
		p.claimers.add(p)
	}
	if prev, ok := p.claims[a]; ok {
		if prev != e {
			n.Send(p.id, coord, msgConflict{A: prev, B: e}, wordsConflict)
		}
		return false
	}
	p.claims[a] = e
	return true
}

// claimElectState returns the claim-election scratch, allocating on
// first use (a notification or an early champion, whichever arrives
// first under congestion).
func (p *processor) claimElectState() *claimElect {
	if p.claimEl == nil {
		p.claimEl = &claimElect{
			champ: p.id, coord: noNode,
			btParent: noNode, btLeft: noNode, btRight: noNode,
		}
	}
	return p.claimEl
}

// onClaimElect hands this processor its slot in the claim coordinator
// election tree and enters it into the knockout tournament — the
// in-band replacement for the driver announcing the smallest notified
// ID. The tournament is the repair leader election's, run over the
// union of every member's physical neighborhood.
func (p *processor) onClaimElect(n transport.Endpoint, m msgClaimElect) {
	ce := p.claimElectState()
	if ce.haveElect {
		panic(fmt.Sprintf("dist: processor %d claim-elected twice", p.id))
	}
	ce.haveElect = true
	ce.btParent, ce.btLeft, ce.btRight = m.BTParent, m.BTLeft, m.BTRight
	ce.k = m.K
	for _, c := range [2]NodeID{m.BTLeft, m.BTRight} {
		if c != noNode {
			ce.waitChamps++
		}
	}
	ce.waitChamps -= ce.earlyChamps
	if ce.waitChamps > 0 {
		return
	}
	p.claimChampDecided(n, ce)
}

// onClaimChamp folds one subtree's champion into the running minimum,
// passing the winner up — or announcing it down — once every expected
// report is in.
func (p *processor) onClaimChamp(n transport.Endpoint, m msgClaimChamp) {
	ce := p.claimElectState()
	if m.ID < ce.champ {
		ce.champ = m.ID
	}
	if m.Height+1 > ce.height {
		ce.height = m.Height + 1
	}
	if !ce.haveElect {
		ce.earlyChamps++
		return
	}
	ce.waitChamps--
	if ce.waitChamps > 0 {
		return
	}
	p.claimChampDecided(n, ce)
}

// claimChampDecided reports this subtree's champion up the election
// tree — or, at the root, concludes the tournament and announces the
// coordinator downward. The root (and the trivial one-node tree) then
// learns the winner like everyone else and drains its buffer.
func (p *processor) claimChampDecided(n transport.Endpoint, ce *claimElect) {
	if ce.btParent != noNode {
		n.SendClass(p.id, ce.btParent, msgClaimChamp{ID: ce.champ, Height: ce.height}, wordsClaimChamp, transport.ClassElection)
		return
	}
	p.claimCoordKnown(n, ce, ce.champ)
	for _, c := range [2]NodeID{ce.btLeft, ce.btRight} {
		if c != noNode {
			n.SendClass(p.id, c, msgClaimCoord{Coord: ce.coord}, wordsClaimCoord, transport.ClassElection)
		}
	}
}

// onClaimCoord learns the elected coordinator, forwards the
// announcement down the tree, and drains the buffered claim
// notifications.
func (p *processor) onClaimCoord(n transport.Endpoint, m msgClaimCoord) {
	ce := p.claimElectState()
	p.claimCoordKnown(n, ce, m.Coord)
	for _, c := range [2]NodeID{ce.btLeft, ce.btRight} {
		if c != noNode {
			n.SendClass(p.id, c, msgClaimCoord{Coord: m.Coord}, wordsClaimCoord, transport.ClassElection)
		}
	}
}

// claimCoordKnown records the winner — seeding the coordinator's own
// union-find with the batch size — and processes every buffered claim
// notification.
func (p *processor) claimCoordKnown(n transport.Endpoint, ce *claimElect, coord NodeID) {
	ce.coord = coord
	if coord == p.id {
		// Conflict reports can outrun the announcement on its way down
		// to the winner, so settle the decision against the pairs
		// already folded in.
		b := p.batchState()
		b.k = ce.k
		if b.merges >= b.k-1 {
			b.decided = true
		}
	}
	pend := ce.pend
	ce.pend = nil
	for _, v := range pend {
		p.processClaimDeath(n, v, coord)
	}
}

// onClaimDeath buffers the claim notification until the elected
// coordinator is known, then mirrors onDeath read-only.
func (p *processor) onClaimDeath(n transport.Endpoint, m msgClaimDeath) {
	ce := p.claimElectState()
	if ce.coord == noNode {
		ce.pend = append(ce.pend, m.V)
		return
	}
	p.processClaimDeath(n, m.V, ce.coord)
}

// processClaimDeath is the read-only mirror of onDeath: claim every
// record the deletion of V would cut loose or damage, and launch claim
// walks along the paths the damage walks would ascend. Nothing
// mutates; the only outputs are claim marks and conflict reports. A
// dying processor — a batch member notified of another member's
// deletion — reports the member-member link as a direct conflict
// instead, which is how adjacency-derived conflicts reach the
// coordinator in-band.
func (p *processor) processClaimDeath(n transport.Endpoint, v, coord NodeID) {
	if p.dying {
		n.Send(p.id, coord, msgConflict{A: p.id, B: v}, wordsConflict)
		return
	}
	for _, o := range sortedRecordKeys(p.leaves) {
		l := p.leaves[o]
		if l.parent.ok() && l.parent.Owner == v {
			p.claim(n, leafAddr(p.id, o), v, coord)
		}
	}
	for _, o := range sortedRecordKeys(p.helpers) {
		h := p.helpers[o]
		lostParent := h.parent.ok() && h.parent.Owner == v
		lostChild := (h.left.ok() && h.left.Owner == v) || (h.right.ok() && h.right.Owner == v)
		if !lostParent && !lostChild {
			continue
		}
		self := helperAddr(p.id, o)
		cont := p.claim(n, self, v, coord)
		// The damage walk ascends only from nodes that lost a child and
		// still have a parent; mirror exactly that.
		if cont && lostChild && !lostParent && h.parent.ok() {
			n.Send(p.id, h.parent.Owner, msgClaimWalk{Target: h.parent, Epoch: v, Coord: coord}, wordsClaimWalk)
		}
	}
}

// onClaimWalk ascends one parent link in claim mode. Walking into a
// dying processor (another batch member awaiting its own wave) exposes
// a dependence between the two repairs, exactly as the execution-time
// walk would have found its avatar missing.
func (p *processor) onClaimWalk(n transport.Endpoint, m msgClaimWalk) {
	if p.dying {
		n.Send(p.id, m.Coord, msgConflict{A: p.id, B: m.Epoch}, wordsConflict)
		return
	}
	h := p.mustHelper(m.Target)
	if !p.claim(n, m.Target, m.Epoch, m.Coord) {
		return
	}
	if h.parent.ok() {
		n.Send(p.id, h.parent.Owner, msgClaimWalk{Target: h.parent, Epoch: m.Epoch, Coord: m.Coord}, wordsClaimWalk)
	}
}

func (p *processor) mustLeaf(a addr) *leafRec {
	l, ok := p.leaves[a.Other]
	if !ok || a.Owner != p.id || a.Kind != kindLeaf {
		panic(fmt.Sprintf("dist: processor %d: no leaf record for %v", p.id, a))
	}
	return l
}

func (p *processor) mustHelper(a addr) *helperRec {
	h, ok := p.helpers[a.Other]
	if !ok || a.Owner != p.id || a.Kind != kindHelper {
		panic(fmt.Sprintf("dist: processor %d: no helper record for %v", p.id, a))
	}
	return h
}
