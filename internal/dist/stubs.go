package dist

import "sort"

// Incremental degree indexes, maintained at the same mutation choke
// points as the connectivity certificate (physAdd/physDel, insertNow,
// removeProcessor):
//
//   - stubIndex: a Fenwick tree over the live processors in ascending
//     ID order, weighted Degree(v)+1 in the physical network — the
//     preferential-attachment "stub list" the adversary used to
//     materialize as an O(n+m) slice per insert. StubCount/StubAt
//     reproduce that slice's indexing exactly (same node at the same
//     stub index), so a sampler drawing rng.Intn(StubCount()) picks
//     the identical neighbor the materialized list would have — the
//     fixed-seed distribution tests assert pointwise equality.
//
//   - degTracker: the maximum physical/G′ degree ratio over live
//     processors, the quantity metrics.Degrees sweeps O(n) for at
//     every soak checkpoint. A lazy max-heap with per-node stamps:
//     each degree change pushes a fresh entry; the query pops stale
//     tops. Verify cross-checks it against the O(n) rebuild.
//
// Both indexes see handler-side edits when the physical edit logs
// drain, so the public accessors drain first (like Physical()).

// stubIndex maintains the preferential-attachment stub multiset.
// Positions are kept in ascending ID order — normally free, since IDs
// are never reused and callers allocate them monotonically, so
// insertion order IS ascending order; an out-of-order insertion (legal
// through Submit) splices into place and rebuilds the tree, an O(n)
// event that never happens on the monotonic allocators. Dead
// processors keep their position with weight zero, contributing
// nothing to the multiset, exactly like their absence from the
// materialized stub list.
type stubIndex struct {
	tree   []int // Fenwick tree over positions (1-based internally)
	weight []int // current weight per position (0 = dead)
	pos    map[NodeID]int
	seq    []NodeID
	total  int
}

func newStubIndex() *stubIndex {
	return &stubIndex{pos: make(map[NodeID]int)}
}

// addNode registers a new processor with weight 1 (degree 0 + 1).
func (si *stubIndex) addNode(v NodeID) {
	if _, ok := si.pos[v]; ok {
		return
	}
	if n := len(si.seq); n > 0 && v < si.seq[n-1] {
		si.insertSorted(v)
		return
	}
	i := len(si.seq)
	si.seq = append(si.seq, v)
	si.weight = append(si.weight, 0)
	// A Fenwick node appended at 1-based index j covers positions
	// (j - lowbit(j), j]; seed it with the already-present weights of
	// that range so prefix sums stay correct as the tree grows.
	j := i + 1
	si.tree = append(si.tree, si.prefix(i)-si.prefix(j-j&-j))
	si.pos[v] = i
	si.adjust(v, 1)
}

// prefix returns the total weight of positions [0, i).
func (si *stubIndex) prefix(i int) int {
	sum := 0
	for j := i; j > 0; j -= j & -j {
		sum += si.tree[j-1]
	}
	return sum
}

// insertSorted splices an out-of-order ID into its ascending position
// and rebuilds the Fenwick tree.
func (si *stubIndex) insertSorted(v NodeID) {
	i := sort.Search(len(si.seq), func(j int) bool { return si.seq[j] > v })
	si.seq = append(si.seq, 0)
	copy(si.seq[i+1:], si.seq[i:])
	si.seq[i] = v
	si.weight = append(si.weight, 0)
	copy(si.weight[i+1:], si.weight[i:])
	si.weight[i] = 1
	si.pos = make(map[NodeID]int, len(si.seq))
	si.tree = make([]int, len(si.seq))
	si.total = 0
	for j, u := range si.seq {
		if w := si.weight[j]; w != 0 { // weight 0 = dead: stays out of pos
			si.pos[u] = j
			si.update(j, w)
		}
	}
}

// removeNode zeroes a dead processor's weight; the position stays (the
// Fenwick tree never shrinks mid-run, matching sweepSeq's behavior).
func (si *stubIndex) removeNode(v NodeID) {
	i, ok := si.pos[v]
	if !ok {
		return
	}
	if w := si.weight[i]; w != 0 {
		si.update(i, -w)
		si.weight[i] = 0
	}
	delete(si.pos, v)
}

// adjust shifts v's weight by delta (±1 per incident physical edge
// gained or lost).
func (si *stubIndex) adjust(v NodeID, delta int) {
	i, ok := si.pos[v]
	if !ok {
		return
	}
	si.weight[i] += delta
	si.update(i, delta)
}

func (si *stubIndex) update(i, delta int) {
	si.total += delta
	for j := i + 1; j <= len(si.tree); j += j & -j {
		si.tree[j-1] += delta
	}
}

// at returns the node owning stub index k (0 ≤ k < total): the
// processor whose weight interval, in position order, contains k.
func (si *stubIndex) at(k int) NodeID {
	n := len(si.tree)
	// Largest power of two ≤ n.
	step := 1
	for step<<1 <= n {
		step <<= 1
	}
	idx := 0
	for ; step > 0; step >>= 1 {
		if idx+step <= n && si.tree[idx+step-1] <= k {
			idx += step
			k -= si.tree[idx-1]
		}
	}
	return si.seq[idx]
}

// StubCount returns the size of the preferential-attachment stub
// multiset: Σ over live processors of (physical degree + 1).
func (s *Simulation) StubCount() int {
	s.drainPhys()
	return s.stubs.total
}

// StubAt returns the owner of stub index i, indexing the multiset
// exactly as the materialized ascending stub list would: live
// processors ascending, each repeated degree+1 times.
func (s *Simulation) StubAt(i int) NodeID {
	s.drainPhys()
	return s.stubs.at(i)
}

// degEntry is one lazily-invalidated candidate for the maximum
// physical/G′ degree ratio.
type degEntry struct {
	ratio float64
	v     NodeID
	stamp uint64
}

// degTracker maintains the maximum degree-amplification ratio with a
// lazy max-heap: every degree change pushes the node's fresh ratio
// with a bumped stamp; Max pops entries whose stamp is stale or whose
// node died. Amortized O(log n) per mutation, O(1) space per pending
// update.
type degTracker struct {
	heap   []degEntry
	stamps map[NodeID]uint64
}

func newDegTracker() *degTracker {
	return &degTracker{stamps: make(map[NodeID]uint64)}
}

func (d *degTracker) push(e degEntry) {
	d.heap = append(d.heap, e)
	i := len(d.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if d.heap[p].ratio >= d.heap[i].ratio {
			break
		}
		d.heap[p], d.heap[i] = d.heap[i], d.heap[p]
		i = p
	}
}

func (d *degTracker) pop() {
	n := len(d.heap) - 1
	d.heap[0] = d.heap[n]
	d.heap = d.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && d.heap[l].ratio > d.heap[big].ratio {
			big = l
		}
		if r < n && d.heap[r].ratio > d.heap[big].ratio {
			big = r
		}
		if big == i {
			return
		}
		d.heap[i], d.heap[big] = d.heap[big], d.heap[i]
		i = big
	}
}

// update records v's current ratio (da/dp; 0 when dp = 0, matching
// metrics.Degrees, which skips zero-G′-degree nodes from Max).
func (d *degTracker) update(v NodeID, da, dp int) {
	st := d.stamps[v] + 1
	d.stamps[v] = st
	if dp <= 0 {
		return // never a Max candidate; the stamp bump retires old entries
	}
	d.push(degEntry{ratio: float64(da) / float64(dp), v: v, stamp: st})
}

// remove retires a dead processor's entries.
func (d *degTracker) remove(v NodeID) {
	delete(d.stamps, v)
}

// max returns the current maximum ratio and the node attaining it
// (0, noNode on an empty network). alive filters dead nodes' stale
// entries.
func (d *degTracker) max(stampOK func(v NodeID, stamp uint64) bool) (float64, NodeID) {
	for len(d.heap) > 0 {
		top := d.heap[0]
		if stampOK(top.v, top.stamp) {
			return top.ratio, top.v
		}
		d.pop()
	}
	return 0, noNode
}

// degChanged refreshes v's entry in the degree tracker from the
// maintained graphs. Called wherever v's physical or G′ degree moves;
// dead or unknown nodes are ignored (their entries are lazily retired).
func (s *Simulation) degChanged(v NodeID) {
	if _, live := s.alive[v]; !live {
		return
	}
	s.degs.update(v, s.phys.Degree(v), s.gprime.Degree(v))
}

// MaxDegreeRatio returns the maximum physical/G′ degree ratio over
// live processors and the node attaining it — the metrics.Degrees Max
// the soak checkpoints used to recompute with an O(n) sweep (plus two
// O(n) graph clones). Maintained incrementally; cost is amortized
// O(stale entries) per call.
func (s *Simulation) MaxDegreeRatio() (float64, NodeID) {
	s.drainPhys()
	return s.degs.max(func(v NodeID, stamp uint64) bool {
		if _, live := s.alive[v]; !live {
			return false
		}
		return s.degs.stamps[v] == stamp
	})
}
