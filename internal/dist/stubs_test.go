package dist

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// materializedStubs builds the legacy adversary stub list from a
// snapshot: live nodes ascending, each repeated degree+1 times.
func materializedStubs(s *Simulation) []NodeID {
	net := s.Physical()
	var stubs []NodeID
	for _, u := range s.LiveNodes() {
		for i := 0; i <= net.Degree(u); i++ {
			stubs = append(stubs, u)
		}
	}
	return stubs
}

func checkStubIndex(t *testing.T, s *Simulation, when string) {
	t.Helper()
	want := materializedStubs(s)
	if got := s.StubCount(); got != len(want) {
		t.Fatalf("%s: StubCount = %d, materialized list has %d stubs", when, got, len(want))
	}
	for i, u := range want {
		if got := s.StubAt(i); got != u {
			t.Fatalf("%s: StubAt(%d) = %d, materialized list has %d", when, i, got, u)
		}
	}
}

// TestStubIndexMatchesMaterialized churns a simulation through blocking
// inserts and deletes and asserts, after every operation, that the
// incremental Fenwick stub index reproduces the materialized
// preferential-attachment stub list pointwise — the property that makes
// the adversary's fast path consume the identical rng stream.
func TestStubIndexMatchesMaterialized(t *testing.T) {
	g0 := graph.PreferentialAttachment(32, 2, rand.New(rand.NewSource(7)))
	s := NewSimulation(g0)
	checkStubIndex(t, s, "initial")

	rng := rand.New(rand.NewSource(11))
	nextID := NodeID(1000)
	for step := 0; step < 120; step++ {
		live := s.LiveNodes()
		if len(live) < 4 || rng.Intn(2) == 0 {
			k := 1 + rng.Intn(3)
			if k > len(live) {
				k = len(live)
			}
			nbrs := make([]NodeID, 0, k)
			for _, idx := range rng.Perm(len(live))[:k] {
				nbrs = append(nbrs, live[idx])
			}
			if err := s.Insert(nextID, nbrs); err != nil {
				t.Fatalf("insert %d: %v", nextID, err)
			}
			nextID++
		} else {
			v := live[rng.Intn(len(live))]
			if err := s.Delete(v); err != nil {
				t.Fatalf("delete %d: %v", v, err)
			}
		}
		checkStubIndex(t, s, "after churn step")
		if step%20 == 19 {
			if err := s.Verify(); err != nil {
				t.Fatalf("verify: %v", err) // includes the degree-tracker cross-check
			}
		}
	}
}

// TestStubIndexOutOfOrderInsert exercises the sorted-splice path: an
// insertion with an ID below the current maximum must land at its
// ascending position, exactly where the materialized list puts it.
func TestStubIndexOutOfOrderInsert(t *testing.T) {
	g0 := graph.Path(4) // nodes 0..3
	s := NewSimulation(g0)
	if err := s.Insert(100, []NodeID{0, 2}); err != nil {
		t.Fatalf("insert 100: %v", err)
	}
	if err := s.Insert(50, []NodeID{100, 3}); err != nil {
		t.Fatalf("insert 50: %v", err)
	}
	checkStubIndex(t, s, "after out-of-order insert")
	if err := s.Delete(2); err != nil {
		t.Fatalf("delete 2: %v", err)
	}
	checkStubIndex(t, s, "after delete")
	if err := s.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestMaxDegreeRatioIncremental pins the incremental tracker against
// the O(n) rebuild across churn that includes repairs (tree-edge
// images moving degrees around), independent of the Verify cross-check.
func TestMaxDegreeRatioIncremental(t *testing.T) {
	g0 := graph.PreferentialAttachment(24, 2, rand.New(rand.NewSource(3)))
	s := NewSimulation(g0)
	rng := rand.New(rand.NewSource(5))
	nextID := NodeID(1000)
	for step := 0; step < 60; step++ {
		live := s.LiveNodes()
		if len(live) < 4 || rng.Intn(3) == 0 {
			nbrs := []NodeID{live[rng.Intn(len(live))]}
			if err := s.Insert(nextID, nbrs); err != nil {
				t.Fatalf("insert: %v", err)
			}
			nextID++
		} else {
			if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
				t.Fatalf("delete: %v", err)
			}
		}
		want := 0.0
		phys := s.Physical()
		gp := s.GPrime()
		for _, v := range s.LiveNodes() {
			if dp := gp.Degree(v); dp > 0 {
				if r := float64(phys.Degree(v)) / float64(dp); r > want {
					want = r
				}
			}
		}
		if got, _ := s.MaxDegreeRatio(); got != want {
			t.Fatalf("step %d: MaxDegreeRatio = %v, rebuild = %v", step, got, want)
		}
	}
}
