package dist

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/simnet"
)

// Tests for the in-band synchronization machinery: the leader-election
// tournament over BT_v, the termination-detection convergecasts, and
// the height-bounded phase watchdogs — including the edge cases the
// old barrier synchronizer never had (a timer firing exactly when its
// phase completes, a repair finishing while another's election is
// still in flight, batch epochs finishing out of order).

// TestElectionCostStar pins the tournament's exact shape on stars: a
// hub deletion notifies k = n-1 processors, whose knockout costs
// 2(k-1) messages (one champion and one announcement per BT_v edge)
// in 2·floor(log2 k) rounds; the phase convergecast costs k-1
// subtree-dones plus one phase-done, and the merge plan's 2k-1
// instructions (k-1 fresh helpers, k adoptions) are each acked — the
// in-band completion proof — for 3k-1 sync messages total.
func TestElectionCostStar(t *testing.T) {
	for _, n := range []int{4, 8, 16, 33, 64} {
		s := NewSimulation(graph.Star(n))
		if err := s.Delete(0); err != nil {
			t.Fatal(err)
		}
		rs := s.LastRecovery()
		k := n - 1
		if want := 2 * (k - 1); rs.ElectionMessages != want {
			t.Errorf("n=%d: %d election messages, want %d", n, rs.ElectionMessages, want)
		}
		if want := 2 * (bits.Len(uint(k)) - 1); rs.ElectionRounds != want {
			t.Errorf("n=%d: %d election rounds, want %d = 2·floor(log2 %d)", n, rs.ElectionRounds, want, k)
		}
		if want := 3*k - 1; rs.SyncMessages != want {
			t.Errorf("n=%d: %d sync messages, want %d (star has no damage walks or strip cascades: k-1 dones + 1 phase-done + 2k-1 merge acks)", n, rs.SyncMessages, want)
		}
		if rs.SyncRounds == 0 {
			t.Errorf("n=%d: zero sync rounds", n)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestTrivialElection: a repair with a single notified processor has
// no tournament at all — the sole participant is its own leader.
func TestTrivialElection(t *testing.T) {
	s := NewSimulation(graph.Path(2))
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	rs := s.LastRecovery()
	if rs.ElectionMessages != 0 || rs.ElectionRounds != 0 {
		t.Fatalf("k=1 repair ran an election: %+v", rs)
	}
	if rs.Messages == 0 {
		t.Fatalf("repair cost nothing: %+v", rs)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncCountersNonzeroUnderChurn: the acceptance-criteria check —
// repairs with real damage walks and strip cascades must report
// nonzero election AND sync rounds, and the coordination messages must
// be included in the message total.
func TestSyncCountersNonzeroUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSimulation(graph.PreferentialAttachment(64, 3, rng))
	sawElection, sawSync := false, false
	for i := 0; i < 24; i++ {
		live := s.LiveNodes()
		if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
			t.Fatal(err)
		}
		rs := s.LastRecovery()
		if rs.ElectionRounds > 0 {
			sawElection = true
		}
		if rs.SyncRounds > 0 {
			sawSync = true
		}
		if rs.ElectionMessages+rs.SyncMessages >= rs.Messages && rs.Messages > 0 {
			t.Fatalf("repair %d: coordination (%d+%d) swallowed the whole message total %d",
				i, rs.ElectionMessages, rs.SyncMessages, rs.Messages)
		}
	}
	if !sawElection || !sawSync {
		t.Fatalf("campaign reported election=%v sync=%v rounds; both must be exposed", sawElection, sawSync)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestWatchdogStaleAtExactBound drives the watchdog edge case at the
// handler level: the phase completes in the very round the
// height-bounded timer fires. The firing must be recognized as stale —
// no re-arm, no double-advance (a double-advance would re-launch the
// phase and panic on the surplus replies).
func TestWatchdogStaleAtExactBound(t *testing.T) {
	net := simnet.New()
	p := newProcessor(1)
	p.done = &doneList{} // the engine's completion list, unwatched here
	net.AddNode(1, p.handle)
	const epoch = NodeID(7)
	rs := p.repair(epoch)
	rs.phase = phaseKeys
	rs.outstanding = 1
	p.armWatchdog(net, epoch, rs, 3)
	// The last probe reply arrives while the watchdog is in flight; the
	// phase chains onward (no fragments: straight through strip to the
	// merge, which retires the scratch). When the timer then fires —
	// the exactly-at-the-bound coincidence — it must see the advance.
	p.keyReplied(net, epoch)
	if rs.phase != phaseMerge {
		t.Fatalf("phase = %d after last reply, want merge", rs.phase)
	}
	for i := 0; i < 8 && net.Pending() > 0; i++ {
		net.Step()
	}
	if p.wdStale != 1 {
		t.Fatalf("stale watchdog firings = %d, want 1", p.wdStale)
	}
	if p.wdRearmed != 0 {
		t.Fatalf("watchdog re-armed %d times for a completed phase", p.wdRearmed)
	}
	if len(p.reps) != 0 {
		t.Fatalf("leader scratch leaked: %v", p.reps)
	}
	if net.Pending() != 0 {
		t.Fatalf("network not quiescent: %d pending", net.Pending())
	}
}

// TestWatchdogRearmsWhileOpen: a watchdog firing while its phase still
// waits for completion proofs must re-arm and keep watching, never
// advance the phase itself.
func TestWatchdogRearmsWhileOpen(t *testing.T) {
	net := simnet.New()
	p := newProcessor(1)
	net.AddNode(1, p.handle)
	const epoch = NodeID(7)
	rs := p.repair(epoch)
	rs.phase = phaseStrip
	rs.outstanding = 2 // proofs never arrive in this test
	p.armWatchdog(net, epoch, rs, 2)
	for i := 0; i < 7; i++ {
		net.Step()
	}
	if p.wdRearmed < 2 {
		t.Fatalf("watchdog re-armed %d times over 7 rounds at delay 2, want >= 2", p.wdRearmed)
	}
	if rs.phase != phaseStrip {
		t.Fatalf("watchdog advanced the phase to %d", rs.phase)
	}
	delete(p.reps, epoch) // stop the re-arm loop; the stale fire drains
	for i := 0; i < 4 && net.Pending() > 0; i++ {
		net.Step()
	}
	if net.Pending() != 0 {
		t.Fatal("stale watchdog did not drain")
	}
}

// TestWatchdogRearmUnderCongestion: with every link clamped to one
// word per round, completion proofs genuinely lag behind the
// height-bounded fire times, so a real campaign must exercise the
// re-arm path — and still heal to the reference graph.
func TestWatchdogRearmUnderCongestion(t *testing.T) {
	g0 := graph.PreferentialAttachment(48, 3, rand.New(rand.NewSource(11)))
	s := NewSimulation(g0)
	e := core.NewEngine(g0)
	for _, v := range s.LiveNodes() {
		s.SetNodeBandwidth(v, 1)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		live := s.LiveNodes()
		v := live[rng.Intn(len(live))]
		if err := s.Delete(v); err != nil {
			t.Fatal(err)
		}
		if err := e.Delete(v); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Physical().Equal(e.Physical()) {
		t.Fatal("healed graph diverges from core under full congestion")
	}
	rearmed, stale := 0, 0
	for _, p := range s.procs {
		rearmed += p.wdRearmed
		stale += p.wdStale
	}
	if rearmed == 0 {
		t.Error("no watchdog ever re-armed under node-cap-1 congestion: the bound never bit")
	}
	if stale == 0 {
		t.Error("no watchdog ever fired stale: phases never completed before the bound")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// lopsidedStars joins one tiny star and one large star far apart, so a
// batch deleting both hubs repairs two independent regions whose
// repairs run at very different speeds.
func lopsidedStars(small, big int) (*graph.Graph, []NodeID) {
	g := graph.New()
	id := NodeID(0)
	star := func(d int) (hub, tip NodeID) {
		hub = id
		id++
		for j := 0; j < d; j++ {
			ray := id
			id++
			g.AddEdge(hub, ray)
			if j == 0 {
				tip = ray
			}
		}
		return hub, tip
	}
	h1, t1 := star(small)
	h2, t2 := star(big)
	// A three-hop bridge keeps the regions vertex-disjoint.
	a, b := id, id+1
	id += 2
	g.AddEdge(t1, a)
	g.AddEdge(a, b)
	g.AddEdge(b, t2)
	return g, []NodeID{h1, h2}
}

// TestRepairCompletesDuringElection: in one wave, a trivial repair
// (two notified processors, a one-round election) runs through all
// five phases and finishes while the big repair's tournament is still
// being played. Epoch tagging must keep the interleaving clean and the
// healed graph equal to the sequential reference.
func TestRepairCompletesDuringElection(t *testing.T) {
	g0, hubs := lopsidedStars(2, 48)
	s := NewSimulation(g0)
	s.SetParallel(true)
	e := core.NewEngine(g0)
	if err := s.DeleteBatch(hubs); err != nil {
		t.Fatal(err)
	}
	if err := e.DeleteBatch(hubs); err != nil {
		t.Fatal(err)
	}
	bs := s.LastBatch()
	if bs.Groups != 2 || bs.Waves != 1 {
		t.Fatalf("lopsided hubs: %d groups / %d waves, want 2 / 1", bs.Groups, bs.Waves)
	}
	// The big hub's election alone outlasts the whole small repair:
	// the small region's five phases ran inside the big election's
	// window, which the shared round count can only show if both
	// overlapped in one quiescence run.
	if bs.ElectionRounds == 0 {
		t.Fatal("no election rounds recorded")
	}
	if !s.Physical().Equal(e.Physical()) {
		t.Fatal("healed graphs diverge")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchEpochsFinishOutOfOrder: three independent regions of very
// different sizes in one wave — the smallest epochs finish (merge
// instructions applied, scratch deleted) while the largest is still
// stripping. The wave's cost must track the largest chain, not the
// sum, and the result must match the reference.
func TestBatchEpochsFinishOutOfOrder(t *testing.T) {
	g := graph.New()
	id := NodeID(0)
	var hubs []NodeID
	var tips []NodeID
	for _, d := range []int{2, 8, 40} {
		hub := id
		id++
		hubs = append(hubs, hub)
		var tip NodeID
		for j := 0; j < d; j++ {
			ray := id
			id++
			g.AddEdge(hub, ray)
			if j == 0 {
				tip = ray
			}
		}
		a, b := id, id+1
		id += 2
		g.AddEdge(tip, a)
		g.AddEdge(a, b)
		tips = append(tips, b)
	}
	for i := range tips {
		g.AddEdge(tips[i], tips[(i+1)%len(tips)])
	}

	single := func(d int) int {
		gg, hh := lopsidedStars(2, d)
		ss := NewSimulation(gg)
		ss.SetParallel(true)
		if err := ss.Delete(hh[1]); err != nil {
			t.Fatal(err)
		}
		return ss.LastRecovery().Rounds
	}(40)

	s := NewSimulation(g)
	s.SetParallel(true)
	e := core.NewEngine(g)
	if err := s.DeleteBatch(hubs); err != nil {
		t.Fatal(err)
	}
	if err := e.DeleteBatch(hubs); err != nil {
		t.Fatal(err)
	}
	bs := s.LastBatch()
	if bs.Groups != 3 || bs.Waves != 1 {
		t.Fatalf("three lopsided hubs: %d groups / %d waves, want 3 / 1", bs.Groups, bs.Waves)
	}
	if bs.Rounds > 2*single {
		t.Errorf("wave of lopsided repairs took %d rounds, want <= 2x the largest single repair (%d)",
			bs.Rounds, single)
	}
	if !s.Physical().Equal(e.Physical()) {
		t.Fatal("healed graphs diverge")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}
