package dist_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sched"
)

// The transport differential oracle: the same op schedule replayed on
// the deterministic round simulator (simnet) and on the channel
// backend (channet, concurrent goroutines and seeded deterministic
// scheduler alike) must heal bit-identically — same physical network,
// same G', same submission-aligned outcome for every operation. This
// is the protocol-level proof that nothing in the repair secretly
// depends on round synchrony; the simnet run is the oracle because it
// is itself differentially tied to the reference engine
// (TestEquivalenceWithCore).
//
// These tests live in package dist_test: they drive dist through
// internal/sched, which imports dist, so an in-package test would be
// an import cycle.

// equivTopologies are the 5 topology families every differential
// suite in this repo covers.
var equivTopologies = []struct {
	name string
	gen  func(rng *rand.Rand) *graph.Graph
}{
	{"star", func(*rand.Rand) *graph.Graph { return graph.Star(24) }},
	{"path", func(*rand.Rand) *graph.Graph { return graph.Path(20) }},
	{"grid", func(*rand.Rand) *graph.Graph { return graph.Grid(5, 5) }},
	{"gnp", func(rng *rand.Rand) *graph.Graph { return graph.GNP(32, 0.15, rng) }},
	{"powerlaw", func(rng *rand.Rand) *graph.Graph { return graph.PreferentialAttachment(28, 2, rng) }},
}

// genValidSchedule builds a schedule that tracks serialized liveness,
// so nearly every op applies; a pinch of deliberately-dead targets
// exercises identical rejection on both backends. batches > 0 mixes
// in blocking DeleteBatch waves.
func genValidSchedule(g0 *graph.Graph, ops int, batchEvery int, rng *rand.Rand) sched.Schedule {
	alive := append([]sched.NodeID(nil), g0.Nodes()...)
	dead := []sched.NodeID(nil)
	next := sched.NodeID(10_000)
	kill := func(v sched.NodeID) {
		for i, u := range alive {
			if u == v {
				alive = append(alive[:i], alive[i+1:]...)
				break
			}
		}
		dead = append(dead, v)
	}
	var sch sched.Schedule
	for i := 0; i < ops && len(alive) > 1; i++ {
		gap := rng.Intn(4)
		switch {
		case batchEvery > 0 && i%batchEvery == batchEvery-1 && len(alive) > 4:
			k := 2 + rng.Intn(3)
			var batch []sched.NodeID
			for _, idx := range rng.Perm(len(alive))[:k] {
				batch = append(batch, alive[idx])
			}
			sch.Ops = append(sch.Ops, sched.Op{Kind: sched.OpBatch, Batch: batch})
			for _, v := range batch {
				kill(v)
			}
		case rng.Float64() < 0.25:
			v := next
			next++
			k := 1 + rng.Intn(3)
			if k > len(alive) {
				k = len(alive)
			}
			var nbrs []sched.NodeID
			for _, idx := range rng.Perm(len(alive))[:k] {
				nbrs = append(nbrs, alive[idx])
			}
			sch.Ops = append(sch.Ops, sched.Op{Kind: sched.OpInsert, V: v, Nbrs: nbrs, Gap: gap})
			alive = append(alive, v)
		case len(dead) > 0 && rng.Float64() < 0.1:
			// Deliberately dead target: both backends must reject with
			// the same error at the same serialized position.
			v := dead[rng.Intn(len(dead))]
			sch.Ops = append(sch.Ops, sched.Op{Kind: sched.OpDelete, V: v, Gap: gap})
		default:
			v := alive[rng.Intn(len(alive))]
			sch.Ops = append(sch.Ops, sched.Op{Kind: sched.OpDelete, V: v, Gap: gap})
			kill(v)
		}
	}
	return sch
}

// diffTransports replays one schedule on simnet (the oracle), on the
// concurrent channel backend, and on two seeded deterministic
// interleavings, asserting bit-identical healing across all of them.
func diffTransports(t *testing.T, gen func(rng *rand.Rand) *graph.Graph, topoSeed int64, sch sched.Schedule, mode sched.Mode) {
	t.Helper()
	g0 := gen(rand.New(rand.NewSource(topoSeed)))
	ref, err := sched.Run(g0, sched.Config{Backend: sched.Simnet, Mode: mode}, sch)
	if err != nil {
		t.Fatalf("simnet replay: %v", err)
	}
	g0 = gen(rand.New(rand.NewSource(topoSeed)))
	got, err := sched.Run(g0, sched.Config{Backend: sched.Channel, Mode: mode}, sch)
	if err != nil {
		t.Fatalf("chan replay: %v", err)
	}
	if err := sched.Diff(ref, got); err != nil {
		t.Fatalf("simnet vs chan: %v", err)
	}
	for seed := int64(1); seed <= 2; seed++ {
		g0 = gen(rand.New(rand.NewSource(topoSeed)))
		got, err := sched.Run(g0, sched.Config{Backend: sched.ChannelSeeded, Seed: seed, Mode: mode}, sch)
		if err != nil {
			t.Fatalf("chan-seeded(%d) replay: %v", seed, err)
		}
		if err := sched.Diff(ref, got); err != nil {
			t.Fatalf("simnet vs chan-seeded(%d): %v", seed, err)
		}
	}
}

// TestTransportEquivalenceBlocking: one-op-at-a-time churn over the 5
// topology families — every repair runs to quiescence on its own.
func TestTransportEquivalenceBlocking(t *testing.T) {
	for _, topo := range equivTopologies {
		topo := topo
		t.Run(topo.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 2; seed++ {
				g0 := topo.gen(rand.New(rand.NewSource(100 + seed)))
				sch := genValidSchedule(g0, 16, 0, rand.New(rand.NewSource(7*seed+1)))
				diffTransports(t, topo.gen, 100+seed, sch, sched.ModeBlocking)
			}
		})
	}
}

// TestTransportEquivalenceBatch: DeleteBatch waves — overlapping
// repairs of independent regions, claim-phase serialization of the
// rest — interleaved with singleton churn.
func TestTransportEquivalenceBatch(t *testing.T) {
	for _, topo := range equivTopologies {
		topo := topo
		t.Run(topo.name, func(t *testing.T) {
			t.Parallel()
			g0 := topo.gen(rand.New(rand.NewSource(200)))
			sch := genValidSchedule(g0, 14, 3, rand.New(rand.NewSource(11)))
			diffTransports(t, topo.gen, 200, sch, sched.ModeBlocking)
		})
	}
}

// TestTransportEquivalenceOpenLoop: pipelined churn — operations
// submitted while earlier repairs are still in flight, with random
// tick gaps. Disjoint regions overlap, colliding ones serialize; the
// serialized outcome must be backend-invariant even though the raw
// interleaving is not.
func TestTransportEquivalenceOpenLoop(t *testing.T) {
	for _, topo := range equivTopologies {
		topo := topo
		t.Run(topo.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 2; seed++ {
				g0 := topo.gen(rand.New(rand.NewSource(300 + seed)))
				sch := genValidSchedule(g0, 18, 0, rand.New(rand.NewSource(13*seed+5)))
				diffTransports(t, topo.gen, 300+seed, sch, sched.ModeOpenLoop)
			}
		})
	}
}

// TestTransportEquivalenceOpenLoopBatch: open-loop churn punctuated by
// blocking batch waves (drain, batch, resume pipelining).
func TestTransportEquivalenceOpenLoopBatch(t *testing.T) {
	g0gen := equivTopologies[3].gen // gnp
	g0 := g0gen(rand.New(rand.NewSource(400)))
	sch := genValidSchedule(g0, 16, 4, rand.New(rand.NewSource(17)))
	diffTransports(t, g0gen, 400, sch, sched.ModeOpenLoop)
}
