package dist_test

import (
	"math/rand"
	"testing"

	"repro/internal/channet"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/sched"
)

// TestOpenLoopRejectionAttribution is the regression test for the
// arrival-order bug the transport differential exposed: a delete of an
// already-dead node is rejected at its submission admission pass and
// its event is emitted immediately — jumping ahead of an
// earlier-submitted repair of the same node that is still in flight.
// Any oracle that attributes events by per-node arrival order (rather
// than the engine's Event.Seq submission ticket) mislabels the two and
// reports a false divergence. The schedule here is the minimal
// trigger: delete a leaf with no ticks in between, then delete it
// again while the first repair is guaranteed in flight.
func TestOpenLoopRejectionAttribution(t *testing.T) {
	gen := func(*rand.Rand) *graph.Graph { return graph.Star(10) }
	leaf := graph.Star(10).Nodes()[3]
	sch := sched.Schedule{Ops: []sched.Op{
		{Kind: sched.OpDelete, V: leaf, Gap: 0},
		{Kind: sched.OpDelete, V: leaf, Gap: 0},
	}}
	diffTransports(t, gen, 0, sch, sched.ModeOpenLoop)
}

// TestInsertRejectionNamesSerializedNeighbor is the regression test
// for the second bug the fuzzer found (corpus entry
// testdata/fuzz/FuzzTransportSchedule/29ec281bcd00289c): an insert
// whose neighbors include both an already-dead node and a node whose
// delete is queued-but-not-launched was rejected naming whichever
// neighbor happened to be dead at admission time — a transport-pacing
// artifact. On simnet the queued delete was still region-blocked so
// the other neighbor was named; on channet the tick had completed it.
// The engine now treats targets of earlier-queued deletes as dead at
// validation (ids are never reused, so they are doomed), making the
// verdict and the named neighbor a pure function of serialized state.
func TestInsertRejectionNamesSerializedNeighbor(t *testing.T) {
	// Grid(4,4): deleteRegion(0)={0,1,4} overlaps deleteRegion(2)=
	// {2,1,3,6} at node 1, so the second delete queues behind the
	// first on simnet while channet's tick completes both.
	gen := func(*rand.Rand) *graph.Graph { return graph.Grid(4, 4) }
	sch := sched.Schedule{Ops: []sched.Op{
		{Kind: sched.OpDelete, V: 0, Gap: 1},
		{Kind: sched.OpDelete, V: 2, Gap: 1},
		{Kind: sched.OpInsert, V: 10_000, Nbrs: []sched.NodeID{2, 9, 0}, Gap: 1},
	}}
	diffTransports(t, gen, 0, sch, sched.ModeOpenLoop)

	// The named neighbor must be the first doomed one in Nbrs order —
	// the answer a fully serialized (blocking) execution gives.
	ref, err := sched.Run(graph.Grid(4, 4), sched.Config{Backend: sched.Simnet, Mode: sched.ModeOpenLoop}, sch)
	if err != nil {
		t.Fatal(err)
	}
	if o := ref.Outcomes[2]; o.OK || o.Err != "dist: insert 10000: neighbor 2 is not a live node" {
		t.Fatalf("insert outcome %+v", o)
	}
}

// TestEventSeqStamping pins the engine contract the replay oracle
// depends on: the i-th successfully submitted op carries Seq i
// (counted from 1) on its completion event, regardless of the order
// events surface in.
func TestEventSeqStamping(t *testing.T) {
	g0 := graph.Star(10)
	leaf := g0.Nodes()[3]
	s := dist.NewSimulationOn(g0, channet.New())
	if err := s.Submit(dist.Op{Kind: dist.OpDelete, V: leaf}); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	// Second delete of the same node: admitted (node is tentatively
	// dead, not structurally absent) then rejected with Seq 2.
	if err := s.Submit(dist.Op{Kind: dist.OpDelete, V: leaf}); err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	evs := s.Poll()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(evs), evs)
	}
	bySeq := map[int]dist.Event{}
	for _, ev := range evs {
		if _, dup := bySeq[ev.Seq]; dup {
			t.Fatalf("duplicate Seq %d: %+v", ev.Seq, evs)
		}
		bySeq[ev.Seq] = ev
	}
	if ev := bySeq[1]; ev.Kind != dist.EventRepairDone || ev.V != leaf {
		t.Fatalf("Seq 1: want RepairDone for %d, got %+v", leaf, ev)
	}
	if ev := bySeq[2]; ev.Kind != dist.EventOpRejected || ev.V != leaf {
		t.Fatalf("Seq 2: want OpRejected for %d, got %+v", leaf, ev)
	}
}

// TestChannelChurnStress hammers the concurrent channel backend: a
// large random topology, hundreds of pipelined ops with random submit
// gaps, the Go scheduler free to interleave the per-processor
// goroutines however it likes — and the healed graph must still match
// simnet bit for bit. Skipped under -short; the CI race job runs it
// un-short so every run is also a race-detector pass over channet's
// pulse machinery.
func TestChannelChurnStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test: skipped with -short")
	}
	for round := int64(0); round < 4; round++ {
		round := round
		t.Run("", func(t *testing.T) {
			t.Parallel()
			gen := func(rng *rand.Rand) *graph.Graph {
				return graph.PreferentialAttachment(120, 3, rng)
			}
			rng := rand.New(rand.NewSource(900 + round))
			g0 := gen(rand.New(rand.NewSource(900 + round)))
			sch := genValidSchedule(g0, 80, 9, rng)
			diffTransports(t, gen, 900+round, sch, sched.ModeOpenLoop)
		})
	}
}

// FuzzTransportSchedule explores random op schedules and random
// channel-scheduler interleavings. Every byte string decodes to a
// valid schedule (sched.Decode is total); the seed picks one exact
// deterministic interleaving of channet's scheduler, so any failure
// here is reproducible bit-for-bit from the corpus entry alone. The
// differential verdict comes from replaying the same schedule on
// simnet: the two must heal identically or one of them is wrong.
func FuzzTransportSchedule(f *testing.F) {
	// The duplicate-delete arrival-order scenario that broke the first
	// oracle (see TestOpenLoopRejectionAttribution): two deletes of the
	// same target, zero gap.
	f.Add([]byte{0, 5, 0, 5}, int64(1))
	// Insert/delete/batch mix with varying gaps.
	f.Add([]byte{2, 7, 0, 3, 3, 9, 64, 2, 1, 11}, int64(2))
	f.Add([]byte{0, 0, 2, 255, 96, 4, 3, 3, 0, 1, 2, 8}, int64(3))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		if len(data) > 64 {
			data = data[:64] // 32 ops is plenty; keep iterations fast
		}
		g0 := graph.Grid(4, 4)
		sch := sched.Decode(data, g0)
		if len(sch.Ops) == 0 {
			t.Skip()
		}
		ref, refErr := sched.Run(graph.Grid(4, 4), sched.Config{Backend: sched.Simnet, Mode: sched.ModeOpenLoop}, sch)
		got, gotErr := sched.Run(graph.Grid(4, 4), sched.Config{Backend: sched.ChannelSeeded, Seed: seed, Mode: sched.ModeOpenLoop}, sch)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("error asymmetry on %v:\nsimnet: %v\nchan-seeded(%d): %v", sch.Ops, refErr, seed, gotErr)
		}
		if refErr != nil {
			// Both backends rejected the schedule the same way (e.g. a
			// guarded engine state); nothing differential to assert.
			t.Skip()
		}
		if err := sched.Diff(ref, got); err != nil {
			t.Fatalf("divergence on %v (seed %d): %v", sch.Ops, seed, err)
		}
	})
}
