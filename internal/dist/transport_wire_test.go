package dist_test

import (
	"math/rand"
	"os"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/wirenet"
)

// TestMain makes the wire-backend tests possible: when a Hub under
// test spawns its shard workers, the children re-execute this test
// binary and must become workers instead of running the tests.
func TestMain(m *testing.M) {
	wirenet.MaybeWorker()
	os.Exit(m.Run())
}

// diffWire replays one schedule on simnet (the oracle) and on the wire
// backend — shard worker processes over loopback TCP — and asserts
// bit-identical healing. This is the strongest form of the transport
// differential: the repair protocol crossing real sockets between OS
// processes, with genuinely nondeterministic arrival order, must still
// produce the same physical network, the same G′, and the same
// submission-aligned outcome for every operation.
func diffWire(t *testing.T, gen func(rng *rand.Rand) *graph.Graph, topoSeed int64, sch sched.Schedule, mode sched.Mode) {
	t.Helper()
	g0 := gen(rand.New(rand.NewSource(topoSeed)))
	ref, err := sched.Run(g0, sched.Config{Backend: sched.Simnet, Mode: mode}, sch)
	if err != nil {
		t.Fatalf("simnet replay: %v", err)
	}
	g0 = gen(rand.New(rand.NewSource(topoSeed)))
	got, err := sched.Run(g0, sched.Config{Backend: sched.Wire, Shards: 3, Mode: mode}, sch)
	if err != nil {
		t.Fatalf("wire replay: %v", err)
	}
	if err := sched.Diff(ref, got); err != nil {
		t.Fatalf("simnet vs wire: %v", err)
	}
}

// TestTransportEquivalenceWireBlocking: one-op-at-a-time churn over
// the 5 topology families, every message crossing loopback TCP.
func TestTransportEquivalenceWireBlocking(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	for _, topo := range equivTopologies {
		topo := topo
		t.Run(topo.name, func(t *testing.T) {
			t.Parallel()
			g0 := topo.gen(rand.New(rand.NewSource(500)))
			sch := genValidSchedule(g0, 12, 0, rand.New(rand.NewSource(19)))
			diffWire(t, topo.gen, 500, sch, sched.ModeBlocking)
		})
	}
}

// TestTransportEquivalenceWireOpenLoop: pipelined churn on the wire
// backend — repairs in flight across OS processes while new operations
// are submitted.
func TestTransportEquivalenceWireOpenLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	for _, topo := range equivTopologies {
		topo := topo
		t.Run(topo.name, func(t *testing.T) {
			t.Parallel()
			g0 := topo.gen(rand.New(rand.NewSource(600)))
			sch := genValidSchedule(g0, 14, 0, rand.New(rand.NewSource(23)))
			diffWire(t, topo.gen, 600, sch, sched.ModeOpenLoop)
		})
	}
}

// TestWireKillWorkerMidRepair is the fault-injection smoke test: a
// shard worker process is SIGKILLed while repairs are in flight. The
// hub must respawn the shard, retransmit everything outstanding, and
// the protocol must heal to a fully verified state — and, because
// delivery stays exactly-once FIFO through the crash, heal
// bit-identically to the simnet oracle on the same schedule.
func TestWireKillWorkerMidRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	gen := func(rng *rand.Rand) *graph.Graph { return graph.PreferentialAttachment(28, 2, rng) }
	g0 := gen(rand.New(rand.NewSource(700)))
	sch := genValidSchedule(g0, 12, 0, rand.New(rand.NewSource(29)))
	ref, err := sched.Run(g0, sched.Config{Backend: sched.Simnet, Mode: sched.ModeOpenLoop}, sch)
	if err != nil {
		t.Fatalf("simnet replay: %v", err)
	}

	h, err := wirenet.New(wirenet.Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := dist.NewSimulationOn(gen(rand.New(rand.NewSource(700))), h)
	defer s.Close()

	// Drive the schedule by hand so a worker can be killed mid-flight.
	killed := 0
	pos := 0
	for _, op := range sch.Ops {
		var dop dist.Op
		switch op.Kind {
		case sched.OpInsert:
			nbrs := make([]dist.NodeID, len(op.Nbrs))
			for i, x := range op.Nbrs {
				nbrs[i] = dist.NodeID(x)
			}
			dop = dist.Op{Kind: dist.OpInsert, V: dist.NodeID(op.V), Nbrs: nbrs}
		case sched.OpDelete:
			dop = dist.Op{Kind: dist.OpDelete, V: dist.NodeID(op.V)}
		default:
			t.Fatalf("unexpected op kind %d in schedule", op.Kind)
		}
		if err := s.Submit(dop); err != nil {
			// Structural rejection — identical on the oracle run; skip.
			pos++
			continue
		}
		pos++
		for i := 0; i < op.Gap; i++ {
			s.Tick()
		}
		// Kill a different shard every few ops, while repairs are
		// typically in flight.
		if pos%4 == 0 && killed < 3 {
			if err := h.KillWorker(killed % 3); err != nil {
				t.Fatalf("kill worker %d: %v", killed%3, err)
			}
			killed++
		}
	}
	if killed == 0 {
		t.Fatal("schedule too short: no worker was ever killed")
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain after kills: %v", err)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("verify after kills: %v", err)
	}
	if !s.Physical().Equal(ref.Phys) {
		t.Fatal("healed physical network diverges from simnet oracle after worker kills")
	}
	if !s.GPrime().Equal(ref.GPrime) {
		t.Fatal("G' diverges from simnet oracle after worker kills")
	}
}
