package dist

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/haft"
)

// Verify revalidates the entire distributed state from scratch: record
// consistency (every tree link mutual, no dangling addresses, no
// leftover repair flags or batch scratch), the virtual-graph invariants
// core checks (leaf characterization, helper-per-slot, valid hafts with
// the right helper census, representative correctness), the
// incrementally maintained physical graph against a from-scratch
// reconstruction, the hard degree bound, and connectivity equivalence
// with G′. A healthy network always returns nil.
//
// Verify is the authoritative O(n) revalidation; VerifyDelta (see
// verify_delta.go) is the incremental mode that revisits only the
// processors repairs touched. A full pass covers everything, so it
// also resets the incremental pass's touched set.
func (s *Simulation) Verify() error {
	s.takeTouched()
	if err := s.checkEngineFootprint(); err != nil {
		return err
	}
	if err := s.checkTransport(); err != nil {
		return err
	}
	// Record-level checks and global index.
	idx := make(map[addr]*haft.Node)
	for id, p := range s.procs {
		if _, live := s.alive[id]; !live {
			return fmt.Errorf("dist: processor %d has records but is not alive", id)
		}
		if len(p.reps) != 0 {
			return fmt.Errorf("dist: processor %d holds leftover repair scratch", id)
		}
		if len(p.parts) != 0 {
			return fmt.Errorf("dist: processor %d holds leftover participant state", id)
		}
		if len(p.stripWait) != 0 {
			return fmt.Errorf("dist: processor %d holds leftover strip-cascade waiters", id)
		}
		if p.dying {
			return fmt.Errorf("dist: processor %d still marked dying", id)
		}
		if p.claims != nil {
			return fmt.Errorf("dist: processor %d holds leftover claim marks", id)
		}
		if p.batch != nil {
			return fmt.Errorf("dist: processor %d holds leftover batch coordinator scratch", id)
		}
		if len(p.physLog) != 0 {
			return fmt.Errorf("dist: processor %d holds undrained physical-graph edits", id)
		}
		for o := range p.leaves {
			if !s.gprime.HasEdge(id, o) {
				return fmt.Errorf("dist: leaf (%d,%d): no such G' edge", id, o)
			}
			if _, dead := s.dead[o]; !dead {
				return fmt.Errorf("dist: leaf (%d,%d): other endpoint not deleted", id, o)
			}
			idx[leafAddr(id, o)] = haft.NewLeaf(slot{Owner: id, Other: o})
		}
		for o, h := range p.helpers {
			if h.damaged {
				return fmt.Errorf("dist: helper (%d,%d): stale damage flag", id, o)
			}
			if _, ok := p.leaves[o]; !ok {
				return fmt.Errorf("dist: helper (%d,%d): no leaf avatar in the same slot", id, o)
			}
			idx[helperAddr(id, o)] = &haft.Node{
				Height:    h.height,
				LeafCount: h.leafCount,
				Payload:   slot{Owner: id, Other: o},
			}
		}
	}
	// Leaf characterization completeness: L(v,x) exists iff (v,x) ∈ G′,
	// v alive, x deleted.
	for v := range s.alive {
		p := s.procs[v]
		for _, x := range s.gprime.Neighbors(v) {
			if _, dead := s.dead[x]; dead {
				if _, ok := p.leaves[x]; !ok {
					return fmt.Errorf("dist: missing leaf avatar (%d,%d)", v, x)
				}
			}
		}
	}

	// Wire child links and check mutuality.
	for id, p := range s.procs {
		for o, h := range p.helpers {
			self := helperAddr(id, o)
			node := idx[self]
			for dir, c := range [2]addr{h.left, h.right} {
				if !c.ok() {
					return fmt.Errorf("dist: helper %v: missing child %d", self, dir)
				}
				child := idx[c]
				if child == nil {
					return fmt.Errorf("dist: helper %v: child %v has no record", self, c)
				}
				if child.Parent != nil {
					return fmt.Errorf("dist: node %v claimed by two parents", c)
				}
				child.Parent = node
				if dir == 0 {
					node.Left = child
				} else {
					node.Right = child
				}
			}
		}
	}
	parentOf := func(a addr) addr {
		if a.Kind == kindLeaf {
			return s.procs[a.Owner].leaves[a.Other].parent
		}
		return s.procs[a.Owner].helpers[a.Other].parent
	}
	for a, node := range idx {
		stored := parentOf(a)
		switch {
		case stored.ok() && node.Parent == nil:
			return fmt.Errorf("dist: node %v: parent field %v but no child link back", a, stored)
		case !stored.ok() && node.Parent != nil:
			return fmt.Errorf("dist: node %v: linked as a child but parent field empty", a)
		case stored.ok() && idx[stored] != node.Parent:
			return fmt.Errorf("dist: node %v: parent field %v disagrees with child link", a, stored)
		}
	}

	// Reconstructed RTs are valid hafts with the right helper census.
	// Counting every root's leaves also proves each leaf hangs under a
	// root — a parent-pointer cycle would leave its subtree unreached.
	leafCensus := 0
	for a, node := range idx {
		if node.Parent != nil {
			continue
		}
		if err := haft.Validate(node); err != nil {
			return fmt.Errorf("dist: RT rooted at %v invalid: %w", a, err)
		}
		leaves := haft.Leaves(node)
		leafCensus += len(leaves)
		if node.IsLeaf {
			continue
		}
		internal := haft.Internal(node)
		if len(internal) != len(leaves)-1 {
			return fmt.Errorf("dist: RT at %v with %d leaves has %d helpers, want %d",
				a, len(leaves), len(internal), len(leaves)-1)
		}
	}
	totalLeaves := 0
	for _, p := range s.procs {
		totalLeaves += len(p.leaves)
	}
	if leafCensus != totalLeaves {
		return fmt.Errorf("dist: %d leaf avatars exist but %d are reachable from RT roots", totalLeaves, leafCensus)
	}

	// Representative correctness: each helper's stored representative
	// is the unique leaf of its subtree simulating no helper located
	// within that subtree.
	slotOf := func(n *haft.Node) slot { return n.Payload.(slot) }
	for id, p := range s.procs {
		for o, h := range p.helpers {
			node := idx[helperAddr(id, o)]
			inside := make(map[slot]struct{})
			for _, x := range haft.Internal(node) {
				inside[slotOf(x)] = struct{}{}
			}
			var free []slot
			for _, l := range haft.Leaves(node) {
				ls := slotOf(l)
				if _, hasHelper := s.procs[ls.Owner].helpers[ls.Other]; hasHelper {
					if _, in := inside[ls]; in {
						continue
					}
				}
				free = append(free, ls)
			}
			if len(free) != 1 {
				return fmt.Errorf("dist: helper (%d,%d): %d free leaves in subtree, want exactly 1", id, o, len(free))
			}
			if free[0] != h.rep {
				return fmt.Errorf("dist: helper (%d,%d): stored representative %v, recomputed %v",
					id, o, h.rep, free[0])
			}
		}
	}

	// The incrementally maintained physical graph must match the
	// from-scratch reconstruction, then satisfy the hard degree bound
	// and connectivity equivalence with G′. The checks below only read,
	// so the maintained graph is used directly, no snapshot.
	if err := s.checkPhysIncremental(); err != nil {
		return err
	}
	// The incremental connectivity certificate audited against
	// from-scratch BFS partitions; checkConnectivity below stays the
	// independent authority the certificate itself is judged by.
	if err := s.checkCertFull(); err != nil {
		return err
	}
	phys := s.phys
	wantMax := 0.0
	for v := range s.alive {
		dp := s.gprime.Degree(v)
		if got := phys.Degree(v); got > 4*dp {
			return fmt.Errorf("dist: degree bound: node %d has physical degree %d > 4×%d", v, got, dp)
		}
		if dp > 0 {
			if r := float64(phys.Degree(v)) / float64(dp); r > wantMax {
				wantMax = r
			}
		}
	}
	// The incremental max-degree-ratio tracker (stubs.go) audited
	// against the O(n) rebuild it replaced at the soak checkpoints. The
	// ratios are computed by the identical float division, so equality
	// is exact (ties may be attained by different nodes).
	if gotMax, at := s.MaxDegreeRatio(); gotMax != wantMax {
		return fmt.Errorf("dist: degree tracker: incremental max ratio %v (node %d), rebuild %v", gotMax, at, wantMax)
	}
	return s.checkConnectivity(phys)
}

// checkEngineFootprint catches phantom open-loop engine state: an
// in-flight repair epoch that no processor holds scratch for — while
// the network is quiet, so nothing carrying the epoch is in transit —
// can never complete in-band. Skipped while traffic is pending: a
// freshly launched repair's scratch may still be in its notification
// messages.
func (s *Simulation) checkEngineFootprint() error {
	if !s.netQuiet() {
		return nil
	}
	for _, e := range s.phantomEpochs() {
		return fmt.Errorf("dist: phantom in-flight repair epoch %d: no processor holds scratch for it", e)
	}
	return nil
}

// checkTransport runs the backend's own state validation when it has
// one (channet: logical-clock sanity and timer ownership; wirenet:
// reliability-state invariants).
func (s *Simulation) checkTransport() error {
	if v, ok := netAs[interface{ Validate() error }](s.net); ok {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("dist: transport: %w", err)
		}
	}
	return nil
}

// checkConnectivity verifies that live processors are connected in the
// physical network exactly when they are connected in G′.
func (s *Simulation) checkConnectivity(phys *graph.Graph) error {
	live := s.LiveNodes()
	seen := make(map[NodeID]struct{})
	for _, src := range live {
		if _, done := seen[src]; done {
			continue
		}
		gp := s.gprime.BFS(src)
		ph := phys.BFS(src)
		for _, v := range live {
			_, inPrime := gp[v]
			_, inPhys := ph[v]
			if inPrime != inPhys {
				return fmt.Errorf("dist: connectivity: %d~%d is %v in G' but %v in actual network",
					src, v, inPrime, inPhys)
			}
			if inPhys {
				seen[v] = struct{}{}
			}
		}
	}
	return nil
}
