package dist

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/haft"
)

// Incremental verification.
//
// Verify revalidates the whole network from scratch — O(n) work that
// dominates soak runs at n ≥ 10⁵, where a checkpoint only ever follows
// a handful of repairs. VerifyDelta instead revisits exactly the
// processors whose records changed since the last verification (full
// or delta): handlers register in the touchers list on their first
// mutation, the same mechanism the incremental physical graph uses for
// its edit logs. For every touched processor the record-level
// invariants are re-checked, and every Reconstruction Tree holding one
// of its records is re-validated wholesale (shape, census, link
// mutuality, representatives) by climbing to the root and rebuilding
// the subtree — O(changed region), not O(n).
//
// The full check stays authoritative: it additionally proves global
// properties a local pass cannot (physical-graph reconstruction
// equality, G′ connectivity equivalence, census completeness across
// ALL processors), so soak still runs it at the end — and the tests
// cross-check that delta and full verification agree after every
// operation.

// VerifyDelta revalidates the records touched since the last
// verification plus, opportunistically, up to sample additional live
// processors (0 disables the extra sweep; the pick is a deterministic
// round-robin cursor in insertion order, see appendSample). It returns
// nil on a healthy network; corruption inside a changed region is
// detected exactly like the full Verify would.
//
// Connectivity equivalence and physical-graph equality are proved by
// the incremental certificate (see cert.go): an O(1) component-count
// comparison plus per-touched-processor label and multiplicity checks —
// no O(n) pass anywhere on this path.
func (s *Simulation) VerifyDelta(sample int) error {
	s.drainPhys()
	if err := s.checkEngineFootprint(); err != nil {
		return err
	}
	if err := s.checkTransport(); err != nil {
		return err
	}
	if err := s.checkCertCounts(); err != nil {
		return err
	}
	procs := s.appendSample(s.takeTouched(), sample)
	checkedRoots := make(map[addr]struct{})
	for _, p := range procs {
		if s.procs[p.id] != p {
			continue // deleted since it was touched
		}
		if err := s.checkProcessorLocal(p); err != nil {
			return err
		}
		if err := s.checkPhysIncident(p); err != nil {
			return err
		}
		if err := s.checkCertIncident(p); err != nil {
			return err
		}
		for o := range p.leaves {
			if err := s.checkRTContaining(leafAddr(p.id, o), checkedRoots); err != nil {
				return err
			}
		}
		for o := range p.helpers {
			if err := s.checkRTContaining(helperAddr(p.id, o), checkedRoots); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkPhysIncident verifies the maintained physical-edge multiplicity
// index restricted to the edges incident to one touched processor,
// recounting the virtual-edge images from both endpoints' records — a
// region-scoped slice of the full check's physical-graph
// reconstruction. A record link silently changed without its edit
// being logged (the dropped-parent corruption mode) desynchronizes the
// index from the records on exactly such an edge, which a purely
// RT-shape pass can miss when the orphaned subtree is itself a valid
// tree.
func (s *Simulation) checkPhysIncident(p *processor) error {
	id := p.id
	peers := make(map[NodeID]struct{})
	s.phys.EachNeighbor(id, func(q NodeID) { peers[q] = struct{}{} })
	addParent := func(a addr) {
		if a.ok() && a.Owner != id {
			peers[a.Owner] = struct{}{}
		}
	}
	for _, l := range p.leaves {
		addParent(l.parent)
	}
	for _, h := range p.helpers {
		addParent(h.parent)
	}
	countTo := func(pp *processor, other NodeID) int {
		c := 0
		for _, l := range pp.leaves {
			if l.parent.ok() && l.parent.Owner == other {
				c++
			}
		}
		for _, h := range pp.helpers {
			if h.parent.ok() && h.parent.Owner == other {
				c++
			}
		}
		return c
	}
	for q := range peers {
		qp, ok := s.procs[q]
		if !ok {
			return fmt.Errorf("dist: node %d holds a physical edge or parent link to dead node %d", id, q)
		}
		want := countTo(p, q) + countTo(qp, id)
		if s.gprime.HasEdge(id, q) {
			want++ // the live G′ edge's own image
		}
		got := s.physMult[graph.NewEdge(id, q)]
		if got != want {
			return fmt.Errorf("dist: physical edge %d-%d: multiplicity index %d, records say %d", id, q, got, want)
		}
		if (want > 0) != s.phys.HasEdge(id, q) {
			return fmt.Errorf("dist: physical edge %d-%d: graph presence %v disagrees with %d images",
				id, q, s.phys.HasEdge(id, q), want)
		}
	}
	return nil
}

// takeTouched drains the touchers list, clearing the per-processor
// flags so the next delta starts fresh.
func (s *Simulation) takeTouched() []*processor {
	procs := s.touchers.take()
	for _, p := range procs {
		p.touched = false
	}
	return procs
}

// checkProcessorLocal re-checks one processor's record-level
// invariants: no leftover transient repair state and well-formed leaf
// and helper records, plus the hard degree bound.
func (s *Simulation) checkProcessorLocal(p *processor) error {
	id := p.id
	if len(p.reps) != 0 {
		return fmt.Errorf("dist: processor %d holds leftover repair scratch", id)
	}
	if len(p.parts) != 0 {
		return fmt.Errorf("dist: processor %d holds leftover participant state", id)
	}
	if len(p.stripWait) != 0 {
		return fmt.Errorf("dist: processor %d holds leftover strip-cascade waiters", id)
	}
	if p.dying {
		return fmt.Errorf("dist: processor %d still marked dying", id)
	}
	if p.claims != nil {
		return fmt.Errorf("dist: processor %d holds leftover claim marks", id)
	}
	if len(p.physLog) != 0 {
		return fmt.Errorf("dist: processor %d holds undrained physical-graph edits", id)
	}
	for o := range p.leaves {
		if !s.gprime.HasEdge(id, o) {
			return fmt.Errorf("dist: leaf (%d,%d): no such G' edge", id, o)
		}
		if _, dead := s.dead[o]; !dead {
			return fmt.Errorf("dist: leaf (%d,%d): other endpoint not deleted", id, o)
		}
	}
	for o, h := range p.helpers {
		if h.damaged {
			return fmt.Errorf("dist: helper (%d,%d): stale damage flag", id, o)
		}
		if _, ok := p.leaves[o]; !ok {
			return fmt.Errorf("dist: helper (%d,%d): no leaf avatar in the same slot", id, o)
		}
	}
	// Leaf characterization completeness for this processor: a leaf
	// avatar exists for every half-dead G′ edge.
	for _, x := range s.gprime.Neighbors(id) {
		if _, dead := s.dead[x]; dead {
			if _, ok := p.leaves[x]; !ok {
				return fmt.Errorf("dist: missing leaf avatar (%d,%d)", id, x)
			}
		}
	}
	if dp := s.gprime.Degree(id); s.phys.Degree(id) > 4*dp {
		return fmt.Errorf("dist: degree bound: node %d has physical degree %d > 4×%d", id, s.phys.Degree(id), dp)
	}
	return nil
}

// record fetches the leaf or helper record an address names, or an
// error when the owner or record is missing.
func (s *Simulation) record(a addr) (parent addr, h *helperRec, err error) {
	p, ok := s.procs[a.Owner]
	if !ok {
		return addr{}, nil, fmt.Errorf("dist: node %v: owner not alive", a)
	}
	if a.Kind == kindLeaf {
		l, ok := p.leaves[a.Other]
		if !ok {
			return addr{}, nil, fmt.Errorf("dist: no leaf record for %v", a)
		}
		return l.parent, nil, nil
	}
	rec, ok := p.helpers[a.Other]
	if !ok {
		return addr{}, nil, fmt.Errorf("dist: no helper record for %v", a)
	}
	return rec.parent, rec, nil
}

// checkRTContaining climbs from one record to its Reconstruction
// Tree's root and re-validates that whole RT, skipping roots already
// checked this pass. The climb is bounded: a parent chain longer than
// any valid RT's depth means a cycle or corruption.
func (s *Simulation) checkRTContaining(a addr, checkedRoots map[addr]struct{}) error {
	maxDepth := 4*haft.CeilLog2(s.gprime.NumNodes()+2) + 8
	root := a
	for steps := 0; ; steps++ {
		if steps > maxDepth {
			return fmt.Errorf("dist: parent chain from %v exceeds %d (cycle?)", a, maxDepth)
		}
		parent, _, err := s.record(root)
		if err != nil {
			return err
		}
		if !parent.ok() {
			break
		}
		root = parent
	}
	if _, done := checkedRoots[root]; done {
		return nil
	}
	checkedRoots[root] = struct{}{}
	node, leaves, helpers, err := s.reconstructRT(root, maxDepth)
	if err != nil {
		return err
	}
	if err := haft.Validate(node); err != nil {
		return fmt.Errorf("dist: RT rooted at %v invalid: %w", root, err)
	}
	if !node.IsLeaf && helpers != leaves-1 {
		return fmt.Errorf("dist: RT at %v with %d leaves has %d helpers, want %d",
			root, leaves, helpers, leaves-1)
	}
	return s.checkRepresentatives(node)
}

// reconstructRT rebuilds the subtree under one address from the
// distributed records, checking link mutuality on the way down.
func (s *Simulation) reconstructRT(a addr, maxDepth int) (node *haft.Node, leaves, helpers int, err error) {
	if maxDepth < 0 {
		return nil, 0, 0, fmt.Errorf("dist: RT under %v deeper than any valid haft (cycle?)", a)
	}
	if a.Kind == kindLeaf {
		if _, _, err := s.record(a); err != nil {
			return nil, 0, 0, err
		}
		return haft.NewLeaf(a.slot()), 1, 0, nil
	}
	_, h, err := s.record(a)
	if err != nil {
		return nil, 0, 0, err
	}
	node = &haft.Node{Height: h.height, LeafCount: h.leafCount, Payload: a.slot()}
	for dir, c := range [2]addr{h.left, h.right} {
		if !c.ok() {
			return nil, 0, 0, fmt.Errorf("dist: helper %v: missing child %d", a, dir)
		}
		cParent, _, err := s.record(c)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("dist: helper %v: child %d: %w", a, dir, err)
		}
		if cParent != a {
			return nil, 0, 0, fmt.Errorf("dist: node %v: parent field %v disagrees with child link from %v", c, cParent, a)
		}
		child, cl, ch, err := s.reconstructRT(c, maxDepth-1)
		if err != nil {
			return nil, 0, 0, err
		}
		child.Parent = node
		if dir == 0 {
			node.Left = child
		} else {
			node.Right = child
		}
		leaves += cl
		helpers += ch
	}
	return node, leaves, helpers + 1, nil
}

// checkRepresentatives re-derives every helper's representative within
// one reconstructed RT and compares against the stored one — the same
// check the full Verify runs, scoped to this tree.
func (s *Simulation) checkRepresentatives(root *haft.Node) error {
	slotOf := func(n *haft.Node) slot { return n.Payload.(slot) }
	for _, hn := range haft.Internal(root) {
		hs := slotOf(hn)
		stored := s.procs[hs.Owner].helpers[hs.Other]
		inside := make(map[slot]struct{})
		for _, x := range haft.Internal(hn) {
			inside[slotOf(x)] = struct{}{}
		}
		var free []slot
		for _, l := range haft.Leaves(hn) {
			ls := slotOf(l)
			if _, hasHelper := s.procs[ls.Owner].helpers[ls.Other]; hasHelper {
				if _, in := inside[ls]; in {
					continue
				}
			}
			free = append(free, ls)
		}
		if len(free) != 1 {
			return fmt.Errorf("dist: helper (%d,%d): %d free leaves in subtree, want exactly 1", hs.Owner, hs.Other, len(free))
		}
		if free[0] != stored.rep {
			return fmt.Errorf("dist: helper (%d,%d): stored representative %v, recomputed %v",
				hs.Owner, hs.Other, stored.rep, free[0])
		}
	}
	return nil
}
