package dist

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// Cross-checks for the incremental verification mode: VerifyDelta must
// agree with the full Verify on healthy networks throughout a
// campaign, and corruption inside a changed region must be caught by
// the delta pass exactly like the full one would catch it.

// TestVerifyDeltaAgreesWithFull replays a mixed campaign, running the
// incremental check after every operation and the authoritative full
// check at the end of each phase of the schedule. Both must stay nil
// throughout.
func TestVerifyDeltaAgreesWithFull(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := NewSimulation(graph.PreferentialAttachment(48, 3, rng))
	nextID := NodeID(50_000)
	for i := 0; i < 40; i++ {
		live := s.LiveNodes()
		if len(live) == 0 {
			break
		}
		if rng.Float64() < 0.3 {
			v := nextID
			nextID++
			k := 1 + rng.Intn(3)
			if k > len(live) {
				k = len(live)
			}
			var nbrs []NodeID
			for _, idx := range rng.Perm(len(live))[:k] {
				nbrs = append(nbrs, live[idx])
			}
			if err := s.Insert(v, nbrs); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		} else if rng.Float64() < 0.3 {
			batch := pickBatch(live, rng, 1+rng.Intn(4))
			if err := s.DeleteBatch(batch); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		} else {
			if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
		if err := s.VerifyDelta(4); err != nil {
			t.Fatalf("op %d: incremental verification failed on a healthy network: %v", i, err)
		}
		if i%10 == 9 {
			if err := s.Verify(); err != nil {
				t.Fatalf("op %d: full verification failed after deltas passed: %v", i, err)
			}
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// With nothing touched since the last check, a delta is a no-op.
	if err := s.VerifyDelta(0); err != nil {
		t.Fatalf("no-op delta failed: %v", err)
	}
}

// churnedSim builds a network with real Reconstruction Trees and a
// fresh touched set from one more deletion.
func churnedSim(t *testing.T) *Simulation {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	s := NewSimulation(graph.PreferentialAttachment(40, 3, rng))
	for i := 0; i < 12; i++ {
		live := s.LiveNodes()
		if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// One more deletion whose touched set the delta pass will visit.
	live := s.LiveNodes()
	if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
		t.Fatal(err)
	}
	return s
}

// touchedHelper returns some processor touched by the last repair that
// simulates a helper, with the helper's slot key.
func touchedHelper(t *testing.T, s *Simulation) (*processor, NodeID) {
	t.Helper()
	s.touchers.mu.Lock()
	touched := append([]*processor(nil), s.touchers.procs...)
	s.touchers.mu.Unlock()
	for _, p := range touched {
		if s.procs[p.id] != p {
			continue
		}
		for o := range p.helpers {
			return p, o
		}
	}
	t.Skip("no touched helper in this campaign")
	return nil, 0
}

// TestVerifyDeltaCatchesCorruption corrupts records inside the touched
// region in several distinct ways; the incremental pass must fail on
// every one, like the full pass does.
func TestVerifyDeltaCatchesCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(p *processor, o NodeID)
	}{
		{"leafcount", func(p *processor, o NodeID) { p.helpers[o].leafCount++ }},
		{"height", func(p *processor, o NodeID) { p.helpers[o].height += 2 }},
		{"damage-flag", func(p *processor, o NodeID) { p.helpers[o].damaged = true }},
		{"representative", func(p *processor, o NodeID) {
			p.helpers[o].rep = slot{Owner: p.id, Other: o + 100_000}
		}},
		{"dropped-parent", func(p *processor, o NodeID) { p.helpers[o].parent = addr{} }},
	}
	for _, c := range corruptions {
		c := c
		t.Run(c.name, func(t *testing.T) {
			s := churnedSim(t)
			p, o := touchedHelper(t, s)
			if err := s.Verify(); err != nil {
				t.Fatalf("pre-corruption full verify: %v", err)
			}
			// Re-touch: the full Verify above cleared the touched set.
			p.markTouched()
			c.corrupt(p, o)
			if err := s.Verify(); err == nil {
				t.Fatal("full verification missed the corruption — the scenario is vacuous")
			}
			// A fresh twin state for the delta check is unnecessary:
			// delta only reads. It must see the same corruption.
			p.markTouched()
			if err := s.VerifyDelta(0); err == nil {
				t.Fatal("incremental verification missed corruption the full check catches")
			}
		})
	}
}

// TestVerifyDeltaSampleDeterministic pins the opportunistic-sample
// cursor: two simulations fed the identical operation schedule must
// sample the identical processor sequence on every VerifyDelta call.
// (The sample used to be drawn by map iteration, so a sampled-sweep
// failure in a soak run was not replayable from its seed.)
func TestVerifyDeltaSampleDeterministic(t *testing.T) {
	run := func() [][]NodeID {
		rng := rand.New(rand.NewSource(77))
		s := NewSimulation(graph.PreferentialAttachment(32, 3, rng))
		var picks [][]NodeID
		nextID := NodeID(90_000)
		for i := 0; i < 25; i++ {
			live := s.LiveNodes()
			if len(live) == 0 {
				break
			}
			if rng.Float64() < 0.3 {
				v := nextID
				nextID++
				if err := s.Insert(v, []NodeID{live[rng.Intn(len(live))]}); err != nil {
					t.Fatal(err)
				}
			} else if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
				t.Fatal(err)
			}
			if err := s.VerifyDelta(3); err != nil {
				t.Fatal(err)
			}
			picks = append(picks, append([]NodeID(nil), s.LastSample()...))
		}
		return picks
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay produced %d sample sets, original %d", len(b), len(a))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("call %d: sample %v vs replay %v", i, a[i], b[i])
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("call %d: sample %v vs replay %v", i, a[i], b[i])
			}
		}
	}
}

// TestVerifyDeltaSampleRoundRobin checks the cursor actually rotates:
// on a quiet network, consecutive sampled deltas must cover every live
// processor in insertion order before revisiting any.
func TestVerifyDeltaSampleRoundRobin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSimulation(graph.PreferentialAttachment(24, 2, rng))
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	n := s.NumAlive()
	per := 5
	var seen []NodeID
	for len(seen) < n {
		if err := s.VerifyDelta(per); err != nil {
			t.Fatal(err)
		}
		got := s.LastSample()
		if len(got) != per && len(seen)+len(got) < n {
			t.Fatalf("sampled %d processors, want %d", len(got), per)
		}
		seen = append(seen, got...)
	}
	firstRound := seen[:n]
	dup := make(map[NodeID]struct{}, n)
	for _, id := range firstRound {
		if _, ok := dup[id]; ok {
			t.Fatalf("processor %d sampled twice before full rotation: %v", id, firstRound)
		}
		dup[id] = struct{}{}
	}
	// Insertion order: the seed graph's nodes are added in ascending ID
	// order, so the first rotation must be sorted.
	for i := 1; i < n; i++ {
		if firstRound[i] < firstRound[i-1] {
			t.Fatalf("rotation not in insertion order: %v", firstRound)
		}
	}
}

// TestVerifyDeltaScaling sanity-checks the point of the incremental
// mode: after one deletion on a large churned network, the delta
// visits a region-sized slice of the state, not all of it. Measured
// structurally (processors visited), not by wall clock, so the test is
// immune to runner noise.
func TestVerifyDeltaScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewSimulation(graph.PreferentialAttachment(2000, 3, rng))
	for i := 0; i < 10; i++ {
		live := s.LiveNodes()
		if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	live := s.LiveNodes()
	if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
		t.Fatal(err)
	}
	s.drainPhys()
	s.touchers.mu.Lock()
	touched := len(s.touchers.procs)
	s.touchers.mu.Unlock()
	if touched == 0 {
		t.Fatal("repair touched nothing")
	}
	if touched > s.NumAlive()/4 {
		t.Fatalf("one repair touched %d of %d processors: the incremental pass saves nothing", touched, s.NumAlive())
	}
	if err := s.VerifyDelta(0); err != nil {
		t.Fatal(err)
	}
}
