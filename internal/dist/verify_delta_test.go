package dist

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// Cross-checks for the incremental verification mode: VerifyDelta must
// agree with the full Verify on healthy networks throughout a
// campaign, and corruption inside a changed region must be caught by
// the delta pass exactly like the full one would catch it.

// TestVerifyDeltaAgreesWithFull replays a mixed campaign, running the
// incremental check after every operation and the authoritative full
// check at the end of each phase of the schedule. Both must stay nil
// throughout.
func TestVerifyDeltaAgreesWithFull(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := NewSimulation(graph.PreferentialAttachment(48, 3, rng))
	nextID := NodeID(50_000)
	for i := 0; i < 40; i++ {
		live := s.LiveNodes()
		if len(live) == 0 {
			break
		}
		if rng.Float64() < 0.3 {
			v := nextID
			nextID++
			k := 1 + rng.Intn(3)
			if k > len(live) {
				k = len(live)
			}
			var nbrs []NodeID
			for _, idx := range rng.Perm(len(live))[:k] {
				nbrs = append(nbrs, live[idx])
			}
			if err := s.Insert(v, nbrs); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		} else if rng.Float64() < 0.3 {
			batch := pickBatch(live, rng, 1+rng.Intn(4))
			if err := s.DeleteBatch(batch); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		} else {
			if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
		if err := s.VerifyDelta(4); err != nil {
			t.Fatalf("op %d: incremental verification failed on a healthy network: %v", i, err)
		}
		if i%10 == 9 {
			if err := s.Verify(); err != nil {
				t.Fatalf("op %d: full verification failed after deltas passed: %v", i, err)
			}
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// With nothing touched since the last check, a delta is a no-op.
	if err := s.VerifyDelta(0); err != nil {
		t.Fatalf("no-op delta failed: %v", err)
	}
}

// churnedSim builds a network with real Reconstruction Trees and a
// fresh touched set from one more deletion.
func churnedSim(t *testing.T) *Simulation {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	s := NewSimulation(graph.PreferentialAttachment(40, 3, rng))
	for i := 0; i < 12; i++ {
		live := s.LiveNodes()
		if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// One more deletion whose touched set the delta pass will visit.
	live := s.LiveNodes()
	if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
		t.Fatal(err)
	}
	return s
}

// touchedHelper returns some processor touched by the last repair that
// simulates a helper, with the helper's slot key.
func touchedHelper(t *testing.T, s *Simulation) (*processor, NodeID) {
	t.Helper()
	s.touchers.mu.Lock()
	touched := append([]*processor(nil), s.touchers.procs...)
	s.touchers.mu.Unlock()
	for _, p := range touched {
		if s.procs[p.id] != p {
			continue
		}
		for o := range p.helpers {
			return p, o
		}
	}
	t.Skip("no touched helper in this campaign")
	return nil, 0
}

// TestVerifyDeltaCatchesCorruption corrupts records inside the touched
// region in several distinct ways; the incremental pass must fail on
// every one, like the full pass does.
func TestVerifyDeltaCatchesCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(p *processor, o NodeID)
	}{
		{"leafcount", func(p *processor, o NodeID) { p.helpers[o].leafCount++ }},
		{"height", func(p *processor, o NodeID) { p.helpers[o].height += 2 }},
		{"damage-flag", func(p *processor, o NodeID) { p.helpers[o].damaged = true }},
		{"representative", func(p *processor, o NodeID) {
			p.helpers[o].rep = slot{Owner: p.id, Other: o + 100_000}
		}},
		{"dropped-parent", func(p *processor, o NodeID) { p.helpers[o].parent = addr{} }},
	}
	for _, c := range corruptions {
		c := c
		t.Run(c.name, func(t *testing.T) {
			s := churnedSim(t)
			p, o := touchedHelper(t, s)
			if err := s.Verify(); err != nil {
				t.Fatalf("pre-corruption full verify: %v", err)
			}
			// Re-touch: the full Verify above cleared the touched set.
			p.markTouched()
			c.corrupt(p, o)
			if err := s.Verify(); err == nil {
				t.Fatal("full verification missed the corruption — the scenario is vacuous")
			}
			// A fresh twin state for the delta check is unnecessary:
			// delta only reads. It must see the same corruption.
			p.markTouched()
			if err := s.VerifyDelta(0); err == nil {
				t.Fatal("incremental verification missed corruption the full check catches")
			}
		})
	}
}

// TestVerifyDeltaScaling sanity-checks the point of the incremental
// mode: after one deletion on a large churned network, the delta
// visits a region-sized slice of the state, not all of it. Measured
// structurally (processors visited), not by wall clock, so the test is
// immune to runner noise.
func TestVerifyDeltaScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewSimulation(graph.PreferentialAttachment(2000, 3, rng))
	for i := 0; i < 10; i++ {
		live := s.LiveNodes()
		if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	live := s.LiveNodes()
	if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
		t.Fatal(err)
	}
	s.drainPhys()
	s.touchers.mu.Lock()
	touched := len(s.touchers.procs)
	s.touchers.mu.Unlock()
	if touched == 0 {
		t.Fatal("repair touched nothing")
	}
	if touched > s.NumAlive()/4 {
		t.Fatalf("one repair touched %d of %d processors: the incremental pass saves nothing", touched, s.NumAlive())
	}
	if err := s.VerifyDelta(0); err != nil {
		t.Fatal(err)
	}
}
