package dist

import "repro/internal/wirenet"

// Wire-codec registration: every payload type the protocol puts ON THE
// NETWORK gets a stable frame tag, so the wire backend can serialize
// it across process boundaries. The timer-only payloads
// (msgBeginRepair, msgPhaseWatch, msgFlushOutbox, msgAuditTick) are
// deliberately absent — timers are hub-local wake-ups and never cross
// a socket.
//
// Tags are part of the wire format between the hub and its worker
// processes of ONE run (hub and workers are the same binary, so both
// sides always agree); they still must not be reused within a binary,
// which the registry enforces at init time.
func init() {
	wirenet.RegisterPayload(1, msgDeath{})
	wirenet.RegisterPayload(2, msgChampion{})
	wirenet.RegisterPayload(3, msgLeader{})
	wirenet.RegisterPayload(4, msgMarkDamaged{})
	wirenet.RegisterPayload(5, msgWalkAck{})
	wirenet.RegisterPayload(6, msgSubtreeDone{})
	wirenet.RegisterPayload(7, msgPhaseDone{})
	wirenet.RegisterPayload(8, msgRootAnnounce{})
	wirenet.RegisterPayload(9, msgFreshLeaf{})
	wirenet.RegisterPayload(10, msgKeyProbe{})
	wirenet.RegisterPayload(11, msgKeyFound{})
	wirenet.RegisterPayload(12, msgKeyNone{})
	wirenet.RegisterPayload(13, msgStripVisit{})
	wirenet.RegisterPayload(14, msgStripAck{})
	wirenet.RegisterPayload(15, msgStripDone{})
	wirenet.RegisterPayload(16, msgMergeAck{})
	wirenet.RegisterPayload(17, msgDescriptor{})
	wirenet.RegisterPayload(18, msgClaimDeath{})
	wirenet.RegisterPayload(19, msgClaimElect{})
	wirenet.RegisterPayload(20, msgClaimChamp{})
	wirenet.RegisterPayload(21, msgClaimCoord{})
	wirenet.RegisterPayload(22, msgClaimWalk{})
	wirenet.RegisterPayload(23, msgConflict{})
	wirenet.RegisterPayload(24, msgCreateHelper{})
	wirenet.RegisterPayload(25, msgSetParent{})
	wirenet.RegisterPayload(26, msgAuditProbe{})
	wirenet.RegisterPayload(27, msgAuditReply{})
	wirenet.RegisterPayload(28, msgAuditClaim{})
	wirenet.RegisterPayload(29, msgAuditVerdict{})
}
