// Package ftree implements the Forgiving Tree baseline — the
// predecessor data structure of Hayes, Rustagi, Saia and Trehan (PODC
// 2008) that the Forgiving Graph paper improves on.
//
// The Forgiving Tree fixes a spanning tree of the initial network and
// heals only tree structure: a deleted node is replaced by a balanced
// binary "will" over its children, whose internal nodes are simulated by
// surviving descendants. Its guarantees are an additive degree increase
// (at most 3) and a diameter increase factor of O(log Δ); it handles no
// adversarial insertions and requires an O(n log n)-message
// initialization to distribute wills.
//
// This implementation reproduces the healed-topology semantics by
// running the Reconstruction-Tree machinery restricted to a BFS spanning
// forest: tree surgery with balanced hafts over the children and
// leaf-simulated helper nodes, exactly the Forgiving Tree's surgery up
// to the will/heir message choreography (which only affects message
// accounting, not topology). Surviving non-tree edges of the original
// network are kept, as in the original. Insertions — unsupported by the
// Forgiving Tree — are bolted on for mixed-churn comparisons by grafting
// the new node onto the tree at its first listed neighbor; the paper's
// point that this lacks any guarantee shows up directly in the
// measurements.
package ftree

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/heal"
)

// NodeID identifies a processor.
type NodeID = heal.NodeID

// ForgivingTree is the PODC 2008 baseline healer.
type ForgivingTree struct {
	e       *core.Engine // Reconstruction-Tree machinery over the spanning forest
	gprime  *graph.Graph // the full insertions-only graph (all edges)
	nontree *graph.Graph // live non-tree edges
}

// New builds the Forgiving Tree over a BFS spanning forest of g0.
func New(g0 *graph.Graph) *ForgivingTree {
	tree := graph.New()
	for _, v := range g0.Nodes() {
		tree.AddNode(v)
	}
	visited := make(map[NodeID]struct{}, g0.NumNodes())
	for _, root := range g0.Nodes() {
		if _, ok := visited[root]; ok {
			continue
		}
		visited[root] = struct{}{}
		queue := []NodeID{root}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g0.Neighbors(u) {
				if _, ok := visited[w]; ok {
					continue
				}
				visited[w] = struct{}{}
				tree.AddEdge(u, w)
				queue = append(queue, w)
			}
		}
	}
	nontree := graph.New()
	for _, v := range g0.Nodes() {
		nontree.AddNode(v)
	}
	for _, e := range g0.Edges() {
		if !tree.HasEdge(e.U, e.V) {
			nontree.AddEdge(e.U, e.V)
		}
	}
	return &ForgivingTree{
		e:       core.NewEngine(tree),
		gprime:  g0.Clone(),
		nontree: nontree,
	}
}

// Name implements heal.Healer.
func (f *ForgivingTree) Name() string { return "forgiving-tree" }

// Insert implements heal.Healer. The first listed neighbor becomes the
// tree attachment point; remaining edges are kept as non-tree edges.
func (f *ForgivingTree) Insert(v NodeID, nbrs []NodeID) error {
	var treeNbrs []NodeID
	if len(nbrs) > 0 {
		treeNbrs = nbrs[:1]
	}
	if err := f.e.Insert(v, treeNbrs); err != nil {
		return err
	}
	f.gprime.AddNode(v)
	f.nontree.AddNode(v)
	for i, x := range nbrs {
		f.gprime.AddEdge(v, x)
		if i > 0 {
			f.nontree.AddEdge(v, x)
		}
	}
	return nil
}

// Delete implements heal.Healer: tree surgery via the Reconstruction
// Tree machinery; incident non-tree edges simply disappear.
func (f *ForgivingTree) Delete(v NodeID) error {
	if err := f.e.Delete(v); err != nil {
		return err
	}
	f.nontree.RemoveNode(v)
	return nil
}

// Network implements heal.Healer: the healed tree plus surviving
// non-tree edges.
func (f *ForgivingTree) Network() *graph.Graph {
	g := f.e.Physical()
	for _, e := range f.nontree.Edges() {
		g.AddEdge(e.U, e.V)
	}
	return g
}

// GPrime implements heal.Healer, returning the full insertions-only
// graph (not just its spanning forest) so all healers are measured
// against the same yardstick.
func (f *ForgivingTree) GPrime() *graph.Graph { return f.gprime.Clone() }

// LiveNodes implements heal.Healer.
func (f *ForgivingTree) LiveNodes() []NodeID { return f.e.LiveNodes() }

// Alive implements heal.Healer.
func (f *ForgivingTree) Alive(v NodeID) bool { return f.e.Alive(v) }

// Engine exposes the underlying tree-surgery engine for tests.
func (f *ForgivingTree) Engine() *core.Engine { return f.e }

var _ heal.Healer = (*ForgivingTree)(nil)
