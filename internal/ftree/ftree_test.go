package ftree

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestSpanningTreeConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g0 := graph.GNP(20, 0.2, rng)
	f := New(g0)
	// Initial network must equal g0 exactly: tree plus non-tree edges.
	if !f.Network().Equal(g0) {
		t.Fatal("initial network differs from G0")
	}
	if !f.GPrime().Equal(g0) {
		t.Fatal("initial G' differs from G0")
	}
}

func TestTreeSurgery(t *testing.T) {
	f := New(graph.Star(8))
	if err := f.Delete(0); err != nil {
		t.Fatal(err)
	}
	net := f.Network()
	if !net.Connected() {
		t.Fatal("tree surgery left network disconnected")
	}
	if err := f.Engine().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := f.Delete(0); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestNonTreeEdgesSurvive(t *testing.T) {
	// A cycle's BFS tree drops one edge; that edge must persist in the
	// network and vanish only when an endpoint dies.
	f := New(graph.Cycle(5))
	net := f.Network()
	if net.NumEdges() != 5 {
		t.Fatalf("edges = %d, want 5", net.NumEdges())
	}
	if err := f.Delete(2); err != nil {
		t.Fatal(err)
	}
	if !f.Network().Connected() {
		t.Fatal("disconnected after deletion")
	}
}

func TestInsertGraftsOntoTree(t *testing.T) {
	f := New(graph.Path(3))
	if err := f.Insert(10, []NodeID{0, 2}); err != nil {
		t.Fatal(err)
	}
	net := f.Network()
	if !net.HasEdge(10, 0) || !net.HasEdge(10, 2) {
		t.Fatal("insert edges missing")
	}
	if !f.GPrime().HasEdge(10, 2) {
		t.Fatal("G' missing insert edge")
	}
	// Isolated insertion is allowed too.
	if err := f.Insert(11, nil); err != nil {
		t.Fatal(err)
	}
	if !f.Alive(11) {
		t.Fatal("isolated insert not alive")
	}
	// Deleting the tree attachment point must keep 10 connected.
	if err := f.Delete(0); err != nil {
		t.Fatal(err)
	}
	if f.Network().Distance(10, 1) == graph.Unreachable {
		t.Fatal("grafted node separated from the tree")
	}
}

func TestDegreeAdditiveBehavior(t *testing.T) {
	// On a star, the Forgiving Tree replaces the hub by a balanced tree
	// over the leaves: every survivor's degree stays <= 1 + 3.
	f := New(graph.Star(33))
	if err := f.Delete(0); err != nil {
		t.Fatal(err)
	}
	net := f.Network()
	for _, v := range f.LiveNodes() {
		if d := net.Degree(v); d > 4 {
			t.Fatalf("degree(%d) = %d, want <= 4 (additive bound)", v, d)
		}
	}
}

func TestRandomChurnStaysConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := New(graph.PreferentialAttachment(24, 2, rng))
	next := NodeID(500)
	for i := 0; i < 20; i++ {
		live := f.LiveNodes()
		if len(live) < 2 {
			break
		}
		if rng.Float64() < 0.3 {
			if err := f.Insert(next, []NodeID{live[rng.Intn(len(live))]}); err != nil {
				t.Fatal(err)
			}
			next++
		} else {
			if err := f.Delete(live[rng.Intn(len(live))]); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Engine().CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		// The healed network must stay connected (G0 was connected and
		// every insertion attaches to the tree).
		if !f.Network().Connected() {
			t.Fatalf("step %d: disconnected", i)
		}
	}
}

func TestDisconnectedInitialGraph(t *testing.T) {
	g := graph.New()
	g.AddEdge(0, 1)
	g.AddEdge(5, 6)
	f := New(g)
	if err := f.Delete(0); err != nil {
		t.Fatal(err)
	}
	net := f.Network()
	if net.Distance(1, 5) != graph.Unreachable {
		t.Fatal("components merged spuriously")
	}
}
