package graph

// ArticulationPoints returns the cut vertices of the graph — the nodes
// whose removal disconnects their component — in ascending order. It is
// the standard Tarjan low-link computation, implemented iteratively so
// deep path graphs cannot overflow the stack. Used by the cut-vertex
// adversary: deleting articulation points is the most structurally
// damaging attack a topology admits.
func (g *Graph) ArticulationPoints() []NodeID {
	index := make(map[NodeID]int, len(g.adj))    // discovery times, 1-based
	low := make(map[NodeID]int, len(g.adj))      // low-link values
	childCnt := make(map[NodeID]int, len(g.adj)) // DFS-tree children of roots
	isCut := make(map[NodeID]bool)
	time := 0

	type frame struct {
		v, parent NodeID
		nbrs      []NodeID
		next      int
	}

	for _, root := range g.Nodes() {
		if index[root] != 0 {
			continue
		}
		time++
		index[root] = time
		low[root] = time
		stack := []frame{{v: root, parent: root, nbrs: g.Neighbors(root)}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(f.nbrs) {
				w := f.nbrs[f.next]
				f.next++
				if w == f.parent {
					continue
				}
				if index[w] != 0 {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
					continue
				}
				time++
				index[w] = time
				low[w] = time
				if f.v == root {
					childCnt[root]++
				}
				stack = append(stack, frame{v: w, parent: f.v, nbrs: g.Neighbors(w)})
				continue
			}
			// Post-order: fold low-link into the parent.
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			p := &stack[len(stack)-1]
			if low[f.v] < low[p.v] {
				low[p.v] = low[f.v]
			}
			if p.v != root && low[f.v] >= index[p.v] {
				isCut[p.v] = true
			}
		}
		if childCnt[root] >= 2 {
			isCut[root] = true
		}
	}

	out := make([]NodeID, 0, len(isCut))
	for v := range isCut {
		out = append(out, v)
	}
	sortNodeIDs(out)
	return out
}
