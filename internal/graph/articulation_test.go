package graph

import (
	"math/rand"
	"testing"
)

func idsEqual(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestArticulationPointsKnownShapes(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want []NodeID
	}{
		{"empty", New(), nil},
		{"single", Star(1), nil},
		{"edge", Path(2), nil},
		{"path5", Path(5), []NodeID{1, 2, 3}},
		{"cycle", Cycle(6), nil},
		{"star", Star(6), []NodeID{0}},
		{"complete", Complete(5), nil},
		{"tree", CompleteBinaryTree(7), []NodeID{0, 1, 2}},
		{"two components", func() *Graph {
			g := Path(3) // cut vertex 1
			g.AddEdge(10, 11)
			g.AddEdge(11, 12)
			g.AddEdge(12, 10) // triangle: no cuts
			return g
		}(), []NodeID{1}},
		{"barbell", func() *Graph {
			// Two triangles joined by a bridge 2-3.
			g := New()
			g.AddEdge(0, 1)
			g.AddEdge(1, 2)
			g.AddEdge(2, 0)
			g.AddEdge(3, 4)
			g.AddEdge(4, 5)
			g.AddEdge(5, 3)
			g.AddEdge(2, 3)
			return g
		}(), []NodeID{2, 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.g.ArticulationPoints()
			if !idsEqual(got, tt.want) {
				t.Errorf("ArticulationPoints = %v, want %v", got, tt.want)
			}
		})
	}
}

// Cross-check against the definition: v is a cut vertex iff removing it
// increases the number of connected components.
func TestArticulationPointsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		g := RawGNP(14, 0.18, rng)
		want := map[NodeID]bool{}
		before := len(g.Components())
		for _, v := range g.Nodes() {
			h := g.Clone()
			h.RemoveNode(v)
			// Removing v also removes it from the count, so compare
			// against the components of g minus the vertex itself.
			adjusted := before
			if g.Degree(v) == 0 {
				adjusted-- // isolated vertex: its own component vanishes
			}
			if len(h.Components()) > adjusted {
				want[v] = true
			}
		}
		got := g.ArticulationPoints()
		gotSet := map[NodeID]bool{}
		for _, v := range got {
			gotSet[v] = true
		}
		for _, v := range g.Nodes() {
			if want[v] != gotSet[v] {
				t.Fatalf("trial %d: vertex %d: brute force %v, tarjan %v\n%s",
					trial, v, want[v], gotSet[v], g.DOT("g"))
			}
		}
	}
}

func TestArticulationPointsDeepPath(t *testing.T) {
	// 50k-node path: recursion would overflow; the iterative version
	// must handle it and find all interior vertices.
	const n = 50000
	g := Path(n)
	cuts := g.ArticulationPoints()
	if len(cuts) != n-2 {
		t.Fatalf("path cut vertices = %d, want %d", len(cuts), n-2)
	}
}
