package graph

// Unreachable is the distance reported for vertex pairs with no connecting
// path. It is negative so that accidental arithmetic on it is conspicuous.
const Unreachable = -1

// BFS computes single-source shortest-path distances (in hops) from src.
// The result maps every vertex reachable from src (including src itself,
// at distance 0) to its distance. Vertices not present in the map are
// unreachable. BFS of an absent vertex returns an empty map.
func (g *Graph) BFS(src NodeID) map[NodeID]int {
	dist := make(map[NodeID]int)
	if !g.HasNode(src) {
		return dist
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for v := range g.adj[u] {
			if _, seen := dist[v]; !seen {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BFSOrder returns the vertices reachable from src in breadth-first
// order, src first, visiting each frontier's neighbors in ascending ID
// order so that the result is deterministic. An absent src yields nil.
func (g *Graph) BFSOrder(src NodeID) []NodeID {
	if !g.HasNode(src) {
		return nil
	}
	seen := map[NodeID]struct{}{src: {}}
	order := []NodeID{src}
	for i := 0; i < len(order); i++ {
		for _, v := range g.Neighbors(order[i]) {
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				order = append(order, v)
			}
		}
	}
	return order
}

// Distance returns the hop distance between u and v, or Unreachable if no
// path exists (or either endpoint is absent). It runs a bidirectional-free
// plain BFS from u, stopping early when v is settled.
func (g *Graph) Distance(u, v NodeID) int {
	if !g.HasNode(u) || !g.HasNode(v) {
		return Unreachable
	}
	if u == v {
		return 0
	}
	dist := map[NodeID]int{u: 0}
	queue := []NodeID{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		dx := dist[x]
		for y := range g.adj[x] {
			if _, seen := dist[y]; !seen {
				if y == v {
					return dx + 1
				}
				dist[y] = dx + 1
				queue = append(queue, y)
			}
		}
	}
	return Unreachable
}

// Connected reports whether the graph is connected. The empty graph and
// singleton graphs are connected by convention.
func (g *Graph) Connected() bool {
	if g.NumNodes() <= 1 {
		return true
	}
	var src NodeID
	for u := range g.adj {
		src = u
		break
	}
	return len(g.BFS(src)) == g.NumNodes()
}

// Components returns the connected components as slices of ascending
// NodeIDs, ordered by their smallest member.
func (g *Graph) Components() [][]NodeID {
	seen := make(map[NodeID]struct{}, len(g.adj))
	var comps [][]NodeID
	for _, u := range g.Nodes() {
		if _, ok := seen[u]; ok {
			continue
		}
		var comp []NodeID
		for v := range g.BFS(u) {
			seen[v] = struct{}{}
			comp = append(comp, v)
		}
		sortNodeIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Eccentricity returns the maximum distance from u to any vertex reachable
// from u, and the number of vertices reached. Returns 0,0 for an absent u.
func (g *Graph) Eccentricity(u NodeID) (ecc, reached int) {
	dist := g.BFS(u)
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc, len(dist)
}

// Diameter computes the exact diameter (longest shortest path) of the
// graph by running a BFS from every vertex. It returns Unreachable if the
// graph is disconnected, and 0 for graphs with fewer than two vertices.
func (g *Graph) Diameter() int {
	if g.NumNodes() <= 1 {
		return 0
	}
	n := g.NumNodes()
	diam := 0
	for u := range g.adj {
		ecc, reached := g.Eccentricity(u)
		if reached != n {
			return Unreachable
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// AllPairsDistances runs a BFS from every vertex and returns the full
// distance table. Intended for small and medium graphs (O(n·(n+m)) time).
func (g *Graph) AllPairsDistances() map[NodeID]map[NodeID]int {
	out := make(map[NodeID]map[NodeID]int, len(g.adj))
	for u := range g.adj {
		out[u] = g.BFS(u)
	}
	return out
}

func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
