package graph

import (
	"math/rand"
	"testing"
)

func TestBFSPath(t *testing.T) {
	g := Path(5)
	dist := g.BFS(0)
	for i := 0; i < 5; i++ {
		if dist[NodeID(i)] != i {
			t.Errorf("dist[%d] = %d, want %d", i, dist[NodeID(i)], i)
		}
	}
}

func TestBFSAbsentSource(t *testing.T) {
	g := Path(3)
	if got := g.BFS(42); len(got) != 0 {
		t.Fatalf("BFS of absent vertex returned %v, want empty", got)
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	dist := g.BFS(0)
	if len(dist) != 2 {
		t.Fatalf("BFS reached %d vertices, want 2", len(dist))
	}
	if _, ok := dist[2]; ok {
		t.Fatal("BFS crossed a component boundary")
	}
}

func TestDistance(t *testing.T) {
	g := Cycle(8)
	tests := []struct {
		u, v NodeID
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4, 4},
		{0, 5, 3}, // around the short side
		{3, 7, 4},
	}
	for _, tt := range tests {
		if got := g.Distance(tt.u, tt.v); got != tt.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", tt.u, tt.v, got, tt.want)
		}
	}
	if got := g.Distance(0, 99); got != Unreachable {
		t.Errorf("Distance to absent vertex = %d, want Unreachable", got)
	}
	h := New()
	h.AddNode(1)
	h.AddNode(2)
	if got := h.Distance(1, 2); got != Unreachable {
		t.Errorf("Distance across components = %d, want Unreachable", got)
	}
}

func TestDistanceMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := GNP(40, 0.1, rng)
	dist := g.BFS(0)
	for v, want := range dist {
		if got := g.Distance(0, v); got != want {
			t.Errorf("Distance(0,%d) = %d, BFS says %d", v, got, want)
		}
	}
}

func TestConnected(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"empty", New(), true},
		{"singleton", Star(1), true},
		{"path", Path(10), true},
		{"two components", func() *Graph {
			g := Path(3)
			g.AddNode(99)
			return g
		}(), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Connected(); got != tt.want {
				t.Errorf("Connected = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestComponents(t *testing.T) {
	g := New()
	g.AddEdge(5, 6)
	g.AddEdge(6, 7)
	g.AddEdge(1, 2)
	g.AddNode(9)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	want := [][]NodeID{{1, 2}, {5, 6, 7}, {9}}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
			}
		}
	}
}

func TestDiameter(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"empty", New(), 0},
		{"singleton", Star(1), 0},
		{"path5", Path(5), 4},
		{"cycle6", Cycle(6), 3},
		{"star", Star(9), 2},
		{"complete", Complete(5), 1},
		{"grid3x4", Grid(3, 4), 5},
		{"disconnected", func() *Graph {
			g := Path(3)
			g.AddNode(77)
			return g
		}(), Unreachable},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Diameter(); got != tt.want {
				t.Errorf("Diameter = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestEccentricity(t *testing.T) {
	g := Path(5)
	ecc, reached := g.Eccentricity(0)
	if ecc != 4 || reached != 5 {
		t.Fatalf("Eccentricity(0) = (%d,%d), want (4,5)", ecc, reached)
	}
	ecc, reached = g.Eccentricity(2)
	if ecc != 2 || reached != 5 {
		t.Fatalf("Eccentricity(2) = (%d,%d), want (2,5)", ecc, reached)
	}
	ecc, reached = g.Eccentricity(42)
	if ecc != 0 || reached != 0 {
		t.Fatalf("Eccentricity(absent) = (%d,%d), want (0,0)", ecc, reached)
	}
}

func TestAllPairsDistancesAgainstFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := GNP(25, 0.12, rng)
	nodes := g.Nodes()
	idx := make(map[NodeID]int, len(nodes))
	for i, u := range nodes {
		idx[u] = i
	}
	const inf = 1 << 29
	n := len(nodes)
	fw := make([][]int, n)
	for i := range fw {
		fw[i] = make([]int, n)
		for j := range fw[i] {
			if i == j {
				fw[i][j] = 0
			} else {
				fw[i][j] = inf
			}
		}
	}
	for _, e := range g.Edges() {
		fw[idx[e.U]][idx[e.V]] = 1
		fw[idx[e.V]][idx[e.U]] = 1
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if fw[i][k]+fw[k][j] < fw[i][j] {
					fw[i][j] = fw[i][k] + fw[k][j]
				}
			}
		}
	}
	apd := g.AllPairsDistances()
	for _, u := range nodes {
		for _, v := range nodes {
			want := fw[idx[u]][idx[v]]
			got, ok := apd[u][v]
			if !ok {
				got = inf
			}
			if got != want {
				t.Fatalf("distance(%d,%d) = %d, Floyd-Warshall says %d", u, v, got, want)
			}
		}
	}
}

func TestBFSOrder(t *testing.T) {
	g := Grid(3, 3) // ids 0..8, row-major
	order := g.BFSOrder(4)
	if len(order) != 9 || order[0] != 4 {
		t.Fatalf("BFSOrder(4) = %v", order)
	}
	dist := g.BFS(4)
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		if dist[a] > dist[b] || (dist[a] == dist[b] && a > b) {
			t.Fatalf("BFSOrder(4) not breadth-first ascending: %v", order)
		}
	}
	if g.BFSOrder(99) != nil {
		t.Fatal("BFSOrder of an absent vertex must be nil")
	}
}
