package graph

import "fmt"

// Components is an incrementally-maintained connected-components
// certificate over a Graph. It shadows every mutation of the underlying
// graph (the caller reports each successful AddNode/AddEdge/RemoveEdge/
// RemoveNode) and answers component queries in near-constant time:
//
//   - Same(u, v): are u and v in one component — O(α)
//   - Count(): number of components — O(1)
//   - MarkedCount(): number of components containing a marked node — O(1)
//
// The representation is a label per node plus a union–find forest over
// the labels themselves. Edge insertions union two label roots (O(α));
// edge deletions run an interleaved bidirectional BFS from the two
// endpoints on the already-updated graph: if the searches meet the
// component survived and nothing changes; if one side exhausts first,
// that side — the smaller, up to the interleaving — is a new component
// and is relabeled with one fresh label. The search scratch (generation-
// stamped visited maps and reusable queues) is retained across calls, so
// steady-state updates allocate nothing.
//
// Marks are an orthogonal per-node bit with per-component counts; the
// Forgiving Graph driver marks the live nodes of G′ so MarkedCount
// counts components restricted to live vertices without enumerating the
// dead ones.
//
// Components is a certificate, not an authority: Check recomputes the
// partition from the graph by BFS and verifies the labels are a
// bijective relabeling of it, and Relabel rebuilds the certificate from
// the graph (the heal action when an audit detects corruption).
type Components struct {
	g      *Graph
	comp   map[NodeID]int64 // node -> label
	parent map[int64]int64  // label union-find; absent entry = self-root
	next   int64            // last label handed out
	count  int              // number of components

	marked      map[NodeID]struct{} // marked nodes
	markedCnt   map[int64]int       // root label -> marked nodes in component
	markedComps int                 // components with >= 1 marked node

	// damaged is set when an update observes a state that cannot occur
	// under correct maintenance (e.g. removing an edge whose endpoints
	// already carry different labels). It is sticky until Relabel.
	damaged bool

	// Split-search scratch, retained across RemoveEdge calls.
	visitA, visitB map[NodeID]uint64
	genA, genB     uint64
	queueA, queueB []NodeID
}

// NewComponents builds the certificate for the current state of g by a
// full BFS labeling. g is observed, not owned: the caller must report
// every subsequent mutation through the On* methods.
func NewComponents(g *Graph) *Components {
	c := &Components{
		g:         g,
		comp:      make(map[NodeID]int64, g.NumNodes()),
		parent:    make(map[int64]int64),
		marked:    make(map[NodeID]struct{}),
		markedCnt: make(map[int64]int),
		visitA:    make(map[NodeID]uint64),
		visitB:    make(map[NodeID]uint64),
	}
	c.relabel()
	return c
}

// fresh returns a never-used label (a self-root: no parent entry).
func (c *Components) fresh() int64 {
	c.next++
	return c.next
}

// find returns the root of a label with path compression. Labels with
// no parent entry are their own root, so fresh labels cost nothing.
func (c *Components) find(l int64) int64 {
	r := l
	for {
		p, ok := c.parent[r]
		if !ok || p == r {
			break
		}
		r = p
	}
	for l != r {
		p := c.parent[l]
		c.parent[l] = r
		l = p
	}
	return r
}

// rootOf returns the component root of node v, creating a singleton
// component defensively if v was never registered.
func (c *Components) rootOf(v NodeID) int64 {
	l, ok := c.comp[v]
	if !ok {
		l = c.fresh()
		c.comp[v] = l
		c.count++
		return l
	}
	return c.find(l)
}

// Count returns the number of connected components.
func (c *Components) Count() int { return c.count }

// MarkedCount returns the number of components containing at least one
// marked node.
func (c *Components) MarkedCount() int { return c.markedComps }

// Same reports whether u and v carry labels in the same component.
func (c *Components) Same(u, v NodeID) bool {
	lu, ok := c.comp[u]
	if !ok {
		return false
	}
	lv, ok := c.comp[v]
	if !ok {
		return false
	}
	return c.find(lu) == c.find(lv)
}

// Damaged reports whether an update observed an impossible state (a
// symptom of external corruption). Sticky until Relabel.
func (c *Components) Damaged() bool { return c.damaged }

// OnAddNode registers a new isolated vertex as its own component.
func (c *Components) OnAddNode(v NodeID) {
	if _, ok := c.comp[v]; ok {
		return
	}
	c.comp[v] = c.fresh()
	c.count++
}

// OnRemoveNode unregisters a vertex. The caller must have removed its
// incident edges first (reporting each via OnRemoveEdge), so the vertex
// is an isolated singleton component at this point.
func (c *Components) OnRemoveNode(v NodeID) {
	l, ok := c.comp[v]
	if !ok {
		return
	}
	c.Unmark(v)
	delete(c.comp, v)
	delete(c.parent, l)
	c.count--
}

// OnAddEdge merges the endpoints' components (union of the label
// roots). Call it only after g.AddEdge reported a new edge.
func (c *Components) OnAddEdge(u, v NodeID) {
	ru, rv := c.rootOf(u), c.rootOf(v)
	if ru == rv {
		return
	}
	if ru > rv {
		ru, rv = rv, ru
	}
	c.parent[rv] = ru
	if mv := c.markedCnt[rv]; mv > 0 {
		if c.markedCnt[ru] > 0 {
			c.markedComps--
		}
		c.markedCnt[ru] += mv
		delete(c.markedCnt, rv)
	}
	c.count--
}

// OnRemoveEdge reconciles the certificate after the edge {u, v} was
// removed from g. It runs an interleaved bidirectional BFS from both
// endpoints on the post-removal graph: meeting proves the component
// survived; one side exhausting proves a split, and that side (the
// smaller, up to interleaving) is relabeled fresh. Cost is O(min side)
// on a split and O(shortest alternative path) otherwise.
func (c *Components) OnRemoveEdge(u, v NodeID) {
	ru, rv := c.rootOf(u), c.rootOf(v)
	if ru != rv {
		// An edge that existed joined one component; differing labels
		// mean the certificate no longer matches the graph.
		c.damaged = true
		return
	}
	c.genA++
	c.genB++
	qa, qb := c.queueA[:0], c.queueB[:0]
	c.visitA[u] = c.genA
	qa = append(qa, u)
	c.visitB[v] = c.genB
	qb = append(qb, v)
	ia, ib := 0, 0
	met := false
	for !met {
		if ia == len(qa) {
			c.splitOff(qa, ru)
			break
		}
		if ib == len(qb) {
			c.splitOff(qb, ru)
			break
		}
		x := qa[ia]
		ia++
		c.g.EachNeighbor(x, func(y NodeID) {
			if c.visitB[y] == c.genB {
				met = true
			}
			if c.visitA[y] != c.genA {
				c.visitA[y] = c.genA
				qa = append(qa, y)
			}
		})
		if met {
			break
		}
		x = qb[ib]
		ib++
		c.g.EachNeighbor(x, func(y NodeID) {
			if c.visitA[y] == c.genA {
				met = true
			}
			if c.visitB[y] != c.genB {
				c.visitB[y] = c.genB
				qb = append(qb, y)
			}
		})
	}
	c.queueA, c.queueB = qa[:0], qb[:0]
}

// splitOff relabels one enumerated side of a split as a fresh
// component and adjusts the counts. oldRoot is the root label the
// component carried before the split.
func (c *Components) splitOff(side []NodeID, oldRoot int64) {
	f := c.fresh()
	mcnt := 0
	for _, w := range side {
		c.comp[w] = f
		if _, ok := c.marked[w]; ok {
			mcnt++
		}
	}
	c.count++
	if mcnt > 0 || c.markedCnt[oldRoot] > 0 {
		before := c.markedCnt[oldRoot] > 0
		c.markedCnt[oldRoot] -= mcnt
		oldHas := c.markedCnt[oldRoot] > 0
		if !oldHas {
			delete(c.markedCnt, oldRoot)
		}
		if mcnt > 0 {
			c.markedCnt[f] = mcnt
		}
		c.markedComps += b2i(oldHas) + b2i(mcnt > 0) - b2i(before)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Mark sets the mark bit on v (idempotent).
func (c *Components) Mark(v NodeID) {
	if _, ok := c.marked[v]; ok {
		return
	}
	c.marked[v] = struct{}{}
	r := c.rootOf(v)
	c.markedCnt[r]++
	if c.markedCnt[r] == 1 {
		c.markedComps++
	}
}

// Unmark clears the mark bit on v (idempotent).
func (c *Components) Unmark(v NodeID) {
	if _, ok := c.marked[v]; !ok {
		return
	}
	delete(c.marked, v)
	r := c.rootOf(v)
	c.markedCnt[r]--
	if c.markedCnt[r] == 0 {
		delete(c.markedCnt, r)
		c.markedComps--
	}
}

// ForgeLabel is a fault-injection hook: it silently assigns v a fresh
// label with no count or mark bookkeeping, returning the bogus label.
// Used by the corruption campaign; never called in correct operation.
func (c *Components) ForgeLabel(v NodeID) int64 {
	f := c.fresh()
	c.comp[v] = f
	return f
}

// SkewCount is a fault-injection hook: it silently offsets the
// component counter and the marked-component counter by d with no
// bookkeeping. Never called in correct operation.
func (c *Components) SkewCount(d int) {
	c.count += d
	c.markedComps += d
}

// Relabel rebuilds the certificate from the graph, discarding all label
// state but preserving the set of marked nodes (restricted to nodes
// still present). This is the heal action after detected corruption.
func (c *Components) Relabel() {
	clear(c.comp)
	clear(c.parent)
	clear(c.markedCnt)
	c.relabel()
}

// relabel performs the full BFS labeling shared by NewComponents and
// Relabel, recomputing count, markedCnt and markedComps.
func (c *Components) relabel() {
	c.count = 0
	c.markedComps = 0
	c.damaged = false
	c.genA++
	q := c.queueA[:0]
	for _, src := range c.g.Nodes() {
		if c.visitA[src] == c.genA {
			continue
		}
		l := c.fresh()
		c.count++
		mcnt := 0
		c.visitA[src] = c.genA
		q = append(q[:0], src)
		for i := 0; i < len(q); i++ {
			w := q[i]
			c.comp[w] = l
			if _, ok := c.marked[w]; ok {
				mcnt++
			}
			c.g.EachNeighbor(w, func(y NodeID) {
				if c.visitA[y] != c.genA {
					c.visitA[y] = c.genA
					q = append(q, y)
				}
			})
		}
		if mcnt > 0 {
			c.markedCnt[l] = mcnt
			c.markedComps++
		}
	}
	c.queueA = q[:0]
	// Drop marks on nodes no longer in the graph.
	for v := range c.marked {
		if !c.g.HasNode(v) {
			delete(c.marked, v)
		}
	}
}

// Check recomputes the partition of g by BFS and verifies the
// certificate is a bijective relabeling of it: every node carries a
// label, nodes share a find-root exactly when they share a BFS
// component, and the cached counters match. O(n + m) — the authority
// the incremental state is audited against.
func (c *Components) Check() error {
	if c.damaged {
		return fmt.Errorf("components: damaged flag set (inconsistent update observed)")
	}
	if len(c.comp) != c.g.NumNodes() {
		return fmt.Errorf("components: %d labels for %d nodes", len(c.comp), c.g.NumNodes())
	}
	seen := make(map[NodeID]bool, c.g.NumNodes())
	certToBFS := make(map[int64]NodeID) // cert root -> BFS source (bijection check)
	comps, markedComps := 0, 0
	var q []NodeID
	for _, src := range c.g.Nodes() {
		if seen[src] {
			continue
		}
		comps++
		l, ok := c.comp[src]
		if !ok {
			return fmt.Errorf("components: node %d has no label", src)
		}
		root := c.find(l)
		if prev, dup := certToBFS[root]; dup {
			return fmt.Errorf("components: label root %d spans BFS components of %d and %d", root, prev, src)
		}
		certToBFS[root] = src
		mcnt := 0
		seen[src] = true
		q = append(q[:0], src)
		for i := 0; i < len(q); i++ {
			w := q[i]
			lw, ok := c.comp[w]
			if !ok {
				return fmt.Errorf("components: node %d has no label", w)
			}
			if c.find(lw) != root {
				return fmt.Errorf("components: node %d (root %d) disagrees with BFS component of %d (root %d)",
					w, c.find(lw), src, root)
			}
			if _, ok := c.marked[w]; ok {
				mcnt++
			}
			c.g.EachNeighbor(w, func(y NodeID) {
				if !seen[y] {
					seen[y] = true
					q = append(q, y)
				}
			})
		}
		if got := c.markedCnt[root]; got != mcnt {
			return fmt.Errorf("components: component of %d has %d marked nodes, counter says %d", src, mcnt, got)
		}
		if mcnt > 0 {
			markedComps++
		}
	}
	if comps != c.count {
		return fmt.Errorf("components: %d components, counter says %d", comps, c.count)
	}
	if markedComps != c.markedComps {
		return fmt.Errorf("components: %d marked components, counter says %d", markedComps, c.markedComps)
	}
	for v := range c.marked {
		if !c.g.HasNode(v) {
			return fmt.Errorf("components: marked node %d not in graph", v)
		}
	}
	return nil
}
