package graph

import (
	"math/rand"
	"testing"
)

// TestComponentsIncremental drives a random mutation campaign and
// cross-checks the incremental certificate against the BFS authority
// after every single operation (the PR 2/PR 4 differential pattern).
func TestComponentsIncremental(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		c := NewComponents(g)
		var nodes []NodeID
		next := NodeID(0)
		for op := 0; op < 800; op++ {
			switch k := rng.Intn(10); {
			case k < 3 || len(nodes) < 2: // add node
				next++
				g.AddNode(next)
				c.OnAddNode(next)
				if rng.Intn(2) == 0 {
					c.Mark(next)
				}
				nodes = append(nodes, next)
			case k < 7: // add edge
				u := nodes[rng.Intn(len(nodes))]
				v := nodes[rng.Intn(len(nodes))]
				if g.AddEdge(u, v) {
					c.OnAddEdge(u, v)
				}
			case k < 9: // remove a random existing edge
				u := nodes[rng.Intn(len(nodes))]
				nbrs := g.Neighbors(u)
				if len(nbrs) == 0 {
					continue
				}
				v := nbrs[rng.Intn(len(nbrs))]
				if g.RemoveEdge(u, v) {
					c.OnRemoveEdge(u, v)
				}
			default: // remove an isolated node, or toggle a mark
				removed := false
				for _, i := range rng.Perm(len(nodes)) {
					if g.Degree(nodes[i]) == 0 {
						v := nodes[i]
						g.RemoveNode(v)
						c.OnRemoveNode(v)
						nodes[i] = nodes[len(nodes)-1]
						nodes = nodes[:len(nodes)-1]
						removed = true
						break
					}
				}
				if !removed {
					v := nodes[rng.Intn(len(nodes))]
					if rng.Intn(2) == 0 {
						c.Mark(v)
					} else {
						c.Unmark(v)
					}
				}
			}
			if err := c.Check(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
		}
	}
}

// TestComponentsSplitMerge exercises the split/merge choreography on a
// hand-built topology where the answers are known.
func TestComponentsSplitMerge(t *testing.T) {
	g := New()
	c := NewComponents(g)
	// Path 1-2-3-4 plus isolated 5.
	for v := NodeID(1); v <= 5; v++ {
		g.AddNode(v)
		c.OnAddNode(v)
		c.Mark(v)
	}
	for v := NodeID(1); v < 4; v++ {
		g.AddEdge(v, v+1)
		c.OnAddEdge(v, v+1)
	}
	if c.Count() != 2 || c.MarkedCount() != 2 {
		t.Fatalf("path+isolated: count=%d marked=%d, want 2/2", c.Count(), c.MarkedCount())
	}
	if !c.Same(1, 4) || c.Same(1, 5) {
		t.Fatalf("Same answers wrong on path+isolated")
	}
	// Cycle closure: removing one cycle edge must NOT split.
	g.AddEdge(4, 1)
	c.OnAddEdge(4, 1)
	g.RemoveEdge(2, 3)
	c.OnRemoveEdge(2, 3)
	if c.Count() != 2 || !c.Same(2, 3) {
		t.Fatalf("cycle edge removal split: count=%d", c.Count())
	}
	// Now a real split: cut the path 2-1-4-3 between 1 and 4.
	g.RemoveEdge(1, 4)
	c.OnRemoveEdge(1, 4)
	if c.Count() != 3 || c.Same(1, 3) || !c.Same(1, 2) || !c.Same(3, 4) {
		t.Fatalf("real split wrong: count=%d", c.Count())
	}
	if c.MarkedCount() != 3 {
		t.Fatalf("marked count after split = %d, want 3", c.MarkedCount())
	}
	// Unmark one whole side: its component stops counting.
	c.Unmark(3)
	c.Unmark(4)
	if c.MarkedCount() != 2 {
		t.Fatalf("marked count after unmark = %d, want 2", c.MarkedCount())
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestComponentsCorruptionHooks verifies the fault-injection hooks are
// detected by Check and healed by Relabel.
func TestComponentsCorruptionHooks(t *testing.T) {
	g := New()
	c := NewComponents(g)
	for v := NodeID(1); v <= 4; v++ {
		g.AddNode(v)
		c.OnAddNode(v)
		c.Mark(v)
	}
	g.AddEdge(1, 2)
	c.OnAddEdge(1, 2)
	g.AddEdge(3, 4)
	c.OnAddEdge(3, 4)

	c.ForgeLabel(2)
	if err := c.Check(); err == nil {
		t.Fatal("Check missed a forged label")
	}
	c.Relabel()
	if err := c.Check(); err != nil {
		t.Fatalf("Relabel did not heal forged label: %v", err)
	}
	if c.Count() != 2 || c.MarkedCount() != 2 {
		t.Fatalf("post-heal counts wrong: %d/%d", c.Count(), c.MarkedCount())
	}

	c.SkewCount(1)
	if err := c.Check(); err == nil {
		t.Fatal("Check missed a skewed counter")
	}
	c.Relabel()
	if err := c.Check(); err != nil {
		t.Fatalf("Relabel did not heal skewed counter: %v", err)
	}
}

// TestComponentsSteadyStateAllocs pins the zero-allocation property of
// the hot update path: once the search scratch is warm, removing and
// re-adding a cycle edge (the no-split case — the common one under
// protocol churn, where the graph stays connected) allocates nothing.
// Splits mint one fresh label each, which amortizes into rare map
// growth, so only the surviving-component path is pinned at zero.
func TestComponentsSteadyStateAllocs(t *testing.T) {
	g := New()
	for v := NodeID(1); v <= 64; v++ {
		g.AddNode(v)
	}
	for v := NodeID(1); v < 64; v++ {
		g.AddEdge(v, v+1)
	}
	g.AddEdge(64, 1) // close the cycle
	c := NewComponents(g)
	// Warm the bidirectional-search scratch once.
	g.RemoveEdge(32, 33)
	c.OnRemoveEdge(32, 33)
	g.AddEdge(32, 33)
	c.OnAddEdge(32, 33)
	avg := testing.AllocsPerRun(100, func() {
		g.RemoveEdge(32, 33)
		c.OnRemoveEdge(32, 33)
		g.AddEdge(32, 33)
		c.OnAddEdge(32, 33)
	})
	if avg > 0 {
		t.Fatalf("non-split remove/add cycle allocates %.1f per run, want 0", avg)
	}
}
