package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// jsonGraph is the wire form used by MarshalJSON/UnmarshalJSON.
type jsonGraph struct {
	Nodes []NodeID    `json:"nodes"`
	Edges [][2]NodeID `json:"edges"`
}

// MarshalJSON encodes the graph as {"nodes":[...],"edges":[[u,v],...]}
// with deterministic ordering.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Nodes: g.Nodes()}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, [2]NodeID{e.U, e.V})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes the format produced by MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: decode: %w", err)
	}
	g.adj = make(map[NodeID]map[NodeID]struct{}, len(jg.Nodes))
	g.m = 0
	for _, u := range jg.Nodes {
		g.AddNode(u)
	}
	for _, e := range jg.Edges {
		if e[0] == e[1] {
			return fmt.Errorf("graph: decode: self-loop on %d", e[0])
		}
		g.AddEdge(e[0], e[1])
	}
	return nil
}

// WriteEdgeList writes one "u v" pair per line followed by isolated
// vertices as single-token lines, in deterministic order.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return fmt.Errorf("graph: write edge list: %w", err)
		}
	}
	for _, u := range g.Nodes() {
		if g.Degree(u) == 0 {
			if _, err := fmt.Fprintf(bw, "%d\n", u); err != nil {
				return fmt.Errorf("graph: write edge list: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: write edge list: %w", err)
	}
	return nil
}

// ReadEdgeList parses the format written by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch len(fields) {
		case 1:
			u, err := strconv.ParseInt(fields[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			g.AddNode(NodeID(u))
		case 2:
			u, err := strconv.ParseInt(fields[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			g.AddEdge(NodeID(u), NodeID(v))
		default:
			return nil, fmt.Errorf("graph: line %d: expected 1 or 2 fields, got %d", lineNo, len(fields))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read edge list: %w", err)
	}
	return g, nil
}

// DOT renders the graph in Graphviz DOT syntax, for debugging and for the
// figure-reproduction tooling.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	for _, u := range g.Nodes() {
		fmt.Fprintf(&b, "  %d;\n", u)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %d -- %d;\n", e.U, e.V)
	}
	b.WriteString("}\n")
	return b.String()
}
