package graph

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := GNP(25, 0.15, rng)
	g.AddNode(500) // isolated vertex must survive
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !g.Equal(&back) {
		t.Fatal("JSON round trip changed the graph")
	}
}

func TestJSONDeterministic(t *testing.T) {
	g := Star(5)
	a, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("marshal not deterministic: %s vs %s", a, b)
	}
}

func TestUnmarshalRejectsSelfLoop(t *testing.T) {
	var g Graph
	err := json.Unmarshal([]byte(`{"nodes":[1],"edges":[[1,1]]}`), &g)
	if err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"edges": "zzz"}`), &g); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := GNM(20, 40, rng)
	g.AddNode(777)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !g.Equal(back) {
		t.Fatal("edge list round trip changed the graph")
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1 2\n \n3\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d, want n=3 m=2", g.NumNodes(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"too many fields", "1 2 3\n"},
		{"non-numeric single", "abc\n"},
		{"non-numeric pair left", "x 2\n"},
		{"non-numeric pair right", "2 y\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tt.in)); err == nil {
				t.Fatalf("input %q accepted", tt.in)
			}
		})
	}
}

func TestDOT(t *testing.T) {
	g := Path(3)
	dot := g.DOT("p3")
	for _, want := range []string{`graph "p3"`, "0 -- 1", "1 -- 2"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
