package graph

import (
	"fmt"
	"math/rand"
)

// Generators build the initial topologies used by the experiments. All
// generators number vertices 0..n-1 and are deterministic given the
// provided *rand.Rand (generators that need no randomness ignore it).

// Star returns K_{1,n-1}: vertex 0 is the hub. This is the lower-bound
// topology of Theorem 2.
func Star(n int) *Graph {
	g := New()
	if n <= 0 {
		return g
	}
	g.AddNode(0)
	for i := 1; i < n; i++ {
		g.AddEdge(0, NodeID(i))
	}
	return g
}

// Path returns the path graph P_n: 0-1-2-...-(n-1).
func Path(n int) *Graph {
	g := New()
	if n <= 0 {
		return g
	}
	g.AddNode(0)
	for i := 1; i < n; i++ {
		g.AddEdge(NodeID(i-1), NodeID(i))
	}
	return g
}

// Cycle returns the cycle graph C_n. For n < 3 it degenerates to Path(n).
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		g.AddEdge(NodeID(n-1), 0)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i))
		for j := 0; j < i; j++ {
			g.AddEdge(NodeID(j), NodeID(i))
		}
	}
	return g
}

// Grid returns the rows×cols king-free grid (4-neighborhood lattice).
func Grid(rows, cols int) *Graph {
	g := New()
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddNode(id(r, c))
			if r > 0 {
				g.AddEdge(id(r-1, c), id(r, c))
			}
			if c > 0 {
				g.AddEdge(id(r, c-1), id(r, c))
			}
		}
	}
	return g
}

// CompleteBinaryTree returns a complete binary tree with n vertices in
// heap order: vertex i has children 2i+1 and 2i+2.
func CompleteBinaryTree(n int) *Graph {
	g := New()
	if n <= 0 {
		return g
	}
	g.AddNode(0)
	for i := 1; i < n; i++ {
		g.AddEdge(NodeID((i-1)/2), NodeID(i))
	}
	return g
}

// GNP returns an Erdős–Rényi G(n, p) random graph. To guarantee a
// connected substrate for the healing experiments, a Hamiltonian-ish
// random spanning path is added first; extra edges are then sampled
// independently with probability p. Use RawGNP for the unmodified model.
func GNP(n int, p float64, rng *rand.Rand) *Graph {
	g := spanningPath(n, rng)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return g
}

// RawGNP returns an unmodified Erdős–Rényi G(n, p) sample, which may be
// disconnected.
func RawGNP(n int, p float64, rng *rand.Rand) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return g
}

// GNM returns a uniform random graph with n vertices and m edges on top of
// a random spanning path (so the result is connected). m counts the total
// edge budget; if m is less than n-1 the spanning path alone is returned.
func GNM(n, m int, rng *rand.Rand) *Graph {
	g := spanningPath(n, rng)
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	for g.NumEdges() < m {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		g.AddEdge(u, v)
	}
	return g
}

// PreferentialAttachment returns a Barabási–Albert power-law graph: each
// new vertex attaches k edges to existing vertices chosen proportionally
// to degree. The seed is a (k+1)-clique. This is the "power-law network"
// topology referenced by the paper's cascading-failure discussion.
func PreferentialAttachment(n, k int, rng *rand.Rand) *Graph {
	if k < 1 {
		k = 1
	}
	if n <= k+1 {
		return Complete(n)
	}
	g := Complete(k + 1)
	// repeated-endpoint list: vertex appears once per unit of degree.
	var stubs []NodeID
	for _, e := range g.Edges() {
		stubs = append(stubs, e.U, e.V)
	}
	for i := k + 1; i < n; i++ {
		u := NodeID(i)
		g.AddNode(u)
		chosen := make(map[NodeID]struct{}, k)
		targets := make([]NodeID, 0, k)
		for len(chosen) < k {
			t := stubs[rng.Intn(len(stubs))]
			if t == u {
				continue
			}
			if _, dup := chosen[t]; dup {
				continue
			}
			chosen[t] = struct{}{}
			targets = append(targets, t)
		}
		for _, t := range targets {
			g.AddEdge(u, t)
			stubs = append(stubs, u, t)
		}
	}
	return g
}

// Hypercube returns the dim-dimensional hypercube Q_dim over 2^dim
// vertices: i and j are adjacent iff they differ in exactly one bit.
// The classic structured-P2P topology.
func Hypercube(dim int) *Graph {
	g := New()
	if dim < 0 {
		return g
	}
	n := 1 << uint(dim)
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i))
		for b := 0; b < dim; b++ {
			j := i ^ (1 << uint(b))
			if j < i {
				g.AddEdge(NodeID(j), NodeID(i))
			}
		}
	}
	return g
}

// SmallWorld returns a Watts–Strogatz graph: a ring lattice where each
// vertex connects to its k nearest neighbors on each side, with each
// edge rewired to a random endpoint with probability beta. k >= 1;
// beta in [0,1]. The unstructured-P2P / social-network topology.
func SmallWorld(n, k int, beta float64, rng *rand.Rand) *Graph {
	g := New()
	if n <= 0 {
		return g
	}
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i))
	}
	if k < 1 {
		k = 1
	}
	for i := 0; i < n; i++ {
		for d := 1; d <= k; d++ {
			j := (i + d) % n
			if i == j {
				continue
			}
			u, v := NodeID(i), NodeID(j)
			if rng.Float64() < beta {
				// Rewire the far endpoint uniformly, avoiding
				// self-loops and duplicates (keep the lattice edge on
				// failure to preserve degree mass).
				for attempt := 0; attempt < 8; attempt++ {
					w := NodeID(rng.Intn(n))
					if w != u && !g.HasEdge(u, w) {
						v = w
						break
					}
				}
			}
			g.AddEdge(u, v)
		}
	}
	return g
}

// RandomRegular returns a random d-regular graph via the configuration
// model with restarts. n·d must be even and d < n.
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if d >= n {
		return nil, fmt.Errorf("graph: cannot build %d-regular graph on %d vertices", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n*d must be even (n=%d d=%d)", n, d)
	}
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if g, ok := tryConfigurationModel(n, d, rng); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: configuration model failed after %d attempts (n=%d d=%d)", maxAttempts, n, d)
}

func tryConfigurationModel(n, d int, rng *rand.Rand) (*Graph, bool) {
	stubs := make([]NodeID, 0, n*d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			stubs = append(stubs, NodeID(i))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i))
	}
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			return nil, false
		}
		g.AddEdge(u, v)
	}
	return g, true
}

// spanningPath returns a path over 0..n-1 visiting the vertices in a
// random order, guaranteeing connectivity of the generators built on it.
func spanningPath(n int, rng *rand.Rand) *Graph {
	g := New()
	if n <= 0 {
		return g
	}
	perm := rng.Perm(n)
	g.AddNode(NodeID(perm[0]))
	for i := 1; i < n; i++ {
		g.AddEdge(NodeID(perm[i-1]), NodeID(perm[i]))
	}
	return g
}

// GeneratorFunc builds a topology of the requested size with the supplied
// randomness source.
type GeneratorFunc func(n int, rng *rand.Rand) *Graph

// Named generators, keyed by the names accepted by the CLI tools.
var namedGenerators = map[string]GeneratorFunc{
	"star":     func(n int, _ *rand.Rand) *Graph { return Star(n) },
	"path":     func(n int, _ *rand.Rand) *Graph { return Path(n) },
	"cycle":    func(n int, _ *rand.Rand) *Graph { return Cycle(n) },
	"complete": func(n int, _ *rand.Rand) *Graph { return Complete(n) },
	"tree":     func(n int, _ *rand.Rand) *Graph { return CompleteBinaryTree(n) },
	"grid": func(n int, _ *rand.Rand) *Graph {
		side := 1
		for side*side < n {
			side++
		}
		return Grid(side, side)
	},
	"gnp": func(n int, rng *rand.Rand) *Graph {
		p := 4.0 / float64(n)
		if n < 5 {
			p = 0.8
		}
		return GNP(n, p, rng)
	},
	"powerlaw": func(n int, rng *rand.Rand) *Graph { return PreferentialAttachment(n, 3, rng) },
	"hypercube": func(n int, _ *rand.Rand) *Graph {
		dim := 0
		for 1<<uint(dim) < n {
			dim++
		}
		return Hypercube(dim)
	},
	"smallworld": func(n int, rng *rand.Rand) *Graph { return SmallWorld(n, 2, 0.1, rng) },
}

// Generator looks up a topology generator by name. The supported names are
// star, path, cycle, complete, tree, grid, gnp, and powerlaw.
func Generator(name string) (GeneratorFunc, error) {
	gen, ok := namedGenerators[name]
	if !ok {
		return nil, fmt.Errorf("graph: unknown generator %q", name)
	}
	return gen, nil
}

// GeneratorNames lists the registered generator names in sorted order.
func GeneratorNames() []string {
	names := make([]string, 0, len(namedGenerators))
	for name := range namedGenerators {
		names = append(names, name)
	}
	sortStrings(names)
	return names
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
