package graph

import (
	"math/rand"
	"testing"
)

func TestStar(t *testing.T) {
	g := Star(6)
	if g.NumNodes() != 6 || g.NumEdges() != 5 {
		t.Fatalf("Star(6): n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(0) != 5 {
		t.Fatalf("hub degree = %d, want 5", g.Degree(0))
	}
	for i := 1; i < 6; i++ {
		if g.Degree(NodeID(i)) != 1 {
			t.Fatalf("leaf %d degree = %d, want 1", i, g.Degree(NodeID(i)))
		}
	}
	if got := Star(0).NumNodes(); got != 0 {
		t.Fatalf("Star(0) has %d nodes", got)
	}
	if got := Star(1); got.NumNodes() != 1 || got.NumEdges() != 0 {
		t.Fatalf("Star(1): %v", got)
	}
}

func TestPathAndCycle(t *testing.T) {
	p := Path(4)
	if p.NumEdges() != 3 || p.Diameter() != 3 {
		t.Fatalf("Path(4): m=%d diam=%d", p.NumEdges(), p.Diameter())
	}
	c := Cycle(4)
	if c.NumEdges() != 4 || c.Diameter() != 2 {
		t.Fatalf("Cycle(4): m=%d diam=%d", c.NumEdges(), c.Diameter())
	}
	// Degenerate cycles.
	if got := Cycle(2); got.NumEdges() != 1 {
		t.Fatalf("Cycle(2) edges = %d, want 1 (degenerates to path)", got.NumEdges())
	}
	if got := Cycle(0); got.NumNodes() != 0 {
		t.Fatalf("Cycle(0) nodes = %d", got.NumNodes())
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.NumEdges() != 15 {
		t.Fatalf("K6 edges = %d, want 15", g.NumEdges())
	}
	for _, u := range g.Nodes() {
		if g.Degree(u) != 5 {
			t.Fatalf("K6 degree(%d) = %d, want 5", u, g.Degree(u))
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumNodes() != 12 {
		t.Fatalf("Grid(3,4) nodes = %d", g.NumNodes())
	}
	// edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17
	if g.NumEdges() != 17 {
		t.Fatalf("Grid(3,4) edges = %d, want 17", g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("grid not connected")
	}
	// Corner degree 2, center degree 4.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree = %d, want 2", g.Degree(0))
	}
	if g.Degree(5) != 4 { // row 1, col 1
		t.Fatalf("interior degree = %d, want 4", g.Degree(5))
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(7)
	if g.NumEdges() != 6 {
		t.Fatalf("tree edges = %d, want 6", g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 3 || g.Degree(3) != 1 {
		t.Fatalf("unexpected degrees: root=%d internal=%d leaf=%d",
			g.Degree(0), g.Degree(1), g.Degree(3))
	}
	if !g.Connected() {
		t.Fatal("tree not connected")
	}
}

func TestGNPConnectedAndDeterministic(t *testing.T) {
	a := GNP(60, 0.05, rand.New(rand.NewSource(3)))
	b := GNP(60, 0.05, rand.New(rand.NewSource(3)))
	if !a.Equal(b) {
		t.Fatal("GNP not deterministic for fixed seed")
	}
	if !a.Connected() {
		t.Fatal("GNP should be connected (spanning path included)")
	}
	c := GNP(60, 0.05, rand.New(rand.NewSource(4)))
	if a.Equal(c) {
		t.Fatal("different seeds produced identical GNP graphs")
	}
}

func TestRawGNPExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	empty := RawGNP(10, 0, rng)
	if empty.NumEdges() != 0 || empty.NumNodes() != 10 {
		t.Fatalf("RawGNP(10,0): n=%d m=%d", empty.NumNodes(), empty.NumEdges())
	}
	full := RawGNP(10, 1, rng)
	if full.NumEdges() != 45 {
		t.Fatalf("RawGNP(10,1) edges = %d, want 45", full.NumEdges())
	}
}

func TestGNM(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := GNM(30, 60, rng)
	if g.NumEdges() != 60 {
		t.Fatalf("GNM edges = %d, want 60", g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("GNM not connected")
	}
	// m below the spanning path: path wins.
	small := GNM(10, 3, rand.New(rand.NewSource(5)))
	if small.NumEdges() != 9 {
		t.Fatalf("GNM(10,3) edges = %d, want 9 (spanning path)", small.NumEdges())
	}
	// m above the maximum is clamped.
	huge := GNM(5, 1000, rand.New(rand.NewSource(5)))
	if huge.NumEdges() != 10 {
		t.Fatalf("GNM(5,1000) edges = %d, want 10", huge.NumEdges())
	}
}

func TestPreferentialAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := PreferentialAttachment(200, 3, rng)
	if g.NumNodes() != 200 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatal("preferential attachment graph not connected")
	}
	// Every non-seed vertex attaches exactly 3 edges, so m = C(4,2) + 3*196.
	want := 6 + 3*196
	if g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	// Power-law-ish: the max degree should far exceed the minimum (3).
	_, maxDeg := g.MaxDegree()
	if maxDeg < 10 {
		t.Fatalf("max degree = %d, expected a hub (>=10)", maxDeg)
	}
	// Small n degenerates to a clique.
	small := PreferentialAttachment(3, 3, rng)
	if small.NumEdges() != 3 {
		t.Fatalf("PA(3,3) edges = %d, want 3 (K3)", small.NumEdges())
	}
}

func TestPreferentialAttachmentDeterministic(t *testing.T) {
	// Not just the edge count: the exact wiring and the number of rng
	// draws must be reproducible (map-iteration order must not leak).
	gen := func() (*Graph, int) {
		rng := rand.New(rand.NewSource(17))
		g := PreferentialAttachment(50, 3, rng)
		return g, rng.Intn(1 << 30)
	}
	g1, next1 := gen()
	g2, next2 := gen()
	if !g1.Equal(g2) {
		t.Fatal("same seed produced different graphs")
	}
	if next1 != next2 {
		t.Fatal("same seed consumed different numbers of rng draws")
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.NumNodes() != 16 || g.NumEdges() != 32 { // n*dim/2
		t.Fatalf("Q4: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	for _, u := range g.Nodes() {
		if g.Degree(u) != 4 {
			t.Fatalf("Q4 degree(%d) = %d", u, g.Degree(u))
		}
	}
	if g.Diameter() != 4 {
		t.Fatalf("Q4 diameter = %d, want 4", g.Diameter())
	}
	if !g.HasEdge(0b0101, 0b0100) || g.HasEdge(0b0101, 0b0110) {
		t.Fatal("hypercube adjacency wrong")
	}
	if got := Hypercube(0); got.NumNodes() != 1 {
		t.Fatalf("Q0 nodes = %d", got.NumNodes())
	}
	if got := Hypercube(-1); got.NumNodes() != 0 {
		t.Fatalf("Q(-1) nodes = %d", got.NumNodes())
	}
}

func TestSmallWorld(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// beta = 0: the pure ring lattice, exactly n*k edges.
	lattice := SmallWorld(30, 2, 0, rng)
	if lattice.NumEdges() != 60 {
		t.Fatalf("lattice edges = %d, want 60", lattice.NumEdges())
	}
	if !lattice.Connected() {
		t.Fatal("lattice disconnected")
	}
	latticeDiam := lattice.Diameter()
	// beta = 0.2: rewiring shrinks the diameter (small-world effect).
	sw := SmallWorld(30, 2, 0.2, rand.New(rand.NewSource(7)))
	if !sw.Connected() {
		t.Fatal("small world disconnected")
	}
	if sw.Diameter() >= latticeDiam {
		t.Fatalf("rewiring did not shrink diameter: %d vs %d", sw.Diameter(), latticeDiam)
	}
	// Determinism.
	a := SmallWorld(25, 2, 0.3, rand.New(rand.NewSource(9)))
	b := SmallWorld(25, 2, 0.3, rand.New(rand.NewSource(9)))
	if !a.Equal(b) {
		t.Fatal("SmallWorld not deterministic")
	}
	if got := SmallWorld(0, 2, 0.1, rng); got.NumNodes() != 0 {
		t.Fatal("SmallWorld(0) not empty")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g, err := RandomRegular(50, 4, rng)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	for _, u := range g.Nodes() {
		if g.Degree(u) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", u, g.Degree(u))
		}
	}
	if _, err := RandomRegular(5, 5, rng); err == nil {
		t.Fatal("RandomRegular(5,5) should fail: d >= n")
	}
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Fatal("RandomRegular(5,3) should fail: odd n*d")
	}
}

func TestNamedGenerators(t *testing.T) {
	for _, name := range GeneratorNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			gen, err := Generator(name)
			if err != nil {
				t.Fatalf("Generator(%q): %v", name, err)
			}
			g := gen(30, rand.New(rand.NewSource(2)))
			if g.NumNodes() < 30 {
				t.Fatalf("%s(30) has %d nodes, want >= 30", name, g.NumNodes())
			}
			if !g.Connected() {
				t.Fatalf("%s(30) not connected", name)
			}
		})
	}
	if _, err := Generator("nope"); err == nil {
		t.Fatal("unknown generator name should error")
	}
}
