// Package graph provides the undirected-graph substrate used throughout the
// Forgiving Graph reproduction: a mutable adjacency-set representation,
// breadth-first distance computations, connectivity queries, topology
// generators, and simple serialization.
//
// All graphs in this package are simple (no self-loops, no parallel edges)
// and undirected. Vertices are identified by NodeID values chosen by the
// caller; the graph does not require IDs to be dense or contiguous.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a vertex. IDs are assigned by callers (in the
// reproduction they are processor identifiers assigned at insertion time)
// and are never reused.
type NodeID int64

// Edge is an unordered pair of vertices. Normalize with NewEdge so that
// edges compare equal regardless of endpoint order.
type Edge struct {
	U, V NodeID
}

// NewEdge returns the canonical form of the edge {u, v} with the smaller
// endpoint first.
func NewEdge(u, v NodeID) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Graph is a mutable simple undirected graph backed by adjacency sets.
// The zero value is not usable; construct with New.
type Graph struct {
	adj map[NodeID]map[NodeID]struct{}
	m   int // number of edges
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[NodeID]map[NodeID]struct{})}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make(map[NodeID]map[NodeID]struct{}, len(g.adj)), m: g.m}
	for u, nbrs := range g.adj {
		cn := make(map[NodeID]struct{}, len(nbrs))
		for v := range nbrs {
			cn[v] = struct{}{}
		}
		c.adj[u] = cn
	}
	return c
}

// AddNode inserts an isolated vertex. It is a no-op if the vertex exists.
func (g *Graph) AddNode(u NodeID) {
	if _, ok := g.adj[u]; !ok {
		g.adj[u] = make(map[NodeID]struct{})
	}
}

// HasNode reports whether u is present.
func (g *Graph) HasNode(u NodeID) bool {
	_, ok := g.adj[u]
	return ok
}

// AddEdge inserts the undirected edge {u, v}, adding missing endpoints.
// Self-loops are rejected. It reports whether a new edge was added.
func (g *Graph) AddEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	g.AddNode(u)
	g.AddNode(v)
	if _, ok := g.adj[u][v]; ok {
		return false
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.m++
	return true
}

// HasEdge reports whether the edge {u, v} is present.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.adj[u][v]
	return ok
}

// RemoveEdge deletes the edge {u, v} if present and reports whether it was.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	if _, ok := g.adj[u][v]; !ok {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.m--
	return true
}

// RemoveNode deletes u and all incident edges. It reports whether the
// vertex was present.
func (g *Graph) RemoveNode(u NodeID) bool {
	nbrs, ok := g.adj[u]
	if !ok {
		return false
	}
	for v := range nbrs {
		delete(g.adj[v], u)
		g.m--
	}
	delete(g.adj, u)
	return true
}

// NumNodes returns the vertex count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.m }

// Degree returns the degree of u, or 0 if u is absent.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// Neighbors returns the neighbors of u in ascending order. The slice is a
// copy; mutating it does not affect the graph.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	nbrs := g.adj[u]
	if len(nbrs) == 0 {
		return nil
	}
	out := make([]NodeID, 0, len(nbrs))
	for v := range nbrs {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EachNeighbor calls fn for every neighbor of u in unspecified order,
// without allocating. fn must not mutate the graph.
func (g *Graph) EachNeighbor(u NodeID, fn func(v NodeID)) {
	for v := range g.adj[u] {
		fn(v)
	}
}

// Nodes returns all vertices in ascending order.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.adj))
	for u := range g.adj {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all edges in canonical form, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u, nbrs := range g.adj {
		for v := range nbrs {
			if u < v {
				out = append(out, Edge{U: u, V: v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// MaxDegree returns the maximum degree over all vertices (0 for an empty
// graph) and one vertex attaining it.
func (g *Graph) MaxDegree() (NodeID, int) {
	best, bestDeg, found := NodeID(0), -1, false
	for u, nbrs := range g.adj {
		if len(nbrs) > bestDeg || (len(nbrs) == bestDeg && u < best) {
			best, bestDeg, found = u, len(nbrs), true
		}
	}
	if !found {
		return 0, 0
	}
	return best, bestDeg
}

// String renders a compact human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumNodes(), g.NumEdges())
}

// Equal reports whether g and h have identical vertex and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.NumNodes() != h.NumNodes() || g.NumEdges() != h.NumEdges() {
		return false
	}
	for u, nbrs := range g.adj {
		hn, ok := h.adj[u]
		if !ok || len(hn) != len(nbrs) {
			return false
		}
		for v := range nbrs {
			if _, ok := hn[v]; !ok {
				return false
			}
		}
	}
	return true
}
