package graph

import (
	"testing"
)

func TestNewEdgeCanonical(t *testing.T) {
	tests := []struct {
		name string
		u, v NodeID
		want Edge
	}{
		{"ordered", 1, 2, Edge{1, 2}},
		{"reversed", 2, 1, Edge{1, 2}},
		{"equal", 3, 3, Edge{3, 3}},
		{"negative", -5, 2, Edge{-5, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := NewEdge(tt.u, tt.v); got != tt.want {
				t.Errorf("NewEdge(%d,%d) = %v, want %v", tt.u, tt.v, got, tt.want)
			}
		})
	}
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	g.AddNode(7)
	g.AddNode(7)
	if got := g.NumNodes(); got != 1 {
		t.Fatalf("NumNodes = %d, want 1", got)
	}
	if !g.HasNode(7) {
		t.Fatal("HasNode(7) = false, want true")
	}
	if g.HasNode(8) {
		t.Fatal("HasNode(8) = true, want false")
	}
}

func TestAddEdge(t *testing.T) {
	g := New()
	if !g.AddEdge(1, 2) {
		t.Fatal("first AddEdge returned false")
	}
	if g.AddEdge(2, 1) {
		t.Fatal("duplicate AddEdge (reversed) returned true")
	}
	if g.AddEdge(3, 3) {
		t.Fatal("self-loop AddEdge returned true")
	}
	if g.NumEdges() != 1 || g.NumNodes() != 2 {
		t.Fatalf("got n=%d m=%d, want n=2 m=1", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("HasEdge should be symmetric")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if !g.RemoveEdge(2, 1) {
		t.Fatal("RemoveEdge existing edge returned false")
	}
	if g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge absent edge returned true")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.HasEdge(1, 2) {
		t.Fatal("edge {1,2} still present after removal")
	}
}

func TestRemoveNode(t *testing.T) {
	g := Star(5)
	if !g.RemoveNode(0) {
		t.Fatal("RemoveNode(hub) returned false")
	}
	if g.RemoveNode(0) {
		t.Fatal("RemoveNode of absent vertex returned true")
	}
	if g.NumNodes() != 4 || g.NumEdges() != 0 {
		t.Fatalf("after hub removal: n=%d m=%d, want n=4 m=0", g.NumNodes(), g.NumEdges())
	}
	for _, u := range g.Nodes() {
		if g.Degree(u) != 0 {
			t.Errorf("Degree(%d) = %d, want 0", u, g.Degree(u))
		}
	}
}

func TestNeighborsSortedCopy(t *testing.T) {
	g := New()
	g.AddEdge(5, 9)
	g.AddEdge(5, 1)
	g.AddEdge(5, 4)
	nbrs := g.Neighbors(5)
	want := []NodeID{1, 4, 9}
	if len(nbrs) != len(want) {
		t.Fatalf("Neighbors(5) = %v, want %v", nbrs, want)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("Neighbors(5) = %v, want %v", nbrs, want)
		}
	}
	nbrs[0] = 999 // mutate copy; graph must be unaffected
	if !g.HasEdge(5, 1) {
		t.Fatal("mutating Neighbors result affected the graph")
	}
	if got := g.Neighbors(42); got != nil {
		t.Fatalf("Neighbors of absent vertex = %v, want nil", got)
	}
}

func TestEachNeighborVisitsAll(t *testing.T) {
	g := Cycle(6)
	seen := map[NodeID]bool{}
	g.EachNeighbor(0, func(v NodeID) { seen[v] = true })
	if !seen[1] || !seen[5] || len(seen) != 2 {
		t.Fatalf("EachNeighbor(0) visited %v, want {1,5}", seen)
	}
}

func TestNodesAndEdgesDeterministic(t *testing.T) {
	g := New()
	g.AddEdge(3, 1)
	g.AddEdge(2, 3)
	g.AddNode(0)
	nodes := g.Nodes()
	wantNodes := []NodeID{0, 1, 2, 3}
	for i := range wantNodes {
		if nodes[i] != wantNodes[i] {
			t.Fatalf("Nodes = %v, want %v", nodes, wantNodes)
		}
	}
	edges := g.Edges()
	wantEdges := []Edge{{1, 3}, {2, 3}}
	if len(edges) != len(wantEdges) {
		t.Fatalf("Edges = %v, want %v", edges, wantEdges)
	}
	for i := range wantEdges {
		if edges[i] != wantEdges[i] {
			t.Fatalf("Edges = %v, want %v", edges, wantEdges)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Cycle(4)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.RemoveNode(0)
	if g.NumNodes() != 4 {
		t.Fatal("mutating clone affected original")
	}
	if g.Equal(c) {
		t.Fatal("Equal should detect divergence")
	}
}

func TestEqual(t *testing.T) {
	a := Path(4)
	b := Path(4)
	if !a.Equal(b) {
		t.Fatal("identical paths not Equal")
	}
	b.AddEdge(0, 3)
	if a.Equal(b) {
		t.Fatal("graphs with different edges reported Equal")
	}
	c := Path(4)
	c.AddNode(99)
	if a.Equal(c) {
		t.Fatal("graphs with different vertex sets reported Equal")
	}
	// Same counts, different wiring.
	d := New()
	d.AddEdge(0, 1)
	d.AddEdge(2, 3)
	d.AddEdge(1, 2)
	e := New()
	e.AddEdge(0, 1)
	e.AddEdge(0, 2)
	e.AddEdge(0, 3)
	if d.Equal(e) {
		t.Fatal("path and star with equal counts reported Equal")
	}
}

func TestMaxDegree(t *testing.T) {
	tests := []struct {
		name    string
		g       *Graph
		wantID  NodeID
		wantDeg int
	}{
		{"empty", New(), 0, 0},
		{"star", Star(6), 0, 5},
		{"path", Path(3), 1, 2},
		{"cycle ties pick smallest id", Cycle(5), 0, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			id, deg := tt.g.MaxDegree()
			if id != tt.wantID || deg != tt.wantDeg {
				t.Errorf("MaxDegree = (%d,%d), want (%d,%d)", id, deg, tt.wantID, tt.wantDeg)
			}
		})
	}
}

func TestStringSummary(t *testing.T) {
	if got := Star(4).String(); got != "graph{n=4 m=3}" {
		t.Fatalf("String = %q", got)
	}
}
