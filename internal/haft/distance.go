package haft

// Tree-distance utilities. The stretch analysis (Theorem 1.2) rests on
// one fact: two leaves of the same Reconstruction Tree are at tree
// distance at most 2·⌈log₂ l⌉, because the haft has depth ⌈log₂ l⌉
// (Lemma 1). These helpers expose that quantity so tests and
// experiments can verify the argument microscopically rather than only
// observing its end-to-end consequence.

// NodeDepth returns the number of parent hops from n to its tree root.
func NodeDepth(n *Node) int {
	d := 0
	for n.Parent != nil {
		n = n.Parent
		d++
	}
	return d
}

// LCA returns the lowest common ancestor of two nodes of the same tree,
// or nil if they belong to different trees.
func LCA(a, b *Node) *Node {
	da, db := NodeDepth(a), NodeDepth(b)
	for da > db {
		a = a.Parent
		da--
	}
	for db > da {
		b = b.Parent
		db--
	}
	for a != b {
		if a == nil || b == nil {
			return nil
		}
		a = a.Parent
		b = b.Parent
	}
	return a
}

// LeafDistance returns the number of tree edges on the path between two
// nodes of the same tree, or -1 if they are in different trees.
func LeafDistance(a, b *Node) int {
	l := LCA(a, b)
	if l == nil {
		return -1
	}
	return NodeDepth(a) + NodeDepth(b) - 2*NodeDepth(l)
}
