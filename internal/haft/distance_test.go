package haft

import (
	"testing"
	"testing/quick"
)

func TestNodeDepth(t *testing.T) {
	h := buildInts(8) // perfect tree of height 3
	for _, l := range Leaves(h) {
		if d := NodeDepth(l); d != 3 {
			t.Fatalf("leaf depth = %d, want 3", d)
		}
	}
	if NodeDepth(h) != 0 {
		t.Fatal("root depth != 0")
	}
}

func TestLCA(t *testing.T) {
	h := buildInts(8)
	leaves := Leaves(h)
	if got := LCA(leaves[0], leaves[1]); got != leaves[0].Parent {
		t.Fatal("siblings' LCA should be their parent")
	}
	if got := LCA(leaves[0], leaves[7]); got != h {
		t.Fatal("opposite leaves' LCA should be the root")
	}
	if got := LCA(leaves[3], leaves[3]); got != leaves[3] {
		t.Fatal("self LCA should be self")
	}
	if got := LCA(h, leaves[5]); got != h {
		t.Fatal("root-descendant LCA should be the root")
	}
	other := buildInts(4)
	if got := LCA(leaves[0], Leaves(other)[0]); got != nil {
		t.Fatal("cross-tree LCA should be nil")
	}
}

func TestLeafDistanceKnown(t *testing.T) {
	h := buildInts(8)
	leaves := Leaves(h)
	tests := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{0, 1, 2},
		{0, 2, 4},
		{0, 7, 6},
		{3, 4, 6},
	}
	for _, tt := range tests {
		if got := LeafDistance(leaves[tt.a], leaves[tt.b]); got != tt.want {
			t.Errorf("LeafDistance(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
	if got := LeafDistance(leaves[0], Leaves(buildInts(2))[0]); got != -1 {
		t.Fatalf("cross-tree distance = %d, want -1", got)
	}
}

// The microscopic stretch fact: every pair of leaves in haft(l) is at
// tree distance at most 2·ceil(log2 l).
func TestLeafDistanceBound(t *testing.T) {
	for _, l := range []int{1, 2, 3, 7, 20, 33, 64, 100} {
		h := buildInts(l)
		leaves := Leaves(h)
		bound := 2 * ceilLog2(l)
		for i := 0; i < len(leaves); i++ {
			for j := i + 1; j < len(leaves); j++ {
				if d := LeafDistance(leaves[i], leaves[j]); d > bound {
					t.Fatalf("haft(%d): dist(leaf%d,leaf%d) = %d > %d", l, i, j, d, bound)
				}
			}
		}
	}
}

// Property: distance is a metric on the leaves (symmetry and triangle
// inequality), and adjacent leaves in frontier order are within the
// bound too.
func TestQuickLeafDistanceMetric(t *testing.T) {
	prop := func(raw uint8, i, j, k uint8) bool {
		l := int(raw)%60 + 3
		h := buildInts(l)
		leaves := Leaves(h)
		a := leaves[int(i)%l]
		b := leaves[int(j)%l]
		c := leaves[int(k)%l]
		dab := LeafDistance(a, b)
		dba := LeafDistance(b, a)
		dac := LeafDistance(a, c)
		dcb := LeafDistance(c, b)
		if dab != dba {
			return false
		}
		if a == b && dab != 0 {
			return false
		}
		return dab <= dac+dcb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
