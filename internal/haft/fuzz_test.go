package haft

import (
	"math/bits"
	"testing"
)

// FuzzMergeSizes feeds arbitrary byte strings interpreted as a list of
// perfect-tree heights (0..7) into Strip+Merge and checks the full
// contract: valid haft, exact leaf count, popcount decomposition, depth
// law, and the leaf-distance bound. Run with `go test -fuzz
// FuzzMergeSizes ./internal/haft` for continuous fuzzing; the seed
// corpus runs as a normal test.
func FuzzMergeSizes(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0, 0, 1, 2})
	f.Add([]byte{7, 7})
	f.Add([]byte{1, 3, 5, 7, 2, 4, 6})
	f.Add([]byte{2, 2, 2, 2, 2, 2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, heights []byte) {
		if len(heights) == 0 || len(heights) > 24 {
			t.Skip()
		}
		var trees []*Node
		total := 0
		next := 0
		for _, h := range heights {
			sz := 1 << uint(h%8)
			trees = append(trees, perfectTree(int(h%8), next))
			next += sz
			total += sz
		}
		merged := Merge(trees, nil)
		if err := Validate(merged); err != nil {
			t.Fatalf("invalid haft from heights %v: %v", heights, err)
		}
		if got := CountLeaves(merged); got != total {
			t.Fatalf("leaves = %d, want %d", got, total)
		}
		if got, want := Depth(merged), ceilLog2(total); got != want {
			t.Fatalf("depth = %d, want %d", got, want)
		}
		if got, want := len(PrimaryRoots(merged)), bits.OnesCount(uint(total)); got != want {
			t.Fatalf("primary roots = %d, want popcount = %d", got, want)
		}
		leaves := Leaves(merged)
		bound := 2 * ceilLog2(total)
		if d := LeafDistance(leaves[0], leaves[len(leaves)-1]); d > bound {
			t.Fatalf("extreme-leaf distance %d > %d", d, bound)
		}
	})
}

// FuzzStripDamage removes an arbitrary subset of leaves from a haft and
// checks that Strip still decomposes the fragment into intact perfect
// pieces covering exactly the survivors.
func FuzzStripDamage(f *testing.F) {
	f.Add(uint8(8), uint16(0b0000_0001))
	f.Add(uint8(13), uint16(0b1010_1010))
	f.Add(uint8(31), uint16(0xFFFE))
	f.Fuzz(func(t *testing.T, rawSize uint8, mask uint16) {
		l := int(rawSize)%60 + 2
		h := Build(l, func(i int) any { return i })
		leaves := Leaves(h)
		removed := 0
		for i, leaf := range leaves {
			if mask&(1<<(uint(i)%16)) != 0 && removed < l-1 {
				Detach(leaf)
				removed++
			}
		}
		roots, discarded := Strip(h)
		covered := 0
		for _, r := range roots {
			ok, _ := PerfectInfo(r)
			if !ok {
				t.Fatal("imperfect primary root")
			}
			covered += CountLeaves(r)
		}
		if covered != l-removed {
			t.Fatalf("covered %d leaves, want %d", covered, l-removed)
		}
		for _, d := range discarded {
			if d.IsLeaf {
				t.Fatal("discarded a surviving leaf")
			}
		}
		// Re-merging the pieces must produce a canonical haft over the
		// survivors.
		if merged := Merge(roots, nil); merged != nil {
			if err := Validate(merged); err != nil {
				t.Fatalf("re-merge: %v", err)
			}
			if CountLeaves(merged) != l-removed {
				t.Fatal("re-merge lost leaves")
			}
		}
	})
}
