// Package haft implements half-full trees (hafts), the balanced binary
// trees at the heart of the Forgiving Graph (Hayes, Saia, Trehan, PODC
// 2009, Section 4).
//
// A haft is a rooted binary tree in which every non-leaf node has exactly
// two children and its left child is the root of a complete (perfect)
// binary subtree containing at least half of the node's leaf descendants.
// Lemma 1 of the paper shows that for every positive l there is a unique
// haft with l leaves, that its shape corresponds to the binary
// representation of l, and that its depth is ⌈log₂ l⌉.
//
// The package provides the canonical constructor (Build), the Strip
// operation (decompose a haft — or an arbitrary fragment of one — into
// its maximal complete subtrees, whose roots the paper calls primary
// roots), and the Merge operation (recombine complete trees into a single
// haft, the tree analogue of binary addition).
//
// Nodes carry an opaque Payload so that higher layers (the Forgiving
// Graph engine) can attach processor and edge-slot bookkeeping without
// this package knowing about it.
package haft

import (
	"fmt"
	"math/bits"
)

// Node is a vertex of a haft or of a haft fragment. Leaves are the
// value-carrying vertices (in the Forgiving Graph they are real-node
// avatars); internal nodes are helpers. IsLeaf distinguishes a genuine
// leaf from an internal node that has lost its children — the distinction
// matters when stripping fragments.
type Node struct {
	Parent, Left, Right *Node

	// IsLeaf marks genuine leaves. An internal node keeps IsLeaf ==
	// false even if both children are detached.
	IsLeaf bool

	// Height is the stored height of the subtree rooted here (0 for
	// leaves). It reflects the structure at the time the node was
	// linked; Strip recomputes structural facts and does not trust it
	// after the tree has been damaged.
	Height int

	// LeafCount is the stored number of leaf descendants (1 for a
	// leaf). Like Height it describes the undamaged structure.
	LeafCount int

	// Payload is opaque caller data (the Forgiving Graph stores
	// processor and edge-slot identities plus representative pointers).
	Payload any
}

// NewLeaf returns a fresh leaf node carrying payload.
func NewLeaf(payload any) *Node {
	return &Node{IsLeaf: true, Height: 0, LeafCount: 1, Payload: payload}
}

// Link makes parent the parent of left and right and refreshes the
// parent's stored Height and LeafCount from its children. The children
// must be non-nil and parentless.
func Link(parent, left, right *Node) {
	parent.Left = left
	parent.Right = right
	left.Parent = parent
	right.Parent = parent
	parent.Height = 1 + maxInt(left.Height, right.Height)
	parent.LeafCount = left.LeafCount + right.LeafCount
}

// Detach removes n from its parent, leaving n the root of its own
// subtree. It is a no-op for roots.
func Detach(n *Node) {
	p := n.Parent
	if p == nil {
		return
	}
	if p.Left == n {
		p.Left = nil
	}
	if p.Right == n {
		p.Right = nil
	}
	n.Parent = nil
}

// Root follows parent pointers to the root of n's tree.
func Root(n *Node) *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// Build returns the canonical haft over l fresh leaves, whose payloads
// are set by payload(i) for leaf index i in left-to-right order. It
// panics if l <= 0 is requested with l != 0; Build(0) returns nil.
//
// The construction follows Lemma 1 directly: the left child of the root
// is the complete tree over the highest power-of-two block of leaves and
// the right child is the canonical haft over the remainder.
func Build(l int, payload func(i int) any) *Node {
	if l <= 0 {
		return nil
	}
	leaves := make([]*Node, l)
	for i := range leaves {
		var p any
		if payload != nil {
			p = payload(i)
		}
		leaves[i] = NewLeaf(p)
	}
	return BuildOver(leaves)
}

// BuildOver assembles the canonical haft whose leaves are the given nodes
// in left-to-right order, creating fresh internal nodes with nil
// payloads. The leaves must be parentless. BuildOver(nil) returns nil.
func BuildOver(leaves []*Node) *Node {
	switch len(leaves) {
	case 0:
		return nil
	case 1:
		return leaves[0]
	}
	// Largest power of two <= len(leaves).
	x := 1 << (bits.Len(uint(len(leaves))) - 1)
	if x == len(leaves) {
		mid := x / 2
		parent := &Node{}
		Link(parent, BuildOver(leaves[:mid]), BuildOver(leaves[mid:]))
		return parent
	}
	parent := &Node{}
	Link(parent, BuildOver(leaves[:x]), BuildOver(leaves[x:]))
	return parent
}

// Leaves returns the leaves of the subtree rooted at n in left-to-right
// order.
func Leaves(n *Node) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(x *Node) {
		if x == nil {
			return
		}
		if x.IsLeaf {
			out = append(out, x)
			return
		}
		walk(x.Left)
		walk(x.Right)
	}
	walk(n)
	return out
}

// Internal returns the internal (helper) nodes of the subtree rooted at n
// in preorder.
func Internal(n *Node) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(x *Node) {
		if x == nil || x.IsLeaf {
			return
		}
		out = append(out, x)
		walk(x.Left)
		walk(x.Right)
	}
	walk(n)
	return out
}

// Depth returns the structural height of the subtree rooted at n
// (0 for a leaf, -1 for nil), ignoring stored Height fields.
func Depth(n *Node) int {
	if n == nil {
		return -1
	}
	if n.IsLeaf {
		return 0
	}
	return 1 + maxInt(Depth(n.Left), Depth(n.Right))
}

// CountLeaves returns the structural number of genuine leaves below n.
func CountLeaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf {
		return 1
	}
	return CountLeaves(n.Left) + CountLeaves(n.Right)
}

// PerfectInfo reports whether the subtree rooted at n is structurally a
// perfect binary tree over genuine leaves, and its structural height. A
// single leaf is perfect with height 0. An internal node missing either
// child is never perfect.
func PerfectInfo(n *Node) (perfect bool, height int) {
	if n == nil {
		return false, -1
	}
	if n.IsLeaf {
		return true, 0
	}
	if n.Left == nil || n.Right == nil {
		return false, -1
	}
	lp, lh := PerfectInfo(n.Left)
	if !lp {
		return false, -1
	}
	rp, rh := PerfectInfo(n.Right)
	if !rp || lh != rh {
		return false, -1
	}
	return true, lh + 1
}

// Validate checks that the tree rooted at n is a well-formed haft: every
// internal node has two children with correct parent pointers, its left
// child heads a perfect subtree with at least half of the leaves, and the
// stored Height and LeafCount fields match the structure. Validate(nil)
// succeeds (the empty haft).
func Validate(n *Node) error {
	if n == nil {
		return nil
	}
	if n.Parent != nil {
		return fmt.Errorf("haft: root has a parent")
	}
	return validateSub(n)
}

func validateSub(n *Node) error {
	if n.IsLeaf {
		if n.Left != nil || n.Right != nil {
			return fmt.Errorf("haft: leaf with children")
		}
		if n.Height != 0 || n.LeafCount != 1 {
			return fmt.Errorf("haft: leaf with height=%d leafCount=%d", n.Height, n.LeafCount)
		}
		return nil
	}
	if n.Left == nil || n.Right == nil {
		return fmt.Errorf("haft: internal node with missing child")
	}
	if n.Left.Parent != n || n.Right.Parent != n {
		return fmt.Errorf("haft: child with wrong parent pointer")
	}
	lp, lh := PerfectInfo(n.Left)
	if !lp {
		return fmt.Errorf("haft: left child is not a perfect subtree")
	}
	lLeaves := CountLeaves(n.Left)
	rLeaves := CountLeaves(n.Right)
	if lLeaves < rLeaves {
		return fmt.Errorf("haft: left child has %d leaves, right has %d (left must hold at least half)", lLeaves, rLeaves)
	}
	if n.LeafCount != lLeaves+rLeaves {
		return fmt.Errorf("haft: stored LeafCount=%d, structural=%d", n.LeafCount, lLeaves+rLeaves)
	}
	wantHeight := 1 + maxInt(lh, Depth(n.Right))
	if n.Height != wantHeight {
		return fmt.Errorf("haft: stored Height=%d, structural=%d", n.Height, wantHeight)
	}
	if err := validateSub(n.Right); err != nil {
		return err
	}
	return validateChildFields(n.Left)
}

// validateChildFields checks stored fields inside a perfect subtree.
func validateChildFields(n *Node) error {
	if n.IsLeaf {
		if n.Height != 0 || n.LeafCount != 1 {
			return fmt.Errorf("haft: leaf with height=%d leafCount=%d", n.Height, n.LeafCount)
		}
		return nil
	}
	if n.Left == nil || n.Right == nil {
		return fmt.Errorf("haft: internal node with missing child")
	}
	if n.Left.Parent != n || n.Right.Parent != n {
		return fmt.Errorf("haft: child with wrong parent pointer")
	}
	if n.Height != n.Left.Height+1 || n.LeafCount != n.Left.LeafCount+n.Right.LeafCount {
		return fmt.Errorf("haft: inconsistent stored fields in perfect subtree (height=%d leafCount=%d)", n.Height, n.LeafCount)
	}
	if err := validateChildFields(n.Left); err != nil {
		return err
	}
	return validateChildFields(n.Right)
}

// CeilLog2 returns ⌈log₂ l⌉ (0 for l <= 1): by Lemma 1 the depth of
// the haft over l leaves.
func CeilLog2(l int) int {
	if l <= 1 {
		return 0
	}
	return bits.Len(uint(l - 1))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
