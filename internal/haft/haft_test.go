package haft

import (
	"fmt"
	"math/bits"
	"testing"
	"testing/quick"
)

// buildInts returns the canonical haft over l leaves with payloads 0..l-1.
func buildInts(l int) *Node {
	return Build(l, func(i int) any { return i })
}

func TestBuildSmall(t *testing.T) {
	if Build(0, nil) != nil {
		t.Fatal("Build(0) should be nil")
	}
	one := buildInts(1)
	if !one.IsLeaf || one.Payload != 0 {
		t.Fatalf("Build(1) = %+v, want single leaf 0", one)
	}
	two := buildInts(2)
	if two.IsLeaf || two.Left.Payload != 0 || two.Right.Payload != 1 {
		t.Fatal("Build(2) shape wrong")
	}
	if two.Height != 1 || two.LeafCount != 2 {
		t.Fatalf("Build(2) fields: height=%d leafCount=%d", two.Height, two.LeafCount)
	}
}

func TestBuildValidates(t *testing.T) {
	for l := 0; l <= 260; l++ {
		h := buildInts(l)
		if err := Validate(h); err != nil {
			t.Fatalf("Build(%d): %v", l, err)
		}
		if got := CountLeaves(h); l > 0 && got != l {
			t.Fatalf("Build(%d) has %d leaves", l, got)
		}
	}
}

// Lemma 1 part 3: depth of haft(l) is ceil(log2 l).
func TestDepthLemma(t *testing.T) {
	for l := 1; l <= 1024; l++ {
		h := buildInts(l)
		want := ceilLog2(l)
		if got := Depth(h); got != want {
			t.Fatalf("Depth(haft(%d)) = %d, want %d", l, got, want)
		}
		if h.Height != want {
			t.Fatalf("stored Height of haft(%d) = %d, want %d", l, h.Height, want)
		}
	}
}

// ceilLog2 is an independent test-side implementation cross-checked
// against the exported helper.
func ceilLog2(l int) int {
	if l <= 1 {
		return 0
	}
	return bits.Len(uint(l - 1))
}

func TestCeilLog2(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, tt := range tests {
		if got := CeilLog2(tt.in); got != tt.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
	for l := 0; l <= 4096; l++ {
		if CeilLog2(l) != ceilLog2(l) {
			t.Fatalf("CeilLog2(%d) = %d disagrees with reference %d", l, CeilLog2(l), ceilLog2(l))
		}
	}
}

// Lemma 1 part 2: haft(l) decomposes into popcount(l) complete trees whose
// sizes are the powers of two in l's binary representation, in descending
// size order left to right.
func TestBinaryRepresentationLemma(t *testing.T) {
	for l := 1; l <= 600; l++ {
		h := buildInts(l)
		roots := PrimaryRoots(h)
		if got, want := len(roots), bits.OnesCount(uint(l)); got != want {
			t.Fatalf("haft(%d): %d primary roots, want popcount=%d", l, got, want)
		}
		total := 0
		prev := 1 << 62
		for _, r := range roots {
			c := CountLeaves(r)
			if c&(c-1) != 0 {
				t.Fatalf("haft(%d): primary root with %d leaves (not a power of two)", l, c)
			}
			if c >= prev {
				t.Fatalf("haft(%d): primary roots not in descending size order", l)
			}
			prev = c
			total += c
		}
		if total != l {
			t.Fatalf("haft(%d): primary roots cover %d leaves", l, total)
		}
	}
}

// Lemma 1 part 1 (uniqueness): the canonical construction and a merge of
// singleton leaves produce structurally identical trees.
func TestUniquenessViaMerge(t *testing.T) {
	for l := 1; l <= 130; l++ {
		direct := buildInts(l)
		singles := make([]*Node, l)
		for i := range singles {
			singles[i] = NewLeaf(i)
		}
		merged := Merge(singles, nil)
		if err := Validate(merged); err != nil {
			t.Fatalf("merge of %d singletons: %v", l, err)
		}
		if !sameShape(direct, merged) {
			t.Fatalf("haft(%d) not unique: direct build and singleton merge differ", l)
		}
	}
}

// sameShape compares tree structure ignoring payloads.
func sameShape(a, b *Node) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.IsLeaf != b.IsLeaf {
		return false
	}
	return sameShape(a.Left, b.Left) && sameShape(a.Right, b.Right)
}

func TestLinkAndDetach(t *testing.T) {
	l, r := NewLeaf("l"), NewLeaf("r")
	p := &Node{}
	Link(p, l, r)
	if p.Height != 1 || p.LeafCount != 2 || l.Parent != p || r.Parent != p {
		t.Fatalf("Link wiring wrong: %+v", p)
	}
	Detach(l)
	if l.Parent != nil || p.Left != nil || p.Right != r {
		t.Fatal("Detach wiring wrong")
	}
	Detach(l) // detaching a root is a no-op
	if l.Parent != nil {
		t.Fatal("Detach of root changed parent")
	}
}

func TestRoot(t *testing.T) {
	h := buildInts(9)
	for _, leaf := range Leaves(h) {
		if Root(leaf) != h {
			t.Fatal("Root did not reach the tree root")
		}
	}
}

func TestLeavesOrder(t *testing.T) {
	h := buildInts(11)
	leaves := Leaves(h)
	if len(leaves) != 11 {
		t.Fatalf("got %d leaves", len(leaves))
	}
	for i, l := range leaves {
		if l.Payload != i {
			t.Fatalf("leaf %d has payload %v", i, l.Payload)
		}
	}
}

func TestInternalCount(t *testing.T) {
	// A haft over l leaves always has exactly l-1 internal nodes.
	for l := 1; l <= 300; l++ {
		h := buildInts(l)
		if got := len(Internal(h)); got != l-1 {
			t.Fatalf("haft(%d) has %d internal nodes, want %d", l, got, l-1)
		}
	}
}

func TestPerfectInfo(t *testing.T) {
	tests := []struct {
		l           int
		wantPerfect bool
		wantHeight  int
	}{
		{1, true, 0}, {2, true, 1}, {3, false, -1}, {4, true, 2},
		{5, false, -1}, {8, true, 3}, {1024, true, 10}, {1023, false, -1},
	}
	for _, tt := range tests {
		p, ht := PerfectInfo(buildInts(tt.l))
		if p != tt.wantPerfect || (p && ht != tt.wantHeight) {
			t.Errorf("PerfectInfo(haft(%d)) = (%v,%d), want (%v,%d)",
				tt.l, p, ht, tt.wantPerfect, tt.wantHeight)
		}
	}
	if p, _ := PerfectInfo(nil); p {
		t.Error("PerfectInfo(nil) reported perfect")
	}
	// An internal node that lost a child is not perfect even if its
	// remaining child is.
	h := buildInts(2)
	Detach(h.Right)
	if p, _ := PerfectInfo(h); p {
		t.Error("internal node with one child reported perfect")
	}
}

func TestValidateRejections(t *testing.T) {
	t.Run("nil ok", func(t *testing.T) {
		if err := Validate(nil); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("leaf with bad fields", func(t *testing.T) {
		l := NewLeaf(0)
		l.Height = 3
		if err := Validate(l); err == nil {
			t.Fatal("accepted leaf with wrong height")
		}
	})
	t.Run("missing child", func(t *testing.T) {
		h := buildInts(4)
		Detach(h.Right)
		if err := Validate(h); err == nil {
			t.Fatal("accepted internal node with missing child")
		}
	})
	t.Run("left smaller than right", func(t *testing.T) {
		// Manually wire a node whose left subtree is a single leaf and
		// right subtree has two leaves: violates the haft property.
		p := &Node{}
		small := NewLeaf(0)
		big := buildInts(2)
		Link(p, small, big)
		if err := Validate(p); err == nil {
			t.Fatal("accepted haft with underweight left child")
		}
	})
	t.Run("imperfect left child", func(t *testing.T) {
		p := &Node{}
		left := buildInts(3) // 3-leaf haft is not perfect
		right := NewLeaf(9)
		Link(p, left, right)
		if err := Validate(p); err == nil {
			t.Fatal("accepted haft with imperfect left child")
		}
	})
	t.Run("corrupted stored count", func(t *testing.T) {
		h := buildInts(6)
		h.LeafCount = 7
		if err := Validate(h); err == nil {
			t.Fatal("accepted corrupted LeafCount")
		}
	})
	t.Run("corrupted parent pointer", func(t *testing.T) {
		h := buildInts(4)
		h.Left.Parent = h.Left
		if err := Validate(h); err == nil {
			t.Fatal("accepted corrupted parent pointer")
		}
	})
	t.Run("root with parent", func(t *testing.T) {
		h := buildInts(2)
		h.Parent = NewLeaf(0)
		if err := Validate(h); err == nil {
			t.Fatal("accepted root with parent")
		}
	})
}

// Property: for random l, Build produces a valid haft with the right leaf
// frontier, depth, and primary-root decomposition.
func TestQuickBuildProperties(t *testing.T) {
	prop := func(raw uint16) bool {
		l := int(raw)%2000 + 1
		h := buildInts(l)
		if Validate(h) != nil || CountLeaves(h) != l {
			return false
		}
		if Depth(h) != ceilLog2(l) {
			return false
		}
		return len(PrimaryRoots(h)) == bits.OnesCount(uint(l))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLeafString(t *testing.T) {
	h := Build(3, func(i int) any { return fmt.Sprintf("v%d", i) })
	if got := LeafString(h); got != "v0 v1 v2" {
		t.Fatalf("LeafString = %q", got)
	}
}

func TestRender(t *testing.T) {
	h := buildInts(3)
	out := Render(h, nil)
	if out == "" {
		t.Fatal("empty render")
	}
	// Spot-check that all leaves appear.
	for i := 0; i < 3; i++ {
		if want := fmt.Sprintf("%d", i); !containsLine(out, want) {
			t.Fatalf("render missing leaf %d:\n%s", i, out)
		}
	}
	// Damaged tree renders the hole marker.
	Detach(h.Right)
	if out := Render(h, nil); !containsLine(out, "∅") {
		t.Fatalf("render of damaged tree missing hole marker:\n%s", out)
	}
}

func containsLine(s, substr string) bool {
	return len(s) > 0 && (len(substr) == 0 || indexOf(s, substr) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
