package haft

import "sort"

// Merge (paper Section 4.1.2, Algorithm A.9 "ComputeHaft").
//
// Merging hafts is the tree analogue of adding the binary representations
// of their leaf counts. The inputs here are the complete trees produced
// by Strip; the output is a single haft over the union of their leaves.
// Each join of two trees consumes one fresh internal node, supplied by
// the caller through a JoinFunc so that the Forgiving Graph layer can run
// its representative mechanism (the new helper is simulated by the
// representative of the bigger tree and inherits the representative of
// the other).

// JoinFunc allocates the internal node that will become the parent of two
// roots being joined. bigger is the root whose subtree has at least as
// many leaves as smaller's; when the two are equal-sized the first tree
// in the working list plays the role of bigger, as in Algorithm A.9. The
// returned node must be fresh: parentless and childless. Merge wires the
// links and stored fields itself.
type JoinFunc func(bigger, smaller *Node) *Node

// NewInternal is the trivial JoinFunc used when no payload bookkeeping is
// needed.
func NewInternal(_, _ *Node) *Node { return &Node{} }

// Merge combines parentless complete trees into a single haft and returns
// its root. The input order among equal-sized trees is preserved when
// sorting (callers seeking determinism should pre-order ties, e.g. by
// node identity). Merge returns nil for an empty input and the sole root
// unchanged for a singleton input.
//
// The implementation follows Algorithm A.9: sort ascending by leaf count;
// repeatedly join adjacent equal-sized trees (binary-addition carries),
// reinserting the result in sorted position; then chain the remaining
// distinct-sized trees left to right, each time making the larger tree
// the left child.
func Merge(trees []*Node, join JoinFunc) *Node {
	switch len(trees) {
	case 0:
		return nil
	case 1:
		return trees[0]
	}
	if join == nil {
		join = NewInternal
	}
	sorted := make([]*Node, len(trees))
	copy(sorted, trees)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].LeafCount < sorted[j].LeafCount
	})

	// Phase 1: resolve equal-size pairs (carries), processing size
	// classes smallest first like a binary counter: joining two
	// same-size trees produces a tree in the doubled class, which is
	// processed in turn. Buckets keep FIFO order so equal-size inputs
	// pair adjacently in the sorted order, and the whole phase is
	// O(k log k) instead of the naive quadratic reinsertion.
	buckets := make(map[int][]*Node)
	var sizes []int
	for _, n := range sorted {
		if len(buckets[n.LeafCount]) == 0 {
			sizes = append(sizes, n.LeafCount)
		}
		buckets[n.LeafCount] = append(buckets[n.LeafCount], n)
	}
	sort.Ints(sizes)

	var list []*Node // distinct sizes, ascending
	for si := 0; si < len(sizes); si++ {
		size := sizes[si]
		q := buckets[size]
		for len(q) >= 2 {
			a, b := q[0], q[1]
			q = q[2:]
			parent := join(a, b)
			Link(parent, a, b)
			carry := parent.LeafCount
			if len(buckets[carry]) == 0 {
				// Register the new size class in sorted position
				// (it is always > size, so search the tail).
				pos := si + 1
				for pos < len(sizes) && sizes[pos] < carry {
					pos++
				}
				if pos == len(sizes) || sizes[pos] != carry {
					sizes = append(sizes, 0)
					copy(sizes[pos+1:], sizes[pos:])
					sizes[pos] = carry
				}
			}
			buckets[carry] = append(buckets[carry], parent)
		}
		if len(q) == 1 {
			list = append(list, q[0])
		}
		delete(buckets, size)
	}

	// Phase 2: chain distinct sizes, smaller accumulations hanging off
	// the right of the next larger complete tree.
	acc := list[0]
	for i := 1; i < len(list); i++ {
		bigger := list[i]
		parent := join(bigger, acc)
		Link(parent, bigger, acc)
		acc = parent
	}
	return acc
}

// MergeAll strips each input tree (haft or fragment) into complete trees
// and merges everything into one haft. It returns the new root and the
// internal nodes discarded by the strips. This is the one-shot form of
// the repair used by the reference engine.
func MergeAll(fragments []*Node, join JoinFunc) (root *Node, discarded []*Node) {
	var complete []*Node
	for _, f := range fragments {
		roots, junk := Strip(f)
		complete = append(complete, roots...)
		discarded = append(discarded, junk...)
	}
	return Merge(complete, join), discarded
}
