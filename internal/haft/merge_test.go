package haft

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// perfectTree builds a perfect tree with 2^h leaves labelled start..start+2^h-1.
func perfectTree(h, start int) *Node {
	return Build(1<<h, func(i int) any { return start + i })
}

func TestStripHaft(t *testing.T) {
	// Figure 3(b): stripping haft(l) removes popcount(l)-1 joiners.
	for l := 1; l <= 300; l++ {
		h := buildInts(l)
		roots, discarded := Strip(h)
		wantRoots := bits.OnesCount(uint(l))
		if len(roots) != wantRoots {
			t.Fatalf("Strip(haft(%d)): %d roots, want %d", l, len(roots), wantRoots)
		}
		if len(discarded) != wantRoots-1 {
			t.Fatalf("Strip(haft(%d)): discarded %d, want %d", l, len(discarded), wantRoots-1)
		}
		for _, r := range roots {
			if r.Parent != nil {
				t.Fatalf("Strip left root with a parent")
			}
			if ok, _ := PerfectInfo(r); !ok {
				t.Fatalf("Strip returned imperfect root")
			}
		}
		for _, d := range discarded {
			if d.IsLeaf {
				t.Fatal("Strip discarded a genuine leaf")
			}
			if d.Parent != nil || d.Left != nil || d.Right != nil {
				t.Fatal("discarded node not fully unlinked")
			}
		}
	}
}

func TestStripFragmentWithHole(t *testing.T) {
	// Build haft(8) (a perfect tree), then detach one leaf: the damaged
	// tree must strip into maximal perfect pieces covering the 7
	// surviving leaves, discarding the ancestors of the hole.
	h := buildInts(8)
	leaves := Leaves(h)
	victim := leaves[5]
	Detach(victim)
	roots, discarded := Strip(h)
	total := 0
	for _, r := range roots {
		ok, _ := PerfectInfo(r)
		if !ok {
			t.Fatal("imperfect primary root from fragment")
		}
		total += CountLeaves(r)
	}
	if total != 7 {
		t.Fatalf("fragment strip covers %d leaves, want 7", total)
	}
	// Ancestors of the hole: parent, grandparent, root = 3 discarded.
	if len(discarded) != 3 {
		t.Fatalf("discarded %d nodes, want 3 (the hole's ancestors)", len(discarded))
	}
	// Pieces must be sizes 4,2,1: the sibling subtrees along the hole's path.
	sizes := map[int]int{}
	for _, r := range roots {
		sizes[CountLeaves(r)]++
	}
	if sizes[4] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Fatalf("fragment pieces = %v, want {4:1,2:1,1:1}", sizes)
	}
}

func TestStripLoneInternalNode(t *testing.T) {
	// An internal node that lost both children is discarded entirely.
	h := buildInts(2)
	Detach(h.Left)
	Detach(h.Right)
	roots, discarded := Strip(h)
	if len(roots) != 0 || len(discarded) != 1 {
		t.Fatalf("lone internal: roots=%d discarded=%d, want 0/1", len(roots), len(discarded))
	}
}

func TestMergeEmptyAndSingleton(t *testing.T) {
	if Merge(nil, nil) != nil {
		t.Fatal("Merge(nil) != nil")
	}
	leaf := NewLeaf(7)
	if got := Merge([]*Node{leaf}, nil); got != leaf {
		t.Fatal("Merge of one tree should return it unchanged")
	}
}

// Figure 5: merging hafts with 5, 2 and 1 leaves is the binary addition
// 0101 + 0010 + 0001 = 1000.
func TestMergeFigure5(t *testing.T) {
	h5 := buildInts(5)
	h2 := buildInts(2)
	h1 := NewLeaf(99)
	var pieces []*Node
	for _, h := range []*Node{h5, h2, h1} {
		roots, _ := Strip(h)
		pieces = append(pieces, roots...)
	}
	merged := Merge(pieces, nil)
	if err := Validate(merged); err != nil {
		t.Fatalf("merged: %v", err)
	}
	if CountLeaves(merged) != 8 {
		t.Fatalf("merged has %d leaves, want 8", CountLeaves(merged))
	}
	if ok, ht := PerfectInfo(merged); !ok || ht != 3 {
		t.Fatalf("5+2+1 should be the perfect tree of height 3, got (%v,%d)", ok, ht)
	}
}

func TestMergeJoinCallbackSeesBiggerFirst(t *testing.T) {
	big := perfectTree(2, 0)   // 4 leaves
	small := perfectTree(0, 9) // 1 leaf
	calls := 0
	join := func(bigger, smaller *Node) *Node {
		calls++
		if bigger.LeafCount < smaller.LeafCount {
			t.Fatalf("join called with bigger=%d < smaller=%d",
				bigger.LeafCount, smaller.LeafCount)
		}
		return &Node{}
	}
	merged := Merge([]*Node{small, big}, join)
	if calls != 1 {
		t.Fatalf("join called %d times, want 1", calls)
	}
	if err := Validate(merged); err != nil {
		t.Fatal(err)
	}
	// The bigger tree must be the left child (haft property).
	if merged.Left != big || merged.Right != small {
		t.Fatal("bigger tree should be the left child")
	}
}

func TestMergeManyEqualSizes(t *testing.T) {
	// 2^k singletons must merge into the perfect tree of height k.
	for k := 0; k <= 7; k++ {
		n := 1 << k
		trees := make([]*Node, n)
		for i := range trees {
			trees[i] = NewLeaf(i)
		}
		merged := Merge(trees, nil)
		if ok, ht := PerfectInfo(merged); !ok || ht != k {
			t.Fatalf("2^%d singletons: perfect=(%v,%d)", k, ok, ht)
		}
		if err := Validate(merged); err != nil {
			t.Fatalf("2^%d singletons: %v", k, err)
		}
	}
}

// Property: merging arbitrary collections of perfect trees yields a valid
// haft over the union of the leaves, with each join pairing correct sizes.
func TestQuickMergeProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(10) + 1
		var trees []*Node
		total := 0
		next := 0
		for i := 0; i < k; i++ {
			h := rng.Intn(5)
			trees = append(trees, perfectTree(h, next))
			next += 1 << h
			total += 1 << h
		}
		joins := 0
		merged := Merge(trees, func(b, s *Node) *Node {
			joins++
			if b.LeafCount < s.LeafCount {
				return nil // will crash Link; signals violation
			}
			return &Node{}
		})
		if Validate(merged) != nil {
			return false
		}
		if CountLeaves(merged) != total {
			return false
		}
		return joins == k-1 // merging k trees always takes k-1 joins
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: strip-then-merge of a random haft reproduces the identical
// canonical shape (uniqueness, Lemma 1 part 1).
func TestQuickStripMergeRoundTrip(t *testing.T) {
	prop := func(raw uint16) bool {
		l := int(raw)%1000 + 1
		h := buildInts(l)
		roots, _ := Strip(h)
		merged := Merge(roots, nil)
		return Validate(merged) == nil &&
			CountLeaves(merged) == l &&
			sameShape(merged, buildInts(l))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeAll(t *testing.T) {
	// Three fragments: a haft(6), a damaged perfect(8) missing a leaf,
	// and a singleton. MergeAll should produce one valid haft over
	// 6 + 7 + 1 leaves.
	f1 := buildInts(6)
	f2 := buildInts(8)
	Detach(Leaves(f2)[3])
	f3 := NewLeaf("x")
	root, discarded := MergeAll([]*Node{f1, f2, f3}, nil)
	if err := Validate(root); err != nil {
		t.Fatal(err)
	}
	if got := CountLeaves(root); got != 14 {
		t.Fatalf("merged leaves = %d, want 14", got)
	}
	if len(discarded) == 0 {
		t.Fatal("expected discarded joiners from haft(6) and the damaged tree")
	}
}
