package haft

import (
	"fmt"
	"strings"
)

// Render draws the tree rooted at n as indented ASCII art, one node per
// line, children indented beneath their parent. label extracts a display
// string from a node; if nil, leaves render their payload with %v and
// internal nodes render as "*". Damaged links (missing children of
// internal nodes) render as "∅".
func Render(n *Node, label func(*Node) string) string {
	if label == nil {
		label = func(x *Node) string {
			if x.IsLeaf {
				return fmt.Sprintf("%v", x.Payload)
			}
			return "*"
		}
	}
	var b strings.Builder
	var walk func(x *Node, prefix string, isLast bool, isRoot bool)
	walk = func(x *Node, prefix string, isLast bool, isRoot bool) {
		connector := "├─ "
		childPrefix := prefix + "│  "
		if isLast {
			connector = "└─ "
			childPrefix = prefix + "   "
		}
		if isRoot {
			connector = ""
			childPrefix = ""
		}
		if x == nil {
			fmt.Fprintf(&b, "%s%s∅\n", prefix, connector)
			return
		}
		fmt.Fprintf(&b, "%s%s%s\n", prefix, connector, label(x))
		if x.IsLeaf {
			return
		}
		walk(x.Left, childPrefix, false, false)
		walk(x.Right, childPrefix, true, false)
	}
	walk(n, "", true, true)
	return b.String()
}

// LeafString renders the leaf payloads left to right, space separated —
// a compact fingerprint of a tree's frontier used in tests and demos.
func LeafString(n *Node) string {
	leaves := Leaves(n)
	parts := make([]string, len(leaves))
	for i, l := range leaves {
		parts[i] = fmt.Sprintf("%v", l.Payload)
	}
	return strings.Join(parts, " ")
}
