package haft

// Strip and primary-root discovery (paper Section 4.1.1, Lemma 2).
//
// A primary root is a node heading a complete (perfect) subtree whose
// parent, if any, does not head one. Stripping a haft with h ones in the
// binary representation of its leaf count removes exactly h-1 internal
// nodes (the "square" joiner nodes on the right spine) and leaves a
// forest of h complete trees.
//
// The same operation extends to arbitrary *fragments* of hafts — the
// connected pieces that remain after the Forgiving Graph deletes a
// processor's nodes from a Reconstruction Tree. There, a helper node
// survives only if its entire original subtree is intact, which is
// equivalent to its remaining subtree being structurally perfect.

// PrimaryRoots returns the roots of the maximal structurally perfect
// subtrees of the tree (or fragment) rooted at n, in left-to-right order.
// Genuine leaves count as perfect subtrees of height 0, so every genuine
// leaf of the fragment is covered by exactly one returned root. Internal
// nodes that head no perfect subtree are not covered by any root; for a
// valid haft these are exactly the h-1 joiner nodes.
func PrimaryRoots(n *Node) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(x *Node) {
		if x == nil {
			return
		}
		if ok, _ := PerfectInfo(x); ok {
			out = append(out, x)
			return
		}
		walk(x.Left)
		walk(x.Right)
	}
	walk(n)
	return out
}

// Strip detaches the maximal perfect subtrees of the fragment rooted at n
// and returns them (left-to-right) together with the internal nodes that
// were discarded in the process. After Strip, every returned root is
// parentless and every discarded node is fully unlinked. Stripping a
// valid haft over l leaves discards exactly popcount(l)-1 nodes.
func Strip(n *Node) (roots []*Node, discarded []*Node) {
	roots = PrimaryRoots(n)
	inRoots := make(map[*Node]struct{}, len(roots))
	for _, r := range roots {
		inRoots[r] = struct{}{}
	}
	var walk func(*Node)
	walk = func(x *Node) {
		if x == nil {
			return
		}
		if _, ok := inRoots[x]; ok {
			return
		}
		discarded = append(discarded, x)
		walk(x.Left)
		walk(x.Right)
	}
	walk(n)
	for _, r := range roots {
		Detach(r)
	}
	for _, d := range discarded {
		d.Parent = nil
		d.Left = nil
		d.Right = nil
	}
	return roots, discarded
}
