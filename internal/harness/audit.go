package harness

import (
	"math/rand"

	"repro/internal/audit"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// expAudit exercises the self-stabilizing audit layer two ways. The
// first table injects every corruption mode into a churned powerlaw
// network and measures detection-and-repair latency in audit pulses
// until the configuration is Verify-clean again. The second table
// measures the layer's clean-run message overhead — the silence
// property's price — under continuous mixed churn, no corruption.
func expAudit(o Options) []metrics.Table {
	n, injections, period := 128, 4, 32
	if o.Quick {
		n, injections = 64, 2
	}

	heal := metrics.Table{
		Title: "EXP-AUDIT: corruption detection and in-band repair",
		Columns: []string{"mode", "injections", "healed", "mean pulses to heal",
			"audit repairs", "deferred"},
	}
	heal.Notes = append(heal.Notes,
		"each injection perturbs live state silently mid-campaign; healing is the audit layer alone (no driver repair)",
		"clock corruption needs per-node clocks: not injectable on the round-synchronous simnet the harness measures on")
	for _, mode := range dist.CorruptModes {
		rng := rand.New(rand.NewSource(o.Seed + int64(mode)*101))
		s := dist.NewSimulation(graph.PreferentialAttachment(n, 3, rng))
		churn := func(k int) {
			for i := 0; i < k; i++ {
				live := s.LiveNodes()
				if len(live) <= 4 {
					return
				}
				v := live[rng.Intn(len(live))]
				for j := 0; j < 2; j++ {
					if c := live[rng.Intn(len(live))]; s.PhysicalDegree(c) > s.PhysicalDegree(v) {
						v = c
					}
				}
				if err := s.Delete(v); err != nil {
					panic(err)
				}
			}
		}
		churn(8)
		if err := s.EnableAudit(audit.Config{Period: period, Batch: 1 << 12}); err != nil {
			panic(err)
		}
		done, totalPulses := 0, 0
		attempted := 0
		for attempted < injections {
			rep, ok := s.Corrupt(mode, rng)
			if !ok {
				churn(2)
				if _, ok = s.Corrupt(mode, rng); !ok {
					break // mode has no eligible state on this substrate
				}
			}
			_ = rep
			attempted++
			healed := false
			for pulse := 1; pulse <= 12; pulse++ {
				for i := 0; i < period; i++ {
					s.Tick()
				}
				if s.Verify() == nil {
					done++
					totalPulses += pulse
					healed = true
					break
				}
			}
			if !healed {
				break
			}
			churn(1) // keep the campaign moving between injections
		}
		st := s.AuditStats()
		mean := 0.0
		if done > 0 {
			mean = float64(totalPulses) / float64(done)
		}
		heal.AddRow(mode.String(), metrics.D(attempted), metrics.D(done),
			metrics.F(mean), metrics.D(st.Repairs), metrics.D(st.Deferred))
	}

	overhead := metrics.Table{
		Title: "EXP-AUDIT: clean-run audit overhead (silence property's price)",
		Columns: []string{"n", "period", "campaign rounds", "audit msgs", "other msgs",
			"overhead %", "audit repairs"},
	}
	overhead.Notes = append(overhead.Notes,
		"continuous mixed churn, zero corruption: the audit keeps probing, never writes",
		"BenchmarkAuditOverhead gates the production cadence (audit.DefaultPeriod) at <= 5%")
	for _, p := range []int{period, 4 * period, 16 * period} {
		rng := rand.New(rand.NewSource(o.Seed + int64(p)))
		s := dist.NewSimulation(graph.PreferentialAttachment(n, 3, rng))
		if err := s.EnableAudit(audit.Config{Period: p, Batch: audit.DefaultBatch}); err != nil {
			panic(err)
		}
		nextID := dist.NodeID(1 << 18)
		for s.Round() <= 4*p {
			live := s.LiveNodes()
			perm := rng.Perm(len(live))
			var ops []dist.Op
			for _, idx := range perm[:3] {
				ops = append(ops, dist.Op{Kind: dist.OpDelete, V: live[idx]})
			}
			for j := 0; j < 3; j++ {
				ops = append(ops, dist.Op{Kind: dist.OpInsert, V: nextID, Nbrs: []dist.NodeID{live[perm[3+j]]}})
				nextID++
			}
			if err := s.Submit(ops...); err != nil {
				panic(err)
			}
			for !s.Idle() {
				s.Tick()
			}
		}
		st := s.AuditStats()
		auditMsgs, _ := s.AuditTraffic()
		other := s.NetMessages() - auditMsgs
		overhead.AddRow(metrics.D(n), metrics.D(p), metrics.D(s.Round()),
			metrics.D(auditMsgs), metrics.D(other),
			metrics.F(100*float64(auditMsgs)/float64(other)), metrics.D(st.Repairs))
	}
	return []metrics.Table{heal, overhead}
}
