package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// expBW: the bandwidth-limited simulation. The paper's model delivers
// every queued message in one round regardless of sender load, so the
// leader's O(d log n) instruction fan-out pays no round-count price.
// This sweep caps every edge at B message-words per round and measures
// what that honesty costs: rounds stretch as B shrinks while the
// message count — and the healed graph — stay exactly the ones of the
// unlimited run, and the leader's paced instruction bursts (spread on)
// cut the per-edge backlog the bursty protocol (spread off) piles up.
func expBW(o Options) []metrics.Table {
	caps := []int{0, 8, 4, 2, 1}
	if o.Quick {
		caps = []int{0, 4, 1}
	}
	if o.Bandwidth > 0 {
		seen := false
		for _, b := range caps {
			if b == o.Bandwidth {
				seen = true
			}
		}
		if !seen {
			caps = append(caps, o.Bandwidth)
		}
	}

	starN, plawN, plawKills := 64, 256, 24
	if o.Quick {
		starN, plawN, plawKills = 32, 64, 10
	}

	t := metrics.Table{
		Title: "EXP-BW: per-edge bandwidth B (words/round), hub repairs under congestion",
		Columns: []string{"topology", "n", "B", "spread", "deletions", "messages", "rounds",
			"congested rounds", "congested frac", "max edge backlog", "queued words"},
	}

	type scenario struct {
		topo  string
		n     int
		build func() *dist.Simulation
		runOp func(s *dist.Simulation, rng *rand.Rand) bool
		kills int
	}
	scenarios := []scenario{
		{
			// One hub deletion on a fresh star: the canonical leader
			// hotspot, everything funnels through the smallest ray.
			topo: "star", n: starN,
			build: func() *dist.Simulation { return dist.NewSimulation(graph.Star(starN)) },
			runOp: func(s *dist.Simulation, _ *rand.Rand) bool {
				if !s.Alive(0) {
					return false
				}
				return s.Delete(0) == nil
			},
			kills: 1,
		},
		{
			// Repeated hub-backlog deletions on a powerlaw network:
			// accumulated Reconstruction Trees stack several records per
			// neighbor, so death answers share edges and congest.
			topo: "powerlaw", n: plawN,
			build: func() *dist.Simulation {
				return dist.NewSimulation(graph.PreferentialAttachment(plawN, 3, rand.New(rand.NewSource(o.Seed+2))))
			},
			runOp: func(s *dist.Simulation, rng *rand.Rand) bool {
				op, ok := adversary.HubBacklogDelete{}.Next(distBatchView{s}, rng, nil)
				if !ok {
					return false
				}
				return s.Delete(op.V) == nil
			},
			kills: plawKills,
		},
	}

	for _, sc := range scenarios {
		for _, spread := range []bool{true, false} {
			for _, B := range caps {
				if B == 0 && !spread {
					continue // pacing is a no-op under unlimited bandwidth
				}
				s := sc.build()
				s.SetBandwidth(B)
				s.SetSpread(spread)
				rng := rand.New(rand.NewSource(o.Seed + 7))
				var agg metrics.Congestion
				msgs, dels := 0, 0
				for i := 0; i < sc.kills; i++ {
					if !sc.runOp(s, rng) {
						break
					}
					rs := s.LastRecovery()
					msgs += rs.Messages
					dels++
					agg = agg.Add(rs.QueuedWords, rs.MaxEdgeBacklog, rs.CongestionRounds, rs.Rounds)
				}
				bLabel := "inf"
				if B > 0 {
					bLabel = fmt.Sprintf("%d", B)
				}
				t.AddRow(sc.topo, metrics.D(sc.n), bLabel, fmt.Sprintf("%v", spread),
					metrics.D(dels), metrics.D(msgs), metrics.D(agg.Rounds),
					metrics.D(agg.CongestionRounds), metrics.F(agg.CongestedFrac()),
					metrics.D(agg.MaxEdgeBacklog), metrics.D(agg.QueuedWords))
			}
		}
	}
	t.Notes = append(t.Notes,
		"messages are identical for every B (bandwidth delays traffic, never changes it); only rounds grow",
		"spread=true paces the leader's instruction bursts: max edge backlog must not exceed the bursty run's",
		"the healed graph is asserted identical across B by internal/dist/bandwidth_test.go")
	return []metrics.Table{t}
}
