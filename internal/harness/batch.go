package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// expBatch: the churn-throughput experiment. Deletions arriving in
// bursts run through dist.Simulation.DeleteBatch, which overlaps the
// repairs of independent damaged regions; this sweep measures rounds
// and messages against batch size for the three burst shapes the
// adversary can produce — vertex-disjoint victims (best case: one
// wave regardless of k), uniformly random victims, and deliberately
// colliding clusters (worst case: maximal serialization). The claim
// under test is the throughput lever itself: rounds per batch must
// track the serialization depth (waves), not the batch size.
func expBatch(o Options) []metrics.Table {
	n := 256
	batches := 6
	ks := []int{1, 2, 4, 8, 16}
	if o.Quick {
		n, batches = 64, 3
		ks = []int{1, 4}
	}
	strategies := []adversary.BatchStrategy{
		adversary.DisjointBatch{},
		adversary.RandomBatch{},
		adversary.CollidingBatch{},
	}
	t := metrics.Table{
		Title: fmt.Sprintf("EXP-BATCH: batched deletions on powerlaw n=%d, %d batches per cell", n, batches),
		Columns: []string{"strategy", "k", "deletions", "mean rounds/batch", "mean waves",
			"mean groups", "msgs/deletion", "rounds/(waves x single)"},
	}
	// Baseline: the rounds of one isolated deletion on this topology.
	single := func(seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		s := dist.NewSimulation(graph.PreferentialAttachment(n, 3, rng))
		live := s.LiveNodes()
		if err := s.Delete(live[rng.Intn(len(live))]); err != nil {
			panic(err)
		}
		return float64(s.LastRecovery().Rounds)
	}(o.Seed + 1)

	for _, strat := range strategies {
		for _, k := range ks {
			rng := rand.New(rand.NewSource(o.Seed + int64(100*k)))
			s := dist.NewSimulation(graph.PreferentialAttachment(n, 3, rng))
			s.SetParallel(true)
			view := distBatchView{s}
			var rounds, waves, groups, msgs, dels float64
			ran := 0
			for b := 0; b < batches; b++ {
				batch := strat.NextBatch(view, rng, k)
				if len(batch) == 0 {
					break
				}
				if err := s.DeleteBatch(batch); err != nil {
					panic(err)
				}
				bs := s.LastBatch()
				rounds += float64(bs.Rounds)
				waves += float64(bs.Waves)
				groups += float64(bs.Groups)
				msgs += float64(bs.Messages)
				dels += float64(bs.Batch)
				ran++
			}
			if ran == 0 {
				continue
			}
			f := float64(ran)
			norm := 0.0
			if waves > 0 && single > 0 {
				norm = rounds / (waves / f * single) / f
			}
			t.AddRow(strat.Name(), metrics.D(k), metrics.D(int(dels)),
				metrics.F(rounds/f), metrics.F(waves/f), metrics.F(groups/f),
				metrics.F(msgs/dels), metrics.F(norm))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("single isolated deletion on this topology: %.0f rounds", single),
		"disjoint victims must keep waves ~1 and rounds ~independent of k; colliding clusters serialize (waves -> k)",
		"rounds/(waves x single) staying O(1) is the throughput claim: cost tracks serialization depth, not batch size")
	return []metrics.Table{t}
}

// distBatchView adapts dist.Simulation to adversary.View for batch
// selection.
type distBatchView struct{ s *dist.Simulation }

func (v distBatchView) LiveNodes() []graph.NodeID { return v.s.LiveNodes() }
func (v distBatchView) Network() *graph.Graph     { return v.s.Physical() }
func (v distBatchView) GPrime() *graph.Graph      { return v.s.GPrime() }

// StubCount / StubAt expose the simulation's incremental stub index,
// making the view an adversary.StubView: preferential-attachment churn
// samples in O(log n) instead of materializing the stub slice.
func (v distBatchView) StubCount() int            { return v.s.StubCount() }
func (v distBatchView) StubAt(i int) graph.NodeID { return v.s.StubAt(i) }
