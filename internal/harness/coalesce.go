package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/channet"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// expCoalesce: the coalescing admission queue's headline experiment.
// A churn-heavy schedule on a powerlaw network is drained twice with
// identical submission pacing — coalescer off, then on — and the wire
// cost is the network's own delivered-message counter. The schedule's
// flap fraction sweeps from light to heavy: a flap is an insert whose
// delete arrives within the hold window, so the pair annihilates in
// the admission queue and neither the insert messages nor the repair
// are ever sent. The claims under test: message traffic drops >= 30%
// on the flap-heavy row at identical logical ops, the healed graph is
// bit-identical to the serialized blocking replay of the effective
// sequence (submission order minus the cancelled pairs), and the
// cancellation decisions replicate exactly on a seeded channet.
func expCoalesce(o Options) []metrics.Table {
	n := 256
	ops := 128
	flaps := []float64{0.20, 0.45, 0.70}
	if o.Quick {
		n, ops = 64, 48
		flaps = []float64{0.45, 0.70}
	}
	const window = 4
	headline := flaps[len(flaps)-1]

	t := metrics.Table{
		Title: fmt.Sprintf("EXP-COALESCE: coalescing admission on powerlaw n=%d, %d submissions per row, window=%d", n, ops, window),
		Columns: []string{"flap frac", "ops", "msgs off", "msgs on", "reduction",
			"cancelled", "merged", "counter saved", "rounds off", "rounds on"},
	}
	var agg metrics.Coalesce
	for _, flapP := range flaps {
		rng := rand.New(rand.NewSource(o.Seed + int64(flapP*1000)))
		base := graph.PreferentialAttachment(n, 3, rng)
		sched := genFlapSchedule(base, ops, flapP, o.Seed+int64(flapP*100)+13)

		off, offCancelled := runFlapSchedule(base, sched, nil, nil)
		on, onCancelled := runFlapSchedule(base, sched, &dist.CoalesceConfig{Window: window}, nil)
		defer off.Close()
		defer on.Close()
		if len(offCancelled) != 0 {
			panic("EXP-COALESCE: the coalescer-off twin reported cancellations")
		}

		// The off twin is itself a correctness check: with nothing
		// elided it must heal exactly like the blocking replay of the
		// full sequence.
		assertEffectiveReplay(base, sched, off, offCancelled)
		// The on twin must heal exactly like the blocking replay of
		// the effective sequence: submission order minus the pairs the
		// admission queue annihilated.
		assertEffectiveReplay(base, sched, on, onCancelled)

		st := on.CoalesceStats()
		agg = agg.Add(st.Submitted, st.Cancelled, st.Merged, st.Admitted, st.MessagesSaved)
		msgsOff, msgsOn := off.NetMessages(), on.NetMessages()
		reduction := 0.0
		if msgsOff > 0 {
			reduction = 1 - float64(msgsOn)/float64(msgsOff)
		}
		if flapP == headline && reduction < 0.30 {
			panic(fmt.Sprintf("EXP-COALESCE: flap-heavy row saved only %.1f%% of messages, want >= 30%%",
				100*reduction))
		}

		// The coalescing contract on a second backend: the same
		// schedule on a seeded channet must also heal bit-identically
		// to the blocking replay of ITS effective sequence. The
		// cancellation set itself may legitimately differ — a delete
		// annihilates an insert still deferred inside a damaged
		// region, and how many driver ticks that deferral spans is
		// transport-paced — which is exactly why the check replays
		// each backend's own effective sequence.
		if flapP == headline {
			ch, chCancelled := runFlapSchedule(base, sched, &dist.CoalesceConfig{Window: window}, channet.NewSeeded(o.Seed+5))
			defer ch.Close()
			assertEffectiveReplay(base, sched, ch, chCancelled)
			if ch.CoalesceStats().Cancelled == 0 {
				panic("EXP-COALESCE: the channet twin never cancelled: the flap bait did not fire")
			}
		}

		t.AddRow(metrics.F(flapP), metrics.D(len(sched)),
			metrics.D(msgsOff), metrics.D(msgsOn),
			fmt.Sprintf("%.1f%%", 100*reduction),
			metrics.D(st.Cancelled), metrics.D(st.Merged), metrics.D(st.MessagesSaved),
			metrics.D(off.Round()), metrics.D(on.Round()))
	}
	t.Notes = append(t.Notes,
		"both twins submit the identical schedule with identical tick pacing — logical ops are equal by construction",
		"msgs is the transport's delivered-message total for the whole drain; reduction = 1 - on/off",
		"the flap-heavy row must save >= 30% of messages; the off twin and the effective replay pin correctness",
		"healed graphs asserted bit-identical to the blocking replay of the effective sequence on every row (simnet), and again on a seeded channet on the flap-heavy row",
		fmt.Sprintf("aggregate over the sweep: %d submitted, %d cancelled (%.1f%%), %d merged, counter claims %d messages never sent",
			agg.Submitted, agg.Cancelled, 100*agg.CancelledFrac(), agg.Merged, agg.MessagesSaved))
	return []metrics.Table{t}
}

// flapOp is one submission of an EXP-COALESCE schedule: the operation
// plus the driver ticks to run before the next submission.
type flapOp struct {
	op    dist.Op
	delay int
}

// genFlapSchedule derives a valid churn schedule in which a flapP
// fraction of the moves are flap pairs: an insert of a fresh node with
// 3-5 neighbors followed within the hold window by its deletion. The
// rest is merge bait (neighboring deletions back to back), plain
// inserts, and plain deletes. Validity comes from applying every op to
// a scratch blocking twin; flap pairs leave node aliveness exactly as
// if they never happened, so the schedule stays valid for the
// coalescing engine that elides them.
func genFlapSchedule(g0 *graph.Graph, ops int, flapP float64, seed int64) []flapOp {
	twin := dist.NewSimulation(g0)
	rng := rand.New(rand.NewSource(seed))
	nextID := graph.NodeID(1 << 20)
	var sched []flapOp
	emit := func(op dist.Op, delay int) { sched = append(sched, flapOp{op: op, delay: delay}) }
	insert := func(k, delay int) graph.NodeID {
		live := twin.LiveNodes()
		if k > len(live) {
			k = len(live)
		}
		v := nextID
		nextID++
		var nbrs []graph.NodeID
		for _, idx := range rng.Perm(len(live))[:k] {
			nbrs = append(nbrs, live[idx])
		}
		if err := twin.Insert(v, nbrs); err != nil {
			panic(err)
		}
		emit(dist.Op{Kind: dist.OpInsert, V: v, Nbrs: nbrs}, delay)
		return v
	}
	del := func(v graph.NodeID, delay int) {
		if err := twin.Delete(v); err != nil {
			panic(err)
		}
		emit(dist.Op{Kind: dist.OpDelete, V: v}, delay)
	}
	for len(sched) < ops {
		live := twin.LiveNodes()
		if len(live) < 8 {
			break
		}
		switch r := rng.Float64(); {
		case r < flapP:
			// Flap: the delete lands 0-1 ticks after the insert, well
			// inside the window, so the pair annihilates. Degree 4-6
			// makes the elided repair comparable to a typical
			// powerlaw deletion, so the saving tracks the flap
			// fraction rather than vanishing into hub repairs.
			v := insert(4+rng.Intn(3), rng.Intn(2))
			del(v, rng.Intn(2))
		case r < flapP+0.15:
			// Merge bait: delete a node, then one of its former
			// physical neighbors — the second repair chains behind the
			// first with a pre-appointed leader.
			v := live[rng.Intn(len(live))]
			nb := twin.Physical().Neighbors(v)
			del(v, rng.Intn(2))
			for _, w := range nb {
				if twin.Alive(w) {
					del(w, rng.Intn(3))
					break
				}
			}
		case r < flapP+0.25:
			insert(1+rng.Intn(2), rng.Intn(3))
		default:
			del(live[rng.Intn(len(live))], rng.Intn(3))
		}
	}
	return sched
}

// runFlapSchedule drives one schedule through a fresh engine (on the
// given transport; nil = simnet), drains it, and returns the engine
// plus the set of cancelled sequence numbers (Seq counts from 1 in
// submission order). Any rejection panics: the schedule is valid by
// construction.
func runFlapSchedule(g0 *graph.Graph, sched []flapOp, cfg *dist.CoalesceConfig, net transport.Transport) (*dist.Simulation, map[int]bool) {
	var s *dist.Simulation
	if net != nil {
		s = dist.NewSimulationOn(g0, net)
	} else {
		s = dist.NewSimulation(g0)
	}
	if cfg != nil {
		s.SetCoalescing(*cfg)
	}
	for _, so := range sched {
		if err := s.Submit(so.op); err != nil {
			panic(err)
		}
		for r := 0; r < so.delay; r++ {
			s.Tick()
		}
	}
	if err := s.Drain(); err != nil {
		panic(err)
	}
	cancelled := make(map[int]bool)
	completed := 0
	for _, ev := range s.Poll() {
		switch ev.Kind {
		case dist.EventRepairDone, dist.EventInsertApplied:
			completed++
		case dist.EventOpCancelled:
			cancelled[ev.Seq] = true
		case dist.EventOpRejected:
			panic(fmt.Sprintf("EXP-COALESCE: valid op rejected: %v: %v", ev.Op, ev.Err))
		}
	}
	if completed+len(cancelled) != len(sched) {
		panic(fmt.Sprintf("EXP-COALESCE: %d submitted but %d completed + %d cancelled",
			len(sched), completed, len(cancelled)))
	}
	return s, cancelled
}

// assertEffectiveReplay checks the coalescing contract: the engine's
// healed graph and G' must be bit-identical to a serialized blocking
// replay of the effective sequence — submission order with the
// cancelled pairs removed.
func assertEffectiveReplay(g0 *graph.Graph, sched []flapOp, s *dist.Simulation, cancelled map[int]bool) {
	eff := dist.NewSimulation(g0)
	for i, so := range sched {
		if cancelled[i+1] {
			continue
		}
		var err error
		switch so.op.Kind {
		case dist.OpInsert:
			err = eff.Insert(so.op.V, so.op.Nbrs)
		case dist.OpDelete:
			err = eff.Delete(so.op.V)
		}
		if err != nil {
			panic(fmt.Sprintf("EXP-COALESCE: effective replay op %d (%v): %v", i+1, so.op, err))
		}
	}
	if !s.Physical().Equal(eff.Physical()) {
		panic("EXP-COALESCE: healed graph diverges from the effective-sequence blocking replay")
	}
	if !s.GPrime().Equal(eff.GPrime()) {
		panic("EXP-COALESCE: G' diverges from the effective-sequence blocking replay")
	}
	if err := s.Verify(); err != nil {
		panic(err)
	}
}
