package harness

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/dist"
	"repro/internal/ftree"
	"repro/internal/graph"
	"repro/internal/haft"
	"repro/internal/heal"
	"repro/internal/metrics"
)

// Options tune an experiment run.
type Options struct {
	// Quick shrinks sweeps for benchmarks and CI.
	Quick bool
	// Seed drives every random choice; runs are reproducible.
	Seed int64
	// Bandwidth adds one extra per-edge cap (words/round) to the
	// EXP-BW sweep when positive; 0 leaves the default sweep.
	Bandwidth int
}

// Experiment is one entry of DESIGN.md's per-experiment index.
type Experiment struct {
	ID    string
	Title string
	// Claim is the paper statement being validated.
	Claim string
	Run   func(o Options) []metrics.Table
}

// Experiments returns the registry in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID:    "EXP-HAFT",
			Title: "Half-full tree shape (Lemma 1)",
			Claim: "haft(l) is unique, splits into popcount(l) complete trees, depth = ceil(log2 l)",
			Run:   expHaft,
		},
		{
			ID:    "EXP-DEGREE",
			Title: "Degree amplification (Theorem 1.1)",
			Claim: "degree(v, G_T) <= 3 x degree(v, G'_T) (hard bound 4; see DESIGN.md)",
			Run:   expDegree,
		},
		{
			ID:    "EXP-STRETCH",
			Title: "Stretch (Theorem 1.2)",
			Claim: "dist(x,y,G_T) <= log2(n) x dist(x,y,G'_T)",
			Run:   expStretch,
		},
		{
			ID:    "EXP-COST",
			Title: "Repair cost (Theorem 1.3 / Lemma 4)",
			Claim: "O(d log n) messages of size O(log n), O(log d log n) rounds per repair",
			Run:   expCost,
		},
		{
			ID:    "EXP-LOWER",
			Title: "Degree/stretch tradeoff on the star (Theorem 2)",
			Claim: "any healer with degree factor alpha has stretch beta >= 1/2 log_{alpha-1}(n-1)",
			Run:   expLower,
		},
		{
			ID:    "EXP-COMPARE",
			Title: "Forgiving Graph vs baselines under attack",
			Claim: "naive strategies lose: no-heal shatters, cycle-heal stretches, adopt-heal blows up degree",
			Run:   expCompare,
		},
		{
			ID:    "EXP-CHURN",
			Title: "Adversarial insertions and deletions (Forgiving Tree cannot)",
			Claim: "bounds hold under mixed churn; the Forgiving Tree has no insertion guarantee",
			Run:   expChurn,
		},
		{
			ID:    "EXP-LOCALITY",
			Title: "Repair locality and zero initialization",
			Claim: "repairs touch O(d log n) processors; no pre-processing phase",
			Run:   expLocality,
		},
		{
			ID:    "EXP-BATCH",
			Title: "Batched concurrent deletions (churn throughput)",
			Claim: "repairs of independent regions overlap: rounds track serialization depth, not batch size",
			Run:   expBatch,
		},
		{
			ID:    "EXP-OPENLOOP",
			Title: "Open-loop continuous churn (async Submit/Tick engine)",
			Claim: "submitting ops mid-repair pipelines disjoint repairs: ops/round beats the closed loop, healed graph bit-identical to the serialized replay",
			Run:   expOpenLoop,
		},
		{
			ID:    "EXP-COALESCE",
			Title: "Coalescing admission queue (cancel/merge churn before the wire)",
			Claim: "annihilating flapped insert/delete pairs and merging overlapping deletions cuts wire traffic >= 30% on flap-heavy churn at identical logical ops; healed graph bit-identical to the effective-sequence replay on simnet and seeded channet",
			Run:   expCoalesce,
		},
		{
			ID:    "EXP-BW",
			Title: "Bandwidth-limited repair (congestion model)",
			Claim: "finite per-edge bandwidth changes rounds, never messages or the healed graph; leader pacing shrinks edge backlog",
			Run:   expBW,
		},
		{
			ID:    "EXP-HET",
			Title: "Heterogeneous link capacities (fast core / slow edge links)",
			Claim: "capacity maps change rounds and backlog, never messages or the healed graph; slow-link attacks cost more rounds than oblivious ones",
			Run:   expHet,
		},
		{
			ID:    "EXP-RTDEPTH",
			Title: "Reconstruction Tree depth (Lemma 1, dynamically)",
			Claim: "every RT produced by a repair has depth ceil(log2 leaves)",
			Run:   expRTDepth,
		},
		{
			ID:    "EXP-ABLATE",
			Title: "Ablation: representative placement policy",
			Claim: "the x4 degree worst case is intrinsic, not a placement artifact",
			Run:   expAblate,
		},
		{
			ID:    "EXP-SPAN",
			Title: "Extension: G'-span of repair edges (paper's open problem)",
			Claim: "how far the added edges reach in the original network",
			Run:   expSpan,
		},
		{
			ID:    "EXP-AUDIT",
			Title: "Extension: self-stabilizing audit under corruption faults",
			Claim: "every silent corruption mode is detected by O(1)-word neighbor probes and healed in-band within a few audit pulses; clean-run overhead stays <= 5% of traffic",
			Run:   expAudit,
		},
	}
}

// ExperimentByID resolves one experiment.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// expHaft: Lemma 1 over a size sweep.
func expHaft(o Options) []metrics.Table {
	sizes := []int{1, 2, 3, 5, 7, 8, 21, 64, 100, 255, 256, 1000, 4096, 100000, 1 << 20}
	if o.Quick {
		sizes = []int{1, 3, 7, 21, 255, 1024}
	}
	t := metrics.Table{
		Title:   "EXP-HAFT: haft(l) shape vs Lemma 1",
		Columns: []string{"l", "depth", "ceil(log2 l)", "primary roots", "popcount(l)", "helpers", "l-1"},
	}
	for _, l := range sizes {
		h := haft.Build(l, nil)
		roots := haft.PrimaryRoots(h)
		t.AddRow(
			metrics.D(l),
			metrics.D(haft.Depth(h)),
			metrics.D(haft.CeilLog2(l)),
			metrics.D(len(roots)),
			metrics.D(bits.OnesCount(uint(l))),
			metrics.D(len(haft.Internal(h))),
			metrics.D(l-1),
		)
	}
	t.Notes = append(t.Notes, "depth must equal ceil(log2 l); primary roots must equal popcount(l)")
	return []metrics.Table{t}
}

func degreeStretchSweep(o Options, measureStretch bool) metrics.Table {
	ns := []int{64, 256, 1024}
	seeds := 3
	steps := func(n int) int { return n / 2 }
	if o.Quick {
		ns = []int{32, 64}
		seeds = 1
	}
	topos := []string{"gnp", "powerlaw", "grid", "star"}
	advNames := []string{"random", "maxdeg", "rt-target"}
	title, cols := "EXP-DEGREE: max degree ratio after deleting half the nodes",
		[]string{"topology", "adversary", "n", "max ratio", "mean ratio", "nodes>3x", "max additive", "bound"}
	if measureStretch {
		title = "EXP-STRETCH: max stretch after deleting half the nodes"
		cols = []string{"topology", "adversary", "n", "max stretch", "mean stretch", "bound log2(n)", "within bound"}
	}
	t := metrics.Table{Title: title, Columns: cols}
	for _, topo := range topos {
		gen, err := graph.Generator(topo)
		if err != nil {
			panic(err)
		}
		for _, advName := range advNames {
			adv, err := adversary.ByName(advName)
			if err != nil {
				panic(err)
			}
			for _, n := range ns {
				// Aggregate the worst case over several seeds so the
				// headline numbers are not one lucky draw.
				worst := struct {
					degMax, degMean, stretchMax, stretchMean, bound float64
					over3, maxAdd, nodes                            int
				}{}
				for seed := 0; seed < seeds; seed++ {
					g0 := gen(n, rand.New(rand.NewSource(o.Seed+int64(n)+int64(1000*seed))))
					r := NewRunner(g0, ForgivingFactory(), adv, o.Seed+int64(n)+int64(seed)+7)
					if err := r.RunSteps(steps(g0.NumNodes())); err != nil {
						panic(err)
					}
					sample := 0
					if g0.NumNodes() > 128 {
						sample = 24
					}
					p := r.Measure(sample)
					worst.nodes = g0.NumNodes()
					if p.Degree.Max > worst.degMax {
						worst.degMax = p.Degree.Max
					}
					if p.Degree.Mean > worst.degMean {
						worst.degMean = p.Degree.Mean
					}
					if p.Degree.Over3 > worst.over3 {
						worst.over3 = p.Degree.Over3
					}
					if p.Degree.MaxAbsIncrease > worst.maxAdd {
						worst.maxAdd = p.Degree.MaxAbsIncrease
					}
					if p.Stretch.Max > worst.stretchMax {
						worst.stretchMax = p.Stretch.Max
					}
					if p.Stretch.Mean > worst.stretchMean {
						worst.stretchMean = p.Stretch.Mean
					}
					worst.bound = metrics.Bound(p.NEver)
				}
				if measureStretch {
					t.AddRow(topo, advName, metrics.D(worst.nodes),
						metrics.F(worst.stretchMax), metrics.F(worst.stretchMean),
						metrics.F(worst.bound),
						fmt.Sprintf("%v", worst.stretchMax <= worst.bound+1e-9))
				} else {
					t.AddRow(topo, advName, metrics.D(worst.nodes),
						metrics.F(worst.degMax), metrics.F(worst.degMean),
						metrics.D(worst.over3), metrics.D(worst.maxAdd), "4")
				}
			}
		}
	}
	if measureStretch {
		t.Notes = append(t.Notes,
			fmt.Sprintf("worst case over %d seeds; stretch sampled over 24 BFS sources for n>128, exact otherwise", seeds))
	} else {
		t.Notes = append(t.Notes,
			fmt.Sprintf("worst case over %d seeds", seeds),
			"paper states 3x; literal Algorithm A.9 admits 4x on spine helpers (DESIGN.md), so the hard bound is 4")
	}
	return t
}

func expDegree(o Options) []metrics.Table  { return []metrics.Table{degreeStretchSweep(o, false)} }
func expStretch(o Options) []metrics.Table { return []metrics.Table{degreeStretchSweep(o, true)} }

// expCost: Lemma 4 on the distributed protocol.
func expCost(o Options) []metrics.Table {
	ns := []int{16, 32, 64, 128, 256, 512}
	if o.Quick {
		ns = []int{16, 32, 64}
	}
	star := metrics.Table{
		Title: "EXP-COST (a): star hub deletion, degree d = n-1",
		Columns: []string{"n", "d", "messages", "msgs/(d log2 n)", "rounds",
			"rounds/(log2 d log2 n)", "max msg words", "maxwords/log2 n", "max sent by node"},
	}
	for _, n := range ns {
		s := dist.NewSimulation(graph.Star(n))
		if err := s.Delete(0); err != nil {
			panic(err)
		}
		rs := s.LastRecovery()
		d := float64(rs.DegreePrime)
		logn := math.Log2(float64(n))
		logd := math.Log2(d)
		star.AddRow(
			metrics.D(n), metrics.D(rs.DegreePrime), metrics.D(rs.Messages),
			metrics.F(float64(rs.Messages)/(d*logn)),
			metrics.D(rs.Rounds), metrics.F(float64(rs.Rounds)/(logd*logn)),
			metrics.D(rs.MaxWords), metrics.F(float64(rs.MaxWords)/logn),
			metrics.D(rs.MaxSentByNode),
		)
	}
	star.Notes = append(star.Notes,
		"normalized columns must stay bounded by a constant as n grows (Lemma 4)")

	churn := metrics.Table{
		Title: "EXP-COST (b): random deletions on G(n,p), per-repair cost vs d log n",
		Columns: []string{"n", "repairs", "mean msgs/(d log2 n)", "p95 msgs/(d log2 n)",
			"mean rounds", "max msg words"},
	}
	cns := []int{32, 64, 128, 256}
	if o.Quick {
		cns = []int{32, 64}
	}
	for _, n := range cns {
		rng := rand.New(rand.NewSource(o.Seed + int64(n)))
		s := dist.NewSimulation(graph.GNP(n, 4.0/float64(n), rng))
		var ratios, rounds []float64
		maxWords := 0
		kills := n / 2
		for i := 0; i < kills; i++ {
			live := s.LiveNodes()
			if len(live) == 0 {
				break
			}
			v := live[rng.Intn(len(live))]
			if err := s.Delete(v); err != nil {
				panic(err)
			}
			rs := s.LastRecovery()
			if rs.DegreePrime == 0 {
				continue
			}
			logn := math.Log2(float64(s.GPrime().NumNodes()))
			ratios = append(ratios, float64(rs.Messages)/(float64(rs.DegreePrime)*logn))
			rounds = append(rounds, float64(rs.Rounds))
			if rs.MaxWords > maxWords {
				maxWords = rs.MaxWords
			}
		}
		rsum := metrics.Summarize(ratios)
		churn.AddRow(metrics.D(n), metrics.D(rsum.N),
			metrics.F(rsum.Mean), metrics.F(rsum.P95),
			metrics.F(metrics.Summarize(rounds).Mean), metrics.D(maxWords))
	}
	return []metrics.Table{star, churn}
}

// expLower: the Theorem 2 tradeoff on the star.
func expLower(o Options) []metrics.Table {
	ns := []int{64, 256, 1024}
	if o.Quick {
		ns = []int{32, 64}
	}
	factories := append([]heal.Factory{
		ForgivingFactory(),
		{Name: "forgiving-tree", New: func(g *graph.Graph) heal.Healer { return ftree.New(g) }},
	}, baseline.Factories()...)

	t := metrics.Table{
		Title: "EXP-LOWER: delete the star hub; realized (alpha, beta) per healer vs Theorem 2",
		Columns: []string{"n", "healer", "alpha (deg ratio)", "beta (stretch)",
			"lower bound 1/2 log_{alpha-1}(n-1)", "ok"},
	}
	for _, n := range ns {
		for _, f := range factories {
			h := f.New(graph.Star(n))
			if err := h.Delete(0); err != nil {
				panic(err)
			}
			net, gp, live := h.Network(), h.GPrime(), h.LiveNodes()
			deg := metrics.Degrees(net, gp, live)
			st := metrics.Stretch(net, gp, live, 0, nil)
			lb := lowerBound(deg.Max, n)
			ok := "yes"
			if !math.IsInf(st.Max, 1) && lb > 0 && st.Max < lb-1e-9 {
				ok = "VIOLATION"
			}
			beta := metrics.F(st.Max)
			if math.IsInf(st.Max, 1) {
				beta = "inf (disconnected)"
			}
			t.AddRow(metrics.D(n), f.Name, metrics.F(deg.Max), beta, metrics.F(lb), ok)
		}
	}
	t.Notes = append(t.Notes,
		"Theorem 2: no healer can sit below the bound; the Forgiving Graph should be within ~2x of it",
		"lower bound reported as 0 when alpha <= 2 (the theorem requires alpha >= 3)")
	return []metrics.Table{t}
}

func lowerBound(alpha float64, n int) float64 {
	if alpha <= 2 {
		return 0
	}
	return 0.5 * math.Log(float64(n-1)) / math.Log(alpha-1)
}

// expCompare: all healers under targeted attack.
func expCompare(o Options) []metrics.Table {
	n := 128
	kills := 50
	if o.Quick {
		n, kills = 48, 19
	}
	factories := append([]heal.Factory{
		ForgivingFactory(),
		{Name: "forgiving-tree", New: func(g *graph.Graph) heal.Healer { return ftree.New(g) }},
	}, baseline.Factories()...)
	advs := []string{"maxdeg", "random"}

	t := metrics.Table{
		Title: fmt.Sprintf("EXP-COMPARE: power-law n=%d, delete %d nodes", n, kills),
		Columns: []string{"adversary", "healer", "max stretch", "mean stretch",
			"max deg ratio", "max deg additive", "largest comp frac"},
	}
	for _, advName := range advs {
		adv, err := adversary.ByName(advName)
		if err != nil {
			panic(err)
		}
		g0 := graph.PreferentialAttachment(n, 3, rand.New(rand.NewSource(o.Seed+77)))
		for _, f := range factories {
			r := NewRunner(g0, f, adv, o.Seed+5)
			if err := r.RunSteps(kills); err != nil {
				panic(err)
			}
			p := r.Measure(0)
			maxStretch := metrics.F(p.Stretch.Max)
			if math.IsInf(p.Stretch.Max, 1) {
				maxStretch = "inf"
			}
			t.AddRow(advName, f.Name, maxStretch, metrics.F(p.Stretch.Mean),
				metrics.F(p.Degree.Max), metrics.D(p.Degree.MaxAbsIncrease),
				metrics.F(p.LCC))
		}
	}
	t.Notes = append(t.Notes,
		"the Forgiving Graph must keep stretch <= log2(n) with degree ratio <= 4 and the network whole")
	return []metrics.Table{t}
}

// expChurn: mixed adversarial insertions and deletions.
func expChurn(o Options) []metrics.Table {
	n := 64
	steps := 2 * n
	if o.Quick {
		n, steps = 24, 48
	}
	t := metrics.Table{
		Title: fmt.Sprintf("EXP-CHURN: mixed insert/delete churn, %d steps from n=%d", steps, n),
		Columns: []string{"healer", "step", "alive", "n ever", "max stretch",
			"bound log2(n)", "within", "max deg ratio"},
	}
	factories := []heal.Factory{
		ForgivingFactory(),
		{Name: "forgiving-tree", New: func(g *graph.Graph) heal.Healer { return ftree.New(g) }},
	}
	adv := adversary.Churn{InsertP: 0.4, AttachK: 2, Preferential: true, Delete: adversary.MaxDegreeDelete{}}
	for _, f := range factories {
		g0 := graph.GNP(n, 4.0/float64(n), rand.New(rand.NewSource(o.Seed+3)))
		r := NewRunner(g0, f, adv, o.Seed+11)
		checkEvery := steps / 4
		for done := 0; done < steps; done += checkEvery {
			if err := r.RunSteps(checkEvery); err != nil {
				panic(err)
			}
			p := r.Measure(0)
			bound := metrics.Bound(p.NEver)
			t.AddRow(f.Name, metrics.D(p.Steps), metrics.D(p.Alive), metrics.D(p.NEver),
				metrics.F(p.Stretch.Max), metrics.F(bound),
				fmt.Sprintf("%v", p.Stretch.Max <= bound+1e-9),
				metrics.F(p.Degree.Max))
		}
	}
	t.Notes = append(t.Notes,
		"the Forgiving Graph must stay within bound at every checkpoint; the Forgiving Tree carries no insertion guarantee")
	return []metrics.Table{t}
}

// expLocality: the repair touches few processors and needs no
// initialization phase.
func expLocality(o Options) []metrics.Table {
	ns := []int{32, 64, 128, 256}
	if o.Quick {
		ns = []int{32, 64}
	}
	t := metrics.Table{
		Title: "EXP-LOCALITY: single random deletion on G(n,p): how much of the network participates",
		Columns: []string{"n", "deleted degree d", "|BT_v|", "messages",
			"msgs/(d log2 n)", "preproc msgs (Forgiving Tree needs O(n log n))"},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(o.Seed + int64(n)))
		s := dist.NewSimulation(graph.GNP(n, 4.0/float64(n), rng))
		live := s.LiveNodes()
		v := live[rng.Intn(len(live))]
		if err := s.Delete(v); err != nil {
			panic(err)
		}
		rs := s.LastRecovery()
		d := rs.DegreePrime
		ratio := 0.0
		if d > 0 {
			ratio = float64(rs.Messages) / (float64(d) * math.Log2(float64(n)))
		}
		t.AddRow(metrics.D(n), metrics.D(d), metrics.D(rs.NsetSize),
			metrics.D(rs.Messages), metrics.F(ratio), "0")
	}
	t.Notes = append(t.Notes,
		"the Forgiving Graph has no pre-processing phase; repair traffic scales with d log n, not n")
	return []metrics.Table{t}
}
