package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/haft"
	"repro/internal/heal"
	"repro/internal/metrics"
)

// Extension experiments beyond the paper's stated results: the
// representative-policy ablation (a design knob DESIGN.md discusses)
// and the repair-edge span measurement (the paper's own future-work
// question about locality-constrained edge insertion).

// expAblate compares representative policies: which tree's free leaf is
// charged with simulating a new helper. The finding (asserted in
// core/policy_test.go) is that the ×4 degree worst case is intrinsic to
// the representative mechanism, not a placement artifact.
func expAblate(o Options) []metrics.Table {
	ns := []int{64, 256}
	kills := func(n int) int { return n / 2 }
	if o.Quick {
		ns = []int{32}
	}
	policies := []core.RepPolicy{core.RepPaper, core.RepSmaller, core.RepGreedy}
	topos := []string{"star", "powerlaw", "gnp"}

	t := metrics.Table{
		Title: "EXP-ABLATE: representative policy (who simulates new helpers)",
		Columns: []string{"topology", "n", "policy", "max deg ratio", "mean deg ratio",
			"max stretch", "helpers created"},
	}
	for _, topo := range topos {
		gen, err := graph.Generator(topo)
		if err != nil {
			panic(err)
		}
		for _, n := range ns {
			g0 := gen(n, rand.New(rand.NewSource(o.Seed+int64(n))))
			for _, policy := range policies {
				policy := policy
				f := heal.Factory{
					Name: "fg-" + policy.String(),
					New: func(g *graph.Graph) heal.Healer {
						return heal.NewForgivingGraphWithPolicy(g, policy)
					},
				}
				r := NewRunner(g0, f, adversary.MaxDegreeDelete{}, o.Seed+9)
				if err := r.RunSteps(kills(g0.NumNodes())); err != nil {
					panic(err)
				}
				p := r.Measure(24)
				fg, ok := r.H.(*heal.ForgivingGraph)
				if !ok {
					panic("harness: ablation healer is not a ForgivingGraph")
				}
				t.AddRow(topo, metrics.D(g0.NumNodes()), policy.String(),
					metrics.F(p.Degree.Max), metrics.F(p.Degree.Mean),
					metrics.F(p.Stretch.Max),
					metrics.D(fg.Engine().TotalStats().TotalNewHelpers))
			}
		}
	}
	t.Notes = append(t.Notes,
		"all policies satisfy the same bounds; the x4 worst case is intrinsic to the mechanism",
		"the paper's policy is the reference; alternatives must never be worse on the star")
	return []metrics.Table{t}
}

// expSpan measures how far repair edges reach — the paper's concluding
// open problem asks what happens when only short-span edges may be
// added ("what if the only edges we can add are those that span a small
// distance in the original network?"). Span of a repair edge {u,v} is
// dist(u, v) in G′.
func expSpan(o Options) []metrics.Table {
	ns := []int{64, 256}
	if o.Quick {
		ns = []int{32, 64}
	}
	topos := []string{"grid", "gnp", "powerlaw"}
	advs := []string{"random", "maxdeg", "cutvertex"}

	t := metrics.Table{
		Title: "EXP-SPAN: G'-span of repair edges after deleting half the nodes",
		Columns: []string{"topology", "adversary", "n", "repair edges",
			"max span", "mean span", "p95 span", "diam(G')"},
	}
	for _, topo := range topos {
		gen, err := graph.Generator(topo)
		if err != nil {
			panic(err)
		}
		for _, advName := range advs {
			adv, err := adversary.ByName(advName)
			if err != nil {
				panic(err)
			}
			for _, n := range ns {
				g0 := gen(n, rand.New(rand.NewSource(o.Seed+int64(n)+13)))
				r := NewRunner(g0, ForgivingFactory(), adv, o.Seed+21)
				if err := r.RunSteps(g0.NumNodes() / 2); err != nil {
					panic(err)
				}
				net := r.H.Network()
				gp := r.H.GPrime()
				var spans []float64
				for _, e := range net.Edges() {
					if gp.HasEdge(e.U, e.V) {
						continue
					}
					if d := gp.Distance(e.U, e.V); d > 0 {
						spans = append(spans, float64(d))
					}
				}
				s := metrics.Summarize(spans)
				t.AddRow(topo, advName, metrics.D(g0.NumNodes()), metrics.D(s.N),
					metrics.F(s.Max), metrics.F(s.Mean), metrics.F(s.P95),
					metrics.D(gp.Diameter()))
			}
		}
	}
	t.Notes = append(t.Notes,
		"span = G' distance between a repair edge's endpoints (deleted nodes usable)",
		"small spans suggest the conclusion's locality-constrained variant is plausible on lattices")
	return []metrics.Table{t}
}

// expRTDepth validates Lemma 1 dynamically: every Reconstruction Tree
// produced by a repair has depth exactly ⌈log₂(leaves)⌉.
func expRTDepth(o Options) []metrics.Table {
	n := 128
	if o.Quick {
		n = 48
	}
	rng := rand.New(rand.NewSource(o.Seed + 31))
	e := core.NewEngine(graph.GNP(n, 4.0/float64(n), rng))
	t := metrics.Table{
		Title:   fmt.Sprintf("EXP-RTDEPTH: RT depth vs ceil(log2 leaves) over %d random deletions", n/2),
		Columns: []string{"deletion", "RT leaves", "RT depth", "ceil(log2 leaves)", "ok"},
	}
	shown := 0
	for i := 0; i < n/2; i++ {
		live := e.LiveNodes()
		if len(live) == 0 {
			break
		}
		if err := e.Delete(live[rng.Intn(len(live))]); err != nil {
			panic(err)
		}
		rs := e.LastRepair()
		if rs.RTLeaves == 0 {
			continue
		}
		want := haft.CeilLog2(rs.RTLeaves)
		ok := "yes"
		if rs.RTDepth != want {
			ok = "VIOLATION"
		}
		// Print a sample plus every violation.
		if shown < 12 || ok != "yes" {
			t.AddRow(metrics.D(i), metrics.D(rs.RTLeaves), metrics.D(rs.RTDepth),
				metrics.D(want), ok)
			shown++
		}
	}
	t.Notes = append(t.Notes, "first 12 repairs shown; any violation would be appended")
	return []metrics.Table{t}
}
