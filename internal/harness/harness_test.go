package harness

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func TestRunnerStepsAndTrace(t *testing.T) {
	r := NewRunner(graph.Star(6), ForgivingFactory(), adversary.MaxDegreeDelete{}, 1)
	if err := r.RunSteps(3); err != nil {
		t.Fatal(err)
	}
	if len(r.T.Ops) != 3 {
		t.Fatalf("trace has %d ops, want 3", len(r.T.Ops))
	}
	// The first kill must be the hub.
	if r.T.Ops[0].V != 0 {
		t.Fatalf("first op = %v, want delete 0", r.T.Ops[0])
	}
	p := r.Measure(0)
	if p.Alive != 3 || p.NEver != 6 {
		t.Fatalf("point = %+v", p)
	}
	if p.Stretch.Max > metrics.Bound(p.NEver) {
		t.Fatalf("stretch %v out of bound", p.Stretch.Max)
	}
}

func TestRunnerStopsWhenAdversaryDone(t *testing.T) {
	r := NewRunner(graph.Path(3), ForgivingFactory(),
		&adversary.Scripted{Ops: []adversary.Op{{V: 1}}}, 1)
	if err := r.RunSteps(10); err != nil {
		t.Fatal(err)
	}
	if len(r.T.Ops) != 1 {
		t.Fatalf("ops = %d, want 1", len(r.T.Ops))
	}
}

func TestRunnerAllocatesFreshIDs(t *testing.T) {
	r := NewRunner(graph.Path(4), ForgivingFactory(),
		adversary.Churn{InsertP: 1, AttachK: 1}, 3)
	if err := r.RunSteps(5); err != nil {
		t.Fatal(err)
	}
	for _, op := range r.T.Ops {
		if !op.Insert {
			t.Fatalf("unexpected delete %v", op)
		}
		if op.V < 4 {
			t.Fatalf("inserted id %d collides with G0", op.V)
		}
	}
}

func TestRunnerSurfacesHealerErrors(t *testing.T) {
	r := NewRunner(graph.Path(3), ForgivingFactory(),
		&adversary.Scripted{Ops: []adversary.Op{{V: 99}}}, 1)
	if err := r.RunSteps(1); err == nil {
		t.Fatal("invalid op did not error")
	}
}

// Every registered experiment must run in Quick mode and produce
// non-empty tables whose verdict columns contain no violations.
func TestAllExperimentsQuick(t *testing.T) {
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tables := exp.Run(Options{Quick: true, Seed: 42})
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("table %q has no rows", tb.Title)
				}
				out := tb.Render()
				if strings.Contains(out, "VIOLATION") {
					t.Fatalf("experiment reported a violation:\n%s", out)
				}
				if strings.Contains(out, "false") && exp.ID == "EXP-STRETCH" {
					t.Fatalf("stretch bound violated:\n%s", out)
				}
			}
		})
	}
}

func TestExperimentByID(t *testing.T) {
	e, err := ExperimentByID("EXP-HAFT")
	if err != nil || e.ID != "EXP-HAFT" {
		t.Fatalf("lookup failed: %v %v", e, err)
	}
	if _, err := ExperimentByID("EXP-NOPE"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// The degree sweep's hard bound: no row may exceed ratio 4.
func TestDegreeSweepWithinHardBound(t *testing.T) {
	tb := degreeStretchSweep(Options{Quick: true, Seed: 9}, false)
	colIdx := -1
	for i, c := range tb.Columns {
		if c == "max ratio" {
			colIdx = i
			break
		}
	}
	if colIdx < 0 {
		t.Fatal("max ratio column missing")
	}
	for _, row := range tb.Rows {
		x, err := strconv.ParseFloat(row[colIdx], 64)
		if err != nil {
			t.Fatalf("bad cell %q: %v", row[colIdx], err)
		}
		if x > 4+1e-9 {
			t.Fatalf("degree ratio %v > 4 in row %v", x, row)
		}
	}
}

// The churn experiment must keep the Forgiving Graph within bound at
// every checkpoint.
func TestChurnKeepsForgivingGraphInBound(t *testing.T) {
	tables := expChurn(Options{Quick: true, Seed: 4})
	for _, tb := range tables {
		within := -1
		for i, c := range tb.Columns {
			if c == "within" {
				within = i
			}
		}
		for _, row := range tb.Rows {
			if row[0] == "forgiving-graph" && row[within] != "true" {
				t.Fatalf("forgiving graph out of bound: %v", row)
			}
		}
	}
}

// The comparison experiment must show no-heal shattering (finite LCC < 1
// or inf stretch) while the Forgiving Graph stays whole.
func TestCompareSeparatesHealers(t *testing.T) {
	tables := expCompare(Options{Quick: true, Seed: 2})
	tb := tables[0]
	var lccIdx, stretchIdx, healerIdx, advIdx int
	for i, c := range tb.Columns {
		switch c {
		case "largest comp frac":
			lccIdx = i
		case "max stretch":
			stretchIdx = i
		case "healer":
			healerIdx = i
		case "adversary":
			advIdx = i
		}
	}
	sawNoHealBreak, sawFGWhole := false, false
	for _, row := range tb.Rows {
		if row[advIdx] != "maxdeg" {
			continue
		}
		switch row[healerIdx] {
		case "no-heal":
			if row[stretchIdx] == "inf" || row[lccIdx] != "1" {
				sawNoHealBreak = true
			}
		case "forgiving-graph":
			if row[lccIdx] == "1" && row[stretchIdx] != "inf" {
				sawFGWhole = true
			}
		}
	}
	if !sawNoHealBreak {
		t.Fatal("no-heal did not shatter under targeted attack")
	}
	if !sawFGWhole {
		t.Fatal("forgiving graph did not stay whole")
	}
}

func TestLowerBoundHelper(t *testing.T) {
	if lowerBound(2, 100) != 0 {
		t.Fatal("alpha<=2 should yield 0")
	}
	got := lowerBound(3, 101)
	want := 0.5 * math.Log(100) / math.Log(2)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("lowerBound(3,101) = %v, want %v", got, want)
	}
}
