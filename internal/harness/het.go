package harness

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/adversary"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// expHet: structured heterogeneous link capacities. Real deployments
// are not uniform: a fast core fabric carries most traffic while the
// periphery hangs off slow access links. This sweep marks the
// lowest-degree fraction of the initial topology as slow (node cap 1
// word/round — every link incident to a slow node is clamped) over a
// fast core cap, and measures what repairs cost when the adversary is
// oblivious to capacities (hub-backlog) versus when it deliberately
// kills processors next to the narrowest links (slow-link). The
// coordination columns show the in-band synchronization cost — the
// election tournament and the termination convergecasts run through
// the same slow links as everything else.

// MarkSlowNodes applies node cap 1 to the slowFrac lowest-G′-degree
// live processors (ties toward smaller IDs), returning how many — the
// structured "fast core / slow edge links" capacity map shared by
// EXP-HET and cmd/soak.
func MarkSlowNodes(s *dist.Simulation, slowFrac float64) int {
	live := s.LiveNodes()
	gp := s.GPrime()
	sort.SliceStable(live, func(i, j int) bool {
		di, dj := gp.Degree(live[i]), gp.Degree(live[j])
		if di != dj {
			return di < dj
		}
		return live[i] < live[j]
	})
	k := int(slowFrac * float64(len(live)))
	for _, v := range live[:k] {
		s.SetNodeBandwidth(v, 1)
	}
	return k
}

// distCapView adapts dist.Simulation to adversary.CapacityView.
type distCapView struct{ distBatchView }

func (v distCapView) EdgeCapacity(from, to graph.NodeID) int {
	return v.s.EdgeCapacity(from, to)
}

func expHet(o Options) []metrics.Table {
	n, kills := 256, 24
	if o.Quick {
		n, kills = 64, 10
	}
	coreCaps := []int{0, 8}
	slowFracs := []float64{0, 0.25}
	advNames := []string{"hub-backlog", "slow-link"}

	t := metrics.Table{
		Title: fmt.Sprintf("EXP-HET: fast core / slow edge links on powerlaw n=%d (%d deletions)", n, kills),
		Columns: []string{"core B", "slow nodes", "adversary", "deletions", "messages", "rounds",
			"congested rounds", "max edge backlog", "queued words", "election rounds", "sync rounds"},
	}
	for _, coreB := range coreCaps {
		for _, slowFrac := range slowFracs {
			for _, advName := range advNames {
				adv, err := adversary.ByName(advName)
				if err != nil {
					panic(err)
				}
				s := dist.NewSimulation(graph.PreferentialAttachment(n, 3, rand.New(rand.NewSource(o.Seed+5))))
				s.SetBandwidth(coreB)
				slow := 0
				if slowFrac > 0 {
					slow = MarkSlowNodes(s, slowFrac)
				}
				view := distCapView{distBatchView{s}}
				rng := rand.New(rand.NewSource(o.Seed + 17))
				var cong metrics.Congestion
				var coord metrics.Coordination
				msgs, dels := 0, 0
				for i := 0; i < kills; i++ {
					op, ok := adv.Next(view, rng, nil)
					if !ok || op.Insert {
						break
					}
					if err := s.Delete(op.V); err != nil {
						panic(err)
					}
					rs := s.LastRecovery()
					msgs += rs.Messages
					dels++
					cong = cong.Add(rs.QueuedWords, rs.MaxEdgeBacklog, rs.CongestionRounds, rs.Rounds)
					coord = coord.Add(rs.ElectionRounds, rs.SyncRounds, rs.ElectionMessages, rs.SyncMessages, rs.Rounds)
				}
				bLabel := "inf"
				if coreB > 0 {
					bLabel = fmt.Sprintf("%d", coreB)
				}
				t.AddRow(bLabel, metrics.D(slow), advName, metrics.D(dels),
					metrics.D(msgs), metrics.D(cong.Rounds),
					metrics.D(cong.CongestionRounds), metrics.D(cong.MaxEdgeBacklog),
					metrics.D(cong.QueuedWords),
					metrics.D(coord.ElectionRounds), metrics.D(coord.SyncRounds))
			}
		}
	}
	t.Notes = append(t.Notes,
		"slow frac marks the lowest-G'-degree fraction of nodes with node cap 1 word/round (all their links clamp)",
		"slow-link kills processors with the most minimum-capacity incident links; hub-backlog is capacity-oblivious",
		"the healed graph is identical across all capacity maps (asserted by FuzzHeterogeneousCaps and the bandwidth tests)",
		"election/sync rounds expose the in-band coordination cost squeezing through the same slow links")
	return []metrics.Table{t}
}
