package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// expOpenLoop: the continuous-churn throughput experiment for the
// open-loop engine. The adversary submits a mixed insert/delete stream
// on its own clock (gap rounds between submissions, down to zero) and
// the engine pipelines the repairs: deletions of disjoint regions
// overlap, colliding ones hand off leader-to-leader, inserts landing
// in damaged regions defer until the region heals. The same operation
// sequence is replayed closed-loop (each op blocking) as the baseline,
// and the healed graphs are asserted identical. The claims under test:
// sustained ops/round rises as the gap shrinks (the engine absorbs
// ops faster than the closed loop can), while per-repair completion
// latency degrades only where regions genuinely collide.
func expOpenLoop(o Options) []metrics.Table {
	n := 256
	ops := 96
	gaps := []int{0, 1, 2, 4, 8, 16}
	if o.Quick {
		n, ops = 64, 32
		gaps = []int{0, 2, 8}
	}
	t := metrics.Table{
		Title: fmt.Sprintf("EXP-OPENLOOP: open- vs closed-loop churn on powerlaw n=%d, %d ops per row", n, ops),
		Columns: []string{"gap", "deletes", "inserts", "closed rounds", "open rounds", "speedup",
			"ops/round", "mean latency", "p95 latency", "peak in-flight"},
	}
	for _, gap := range gaps {
		rng := rand.New(rand.NewSource(o.Seed + int64(1000*gap)))
		base := graph.PreferentialAttachment(n, 3, rng)
		open := dist.NewSimulation(base)
		closed := dist.NewSimulation(base)
		adv := adversary.OpenLoop{
			Churn:  adversary.Churn{InsertP: 0.3, AttachK: 2, Preferential: true, Delete: adversary.RandomDelete{}},
			MaxGap: gap,
		}
		nextID := graph.NodeID(1 << 20)
		alloc := func() graph.NodeID { nextID++; return nextID }

		var pipe metrics.Pipeline
		closedRounds := 0
		deletes, inserts := 0, 0
		for i := 0; i < ops; i++ {
			// Decode the next op against the CLOSED twin (the serialized
			// replay defines the sequence), apply it there blocking, then
			// submit it open-loop.
			to, ok := adv.Next(distBatchView{closed}, rng, alloc)
			if !ok {
				break
			}
			var op dist.Op
			if to.Op.Insert {
				op = dist.Op{Kind: dist.OpInsert, V: to.Op.V, Nbrs: to.Op.Nbrs}
				if err := closed.Insert(to.Op.V, to.Op.Nbrs); err != nil {
					panic(err)
				}
				inserts++
			} else {
				op = dist.Op{Kind: dist.OpDelete, V: to.Op.V}
				if err := closed.Delete(to.Op.V); err != nil {
					panic(err)
				}
				closedRounds += closed.LastRecovery().Rounds
				deletes++
			}
			if err := open.Submit(op); err != nil {
				panic(err)
			}
			pipe.Submitted++
			pipe.ObserveInFlight(open.InFlight())
			for r := 0; r < to.Gap && !open.Idle(); r++ {
				open.Tick()
				pipe.Rounds++
				pipe.ObserveInFlight(open.InFlight())
			}
		}
		// Drain the tail, still sampling: completions release blocked
		// ops, so the in-flight depth can rise mid-drain.
		for !open.Idle() {
			open.Tick()
			pipe.Rounds++
			pipe.ObserveInFlight(open.InFlight())
		}
		for _, ev := range open.Poll() {
			switch ev.Kind {
			case dist.EventRepairDone, dist.EventInsertApplied:
				pipe.ObserveLatency(ev.Latency)
			case dist.EventOpRejected:
				panic(fmt.Sprintf("open-loop replay rejected %v: %v", ev.Op, ev.Err))
			}
		}
		if !open.Physical().Equal(closed.Physical()) {
			panic("EXP-OPENLOOP: open-loop healed graph diverges from closed-loop replay")
		}
		if err := open.Verify(); err != nil {
			panic(err)
		}

		lat := pipe.Latency()
		speedup := 0.0
		if pipe.Rounds > 0 {
			speedup = float64(closedRounds) / float64(pipe.Rounds)
		}
		t.AddRow(metrics.D(gap), metrics.D(deletes), metrics.D(inserts),
			metrics.D(closedRounds), metrics.D(pipe.Rounds), metrics.F(speedup),
			metrics.F(pipe.Throughput()), metrics.F(lat.Mean), metrics.F(lat.P95),
			metrics.D(pipe.PeakInFlight))
	}
	t.Notes = append(t.Notes,
		"closed rounds: the same op sequence applied blocking, one at a time (the serialized replay twin)",
		"speedup = closed/open rounds; gap 0 is the fully open loop — every op lands while repairs are in flight",
		"healed graphs asserted bit-identical between the two loops at every row",
		"latency is rounds from Submit to the completion event; inserts deferred by damaged regions count too")
	return []metrics.Table{t}
}
