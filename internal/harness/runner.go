// Package harness drives the reproduction experiments: it pairs healers
// with adversaries, applies attack traces, measures the paper's success
// metrics, and renders one table per experiment (see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for the recorded results).
package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/graph"
	"repro/internal/heal"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// NodeID identifies a processor.
type NodeID = graph.NodeID

// Runner executes an adversary against a healer, recording the trace.
type Runner struct {
	H   heal.Healer
	Adv adversary.Adversary
	Rng *rand.Rand
	T   *trace.Trace

	nextID NodeID
}

// NewRunner wires a healer and adversary over the initial topology g0.
func NewRunner(g0 *graph.Graph, factory heal.Factory, adv adversary.Adversary, seed int64) *Runner {
	maxID := NodeID(0)
	for _, v := range g0.Nodes() {
		if v > maxID {
			maxID = v
		}
	}
	return &Runner{
		H:      factory.New(g0),
		Adv:    adv,
		Rng:    rand.New(rand.NewSource(seed)),
		T:      &trace.Trace{G0: g0.Clone(), Label: factory.Name + " vs " + adv.Name()},
		nextID: maxID + 1,
	}
}

// Step asks the adversary for one move and applies it. It reports
// whether a move was made.
func (r *Runner) Step() (bool, error) {
	op, ok := r.Adv.Next(r.H, r.Rng, r.allocID)
	if !ok {
		return false, nil
	}
	var err error
	if op.Insert {
		err = r.H.Insert(op.V, op.Nbrs)
	} else {
		err = r.H.Delete(op.V)
	}
	if err != nil {
		return false, fmt.Errorf("harness: applying %v: %w", op, err)
	}
	r.T.Append(op)
	return true, nil
}

// RunSteps performs up to k adversary moves, stopping early if the
// adversary runs out of moves.
func (r *Runner) RunSteps(k int) error {
	for i := 0; i < k; i++ {
		ok, err := r.Step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return nil
}

func (r *Runner) allocID() NodeID {
	id := r.nextID
	r.nextID++
	return id
}

// Point is one measurement of the paper's success metrics.
type Point struct {
	Steps   int
	Alive   int
	NEver   int
	Stretch metrics.StretchResult
	Degree  metrics.DegreeResult
	LCC     float64
}

// Measure computes the current metrics. sampleSources > 0 caps the BFS
// sources used for stretch (0 = exact).
func (r *Runner) Measure(sampleSources int) Point {
	net := r.H.Network()
	gp := r.H.GPrime()
	live := r.H.LiveNodes()
	return Point{
		Steps:   len(r.T.Ops),
		Alive:   len(live),
		NEver:   gp.NumNodes(),
		Stretch: metrics.Stretch(net, gp, live, sampleSources, r.Rng),
		Degree:  metrics.Degrees(net, gp, live),
		LCC:     metrics.LargestComponentFrac(net),
	}
}

// ForgivingFactory is the Forgiving Graph's heal.Factory.
func ForgivingFactory() heal.Factory {
	return heal.Factory{
		Name: "forgiving-graph",
		New:  func(g *graph.Graph) heal.Healer { return heal.NewForgivingGraph(g) },
	}
}
