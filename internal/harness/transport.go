package harness

import (
	"fmt"

	"repro/internal/channet"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/simnet"
	"repro/internal/wirenet"
)

// TransportNames lists the message substrates NewSimulationFor
// accepts, in flag-help order.
var TransportNames = []string{"sim", "chan", "wire"}

// NewSimulationFor builds a dist.Simulation over g0 on the named
// message substrate: "sim" is the deterministic round-synchronous
// simulator (the measurement mode, with the full congestion model),
// "chan" runs processors as goroutines over Go channels with
// per-processor logical clocks and no bandwidth model, and "wire"
// shards processors across worker OS processes over loopback TCP
// (the calling binary must invoke wirenet.MaybeWorker first — see
// that function's doc). The experiment tables in this package stay
// on "sim" — rounds and congestion are only defined there — but soak
// campaigns and ad-hoc drivers pick any substrate through this one
// seam. Callers should Close the simulation when done; on "wire"
// that is what terminates the worker processes.
func NewSimulationFor(g0 *graph.Graph, transport string) (*dist.Simulation, error) {
	switch transport {
	case "sim", "simnet":
		return dist.NewSimulationOn(g0, simnet.New()), nil
	case "chan", "channel", "channet":
		return dist.NewSimulationOn(g0, channet.New()), nil
	case "wire", "wirenet", "tcp":
		h, err := wirenet.New(wirenet.Config{})
		if err != nil {
			return nil, err
		}
		return dist.NewSimulationOn(g0, h), nil
	}
	return nil, fmt.Errorf("harness: unknown transport %q (want sim, chan or wire)", transport)
}
