package harness

import (
	"os"
	"testing"

	"repro/internal/graph"
	"repro/internal/wirenet"
)

// TestMain lets the "wire" substrate spawn its shard worker processes
// by re-executing this test binary (see wirenet.MaybeWorker).
func TestMain(m *testing.M) {
	wirenet.MaybeWorker()
	os.Exit(m.Run())
}

// TestNewSimulationFor: the one seam soak and ad-hoc drivers use to
// pick a substrate — all must heal a small deletion identically.
func TestNewSimulationFor(t *testing.T) {
	var healed []*graph.Graph
	for _, name := range TransportNames {
		if name == "wire" && testing.Short() {
			continue // spawns worker processes
		}
		s, err := NewSimulationFor(graph.Star(8), name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Delete(3); err != nil {
			t.Fatalf("%s: delete: %v", name, err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("%s: verify: %v", name, err)
		}
		healed = append(healed, s.Physical())
		if err := s.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
	}
	for i := 1; i < len(healed); i++ {
		if !healed[0].Equal(healed[i]) {
			t.Fatalf("transport %s healed differently from %s:\n%v\nvs\n%v",
				TransportNames[i], TransportNames[0], healed[i], healed[0])
		}
	}
	if _, err := NewSimulationFor(graph.Star(4), "carrier-pigeon"); err == nil {
		t.Fatal("unknown transport must error")
	}
}
