package harness

import (
	"testing"

	"repro/internal/graph"
)

// TestNewSimulationFor: the one seam soak and ad-hoc drivers use to
// pick a substrate — both must heal a small deletion identically.
func TestNewSimulationFor(t *testing.T) {
	var healed []*graph.Graph
	for _, name := range TransportNames {
		s, err := NewSimulationFor(graph.Star(8), name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Delete(3); err != nil {
			t.Fatalf("%s: delete: %v", name, err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("%s: verify: %v", name, err)
		}
		healed = append(healed, s.Physical())
	}
	if !healed[0].Equal(healed[1]) {
		t.Fatalf("transports healed differently:\nsim:  %v\nchan: %v", healed[0], healed[1])
	}
	if _, err := NewSimulationFor(graph.Star(4), "carrier-pigeon"); err == nil {
		t.Fatal("unknown transport must error")
	}
}
