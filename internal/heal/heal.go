// Package heal defines the common interface every self-healing strategy
// in this repository implements, so that the experiment harness can run
// the Forgiving Graph and the baselines side by side under identical
// adversaries and metrics.
package heal

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// NodeID identifies a processor.
type NodeID = graph.NodeID

// Healer is a self-healing network strategy under the paper's model: an
// alternating sequence of adversarial insertions/deletions and repairs.
type Healer interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Insert adds a node wired to the given live neighbors.
	Insert(v NodeID, nbrs []NodeID) error
	// Delete removes a live node and performs the strategy's repair.
	Delete(v NodeID) error
	// Network returns the current actual network over live nodes. The
	// caller owns the copy.
	Network() *graph.Graph
	// GPrime returns the insertions-only graph G′ (the yardstick for
	// degree and stretch). The caller owns the copy.
	GPrime() *graph.Graph
	// LiveNodes lists live nodes in ascending order.
	LiveNodes() []NodeID
	// Alive reports whether v is live.
	Alive(v NodeID) bool
}

// Factory builds a fresh healer for an initial topology. Experiment
// sweeps use factories so every run starts from identical state.
type Factory struct {
	Name string
	New  func(g0 *graph.Graph) Healer
}

// ForgivingGraph adapts the reference engine to the Healer interface.
type ForgivingGraph struct {
	e *core.Engine
}

// NewForgivingGraph returns the paper's data structure as a Healer.
func NewForgivingGraph(g0 *graph.Graph) *ForgivingGraph {
	return &ForgivingGraph{e: core.NewEngine(g0)}
}

// NewForgivingGraphWithPolicy returns a Healer running an alternative
// representative policy (for the EXP-ABLATE comparison).
func NewForgivingGraphWithPolicy(g0 *graph.Graph, policy core.RepPolicy) *ForgivingGraph {
	return &ForgivingGraph{e: core.NewEngineWithPolicy(g0, policy)}
}

// Name implements Healer.
func (f *ForgivingGraph) Name() string { return "forgiving-graph" }

// Insert implements Healer.
func (f *ForgivingGraph) Insert(v NodeID, nbrs []NodeID) error { return f.e.Insert(v, nbrs) }

// Delete implements Healer.
func (f *ForgivingGraph) Delete(v NodeID) error { return f.e.Delete(v) }

// Network implements Healer.
func (f *ForgivingGraph) Network() *graph.Graph { return f.e.Physical() }

// GPrime implements Healer.
func (f *ForgivingGraph) GPrime() *graph.Graph { return f.e.GPrime() }

// LiveNodes implements Healer.
func (f *ForgivingGraph) LiveNodes() []NodeID { return f.e.LiveNodes() }

// Alive implements Healer.
func (f *ForgivingGraph) Alive(v NodeID) bool { return f.e.Alive(v) }

// Engine exposes the underlying reference engine for metrics that need
// more than the Healer interface (repair statistics, invariants).
func (f *ForgivingGraph) Engine() *core.Engine { return f.e }

var _ Healer = (*ForgivingGraph)(nil)

// Tracker implements the bookkeeping shared by the simple baselines:
// G′ maintenance, liveness, and operation validation. Embed it and
// maintain `Cur`, the actual network.
type Tracker struct {
	Cur    *graph.Graph // the actual network over live nodes
	gprime *graph.Graph
	dead   map[NodeID]struct{}
}

// NewTracker starts tracking from a copy of g0.
func NewTracker(g0 *graph.Graph) Tracker {
	return Tracker{
		Cur:    g0.Clone(),
		gprime: g0.Clone(),
		dead:   make(map[NodeID]struct{}),
	}
}

// ValidateInsert checks an insertion and applies it to G′ and the
// current network; the embedding healer adds its own repair edges after.
func (t *Tracker) ValidateInsert(v NodeID, nbrs []NodeID) error {
	if t.gprime.HasNode(v) {
		return fmt.Errorf("heal: insert %d: id already used", v)
	}
	seen := make(map[NodeID]struct{}, len(nbrs))
	for _, x := range nbrs {
		if x == v {
			return fmt.Errorf("heal: insert %d: self edge", v)
		}
		if !t.Alive(x) {
			return fmt.Errorf("heal: insert %d: neighbor %d not alive", v, x)
		}
		if _, dup := seen[x]; dup {
			return fmt.Errorf("heal: insert %d: duplicate neighbor %d", v, x)
		}
		seen[x] = struct{}{}
	}
	t.gprime.AddNode(v)
	t.Cur.AddNode(v)
	for _, x := range nbrs {
		t.gprime.AddEdge(v, x)
		t.Cur.AddEdge(v, x)
	}
	return nil
}

// ValidateDelete checks a deletion, removes the node from the current
// network, and returns its former live neighbors (ascending) for the
// healer's repair.
func (t *Tracker) ValidateDelete(v NodeID) ([]NodeID, error) {
	if !t.Alive(v) {
		return nil, fmt.Errorf("heal: delete %d: not a live node", v)
	}
	nbrs := t.Cur.Neighbors(v)
	t.Cur.RemoveNode(v)
	t.dead[v] = struct{}{}
	return nbrs, nil
}

// Alive reports whether v is live.
func (t *Tracker) Alive(v NodeID) bool {
	if _, dead := t.dead[v]; dead {
		return false
	}
	return t.gprime.HasNode(v)
}

// GPrime returns a copy of G′.
func (t *Tracker) GPrime() *graph.Graph { return t.gprime.Clone() }

// Network returns a copy of the current network.
func (t *Tracker) Network() *graph.Graph { return t.Cur.Clone() }

// LiveNodes lists live nodes ascending.
func (t *Tracker) LiveNodes() []NodeID {
	var out []NodeID
	for _, v := range t.gprime.Nodes() {
		if t.Alive(v) {
			out = append(out, v)
		}
	}
	return out
}
