package heal

import (
	"testing"

	"repro/internal/graph"
)

func TestForgivingGraphAdapter(t *testing.T) {
	h := NewForgivingGraph(graph.Star(5))
	if h.Name() != "forgiving-graph" {
		t.Fatalf("name = %q", h.Name())
	}
	if err := h.Delete(0); err != nil {
		t.Fatal(err)
	}
	if h.Alive(0) || !h.Alive(1) {
		t.Fatal("liveness wrong after delete")
	}
	net := h.Network()
	if net.NumNodes() != 4 || !net.Connected() {
		t.Fatalf("network: %v connected=%v", net, net.Connected())
	}
	if err := h.Insert(9, []NodeID{1, 2}); err != nil {
		t.Fatal(err)
	}
	gp := h.GPrime()
	if gp.NumNodes() != 6 || !gp.HasEdge(9, 1) {
		t.Fatalf("gprime: %v", gp)
	}
	if got := h.LiveNodes(); len(got) != 5 {
		t.Fatalf("live = %v", got)
	}
	if err := h.Engine().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerValidation(t *testing.T) {
	tr := NewTracker(graph.Path(3))
	if err := tr.ValidateInsert(1, nil); err == nil {
		t.Fatal("reused id accepted")
	}
	if err := tr.ValidateInsert(9, []NodeID{9}); err == nil {
		t.Fatal("self edge accepted")
	}
	if err := tr.ValidateInsert(9, []NodeID{0, 0}); err == nil {
		t.Fatal("duplicate neighbor accepted")
	}
	if err := tr.ValidateInsert(9, []NodeID{77}); err == nil {
		t.Fatal("unknown neighbor accepted")
	}
	if err := tr.ValidateInsert(9, []NodeID{0}); err != nil {
		t.Fatal(err)
	}
	if !tr.Cur.HasEdge(9, 0) || !tr.GPrime().HasEdge(9, 0) {
		t.Fatal("insert not applied")
	}

	nbrs, err := tr.ValidateDelete(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 2 || nbrs[0] != 0 || nbrs[1] != 2 {
		t.Fatalf("neighbors = %v", nbrs)
	}
	if tr.Alive(1) {
		t.Fatal("deleted node still alive")
	}
	if _, err := tr.ValidateDelete(1); err == nil {
		t.Fatal("double delete accepted")
	}
	if err := tr.ValidateInsert(1, nil); err == nil {
		t.Fatal("dead id reuse accepted")
	}
	// G' keeps the dead node and its edges.
	gp := tr.GPrime()
	if !gp.HasNode(1) || !gp.HasEdge(0, 1) {
		t.Fatal("G' lost deleted state")
	}
	live := tr.LiveNodes()
	if len(live) != 3 { // 0, 2, 9
		t.Fatalf("live = %v", live)
	}
}
