package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket linear histogram with ASCII rendering,
// used by the soak tool and the span experiment to show distributions
// rather than just summaries.
type Histogram struct {
	min, width  float64
	counts      []int
	under, over int
	total       int
}

// NewHistogram covers [min, max) with n equal buckets. Observations
// below min or at/above max land in the under/over sentinels.
func NewHistogram(min, max float64, n int) *Histogram {
	if n < 1 || max <= min {
		panic(fmt.Sprintf("metrics: bad histogram [%v,%v)/%d", min, max, n))
	}
	return &Histogram{min: min, width: (max - min) / float64(n), counts: make([]int, n)}
}

// Observe adds one sample.
func (h *Histogram) Observe(x float64) {
	h.total++
	if x < h.min {
		h.under++
		return
	}
	idx := int((x - h.min) / h.width)
	if idx >= len(h.counts) {
		h.over++
		return
	}
	h.counts[idx]++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Render draws one line per bucket with a proportional bar.
func (h *Histogram) Render(barWidth int) string {
	if barWidth < 1 {
		barWidth = 40
	}
	maxCount := h.under
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if h.over > maxCount {
		maxCount = h.over
	}
	var b strings.Builder
	line := func(label string, count int) {
		bar := 0
		if maxCount > 0 {
			bar = int(math.Round(float64(count) / float64(maxCount) * float64(barWidth)))
		}
		fmt.Fprintf(&b, "%16s %7d %s\n", label, count, strings.Repeat("#", bar))
	}
	if h.under > 0 {
		line(fmt.Sprintf("< %.3g", h.min), h.under)
	}
	for i, c := range h.counts {
		lo := h.min + float64(i)*h.width
		line(fmt.Sprintf("[%.3g, %.3g)", lo, lo+h.width), c)
	}
	if h.over > 0 {
		line(fmt.Sprintf(">= %.3g", h.min+float64(len(h.counts))*h.width), h.over)
	}
	return b.String()
}
