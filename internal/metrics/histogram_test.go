package metrics

import (
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Observe(x)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.under != 1 || h.over != 2 {
		t.Fatalf("under=%d over=%d", h.under, h.over)
	}
	want := []int{2, 1, 0, 0, 1} // [0,2):{0,1.9} [2,4):{2} [8,10):{9.99}
	for i, c := range want {
		if h.counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, h.counts[i], c, h.counts)
		}
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 4, 2)
	for i := 0; i < 8; i++ {
		h.Observe(1)
	}
	h.Observe(3)
	h.Observe(-5)
	h.Observe(99)
	out := h.Render(10)
	for _, want := range []string{"< 0", "[0, 2)", "[2, 4)", ">= 4", "##########"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// The fullest bucket gets the full bar; the 1-count bucket a short one.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestHistogramEmptyRender(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if out := h.Render(0); out == "" {
		t.Fatal("empty render")
	}
}
