// Package metrics implements the paper's success metrics (Figure 1):
// degree increase, network stretch, communication per node, and recovery
// time — plus the summary statistics and table rendering used by the
// experiment harness.
package metrics

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// NodeID identifies a processor.
type NodeID = graph.NodeID

// Summary is a standard five-number-ish summary of a sample.
type Summary struct {
	N             int
	Min, Max      float64
	Mean          float64
	P50, P95, P99 float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, x := range s {
		sum += x
	}
	return Summary{
		N:    len(s),
		Min:  s[0],
		Max:  s[len(s)-1],
		Mean: sum / float64(len(s)),
		P50:  quantile(s, 0.50),
		P95:  quantile(s, 0.95),
		P99:  quantile(s, 0.99),
	}
}

// quantile returns the q-quantile of a sorted sample using the
// nearest-rank method.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// StretchResult reports a stretch audit of an actual network against G′.
type StretchResult struct {
	// Max is the maximum observed dist(x,y,G)/dist(x,y,G′).
	Max float64
	// Mean is the average over measured pairs.
	Mean float64
	// Pairs is how many live pairs were measured.
	Pairs int
	// Disconnected counts pairs connected in G′ but not in G (infinite
	// stretch; Max is +Inf when this is nonzero).
	Disconnected int
	// WorstU, WorstV attain Max.
	WorstU, WorstV NodeID
}

// Bound returns the paper's stretch guarantee log₂(n) for the given
// total node count n = |G′| (clamped to 1 from below so degenerate
// networks are not reported as violations).
func Bound(nEver int) float64 {
	if nEver < 2 {
		return 1
	}
	return math.Max(1, math.Log2(float64(nEver)))
}

// Stretch measures stretch over live node pairs. If maxSources > 0 and
// fewer than the number of live nodes, a deterministic sample of BFS
// sources (drawn from rng) is used; otherwise the measurement is exact.
// Pairs unreachable in G′ are skipped (the bound does not apply to
// them); pairs reachable in G′ but not in the actual network count as
// Disconnected.
func Stretch(actual, gprime *graph.Graph, live []NodeID, maxSources int, rng *rand.Rand) StretchResult {
	res := StretchResult{}
	sources := live
	if maxSources > 0 && maxSources < len(live) && rng != nil {
		idx := rng.Perm(len(live))[:maxSources]
		sort.Ints(idx)
		sources = make([]NodeID, 0, maxSources)
		for _, i := range idx {
			sources = append(sources, live[i])
		}
	}
	liveSet := make(map[NodeID]struct{}, len(live))
	for _, v := range live {
		liveSet[v] = struct{}{}
	}
	sum := 0.0
	for _, u := range sources {
		da := actual.BFS(u)
		dp := gprime.BFS(u)
		for v, dPrime := range dp {
			if v == u || dPrime == 0 {
				continue
			}
			if _, isLive := liveSet[v]; !isLive {
				continue
			}
			res.Pairs++
			dAct, ok := da[v]
			if !ok {
				res.Disconnected++
				res.Max = math.Inf(1)
				res.WorstU, res.WorstV = u, v
				continue
			}
			s := float64(dAct) / float64(dPrime)
			sum += s
			if s > res.Max {
				res.Max = s
				res.WorstU, res.WorstV = u, v
			}
		}
	}
	if measured := res.Pairs - res.Disconnected; measured > 0 {
		res.Mean = sum / float64(measured)
	}
	return res
}

// DegreeResult reports a degree-amplification audit.
type DegreeResult struct {
	// Max is the largest actual/G′ degree ratio over live nodes.
	Max float64
	// Mean is the average ratio.
	Mean float64
	// Over3 counts live nodes exceeding the paper's stated factor 3.
	Over3 int
	// MaxAbsIncrease is the largest additive increase (for comparing
	// against the Forgiving Tree's +3 guarantee).
	MaxAbsIncrease int
	// Worst attains Max.
	Worst NodeID
}

// Degrees measures per-node degree amplification of the actual network
// over G′ for the given live nodes.
func Degrees(actual, gprime *graph.Graph, live []NodeID) DegreeResult {
	res := DegreeResult{}
	sum, counted := 0.0, 0
	for _, v := range live {
		dp := gprime.Degree(v)
		da := actual.Degree(v)
		if inc := da - dp; inc > res.MaxAbsIncrease {
			res.MaxAbsIncrease = inc
		}
		if dp == 0 {
			continue
		}
		r := float64(da) / float64(dp)
		sum += r
		counted++
		if r > res.Max {
			res.Max = r
			res.Worst = v
		}
		if r > 3+1e-9 {
			res.Over3++
		}
	}
	if counted > 0 {
		res.Mean = sum / float64(counted)
	}
	return res
}

// Congestion aggregates the bandwidth-limited simulator's congestion
// counters across one or more repairs: round-weighted words deferred
// by full edges, the deepest single-edge backlog seen, congested
// rounds, and total rounds. The zero value is an empty sample.
type Congestion struct {
	QueuedWords      int
	MaxEdgeBacklog   int
	CongestionRounds int
	Rounds           int
}

// Add folds one repair's counters into the aggregate: sums for the
// totals, max for the backlog depth.
func (c Congestion) Add(queuedWords, maxEdgeBacklog, congestionRounds, rounds int) Congestion {
	c.QueuedWords += queuedWords
	c.CongestionRounds += congestionRounds
	c.Rounds += rounds
	if maxEdgeBacklog > c.MaxEdgeBacklog {
		c.MaxEdgeBacklog = maxEdgeBacklog
	}
	return c
}

// Merge folds another aggregate in, with the same sum/max semantics
// as Add.
func (c Congestion) Merge(o Congestion) Congestion {
	return c.Add(o.QueuedWords, o.MaxEdgeBacklog, o.CongestionRounds, o.Rounds)
}

// CongestedFrac returns the fraction of rounds that deferred traffic
// (0 for an empty sample).
func (c Congestion) CongestedFrac() float64 {
	if c.Rounds == 0 {
		return 0
	}
	return float64(c.CongestionRounds) / float64(c.Rounds)
}

// Coordination aggregates the protocol's in-band synchronization cost
// across one or more repairs: rounds that carried leader-election
// tournament traffic, rounds that carried termination-detection
// traffic (acks, convergecast dones), the corresponding message
// counts, and total rounds. The zero value is an empty sample.
type Coordination struct {
	ElectionRounds   int
	SyncRounds       int
	ElectionMessages int
	SyncMessages     int
	Rounds           int
}

// Add folds one repair's counters into the aggregate.
func (c Coordination) Add(electionRounds, syncRounds, electionMsgs, syncMsgs, rounds int) Coordination {
	c.ElectionRounds += electionRounds
	c.SyncRounds += syncRounds
	c.ElectionMessages += electionMsgs
	c.SyncMessages += syncMsgs
	c.Rounds += rounds
	return c
}

// Merge folds another aggregate in.
func (c Coordination) Merge(o Coordination) Coordination {
	return c.Add(o.ElectionRounds, o.SyncRounds, o.ElectionMessages, o.SyncMessages, o.Rounds)
}

// SyncFrac returns the fraction of rounds that carried coordination
// traffic of either kind (0 for an empty sample). A round can carry
// both kinds and then counts in both numerator terms, so the fraction
// is clamped at 1.
func (c Coordination) SyncFrac() float64 {
	if c.Rounds == 0 {
		return 0
	}
	f := float64(c.ElectionRounds+c.SyncRounds) / float64(c.Rounds)
	if f > 1 {
		f = 1
	}
	return f
}

// Coalesce aggregates the coalescing admission queue's decisions
// across one or more runs: ops submitted, ops elided by insert/delete
// annihilation, deletes merged into chained repair waves, ops that
// reached execution, and the static floor of protocol messages
// provably avoided. The zero value is an empty sample.
type Coalesce struct {
	Submitted     int
	Cancelled     int
	Merged        int
	Admitted      int
	MessagesSaved int
}

// Add folds one run's counters into the aggregate.
func (c Coalesce) Add(submitted, cancelled, merged, admitted, messagesSaved int) Coalesce {
	c.Submitted += submitted
	c.Cancelled += cancelled
	c.Merged += merged
	c.Admitted += admitted
	c.MessagesSaved += messagesSaved
	return c
}

// Merge folds another aggregate in.
func (c Coalesce) Merge(o Coalesce) Coalesce {
	return c.Add(o.Submitted, o.Cancelled, o.Merged, o.Admitted, o.MessagesSaved)
}

// CancelledFrac returns the fraction of submitted ops elided by
// cancellation (0 for an empty sample).
func (c Coalesce) CancelledFrac() float64 {
	if c.Submitted == 0 {
		return 0
	}
	return float64(c.Cancelled) / float64(c.Submitted)
}

// LargestComponentFrac returns the fraction of live nodes in the largest
// connected component of the actual network (1.0 when connected, 0 for
// an empty network). Used to quantify how badly no-heal shatters.
func LargestComponentFrac(actual *graph.Graph) float64 {
	n := actual.NumNodes()
	if n == 0 {
		return 0
	}
	best := 0
	for _, comp := range actual.Components() {
		if len(comp) > best {
			best = len(comp)
		}
	}
	return float64(best) / float64(n)
}
