package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Fatalf("empty summary = %+v", got)
	}
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.P95 != 7 || one.P99 != 7 {
		t.Fatalf("singleton quantiles = %+v", one)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Fatalf("quantiles = %+v", s)
	}
}

func TestBound(t *testing.T) {
	if Bound(1) != 1 || Bound(0) != 1 {
		t.Fatal("degenerate bound should clamp to 1")
	}
	if got := Bound(8); got != 3 {
		t.Fatalf("Bound(8) = %v", got)
	}
}

func TestStretchIdentity(t *testing.T) {
	g := graph.Cycle(8)
	res := Stretch(g, g, g.Nodes(), 0, nil)
	if res.Max != 1 || res.Disconnected != 0 {
		t.Fatalf("identity stretch = %+v", res)
	}
	// All ordered live pairs measured: 8*7.
	if res.Pairs != 56 {
		t.Fatalf("pairs = %d, want 56", res.Pairs)
	}
}

func TestStretchDetectsGrowth(t *testing.T) {
	// G' is a star; actual is the path 1-2-3-4-5 over the survivors.
	gprime := graph.Star(6)
	actual := graph.New()
	for i := 1; i <= 5; i++ {
		actual.AddNode(graph.NodeID(i))
	}
	for i := 1; i < 5; i++ {
		actual.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	live := actual.Nodes()
	res := Stretch(actual, gprime, live, 0, nil)
	if res.Max != 2 { // dist(1,5): actual 4, G' 2
		t.Fatalf("max stretch = %v, want 2", res.Max)
	}
	if res.Disconnected != 0 {
		t.Fatalf("disconnected = %d", res.Disconnected)
	}
}

func TestStretchDisconnection(t *testing.T) {
	gprime := graph.Path(3)
	actual := graph.New()
	actual.AddNode(0)
	actual.AddNode(2)
	res := Stretch(actual, gprime, []NodeID{0, 2}, 0, nil)
	if res.Disconnected == 0 || !math.IsInf(res.Max, 1) {
		t.Fatalf("disconnection not detected: %+v", res)
	}
}

func TestStretchSkipsGPrimeUnreachable(t *testing.T) {
	gprime := graph.New()
	gprime.AddEdge(0, 1)
	gprime.AddEdge(5, 6)
	actual := gprime.Clone()
	res := Stretch(actual, gprime, actual.Nodes(), 0, nil)
	// Only within-component pairs measured: (0,1),(1,0),(5,6),(6,5).
	if res.Pairs != 4 {
		t.Fatalf("pairs = %d, want 4", res.Pairs)
	}
}

func TestStretchSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.GNP(40, 0.1, rng)
	live := g.Nodes()
	exact := Stretch(g, g, live, 0, nil)
	sampled := Stretch(g, g, live, 10, rand.New(rand.NewSource(2)))
	if sampled.Pairs >= exact.Pairs {
		t.Fatalf("sampling did not reduce pairs: %d vs %d", sampled.Pairs, exact.Pairs)
	}
	if sampled.Max != 1 {
		t.Fatalf("sampled identity stretch = %v", sampled.Max)
	}
}

func TestDegrees(t *testing.T) {
	gprime := graph.Star(5) // hub degree 4, leaves 1
	actual := graph.Complete(5)
	res := Degrees(actual, gprime, actual.Nodes())
	if res.Max != 4 { // a leaf with G' degree 1 now has degree 4
		t.Fatalf("max ratio = %v, want 4", res.Max)
	}
	if res.Over3 != 4 {
		t.Fatalf("over3 = %d, want 4", res.Over3)
	}
	if res.MaxAbsIncrease != 3 {
		t.Fatalf("max increase = %d, want 3", res.MaxAbsIncrease)
	}
	// Zero-G'-degree nodes are skipped for ratios but counted for
	// absolute increase.
	gp2 := graph.New()
	gp2.AddNode(1)
	gp2.AddNode(2)
	act2 := graph.New()
	act2.AddEdge(1, 2)
	res2 := Degrees(act2, gp2, []NodeID{1, 2})
	if res2.Max != 0 || res2.MaxAbsIncrease != 1 {
		t.Fatalf("res2 = %+v", res2)
	}
}

func TestLargestComponentFrac(t *testing.T) {
	g := graph.New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddNode(9)
	if got := LargestComponentFrac(g); got != 0.75 {
		t.Fatalf("frac = %v, want 0.75", got)
	}
	if got := LargestComponentFrac(graph.New()); got != 0 {
		t.Fatalf("empty frac = %v", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "demo", Columns: []string{"a", "long-header", "c"}}
	tb.AddRow("1", "2")
	tb.AddRow("wide-cell", "3", "4")
	tb.Notes = append(tb.Notes, "footnote")
	out := tb.Render()
	for _, want := range []string{"== demo ==", "long-header", "wide-cell", "note: footnote"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + rule + 2 rows + note
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Columns: []string{"x", "y"}}
	tb.AddRow("a,b", "plain")
	csv := tb.CSV()
	want := "x,y\n\"a,b\",plain\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159) != "3.142" {
		t.Fatalf("F = %q", F(3.14159))
	}
	if D(42) != "42" {
		t.Fatalf("D = %q", D(42))
	}
}

func TestCongestionAggregate(t *testing.T) {
	var c Congestion
	if c.CongestedFrac() != 0 {
		t.Fatal("empty sample has nonzero congested fraction")
	}
	c = c.Add(10, 4, 2, 8)
	c = c.Add(5, 9, 1, 4)
	c = c.Add(0, 3, 0, 6)
	if c.QueuedWords != 15 || c.CongestionRounds != 3 || c.Rounds != 18 {
		t.Fatalf("aggregate = %+v", c)
	}
	if c.MaxEdgeBacklog != 9 {
		t.Fatalf("MaxEdgeBacklog = %d, want max 9", c.MaxEdgeBacklog)
	}
	if got, want := c.CongestedFrac(), 3.0/18.0; got != want {
		t.Fatalf("CongestedFrac = %v, want %v", got, want)
	}
}
