package metrics

// Pipeline aggregates the open-loop engine's throughput counters
// across one churn campaign: operations submitted and completed,
// rounds ticked, the deepest concurrent-repair backlog, and
// the per-operation completion latencies (rounds from submission to
// the completion event). The zero value is an empty sample.
type Pipeline struct {
	Submitted    int
	Completed    int
	Rounds       int
	PeakInFlight int
	latencies    []float64
}

// ObserveLatency records one completed operation's latency in rounds.
func (p *Pipeline) ObserveLatency(rounds int) {
	p.Completed++
	p.latencies = append(p.latencies, float64(rounds))
}

// ObserveInFlight folds one in-flight depth sample into the peak.
func (p *Pipeline) ObserveInFlight(depth int) {
	if depth > p.PeakInFlight {
		p.PeakInFlight = depth
	}
}

// Throughput returns completed operations per round (0 for an empty
// sample).
func (p *Pipeline) Throughput() float64 {
	if p.Rounds == 0 {
		return 0
	}
	return float64(p.Completed) / float64(p.Rounds)
}

// Latency summarizes the completion latencies.
func (p *Pipeline) Latency() Summary { return Summarize(p.latencies) }
