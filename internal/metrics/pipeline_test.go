package metrics

import "testing"

func TestPipelineAggregates(t *testing.T) {
	var p Pipeline
	if p.Throughput() != 0 {
		t.Fatal("empty pipeline reports nonzero throughput")
	}
	p.Rounds = 50
	for _, l := range []int{10, 20, 30, 40} {
		p.ObserveLatency(l)
	}
	p.ObserveInFlight(3)
	p.ObserveInFlight(7)
	p.ObserveInFlight(5)
	if p.Completed != 4 {
		t.Fatalf("completed %d, want 4", p.Completed)
	}
	if got := p.Throughput(); got != 4.0/50.0 {
		t.Fatalf("throughput %v", got)
	}
	if p.PeakInFlight != 7 {
		t.Fatalf("peak in flight %d, want 7", p.PeakInFlight)
	}
	lat := p.Latency()
	if lat.N != 4 || lat.Mean != 25 || lat.Min != 10 || lat.Max != 40 {
		t.Fatalf("latency summary %+v", lat)
	}
}
