package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a simple column-aligned results table that the experiment
// harness renders to the terminal and to CSV. Rows are strings so the
// harness controls formatting per cell.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are free-form footnotes rendered under the table.
	Notes []string
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i, w := range widths {
		rule[i] = strings.Repeat("-", w)
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (title and notes omitted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteString(strconv.Quote(c))
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// F formats a float compactly for table cells.
func F(x float64) string {
	return strconv.FormatFloat(x, 'g', 4, 64)
}

// D formats an int for table cells.
func D(x int) string { return strconv.Itoa(x) }
