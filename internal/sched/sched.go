// Package sched is the recorded-schedule replay layer for the
// transport differential oracle.
//
// A Schedule is a transport-independent record of one churn run:
// inserts, deletes, blocking batches, and (in open-loop mode) the tick
// gaps between submissions. Run replays a schedule on a chosen
// backend — simnet's deterministic rounds, channet's concurrent
// goroutine scheduler, or channet's seeded deterministic scheduler —
// and returns a canonical Result: the healed physical network, G′,
// and the per-operation outcomes aligned to submission order.
//
// Because the engine serializes colliding operations in submission
// order and the repair protocol is delivery-order-invariant (min-ID
// leader election, counting-based phase gating, canonical descriptor
// re-sorting at the leader), two backends given the same schedule must
// produce bit-identical Results: the same healed graph and, per
// operation, the same outcome in the same serialized (= submission)
// position. Diff asserts exactly that. What legitimately differs
// between backends — raw event *arrival* interleaving across disjoint
// regions, round counts, congestion stats — is deliberately excluded
// from Result.
//
// Schedules also serialize to bytes (Decode) so the fuzzer can explore
// random interleavings on the channel backend and any crashing
// schedule replays bit-for-bit — first on channet via its seed, then
// on simnet for the differential verdict.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/channet"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/wirenet"
)

// NodeID identifies a processor, shared with package graph.
type NodeID = graph.NodeID

// Backend selects a transport implementation.
type Backend int

const (
	// Simnet is the deterministic round-synchronous simulator — the
	// oracle side of every differential pair.
	Simnet Backend = iota
	// Channel is channet in concurrent mode: one goroutine per
	// processor, the Go scheduler as the adversary.
	Channel
	// ChannelSeeded is channet's single-threaded deterministic
	// scheduler; Config.Seed picks the interleaving.
	ChannelSeeded
	// Wire is wirenet: shard worker processes over loopback TCP, real
	// sockets as the adversary. Config.Shards picks the process count.
	Wire
)

func (b Backend) String() string {
	switch b {
	case Simnet:
		return "simnet"
	case Channel:
		return "chan"
	case ChannelSeeded:
		return "chan-seeded"
	case Wire:
		return "wire"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// Mode selects how the schedule drives the simulation.
type Mode int

const (
	// ModeBlocking applies every op through the blocking API: Insert,
	// Delete, DeleteBatch — each runs to quiescence before the next.
	ModeBlocking Mode = iota
	// ModeOpenLoop pipelines inserts and deletes through Submit,
	// advancing Gap ticks after each; batches still use the blocking
	// DeleteBatch (the engine requires idle for batches), draining
	// first.
	ModeOpenLoop
)

func (m Mode) String() string {
	if m == ModeOpenLoop {
		return "open-loop"
	}
	return "blocking"
}

// Config selects the backend and drive mode for one replay.
type Config struct {
	Backend Backend
	Seed    int64 // ChannelSeeded only
	Mode    Mode
	Shards  int // Wire only: worker process count (0 = wirenet default)
}

// OpKind distinguishes schedule operations.
type OpKind uint8

const (
	// OpInsert adds node V attached to Nbrs.
	OpInsert OpKind = iota + 1
	// OpDelete removes node V.
	OpDelete
	// OpBatch removes Batch as one blocking DeleteBatch.
	OpBatch
)

// Op is one recorded operation.
type Op struct {
	Kind  OpKind
	V     NodeID
	Nbrs  []NodeID // OpInsert
	Batch []NodeID // OpBatch
	// Gap is how many Ticks to run after submitting this op in
	// open-loop mode (ignored when blocking).
	Gap int
}

func (o Op) String() string {
	switch o.Kind {
	case OpInsert:
		return fmt.Sprintf("insert %d %v gap %d", o.V, o.Nbrs, o.Gap)
	case OpDelete:
		return fmt.Sprintf("delete %d gap %d", o.V, o.Gap)
	case OpBatch:
		return fmt.Sprintf("batch %v", o.Batch)
	}
	return "op?"
}

// Schedule is a recorded churn run, replayable on any backend.
type Schedule struct {
	Ops []Op
}

// Outcome is the canonical per-operation verdict, aligned to
// submission order. Only backend-invariant fields belong here: what
// the operation did to the graph, never how many rounds or messages
// it took.
type Outcome struct {
	Kind OpKind
	V    NodeID
	// OK is false if the operation was rejected at its serialization
	// point; Err then carries the error text (identical across
	// backends — rejection is a serialized-state decision).
	OK  bool
	Err string
	// DegreePrime and NsetSize characterize a completed repair
	// (OpDelete only): the deleted node's G′ degree and the notified
	// set's size — both functions of serialized state, not of the
	// scheduler.
	DegreePrime int
	NsetSize    int
}

// Result is the canonical outcome of one replay.
type Result struct {
	Backend  Backend
	Mode     Mode
	Phys     *graph.Graph
	GPrime   *graph.Graph
	Outcomes []Outcome
}

// NewTransport builds the configured backend, empty. The Wire backend
// spawns OS processes and binds sockets, which can fail; the
// in-process backends never do.
func NewTransport(c Config) (transport.Transport, error) {
	switch c.Backend {
	case Simnet:
		return simnet.New(), nil
	case Channel:
		return channet.New(), nil
	case ChannelSeeded:
		return channet.NewSeeded(c.Seed), nil
	case Wire:
		return wirenet.New(wirenet.Config{Shards: c.Shards})
	}
	panic(fmt.Sprintf("sched: unknown backend %d", int(c.Backend)))
}

// Run replays one schedule over g0 on the configured backend and
// returns the canonical Result. The simulation is verified (full
// invariant check) before returning; a verification failure is an
// error, as is a repair that fails to quiesce.
func Run(g0 *graph.Graph, c Config, sch Schedule) (*Result, error) {
	net, err := NewTransport(c)
	if err != nil {
		return nil, fmt.Errorf("sched: %s: %w", c.Backend, err)
	}
	s := dist.NewSimulationOn(g0, net)
	defer s.Close()
	var out []Outcome
	if c.Mode == ModeOpenLoop {
		out, err = runOpenLoop(s, sch)
	} else {
		out, err = runBlocking(s, sch)
	}
	if err != nil {
		return nil, fmt.Errorf("sched: %s/%s: %w", c.Backend, c.Mode, err)
	}
	if verr := s.Verify(); verr != nil {
		return nil, fmt.Errorf("sched: %s/%s: verify: %w", c.Backend, c.Mode, verr)
	}
	return &Result{
		Backend:  c.Backend,
		Mode:     c.Mode,
		Phys:     s.Physical(),
		GPrime:   s.GPrime(),
		Outcomes: out,
	}, nil
}

// runBlocking applies each op through the blocking API.
func runBlocking(s *dist.Simulation, sch Schedule) ([]Outcome, error) {
	var out []Outcome
	for _, op := range sch.Ops {
		o := Outcome{Kind: op.Kind, V: op.V, OK: true}
		switch op.Kind {
		case OpInsert:
			if err := s.Insert(op.V, op.Nbrs); err != nil {
				o.OK, o.Err = false, err.Error()
			}
		case OpDelete:
			if err := s.Delete(op.V); err != nil {
				o.OK, o.Err = false, err.Error()
			} else {
				st := s.LastRecovery()
				o.DegreePrime, o.NsetSize = st.DegreePrime, st.NsetSize
			}
		case OpBatch:
			if err := s.DeleteBatch(op.Batch); err != nil {
				o.OK, o.Err = false, err.Error()
			}
		default:
			return nil, fmt.Errorf("blocking: unknown op kind %d", op.Kind)
		}
		out = append(out, o)
	}
	return out, nil
}

// runOpenLoop pipelines inserts and deletes through the engine,
// ticking each op's Gap before the next submission, then drains and
// folds the engine's typed events into submission-aligned outcomes.
func runOpenLoop(s *dist.Simulation, sch Schedule) ([]Outcome, error) {
	// posOf maps the engine's submission sequence number (Event.Seq)
	// to the schedule position. Raw event arrival order is
	// scheduler-dependent even for the same serialized behavior — a
	// dead-target delete is rejected at submission, jumping ahead of
	// an earlier repair still in flight — so alignment must come from
	// the engine's own ticket, never from arrival heuristics.
	posOf := make(map[int]int)
	filled := make(map[int]bool)
	out := make([]Outcome, 0, len(sch.Ops))
	pos := 0
	seq := 0 // engine tickets count submitted ops from 1, in order

	fold := func(evs []dist.Event) error {
		for _, ev := range evs {
			o := Outcome{OK: true}
			switch ev.Kind {
			case dist.EventRepairDone:
				o.Kind, o.V = OpDelete, ev.V
				o.DegreePrime, o.NsetSize = ev.Repair.DegreePrime, ev.Repair.NsetSize
			case dist.EventInsertApplied:
				o.Kind, o.V = OpInsert, ev.V
			case dist.EventOpRejected:
				o.Kind, o.V = opKindOf(ev.Op.Kind), ev.V
				o.OK, o.Err = false, ev.Err.Error()
			case dist.EventBatchDone:
				// Batches run blocking below and record their outcome
				// there; the engine's event is redundant for alignment.
				continue
			default:
				return fmt.Errorf("open-loop: unexpected event kind %d", ev.Kind)
			}
			p, ok := posOf[ev.Seq]
			if !ok {
				return fmt.Errorf("open-loop: event %d for node %d with unknown seq %d", ev.Kind, ev.V, ev.Seq)
			}
			if filled[p] {
				return fmt.Errorf("open-loop: two events for schedule op %d (node %d)", p, ev.V)
			}
			filled[p] = true
			out[p] = o
		}
		return nil
	}

	for _, op := range sch.Ops {
		switch op.Kind {
		case OpInsert, OpDelete:
			dop := dist.Op{Kind: dist.OpDelete, V: op.V}
			if op.Kind == OpInsert {
				dop = dist.Op{Kind: dist.OpInsert, V: op.V, Nbrs: op.Nbrs}
			}
			out = append(out, Outcome{Kind: op.Kind, V: op.V})
			if err := s.Submit(dop); err != nil {
				// Structural rejection is synchronous and backend-free.
				out[pos] = Outcome{Kind: op.Kind, V: op.V, OK: false, Err: err.Error()}
				filled[pos] = true
			} else {
				seq++
				posOf[seq] = pos
			}
			pos++
			for i := 0; i < op.Gap; i++ {
				s.Tick()
			}
			if err := fold(s.Poll()); err != nil {
				return nil, err
			}
		case OpBatch:
			// Batches require an idle engine: drain the pipeline first.
			if err := s.Drain(); err != nil {
				return nil, fmt.Errorf("open-loop: drain before batch: %w", err)
			}
			if err := fold(s.Poll()); err != nil {
				return nil, err
			}
			o := Outcome{Kind: OpBatch, V: op.V, OK: true}
			if err := s.DeleteBatch(op.Batch); err != nil {
				o.OK, o.Err = false, err.Error()
			}
			out = append(out, o)
			pos++
			if err := fold(s.Poll()); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("open-loop: unknown op kind %d", op.Kind)
		}
	}
	if err := s.Drain(); err != nil {
		return nil, fmt.Errorf("open-loop: final drain: %w", err)
	}
	if err := fold(s.Poll()); err != nil {
		return nil, err
	}
	for eseq, p := range posOf {
		if !filled[p] {
			return nil, fmt.Errorf("open-loop: schedule op %d (engine seq %d) never completed", p, eseq)
		}
	}
	return out, nil
}

func opKindOf(k dist.OpKind) OpKind {
	if k == dist.OpInsert {
		return OpInsert
	}
	return OpDelete
}

// Diff compares two Results for bit-identical healing. It returns nil
// when the healed physical networks, the virtual graphs G′, and every
// submission-aligned outcome agree; otherwise it describes the first
// divergence.
func Diff(a, b *Result) error {
	if !a.Phys.Equal(b.Phys) {
		return fmt.Errorf("healed physical graphs diverge:\n%s: %v\n%s: %v",
			a.Backend, a.Phys, b.Backend, b.Phys)
	}
	if !a.GPrime.Equal(b.GPrime) {
		return fmt.Errorf("G' diverges between %s and %s", a.Backend, b.Backend)
	}
	if len(a.Outcomes) != len(b.Outcomes) {
		return fmt.Errorf("outcome counts diverge: %s has %d, %s has %d",
			a.Backend, len(a.Outcomes), b.Backend, len(b.Outcomes))
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			return fmt.Errorf("outcome %d diverges:\n%s: %+v\n%s: %+v",
				i, a.Backend, a.Outcomes[i], b.Backend, b.Outcomes[i])
		}
	}
	return nil
}

// Decode derives a schedule from fuzzer bytes against an initial
// topology. The mapping is total — every byte string is a valid
// schedule — and deterministic, so a corpus entry replays the same
// ops forever. Op targets are drawn from a closed ID universe (the
// initial nodes plus the IDs the schedule itself inserts), so some
// decoded ops are invalid at their serialization point; that is the
// point — both backends must reject them identically.
func Decode(data []byte, g0 *graph.Graph) Schedule {
	ids := append([]NodeID(nil), g0.Nodes()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	next := NodeID(10_000)
	var sch Schedule
	pick := func(b byte) NodeID {
		if len(ids) == 0 {
			return 0
		}
		return ids[int(b)%len(ids)]
	}
	for i := 0; i+1 < len(data); i += 2 {
		sel, arg := data[i], data[i+1]
		gap := int(sel>>5) % 4 // 0..3 ticks between submissions
		switch sel % 4 {
		case 0, 1: // deletes twice as likely: repairs are the point
			sch.Ops = append(sch.Ops, Op{Kind: OpDelete, V: pick(arg), Gap: gap})
		case 2:
			v := next
			next++
			k := 1 + int(arg)%3
			nbrs := make([]NodeID, 0, k)
			seen := make(map[NodeID]struct{}, k)
			for j := 0; j < k && len(ids) > 0; j++ {
				x := pick(arg + byte(j)*7)
				if _, dup := seen[x]; dup {
					continue
				}
				seen[x] = struct{}{}
				nbrs = append(nbrs, x)
			}
			sch.Ops = append(sch.Ops, Op{Kind: OpInsert, V: v, Nbrs: nbrs, Gap: gap})
			ids = append(ids, v)
		case 3:
			k := 2 + int(arg)%3
			batch := make([]NodeID, 0, k)
			seen := make(map[NodeID]struct{}, k)
			for j := 0; j < k && len(ids) > 0; j++ {
				x := pick(arg + byte(j)*13)
				if _, dup := seen[x]; dup {
					continue
				}
				seen[x] = struct{}{}
				batch = append(batch, x)
			}
			sch.Ops = append(sch.Ops, Op{Kind: OpBatch, Batch: batch})
		}
	}
	return sch
}
