package simnet

import (
	"reflect"
	"repro/internal/transport"
	"testing"
)

// Tests for the per-edge bandwidth model: FIFO spill-over, congestion
// accounting, timer exemption, pending accounting, and determinism.

// collect records every delivery as (round, from, to, payload).
type delivery struct {
	Round    int
	From, To NodeID
	Payload  any
}

func recorder(log *[]delivery) Handler {
	return func(n transport.Endpoint, m Message) {
		*log = append(*log, delivery{Round: n.Round(), From: m.From, To: m.To, Payload: m.Payload})
	}
}

func TestBandwidthSpillFIFO(t *testing.T) {
	n := New()
	var log []delivery
	n.AddNode(1, recorder(&log))
	n.SetBandwidth(2)
	// Three 2-word messages on the same edge: one fits per round.
	n.Send(5, 1, "a", 2)
	n.Send(5, 1, "b", 2)
	n.Send(5, 1, "c", 2)
	rounds, err := n.RunUntilQuiescent(10)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 3 {
		t.Fatalf("rounds = %d, want 3 (one 2-word message per round at B=2)", rounds)
	}
	want := []delivery{
		{Round: 1, From: 5, To: 1, Payload: "a"},
		{Round: 2, From: 5, To: 1, Payload: "b"},
		{Round: 3, From: 5, To: 1, Payload: "c"},
	}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("deliveries = %v, want %v (per-edge FIFO)", log, want)
	}
	s := n.Stats()
	if s.CongestionRounds != 2 {
		t.Errorf("CongestionRounds = %d, want 2", s.CongestionRounds)
	}
	// Round 1 defers b and c (4 words), round 2 defers c (2 words).
	if s.QueuedWords != 6 {
		t.Errorf("QueuedWords = %d, want 6", s.QueuedWords)
	}
	if s.MaxEdgeBacklog != 4 {
		t.Errorf("MaxEdgeBacklog = %d, want 4", s.MaxEdgeBacklog)
	}
	if s.Messages != 3 || s.TotalWords != 6 {
		t.Errorf("traffic stats = %+v (delivery counts must not change)", s)
	}
}

func TestBandwidthFIFOWithMixedSizes(t *testing.T) {
	// A small message must not overtake an earlier larger one on the
	// same edge: at B=3, a(2w) fits, b(2w) defers — and then c(1w)
	// must defer behind b even though it would fit the leftover budget.
	n := New()
	var log []delivery
	n.AddNode(1, recorder(&log))
	n.SetBandwidth(3)
	n.Send(5, 1, "a", 2)
	n.Send(5, 1, "b", 2)
	n.Send(5, 1, "c", 1)
	if _, err := n.RunUntilQuiescent(5); err != nil {
		t.Fatal(err)
	}
	want := []delivery{
		{Round: 1, From: 5, To: 1, Payload: "a"},
		{Round: 2, From: 5, To: 1, Payload: "b"},
		{Round: 2, From: 5, To: 1, Payload: "c"},
	}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("deliveries = %v, want %v (strict per-edge FIFO)", log, want)
	}
}

func TestBandwidthAtLeastOneMessagePerEdge(t *testing.T) {
	n := New()
	var log []delivery
	n.AddNode(1, recorder(&log))
	n.SetBandwidth(1)
	// A message larger than the cap still traverses: it occupies the
	// edge for its whole round instead of starving.
	n.Send(2, 1, "big", 10)
	rounds, err := n.RunUntilQuiescent(5)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 1 || len(log) != 1 {
		t.Fatalf("rounds=%d deliveries=%d, want 1/1", rounds, len(log))
	}
	if s := n.Stats(); s.CongestionRounds != 0 || s.QueuedWords != 0 {
		t.Fatalf("lone oversized message counted as congestion: %+v", s)
	}
}

func TestTimersNeverConsumeBandwidth(t *testing.T) {
	n := New()
	var log []delivery
	n.AddNode(1, recorder(&log))
	n.SetBandwidth(1)
	// Three timers due the same round as a full edge: all of them fire
	// in round 1 anyway, and none of them counts as congestion.
	n.SendTimer(1, "t1", 1)
	n.SendTimer(1, "t2", 1)
	n.SendTimer(1, "t3", 1)
	n.Send(2, 1, "m1", 1)
	n.Send(2, 1, "m2", 1) // deferred: edge (2,1) is full
	n.Step()
	firstRound := 0
	for _, d := range log {
		if d.Round == 1 {
			firstRound++
		}
	}
	if firstRound != 4 { // 3 timers + m1
		t.Fatalf("round 1 delivered %d, want 4 (timers bypass the edge cap)", firstRound)
	}
	if s := n.Stats(); s.CongestionRounds != 1 || s.QueuedWords != 1 {
		t.Fatalf("stats = %+v, want exactly m2 deferred", s)
	}
	if _, err := n.RunUntilQuiescent(5); err != nil {
		t.Fatal(err)
	}
	if len(log) != 5 {
		t.Fatalf("total deliveries = %d, want 5", len(log))
	}
}

func TestPendingCountsBacklog(t *testing.T) {
	n := New()
	n.AddNode(1, func(transport.Endpoint, Message) {})
	n.SetBandwidth(1)
	n.Send(2, 1, "a", 1)
	n.Send(2, 1, "b", 3)
	n.Send(2, 1, "c", 2)
	if pw := n.PendingWords(); pw != 6 {
		t.Fatalf("PendingWords before delivery = %d, want 6", pw)
	}
	n.Step() // delivers a; b and c stay backlogged
	if p := n.Pending(); p != 2 {
		t.Fatalf("Pending after one round = %d, want 2 backlogged messages", p)
	}
	if pw := n.PendingWords(); pw != 5 {
		t.Fatalf("PendingWords after one round = %d, want 5", pw)
	}
	if dropped := n.DropPending(); dropped != 2 {
		t.Fatalf("DropPending = %d, want 2", dropped)
	}
	if n.Pending() != 0 || n.PendingWords() != 0 {
		t.Fatal("pending traffic survived DropPending")
	}
}

func TestPerEdgeBandwidthOverride(t *testing.T) {
	n := New()
	var log []delivery
	n.AddNode(1, recorder(&log))
	n.AddNode(2, recorder(&log))
	// Globally unlimited, but edge (9,1) is capped at 1 word/round.
	n.SetEdgeBandwidth(9, 1, 1)
	n.Send(9, 1, "x", 1)
	n.Send(9, 1, "y", 1)
	n.Send(9, 2, "z", 1)
	n.Send(8, 1, "w", 1)
	n.Step()
	round1 := 0
	for _, d := range log {
		if d.Round == 1 {
			round1++
		}
	}
	if round1 != 3 { // x, z, w; y spills
		t.Fatalf("round 1 delivered %d, want 3 (only the capped edge spills)", round1)
	}
	if s := n.Stats(); s.CongestionRounds != 1 || s.MaxEdgeBacklog != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// Removing the override restores unlimited delivery on that edge.
	n.SetEdgeBandwidth(9, 1, 0)
	n.Send(9, 1, "p", 5)
	n.Send(9, 1, "q", 5)
	before := len(log)
	n.Step()
	if got := len(log) - before; got != 3 { // y (spilled) + p + q
		t.Fatalf("round 2 delivered %d, want 3 after clearing the override", got)
	}
}

// TestBandwidthDeterministicOrder runs the same congested script twice
// through Step and once through ParallelStep. The sequential runs must
// produce the identical global delivery sequence; the parallel run
// (whose handlers for different receivers run concurrently) must match
// per receiver — the observational-equivalence guarantee ParallelStep
// makes.
func TestBandwidthDeterministicOrder(t *testing.T) {
	script := func(step func(n *Network) int) [5][]delivery {
		n := New()
		var logs [5][]delivery // one slot per receiver: race-free in parallel mode
		for _, id := range []NodeID{1, 2, 3} {
			id := id
			n.AddNode(id, func(net transport.Endpoint, m Message) {
				logs[id] = append(logs[id], delivery{Round: net.Round(), From: m.From, To: m.To, Payload: m.Payload})
			})
		}
		// Node 4 echoes one hop onward so spill-over interleaves with
		// fresh sends.
		n.AddNode(4, func(net transport.Endpoint, m Message) {
			logs[4] = append(logs[4], delivery{Round: net.Round(), From: m.From, To: m.To, Payload: m.Payload})
			net.Send(4, 1, "echo", 2)
		})
		n.SetBandwidth(2)
		n.Send(9, 2, "a", 2)
		n.Send(9, 2, "b", 1)
		n.Send(7, 1, "c", 2)
		n.Send(9, 4, "d", 1)
		n.Send(9, 4, "e", 2)
		n.Send(7, 1, "f", 1)
		n.Send(9, 2, "g", 1)
		for i := 0; i < 12 && n.Pending() > 0; i++ {
			step(n)
		}
		return logs
	}
	a := script((*Network).Step)
	b := script((*Network).Step)
	c := script((*Network).ParallelStep)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two sequential runs diverge:\n%v\n%v", a, b)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("parallel delivery diverges under spill-over:\n%v\n%v", a, c)
	}
}

// TestBandwidthUnlimitedIsBitForBit: a huge cap must behave exactly
// like the unlimited default, congestion counters included.
func TestBandwidthUnlimitedIsBitForBit(t *testing.T) {
	run := func(cap int) ([]delivery, Stats, int) {
		n := New()
		var log []delivery
		h := recorder(&log)
		n.AddNode(1, h)
		n.AddNode(2, h)
		n.SetBandwidth(cap)
		n.Send(5, 1, "a", 3)
		n.Send(5, 1, "b", 4)
		n.Send(6, 2, "c", 2)
		rounds, err := n.RunUntilQuiescent(10)
		if err != nil {
			t.Fatal(err)
		}
		return log, n.Stats(), rounds
	}
	logU, statsU, roundsU := run(0)
	logB, statsB, roundsB := run(1 << 20)
	if !reflect.DeepEqual(logU, logB) || statsU != statsB || roundsU != roundsB {
		t.Fatalf("huge cap diverges from unlimited: %v/%+v/%d vs %v/%+v/%d",
			logU, statsU, roundsU, logB, statsB, roundsB)
	}
	if statsU.CongestionRounds != 0 || statsU.QueuedWords != 0 || statsU.MaxEdgeBacklog != 0 {
		t.Fatalf("congestion counters nonzero without congestion: %+v", statsU)
	}
}
