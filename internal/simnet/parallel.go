package simnet

import (
	"sort"
	"sync"
)

// ParallelStep is Step with intra-round concurrency: messages delivered
// to different processors in the same round run in their own
// goroutines, communicating their outgoing sends back over a channel.
// Messages to the same processor stay serialized in deterministic
// order, and the next round's queue is canonicalized afterwards, so a
// ParallelStep round is observationally identical to a sequential Step
// round — tests assert exactly that. This is the "processors are truly
// concurrent" execution mode; the sequential Step is the measurement
// mode.
//
// Handlers invoked through ParallelStep may call Send and SendTimer on
// the *RoundContext passed to them via the network handle; all other
// Network methods must not be called concurrently. To keep the handler
// signature unchanged, sends during a parallel round are intercepted
// internally.
func (n *Network) ParallelStep() int {
	n.round++
	batch := n.queue
	n.queue = nil
	var keep []futureMsg
	for _, t := range n.future {
		if t.due <= n.round {
			batch = append(batch, t.msg)
		} else {
			keep = append(keep, t)
		}
	}
	n.future = keep
	if len(batch) == 0 {
		return 0
	}
	sort.Slice(batch, func(i, j int) bool {
		a, b := batch[i], batch[j]
		if a.To != b.To {
			return a.To < b.To
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.Seq < b.Seq
	})
	// The bandwidth filter runs on the sorted batch before fan-out, so
	// both delivery modes defer exactly the same messages.
	batch = n.applyBandwidth(batch)

	// Group by receiver, preserving per-receiver order.
	type group struct {
		to   NodeID
		msgs []Message
	}
	var groups []group
	for _, m := range batch {
		if len(groups) == 0 || groups[len(groups)-1].to != m.To {
			groups = append(groups, group{to: m.To})
		}
		g := &groups[len(groups)-1]
		g.msgs = append(g.msgs, m)
	}

	// Account deliveries up front (deterministic), then fan out.
	delivered := 0
	n.stats.Rounds++
	var classes roundClasses
	for _, g := range groups {
		if !n.HasNode(g.to) {
			// Defensive only, like the sequential Step: dead-addressed
			// traffic is counted at send or RemoveNode, never here.
			for _, m := range g.msgs {
				if !m.Timer {
					n.dropped++
				}
			}
			continue
		}
		for _, m := range g.msgs {
			if m.Timer {
				continue
			}
			n.bookDelivery(m, &classes)
		}
		delivered += len(g.msgs)
	}
	classes.book(&n.stats)

	// Each receiver runs in its own goroutine against a shadow network
	// that only records sends; shadows are merged deterministically.
	shadows := make([]*Network, len(groups))
	var wg sync.WaitGroup
	for i := range groups {
		g := groups[i]
		h, ok := n.handlers[g.to]
		if !ok {
			continue
		}
		// The shadow carries the bandwidth configuration (read-only
		// during a round) so sender-side pacing sees the same per-edge
		// budgets in both delivery modes.
		shadow := &Network{
			handlers:  n.handlers,
			round:     n.round,
			sentBy:    make(map[NodeID]int),
			bandwidth: n.bandwidth,
			edgeCap:   n.edgeCap,
			nodeCap:   n.nodeCap,
		}
		shadows[i] = shadow
		wg.Add(1)
		go func(h Handler, msgs []Message, shadow *Network) {
			defer wg.Done()
			for _, m := range msgs {
				h(shadow, m)
			}
		}(h, g.msgs, shadow)
	}
	wg.Wait()

	// Merge shadow queues in receiver order, re-sequencing so that the
	// next round's delivery order is identical to the sequential
	// schedule. Messages and timers are interleaved by their shadow
	// sequence numbers: a handler that alternates Send and SendTimer
	// (the outbox pacing does) must yield the same relative order a
	// sequential round would have assigned, because for self-addressed
	// traffic the (receiver, sender) sort key ties and the sequence
	// decides delivery order.
	for _, shadow := range shadows {
		if shadow == nil {
			continue
		}
		// Sends to dead targets were dropped-and-counted at send time
		// inside the shadow; fold them into the real counter.
		n.dropped += shadow.dropped
		qi, fi := 0, 0
		for qi < len(shadow.queue) || fi < len(shadow.future) {
			takeMsg := fi >= len(shadow.future) ||
				(qi < len(shadow.queue) && shadow.queue[qi].Seq < shadow.future[fi].msg.Seq)
			n.seq++
			if takeMsg {
				m := shadow.queue[qi]
				qi++
				m.Seq = n.seq
				n.queue = append(n.queue, m)
			} else {
				t := shadow.future[fi]
				fi++
				t.msg.Seq = n.seq
				n.future = append(n.future, t)
			}
		}
	}
	return delivered
}

// RunUntilQuiescentParallel is RunUntilQuiescent using ParallelStep.
func (n *Network) RunUntilQuiescentParallel(maxRounds int) (int, error) {
	start := n.round
	for len(n.queue) > 0 || len(n.future) > 0 {
		if n.round-start >= maxRounds {
			return n.round - start, errNotQuiescent(maxRounds, len(n.queue), len(n.future))
		}
		n.ParallelStep()
	}
	return n.round - start, nil
}
