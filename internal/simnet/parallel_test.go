package simnet

import (
	"repro/internal/transport"
	"sync/atomic"
	"testing"
)

// buildGossip wires a little gossip protocol: node i forwards a counter
// to (i+1)%k and (i+2)%k until it reaches a TTL.
func buildGossip(k int) (*Network, *atomic.Int64) {
	n := New()
	var delivered atomic.Int64
	for i := 0; i < k; i++ {
		i := NodeID(i)
		n.AddNode(i, func(net transport.Endpoint, m Message) {
			delivered.Add(1)
			ttl := m.Payload.(int)
			if ttl <= 0 {
				return
			}
			net.Send(i, (i+1)%NodeID(k), ttl-1, 1)
			net.Send(i, (i+2)%NodeID(k), ttl-1, 1)
			if ttl == 3 {
				net.SendTimer(i, 0, 2)
			}
		})
	}
	n.Send(99, 0, 6, 1)
	return n, &delivered
}

func TestParallelMatchesSequential(t *testing.T) {
	const k = 9
	seqNet, seqCount := buildGossip(k)
	seqRounds, err := seqNet.RunUntilQuiescent(100)
	if err != nil {
		t.Fatal(err)
	}
	parNet, parCount := buildGossip(k)
	parRounds, err := parNet.RunUntilQuiescentParallel(100)
	if err != nil {
		t.Fatal(err)
	}
	if seqRounds != parRounds {
		t.Fatalf("rounds: seq %d, parallel %d", seqRounds, parRounds)
	}
	if seqCount.Load() != parCount.Load() {
		t.Fatalf("deliveries: seq %d, parallel %d", seqCount.Load(), parCount.Load())
	}
	ss, ps := seqNet.Stats(), parNet.Stats()
	if ss != ps {
		t.Fatalf("stats diverge:\nseq: %+v\npar: %+v", ss, ps)
	}
}

func TestParallelDeterministic(t *testing.T) {
	run := func() Stats {
		n, _ := buildGossip(7)
		if _, err := n.RunUntilQuiescentParallel(100); err != nil {
			t.Fatal(err)
		}
		return n.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("parallel runs diverge: %+v vs %+v", a, b)
	}
}

func TestParallelDropsDeadReceivers(t *testing.T) {
	n := New()
	n.AddNode(1, func(net transport.Endpoint, m Message) {})
	n.Send(0, 1, "x", 1)
	n.Send(0, 2, "y", 1) // 2 does not exist
	n.ParallelStep()
	if n.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", n.Dropped())
	}
	if n.Stats().Messages != 1 {
		t.Fatalf("messages = %d, want 1", n.Stats().Messages)
	}
}

func TestParallelEmptyRound(t *testing.T) {
	n := New()
	if got := n.ParallelStep(); got != 0 {
		t.Fatalf("deliveries on empty network = %d", got)
	}
}

// A chaotic fan-out/fan-in: many senders to many receivers, ensuring
// per-receiver serialization holds (each handler increments a non-atomic
// counter; the race detector guards correctness).
func TestParallelPerReceiverSerialization(t *testing.T) {
	n := New()
	const k = 16
	counts := make([]int, k) // intentionally not atomic
	for i := 0; i < k; i++ {
		i := i
		n.AddNode(NodeID(i), func(net transport.Endpoint, m Message) {
			counts[i]++ // safe iff per-receiver messages are serialized
		})
	}
	for round := 0; round < 5; round++ {
		for from := 0; from < k; from++ {
			for to := 0; to < k; to++ {
				n.Send(NodeID(from), NodeID(to), "x", 1)
			}
		}
		n.ParallelStep()
	}
	for i, c := range counts {
		if c != 5*k {
			t.Fatalf("counts[%d] = %d, want %d", i, c, 5*k)
		}
	}
}
