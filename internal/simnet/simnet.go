// Package simnet is a deterministic synchronous-round message-passing
// simulator for the distributed Forgiving Graph protocol.
//
// The model matches Figure 1 of the paper: messages sent in round r are
// delivered at the start of round r+1 ("it takes a message no more than
// 1 time unit to traverse any edge"), are never lost or corrupted, and
// may contain names of other vertices. Local computation is free; the
// complexity measures are the number of messages, their sizes (in words
// of O(log n) bits), and the number of rounds until quiescence.
//
// Delivery within a round is deterministic: messages are handed to
// receivers ordered by (receiver, sender, send sequence). Handlers run
// sequentially, so no locking is needed; determinism makes protocol runs
// reproducible and directly comparable with the reference engine.
package simnet

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// NodeID identifies a processor, shared with package graph.
type NodeID = graph.NodeID

// Message is a unit of communication between two processors.
type Message struct {
	From, To NodeID
	// Payload is the protocol-level content.
	Payload any
	// Words is the message size in words of O(log n) bits, the unit
	// Lemma 4 counts. Timers have Words == 0 and are excluded from the
	// traffic statistics.
	Words int
	// timer marks a local wake-up rather than a network message.
	timer bool
	seq   int
}

// Handler is the per-processor message handler. It may call Send,
// SendTimer, and the accessors on the network, but must not call Step.
type Handler func(n *Network, msg Message)

// Stats aggregates traffic since the last ResetStats.
type Stats struct {
	// Messages is the number of network messages delivered.
	Messages int
	// Rounds is the number of rounds in which at least one message or
	// timer was delivered.
	Rounds int
	// TotalWords sums the sizes of all delivered network messages.
	TotalWords int
	// MaxWords is the largest single message size seen.
	MaxWords int
	// MaxSentByNode is the largest number of messages sent by a single
	// processor (the paper's "communication per node" metric counts
	// bits; multiply by MaxWords for a bound).
	MaxSentByNode int
}

// futureMsg is a timer waiting for its due round.
type futureMsg struct {
	due int
	msg Message
}

// Network is a set of processors exchanging messages in lock-step
// rounds. The zero value is not usable; construct with New.
type Network struct {
	handlers map[NodeID]Handler
	queue    []Message   // to be delivered at the next Step
	future   []futureMsg // timers scheduled further ahead
	round    int
	seq      int

	stats   Stats
	sentBy  map[NodeID]int
	dropped int
}

// New returns an empty network at round 0.
func New() *Network {
	return &Network{
		handlers: make(map[NodeID]Handler),
		sentBy:   make(map[NodeID]int),
	}
}

// AddNode registers a processor. Re-registering replaces the handler.
func (n *Network) AddNode(id NodeID, h Handler) {
	if h == nil {
		panic("simnet: nil handler")
	}
	n.handlers[id] = h
}

// RemoveNode unregisters a processor; queued messages to it are dropped
// at delivery time (the node is dead).
func (n *Network) RemoveNode(id NodeID) {
	delete(n.handlers, id)
}

// HasNode reports whether a processor is registered.
func (n *Network) HasNode(id NodeID) bool {
	_, ok := n.handlers[id]
	return ok
}

// Round returns the current round number.
func (n *Network) Round() int { return n.round }

// Send enqueues a message for delivery in the next round. Words must
// reflect the payload size in O(log n)-bit words and be at least 1.
func (n *Network) Send(from, to NodeID, payload any, words int) {
	if words < 1 {
		panic(fmt.Sprintf("simnet: message with %d words", words))
	}
	n.seq++
	n.queue = append(n.queue, Message{
		From: from, To: to, Payload: payload, Words: words, seq: n.seq,
	})
}

// SendTimer schedules a local wake-up for the sending processor after
// delay rounds (delay >= 1). Timers do not count as network traffic.
func (n *Network) SendTimer(node NodeID, payload any, delay int) {
	if delay < 1 {
		panic(fmt.Sprintf("simnet: timer with delay %d", delay))
	}
	n.seq++
	m := Message{From: node, To: node, Payload: payload, timer: true, seq: n.seq}
	n.future = append(n.future, futureMsg{due: n.round + delay, msg: m})
}

// Step advances one round: it delivers everything queued for this round,
// running the receivers' handlers (which typically enqueue messages for
// the following round). It returns the number of deliveries performed.
func (n *Network) Step() int {
	n.round++
	batch := n.queue
	n.queue = nil
	// Move due timers into the batch.
	var keep []futureMsg
	for _, t := range n.future {
		if t.due <= n.round {
			batch = append(batch, t.msg)
		} else {
			keep = append(keep, t)
		}
	}
	n.future = keep

	if len(batch) == 0 {
		return 0
	}
	sort.Slice(batch, func(i, j int) bool {
		a, b := batch[i], batch[j]
		if a.To != b.To {
			return a.To < b.To
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.seq < b.seq
	})
	delivered := 0
	n.stats.Rounds++
	for _, m := range batch {
		h, ok := n.handlers[m.To]
		if !ok {
			n.dropped++
			continue
		}
		if !m.timer {
			n.stats.Messages++
			n.stats.TotalWords += m.Words
			if m.Words > n.stats.MaxWords {
				n.stats.MaxWords = m.Words
			}
			n.sentBy[m.From]++
			if n.sentBy[m.From] > n.stats.MaxSentByNode {
				n.stats.MaxSentByNode = n.sentBy[m.From]
			}
		}
		delivered++
		h(n, m)
	}
	return delivered
}

// RunUntilQuiescent steps the network until no messages or timers remain
// in flight, up to maxRounds. It returns the number of rounds executed
// and an error if the bound was hit with traffic still pending.
func (n *Network) RunUntilQuiescent(maxRounds int) (int, error) {
	start := n.round
	for len(n.queue) > 0 || len(n.future) > 0 {
		if n.round-start >= maxRounds {
			return n.round - start, errNotQuiescent(maxRounds, len(n.queue), len(n.future))
		}
		n.Step()
	}
	return n.round - start, nil
}

func errNotQuiescent(maxRounds, queued, timers int) error {
	return fmt.Errorf("simnet: not quiescent after %d rounds (%d queued, %d timers)",
		maxRounds, queued, timers)
}

// Pending reports how many messages and timers are waiting for delivery.
func (n *Network) Pending() int { return len(n.queue) + len(n.future) }

// Dropped returns the number of messages addressed to dead processors.
func (n *Network) Dropped() int { return n.dropped }

// Stats returns a copy of the traffic statistics accumulated since the
// last ResetStats.
func (n *Network) Stats() Stats { return n.stats }

// ResetStats zeroes the traffic statistics (typically between recovery
// phases, so each repair is measured in isolation).
func (n *Network) ResetStats() {
	n.stats = Stats{}
	n.sentBy = make(map[NodeID]int)
}
