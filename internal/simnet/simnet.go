// Package simnet is a deterministic synchronous-round message-passing
// simulator for the distributed Forgiving Graph protocol.
//
// The model matches Figure 1 of the paper: messages sent in round r are
// delivered at the start of round r+1 ("it takes a message no more than
// 1 time unit to traverse any edge"), are never lost or corrupted, and
// may contain names of other vertices. Local computation is free; the
// complexity measures are the number of messages, their sizes (in words
// of O(log n) bits), and the number of rounds until quiescence.
//
// Delivery within a round is deterministic: messages are handed to
// receivers ordered by (receiver, sender, send sequence). Handlers run
// sequentially, so no locking is needed; determinism makes protocol runs
// reproducible and directly comparable with the reference engine.
//
// # Bandwidth
//
// By default every queued message is delivered in the next round
// regardless of sender load — the paper's model, but dishonest about
// per-link capacity: a hotspot that serializes O(d log n) sends pays no
// round-count price. SetBandwidth imposes a per-edge capacity of B
// message-words per round (SetEdgeBandwidth overrides single directed
// edges, modeling heterogeneous links). Excess traffic queues FIFO per
// edge and spills deterministically into later rounds; an edge always
// carries at least its oldest queued message per round, so a message
// larger than B occupies the edge for a whole round rather than
// starving (store-and-forward with a one-packet minimum). Timers are
// local wake-ups and never consume bandwidth. With the default
// unlimited bandwidth the behavior is bit-for-bit the historical one;
// the congestion counters in Stats stay zero.
package simnet

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/transport"
)

// NodeID identifies a processor, shared with package graph.
type NodeID = graph.NodeID

// The wire-level vocabulary lives in package transport so that every
// backend (this simulator, channet's goroutine scheduler) shares one
// set of types; the aliases keep simnet's historical API intact.
type (
	// Class tags a message with its accounting role; see transport.Class.
	Class = transport.Class
	// Message is a unit of communication between two processors.
	Message = transport.Message
	// Handler is the per-processor message handler. It may call Send,
	// SendTimer, and the accessors on the network, but must not call
	// Step.
	Handler = transport.Handler
	// Stats aggregates traffic since the last ResetStats.
	Stats = transport.Stats
)

const (
	// ClassData is ordinary protocol traffic (the default).
	ClassData = transport.ClassData
	// ClassElection marks leader-election tournament messages.
	ClassElection = transport.ClassElection
	// ClassSync marks termination-detection traffic: walk acks,
	// convergecast dones, and phase-completion reports.
	ClassSync = transport.ClassSync
	// ClassAudit marks the self-stabilizing audit layer's background
	// traffic (checksum probes and their replies).
	ClassAudit = transport.ClassAudit
)

// Network implements transport.Transport (and the optional
// ParallelStepper extension) as the deterministic round-synchronous
// measurement backend.
var (
	_ transport.Transport       = (*Network)(nil)
	_ transport.ParallelStepper = (*Network)(nil)
)

// futureMsg is a timer waiting for its due round.
type futureMsg struct {
	due int
	msg Message
}

// edgeKey identifies a directed edge for capacity accounting. Capacity
// is directional: the two directions of a link are separate channels.
type edgeKey struct {
	from, to NodeID
}

// Network is a set of processors exchanging messages in lock-step
// rounds. The zero value is not usable; construct with New.
type Network struct {
	handlers map[NodeID]Handler
	queue    []Message   // to be delivered at the next Step
	future   []futureMsg // timers scheduled further ahead
	round    int
	seq      int

	// bandwidth caps every edge at this many words per round; 0 means
	// unlimited. edgeCap overrides single directed edges; nodeCap
	// clamps every link incident to a node (heterogeneous access
	// links), compounding with the other caps by minimum.
	bandwidth int
	edgeCap   map[edgeKey]int
	nodeCap   map[NodeID]int

	stats   Stats
	sentBy  map[NodeID]int
	dropped int

	// spare recycles the delivered batch's backing array into the next
	// round's queue, and sorter wraps the batch for sort.Sort — both
	// keep the steady-state Step free of per-round allocations.
	spare  []Message
	sorter batchSorter
}

// batchSorter sorts one round's batch into the deterministic delivery
// order (receiver, then sender, then send sequence). A pointer to it
// satisfies sort.Interface without the per-call allocations of
// sort.Slice.
type batchSorter struct{ msgs []Message }

func (b *batchSorter) Len() int      { return len(b.msgs) }
func (b *batchSorter) Swap(i, j int) { b.msgs[i], b.msgs[j] = b.msgs[j], b.msgs[i] }
func (b *batchSorter) Less(i, j int) bool {
	x, y := b.msgs[i], b.msgs[j]
	if x.To != y.To {
		return x.To < y.To
	}
	if x.From != y.From {
		return x.From < y.From
	}
	return x.Seq < y.Seq
}

// New returns an empty network at round 0.
func New() *Network {
	return &Network{
		handlers: make(map[NodeID]Handler),
		sentBy:   make(map[NodeID]int),
	}
}

// AddNode registers a processor. Re-registering replaces the handler.
func (n *Network) AddNode(id NodeID, h Handler) {
	if h == nil {
		panic("simnet: nil handler")
	}
	n.handlers[id] = h
}

// RemoveNode unregisters a processor (the node is dead). Messages
// already queued for it are dropped and counted now, and its armed
// timers are discarded uncounted — the single defined counting point
// shared with channet: a message is counted Dropped at the earliest
// moment the backend knows its target is dead (here, or at send time
// for later sends), and timers never count.
func (n *Network) RemoveNode(id NodeID) {
	delete(n.handlers, id)
	keepQ := n.queue[:0]
	for _, m := range n.queue {
		if m.To == id && !m.Timer {
			n.dropped++
			continue
		}
		keepQ = append(keepQ, m)
	}
	n.queue = keepQ
	keepF := n.future[:0]
	for _, t := range n.future {
		if t.msg.From == id {
			continue
		}
		keepF = append(keepF, t)
	}
	n.future = keepF
}

// CancelTimers discards every armed timer owned by one processor,
// returning how many were cancelled. Timers are local wake-ups — a
// dead processor's pending wake-ups are meaningless — but by default
// they linger in the future queue until their due round (where the
// missing handler drops them). Drivers that keep standing per-node
// timers (the audit layer's periodic ticks) cancel them eagerly at
// removal so Pending reflects only live processors' wake-ups.
func (n *Network) CancelTimers(id NodeID) int {
	cancelled := 0
	keep := n.future[:0]
	for _, t := range n.future {
		if t.msg.From == id {
			cancelled++
			continue
		}
		keep = append(keep, t)
	}
	n.future = keep
	return cancelled
}

// HasNode reports whether a processor is registered.
func (n *Network) HasNode(id NodeID) bool {
	_, ok := n.handlers[id]
	return ok
}

// Round returns the current round number.
func (n *Network) Round() int { return n.round }

// SetBandwidth caps every edge at the given number of message-words
// per round. Zero (the default) restores unlimited delivery. Changing
// the cap never loses traffic: messages already deferred simply drain
// under the new budget.
func (n *Network) SetBandwidth(words int) {
	if words < 0 {
		panic(fmt.Sprintf("simnet: negative bandwidth %d", words))
	}
	n.bandwidth = words
}

// Bandwidth returns the global per-edge words-per-round cap (0 =
// unlimited).
func (n *Network) Bandwidth() int { return n.bandwidth }

// SetEdgeBandwidth overrides the capacity of one directed edge,
// modeling heterogeneous links. words <= 0 removes the override,
// returning the edge to the global cap.
func (n *Network) SetEdgeBandwidth(from, to NodeID, words int) {
	e := edgeKey{from: from, to: to}
	if words <= 0 {
		delete(n.edgeCap, e)
		return
	}
	if n.edgeCap == nil {
		n.edgeCap = make(map[edgeKey]int)
	}
	n.edgeCap[e] = words
}

// SetNodeBandwidth caps every link incident to one node at the given
// number of words per round — the "slow access link" of a
// heterogeneous topology: every message to or from the node squeezes
// through its uplink. words <= 0 removes the cap. Node caps compound
// with the global and per-edge caps by minimum.
func (n *Network) SetNodeBandwidth(id NodeID, words int) {
	if words <= 0 {
		delete(n.nodeCap, id)
		return
	}
	if n.nodeCap == nil {
		n.nodeCap = make(map[NodeID]int)
	}
	n.nodeCap[id] = words
}

// edgeBudget returns the words-per-round cap of one directed edge
// (0 = unlimited): the per-edge override if set, else the global cap,
// clamped by both endpoints' node caps.
func (n *Network) edgeBudget(e edgeKey) int {
	b := n.bandwidth
	if c, ok := n.edgeCap[e]; ok {
		b = c
	}
	clamp := func(c int) {
		if c > 0 && (b == 0 || c < b) {
			b = c
		}
	}
	clamp(n.nodeCap[e.from])
	clamp(n.nodeCap[e.to])
	return b
}

// EdgeBudget returns the effective words-per-round cap of one directed
// edge (0 = unlimited): the per-edge override if set, else the global
// cap, clamped by both endpoints' node caps (SetNodeBandwidth).
// Sender-side pacing consults it so a narrow link is trickled at its
// own rate instead of the global one.
func (n *Network) EdgeBudget(from, to NodeID) int {
	return n.edgeBudget(edgeKey{from: from, to: to})
}

// applyBandwidth enforces the per-edge capacity on one round's sorted
// delivery batch: it returns the messages that fit, re-queues the rest
// for the next round (they keep their sequence numbers, so per-edge
// FIFO order and global delivery determinism are preserved), and books
// the congestion counters. Each edge always passes its oldest queued
// message, so progress is guaranteed even for messages larger than the
// cap. Timers bypass the check entirely: they are local wake-ups, not
// link traffic.
func (n *Network) applyBandwidth(batch []Message) []Message {
	if n.bandwidth <= 0 && len(n.edgeCap) == 0 && len(n.nodeCap) == 0 {
		return batch
	}
	used := make(map[edgeKey]int)
	var backlog map[edgeKey]int
	out := batch[:0]
	for _, m := range batch {
		if !m.Timer {
			e := edgeKey{from: m.From, to: m.To}
			if cap := n.edgeBudget(e); cap > 0 {
				// Once an edge has deferred a message, everything later
				// on that edge this round defers too — a smaller message
				// must not overtake a larger one, or FIFO breaks.
				_, full := backlog[e]
				u := used[e]
				if full || (u > 0 && u+m.Words > cap) {
					if backlog == nil {
						backlog = make(map[edgeKey]int)
					}
					backlog[e] += m.Words
					n.queue = append(n.queue, m)
					continue
				}
				used[e] = u + m.Words
			}
		}
		out = append(out, m)
	}
	if len(backlog) > 0 {
		n.stats.CongestionRounds++
		for _, w := range backlog {
			n.stats.QueuedWords += w
			if w > n.stats.MaxEdgeBacklog {
				n.stats.MaxEdgeBacklog = w
			}
		}
	}
	return out
}

// Send enqueues a message for delivery in the next round. Words must
// reflect the payload size in O(log n)-bit words and be at least 1.
func (n *Network) Send(from, to NodeID, payload any, words int) {
	n.SendClass(from, to, payload, words, ClassData)
}

// SendClass is Send with an explicit accounting class (see Class).
// Sends to unregistered (dead) targets are dropped and counted here —
// the send is the earliest point the backend knows the target is dead.
// The sequence number is still consumed, so the deterministic delivery
// order of the surviving traffic is unchanged.
func (n *Network) SendClass(from, to NodeID, payload any, words int, class Class) {
	if words < 1 {
		panic(fmt.Sprintf("simnet: message with %d words", words))
	}
	n.seq++
	if _, ok := n.handlers[to]; !ok {
		n.dropped++
		return
	}
	n.queue = append(n.queue, Message{
		From: from, To: to, Payload: payload, Words: words, Class: class, Seq: n.seq,
	})
}

// SendTimer schedules a local wake-up for the sending processor after
// delay rounds (delay >= 1). Timers do not count as network traffic.
func (n *Network) SendTimer(node NodeID, payload any, delay int) {
	if delay < 1 {
		panic(fmt.Sprintf("simnet: timer with delay %d", delay))
	}
	n.seq++
	m := Message{From: node, To: node, Payload: payload, Timer: true, Seq: n.seq}
	n.future = append(n.future, futureMsg{due: n.round + delay, msg: m})
}

// Step advances one round: it delivers everything queued for this round,
// running the receivers' handlers (which typically enqueue messages for
// the following round). It returns the number of deliveries performed.
func (n *Network) Step() int {
	n.round++
	batch := n.queue
	// Hand the spare backing array to the new queue and recycle the
	// batch's when the round is over: sends during delivery grow an
	// already-sized array instead of reallocating from nil every round.
	n.queue = n.spare[:0]
	n.spare = nil
	// Move due timers into the batch; survivors are compacted in place.
	keep := n.future[:0]
	for _, t := range n.future {
		if t.due <= n.round {
			batch = append(batch, t.msg)
		} else {
			keep = append(keep, t)
		}
	}
	n.future = keep

	if len(batch) == 0 {
		n.spare = batch
		return 0
	}
	n.sorter.msgs = batch
	sort.Sort(&n.sorter)
	n.sorter.msgs = nil
	batch = n.applyBandwidth(batch)
	delivered := 0
	n.stats.Rounds++
	var classes roundClasses
	for _, m := range batch {
		h, ok := n.handlers[m.To]
		if !ok {
			// Defensive only: dead-addressed traffic is dropped and
			// counted at send or at RemoveNode, never here. Timers are
			// never counted as Dropped.
			if !m.Timer {
				n.dropped++
			}
			continue
		}
		if !m.Timer {
			n.bookDelivery(m, &classes)
		}
		delivered++
		h(n, m)
	}
	classes.book(&n.stats)
	n.spare = batch[:0]
	return delivered
}

// roundClasses records which accounting classes saw a delivery this
// round, so ElectionRounds/SyncRounds count rounds, not messages.
type roundClasses struct {
	election, sync, audit bool
}

func (c *roundClasses) book(s *Stats) {
	if c.election {
		s.ElectionRounds++
	}
	if c.sync {
		s.SyncRounds++
	}
	if c.audit {
		s.AuditRounds++
	}
}

// bookDelivery folds one delivered network message into the stats.
func (n *Network) bookDelivery(m Message, classes *roundClasses) {
	n.stats.Messages++
	n.stats.TotalWords += m.Words
	if m.Words > n.stats.MaxWords {
		n.stats.MaxWords = m.Words
	}
	n.sentBy[m.From]++
	if n.sentBy[m.From] > n.stats.MaxSentByNode {
		n.stats.MaxSentByNode = n.sentBy[m.From]
	}
	switch m.Class {
	case ClassElection:
		n.stats.ElectionMessages++
		classes.election = true
	case ClassSync:
		n.stats.SyncMessages++
		classes.sync = true
	case ClassAudit:
		n.stats.AuditMessages++
		classes.audit = true
	}
}

// RunUntilQuiescent steps the network until no messages or timers remain
// in flight, up to maxRounds. It returns the number of rounds executed
// and an error if the bound was hit with traffic still pending.
func (n *Network) RunUntilQuiescent(maxRounds int) (int, error) {
	start := n.round
	for len(n.queue) > 0 || len(n.future) > 0 {
		if n.round-start >= maxRounds {
			return n.round - start, errNotQuiescent(maxRounds, len(n.queue), len(n.future))
		}
		n.Step()
	}
	return n.round - start, nil
}

func errNotQuiescent(maxRounds, queued, timers int) error {
	return fmt.Errorf("simnet: not quiescent after %d rounds (%d queued, %d timers)",
		maxRounds, queued, timers)
}

// Pending reports how many messages and timers are waiting for
// delivery, messages deferred by the bandwidth limit included.
func (n *Network) Pending() int { return len(n.queue) + len(n.future) }

// PendingWords sums the sizes of all waiting network messages,
// bandwidth-deferred backlog included (timers are free and count 0).
func (n *Network) PendingWords() int {
	words := 0
	for _, m := range n.queue {
		words += m.Words
	}
	return words
}

// DropPending discards every queued message and timer without
// delivering them, returning how many were dropped. The batched-repair
// synchronizer uses it to abort a claim phase whose outcome is already
// decided; dropped traffic counts neither as delivered nor as
// addressed-to-dead.
func (n *Network) DropPending() int {
	k := len(n.queue) + len(n.future)
	n.queue, n.future = nil, nil
	return k
}

// Dropped returns the number of messages addressed to dead processors.
func (n *Network) Dropped() int { return n.dropped }

// Stats returns a copy of the traffic statistics accumulated since the
// last ResetStats.
func (n *Network) Stats() Stats { return n.stats }

// ResetStats zeroes the traffic statistics (typically between recovery
// phases, so each repair is measured in isolation).
func (n *Network) ResetStats() {
	n.stats = Stats{}
	n.sentBy = make(map[NodeID]int)
}
