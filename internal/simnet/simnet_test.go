package simnet

import (
	"repro/internal/transport"
	"testing"
)

func TestSendAndDeliver(t *testing.T) {
	n := New()
	var got []string
	n.AddNode(1, func(net transport.Endpoint, m Message) {
		got = append(got, m.Payload.(string))
	})
	n.Send(2, 1, "hello", 1)
	if d := n.Step(); d != 1 {
		t.Fatalf("delivered %d, want 1", d)
	}
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got %v", got)
	}
}

func TestRoundSemantics(t *testing.T) {
	// A message sent during round r is delivered in round r+1, not r.
	n := New()
	var deliveries []int
	n.AddNode(1, func(net transport.Endpoint, m Message) {
		deliveries = append(deliveries, net.Round())
		if m.Payload == "first" {
			net.Send(1, 1, "second", 1)
		}
	})
	n.Send(0, 1, "first", 1)
	rounds, err := n.RunUntilQuiescent(10)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 2 {
		t.Fatalf("rounds = %d, want 2", rounds)
	}
	if len(deliveries) != 2 || deliveries[1] != deliveries[0]+1 {
		t.Fatalf("delivery rounds = %v", deliveries)
	}
}

func TestDeterministicOrder(t *testing.T) {
	run := func() []NodeID {
		n := New()
		var order []NodeID
		h := func(net transport.Endpoint, m Message) { order = append(order, m.From) }
		n.AddNode(1, h)
		n.AddNode(2, h)
		// Send in scrambled order; delivery must sort by (to, from, seq).
		n.Send(9, 2, "x", 1)
		n.Send(5, 1, "x", 1)
		n.Send(3, 1, "x", 1)
		n.Send(3, 1, "y", 1)
		n.Step()
		return order
	}
	a, b := run(), run()
	want := []NodeID{3, 3, 5, 9}
	for i := range want {
		if a[i] != want[i] || b[i] != want[i] {
			t.Fatalf("order = %v / %v, want %v", a, b, want)
		}
	}
}

func TestDeadNodeDrops(t *testing.T) {
	n := New()
	n.AddNode(1, func(net transport.Endpoint, m Message) {})
	n.RemoveNode(1)
	n.Send(0, 1, "x", 1)
	n.Step()
	if n.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", n.Dropped())
	}
	if n.Stats().Messages != 0 {
		t.Fatal("dropped message counted as delivered")
	}
}

func TestTimer(t *testing.T) {
	n := New()
	var fired int
	n.AddNode(1, func(net transport.Endpoint, m Message) {
		if m.Payload == "timer" {
			fired = net.Round()
		}
	})
	n.SendTimer(1, "timer", 3)
	rounds, err := n.RunUntilQuiescent(10)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("timer fired at round %d, want 3", fired)
	}
	if rounds < 3 {
		t.Fatalf("quiescence after %d rounds", rounds)
	}
	// Timers are free: no traffic recorded.
	if s := n.Stats(); s.Messages != 0 || s.TotalWords != 0 {
		t.Fatalf("timer counted as traffic: %+v", s)
	}
}

func TestStatsAccounting(t *testing.T) {
	n := New()
	n.AddNode(1, func(net transport.Endpoint, m Message) {})
	n.AddNode(2, func(net transport.Endpoint, m Message) {})
	n.Send(5, 1, "a", 2)
	n.Send(5, 2, "b", 7)
	n.Send(6, 1, "c", 1)
	n.Step()
	s := n.Stats()
	if s.Messages != 3 || s.TotalWords != 10 || s.MaxWords != 7 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxSentByNode != 2 {
		t.Fatalf("MaxSentByNode = %d, want 2", s.MaxSentByNode)
	}
	if s.Rounds != 1 {
		t.Fatalf("Rounds = %d, want 1", s.Rounds)
	}
	n.ResetStats()
	if s := n.Stats(); s.Messages != 0 || s.MaxSentByNode != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
}

func TestRunUntilQuiescentBound(t *testing.T) {
	n := New()
	// Ping-pong forever.
	n.AddNode(1, func(net transport.Endpoint, m Message) { net.Send(1, 2, "p", 1) })
	n.AddNode(2, func(net transport.Endpoint, m Message) { net.Send(2, 1, "p", 1) })
	n.Send(0, 1, "start", 1)
	if _, err := n.RunUntilQuiescent(20); err == nil {
		t.Fatal("expected quiescence-bound error")
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	n := New()
	mustPanic(t, "zero words", func() { n.Send(1, 2, "x", 0) })
	mustPanic(t, "zero delay", func() { n.SendTimer(1, "x", 0) })
	mustPanic(t, "nil handler", func() { n.AddNode(1, nil) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", name)
		}
	}()
	fn()
}

func TestHasNode(t *testing.T) {
	n := New()
	if n.HasNode(3) {
		t.Fatal("empty network has node")
	}
	n.AddNode(3, func(transport.Endpoint, Message) {})
	if !n.HasNode(3) {
		t.Fatal("node missing after AddNode")
	}
}
