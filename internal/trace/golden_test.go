package trace

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
)

// golden regression traces: recorded attacks whose final metrics are
// pinned. The engine is deterministic, so any drift in these numbers
// means repair behavior changed — which must be a conscious decision.
var goldens = []struct {
	file               string
	ops, alive         int
	stretchMax, degMax float64
}{
	{"star32-maxdeg", 16, 16, 3.5, 4},
	{"grid6x6-cutvertex", 18, 18, 1.5, 2.5},
	{"powerlaw40-churn", 30, 36, 1.5, 2.5},
}

func TestGoldenTraces(t *testing.T) {
	for _, g := range goldens {
		g := g
		t.Run(g.file, func(t *testing.T) {
			f, err := os.Open(filepath.Join("testdata", g.file+".json"))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tr, err := Read(f)
			if err != nil {
				t.Fatal(err)
			}
			if len(tr.Ops) != g.ops {
				t.Fatalf("ops = %d, want %d", len(tr.Ops), g.ops)
			}
			h, err := tr.Apply(fgFactory())
			if err != nil {
				t.Fatal(err)
			}
			live := h.LiveNodes()
			if len(live) != g.alive {
				t.Fatalf("alive = %d, want %d", len(live), g.alive)
			}
			net, gp := h.Network(), h.GPrime()
			st := metrics.Stretch(net, gp, live, 0, nil)
			if math.Abs(st.Max-g.stretchMax) > 1e-9 {
				t.Fatalf("stretch = %v, want %v (behavior drift?)", st.Max, g.stretchMax)
			}
			deg := metrics.Degrees(net, gp, live)
			if math.Abs(deg.Max-g.degMax) > 1e-9 {
				t.Fatalf("degree ratio = %v, want %v (behavior drift?)", deg.Max, g.degMax)
			}
			// And the bounds, of course.
			if st.Max > metrics.Bound(gp.NumNodes()) {
				t.Fatalf("stretch %v exceeds bound", st.Max)
			}
			if deg.Max > 4 {
				t.Fatalf("degree ratio %v exceeds hard bound", deg.Max)
			}
		})
	}
}
