package trace

import (
	"bytes"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/adversary"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// update regenerates the golden fixtures from their recipes instead of
// reading them:
//
//	go test ./internal/trace -run TestGoldenTraces -update
//
// Regeneration is deliberate: the pinned metrics below must then be
// re-checked (and consciously re-pinned if repair behavior changed).
var update = flag.Bool("update", false, "regenerate golden trace fixtures from their recipes")

// golden regression traces: recorded attacks whose final metrics are
// pinned. The engine is deterministic, so any drift in these numbers
// means repair behavior changed — which must be a conscious decision.
var goldens = []struct {
	file               string
	ops, alive         int
	stretchMax, degMax float64
}{
	{"star32-maxdeg", 16, 16, 3.5, 4},
	{"grid6x6-cutvertex", 18, 18, 1.5, 2.5},
	{"powerlaw40-churn", 30, 36, 1.5, 2.5},
}

// record replays an adversary against the Forgiving Graph over g0 and
// returns the recorded trace (the same loop as harness.Runner, which
// this package cannot import without a cycle).
func record(t *testing.T, label string, g0 *graph.Graph, adv adversary.Adversary, steps int, seed int64) *Trace {
	t.Helper()
	h := fgFactory().New(g0)
	tr := &Trace{Label: label, G0: g0.Clone()}
	rng := rand.New(rand.NewSource(seed))
	nextID := graph.NodeID(0)
	for _, v := range g0.Nodes() {
		if v > nextID {
			nextID = v
		}
	}
	alloc := func() graph.NodeID { nextID++; return nextID }
	for i := 0; i < steps; i++ {
		op, ok := adv.Next(h, rng, alloc)
		if !ok {
			break
		}
		var err error
		if op.Insert {
			err = h.Insert(op.V, op.Nbrs)
		} else {
			err = h.Delete(op.V)
		}
		if err != nil {
			t.Fatalf("recording %s: op %d (%v): %v", label, i, op, err)
		}
		tr.Append(op)
	}
	return tr
}

// recipes deterministically rebuild each fixture.
func recipes() map[string]func(t *testing.T) *Trace {
	return map[string]func(t *testing.T) *Trace{
		"star32-maxdeg": func(t *testing.T) *Trace {
			return record(t, "star32 vs maxdeg", graph.Star(32), adversary.MaxDegreeDelete{}, 16, 1)
		},
		"grid6x6-cutvertex": func(t *testing.T) *Trace {
			return record(t, "grid6x6 vs cutvertex", graph.Grid(6, 6), adversary.CutVertexDelete{}, 18, 2)
		},
		"powerlaw40-churn": func(t *testing.T) *Trace {
			g0 := graph.PreferentialAttachment(40, 2, rand.New(rand.NewSource(8)))
			adv := adversary.Churn{InsertP: 0.4, AttachK: 2, Preferential: true, Delete: adversary.RandomDelete{}}
			return record(t, "powerlaw40 vs churn", g0, adv, 30, 13)
		},
	}
}

func TestGoldenTraces(t *testing.T) {
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	rec := recipes()
	for _, g := range goldens {
		g := g
		t.Run(g.file, func(t *testing.T) {
			path := filepath.Join("testdata", g.file+".json")
			if *update {
				recipe, ok := rec[g.file]
				if !ok {
					t.Fatalf("no recipe for %s", g.file)
				}
				// Record fully before touching the committed fixture, so
				// a failing recipe cannot truncate it.
				var buf bytes.Buffer
				if err := recipe(t).Write(&buf); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tr, err := Read(f)
			if err != nil {
				t.Fatal(err)
			}
			if len(tr.Ops) != g.ops {
				t.Fatalf("ops = %d, want %d", len(tr.Ops), g.ops)
			}
			h, err := tr.Apply(fgFactory())
			if err != nil {
				t.Fatal(err)
			}
			live := h.LiveNodes()
			if len(live) != g.alive {
				t.Fatalf("alive = %d, want %d", len(live), g.alive)
			}
			net, gp := h.Network(), h.GPrime()
			st := metrics.Stretch(net, gp, live, 0, nil)
			if math.Abs(st.Max-g.stretchMax) > 1e-9 {
				t.Fatalf("stretch = %v, want %v (behavior drift?)", st.Max, g.stretchMax)
			}
			deg := metrics.Degrees(net, gp, live)
			if math.Abs(deg.Max-g.degMax) > 1e-9 {
				t.Fatalf("degree ratio = %v, want %v (behavior drift?)", deg.Max, g.degMax)
			}
			// And the bounds, of course.
			if st.Max > metrics.Bound(gp.NumNodes()) {
				t.Fatalf("stretch %v exceeds bound", st.Max)
			}
			if deg.Max > 4 {
				t.Fatalf("degree ratio %v exceeds hard bound", deg.Max)
			}
		})
	}
}

// TestGoldenRecipesMatchFixtures guards the -update path itself: the
// committed fixtures must be exactly what the recipes regenerate, so a
// fixture can never silently drift away from its documented origin.
func TestGoldenRecipesMatchFixtures(t *testing.T) {
	rec := recipes()
	for _, g := range goldens {
		g := g
		t.Run(g.file, func(t *testing.T) {
			f, err := os.Open(filepath.Join("testdata", g.file+".json"))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tr, err := Read(f)
			if err != nil {
				t.Fatal(err)
			}
			recipe, ok := rec[g.file]
			if !ok {
				t.Fatalf("no recipe for %s", g.file)
			}
			if !tr.Equal(recipe(t)) {
				t.Fatalf("fixture %s does not match its recipe (regenerate with -update)", g.file)
			}
		})
	}
}
