// Package trace records and replays attack traces: an initial topology
// plus the exact operation sequence an adversary produced. Traces make
// experiments reproducible, let failures be replayed against any healer,
// and are the exchange format of the CLI tools.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/adversary"
	"repro/internal/graph"
	"repro/internal/heal"
)

// Trace is a reproducible attack: the starting topology and the ordered
// adversarial operations applied to it.
type Trace struct {
	// Label is free-form metadata (generator name, seed, adversary).
	Label string `json:"label,omitempty"`
	// G0 is the initial topology.
	G0 *graph.Graph `json:"g0"`
	// Ops is the attack sequence.
	Ops []adversary.Op `json:"ops"`
}

// Append records one more operation.
func (t *Trace) Append(op adversary.Op) { t.Ops = append(t.Ops, op) }

// Apply replays the trace against a fresh healer built by factory and
// returns it. Replay stops with an error on the first rejected
// operation.
func (t *Trace) Apply(factory heal.Factory) (heal.Healer, error) {
	h := factory.New(t.G0)
	for i, op := range t.Ops {
		var err error
		if op.Insert {
			err = h.Insert(op.V, op.Nbrs)
		} else {
			err = h.Delete(op.V)
		}
		if err != nil {
			return nil, fmt.Errorf("trace: op %d (%v): %w", i, op, err)
		}
	}
	return h, nil
}

// Write serializes the trace as JSON.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if t.G0 == nil {
		return nil, fmt.Errorf("trace: missing initial topology")
	}
	return &t, nil
}

// Equal reports whether two traces describe the same attack.
func (t *Trace) Equal(o *Trace) bool {
	if t.Label != o.Label || len(t.Ops) != len(o.Ops) || !t.G0.Equal(o.G0) {
		return false
	}
	for i := range t.Ops {
		a, b := t.Ops[i], o.Ops[i]
		if a.Insert != b.Insert || a.V != b.V || len(a.Nbrs) != len(b.Nbrs) {
			return false
		}
		for j := range a.Nbrs {
			if a.Nbrs[j] != b.Nbrs[j] {
				return false
			}
		}
	}
	return true
}
