package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/graph"
	"repro/internal/heal"
)

func fgFactory() heal.Factory {
	return heal.Factory{
		Name: "forgiving-graph",
		New:  func(g *graph.Graph) heal.Healer { return heal.NewForgivingGraph(g) },
	}
}

func sampleTrace() *Trace {
	return &Trace{
		Label: "test",
		G0:    graph.Star(5),
		Ops: []adversary.Op{
			{V: 0},
			{Insert: true, V: 9, Nbrs: []graph.NodeID{1, 2}},
			{V: 1},
		},
	}
}

func TestApply(t *testing.T) {
	h, err := sampleTrace().Apply(fgFactory())
	if err != nil {
		t.Fatal(err)
	}
	if h.Alive(0) || h.Alive(1) || !h.Alive(9) {
		t.Fatal("replay produced wrong liveness")
	}
	if got := h.GPrime().NumNodes(); got != 6 {
		t.Fatalf("n ever = %d, want 6", got)
	}
}

func TestApplyRejectsBadOp(t *testing.T) {
	bad := &Trace{G0: graph.Path(2), Ops: []adversary.Op{{V: 42}}}
	if _, err := bad.Apply(fgFactory()); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(back) {
		t.Fatal("round trip changed the trace")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"ops":[]}`)); err == nil {
		t.Fatal("missing topology accepted")
	}
}

func TestEqual(t *testing.T) {
	a, b := sampleTrace(), sampleTrace()
	if !a.Equal(b) {
		t.Fatal("identical traces unequal")
	}
	b.Ops[2].V = 2
	if a.Equal(b) {
		t.Fatal("different traces equal")
	}
	c := sampleTrace()
	c.Ops[1].Nbrs = []graph.NodeID{1, 3}
	if a.Equal(c) {
		t.Fatal("different insert targets equal")
	}
	d := sampleTrace()
	d.Label = "other"
	if a.Equal(d) {
		t.Fatal("different labels equal")
	}
}

// Replaying the same trace against two healers gives each the same G'.
func TestApplyAcrossHealers(t *testing.T) {
	tr := sampleTrace()
	h1, err := tr.Apply(fgFactory())
	if err != nil {
		t.Fatal(err)
	}
	h2, err := tr.Apply(fgFactory())
	if err != nil {
		t.Fatal(err)
	}
	if !h1.GPrime().Equal(h2.GPrime()) {
		t.Fatal("replays diverged")
	}
	if !h1.Network().Equal(h2.Network()) {
		t.Fatal("deterministic healer produced different networks")
	}
}
