package transport

import "context"

// This file defines the asynchronous control plane: the driver-side
// contract a backend must offer when delivery happens on real links
// (goroutines today, TCP streams between OS processes in
// internal/wirenet) rather than in frozen-world Step pulses.
//
// The data plane is unchanged — handlers still see Endpoint, and the
// protocol neither knows nor cares which control plane drives it. What
// changes is how the *driver* observes the network: instead of calling
// Step and then freely reading state (valid only because nothing runs
// between Steps), an async driver
//
//   - starts the backend with Drive(ctx) and stops it with Close,
//   - requests progress with Pulse, which blocks until the network
//     reaches a quiescent point (nothing deliverable without firing a
//     timer) and reports what happened,
//   - watches Quiesced for unsolicited quiescence notifications, and
//   - schedules state reads with At, which runs a closure at a safe
//     point — a moment when no handler is running and none will start
//     until the closure returns.
//
// Synchronous backends get all of this for free via NewDriver: between
// Steps *every* point is a safe point, so Pulse is Step+Pending, At
// runs inline, and Drive is a no-op.

// Quiet describes one quiescent point of the network: the moment a
// Pulse finished because nothing more was deliverable.
type Quiet struct {
	// Delivered is the number of messages and timers delivered by the
	// pulse that reached this quiescent point.
	Delivered int
	// Pending is the number of messages and timers still waiting
	// (armed timers that the pulse chose not to fire, typically).
	Pending int
}

// Driver is the asynchronous substrate contract the dist driver loop
// runs on. Synchronous Transports are adapted by NewDriver; the wire
// backend implements it natively.
type Driver interface {
	Plane

	// Drive starts the backend's machinery (worker processes, link
	// readers) and returns once it is ready to deliver. The backend
	// shuts down when ctx is canceled or Close is called. Calling
	// Drive on an already-driven or synchronous backend is a no-op.
	Drive(ctx context.Context) error
	// Close releases everything Drive started (kills worker
	// processes, closes sockets). Safe to call multiple times and on
	// backends that were never driven.
	Close() error

	// Pulse requests one unit of progress and blocks until the
	// network quiesces: all deliverable traffic has been handed to
	// handlers and, if that produced nothing, at most one timer batch
	// has fired. It returns the quiescent point reached. When Pulse
	// returns, the caller is at a safe point: no handler is running
	// and none will run until the next Pulse (driver-originated sends
	// are buffered, not delivered).
	Pulse() Quiet
	// Quiesced reports quiescent points asynchronously: after each
	// Pulse the reached Quiet is published here (latest-wins, never
	// blocking the backend). Drivers that only Pulse synchronously may
	// ignore it; monitoring loops select on it.
	Quiesced() <-chan Quiet
	// At runs fn at a safe point — no handler running, none starting
	// until fn returns — and blocks until fn has run. Drivers use it
	// to read multi-part state (Stats + Pending + processor state)
	// consistently while the network is live.
	At(fn func())
}

// Unwrapper is implemented by Driver adapters that wrap a Transport.
// Capability probing (CancelTimers, SkewClock, Validate, parallel
// stepping) must reach the *backend*, not the adapter, so probes
// type-assert on the Driver first and then on Unwrap's result; an
// adapter must not blanket-forward optional methods its backend does
// not have.
type Unwrapper interface {
	Unwrap() Transport
}

// NewDriver adapts a synchronous Transport into a Driver. If t already
// implements Driver (the wire backend does) it is returned unchanged.
func NewDriver(t Transport) Driver {
	if d, ok := t.(Driver); ok {
		return d
	}
	return &syncDriver{Transport: t, quiesced: make(chan Quiet, 1)}
}

// syncDriver is the compatibility shim: a frozen-world Transport
// already satisfies every control-plane obligation trivially, because
// between Steps the whole world is one long safe point.
type syncDriver struct {
	Transport
	quiesced chan Quiet
}

func (d *syncDriver) Drive(ctx context.Context) error { return nil }
func (d *syncDriver) Close() error                    { return nil }

func (d *syncDriver) Pulse() Quiet {
	q := Quiet{Delivered: d.Transport.Step(), Pending: d.Transport.Pending()}
	d.publish(q)
	return q
}

func (d *syncDriver) Quiesced() <-chan Quiet { return d.quiesced }

func (d *syncDriver) At(fn func()) { fn() }

func (d *syncDriver) Unwrap() Transport { return d.Transport }

// publish posts q latest-wins: an unread older notification is
// replaced rather than blocking the pulse.
func (d *syncDriver) publish(q Quiet) {
	for {
		select {
		case d.quiesced <- q:
			return
		default:
			select {
			case <-d.quiesced:
			default:
			}
		}
	}
}
