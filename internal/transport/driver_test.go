package transport_test

import (
	"context"
	"testing"

	"repro/internal/simnet"
	"repro/internal/transport"
)

// TestSyncDriverShim exercises the compatibility adapter over simnet:
// Pulse is Step+Pending, At runs inline at the (ever-present) safe
// point, Quiesced carries latest-wins notifications, and capability
// probing reaches the wrapped backend only via Unwrap.
func TestSyncDriverShim(t *testing.T) {
	net := simnet.New()
	d := transport.NewDriver(net)

	if err := d.Drive(context.Background()); err != nil {
		t.Fatalf("Drive: %v", err)
	}
	defer d.Close()

	got := 0
	d.AddNode(1, func(e transport.Endpoint, m transport.Message) { got++ })
	d.AddNode(2, func(e transport.Endpoint, m transport.Message) {
		got++
		e.Send(2, 1, "reply", 1)
	})
	d.Send(1, 2, "ping", 1)

	q := d.Pulse()
	if q.Delivered != 1 || q.Pending != 1 {
		t.Fatalf("first Pulse = %+v, want {Delivered:1 Pending:1}", q)
	}
	select {
	case nq := <-d.Quiesced():
		if nq != q {
			t.Fatalf("Quiesced notification %+v != Pulse result %+v", nq, q)
		}
	default:
		t.Fatal("no quiescence notification after Pulse")
	}

	// Unread notifications are replaced, not queued: after two more
	// pulses only the latest is readable.
	q2 := d.Pulse()
	q3 := d.Pulse()
	_ = q2
	select {
	case nq := <-d.Quiesced():
		if nq != q3 {
			t.Fatalf("latest-wins notification %+v, want %+v", nq, q3)
		}
	default:
		t.Fatal("no quiescence notification after later Pulses")
	}
	if got != 2 {
		t.Fatalf("handlers ran %d times, want 2", got)
	}

	ran := false
	d.At(func() { ran = true })
	if !ran {
		t.Fatal("At did not run the closure")
	}

	// The shim must not impersonate backend capabilities: probes reach
	// the backend through Unwrap, and the wrapped simnet is returned
	// identically.
	uw, ok := d.(transport.Unwrapper)
	if !ok {
		t.Fatal("sync shim does not implement Unwrapper")
	}
	if uw.Unwrap() != transport.Transport(net) {
		t.Fatal("Unwrap did not return the wrapped backend")
	}
	if _, ok := uw.Unwrap().(transport.ParallelStepper); !ok {
		t.Fatal("unwrapped simnet lost its ParallelStepper capability")
	}

	// A Driver passed to NewDriver comes back unchanged.
	if transport.NewDriver(d.(transport.Transport)) != transport.Driver(d) {
		t.Fatal("NewDriver re-wrapped an existing Driver")
	}
}
